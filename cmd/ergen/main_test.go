package main

import (
	"os"
	"path/filepath"
	"testing"

	"erfilter/internal/datagen"
	"erfilter/internal/entity"
)

func TestExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	task := datagen.Generate(datagen.QuickSpec(25, 50, 15, 3))
	prefix := filepath.Join(dir, "x")
	if err := export(task, prefix); err != nil {
		t.Fatal(err)
	}
	// The exported files must load back into an equivalent task.
	open := func(path string) *os.File {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1 := open(prefix + "_e1.csv")
	defer f1.Close()
	e1, err := entity.ReadCSV("E1", f1)
	if err != nil {
		t.Fatal(err)
	}
	f2 := open(prefix + "_e2.csv")
	defer f2.Close()
	e2, err := entity.ReadCSV("E2", f2)
	if err != nil {
		t.Fatal(err)
	}
	ft := open(prefix + "_truth.csv")
	defer ft.Close()
	truth, err := entity.ReadGroundTruthCSV(ft, e1.Len(), e2.Len())
	if err != nil {
		t.Fatal(err)
	}
	if e1.Len() != 25 || e2.Len() != 50 || truth.Size() != 15 {
		t.Fatalf("round trip: %d/%d/%d", e1.Len(), e2.Len(), truth.Size())
	}
	// Every groundtruth pair of the original survives.
	for _, p := range task.Truth.Pairs() {
		if !truth.Contains(p) {
			t.Fatalf("pair %v lost in export", p)
		}
	}
}
