// Command ergen exports the synthetic dataset analogs (or a custom
// generated task) as CSV files consumable by ercli and by external tools:
//
//	ergen -dataset D4 -scale 0.1 -out d4        # d4_e1.csv d4_e2.csv d4_truth.csv
//	ergen -n1 500 -n2 800 -dups 300 -out custom
package main

import (
	"flag"
	"fmt"
	"os"

	"erfilter/internal/datagen"
	"erfilter/internal/entity"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset analog D1..D10 (mutually exclusive with -n1/-n2)")
		scale   = flag.Float64("scale", 0.1, "scale of the dataset analog")
		n1      = flag.Int("n1", 0, "custom: size of E1")
		n2      = flag.Int("n2", 0, "custom: size of E2")
		dups    = flag.Int("dups", 0, "custom: number of duplicates")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "dataset", "output file prefix")
	)
	flag.Parse()

	var task *entity.Task
	switch {
	case *dataset != "":
		task = datagen.ByName(*dataset, *scale)
		if task == nil {
			fmt.Fprintf(os.Stderr, "ergen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
	case *n1 > 0 && *n2 > 0:
		task = datagen.Generate(datagen.QuickSpec(*n1, *n2, *dups, *seed))
	default:
		fmt.Fprintln(os.Stderr, "ergen: pass -dataset Dx or -n1/-n2/-dups")
		flag.Usage()
		os.Exit(2)
	}

	if err := export(task, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ergen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s_e1.csv (%d), %s_e2.csv (%d), %s_truth.csv (%d pairs)\n",
		*out, task.E1.Len(), *out, task.E2.Len(), *out, task.Truth.Size())
}

func export(task *entity.Task, prefix string) error {
	write := func(path string, fn func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write(prefix+"_e1.csv", func(f *os.File) error {
		return entity.WriteCSV(f, task.E1)
	}); err != nil {
		return err
	}
	if err := write(prefix+"_e2.csv", func(f *os.File) error {
		return entity.WriteCSV(f, task.E2)
	}); err != nil {
		return err
	}
	return write(prefix+"_truth.csv", func(f *os.File) error {
		for _, p := range task.Truth.Pairs() {
			if _, err := fmt.Fprintf(f, "%d,%d\n", p.Left, p.Right); err != nil {
				return err
			}
		}
		return nil
	})
}
