package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"erfilter/internal/knn"
	"erfilter/internal/vector"
)

// annExperiment benchmarks the incremental ANN tier against the exact
// baseline it replaces: at each collection size it builds an IncFlat
// and an IncHNSW over the same deterministic vectors, then reports
// build time, query p50 latency, the speedup, and tie-tolerant
// recall@10 of the approximate answers against the flat oracle. The
// acceptance gate for the tier (make bench-ann) is >= 5x query p50 at
// the largest size with recall@10 >= 0.95.
func annExperiment(out io.Writer, maxEntities, queries, dim, ef int) error {
	if maxEntities < 1000 {
		return fmt.Errorf("-ann-entities must be >= 1000, got %d", maxEntities)
	}
	if queries < 1 {
		return fmt.Errorf("-ann-queries must be >= 1, got %d", queries)
	}
	const k = 10
	params := knn.HNSWParams{EfSearch: ef, Seed: 1}.Normalized()

	// Deterministic clustered vectors: 256 centers plus small noise,
	// the shape of embedded-text collections (and of the standard ANN
	// benchmark sets) — graph indexes route along cluster structure, and
	// i.i.d. uniform data in this dimensionality has none to route along
	// (distance concentration makes every index degrade to a scan
	// there). Queries draw from the same distribution.
	const centers = 256
	unit := func(key, seed uint64) float32 {
		return float32(vector.Mix64(key, seed)>>11)/(1<<52) - 1
	}
	centerAt := func(c int, j int) float32 {
		return unit(uint64(c)*uint64(dim)+uint64(j)+1, 5)
	}
	vecAt := func(i int, seed uint64) vector.Vec {
		v := make(vector.Vec, dim)
		c := int(vector.Mix64(uint64(i)+1, seed) % centers)
		for j := range v {
			noise := unit(uint64(i)*uint64(dim)+uint64(j)+1, seed)
			v[j] = centerAt(c, j) + 0.15*noise
		}
		return v
	}

	fmt.Fprintf(out, "incremental ANN: IncFlat vs IncHNSW, dim=%d k=%d m=%d efc=%d ef=%d, %d queries\n\n",
		dim, k, params.M, params.EfConstruction, params.EfSearch, queries)
	fmt.Fprintf(out, "%9s  %12s  %12s  %12s  %12s  %9s  %9s\n",
		"entities", "flat build", "hnsw build", "flat p50", "hnsw p50", "speedup", "recall@10")

	var sizes []int
	for n := maxEntities; n >= 1000; n /= 4 {
		sizes = append([]int{n}, sizes...)
	}
	for _, n := range sizes {
		flat := knn.NewIncFlat(knn.L2Squared)
		begin := time.Now()
		for i := 0; i < n; i++ {
			if err := flat.Add(int64(i), vecAt(i, 11)); err != nil {
				return err
			}
		}
		flatBuild := time.Since(begin)

		hnsw := knn.NewIncHNSW(knn.L2Squared, params)
		begin = time.Now()
		for i := 0; i < n; i++ {
			if err := hnsw.Add(int64(i), vecAt(i, 11)); err != nil {
				return err
			}
		}
		hnswBuild := time.Since(begin)

		probes := make([]vector.Vec, queries)
		for q := range probes {
			probes[q] = vecAt(q, 77)
		}
		fs, hs := flat.Freeze(), hnsw.Freeze()

		flatP50, exact := queryP50(probes, func(q vector.Vec) []knn.IncResult {
			return fs.Search(q, k)
		})
		hnswP50, approx := queryP50(probes, func(q vector.Vec) []knn.IncResult {
			return hs.Search(q, k)
		})

		var recall, want float64
		for q := range probes {
			if len(exact[q]) == 0 {
				continue
			}
			cutoff := exact[q][len(exact[q])-1].Score
			hit := 0
			for _, r := range approx[q] {
				if r.Score <= cutoff {
					hit++
				}
			}
			if hit > len(exact[q]) {
				hit = len(exact[q])
			}
			recall += float64(hit)
			want += float64(len(exact[q]))
		}
		recallAt := recall / want

		fmt.Fprintf(out, "%9d  %12s  %12s  %12s  %12s  %8.1fx  %9.4f\n",
			n, round(flatBuild), round(hnswBuild), round(flatP50), round(hnswP50),
			float64(flatP50)/float64(hnswP50), recallAt)
	}
	return nil
}

// queryP50 runs every probe through search, returning the median
// per-query latency and the answers.
func queryP50(probes []vector.Vec, search func(vector.Vec) []knn.IncResult) (time.Duration, [][]knn.IncResult) {
	lat := make([]time.Duration, len(probes))
	out := make([][]knn.IncResult, len(probes))
	for i, q := range probes {
		begin := time.Now()
		out[i] = search(q)
		lat[i] = time.Since(begin)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], out
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
