package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/match"
	"erfilter/internal/matching"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// matchExperiment measures what the match stage adds on top of the
// filter: it indexes a generated E1, decides every E2 entity against it
// and scores the decided pairs against the groundtruth. The filter-only
// row treats every candidate pair as a match — the quality a
// filtering-only deployment would report — and the greedy/bipartite
// rows show the decided one-to-one matchings. The run fails unless the
// sharded resolver's decisions are byte-identical to the single
// resolver's, which is the serving-layer equivalence contract.
func matchExperiment(out io.Writer, entities int, threshold float64, shards int) error {
	if entities < 20 {
		return fmt.Errorf("-match-entities must be >= 20, got %d", entities)
	}
	if threshold <= 0 || threshold > 1 {
		return fmt.Errorf("-match-t must be in (0, 1], got %g", threshold)
	}
	n2 := entities / 2
	dups := entities / 4
	task := datagen.Generate(datagen.QuickSpec(entities, n2, dups, 7))

	c3g, err := text.ParseModel("C3G")
	if err != nil {
		return err
	}
	// A permissive ε-join keeps recall in the candidate set; the scorer
	// threshold is what turns candidates into matches.
	cfg := online.Config{
		Method: online.EpsJoin, Model: c3g, Measure: sparse.Jaccard,
		Threshold: 0.15, Clean: true,
	}
	e1 := make([][]entity.Attribute, task.E1.Len())
	for i := range task.E1.Profiles {
		e1[i] = task.E1.Profiles[i].Attrs
	}
	queries := make([][]entity.Attribute, task.E2.Len())
	for i := range task.E2.Profiles {
		queries[i] = task.E2.Profiles[i].Attrs
	}

	res := online.NewResolver(cfg)
	res.InsertBatch(e1) // ids are assigned 0..n-1: id == E1 index
	snap := res.Snapshot()

	mcfg := match.Config{Scorer: match.ScoreJaroWinkler, Threshold: threshold}
	dec := match.NewDecider(mcfg, cfg)

	fmt.Fprintf(out, "match stage: E1=%d E2=%d dups=%d, filter=epsjoin eps=%.2f model=C3G jaccard, scorer=%s t=%.2f\n\n",
		task.E1.Len(), task.E2.Len(), task.Truth.Size(), cfg.Threshold, mcfg.Normalize().Scorer, threshold)
	fmt.Fprintf(out, "%14s  %10s  %12s  %9s  %7s  %7s  %7s  %9s\n",
		"mode", "pairs", "comparisons", "decided", "P", "R", "F1", "ms")

	row := func(mode string, pairs, comparisons int, decided []entity.Pair, elapsed time.Duration) {
		q := matching.EvaluateMatches(decided, task.Truth)
		fmt.Fprintf(out, "%14s  %10d  %12d  %9d  %7.3f  %7.3f  %7.3f  %9.0f\n",
			mode, pairs, comparisons, len(decided), q.Precision, q.Recall, q.F1,
			float64(elapsed.Nanoseconds())/1e6)
	}

	// Filter-only baseline: every candidate pair counts as a match.
	begin := time.Now()
	cands, _ := snap.QueryBatch(queries, online.QueryOptions{})
	var filtered []entity.Pair
	for q, cs := range cands {
		for _, c := range cs {
			filtered = append(filtered, entity.Pair{Left: int32(c.ID), Right: int32(q)})
		}
	}
	row("filter-only", len(filtered), 0, filtered, time.Since(begin))

	toPairs := func(ds []match.Decision) []entity.Pair {
		out := make([]entity.Pair, len(ds))
		for i, d := range ds {
			out[i] = entity.Pair{Left: int32(d.ID), Right: int32(d.Query)}
		}
		return out
	}
	results := map[match.Assign]match.Result{}
	for _, mode := range []match.Assign{match.AssignGreedy, match.AssignBipartite} {
		begin := time.Now()
		r := dec.DecideBatch(snap, queries, match.Request{}, mode)
		results[mode] = r
		row(mode.String(), r.Pairs, r.Comparisons, toPairs(r.Decisions), time.Since(begin))
	}

	// Equivalence gate: the sharded scatter-gather path must decide the
	// identical matches. Sharded InsertBatch assigns the same contiguous
	// id block, so both topologies agree on id == E1 index.
	sr := online.NewSharded(cfg, shards)
	sr.InsertBatch(e1)
	ssnap := sr.Snapshot()
	for _, mode := range []match.Assign{match.AssignGreedy, match.AssignBipartite} {
		sres := dec.DecideBatch(ssnap, queries, match.Request{}, mode)
		want, _ := json.Marshal(results[mode].Decisions)
		got, _ := json.Marshal(sres.Decisions)
		if !bytes.Equal(want, got) {
			return fmt.Errorf("%s decisions diverge between sharded (%d shards) and single resolver", mode, shards)
		}
	}
	fmt.Fprintf(out, "\nsharded equivalence: %d-shard decisions byte-identical to the single resolver (greedy and bipartite)\n", shards)
	return nil
}
