package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// serveExperiment benchmarks the online serving path across shard
// counts: parallel single-entity insert throughput (each insert pays
// its shard's epoch publish) and scatter-gather query throughput on the
// loaded collection, with the resulting shard size skew. Doubles the
// shard count from 1 up to maxShards so the scaling curve is visible in
// one table.
func serveExperiment(out io.Writer, maxShards, entities, queries int) error {
	if maxShards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", maxShards)
	}
	c3g, err := text.ParseModel("C3G")
	if err != nil {
		return err
	}
	cfg := online.Config{Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 10, Clean: true}
	workers := runtime.NumCPU()

	words := []string{
		"canon", "nikon", "sony", "olympus", "panasonic", "powershot",
		"coolpix", "cybershot", "digital", "camera", "compact", "zoom",
		"lens", "black", "silver", "battery", "charger", "kit", "mp", "hd",
	}
	attrsFor := func(i int) []entity.Attribute {
		w := func(j int) string { return words[(i*7+j*13)%len(words)] }
		return []entity.Attribute{{Name: "text",
			Value: fmt.Sprintf("%s %s %s %d %s %s", w(0), w(1), w(2), i%97, w(3), w(4))}}
	}

	fmt.Fprintf(out, "online serving: %d parallel writers/readers, %d inserts, %d queries, method=knnj k=10 model=C3G\n\n",
		workers, entities, queries)
	fmt.Fprintf(out, "%8s  %14s  %14s  %8s\n", "shards", "inserts/s", "queries/s", "skew")

	var base float64
	for shards := 1; shards <= maxShards; shards *= 2 {
		sr := online.NewSharded(cfg, shards)

		begin := time.Now()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(entities) {
						return
					}
					sr.Insert(attrsFor(int(i)))
				}
			}()
		}
		wg.Wait()
		insPerSec := float64(entities) / time.Since(begin).Seconds()

		begin = time.Now()
		var qn atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := qn.Add(1) - 1
					if i >= int64(queries) {
						return
					}
					sr.Query(attrsFor(int(i)*31), online.QueryOptions{})
				}
			}()
		}
		wg.Wait()
		qPerSec := float64(queries) / time.Since(begin).Seconds()

		st := sr.Stats()
		if shards == 1 {
			base = insPerSec
			fmt.Fprintf(out, "%8d  %14.0f  %14.0f  %8.2f\n", shards, insPerSec, qPerSec, st.SizeSkew)
		} else {
			fmt.Fprintf(out, "%8d  %14.0f  %14.0f  %8.2f  (%.2fx insert vs 1 shard)\n",
				shards, insPerSec, qPerSec, st.SizeSkew, insPerSec/base)
		}
	}
	return nil
}
