// Command erbench regenerates the tables and figures of "Benchmarking
// Filtering Techniques for Entity Resolution" (ICDE 2023) over the
// synthetic dataset analogs.
//
// Examples:
//
//	erbench -exp tableVI                      # dataset characteristics
//	erbench -exp tableVII -scale 0.05         # PC / PQ / RT of all methods
//	erbench -exp tableVII -datasets D2,D4     # restrict datasets
//	erbench -exp fig4 -datasets D2            # rank distributions
//	erbench -exp all -scale 0.02              # everything, small
//	erbench -exp tableVII -workers 1          # force the sequential path
//
// Tuning runs on a worker pool sized by -workers (default: all CPUs);
// results are reduced in canonical grid order, so the tables and figures
// are byte-identical at any worker count for the same -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"erfilter/internal/bench"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
)

func main() {
	var (
		exp      = flag.String("exp", "tableVII", "experiment: tableVI, fig3, tableVII, tableVIII, tableIX, tableX, tableXI, fig4, fig5, fig6, fig7, reduction, conclusions, ablation, serve, ann, lsm, repl, bulk, match, all")
		scale    = flag.Float64("scale", 0.05, "dataset scale relative to the paper's sizes (1.0 = full)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset, e.g. D2,D4 (default: all)")
		methods  = flag.String("methods", "", "comma-separated method subset, e.g. SBW,kNNJ (default: all)")
		full     = flag.Bool("full-grids", false, "use the paper's complete configuration grids (slow)")
		seed     = flag.Uint64("seed", 1, "random seed for stochastic methods")
		workers  = flag.Int("workers", 0, "worker-pool size for cells and grid searches (0 = NumCPU, 1 = sequential); results are identical at any count")
		reps     = flag.Int("reps", 0, "repetitions for stochastic methods (0 = default)")
		embedDim = flag.Int("embed-dim", 300, "embedding dimensionality (paper: 300)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		jsonOut  = flag.String("json", "", "also write the report as JSON to this file (report-based experiments only)")
		shards   = flag.Int("shards", 8, "max shard count for -exp serve (doubled from 1 up to this)")
		serveN   = flag.Int("serve-entities", 20000, "collection size for -exp serve")
		serveQ   = flag.Int("serve-queries", 5000, "query count for -exp serve")
		annN     = flag.Int("ann-entities", 100000, "largest collection size for -exp ann (quartered down to 1000)")
		annQ     = flag.Int("ann-queries", 200, "query count per size for -exp ann")
		annDim   = flag.Int("ann-dim", 64, "vector dimensionality for -exp ann")
		annEf    = flag.Int("ann-ef", 0, "HNSW query beam width for -exp ann (0 = default)")
		lsmN     = flag.Int("lsm-entities", 120000, "collection size for -exp lsm (must be >= 4x -lsm-cap)")
		lsmQ     = flag.Int("lsm-queries", 300, "query count for -exp lsm")
		lsmCap   = flag.Int("lsm-cap", 25000, "memtable cap for -exp lsm's disk resolver")
		lsmFanin = flag.Int("lsm-fanin", 6, "segment merge fan-in for -exp lsm")
		replN    = flag.Int("repl-entities", 20000, "collection size for -exp repl")
		replQ    = flag.Int("repl-queries", 3000, "query count per replica count for -exp repl")
		replMax  = flag.Int("repl-max", 4, "max replica count for -exp repl (doubled from 1 up to this)")
		bulkN    = flag.Int("bulk-entities", 100000, "collection size for -exp bulk")
		bulkRows = flag.Int("bulk-rows", 1000000, "NDJSON feed length for -exp bulk")
		matchN   = flag.Int("match-entities", 4000, "E1 collection size for -exp match (E2 is half, duplicates a quarter)")
		matchT   = flag.Float64("match-t", 0.85, "scorer decision threshold for -exp match")
		matchSh  = flag.Int("match-shards", 4, "shard count for -exp match's sharded-equivalence gate")
	)
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -workers must be >= 0 (0 selects all CPUs), got %d\n", *workers)
		os.Exit(2)
	}
	opts := bench.Options{
		Scale:       *scale,
		FullGrids:   *full,
		Seed:        *seed,
		Workers:     *workers,
		Repetitions: *reps,
		EmbedDim:    *embedDim,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *methods != "" {
		opts.Methods = strings.Split(*methods, ",")
	}

	logw := io.Writer(os.Stderr)
	if *quiet {
		logw = io.Discard
	}
	out := os.Stdout

	if *exp == "serve" {
		if err := serveExperiment(out, *shards, *serveN, *serveQ); err != nil {
			fmt.Fprintln(os.Stderr, "erbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "ann" {
		if err := annExperiment(out, *annN, *annQ, *annDim, *annEf); err != nil {
			fmt.Fprintln(os.Stderr, "erbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "lsm" {
		if err := lsmExperiment(out, *lsmN, *lsmQ, *lsmCap, *lsmFanin); err != nil {
			fmt.Fprintln(os.Stderr, "erbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "repl" {
		if err := replExperiment(out, *replN, *replQ, *replMax); err != nil {
			fmt.Fprintln(os.Stderr, "erbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "bulk" {
		if err := bulkExperiment(out, *bulkN, *bulkRows); err != nil {
			fmt.Fprintln(os.Stderr, "erbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "match" {
		if err := matchExperiment(out, *matchN, *matchT, *matchSh); err != nil {
			fmt.Fprintln(os.Stderr, "erbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := dispatch(*exp, opts, logw, out, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "erbench:", err)
		os.Exit(1)
	}
}

func dispatch(exp string, opts bench.Options, logw, out io.Writer, jsonPath string) error {
	opts = opts.WithDefaults()
	needsReport := map[string]bool{
		"tableVII": true, "tableVIII": true, "tableIX": true, "tableX": true,
		"tableXI": true, "fig7": true, "fig8": true, "fig9": true,
		"reduction": true, "conclusions": true, "all": true,
	}

	var report *bench.Report
	if needsReport[exp] {
		var err error
		report, err = bench.Run(opts, logw)
		if err != nil {
			return err
		}
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteJSON(f, report); err != nil {
				return err
			}
		}
	}

	switch exp {
	case "tableVI":
		bench.TableVI(out, opts.Scale)
	case "fig3":
		bench.Fig3(out, opts.Scale)
	case "tableVII":
		bench.TableVII(out, report)
	case "tableVIII":
		bench.TableVIII(out, report)
	case "tableIX":
		bench.TableIX(out, report)
	case "tableX":
		bench.TableX(out, report)
	case "tableXI":
		bench.TableXI(out, report)
	case "fig4", "fig5", "fig6":
		return rankFigures(exp, opts, out)
	case "fig7", "fig8", "fig9":
		bench.Fig7(out, report)
	case "reduction":
		bench.Reduction(out, report)
	case "conclusions":
		bench.Conclusions(out, report)
	case "ablation":
		for _, spec := range datagen.Specs(opts.Scale) {
			if !datasetWanted(opts, spec.Name) {
				continue
			}
			bench.Ablation(out, datagen.Generate(spec))
		}
	case "all":
		bench.TableVI(out, opts.Scale)
		fmt.Fprintln(out)
		bench.Fig3(out, opts.Scale)
		fmt.Fprintln(out)
		bench.TableVII(out, report)
		bench.TableVIII(out, report)
		bench.TableIX(out, report)
		bench.TableX(out, report)
		fmt.Fprintln(out)
		bench.TableXI(out, report)
		fmt.Fprintln(out)
		bench.Fig7(out, report)
		bench.Reduction(out, report)
		fmt.Fprintln(out)
		bench.Conclusions(out, report)
		fmt.Fprintln(out)
		for _, fig := range []string{"fig4", "fig5", "fig6"} {
			fmt.Fprintf(out, "--- %s ---\n", fig)
			if err := rankFigures(fig, opts, out); err != nil {
				return err
			}
		}
		fmt.Fprintln(out, "--- ablation ---")
		for _, spec := range datagen.Specs(opts.Scale) {
			if !datasetWanted(opts, spec.Name) {
				continue
			}
			bench.Ablation(out, datagen.Generate(spec))
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// rankFigures prints the Figure 4/5/6 rank-distribution histograms:
// fig4 = schema-agnostic, index E1 / query E2; fig5 = schema-agnostic,
// reversed; fig6 = schema-based, both directions.
func rankFigures(exp string, opts bench.Options, out io.Writer) error {
	for _, spec := range datagen.Specs(opts.Scale) {
		if !datasetWanted(opts, spec.Name) {
			continue
		}
		task := datagen.Generate(spec)
		switch exp {
		case "fig4":
			bench.RankFigure(out, task, entity.SchemaAgnostic, false, opts.EmbedDim)
		case "fig5":
			bench.RankFigure(out, task, entity.SchemaAgnostic, true, opts.EmbedDim)
		case "fig6":
			if !datagen.SchemaBasedDatasets[spec.Name] {
				continue
			}
			bench.RankFigure(out, task, entity.SchemaBased, false, opts.EmbedDim)
			bench.RankFigure(out, task, entity.SchemaBased, true, opts.EmbedDim)
		}
	}
	return nil
}

func datasetWanted(opts bench.Options, name string) bool {
	if len(opts.Datasets) == 0 {
		return true
	}
	for _, d := range opts.Datasets {
		if d == name {
			return true
		}
	}
	return false
}
