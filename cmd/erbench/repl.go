package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/online"
	"erfilter/internal/repl"
	"erfilter/internal/retry"
	"erfilter/internal/serve"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// replExperiment measures the scale-out case for WAL-shipping read
// replicas: the same query workload is pushed through the routing proxy
// at 1, 2 and 4 replicas (the leader plus 0, 1 and 3 followers) and the
// read throughput compared. Followers bootstrap from a streamed
// snapshot and tail the leader's log exactly as production does — the
// catch-up column is that bootstrap's wall time — and after each run
// the steady-state byte lag is read back from the follower gauges.
// Every follower's answer to a probe query is compared byte-for-byte
// against the leader's; any divergence fails the run.
func replExperiment(out io.Writer, entities, queries, maxReplicas int) error {
	if entities < 1 {
		return fmt.Errorf("-repl-entities must be >= 1, got %d", entities)
	}
	if queries < 1 {
		return fmt.Errorf("-repl-queries must be >= 1, got %d", queries)
	}
	if maxReplicas < 1 {
		return fmt.Errorf("-repl-max must be >= 1, got %d", maxReplicas)
	}
	c3g, err := text.ParseModel("C3G")
	if err != nil {
		return err
	}
	cfg := online.Config{Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 10, Clean: true}

	words := []string{
		"canon", "nikon", "sony", "olympus", "panasonic", "powershot",
		"coolpix", "cybershot", "digital", "camera", "compact", "zoom",
		"lens", "black", "silver", "battery", "charger", "kit", "mp", "hd",
	}
	attrsFor := func(i int) []entity.Attribute {
		w := func(j int) string { return words[(i*7+j*13)%len(words)] }
		return []entity.Attribute{{Name: "text",
			Value: fmt.Sprintf("%s %s %s %d %s %s", w(0), w(1), w(2), i%97, w(3), w(4))}}
	}
	probeFor := func(i int) string {
		w := func(j int) string { return words[(i*11+j*3)%len(words)] }
		return fmt.Sprintf("%s %s %d %s", w(0), w(1), i%97, w(2))
	}

	newServer := func(node *repl.Node) *httptest.Server {
		s := serve.NewServer(serve.WrapReplicated(node), node, serve.Options{
			Replication: node, RequestTimeout: 30 * time.Second,
		})
		return httptest.NewServer(s.Handler())
	}

	st, err := online.OpenStore("node", cfg, online.StoreOptions{FS: faultfs.NewMem()})
	if err != nil {
		return err
	}
	leader, err := repl.NewLeader(st, repl.Options{ID: "leader"})
	if err != nil {
		return err
	}
	defer leader.Close()
	lsrv := newServer(leader)
	defer lsrv.Close()

	fmt.Fprintf(out, "erbench repl: ingesting %d entities into the leader\n", entities)
	const batch = 1000
	for lo := 0; lo < entities; lo += batch {
		hi := min(lo+batch, entities)
		chunk := make([][]entity.Attribute, hi-lo)
		for i := range chunk {
			chunk[i] = attrsFor(lo + i)
		}
		if _, err := leader.InsertBatch(chunk); err != nil {
			return err
		}
	}

	type follower struct {
		node *repl.Node
		srv  *httptest.Server
		tail *repl.Tailer
	}
	var followers []*follower
	defer func() {
		for _, f := range followers {
			f.tail.Close()
			f.srv.Close()
			f.node.Close()
		}
	}()
	addFollower := func(i int) (*follower, time.Duration, error) {
		fol, err := online.OpenFollower("node", online.StoreOptions{FS: faultfs.NewMem()})
		if err != nil {
			return nil, 0, err
		}
		node := repl.NewFollower(fol, repl.Options{ID: fmt.Sprintf("f%d", i)})
		if err := node.SetUpstream(lsrv.URL); err != nil {
			return nil, 0, err
		}
		f := &follower{node: node, srv: newServer(node)}
		f.tail = repl.StartTailer(node, repl.TailerOptions{
			Wait:  500 * time.Millisecond,
			Retry: retry.Policy{Base: 10 * time.Millisecond, Cap: 250 * time.Millisecond},
		})
		begin := time.Now()
		deadline := begin.Add(2 * time.Minute)
		for node.LogPos() != leader.LogPos() {
			if time.Now().After(deadline) {
				return nil, 0, fmt.Errorf("follower %d failed to catch up within 2m", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
		followers = append(followers, f)
		return f, time.Since(begin), nil
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	query := func(base, probe string) ([]byte, time.Duration, error) {
		body, _ := json.Marshal(map[string]any{"text": probe, "k": 10})
		begin := time.Now()
		resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, 0, fmt.Errorf("query %s: status %d: %s", base, resp.StatusCode, data)
		}
		return data, time.Since(begin), nil
	}
	// candidatesOf strips the per-replica envelope fields (epoch headers
	// differ by design) down to the answer that must match byte-for-byte.
	candidatesOf := func(raw []byte) (string, error) {
		var parsed map[string]json.RawMessage
		if err := json.Unmarshal(raw, &parsed); err != nil {
			return "", err
		}
		return string(parsed["candidates"]), nil
	}

	// Read scale-out only shows under concurrent load: keep enough
	// in-flight clients to saturate more than one replica even on small
	// machines (on a single-core host the replicas still share the CPU,
	// so the table reads as overhead, not speedup).
	workers := max(2*runtime.GOMAXPROCS(0), 8)
	fmt.Fprintf(out, "erbench repl: %d queries per run, %d client workers, K=%d\n\n", queries, workers, cfg.K)
	fmt.Fprintf(out, "%-9s %-10s %-10s %-12s %-10s\n", "replicas", "reads/s", "p50", "max-lag", "catch-up")

	var counts []int
	for c := 1; c <= maxReplicas; c *= 2 {
		counts = append(counts, c)
	}
	baseQPS, lastQPS := 0.0, 0.0
	for _, count := range counts {
		catchUp := time.Duration(0)
		for len(followers) < count-1 {
			_, d, err := addFollower(len(followers) + 1)
			if err != nil {
				return err
			}
			catchUp = max(catchUp, d)
		}
		urls := []string{lsrv.URL}
		for _, f := range followers {
			urls = append(urls, f.srv.URL)
		}
		proxy, err := serve.NewProxy(urls, serve.ProxyOptions{ProbeEvery: 100 * time.Millisecond})
		if err != nil {
			return err
		}
		psrv := httptest.NewServer(proxy.Handler())

		// Correctness before speed: every replica answers a sample of
		// probes exactly like the leader.
		for i := 0; i < 5; i++ {
			probe := probeFor(i * 37)
			raw, _, err := query(lsrv.URL, probe)
			if err != nil {
				return err
			}
			want, err := candidatesOf(raw)
			if err != nil {
				return err
			}
			for _, u := range urls[1:] {
				raw, _, err := query(u, probe)
				if err != nil {
					return err
				}
				got, err := candidatesOf(raw)
				if err != nil {
					return err
				}
				if got != want {
					return fmt.Errorf("replica %s diverges from the leader on %q", u, probe)
				}
			}
		}

		lats := make([]time.Duration, queries)
		var wg sync.WaitGroup
		var firstErr error
		var errOnce sync.Once
		begin := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < queries; i += workers {
					_, d, err := query(psrv.URL, probeFor(i))
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					lats[i] = d
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(begin)
		psrv.Close()
		proxy.Close()
		if firstErr != nil {
			return firstErr
		}

		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50 := lats[len(lats)/2]
		qps := float64(queries) / elapsed.Seconds()
		if count == 1 {
			baseQPS = qps
		}
		lastQPS = qps
		var maxLag int64
		for _, f := range followers {
			if ns, ok := f.node.Stats().(repl.NodeStats); ok {
				maxLag = max(maxLag, ns.LagBytes)
			}
		}
		cu := "-"
		if catchUp > 0 {
			cu = catchUp.Round(time.Millisecond).String()
		}
		fmt.Fprintf(out, "%-9d %-10.0f %-10s %-12d %-10s\n",
			count, qps, p50.Round(time.Microsecond), maxLag, cu)
	}
	if len(counts) > 1 && baseQPS > 0 {
		fmt.Fprintf(out, "\nscale-out: %.2fx read throughput at %d replicas vs 1\n",
			lastQPS/baseQPS, counts[len(counts)-1])
	}
	return nil
}
