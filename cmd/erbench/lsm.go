package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// lsmExperiment benchmarks the on-disk segment tier against the
// all-in-memory resolver it shadows: the same workload runs through
// both, the disk resolver holding only -lsm-cap entities in its
// memtable while the bulk lives in mmap'd segment files. Reports ingest
// wall time, query p50, and the Go-heap footprint of each index after a
// full GC — the tier's segments are file-backed pages outside the heap,
// so the heap column is exactly the RAM the index pins — plus the
// tier's live-segment count and on-disk bytes. Every query's answers
// are compared byte-for-byte; any divergence fails the run.
func lsmExperiment(out io.Writer, entities, queries, memCap, fanin int) error {
	if memCap < 1 {
		return fmt.Errorf("-lsm-cap must be >= 1, got %d", memCap)
	}
	if entities < 4*memCap {
		return fmt.Errorf("-lsm-entities (%d) must be >= 4x -lsm-cap (%d) so most of the collection lives on disk", entities, memCap)
	}
	if queries < 1 {
		return fmt.Errorf("-lsm-queries must be >= 1, got %d", queries)
	}
	c3g, err := text.ParseModel("C3G")
	if err != nil {
		return err
	}
	cfg := online.Config{Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 10, Clean: true}

	words := []string{
		"canon", "nikon", "sony", "olympus", "panasonic", "powershot",
		"coolpix", "cybershot", "digital", "camera", "compact", "zoom",
		"lens", "black", "silver", "battery", "charger", "kit", "mp", "hd",
	}
	attrsFor := func(i int) []entity.Attribute {
		w := func(j int) string { return words[(i*7+j*13)%len(words)] }
		return []entity.Attribute{{Name: "text",
			Value: fmt.Sprintf("%s %s %s %d %s %s", w(0), w(1), w(2), i%97, w(3), w(4))}}
	}
	const batch = 1000
	ingest := func(r interface {
		InsertBatch([][]entity.Attribute) []int64
	}) time.Duration {
		begin := time.Now()
		for lo := 0; lo < entities; lo += batch {
			hi := lo + batch
			if hi > entities {
				hi = entities
			}
			chunk := make([][]entity.Attribute, hi-lo)
			for i := range chunk {
				chunk[i] = attrsFor(lo + i)
			}
			r.InsertBatch(chunk)
		}
		return time.Since(begin)
	}
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	dir, err := os.MkdirTemp("", "erbench-lsm-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintf(out, "on-disk LSM tier: %d entities, memtable cap %d (%.1fx beyond), merge fanin %d, method=knnj k=10 model=C3G\n\n",
		entities, memCap, float64(entities)/float64(memCap), fanin)

	base := heap()
	mem := online.NewResolver(cfg)
	memIngest := ingest(mem)
	memHeap := heap() - base

	dcfg := cfg
	dcfg.Storage = online.StorageDisk
	dcfg.SegmentDir = dir
	dcfg.MemtableCap = memCap
	dcfg.MergeFanin = fanin
	disk, err := online.OpenResolver(dcfg)
	if err != nil {
		return err
	}
	defer disk.Close()
	base = heap()
	diskIngest := ingest(disk)
	diskHeap := heap() - base

	probe := func(q int) []entity.Attribute { return attrsFor(q * 31) }
	p50 := func(r *online.Resolver) (time.Duration, [][]online.Candidate) {
		lat := make([]time.Duration, queries)
		ans := make([][]online.Candidate, queries)
		for q := 0; q < queries; q++ {
			begin := time.Now()
			ans[q] = r.Query(probe(q), online.QueryOptions{})
			lat[q] = time.Since(begin)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[queries/2], ans
	}
	memP50, memAns := p50(mem)
	diskP50, diskAns := p50(disk)

	for q := range memAns {
		w, _ := json.Marshal(memAns[q])
		g, _ := json.Marshal(diskAns[q])
		if !bytes.Equal(w, g) {
			return fmt.Errorf("query %d diverged:\nmemory: %s\ndisk:   %s", q, w, g)
		}
	}

	st := disk.Stats()
	mib := func(b uint64) float64 { return float64(b) / (1 << 20) }
	fmt.Fprintf(out, "%8s  %12s  %12s  %12s  %10s  %12s\n",
		"storage", "ingest", "query p50", "index heap", "segments", "disk bytes")
	fmt.Fprintf(out, "%8s  %12s  %12s  %9.1f MiB  %10s  %12s\n",
		"memory", memIngest.Round(time.Millisecond), round(memP50), mib(memHeap), "-", "-")
	fmt.Fprintf(out, "%8s  %12s  %12s  %9.1f MiB  %10d  %8.1f MiB\n",
		"disk", diskIngest.Round(time.Millisecond), round(diskP50), mib(diskHeap), st.Segments, mib(uint64(st.DiskBytes)))
	fmt.Fprintf(out, "\nanswers: %d/%d queries byte-identical across both resolvers\n", queries, queries)
	return nil
}
