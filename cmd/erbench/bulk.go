package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/online"
	"erfilter/internal/serve"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// bulkExperiment drives the NDJSON bulk-resolve protocol end to end: it
// boots the real HTTP server over a populated index, generates the feed
// on the fly (never materialized — the client writes rows through a
// pipe as the server answers), and streams every row through POST
// /v1/resolve/stream. Reports ingest and stream wall time, rows/s, and
// the server-process heap — peak while streaming and settled after —
// relative to the pre-stream baseline, which is how the protocol's
// O(batch) memory claim is priced: the heap envelope must stay flat no
// matter how many rows flow through. A deterministic sample of the
// streamed answers is replayed through /v1/query/batch and compared
// byte for byte; any divergence fails the run.
func bulkExperiment(out io.Writer, entities, rows int) error {
	if entities < 1 {
		return fmt.Errorf("-bulk-entities must be >= 1, got %d", entities)
	}
	if rows < 1 {
		return fmt.Errorf("-bulk-rows must be >= 1, got %d", rows)
	}
	c3g, err := text.ParseModel("C3G")
	if err != nil {
		return err
	}
	cfg := online.Config{Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 4, Clean: true}

	words := []string{
		"canon", "nikon", "sony", "olympus", "panasonic", "powershot",
		"coolpix", "cybershot", "digital", "camera", "compact", "zoom",
		"lens", "black", "silver", "battery", "charger", "kit", "mp", "hd",
	}
	rowText := func(i int) string {
		w := func(j int) string { return words[(i*7+j*13)%len(words)] }
		return fmt.Sprintf("%s %s %s %d %s", w(0), w(1), w(2), i%97, w(3))
	}

	res := online.NewResolver(cfg)
	begin := time.Now()
	const batch = 1000
	for lo := 0; lo < entities; lo += batch {
		hi := min(lo+batch, entities)
		chunk := make([][]entity.Attribute, hi-lo)
		for i := range chunk {
			chunk[i] = []entity.Attribute{{Name: "text", Value: rowText(lo + i)}}
		}
		res.InsertBatch(chunk)
	}
	ingest := time.Since(begin)

	ts := httptest.NewServer(serve.NewServer(serve.WrapResolver(res), nil, serve.Options{}).Handler())
	defer ts.Close()

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	base := heap()

	// Sample the live heap while the stream runs; the peak prices the
	// protocol's true working set, before any settling GC.
	var peak atomic.Uint64
	stop := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if h := ms.HeapAlloc; h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()

	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 64<<10)
		for i := 0; i < rows; i++ {
			line, _ := json.Marshal(map[string]string{"text": rowText(i * 31)})
			bw.Write(line)
			bw.WriteByte('\n')
		}
		bw.Flush()
		pw.Close()
	}()

	begin = time.Now()
	resp, err := http.Post(ts.URL+"/v1/resolve/stream?k=4", "application/x-ndjson", pr)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: status %s", resp.Status)
	}

	// Every sampleEvery-th row's answer is kept for the batch replay.
	const sampleEvery = 1000
	type line struct {
		I          int             `json:"i"`
		Candidates json.RawMessage `json:"candidates"`
		Error      *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
		Done    bool `json:"done"`
		Records int  `json:"records"`
		Results int  `json:"results"`
		Errors  int  `json:"errors"`
	}
	sampled := map[int]json.RawMessage{}
	var done *line
	results := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return fmt.Errorf("bad response line %q: %w", sc.Bytes(), err)
		}
		switch {
		case l.Done:
			done = &l
		case l.Error != nil:
			return fmt.Errorf("row %d failed: %s: %s", l.I, l.Error.Code, l.Error.Message)
		default:
			results++
			if l.I%sampleEvery == 0 {
				sampled[l.I] = l.Candidates
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stream: %w", err)
	}
	wall := time.Since(begin)
	close(stop)
	<-sampleDone
	settled := heap()
	if done == nil || done.Records != rows || done.Results != rows || done.Errors != 0 || results != rows {
		return fmt.Errorf("stream summary %+v with %d result lines; want %d clean rows", done, results, rows)
	}

	// Replay the sample through /v1/query/batch in cap-sized chunks and
	// compare byte for byte.
	var idx []int
	for i := 0; i < rows; i += sampleEvery {
		idx = append(idx, i)
	}
	verified := 0
	for lo := 0; lo < len(idx); lo += serve.DefaultMaxBatch {
		hi := min(lo+serve.DefaultMaxBatch, len(idx))
		queries := make([]map[string]string, hi-lo)
		for j := range queries {
			queries[j] = map[string]string{"text": rowText(idx[lo+j] * 31)}
		}
		body, _ := json.Marshal(map[string]any{"queries": queries, "k": 4})
		bresp, err := http.Post(ts.URL+"/v1/query/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("batch replay: %w", err)
		}
		var br struct {
			Results []struct {
				Candidates json.RawMessage `json:"candidates"`
			} `json:"results"`
		}
		err = json.NewDecoder(bresp.Body).Decode(&br)
		bresp.Body.Close()
		if err != nil || bresp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch replay: status %s err %v", bresp.Status, err)
		}
		for j, r := range br.Results {
			i := idx[lo+j]
			if !bytes.Equal(sampled[i], r.Candidates) {
				return fmt.Errorf("row %d diverged: stream %s, batch %s", i, sampled[i], r.Candidates)
			}
			verified++
		}
	}

	mb := func(d uint64) float64 { return float64(d) / (1 << 20) }
	delta := func(h uint64) float64 {
		if h <= base {
			return 0
		}
		return mb(h - base)
	}
	fmt.Fprintf(out, "bulk resolve stream: %d rows vs %d-entity index (k=4, batch unit %d)\n",
		rows, entities, serve.DefaultMaxBatch)
	fmt.Fprintf(out, "  ingest        %12v  (%d entities)\n", ingest.Round(time.Millisecond), entities)
	fmt.Fprintf(out, "  stream        %12v  (%.0f rows/s)\n", wall.Round(time.Millisecond), float64(rows)/wall.Seconds())
	fmt.Fprintf(out, "  heap baseline %9.1f MB  (index resident, before the stream)\n", mb(base))
	fmt.Fprintf(out, "  heap peak     %+9.1f MB  while streaming\n", delta(peak.Load()))
	fmt.Fprintf(out, "  heap settled  %+9.1f MB  after the stream + GC\n", delta(settled))
	fmt.Fprintf(out, "  verified      %9d sampled rows byte-identical to /v1/query/batch\n", verified)
	return nil
}
