// Command ercli runs entity-resolution filtering (and optional
// verification) on CSV inputs — the tool a practitioner points at two
// exported tables:
//
//	ercli -e1 shopA.csv -e2 shopB.csv -method knnj -k 3 > candidates.csv
//	ercli -e1 a.csv -e2 b.csv -method pbw -truth gt.csv        # evaluates
//	ercli -e1 a.csv -e2 b.csv -method knnj -tune -truth gt.csv # Problem 1
//	ercli -e1 a.csv -e2 b.csv -method epsjoin -t 0.4 -verify tfidf:0.5
//
// Each CSV has a header row of attribute names and one entity per row.
// The optional groundtruth CSV holds (E1 row index, E2 row index) pairs.
// Candidates are written to stdout as "e1_index,e2_index" rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/matching"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
	"erfilter/internal/tuning"
)

func main() {
	var (
		e1Path    = flag.String("e1", "", "CSV file of the first collection (required)")
		e2Path    = flag.String("e2", "", "CSV file of the second collection (required)")
		truthPath = flag.String("truth", "", "optional groundtruth CSV of (e1,e2) index pairs; enables evaluation")
		method    = flag.String("method", "knnj", "filter: pbw, dbw, sbw, knnj, dknn, epsjoin, faiss, deepblocker")
		schema    = flag.String("schema", "agnostic", "schema setting: agnostic or based")
		attribute = flag.String("attribute", "", "best attribute for -schema based (default: auto-select)")
		k         = flag.Int("k", 3, "cardinality threshold for knnj/faiss/deepblocker")
		threshold = flag.Float64("t", 0.4, "similarity threshold for epsjoin")
		model     = flag.String("model", "C3G", "representation model for sparse methods (T1G..C5GM)")
		clean     = flag.Bool("clean", true, "apply stop-word removal and stemming (sparse/dense methods)")
		tune      = flag.Bool("tune", false, "fine-tune the method under Problem 1 (requires -truth)")
		target    = flag.Float64("target", 0.9, "recall target for -tune")
		workers   = flag.Int("workers", 0, "worker-pool size for -tune grid searches (0 = NumCPU, 1 = sequential); results are identical at any count")
		verify    = flag.String("verify", "", "verification, e.g. tfidf:0.5, jaro:0.8, jaccard:0.3")
		quiet     = flag.Bool("quiet", false, "suppress the evaluation summary on stderr")
	)
	flag.Parse()

	if *e1Path == "" || *e2Path == "" {
		fmt.Fprintln(os.Stderr, "ercli: -e1 and -e2 are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*e1Path, *e2Path, *truthPath, *method, *schema, *attribute,
		*k, *threshold, *model, *clean, *tune, *target, *workers, *verify, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "ercli:", err)
		os.Exit(1)
	}
}

func run(e1Path, e2Path, truthPath, method, schema, attribute string,
	k int, threshold float64, modelName string, clean, tune bool,
	target float64, workers int, verify string, quiet bool) error {

	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 selects all CPUs), got %d", workers)
	}
	task, err := loadTask(e1Path, e2Path, truthPath, attribute)
	if err != nil {
		return err
	}
	setting := entity.SchemaAgnostic
	if schema == "based" {
		setting = entity.SchemaBased
	}
	in := core.NewInput(task, setting)

	model, err := text.ParseModel(modelName)
	if err != nil {
		return err
	}

	var filter core.Filter
	if tune {
		if task.Truth.Size() == 0 {
			return fmt.Errorf("-tune requires -truth with at least one pair")
		}
		r, err := tuneMethod(method, in, target, workers)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "tuned %s: PC=%.3f PQ=%.3f config{%s}\n",
				r.Method, r.Metrics.PC, r.Metrics.PQ, r.ConfigString())
		}
		filter = r.Filter
	} else {
		filter, err = buildMethod(method, model, clean, k, threshold, task)
		if err != nil {
			return err
		}
	}

	out, err := filter.Run(in)
	if err != nil {
		return err
	}
	pairs := out.Pairs

	if verify != "" {
		m, err := parseVerifier(verify, in)
		if err != nil {
			return err
		}
		pairs = m.Verify(pairs, in.V1, in.V2)
	}

	if !quiet {
		if task.Truth.Size() > 0 {
			metrics := core.Evaluate(pairs, task.Truth)
			fmt.Fprintf(os.Stderr, "%s: PC=%.3f PQ=%.3f candidates=%d rt=%v\n",
				filter.Name(), metrics.PC, metrics.PQ, metrics.Candidates, out.Timing.Total)
		} else {
			fmt.Fprintf(os.Stderr, "%s: candidates=%d rt=%v\n", filter.Name(), len(pairs), out.Timing.Total)
		}
	}
	for _, p := range pairs {
		fmt.Printf("%d,%d\n", p.Left, p.Right)
	}
	return nil
}

func loadTask(e1Path, e2Path, truthPath, attribute string) (*entity.Task, error) {
	read := func(path, name string) (*entity.Dataset, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return entity.ReadCSV(name, f)
	}
	e1, err := read(e1Path, "E1")
	if err != nil {
		return nil, err
	}
	e2, err := read(e2Path, "E2")
	if err != nil {
		return nil, err
	}
	task := &entity.Task{Name: "cli", E1: e1, E2: e2, Truth: entity.NewGroundTruth(nil)}
	if truthPath != "" {
		f, err := os.Open(truthPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		truth, err := entity.ReadGroundTruthCSV(f, e1.Len(), e2.Len())
		if err != nil {
			return nil, err
		}
		task.Truth = truth
	}
	if attribute != "" {
		task.BestAttribute = attribute
	} else {
		task.BestAttribute = entity.BestAttribute(task)
	}
	return task, nil
}

func buildMethod(method string, model text.Model, clean bool, k int, threshold float64, task *entity.Task) (core.Filter, error) {
	smallerIsE2 := task.E2.Len() <= task.E1.Len()
	switch strings.ToLower(method) {
	case "pbw":
		return core.NewPBW(), nil
	case "dbw":
		return core.NewDBW(), nil
	case "sbw":
		w := core.NewPBW()
		w.Label = "SBW"
		return w, nil
	case "knnj":
		return &core.KNNJoinFilter{Clean: clean, Model: model, Measure: sparse.Cosine, K: k, Reverse: !smallerIsE2}, nil
	case "dknn":
		return core.NewDkNN(smallerIsE2), nil
	case "epsjoin":
		return &core.EpsJoinFilter{Clean: clean, Model: model, Measure: sparse.Cosine, Threshold: threshold}, nil
	case "faiss":
		return &core.FlatKNNFilter{Clean: clean, K: k, Reverse: !smallerIsE2}, nil
	case "deepblocker":
		return &core.DeepBlockerFilter{Clean: clean, K: k, Reverse: !smallerIsE2}, nil
	}
	return nil, fmt.Errorf("unknown method %q", method)
}

func tuneMethod(method string, in *core.Input, target float64, workers int) (*tuning.Result, error) {
	switch strings.ToLower(method) {
	case "sbw", "pbw":
		space := tuning.BlockingSpaces(false)[0]
		space.Workers = workers
		return tuning.TuneBlocking(in, space, target), nil
	case "knnj", "dknn":
		space := tuning.DefaultSparseSpace(false)
		space.Workers = workers
		return tuning.TuneKNNJoin(in, space, target), nil
	case "epsjoin":
		space := tuning.DefaultSparseSpace(false)
		space.Workers = workers
		return tuning.TuneEpsJoin(in, space, target), nil
	case "faiss":
		space := tuning.DefaultDenseSpace(false)
		space.Workers = workers
		return tuning.TuneFlatKNN(in, space, target)
	}
	return nil, fmt.Errorf("method %q does not support -tune", method)
}

func parseVerifier(spec string, in *core.Input) (*matching.Matcher, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("verify spec %q must be name:threshold", spec)
	}
	thr, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, fmt.Errorf("verify threshold %q: %w", parts[1], err)
	}
	var sim matching.Similarity
	switch parts[0] {
	case "levenshtein":
		sim = matching.SimLevenshtein
	case "jaro":
		sim = matching.SimJaro
	case "jarowinkler":
		sim = matching.SimJaroWinkler
	case "jaccard":
		sim = matching.SimTokenJaccard
	case "tfidf":
		sim = matching.SimTFIDFCosine
	default:
		return nil, fmt.Errorf("unknown verifier %q", parts[0])
	}
	return matching.NewMatcher(sim, thr, in.V1, in.V2), nil
}
