package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/text"
)

func writeTaskCSVs(t *testing.T) (e1, e2, truth string) {
	t.Helper()
	dir := t.TempDir()
	task := datagen.Generate(datagen.QuickSpec(20, 40, 12, 5))
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	e1 = write("e1.csv", func(f *os.File) error { return entity.WriteCSV(f, task.E1) })
	e2 = write("e2.csv", func(f *os.File) error { return entity.WriteCSV(f, task.E2) })
	truth = write("truth.csv", func(f *os.File) error {
		for _, p := range task.Truth.Pairs() {
			if _, err := f.WriteString(itoa(p.Left) + "," + itoa(p.Right) + "\n"); err != nil {
				return err
			}
		}
		return nil
	})
	return e1, e2, truth
}

func itoa(x int32) string {
	if x == 0 {
		return "0"
	}
	var b []byte
	for x > 0 {
		b = append([]byte{byte('0' + x%10)}, b...)
		x /= 10
	}
	return string(b)
}

func TestLoadTask(t *testing.T) {
	e1, e2, truth := writeTaskCSVs(t)
	task, err := loadTask(e1, e2, truth, "")
	if err != nil {
		t.Fatal(err)
	}
	if task.E1.Len() != 20 || task.E2.Len() != 40 {
		t.Fatalf("sizes %d/%d", task.E1.Len(), task.E2.Len())
	}
	if task.Truth.Size() != 12 {
		t.Fatalf("truth = %d", task.Truth.Size())
	}
	if task.BestAttribute == "" {
		t.Fatal("best attribute not selected")
	}
	// Explicit attribute override.
	task2, err := loadTask(e1, e2, "", "title")
	if err != nil {
		t.Fatal(err)
	}
	if task2.BestAttribute != "title" {
		t.Fatalf("attribute override ignored: %q", task2.BestAttribute)
	}
}

func TestBuildMethodAll(t *testing.T) {
	e1, e2, truth := writeTaskCSVs(t)
	task, err := loadTask(e1, e2, truth, "")
	if err != nil {
		t.Fatal(err)
	}
	model, _ := text.ParseModel("C3G")
	for _, m := range []string{"pbw", "dbw", "sbw", "knnj", "dknn", "epsjoin", "faiss", "deepblocker"} {
		f, err := buildMethod(m, model, true, 2, 0.4, task)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if f == nil || f.Name() == "" {
			t.Fatalf("%s: nil filter", m)
		}
	}
	if _, err := buildMethod("bogus", model, true, 2, 0.4, task); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestParseVerifier(t *testing.T) {
	e1, e2, _ := writeTaskCSVs(t)
	task, err := loadTask(e1, e2, "", "")
	if err != nil {
		t.Fatal(err)
	}
	in := newInputForTest(task)
	for _, spec := range []string{"tfidf:0.5", "jaro:0.8", "jaccard:0.3", "levenshtein:0.7", "jarowinkler:0.9"} {
		if _, err := parseVerifier(spec, in); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
	for _, bad := range []string{"tfidf", "nope:0.5", "jaro:xx"} {
		if _, err := parseVerifier(bad, in); err == nil {
			t.Errorf("%s should fail", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	e1, e2, truth := writeTaskCSVs(t)
	// Full pipeline with tuning and verification; stdout noise is fine in
	// tests.
	if err := run(e1, e2, truth, "knnj", "agnostic", "", 2, 0.4, "C3G", true, true, 0.9, 0, "tfidf:0.3", true); err != nil {
		t.Fatal(err)
	}
	// Without truth, without tuning.
	if err := run(e1, e2, "", "pbw", "agnostic", "", 2, 0.4, "C3G", true, false, 0.9, 0, "", true); err != nil {
		t.Fatal(err)
	}
	// Schema-based.
	if err := run(e1, e2, truth, "epsjoin", "based", "title", 2, 0.3, "C3G", true, false, 0.9, 0, "", true); err != nil {
		t.Fatal(err)
	}
	// Tuning without truth must fail.
	if err := run(e1, e2, "", "knnj", "agnostic", "", 2, 0.4, "C3G", true, true, 0.9, 0, "", true); err == nil {
		t.Fatal("tune without truth should fail")
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	e1, e2, truth := writeTaskCSVs(t)
	err := run(e1, e2, truth, "knnj", "agnostic", "", 2, 0.4, "C3G", true, true, 0.9, -1, "", true)
	if err == nil {
		t.Fatal("negative -workers must be rejected")
	}
	if !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("error should name the flag: %v", err)
	}
}

// newInputForTest mirrors the input construction of run().
func newInputForTest(task *entity.Task) *core.Input {
	return core.NewInput(task, entity.SchemaAgnostic)
}
