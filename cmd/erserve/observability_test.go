package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/metrics"
	"erfilter/internal/online"
)

// TestTimeoutCountedAsError is the regression test for the serving-path
// blind spot: a handler killed by the per-request deadline used to be
// recorded as a 200 (the instrumentation sat inside the timeout wrapper
// and never saw the 503 http.TimeoutHandler wrote), and the timeout body
// went out as text/html. The middleware is now composed the other way —
// instrument(timeoutJSON(handler)) — so the observation happens on the
// outermost writer.
func TestTimeoutCountedAsError(t *testing.T) {
	s := newServer(online.NewResolver(testServingConfig()), nil, 0)
	release := make(chan struct{})
	defer close(release)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		writeJSON(w, http.StatusOK, map[string]string{"never": "sent"})
	})
	// Compose exactly as handler() does for JSON endpoints.
	h := s.instrument("slow", timeoutJSON(30*time.Millisecond, slow))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/slow", nil))

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request answered %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeout response Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("timeout body is not the JSON error envelope: %q (%v)", rec.Body.String(), err)
	}

	st := s.eps["slow"]
	if got := st.errors.Value(); got != 1 {
		t.Fatalf("timed-out request incremented the error counter by %d, want 1", got)
	}
	if got := st.hist.Count(); got != 1 {
		t.Fatalf("timed-out request recorded %d latency observations, want 1", got)
	}
	// The recorded latency is the deadline the client waited out, not the
	// inner handler's (unfinished) duration.
	if snap := st.hist.Snapshot(); snap.Max < (30 * time.Millisecond).Nanoseconds() {
		t.Fatalf("recorded latency %dns is shorter than the 30ms deadline", snap.Max)
	}

	// A fast request through the same chain keeps its own Content-Type
	// and does not move the error counter.
	rec = httptest.NewRecorder()
	fast := s.instrument("fast", timeoutJSON(time.Second, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})))
	fast.ServeHTTP(rec, httptest.NewRequest("GET", "/fast", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "text/plain" {
		t.Fatalf("fast path: code=%d ct=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if got := s.eps["fast"].errors.Value(); got != 0 {
		t.Fatalf("fast request moved the error counter to %d", got)
	}
}

// TestQueryLimit pins the candidate-list cap: an unbounded match set is
// truncated to the requested (or default) limit and flagged, instead of
// serializing every candidate a permissive eps admits.
func TestQueryLimit(t *testing.T) {
	ts, res := newTestServer(t)
	for i := 0; i < 8; i++ {
		res.Insert([]entity.Attribute{{Name: "name", Value: fmt.Sprintf("canon powershot a%d", i)}})
	}

	var q struct {
		Candidates []struct{ ID int64 } `json:"candidates"`
		Truncated  bool                 `json:"truncated"`
	}
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{
		"text": "canon powershot", "k": 8, "limit": 3,
	}, &q); code != http.StatusOK {
		t.Fatalf("limited query code=%d", code)
	}
	if len(q.Candidates) != 3 || !q.Truncated {
		t.Fatalf("limit=3 returned %d candidates truncated=%v", len(q.Candidates), q.Truncated)
	}

	// Under the limit: the full candidate list, no truncation flag. (The
	// kNN search keeps ties at the k-th score, so assert the bound, not
	// an exact count.)
	q.Candidates, q.Truncated = nil, false
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{
		"text": "canon powershot", "k": 2, "limit": 100,
	}, &q); code != http.StatusOK {
		t.Fatalf("unlimited query code=%d", code)
	}
	if len(q.Candidates) == 0 || len(q.Candidates) > 8 || q.Truncated {
		t.Fatalf("k=2 limit=100 returned %d candidates truncated=%v", len(q.Candidates), q.Truncated)
	}

	// A negative limit is a client error.
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{
		"text": "canon", "limit": -1,
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative limit code=%d", code)
	}
}

// TestQueryTrace checks "trace":true returns the per-phase breakdown of
// that one request without disturbing the normal response shape.
func TestQueryTrace(t *testing.T) {
	ts, res := newTestServer(t)
	res.Insert([]entity.Attribute{{Name: "name", Value: "canon powershot a540"}})

	var q struct {
		Candidates []struct{ ID int64 } `json:"candidates"`
		Trace      *struct {
			Epoch      uint64 `json:"epoch"`
			EncodeUS   int64  `json:"encode_us"`
			SearchUS   int64  `json:"search_us"`
			Candidates int    `json:"candidates"`
		} `json:"trace"`
	}
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{
		"text": "canon powershot", "trace": true,
	}, &q); code != http.StatusOK {
		t.Fatalf("traced query code=%d", code)
	}
	if q.Trace == nil {
		t.Fatal("trace requested but absent from the response")
	}
	if q.Trace.Candidates < len(q.Candidates) || q.Trace.EncodeUS < 0 || q.Trace.SearchUS < 0 {
		t.Fatalf("implausible trace: %+v", *q.Trace)
	}

	q.Trace = nil
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{
		"text": "canon powershot",
	}, &q); code != http.StatusOK || q.Trace != nil {
		t.Fatalf("untraced query: code=%d trace=%+v", code, q.Trace)
	}
}

// TestStatusWriterFlusher pins that the instrumentation wrapper does not
// hide http.Flusher from streaming handlers (/snapshot flushes while
// writing the collection).
func TestStatusWriterFlusher(t *testing.T) {
	var _ http.Flusher = (*statusWriter)(nil) // interface is satisfied

	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}
	f, ok := any(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not satisfy http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}

	// A non-flushing underlying writer must not panic.
	sw = &statusWriter{ResponseWriter: nopWriter{httptest.NewRecorder()}, status: http.StatusOK}
	sw.Flush()
}

// nopWriter hides every optional interface of the wrapped writer.
type nopWriter struct{ w http.ResponseWriter }

func (n nopWriter) Header() http.Header         { return n.w.Header() }
func (n nopWriter) Write(b []byte) (int, error) { return n.w.Write(b) }
func (n nopWriter) WriteHeader(code int)        { n.w.WriteHeader(code) }

// TestPprofGating: the profiling endpoints exist only behind -pprof.
func TestPprofGating(t *testing.T) {
	s := newServer(online.NewResolver(testServingConfig()), nil, 0)
	off := httptest.NewServer(s.handler(time.Second, false))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without -pprof: %d", resp.StatusCode)
	}

	s2 := newServer(online.NewResolver(testServingConfig()), nil, 0)
	on := httptest.NewServer(s2.handler(time.Second, true))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not served with -pprof: %d", resp.StatusCode)
	}
}

// TestMetricsScrapeEndToEnd runs the real daemon (durable mode), drives
// traffic through it, scrapes GET /metrics and validates the exposition
// parses and carries the series the dashboards depend on: endpoint
// latency histograms, WAL fsync/group-commit distributions and the
// resolver's epoch counters. CI runs exactly this test against every
// change as the /metrics contract gate.
func TestMetricsScrapeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	o := options{
		addr: "127.0.0.1:0", method: "knnj", schema: "agnostic", model: "C3G",
		clean: true, k: 3, threshold: 0.4,
		walDir: filepath.Join(dir, "store"), checkpointEvery: 64,
		writeQueue: 8, requestTimeout: 10 * time.Second,
	}
	addrc := make(chan string, 1)
	o.ready = func(a string) { addrc <- a }
	done := make(chan error, 1)
	go func() { done <- run(o) }()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	}
	defer func() {
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}()

	// Traffic: inserts (WAL fsyncs, epoch publishes), queries (latency
	// histograms), one guaranteed error (a 404 GET).
	for i := 0; i < 5; i++ {
		body, _ := json.Marshal(map[string]any{"text": fmt.Sprintf("canon powershot a%d", i)})
		resp, err := http.Post(base+"/entities", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: %v %v", i, err, resp)
		}
		resp.Body.Close()
	}
	body, _ := json.Marshal(map[string]any{"text": "canon powershot"})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %v", err, resp)
	}
	resp.Body.Close()
	if resp, err = http.Get(base + "/entities/999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing get: %v %v", err, resp)
	}
	resp.Body.Close()

	// Scrape and validate.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("exposition Content-Type = %q", ct)
	}
	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	mustHave := func(name string, labels map[string]string, min float64) {
		t.Helper()
		v, ok := metrics.Find(samples, name, labels)
		if !ok {
			t.Fatalf("scrape is missing %s%v", name, labels)
		}
		if v < min {
			t.Fatalf("%s%v = %v, want >= %v", name, labels, v, min)
		}
	}
	mustHave("erserve_http_request_duration_seconds_count", map[string]string{"endpoint": "insert"}, 5)
	mustHave("erserve_http_request_duration_seconds_count", map[string]string{"endpoint": "query"}, 1)
	mustHave("erserve_http_request_errors_total", map[string]string{"endpoint": "get"}, 1)
	mustHave("wal_fsync_duration_seconds_count", nil, 1)
	mustHave("wal_commit_batch_records_count", nil, 1)
	mustHave("wal_appended_records_total", nil, 5)
	mustHave("online_epoch_publishes_total", nil, 1)
	mustHave("online_query_duration_seconds_count", map[string]string{"method": "knnj"}, 1)
	mustHave("online_entities", nil, 5)
	mustHave("store_degraded", nil, 0)
	mustHave("erserve_uptime_seconds", nil, 0)

	// The insert latency histogram has a usable shape: sum > 0 and at
	// least one finite bucket below +Inf.
	sum, ok := metrics.Find(samples, "erserve_http_request_duration_seconds_sum", map[string]string{"endpoint": "insert"})
	if !ok || sum <= 0 {
		t.Fatalf("insert latency sum = %v ok=%v", sum, ok)
	}
}
