package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"erfilter/internal/metrics"
)

// scrapeDaemon boots the real daemon with o, drives traffic through fn,
// scrapes /v1/metrics and returns the parsed samples. The daemon is torn
// down with a SIGTERM before returning.
func scrapeDaemon(t *testing.T, o options, traffic func(base string)) []metrics.Sample {
	t.Helper()
	addrc := make(chan string, 1)
	o.ready = func(a string) { addrc <- a }
	done := make(chan error, 1)
	go func() { done <- run(o) }()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	}
	defer func() {
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}()

	traffic(base)

	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("exposition Content-Type = %q", ct)
	}
	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return samples
}

func mustHave(t *testing.T, samples []metrics.Sample, name string, labels map[string]string, min float64) {
	t.Helper()
	v, ok := metrics.Find(samples, name, labels)
	if !ok {
		t.Fatalf("scrape is missing %s%v", name, labels)
	}
	if v < min {
		t.Fatalf("%s%v = %v, want >= %v", name, labels, v, min)
	}
}

// TestMetricsScrapeEndToEnd runs the real daemon (durable mode), drives
// traffic through it, scrapes GET /v1/metrics and validates the
// exposition parses and carries the series the dashboards depend on:
// endpoint latency histograms, WAL fsync/group-commit distributions and
// the resolver's epoch counters. CI runs exactly this test against every
// change as the /metrics contract gate.
func TestMetricsScrapeEndToEnd(t *testing.T) {
	o := options{
		addr: "127.0.0.1:0", method: "knnj", schema: "agnostic", model: "C3G",
		clean: true, k: 3, threshold: 0.4, shards: 1,
		walDir: filepath.Join(t.TempDir(), "store"), checkpointEvery: 64,
		writeQueue: 8, requestTimeout: 10 * time.Second,
	}
	samples := scrapeDaemon(t, o, func(base string) {
		// Traffic: inserts (WAL fsyncs, epoch publishes), queries (latency
		// histograms), one guaranteed error (a 404 GET).
		for i := 0; i < 5; i++ {
			body, _ := json.Marshal(map[string]any{"text": fmt.Sprintf("canon powershot a%d", i)})
			resp, err := http.Post(base+"/v1/entities", "application/json", bytes.NewReader(body))
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("insert %d: %v %v", i, err, resp)
			}
			resp.Body.Close()
		}
		body, _ := json.Marshal(map[string]any{"text": "canon powershot"})
		resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("query: %v %v", err, resp)
		}
		resp.Body.Close()
		if resp, err = http.Get(base + "/v1/entities/999999"); err != nil || resp.StatusCode != http.StatusNotFound {
			t.Fatalf("missing get: %v %v", err, resp)
		}
		resp.Body.Close()
	})

	mustHave(t, samples, "erserve_http_request_duration_seconds_count", map[string]string{"endpoint": "insert"}, 5)
	mustHave(t, samples, "erserve_http_request_duration_seconds_count", map[string]string{"endpoint": "query"}, 1)
	mustHave(t, samples, "erserve_http_request_errors_total", map[string]string{"endpoint": "get"}, 1)
	mustHave(t, samples, "wal_fsync_duration_seconds_count", nil, 1)
	mustHave(t, samples, "wal_commit_batch_records_count", nil, 1)
	mustHave(t, samples, "wal_appended_records_total", nil, 5)
	mustHave(t, samples, "online_epoch_publishes_total", nil, 1)
	mustHave(t, samples, "online_query_duration_seconds_count", map[string]string{"method": "knnj"}, 1)
	mustHave(t, samples, "online_entities", nil, 5)
	mustHave(t, samples, "store_degraded", nil, 0)
	mustHave(t, samples, "erserve_uptime_seconds", nil, 0)

	// The insert latency histogram has a usable shape: sum > 0 and at
	// least one finite bucket below +Inf.
	sum, ok := metrics.Find(samples, "erserve_http_request_duration_seconds_sum", map[string]string{"endpoint": "insert"})
	if !ok || sum <= 0 {
		t.Fatalf("insert latency sum = %v ok=%v", sum, ok)
	}
}

// TestMetricsScrapeEndToEndMatch boots the daemon with -match -dirty
// over an ε-join config, drives duplicate inserts and a /v1/match call,
// and asserts one scrape carries the decision telemetry and the
// dirty-mode cluster gauges next to the resolver series — the match
// half of the /metrics contract.
func TestMetricsScrapeEndToEndMatch(t *testing.T) {
	o := options{
		addr: "127.0.0.1:0", method: "epsjoin", schema: "agnostic", model: "C3G",
		clean: true, k: 3, threshold: 0.3, shards: 1, storage: "memory",
		matchStage: true, matchAssign: "greedy", matchScorer: "jaro-winkler", matchT: 0.9,
		dirty:      true,
		writeQueue: 8, requestTimeout: 10 * time.Second,
		maxBody: 1 << 20, maxBatch: 64, maxLine: 1 << 16,
	}
	samples := scrapeDaemon(t, o, func(base string) {
		// Two exact duplicates and one distinct entity: the second insert
		// must union with the first, populating the cluster gauges.
		for _, text := range []string{
			"canon powershot a40 zoom digital camera",
			"canon powershot a40 zoom digital camera",
			"nikon coolpix 4300 silver",
		} {
			body, _ := json.Marshal(map[string]any{"text": text})
			resp, err := http.Post(base+"/v1/entities", "application/json", bytes.NewReader(body))
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("insert: %v %v", err, resp)
			}
			resp.Body.Close()
		}
		body, _ := json.Marshal(map[string]any{"queries": []map[string]any{
			{"text": "canon powershot a40 zoom digital camera"},
		}})
		resp, err := http.Post(base+"/v1/match", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("match: %v %v", err, resp)
		}
		resp.Body.Close()
	})

	mustHave(t, samples, "match_decide_duration_seconds_count", nil, 1)
	mustHave(t, samples, "match_batches_total", nil, 1)
	mustHave(t, samples, "match_candidate_pairs_total", nil, 1)
	mustHave(t, samples, "match_comparisons_total", nil, 1)
	mustHave(t, samples, "match_decisions_total", nil, 1)
	mustHave(t, samples, "match_clusters", nil, 1)
	mustHave(t, samples, "match_clustered_entities", nil, 2)
	mustHave(t, samples, "match_cluster_max_size", nil, 2)
	mustHave(t, samples, "online_entities", nil, 3)
	mustHave(t, samples, "erserve_http_request_duration_seconds_count", map[string]string{"endpoint": "match"}, 1)
}

// TestMetricsScrapeEndToEndDiskTier is the -storage disk /metrics
// contract: a durable daemon with a tiny memtable cap flushes several
// segments under real traffic, and one scrape carries the tier's
// gauges (live segments, disk bytes, tombstones), the flush/merge
// counters and duration histograms, and the per-query segments-scanned
// counter next to the WAL and endpoint series.
func TestMetricsScrapeEndToEndDiskTier(t *testing.T) {
	o := options{
		addr: "127.0.0.1:0", method: "knnj", schema: "agnostic", model: "C3G",
		clean: true, k: 3, threshold: 0.4, shards: 1,
		storage: "disk", memtableCap: 4, mergeFanin: 2,
		walDir: filepath.Join(t.TempDir(), "store"), checkpointEvery: 64,
		writeQueue: 8, requestTimeout: 10 * time.Second,
	}
	samples := scrapeDaemon(t, o, func(base string) {
		// 12 inserts at cap 4: every fourth insert checkpoints the WAL
		// into a fresh segment. Then delete a flushed entity (a tier
		// tombstone) and query (scanning the live segments).
		for i := 0; i < 12; i++ {
			body, _ := json.Marshal(map[string]any{"text": fmt.Sprintf("canon powershot a%d", i)})
			resp, err := http.Post(base+"/v1/entities", "application/json", bytes.NewReader(body))
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("insert %d: %v %v", i, err, resp)
			}
			resp.Body.Close()
		}
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/entities/1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("delete: %v %v", err, resp)
		}
		resp.Body.Close()
		body, _ := json.Marshal(map[string]any{"text": "canon powershot"})
		if resp, err = http.Post(base+"/v1/query", "application/json", bytes.NewReader(body)); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("query: %v %v", err, resp)
		}
		resp.Body.Close()
	})

	mustHave(t, samples, "segment_live_segments", nil, 1)
	mustHave(t, samples, "segment_disk_bytes", nil, 1)
	mustHave(t, samples, "segment_flushes_total", nil, 2)
	mustHave(t, samples, "segment_flush_duration_seconds_count", nil, 2)
	mustHave(t, samples, "segment_query_segments_scanned_total", nil, 1)
	// Merge series must be present in the exposition even when the
	// background compactor has not fired by scrape time.
	mustHave(t, samples, "segment_merges_total", nil, 0)
	mustHave(t, samples, "segment_merge_failures_total", nil, 0)
	mustHave(t, samples, "segment_merge_duration_seconds_count", nil, 0)
	mustHave(t, samples, "segment_tombstones", nil, 0)
	mustHave(t, samples, "online_entities", nil, 11)
	mustHave(t, samples, "wal_appended_records_total", nil, 13)
	mustHave(t, samples, "store_checkpoints_total", nil, 2)
	mustHave(t, samples, "store_degraded", nil, 0)
}

// TestMetricsScrapeEndToEndSharded is the sharded-mode /metrics
// contract: per-shard entity gauges and query histograms, shard-labeled
// WAL series, the gather-merge histogram and the size-skew gauge all
// appear in one exposition.
func TestMetricsScrapeEndToEndSharded(t *testing.T) {
	o := options{
		addr: "127.0.0.1:0", method: "knnj", schema: "agnostic", model: "C3G",
		clean: true, k: 3, threshold: 0.4, shards: 2,
		walDir: filepath.Join(t.TempDir(), "store"), checkpointEvery: 64,
		writeQueue: 8, requestTimeout: 10 * time.Second,
	}
	samples := scrapeDaemon(t, o, func(base string) {
		ents := make([]map[string]any, 16)
		for i := range ents {
			ents[i] = map[string]any{"text": fmt.Sprintf("canon powershot a%d", i)}
		}
		body, _ := json.Marshal(map[string]any{"entities": ents})
		resp, err := http.Post(base+"/v1/entities", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("insert: %v %v", err, resp)
		}
		resp.Body.Close()
		qs, _ := json.Marshal(map[string]any{"queries": []map[string]any{
			{"text": "canon powershot a3"}, {"text": "canon powershot a7"},
		}})
		if resp, err = http.Post(base+"/v1/query/batch", "application/json", bytes.NewReader(qs)); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("batch query: %v %v", err, resp)
		}
		resp.Body.Close()
	})

	mustHave(t, samples, "online_shards", nil, 2)
	mustHave(t, samples, "online_entities", nil, 16)
	mustHave(t, samples, "online_shard_size_skew", nil, 1)
	mustHave(t, samples, "online_shard_entities", map[string]string{"shard": "0"}, 1)
	mustHave(t, samples, "online_shard_entities", map[string]string{"shard": "1"}, 1)
	mustHave(t, samples, "online_shard_query_duration_seconds_count", map[string]string{"shard": "0"}, 1)
	mustHave(t, samples, "online_gather_merge_duration_seconds_count", nil, 1)
	mustHave(t, samples, "wal_fsync_duration_seconds_count", map[string]string{"shard": "0"}, 1)
	mustHave(t, samples, "wal_fsync_duration_seconds_count", map[string]string{"shard": "1"}, 1)
	mustHave(t, samples, "store_checkpoint_duration_seconds_count", map[string]string{"shard": "0"}, 0)
	mustHave(t, samples, "store_checkpoints_total", nil, 0)
	mustHave(t, samples, "store_degraded", nil, 0)
	mustHave(t, samples, "erserve_http_request_duration_seconds_count", map[string]string{"endpoint": "query_batch"}, 1)
}
