// Command erserve is the online resolution daemon: it keeps one tuned
// filtering configuration resident as an incrementally-updatable index
// and answers top-candidate queries over HTTP while entities are
// inserted and deleted, isolating readers from writers through
// epoch-swapped immutable snapshots.
//
//	erserve -bulk shopA.csv -method knnj -k 3 -addr :8654
//	erserve -bulk a.csv -tune b.csv -truth gt.csv -method knnj   # serve the tuned optimum
//	erserve -load resolver.snap                                  # resume from a snapshot
//	erserve -bulk a.csv -wal /var/lib/erserve                    # durable: WAL + checkpoints
//	erserve -bulk a.csv -wal /var/lib/erserve -shards 8          # sharded: parallel ingest
//	erserve -bulk a.csv -method flat -knn-index hnsw             # approximate dense serving
//	erserve -bulk a.csv -storage disk -segment-dir /var/lib/seg  # beyond-RAM: on-disk segment tier
//	erserve -bulk a.csv -wal /var/lib/erserve -storage disk      # durable + bounded memtable
//	erserve -bulk a.csv -method epsjoin -t 0.3 -match            # decide matches, not just candidates
//	erserve -method epsjoin -t 0.3 -match -dirty                 # dirty-ER: inserts return their cluster
//
// With -wal every mutation is written to a write-ahead log and fsynced
// before it is acknowledged, so acked writes survive crashes and power
// loss; on restart the store recovers from the last checkpoint plus the
// log. Without -wal the index is volatile and only -save persists it.
//
// With -shards N the collection is hash-partitioned across N
// independent resolvers — N writer mutexes, N epoch snapshots and, with
// -wal, N WAL directories (dir/shard-0..N-1) that recover and
// checkpoint in parallel. Queries scatter to every shard and merge
// per-shard top-k lists deterministically, so answers are identical to
// an unsharded resolver; the shard count is pinned in the store
// directory on first open.
//
// With -storage disk the resolver keeps only a bounded memtable
// (-memtable-cap entities) in RAM and flushes overflow to immutable
// mmap'd segment files compacted in the background (-merge-fanin),
// answering byte-identically to -storage memory. Volatile runs need
// -segment-dir; with -wal the tier lives under the store directory and
// checkpoints double as flushes. Exact indexes only (no -knn-index
// hnsw).
//
// With -match the daemon runs the match stage on top of the filter: a
// pluggable post-filter scorer (-match-scorer, threshold -match-t)
// re-scores the filtered candidates and a one-to-one assignment
// (-assign greedy or bipartite) decides matches, served by POST
// /v1/match and mode=match on the resolve stream. Adding -dirty turns
// on dirty-ER mode over the single resident collection: every insert
// is decided against the pre-insert snapshot and unioned into its
// duplicate cluster, POST /v1/entities reports {id, cluster, matches}
// per entity, and GET /v1/clusters/{id} reads a cluster back. Clusters
// are rebuilt deterministically on startup from the recovered
// collection (see DESIGN.md §15 for the pair-locality contract).
//
// The HTTP surface is versioned under /v1 — it is the only serving
// surface; the pre-/v1 unversioned aliases are retired and answer 404.
// Every non-2xx response carries the envelope
// {"error":{"code":...,"message":...}}:
//
//	POST   /v1/query          {"attrs":{...}|"text":"...","k":N,"eps":X,"where":"..."} → top candidates
//	POST   /v1/query/batch    {"queries":[{...},...],"k":N,"where":"..."} → per-query candidates, one snapshot
//	POST   /v1/resolve/stream NDJSON feed in → NDJSON results out, resolved in bounded batches (?mode=match decides)
//	POST   /v1/match          {"queries":[...],"budget":N,"top":N} → decided matches (501 without -match)
//	POST   /v1/entities       {"attrs":{...}} or {"entities":[{...},...]} → assigned ids (+clusters with -dirty)
//	GET    /v1/clusters/{id} → duplicate cluster of a resident entity (501 without -match -dirty)
//	GET    /v1/entities/{id} → stored attributes
//	DELETE /v1/entities/{id} → tombstone + re-publish
//	GET    /v1/snapshot      → binary snapshot stream (resumable with -load)
//	GET    /v1/stats         → resolver + durability + per-endpoint latency summary
//	GET    /v1/metrics       → Prometheus text exposition (histograms, counters)
//	GET    /v1/healthz       → process liveness: always ok while serving
//	GET    /v1/readyz        → write readiness: 503 while draining or degraded
//
// Every JSON endpoint caps its request body at -max-body bytes (413
// past it); the resolve stream is instead bounded per NDJSON line by
// -max-line, so a feed of any length streams in O(-max-batch) server
// memory. "where" takes the predicate DSL (see DESIGN.md §14):
// attribute clauses with and/or/not plus score >= t, top N and explain.
//
// Serving-side protection, instrumentation and graceful shutdown live
// in internal/serve; this command is flag parsing, state assembly and
// process lifecycle. The daemon shuts down gracefully on
// SIGTERM/SIGINT: /v1/readyz starts failing, in-flight requests drain,
// every shard's store checkpoints and closes, and, when -save is given,
// a final snapshot is written atomically.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/match"
	"erfilter/internal/online"
	"erfilter/internal/repl"
	"erfilter/internal/serve"
	"erfilter/internal/text"
	"erfilter/internal/tuning"
)

// options collects every knob of one daemon run; tests fill it directly.
type options struct {
	addr      string
	load      string
	bulk      string
	method    string
	schema    string
	attribute string
	model     string
	clean     bool
	k         int
	threshold float64
	tuneCSV   string
	truthCSV  string
	target    float64
	workers   int
	save      string
	shards    int

	knnIndex string
	hnswM    int
	hnswEfC  int
	hnswEf   int
	hnswSeed uint64

	storage     string
	segmentDir  string
	memtableCap int
	mergeFanin  int

	matchStage  bool
	matchAssign string
	matchScorer string
	matchT      float64
	dirty       bool

	walDir          string
	checkpointEvery int
	writeQueue      int
	requestTimeout  time.Duration
	maxBody         int64
	maxBatch        int
	maxLine         int
	pprof           bool

	replicaOf   string
	follow      bool
	advertise   string
	lease       string
	replAck     int
	maxLag      time.Duration
	maxLagBytes int64
	proxy       string
	probeEvery  time.Duration

	// ready, when set, is invoked with the bound listen address once the
	// server is accepting connections — the test seam for ":0" listeners.
	ready func(addr string)
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8654", "listen address")
	flag.StringVar(&o.load, "load", "", "resume from a snapshot file (overrides config flags)")
	flag.StringVar(&o.bulk, "bulk", "", "CSV file of entities to bulk-insert on startup")
	flag.StringVar(&o.method, "method", "knnj", "filter: knnj, epsjoin, flat")
	flag.StringVar(&o.schema, "schema", "agnostic", "schema setting: agnostic or based")
	flag.StringVar(&o.attribute, "attribute", "", "attribute for -schema based")
	flag.StringVar(&o.model, "model", "C3G", "representation model for sparse methods (T1G..C5GM)")
	flag.BoolVar(&o.clean, "clean", true, "apply stop-word removal and stemming")
	flag.IntVar(&o.k, "k", 3, "cardinality threshold for knnj/flat")
	flag.Float64Var(&o.threshold, "t", 0.4, "similarity threshold for epsjoin")
	flag.StringVar(&o.tuneCSV, "tune", "", "second-collection CSV: tune the method against it before serving (requires -bulk and -truth)")
	flag.StringVar(&o.truthCSV, "truth", "", "groundtruth CSV of (bulk,tune) index pairs for -tune")
	flag.Float64Var(&o.target, "target", tuning.DefaultTarget, "recall target for -tune")
	flag.IntVar(&o.workers, "workers", 0, "worker-pool size for -tune grid searches (0 = NumCPU)")
	flag.StringVar(&o.save, "save", "", "write a snapshot to this file on graceful shutdown")
	flag.StringVar(&o.knnIndex, "knn-index", "flat", "dense index for -method flat: flat (exact) or hnsw (approximate, per-query escape hatch via \"approx\": false)")
	flag.IntVar(&o.hnswM, "hnsw-m", 0, "HNSW graph degree (0 = default 16)")
	flag.IntVar(&o.hnswEfC, "hnsw-efc", 0, "HNSW construction beam width (0 = default 100)")
	flag.IntVar(&o.hnswEf, "hnsw-ef", 0, "HNSW query beam width (0 = default 64; raise for recall, lower for latency)")
	flag.Uint64Var(&o.hnswSeed, "hnsw-seed", 0, "HNSW level-assignment seed (any value; same seed + same ops = same graph)")
	flag.StringVar(&o.storage, "storage", "memory", "index storage: memory (all-RAM) or disk (bounded memtable + on-disk segment tier; exact indexes only)")
	flag.StringVar(&o.segmentDir, "segment-dir", "", "segment-tier directory for -storage disk without -wal (a durable store keeps its segments under the -wal directory)")
	flag.IntVar(&o.memtableCap, "memtable-cap", 32768, "with -storage disk, flush the memtable to a segment at this many entities")
	flag.IntVar(&o.mergeFanin, "merge-fanin", 8, "with -storage disk, fold this many segments per background compaction (minimum 2)")
	flag.IntVar(&o.shards, "shards", 1, "hash-partition the resolver across this many independent shards (with -wal, one WAL directory per shard; pinned on first open)")
	flag.BoolVar(&o.matchStage, "match", false, "run the match stage: POST /v1/match and ?mode=match decide matches from the filtered candidates")
	flag.StringVar(&o.matchAssign, "assign", "greedy", "with -match, the one-to-one assignment: greedy or bipartite (maximum-weight)")
	flag.StringVar(&o.matchScorer, "match-scorer", "jaro-winkler", "with -match, the post-filter scorer: jaro-winkler, jaro, levenshtein, token-jaccard")
	flag.Float64Var(&o.matchT, "match-t", match.DefaultThreshold, "with -match, decide a pair when scorer similarity reaches this threshold")
	flag.BoolVar(&o.dirty, "dirty", false, "with -match, dirty-ER mode: inserts join their duplicate cluster, readable via GET /v1/clusters/{id}")
	flag.StringVar(&o.walDir, "wal", "", "durable store directory: WAL every mutation, checkpoint, recover on restart")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 4096, "with -wal, rewrite the snapshot and trim the log after this many records")
	flag.IntVar(&o.writeQueue, "write-queue", 64, "max concurrently admitted write requests before shedding with 503")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 30*time.Second, "per-request deadline for JSON endpoints (/v1/snapshot is exempt)")
	flag.Int64Var(&o.maxBody, "max-body", serve.DefaultMaxBody, "JSON request body cap in bytes; larger bodies answer 413 (also caps bodies buffered by -proxy)")
	flag.IntVar(&o.maxBatch, "max-batch", serve.DefaultMaxBatch, "queries per /v1/query/batch request, and the resolve unit of /v1/resolve/stream")
	flag.IntVar(&o.maxLine, "max-line", serve.DefaultMaxLine, "one NDJSON line of /v1/resolve/stream, in bytes; a larger record terminates the stream")
	flag.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/ for live profiling")
	flag.StringVar(&o.replicaOf, "replica-of", "", "follow this leader URL as a read replica (requires -wal; implies -follow)")
	flag.BoolVar(&o.follow, "follow", false, "start as a follower without an upstream yet (re-parent later via POST /v1/replica-of)")
	flag.StringVar(&o.advertise, "advertise", "", "this node's replication identity — enables the leader-side replication endpoints (default: the listen address)")
	flag.StringVar(&o.lease, "lease", "", "leader lease file on a shared path: fenced failover terms")
	flag.IntVar(&o.replAck, "repl-ack", 0, "semi-sync: follower fetch acks required before a write returns (0 = async)")
	flag.DurationVar(&o.maxLag, "max-lag", 10*time.Second, "follower readiness: fail /v1/readyz after this long without upstream progress")
	flag.Int64Var(&o.maxLagBytes, "max-lag-bytes", 4<<20, "follower readiness: fail /v1/readyz beyond this estimated byte lag")
	flag.StringVar(&o.proxy, "proxy", "", "comma-separated replica URLs: serve as a routing proxy (writes to the leader, reads round-robin) instead of a resolver")
	flag.DurationVar(&o.probeEvery, "probe-every", time.Second, "with -proxy, the replica health-probe interval")
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateOptions(o, set); err != nil {
		fmt.Fprintln(os.Stderr, "erserve:", err)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "erserve:", err)
		os.Exit(1)
	}
}

// validateOptions rejects flag values that can only misconfigure the
// daemon, before any file or index is touched. set holds the names of
// flags the user passed explicitly: the HNSW knobs default to 0 meaning
// "use the library default", so a zero is only an error when typed.
func validateOptions(o options, set map[string]bool) error {
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 selects all CPUs), got %d", o.workers)
	}
	if o.shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", o.shards)
	}
	for _, f := range []struct {
		name string
		val  int
	}{{"hnsw-m", o.hnswM}, {"hnsw-efc", o.hnswEfC}, {"hnsw-ef", o.hnswEf}} {
		if set[f.name] && f.val <= 0 {
			return fmt.Errorf("-%s must be > 0 when set (omit it for the default), got %d", f.name, f.val)
		}
	}
	if o.checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0 (0 checkpoints only on shutdown), got %d", o.checkpointEvery)
	}
	if o.memtableCap <= 0 {
		return fmt.Errorf("-memtable-cap must be > 0, got %d", o.memtableCap)
	}
	if o.mergeFanin < 2 {
		return fmt.Errorf("-merge-fanin must be >= 2, got %d", o.mergeFanin)
	}
	if o.maxBody <= 0 {
		return fmt.Errorf("-max-body must be > 0, got %d", o.maxBody)
	}
	if o.maxBatch <= 0 {
		return fmt.Errorf("-max-batch must be > 0, got %d", o.maxBatch)
	}
	if o.maxLine <= 0 {
		return fmt.Errorf("-max-line must be > 0, got %d", o.maxLine)
	}
	kind, err := online.ParseStorage(o.storage)
	if err != nil {
		return fmt.Errorf("-storage must be memory or disk, got %q", o.storage)
	}
	if kind == online.StorageDisk && o.knnIndex == "hnsw" {
		return fmt.Errorf("-storage disk serves the exact dense index only; drop -knn-index hnsw")
	}
	if kind == online.StorageDisk && o.walDir == "" && o.segmentDir == "" {
		return fmt.Errorf("-storage disk without -wal requires -segment-dir for the segment tier")
	}
	if o.segmentDir != "" && o.walDir != "" {
		return fmt.Errorf("-segment-dir conflicts with -wal: a durable store keeps its segments under the -wal directory")
	}
	if o.segmentDir != "" && kind != online.StorageDisk {
		return fmt.Errorf("-segment-dir requires -storage disk")
	}
	if _, err := match.ParseAssign(o.matchAssign); err != nil {
		return fmt.Errorf("-assign must be greedy or bipartite, got %q", o.matchAssign)
	}
	if _, err := match.ParseScorer(o.matchScorer); err != nil {
		return fmt.Errorf("-match-scorer must be jaro-winkler, jaro, levenshtein or token-jaccard, got %q", o.matchScorer)
	}
	if o.matchStage {
		if err := (match.Config{Threshold: o.matchT}).Normalize().Validate(); err != nil {
			return fmt.Errorf("-match-t: %v", err)
		}
	} else {
		for _, name := range []string{"assign", "match-scorer", "match-t"} {
			if set[name] {
				return fmt.Errorf("-%s requires -match", name)
			}
		}
		if o.dirty {
			return fmt.Errorf("-dirty requires -match")
		}
	}
	if o.proxy != "" {
		if o.walDir != "" || o.bulk != "" || o.load != "" || o.replicaOf != "" || o.follow || o.matchStage {
			return fmt.Errorf("-proxy serves only as a router; drop the resolver flags")
		}
		return nil
	}
	follower := o.follow || o.replicaOf != ""
	replicated := follower || o.lease != "" || o.advertise != "" || o.replAck > 0
	if replicated {
		if o.walDir == "" {
			return fmt.Errorf("replication requires a durable store: set -wal")
		}
		if o.shards != 1 {
			return fmt.Errorf("replication requires -shards 1 (the WAL stream is a single log), got %d", o.shards)
		}
		if kind == online.StorageDisk {
			return fmt.Errorf("replication requires -storage memory: followers mirror into memory-storage dirs")
		}
	}
	if follower {
		if o.bulk != "" || o.tuneCSV != "" {
			return fmt.Errorf("a follower takes its state from the leader; drop -bulk/-tune")
		}
		if o.dirty {
			return fmt.Errorf("-dirty needs leader-side inserts: a follower mirrors the WAL below the cluster layer; drop -dirty")
		}
		if o.replAck > 0 {
			return fmt.Errorf("-repl-ack is a leader flag; a follower acks by fetching")
		}
	}
	return nil
}

func run(o options) error {
	if o.proxy != "" {
		return runProxy(o)
	}
	st, err := buildState(o)
	if err != nil {
		return err
	}
	mode := "volatile (use -wal for durability)"
	if st.store != nil {
		mode = "durable, wal=" + o.walDir
	}
	if o.shards > 1 {
		mode += fmt.Sprintf(", shards=%d", o.shards)
	}
	if k, _ := online.ParseStorage(o.storage); k == online.StorageDisk {
		mode += ", storage=disk"
	}
	if st.repl != nil {
		mode += ", role=" + st.repl.Role().String()
	}
	mo := matchOptions(o)
	if mo != nil {
		mode += ", match=" + mo.Config.Describe()
		if mo.Dirty {
			mode += ", dirty-ER"
		}
	}
	fmt.Fprintf(os.Stderr, "erserve: serving %s with %d entities on %s [%s]\n",
		st.res.Config().Describe(), st.res.Len(), o.addr, mode)

	s := serve.NewServer(st.res, st.store, serve.Options{
		WriteQueue:     o.writeQueue,
		RequestTimeout: o.requestTimeout,
		MaxBody:        o.maxBody,
		MaxBatch:       o.maxBatch,
		MaxLine:        o.maxLine,
		Pprof:          o.pprof,
		Replication:    st.repl,
		Match:          mo,
	})
	// Timeouts bound what one slow or stalled client can hold: the write
	// timeout is generous because /v1/snapshot streams the whole
	// collection, but Save no longer holds the resolver lock while
	// streaming, so even a client that hits it only costs its own
	// connection.
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       1 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.ready != nil {
		o.ready(ln.Addr().String())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "erserve: shutting down")
	// Fail /v1/readyz first so load balancers stop routing, then drain.
	s.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// The shutdown snapshot streams first: closing a disk-backed resolver
	// unmaps its segment readers, after which there is nothing to save.
	if o.save != "" {
		if err := st.saveFile(o.save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "erserve: snapshot saved to %s\n", o.save)
	}
	if st.closeStore != nil {
		if err := st.closeStore(); err != nil {
			return fmt.Errorf("closing store: %w", err)
		}
	}
	return nil
}

// state is the assembled serving backend plus the lifecycle hooks the
// daemon needs after the HTTP listener drains. The serve package sees
// only the interfaces; the closures capture the concrete types.
type state struct {
	res        serve.Resolver
	store      serve.Store          // nil in volatile mode
	repl       *repl.Node           // nil when unreplicated
	closeStore func() error         // nil in volatile mode
	saveFile   func(p string) error // atomic shutdown snapshot
}

// buildState assembles the serving state: a volatile resolver (single
// or sharded), or, with -wal, a durable store recovered from its
// directory. The store is the source of truth — a bulk CSV only seeds
// it when it is empty, and the checkpointed configuration wins over the
// config flags.
func buildState(o options) (state, error) {
	if o.walDir == "" {
		return buildVolatile(o)
	}
	if o.load != "" {
		return state{}, fmt.Errorf("-wal and -load are mutually exclusive: the store recovers from its own directory (copy a snapshot there as current.snap to restore one)")
	}
	if o.follow || o.replicaOf != "" {
		return buildFollower(o)
	}
	cfg, ds, err := resolveConfig(o)
	if err != nil {
		return state{}, err
	}
	opt := online.StoreOptions{CheckpointEvery: o.checkpointEvery}
	seed := func(insert func([][]entity.Attribute) ([]int64, error), have int) error {
		if ds == nil || have != 0 {
			return nil
		}
		batch := make([][]entity.Attribute, ds.Len())
		for i := range ds.Profiles {
			batch[i] = ds.Profiles[i].Attrs
		}
		_, err := insert(batch)
		return err
	}
	if o.shards > 1 {
		ss, err := online.OpenShardedStore(o.walDir, cfg, o.shards, opt)
		if err != nil {
			return state{}, err
		}
		res := ss.Resolver()
		if err := seed(ss.InsertBatch, res.Len()); err != nil {
			ss.Close()
			return state{}, fmt.Errorf("bulk seed: %w", err)
		}
		return state{
			res: serve.WrapSharded(res), store: serve.WrapShardedStore(ss),
			closeStore: ss.Close,
			saveFile:   func(p string) error { return res.SaveFile(nil, p) },
		}, nil
	}
	st, err := online.OpenStore(o.walDir, cfg, opt)
	if err != nil {
		return state{}, err
	}
	res := st.Resolver()
	if replicatedLeader(o) {
		node, err := repl.NewLeader(st, replNodeOptions(o))
		if err != nil {
			st.Close()
			return state{}, err
		}
		if node.Role() == repl.RoleLeader {
			// Seed through the store directly: semi-sync acks would block
			// a bootstrap with no followers attached yet.
			if err := seed(st.InsertBatch, res.Len()); err != nil {
				st.Close()
				return state{}, fmt.Errorf("bulk seed: %w", err)
			}
		}
		return state{
			res: serve.WrapReplicated(node), store: node, repl: node,
			closeStore: node.Close,
			saveFile:   func(p string) error { return node.Resolver().SaveFile(nil, p) },
		}, nil
	}
	if err := seed(st.InsertBatch, res.Len()); err != nil {
		st.Close()
		return state{}, fmt.Errorf("bulk seed: %w", err)
	}
	return state{
		res: serve.WrapResolver(res), store: serve.WrapStore(st),
		closeStore: st.Close,
		saveFile:   func(p string) error { return res.SaveFile(nil, p) },
	}, nil
}

// matchOptions folds the -match flags into serve options, nil when the
// match stage is off. validateOptions already vetted the values, so the
// parses here cannot fail.
func matchOptions(o options) *serve.MatchOptions {
	if !o.matchStage {
		return nil
	}
	scorer, _ := match.ParseScorer(o.matchScorer)
	assign, _ := match.ParseAssign(o.matchAssign)
	return &serve.MatchOptions{
		Config: match.Config{Scorer: scorer, Threshold: o.matchT, Assign: assign}.Normalize(),
		Dirty:  o.dirty,
	}
}

// replicatedLeader reports whether the leader-side replication surface
// was requested: an advertised identity, a lease, or semi-sync acks.
func replicatedLeader(o options) bool {
	return o.advertise != "" || o.lease != "" || o.replAck > 0
}

// replNodeOptions folds the replication flags into node options.
func replNodeOptions(o options) repl.Options {
	opt := repl.Options{
		ID:          o.advertise,
		AckReplicas: o.replAck,
		MaxLag:      o.maxLag,
		MaxLagBytes: o.maxLagBytes,
	}
	if opt.ID == "" {
		opt.ID = o.addr
	}
	if o.lease != "" {
		dir, name := filepath.Split(o.lease)
		if dir == "" {
			dir = "."
		}
		opt.Lease = repl.NewLease(nil, filepath.Clean(dir), name)
	}
	return opt
}

// buildFollower assembles a read replica: the follower store over the
// -wal directory, the role node and the tailer pulling from -replica-of
// (or idling until POST /v1/replica-of re-parents it).
func buildFollower(o options) (state, error) {
	fol, err := online.OpenFollower(o.walDir, online.StoreOptions{CheckpointEvery: o.checkpointEvery})
	if err != nil {
		return state{}, err
	}
	node := repl.NewFollower(fol, replNodeOptions(o))
	if o.replicaOf != "" {
		if err := node.SetUpstream(o.replicaOf); err != nil {
			fol.Close()
			return state{}, err
		}
	}
	tailer := repl.StartTailer(node, repl.TailerOptions{})
	return state{
		res: serve.WrapReplicated(node), store: node, repl: node,
		closeStore: func() error {
			tailer.Close()
			return node.Close()
		},
		saveFile: func(p string) error { return node.Resolver().SaveFile(nil, p) },
	}, nil
}

// runProxy serves the routing proxy over the -proxy replica list.
func runProxy(o options) error {
	var urls []string
	for _, u := range strings.Split(o.proxy, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	p, err := serve.NewProxy(urls, serve.ProxyOptions{ProbeEvery: o.probeEvery, MaxBody: o.maxBody})
	if err != nil {
		return err
	}
	defer p.Close()
	fmt.Fprintf(os.Stderr, "erserve: proxying %d replicas on %s\n", len(urls), o.addr)
	srv := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       1 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.ready != nil {
		o.ready(ln.Addr().String())
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "erserve: shutting down proxy")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// buildVolatile builds the in-memory serving state: resumed from a
// snapshot file, or built from the config flags and optionally
// bulk-loaded; -shards routes it through the sharded resolver.
func buildVolatile(o options) (state, error) {
	if o.load != "" {
		kind, err := online.ParseStorage(o.storage)
		if err != nil {
			return state{}, err
		}
		f, err := os.Open(o.load)
		if err != nil {
			return state{}, err
		}
		defer f.Close()
		if kind == online.StorageDisk {
			if o.shards > 1 {
				return state{}, fmt.Errorf("-load with -storage disk does not support -shards: load unsharded, or seed a sharded durable store from CSV")
			}
			res, err := online.LoadStorage(f, online.Config{
				Storage: online.StorageDisk, SegmentDir: o.segmentDir,
				MemtableCap: o.memtableCap, MergeFanin: o.mergeFanin,
			})
			if err != nil {
				return state{}, err
			}
			return diskVolatile(res), nil
		}
		if o.shards > 1 {
			sr, err := online.LoadSharded(f, o.shards)
			if err != nil {
				return state{}, err
			}
			return shardedVolatile(sr), nil
		}
		res, err := online.Load(f)
		if err != nil {
			return state{}, err
		}
		return singleVolatile(res), nil
	}
	cfg, ds, err := resolveConfig(o)
	if err != nil {
		return state{}, err
	}
	if cfg.Storage == online.StorageDisk {
		if o.shards > 1 {
			sr, err := online.OpenSharded(cfg, o.shards)
			if err != nil {
				return state{}, err
			}
			if ds != nil {
				sr.InsertDataset(ds)
			}
			st := shardedVolatile(sr)
			st.closeStore = sr.Close
			return st, nil
		}
		res, err := online.OpenResolver(cfg)
		if err != nil {
			return state{}, err
		}
		if ds != nil {
			res.InsertDataset(ds)
		}
		return diskVolatile(res), nil
	}
	if o.shards > 1 {
		sr := online.NewSharded(cfg, o.shards)
		if ds != nil {
			sr.InsertDataset(ds)
		}
		return shardedVolatile(sr), nil
	}
	res := online.NewResolver(cfg)
	if ds != nil {
		res.InsertDataset(ds)
	}
	return singleVolatile(res), nil
}

func singleVolatile(res *online.Resolver) state {
	return state{
		res:      serve.WrapResolver(res),
		saveFile: func(p string) error { return res.SaveFile(nil, p) },
	}
}

// diskVolatile wraps a disk-backed resolver without a WAL: volatile (the
// memtable dies with the process; segments persist), but the tier's mmap
// readers and merge goroutine need the shutdown Close hook.
func diskVolatile(res *online.Resolver) state {
	st := singleVolatile(res)
	st.closeStore = res.Close
	return st
}

func shardedVolatile(sr *online.ShardedResolver) state {
	return state{
		res:      serve.WrapSharded(sr),
		saveFile: func(p string) error { return sr.SaveFile(nil, p) },
	}
}

// resolveConfig turns the config flags into a serving configuration —
// tuned against a second collection when -tune is given — plus the bulk
// dataset, if any.
func resolveConfig(o options) (online.Config, *entity.Dataset, error) {
	setting := entity.SchemaAgnostic
	if o.schema == "based" {
		setting = entity.SchemaBased
	}
	var ds *entity.Dataset
	if o.bulk != "" {
		var err error
		ds, err = readCSVFile(o.bulk, "bulk")
		if err != nil {
			return online.Config{}, nil, err
		}
	}

	var cfg online.Config
	if o.tuneCSV != "" {
		if ds == nil || o.truthCSV == "" {
			return online.Config{}, nil, fmt.Errorf("-tune requires -bulk and -truth")
		}
		var err error
		cfg, err = tuneConfig(ds, o.tuneCSV, o.truthCSV, o.method, setting, o.attribute, o.target, o.workers)
		if err != nil {
			return online.Config{}, nil, err
		}
	} else {
		m, err := online.ParseMethod(o.method)
		if err != nil {
			return online.Config{}, nil, err
		}
		model, err := text.ParseModel(o.model)
		if err != nil {
			return online.Config{}, nil, err
		}
		cfg = online.Config{
			Method: m, Setting: setting, BestAttribute: o.attribute,
			Clean: o.clean, Model: model, K: o.k, Threshold: o.threshold,
		}
	}
	if err := applyDenseIndex(&cfg, o); err != nil {
		return online.Config{}, nil, err
	}
	if err := applyStorage(&cfg, o); err != nil {
		return online.Config{}, nil, err
	}
	return cfg, ds, nil
}

// applyStorage folds the -storage flags into the serving config.
// Deployment shape only: these fields never enter snapshots, and a
// segment tier's manifest pins its own semantic config on reopen.
func applyStorage(cfg *online.Config, o options) error {
	kind, err := online.ParseStorage(o.storage)
	if err != nil {
		return err
	}
	if kind != online.StorageDisk {
		return nil
	}
	if cfg.Dense == online.DenseHNSW {
		return fmt.Errorf("-storage disk serves the exact dense index only (use -knn-index flat)")
	}
	cfg.Storage = kind
	cfg.SegmentDir = o.segmentDir
	cfg.MemtableCap = o.memtableCap
	cfg.MergeFanin = o.mergeFanin
	return nil
}

// applyDenseIndex folds the -knn-index flag (and the HNSW knobs) into
// the serving config. The approximate index only exists behind the
// dense method; a tuned config keeps its tuned parameters and swaps
// just the index.
func applyDenseIndex(cfg *online.Config, o options) error {
	if o.knnIndex == "" {
		return nil
	}
	d, err := online.ParseDenseIndex(o.knnIndex)
	if err != nil {
		return err
	}
	if d == online.DenseFlat {
		return nil
	}
	if cfg.Method != online.FlatKNN {
		return fmt.Errorf("-knn-index %s requires -method flat, got -method %s", o.knnIndex, o.method)
	}
	cfg.Dense = d
	cfg.HNSW = knn.HNSWParams{
		M: o.hnswM, EfConstruction: o.hnswEfC, EfSearch: o.hnswEf, Seed: o.hnswSeed,
	}
	return nil
}

// tuneConfig runs the Problem-1 grid search for the method over the
// (bulk, tune) collection pair and promotes the winning configuration
// into a serving config.
func tuneConfig(e1 *entity.Dataset, tuneCSV, truthCSV, method string,
	setting entity.SchemaSetting, attribute string, target float64, workers int) (online.Config, error) {

	e2, err := readCSVFile(tuneCSV, "tune")
	if err != nil {
		return online.Config{}, err
	}
	tf, err := os.Open(truthCSV)
	if err != nil {
		return online.Config{}, err
	}
	truth, err := entity.ReadGroundTruthCSV(tf, e1.Len(), e2.Len())
	tf.Close()
	if err != nil {
		return online.Config{}, err
	}
	if truth.Size() == 0 {
		return online.Config{}, fmt.Errorf("-tune requires a non-empty groundtruth")
	}
	task := &entity.Task{Name: "erserve", E1: e1, E2: e2, Truth: truth}
	if attribute != "" {
		task.BestAttribute = attribute
	} else {
		task.BestAttribute = entity.BestAttribute(task)
	}
	in := core.NewInput(task, setting)

	var r *tuning.Result
	switch method {
	case "knnj":
		space := tuning.DefaultSparseSpace(false)
		space.Workers = workers
		r = tuning.TuneKNNJoin(in, space, target)
	case "epsjoin":
		space := tuning.DefaultSparseSpace(false)
		space.Workers = workers
		r = tuning.TuneEpsJoin(in, space, target)
	case "flat", "faiss":
		space := tuning.DefaultDenseSpace(false)
		space.Workers = workers
		r, err = tuning.TuneFlatKNN(in, space, target)
		if err != nil {
			return online.Config{}, err
		}
	default:
		return online.Config{}, fmt.Errorf("method %q does not support -tune", method)
	}
	fmt.Fprintf(os.Stderr, "erserve: tuned %s: PC=%.3f PQ=%.3f config{%s}\n",
		r.Method, r.Metrics.PC, r.Metrics.PQ, r.ConfigString())
	return online.FromTuning(r, setting, task.BestAttribute)
}

func readCSVFile(path, name string) (*entity.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return entity.ReadCSV(name, f)
}
