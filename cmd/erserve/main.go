// Command erserve is the online resolution daemon: it keeps one tuned
// filtering configuration resident as an incrementally-updatable index
// and answers top-candidate queries over HTTP while entities are
// inserted and deleted, isolating readers from writers through
// epoch-swapped immutable snapshots.
//
//	erserve -bulk shopA.csv -method knnj -k 3 -addr :8654
//	erserve -bulk a.csv -tune b.csv -truth gt.csv -method knnj   # serve the tuned optimum
//	erserve -load resolver.snap                                  # resume from a snapshot
//	erserve -bulk a.csv -wal /var/lib/erserve                    # durable: WAL + checkpoints
//
// With -wal every mutation is written to a write-ahead log and fsynced
// before it is acknowledged, so acked writes survive crashes and power
// loss; on restart the store recovers from the last checkpoint plus the
// log. Without -wal the index is volatile and only -save persists it.
//
// Endpoints (JSON unless noted):
//
//	POST   /query         {"attrs":{...}|"text":"...","k":N,"eps":X} → top candidates
//	POST   /entities      {"attrs":{...}} or {"entities":[{...},...]} → assigned ids
//	GET    /entities/{id} → stored attributes
//	DELETE /entities/{id} → tombstone + re-publish
//	GET    /snapshot      → binary snapshot stream (resumable with -load)
//	GET    /stats         → resolver + durability + per-endpoint latency summary
//	GET    /metrics       → Prometheus text exposition (histograms, counters)
//	GET    /healthz       → process liveness: always ok while serving
//	GET    /readyz        → write readiness: 503 while draining or degraded
//
// Serving-side protection: write requests pass a bounded admission queue
// and are shed with 503 + Retry-After when it is full; JSON endpoints run
// under a per-request deadline (/snapshot, which streams the collection,
// is exempt); handler panics are recovered, counted and answered with
// 500. A WAL disk failure flips the store to degraded read-only mode —
// queries keep serving, writes fail fast, and /readyz reports not ready.
//
// Observability: every endpoint records its latency into a log-bucketed
// histogram *outside* the timeout wrapper, so a request killed by the
// deadline is recorded with the 503 the client actually saw — not the
// 200 the inner handler never got to send. /metrics exposes the
// endpoint histograms plus the resolver's query/publish/compaction
// telemetry and, in durable mode, the WAL's fsync and group-commit
// distributions. -pprof additionally mounts net/http/pprof under
// /debug/pprof/ for live profiling. POST /query accepts "trace":true to
// return the per-phase timing of that one request.
//
// The daemon shuts down gracefully on SIGTERM/SIGINT: /readyz starts
// failing, in-flight requests drain, the store checkpoints and closes,
// and, when -save is given, a final snapshot is written atomically.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/metrics"
	"erfilter/internal/online"
	"erfilter/internal/text"
	"erfilter/internal/tuning"
)

// options collects every knob of one daemon run; tests fill it directly.
type options struct {
	addr      string
	load      string
	bulk      string
	method    string
	schema    string
	attribute string
	model     string
	clean     bool
	k         int
	threshold float64
	tuneCSV   string
	truthCSV  string
	target    float64
	workers   int
	save      string

	walDir          string
	checkpointEvery int
	writeQueue      int
	requestTimeout  time.Duration
	pprof           bool

	// ready, when set, is invoked with the bound listen address once the
	// server is accepting connections — the test seam for ":0" listeners.
	ready func(addr string)
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8654", "listen address")
	flag.StringVar(&o.load, "load", "", "resume from a snapshot file (overrides config flags)")
	flag.StringVar(&o.bulk, "bulk", "", "CSV file of entities to bulk-insert on startup")
	flag.StringVar(&o.method, "method", "knnj", "filter: knnj, epsjoin, flat")
	flag.StringVar(&o.schema, "schema", "agnostic", "schema setting: agnostic or based")
	flag.StringVar(&o.attribute, "attribute", "", "attribute for -schema based")
	flag.StringVar(&o.model, "model", "C3G", "representation model for sparse methods (T1G..C5GM)")
	flag.BoolVar(&o.clean, "clean", true, "apply stop-word removal and stemming")
	flag.IntVar(&o.k, "k", 3, "cardinality threshold for knnj/flat")
	flag.Float64Var(&o.threshold, "t", 0.4, "similarity threshold for epsjoin")
	flag.StringVar(&o.tuneCSV, "tune", "", "second-collection CSV: tune the method against it before serving (requires -bulk and -truth)")
	flag.StringVar(&o.truthCSV, "truth", "", "groundtruth CSV of (bulk,tune) index pairs for -tune")
	flag.Float64Var(&o.target, "target", tuning.DefaultTarget, "recall target for -tune")
	flag.IntVar(&o.workers, "workers", 0, "worker-pool size for -tune grid searches (0 = NumCPU)")
	flag.StringVar(&o.save, "save", "", "write a snapshot to this file on graceful shutdown")
	flag.StringVar(&o.walDir, "wal", "", "durable store directory: WAL every mutation, checkpoint, recover on restart")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 4096, "with -wal, rewrite the snapshot and trim the log after this many records")
	flag.IntVar(&o.writeQueue, "write-queue", 64, "max concurrently admitted write requests before shedding with 503")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 30*time.Second, "per-request deadline for JSON endpoints (/snapshot is exempt)")
	flag.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/ for live profiling")
	flag.Parse()
	if o.workers < 0 {
		fmt.Fprintf(os.Stderr, "erserve: -workers must be >= 0 (0 selects all CPUs), got %d\n", o.workers)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "erserve:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	res, store, err := buildState(o)
	if err != nil {
		return err
	}
	mode := "volatile (use -wal for durability)"
	if store != nil {
		mode = "durable, wal=" + o.walDir
	}
	fmt.Fprintf(os.Stderr, "erserve: serving %s with %d entities on %s [%s]\n",
		res.Config().Describe(), res.Len(), o.addr, mode)

	s := newServer(res, store, o.writeQueue)
	// Timeouts bound what one slow or stalled client can hold: the write
	// timeout is generous because /snapshot streams the whole collection,
	// but Save no longer holds the resolver lock while streaming, so even
	// a client that hits it only costs its own connection.
	srv := &http.Server{
		Handler:           s.handler(o.requestTimeout, o.pprof),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       1 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.ready != nil {
		o.ready(ln.Addr().String())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "erserve: shutting down")
	// Fail /readyz first so load balancers stop routing, then drain.
	s.draining.Store(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if store != nil {
		if err := store.Close(); err != nil {
			return fmt.Errorf("closing store: %w", err)
		}
	}
	if o.save != "" {
		if err := res.SaveFile(nil, o.save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "erserve: snapshot saved to %s\n", o.save)
	}
	return nil
}

// buildState assembles the serving state: a volatile resolver, or, with
// -wal, a durable store recovered from its directory. The store is the
// source of truth — a bulk CSV only seeds it when it is empty, and the
// checkpointed configuration wins over the config flags.
func buildState(o options) (*online.Resolver, *online.Store, error) {
	if o.walDir == "" {
		res, err := buildResolver(o)
		return res, nil, err
	}
	if o.load != "" {
		return nil, nil, fmt.Errorf("-wal and -load are mutually exclusive: the store recovers from its own directory (copy a snapshot there as current.snap to restore one)")
	}
	cfg, ds, err := resolveConfig(o)
	if err != nil {
		return nil, nil, err
	}
	store, err := online.OpenStore(o.walDir, cfg, online.StoreOptions{CheckpointEvery: o.checkpointEvery})
	if err != nil {
		return nil, nil, err
	}
	res := store.Resolver()
	if ds != nil && res.Len() == 0 {
		batch := make([][]entity.Attribute, ds.Len())
		for i := range ds.Profiles {
			batch[i] = ds.Profiles[i].Attrs
		}
		if _, err := store.InsertBatch(batch); err != nil {
			store.Close()
			return nil, nil, fmt.Errorf("bulk seed: %w", err)
		}
	}
	return res, store, nil
}

// buildResolver builds the volatile resolver: resumed from a snapshot
// file, or built from the config flags and optionally bulk-loaded.
func buildResolver(o options) (*online.Resolver, error) {
	if o.load != "" {
		f, err := os.Open(o.load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return online.Load(f)
	}
	cfg, ds, err := resolveConfig(o)
	if err != nil {
		return nil, err
	}
	res := online.NewResolver(cfg)
	if ds != nil {
		res.InsertDataset(ds)
	}
	return res, nil
}

// resolveConfig turns the config flags into a serving configuration —
// tuned against a second collection when -tune is given — plus the bulk
// dataset, if any.
func resolveConfig(o options) (online.Config, *entity.Dataset, error) {
	setting := entity.SchemaAgnostic
	if o.schema == "based" {
		setting = entity.SchemaBased
	}
	var ds *entity.Dataset
	if o.bulk != "" {
		var err error
		ds, err = readCSVFile(o.bulk, "bulk")
		if err != nil {
			return online.Config{}, nil, err
		}
	}

	var cfg online.Config
	if o.tuneCSV != "" {
		if ds == nil || o.truthCSV == "" {
			return online.Config{}, nil, fmt.Errorf("-tune requires -bulk and -truth")
		}
		var err error
		cfg, err = tuneConfig(ds, o.tuneCSV, o.truthCSV, o.method, setting, o.attribute, o.target, o.workers)
		if err != nil {
			return online.Config{}, nil, err
		}
	} else {
		m, err := online.ParseMethod(o.method)
		if err != nil {
			return online.Config{}, nil, err
		}
		model, err := text.ParseModel(o.model)
		if err != nil {
			return online.Config{}, nil, err
		}
		cfg = online.Config{
			Method: m, Setting: setting, BestAttribute: o.attribute,
			Clean: o.clean, Model: model, K: o.k, Threshold: o.threshold,
		}
	}
	return cfg, ds, nil
}

// tuneConfig runs the Problem-1 grid search for the method over the
// (bulk, tune) collection pair and promotes the winning configuration
// into a serving config.
func tuneConfig(e1 *entity.Dataset, tuneCSV, truthCSV, method string,
	setting entity.SchemaSetting, attribute string, target float64, workers int) (online.Config, error) {

	e2, err := readCSVFile(tuneCSV, "tune")
	if err != nil {
		return online.Config{}, err
	}
	tf, err := os.Open(truthCSV)
	if err != nil {
		return online.Config{}, err
	}
	truth, err := entity.ReadGroundTruthCSV(tf, e1.Len(), e2.Len())
	tf.Close()
	if err != nil {
		return online.Config{}, err
	}
	if truth.Size() == 0 {
		return online.Config{}, fmt.Errorf("-tune requires a non-empty groundtruth")
	}
	task := &entity.Task{Name: "erserve", E1: e1, E2: e2, Truth: truth}
	if attribute != "" {
		task.BestAttribute = attribute
	} else {
		task.BestAttribute = entity.BestAttribute(task)
	}
	in := core.NewInput(task, setting)

	var r *tuning.Result
	switch method {
	case "knnj":
		space := tuning.DefaultSparseSpace(false)
		space.Workers = workers
		r = tuning.TuneKNNJoin(in, space, target)
	case "epsjoin":
		space := tuning.DefaultSparseSpace(false)
		space.Workers = workers
		r = tuning.TuneEpsJoin(in, space, target)
	case "flat", "faiss":
		space := tuning.DefaultDenseSpace(false)
		space.Workers = workers
		r, err = tuning.TuneFlatKNN(in, space, target)
		if err != nil {
			return online.Config{}, err
		}
	default:
		return online.Config{}, fmt.Errorf("method %q does not support -tune", method)
	}
	fmt.Fprintf(os.Stderr, "erserve: tuned %s: PC=%.3f PQ=%.3f config{%s}\n",
		r.Method, r.Metrics.PC, r.Metrics.PQ, r.ConfigString())
	return online.FromTuning(r, setting, task.BestAttribute)
}

func readCSVFile(path, name string) (*entity.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return entity.ReadCSV(name, f)
}

// server wires the resolver to the HTTP mux with per-endpoint latency
// histograms, bounded write admission and panic containment.
type server struct {
	res      *online.Resolver
	store    *online.Store // nil in volatile mode
	admit    chan struct{} // bounded write-admission tokens
	start    time.Time
	reg      *metrics.Registry
	eps      map[string]*endpointStats
	panics   *metrics.Counter
	draining atomic.Bool
}

// endpointStats are the latency histogram and error counter of one
// endpoint. Count, mean, max and the p50/p95/p99 all derive from the
// histogram — there is no separate counter to drift out of sync.
type endpointStats struct {
	hist   *metrics.Histogram
	errors *metrics.Counter
}

func newServer(res *online.Resolver, store *online.Store, writeQueue int) *server {
	if writeQueue <= 0 {
		writeQueue = 64
	}
	s := &server{
		res: res, store: store, admit: make(chan struct{}, writeQueue),
		start: time.Now(), reg: metrics.NewRegistry(), eps: map[string]*endpointStats{},
	}
	s.panics = s.reg.Counter("erserve_panics_total", "Handler panics recovered and answered with 500.", nil)
	s.reg.GaugeFunc("erserve_uptime_seconds", "Seconds since the daemon started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc("erserve_write_queue_depth", "Admitted writes currently in flight.", nil,
		func() float64 { return float64(len(s.admit)) })
	s.reg.GaugeFunc("erserve_write_queue_capacity", "Write-admission queue capacity.", nil,
		func() float64 { return float64(cap(s.admit)) })
	s.reg.GaugeFunc("erserve_draining", "1 while shutting down, else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	res.RegisterMetrics(s.reg)
	if store != nil {
		store.RegisterMetrics(s.reg)
	}
	return s
}

// statusWriter records the response status for the error counters. It
// wraps the *outermost* writer of the middleware chain — outside
// http.TimeoutHandler — so a timed-out request is recorded with the 503
// the client actually received, never the inner handler's phantom 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers
// (/snapshot) can push bytes incrementally; a non-flushing underlying
// writer makes it a no-op instead of a panic.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.NewResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument is the outermost per-endpoint middleware: it observes the
// latency and final status of every request into the endpoint's
// histogram and error counter. It must wrap any timeout middleware, not
// sit inside it — that ordering is what makes deadline kills visible.
func (s *server) instrument(name string, h http.Handler) http.HandlerFunc {
	st := &endpointStats{
		hist: s.reg.Histogram("erserve_http_request_duration_seconds",
			"End-to-end request latency as the client saw it.",
			metrics.Labels{"endpoint": name}, 1e-9),
		errors: s.reg.Counter("erserve_http_request_errors_total",
			"Requests answered with status >= 400, timeouts included.",
			metrics.Labels{"endpoint": name}),
	}
	s.eps[name] = st
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h.ServeHTTP(sw, r)
		st.hist.ObserveDuration(time.Since(begin))
		if sw.status >= 400 {
			st.errors.Inc()
		}
	}
}

// timeoutJSON bounds a JSON endpoint with http.TimeoutHandler and makes
// the timeout response JSON: the Content-Type is pre-set on the real
// writer (the timeout path writes the body straight through, while the
// success path copies the inner handler's headers over it, so normal
// responses keep their own type).
func timeoutJSON(d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	th := http.TimeoutHandler(h, d, `{"error":"request deadline exceeded"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	})
}

// admitWrite gates mutating endpoints behind the bounded admission
// queue: when every token is taken the request is shed immediately with
// 503 + Retry-After instead of queueing unboundedly behind a slow disk.
func (s *server) admitWrite(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errors.New("server is shutting down"))
			return
		}
		select {
		case s.admit <- struct{}{}:
			defer func() { <-s.admit }()
			h(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errors.New("write queue full"))
		}
	}
}

// recoverPanics is the outermost middleware: a panicking handler answers
// 500 and increments a counter instead of killing the connection (or,
// without net/http's own recovery, the daemon).
func (s *server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler { //nolint:errorlint // sentinel by contract
				panic(p)
			}
			s.panics.Inc()
			fmt.Fprintf(os.Stderr, "erserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			// Best effort: if the handler already wrote headers this is a
			// no-op and the client sees a truncated response.
			writeError(w, http.StatusInternalServerError, errors.New("internal error"))
		}()
		h.ServeHTTP(w, r)
	})
}

// handler assembles the route tree. Each JSON endpoint is wrapped as
// instrument(timeoutJSON(handler)) — the per-request deadline sits
// *inside* the instrumentation, so a timed-out request is observed with
// its real duration and its real 503. /snapshot streams the whole
// collection and /metrics must stay reachable while handlers wedge, so
// neither runs under the deadline (the server-level write timeout
// bounds them instead).
func (s *server) handler(timeout time.Duration, pprofOn bool) http.Handler {
	bounded := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(name, timeoutJSON(timeout, h))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", bounded("query", s.handleQuery))
	mux.HandleFunc("POST /entities", bounded("insert", s.admitWrite(s.handleInsert)))
	mux.HandleFunc("GET /entities/{id}", bounded("get", s.handleGet))
	mux.HandleFunc("DELETE /entities/{id}", bounded("delete", s.admitWrite(s.handleDelete)))
	mux.HandleFunc("GET /stats", bounded("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", bounded("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", bounded("readyz", s.handleReadyz))
	mux.HandleFunc("GET /snapshot", s.instrument("snapshot", http.HandlerFunc(s.handleSnapshot)))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", http.HandlerFunc(s.handleMetrics)))
	if pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.recoverPanics(mux)
}

// handleMetrics serves the Prometheus text exposition of everything the
// process measures: endpoint latency histograms, resolver telemetry and,
// in durable mode, the WAL's fsync and group-commit distributions.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		fmt.Fprintln(os.Stderr, "erserve: writing /metrics:", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeStoreError maps a durable-write failure: the store has degraded
// to read-only, which to the client is the service being unavailable for
// writes.
func writeStoreError(w http.ResponseWriter, err error) {
	writeError(w, http.StatusServiceUnavailable, err)
}

// entityPayload is the attribute form shared by inserts and queries.
type entityPayload struct {
	Attrs map[string]string `json:"attrs"`
	Text  string            `json:"text"`
}

// attrs converts the payload to a deterministic attribute list. A bare
// "text" value becomes a single attribute named after the resolver's
// best attribute, so it works under both schema settings.
func (p *entityPayload) attrs(cfg online.Config) ([]entity.Attribute, error) {
	if len(p.Attrs) == 0 && p.Text == "" {
		return nil, errors.New(`payload needs "attrs" or "text"`)
	}
	attrs := online.AttrsFromMap(p.Attrs)
	if p.Text != "" {
		name := cfg.BestAttribute
		if name == "" {
			name = "text"
		}
		attrs = append(attrs, entity.Attribute{Name: name, Value: p.Text})
	}
	return attrs, nil
}

// defaultQueryLimit caps the serialized candidate list when the request
// does not choose its own limit: an EpsJoin query with a permissive eps
// matches a large fraction of the collection, and without a cap the
// handler would serialize (and the client download) all of it.
const defaultQueryLimit = 1000

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		entityPayload
		K     int     `json:"k"`
		Eps   float64 `json:"eps"`
		Limit int     `json:"limit"`
		Trace bool    `json:"trace"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Limit < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("limit must be >= 0, got %d", req.Limit))
		return
	}
	attrs, err := req.attrs(s.res.Config())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := req.Limit
	if limit == 0 {
		limit = defaultQueryLimit
	}
	snap := s.res.Snapshot()
	cands, tr := snap.QueryTraced(attrs, online.QueryOptions{K: req.K, Threshold: req.Eps})
	truncated := len(cands) > limit
	if truncated {
		cands = cands[:limit]
	}
	type cand struct {
		ID    int64   `json:"id"`
		Score float64 `json:"score"`
	}
	type trace struct {
		Epoch      uint64 `json:"epoch"`
		EncodeUS   int64  `json:"encode_us"`
		SearchUS   int64  `json:"search_us"`
		Candidates int    `json:"candidates"`
	}
	out := struct {
		Epoch      uint64 `json:"epoch"`
		Entities   int    `json:"entities"`
		Candidates []cand `json:"candidates"`
		Truncated  bool   `json:"truncated,omitempty"`
		Trace      *trace `json:"trace,omitempty"`
	}{
		Epoch: snap.Epoch(), Entities: snap.Len(),
		Candidates: make([]cand, len(cands)), Truncated: truncated,
	}
	for i, c := range cands {
		out.Candidates[i] = cand{ID: c.ID, Score: c.Score}
	}
	if req.Trace {
		out.Trace = &trace{
			Epoch:      tr.Epoch,
			EncodeUS:   tr.Encode.Microseconds(),
			SearchUS:   tr.Search.Microseconds(),
			Candidates: tr.Candidates,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req struct {
		entityPayload
		Entities []entityPayload `json:"entities"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	cfg := s.res.Config()
	var batch [][]entity.Attribute
	add := func(p *entityPayload) error {
		attrs, err := p.attrs(cfg)
		if err != nil {
			return err
		}
		batch = append(batch, attrs)
		return nil
	}
	if len(req.Entities) > 0 {
		for i := range req.Entities {
			if err := add(&req.Entities[i]); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("entity %d: %w", i, err))
				return
			}
		}
	} else if err := add(&req.entityPayload); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var ids []int64
	if s.store != nil {
		var err error
		if ids, err = s.store.InsertBatch(batch); err != nil {
			writeStoreError(w, err)
			return
		}
	} else {
		ids = s.res.InsertBatch(batch)
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "epoch": s.res.Snapshot().Epoch()})
}

func pathID(r *http.Request) (int64, error) {
	return strconv.ParseInt(r.PathValue("id"), 10, 64)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	attrs, ok := s.res.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("entity %d not resident", id))
		return
	}
	type attr struct {
		Name  string `json:"name"`
		Value string `json:"value"`
	}
	out := struct {
		ID    int64  `json:"id"`
		Attrs []attr `json:"attrs"`
	}{ID: id, Attrs: make([]attr, len(attrs))}
	for i, a := range attrs {
		out.Attrs[i] = attr{Name: a.Name, Value: a.Value}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	var ok bool
	if s.store != nil {
		if ok, err = s.store.Delete(id); err != nil {
			writeStoreError(w, err)
			return
		}
	} else {
		ok = s.res.Delete(id)
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("entity %d not resident", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "epoch": s.res.Snapshot().Epoch()})
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.res.Save(w); err != nil {
		// Headers are already sent; the truncated stream fails the
		// client-side checksum, so the replica never loads partial state.
		fmt.Fprintln(os.Stderr, "erserve: streaming snapshot:", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start)
	type ep struct {
		Count     int64   `json:"count"`
		Errors    int64   `json:"errors"`
		MeanUS    float64 `json:"mean_us"`
		P50US     float64 `json:"p50_us"`
		P95US     float64 `json:"p95_us"`
		P99US     float64 `json:"p99_us"`
		MaxUS     float64 `json:"max_us"`
		PerSecond float64 `json:"per_second"`
	}
	eps := map[string]ep{}
	for name, st := range s.eps {
		snap := st.hist.Snapshot()
		e := ep{Count: snap.Count, Errors: st.errors.Value(), MaxUS: float64(snap.Max) / 1e3}
		if snap.Count > 0 {
			e.MeanUS = snap.Mean() / 1e3
			e.P50US = float64(snap.Quantile(0.50)) / 1e3
			e.P95US = float64(snap.Quantile(0.95)) / 1e3
			e.P99US = float64(snap.Quantile(0.99)) / 1e3
			e.PerSecond = float64(snap.Count) / uptime.Seconds()
		}
		eps[name] = e
	}
	out := map[string]any{
		"resolver":  s.res.Stats(),
		"endpoints": eps,
		"uptime_s":  uptime.Seconds(),
		"panics":    s.panics.Value(),
		"write_queue": map[string]int{
			"depth": len(s.admit), "capacity": cap(s.admit),
		},
	}
	if s.store != nil {
		out["store"] = s.store.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is write readiness: not ready while draining for shutdown
// or while the store is degraded to read-only after a WAL disk failure.
// Load balancers should route writes only to ready replicas; reads keep
// working either way.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.draining.Load() {
		http.Error(w, "draining: shutting down", http.StatusServiceUnavailable)
		return
	}
	if s.store != nil {
		if ok, reason := s.store.Ready(); !ok {
			http.Error(w, "degraded read-only: "+reason.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}
