// Command erserve is the online resolution daemon: it keeps one tuned
// filtering configuration resident as an incrementally-updatable index
// and answers top-candidate queries over HTTP while entities are
// inserted and deleted, isolating readers from writers through
// epoch-swapped immutable snapshots.
//
//	erserve -bulk shopA.csv -method knnj -k 3 -addr :8654
//	erserve -bulk a.csv -tune b.csv -truth gt.csv -method knnj   # serve the tuned optimum
//	erserve -load resolver.snap                                  # resume from a snapshot
//
// Endpoints (JSON unless noted):
//
//	POST   /query         {"attrs":{...}|"text":"...","k":N,"eps":X} → top candidates
//	POST   /entities      {"attrs":{...}} or {"entities":[{...},...]} → assigned ids
//	GET    /entities/{id} → stored attributes
//	DELETE /entities/{id} → tombstone + re-publish
//	GET    /snapshot      → binary snapshot stream (resumable with -load)
//	GET    /stats         → resolver + per-endpoint latency/throughput counters
//	GET    /healthz       → ok
//
// The daemon shuts down gracefully on SIGTERM/SIGINT, draining in-flight
// requests and, when -save is given, writing a final snapshot.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/online"
	"erfilter/internal/text"
	"erfilter/internal/tuning"
)

func main() {
	var (
		addr      = flag.String("addr", ":8654", "listen address")
		load      = flag.String("load", "", "resume from a snapshot file (overrides config flags)")
		bulk      = flag.String("bulk", "", "CSV file of entities to bulk-insert on startup")
		method    = flag.String("method", "knnj", "filter: knnj, epsjoin, flat")
		schema    = flag.String("schema", "agnostic", "schema setting: agnostic or based")
		attribute = flag.String("attribute", "", "attribute for -schema based")
		modelName = flag.String("model", "C3G", "representation model for sparse methods (T1G..C5GM)")
		clean     = flag.Bool("clean", true, "apply stop-word removal and stemming")
		k         = flag.Int("k", 3, "cardinality threshold for knnj/flat")
		threshold = flag.Float64("t", 0.4, "similarity threshold for epsjoin")
		tuneCSV   = flag.String("tune", "", "second-collection CSV: tune the method against it before serving (requires -bulk and -truth)")
		truthCSV  = flag.String("truth", "", "groundtruth CSV of (bulk,tune) index pairs for -tune")
		target    = flag.Float64("target", tuning.DefaultTarget, "recall target for -tune")
		workers   = flag.Int("workers", 0, "worker-pool size for -tune grid searches (0 = NumCPU)")
		save      = flag.String("save", "", "write a snapshot to this file on graceful shutdown")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "erserve: -workers must be >= 0 (0 selects all CPUs), got %d\n", *workers)
		os.Exit(2)
	}
	if err := run(*addr, *load, *bulk, *method, *schema, *attribute, *modelName,
		*clean, *k, *threshold, *tuneCSV, *truthCSV, *target, *workers, *save); err != nil {
		fmt.Fprintln(os.Stderr, "erserve:", err)
		os.Exit(1)
	}
}

func run(addr, load, bulk, method, schema, attribute, modelName string,
	clean bool, k int, threshold float64, tuneCSV, truthCSV string,
	target float64, workers int, save string) error {

	res, err := buildResolver(load, bulk, method, schema, attribute, modelName,
		clean, k, threshold, tuneCSV, truthCSV, target, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "erserve: serving %s with %d entities on %s\n",
		res.Config().Describe(), res.Len(), addr)

	// Timeouts bound what one slow or stalled client can hold: the write
	// timeout is generous because /snapshot streams the whole collection,
	// but Save no longer holds the resolver lock while streaming, so even
	// a client that hits it only costs its own connection.
	srv := &http.Server{
		Addr:              addr,
		Handler:           newServer(res).handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       1 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "erserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if save != "" {
		if err := saveSnapshot(res, save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "erserve: snapshot saved to %s\n", save)
	}
	return nil
}

func buildResolver(load, bulk, method, schema, attribute, modelName string,
	clean bool, k int, threshold float64, tuneCSV, truthCSV string,
	target float64, workers int) (*online.Resolver, error) {

	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return online.Load(f)
	}

	setting := entity.SchemaAgnostic
	if schema == "based" {
		setting = entity.SchemaBased
	}
	var ds *entity.Dataset
	if bulk != "" {
		var err error
		ds, err = readCSVFile(bulk, "bulk")
		if err != nil {
			return nil, err
		}
	}

	var cfg online.Config
	if tuneCSV != "" {
		if ds == nil || truthCSV == "" {
			return nil, fmt.Errorf("-tune requires -bulk and -truth")
		}
		var err error
		cfg, err = tuneConfig(ds, tuneCSV, truthCSV, method, setting, attribute, target, workers)
		if err != nil {
			return nil, err
		}
	} else {
		m, err := online.ParseMethod(method)
		if err != nil {
			return nil, err
		}
		model, err := text.ParseModel(modelName)
		if err != nil {
			return nil, err
		}
		cfg = online.Config{
			Method: m, Setting: setting, BestAttribute: attribute,
			Clean: clean, Model: model, K: k, Threshold: threshold,
		}
	}

	res := online.NewResolver(cfg)
	if ds != nil {
		res.InsertDataset(ds)
	}
	return res, nil
}

// tuneConfig runs the Problem-1 grid search for the method over the
// (bulk, tune) collection pair and promotes the winning configuration
// into a serving config.
func tuneConfig(e1 *entity.Dataset, tuneCSV, truthCSV, method string,
	setting entity.SchemaSetting, attribute string, target float64, workers int) (online.Config, error) {

	e2, err := readCSVFile(tuneCSV, "tune")
	if err != nil {
		return online.Config{}, err
	}
	tf, err := os.Open(truthCSV)
	if err != nil {
		return online.Config{}, err
	}
	truth, err := entity.ReadGroundTruthCSV(tf, e1.Len(), e2.Len())
	tf.Close()
	if err != nil {
		return online.Config{}, err
	}
	if truth.Size() == 0 {
		return online.Config{}, fmt.Errorf("-tune requires a non-empty groundtruth")
	}
	task := &entity.Task{Name: "erserve", E1: e1, E2: e2, Truth: truth}
	if attribute != "" {
		task.BestAttribute = attribute
	} else {
		task.BestAttribute = entity.BestAttribute(task)
	}
	in := core.NewInput(task, setting)

	var r *tuning.Result
	switch method {
	case "knnj":
		space := tuning.DefaultSparseSpace(false)
		space.Workers = workers
		r = tuning.TuneKNNJoin(in, space, target)
	case "epsjoin":
		space := tuning.DefaultSparseSpace(false)
		space.Workers = workers
		r = tuning.TuneEpsJoin(in, space, target)
	case "flat", "faiss":
		space := tuning.DefaultDenseSpace(false)
		space.Workers = workers
		r, err = tuning.TuneFlatKNN(in, space, target)
		if err != nil {
			return online.Config{}, err
		}
	default:
		return online.Config{}, fmt.Errorf("method %q does not support -tune", method)
	}
	fmt.Fprintf(os.Stderr, "erserve: tuned %s: PC=%.3f PQ=%.3f config{%s}\n",
		r.Method, r.Metrics.PC, r.Metrics.PQ, r.ConfigString())
	return online.FromTuning(r, setting, task.BestAttribute)
}

func readCSVFile(path, name string) (*entity.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return entity.ReadCSV(name, f)
}

func saveSnapshot(res *online.Resolver, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// server wires the resolver to the HTTP mux with per-endpoint counters.
type server struct {
	res   *online.Resolver
	start time.Time
	eps   map[string]*endpointStats
}

// endpointStats are the latency/throughput counters of one endpoint.
type endpointStats struct {
	count, errors, totalNS, maxNS atomic.Int64
}

func (e *endpointStats) observe(d time.Duration, failed bool) {
	e.count.Add(1)
	if failed {
		e.errors.Add(1)
	}
	ns := d.Nanoseconds()
	e.totalNS.Add(ns)
	for {
		max := e.maxNS.Load()
		if ns <= max || e.maxNS.CompareAndSwap(max, ns) {
			return
		}
	}
}

func newServer(res *online.Resolver) *server {
	return &server{res: res, start: time.Now(), eps: map[string]*endpointStats{}}
}

// statusWriter records the response status for the error counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *server) wrap(name string, h http.HandlerFunc) http.HandlerFunc {
	st := &endpointStats{}
	s.eps[name] = st
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h(sw, r)
		st.observe(time.Since(begin), sw.status >= 400)
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.wrap("query", s.handleQuery))
	mux.HandleFunc("POST /entities", s.wrap("insert", s.handleInsert))
	mux.HandleFunc("GET /entities/{id}", s.wrap("get", s.handleGet))
	mux.HandleFunc("DELETE /entities/{id}", s.wrap("delete", s.handleDelete))
	mux.HandleFunc("GET /snapshot", s.wrap("snapshot", s.handleSnapshot))
	mux.HandleFunc("GET /stats", s.wrap("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// entityPayload is the attribute form shared by inserts and queries.
type entityPayload struct {
	Attrs map[string]string `json:"attrs"`
	Text  string            `json:"text"`
}

// attrs converts the payload to a deterministic attribute list. A bare
// "text" value becomes a single attribute named after the resolver's
// best attribute, so it works under both schema settings.
func (p *entityPayload) attrs(cfg online.Config) ([]entity.Attribute, error) {
	if len(p.Attrs) == 0 && p.Text == "" {
		return nil, errors.New(`payload needs "attrs" or "text"`)
	}
	attrs := online.AttrsFromMap(p.Attrs)
	if p.Text != "" {
		name := cfg.BestAttribute
		if name == "" {
			name = "text"
		}
		attrs = append(attrs, entity.Attribute{Name: name, Value: p.Text})
	}
	return attrs, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		entityPayload
		K   int     `json:"k"`
		Eps float64 `json:"eps"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	attrs, err := req.attrs(s.res.Config())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.res.Snapshot()
	cands := snap.Query(attrs, online.QueryOptions{K: req.K, Threshold: req.Eps})
	type cand struct {
		ID    int64   `json:"id"`
		Score float64 `json:"score"`
	}
	out := struct {
		Epoch      uint64 `json:"epoch"`
		Entities   int    `json:"entities"`
		Candidates []cand `json:"candidates"`
	}{Epoch: snap.Epoch(), Entities: snap.Len(), Candidates: make([]cand, len(cands))}
	for i, c := range cands {
		out.Candidates[i] = cand{ID: c.ID, Score: c.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req struct {
		entityPayload
		Entities []entityPayload `json:"entities"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	cfg := s.res.Config()
	var batch [][]entity.Attribute
	add := func(p *entityPayload) error {
		attrs, err := p.attrs(cfg)
		if err != nil {
			return err
		}
		batch = append(batch, attrs)
		return nil
	}
	if len(req.Entities) > 0 {
		for i := range req.Entities {
			if err := add(&req.Entities[i]); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("entity %d: %w", i, err))
				return
			}
		}
	} else if err := add(&req.entityPayload); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ids := s.res.InsertBatch(batch)
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "epoch": s.res.Snapshot().Epoch()})
}

func pathID(r *http.Request) (int64, error) {
	return strconv.ParseInt(r.PathValue("id"), 10, 64)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	attrs, ok := s.res.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("entity %d not resident", id))
		return
	}
	type attr struct {
		Name  string `json:"name"`
		Value string `json:"value"`
	}
	out := struct {
		ID    int64  `json:"id"`
		Attrs []attr `json:"attrs"`
	}{ID: id, Attrs: make([]attr, len(attrs))}
	for i, a := range attrs {
		out.Attrs[i] = attr{Name: a.Name, Value: a.Value}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	if !s.res.Delete(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("entity %d not resident", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "epoch": s.res.Snapshot().Epoch()})
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.res.Save(w); err != nil {
		// Headers are already sent; the truncated stream fails the
		// client-side magic/length checks.
		fmt.Fprintln(os.Stderr, "erserve: streaming snapshot:", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start)
	type ep struct {
		Count     int64   `json:"count"`
		Errors    int64   `json:"errors"`
		MeanUS    float64 `json:"mean_us"`
		MaxUS     float64 `json:"max_us"`
		PerSecond float64 `json:"per_second"`
	}
	eps := map[string]ep{}
	for name, st := range s.eps {
		n := st.count.Load()
		e := ep{Count: n, Errors: st.errors.Load(), MaxUS: float64(st.maxNS.Load()) / 1e3}
		if n > 0 {
			e.MeanUS = float64(st.totalNS.Load()) / float64(n) / 1e3
			e.PerSecond = float64(n) / uptime.Seconds()
		}
		eps[name] = e
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"resolver":  s.res.Stats(),
		"endpoints": eps,
		"uptime_s":  uptime.Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
