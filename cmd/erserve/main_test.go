package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/knn"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func testServingConfig() online.Config {
	c3g, _ := text.ParseModel("C3G")
	return online.Config{
		Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 3, Clean: true,
	}
}

func newTestServer(t *testing.T) (*httptest.Server, *online.Resolver) {
	t.Helper()
	res := online.NewResolver(testServingConfig())
	ts := httptest.NewServer(newServer(res, nil, 0).handler(10*time.Second, false))
	t.Cleanup(ts.Close)
	return ts, res
}

// newDurableTestServer serves a WAL-backed store on an injectable
// in-memory file system, the bench for the failure-mode tests.
func newDurableTestServer(t *testing.T, m *faultfs.Mem, writeQueue int) (*httptest.Server, *online.Store) {
	t.Helper()
	store, err := online.OpenStore("walstore", testServingConfig(), online.StoreOptions{FS: m})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	ts := httptest.NewServer(newServer(store.Resolver(), store, writeQueue).handler(10*time.Second, false))
	t.Cleanup(func() {
		ts.Close()
		store.Close()
	})
	return ts, store
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	// Insert a batch, then one more entity.
	var ins struct {
		IDs   []int64 `json:"ids"`
		Epoch uint64  `json:"epoch"`
	}
	code := doJSON(t, "POST", ts.URL+"/entities", map[string]any{
		"entities": []map[string]any{
			{"attrs": map[string]string{"name": "canon powershot a540", "price": "199"}},
			{"attrs": map[string]string{"name": "nikon coolpix p100", "price": "299"}},
			{"text": "sony cybershot dsc w55"},
		},
	}, &ins)
	if code != http.StatusOK || len(ins.IDs) != 3 {
		t.Fatalf("batch insert: code=%d ids=%v", code, ins.IDs)
	}
	var one struct {
		IDs []int64 `json:"ids"`
	}
	if code := doJSON(t, "POST", ts.URL+"/entities", map[string]any{
		"attrs": map[string]string{"name": "apple ipod nano"},
	}, &one); code != http.StatusOK || len(one.IDs) != 1 || one.IDs[0] != 3 {
		t.Fatalf("single insert: code=%d ids=%v", code, one.IDs)
	}

	// Query finds the canon entity first.
	var q struct {
		Epoch      uint64 `json:"epoch"`
		Entities   int    `json:"entities"`
		Candidates []struct {
			ID    int64   `json:"id"`
			Score float64 `json:"score"`
		} `json:"candidates"`
	}
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{
		"attrs": map[string]string{"name": "canon power shot a540"}, "k": 2,
	}, &q); code != http.StatusOK {
		t.Fatalf("query code=%d", code)
	}
	if q.Entities != 4 || len(q.Candidates) == 0 || q.Candidates[0].ID != ins.IDs[0] {
		t.Fatalf("query result: %+v", q)
	}

	// Get echoes stored attributes.
	var got struct {
		ID    int64 `json:"id"`
		Attrs []struct{ Name, Value string }
	}
	if code := doJSON(t, "GET", fmt.Sprintf("%s/entities/%d", ts.URL, ins.IDs[0]), nil, &got); code != http.StatusOK {
		t.Fatalf("get code=%d", code)
	}
	if len(got.Attrs) != 2 || got.Attrs[0].Name != "name" {
		t.Fatalf("get attrs: %+v", got)
	}

	// Delete, then the entity is gone from queries and GETs.
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/entities/%d", ts.URL, ins.IDs[0]), nil, nil); code != http.StatusOK {
		t.Fatalf("delete code=%d", code)
	}
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/entities/%d", ts.URL, ins.IDs[0]), nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete code=%d", code)
	}
	if code := doJSON(t, "GET", fmt.Sprintf("%s/entities/%d", ts.URL, ins.IDs[0]), nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete code=%d", code)
	}
	q.Candidates = nil
	doJSON(t, "POST", ts.URL+"/query", map[string]any{"text": "canon powershot a540"}, &q)
	for _, c := range q.Candidates {
		if c.ID == ins.IDs[0] {
			t.Fatalf("deleted entity still served: %+v", q)
		}
	}

	// Bad requests are 4xx, not 5xx.
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty query code=%d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/entities/notanumber", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad id code=%d", code)
	}

	// Healthz and stats.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	var stats struct {
		Resolver  online.Stats `json:"resolver"`
		Endpoints map[string]struct {
			Count  int64 `json:"count"`
			Errors int64 `json:"errors"`
		} `json:"endpoints"`
		UptimeS float64 `json:"uptime_s"`
		Panics  int64   `json:"panics"`
	}
	if code := doJSON(t, "GET", ts.URL+"/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats code=%d", code)
	}
	if stats.Resolver.Entities != 3 || stats.Resolver.Inserts != 4 || stats.Resolver.Deletes != 1 {
		t.Fatalf("resolver stats: %+v", stats.Resolver)
	}
	if stats.Endpoints["query"].Count < 2 || stats.Endpoints["insert"].Count != 2 {
		t.Fatalf("endpoint counters: %+v", stats.Endpoints)
	}
	if stats.Endpoints["delete"].Errors != 1 {
		t.Fatalf("delete error counter: %+v", stats.Endpoints)
	}
}

// TestServerSnapshotStream round-trips the resolver through the
// GET /snapshot endpoint and checks the loaded replica answers queries
// identically.
func TestServerSnapshotStream(t *testing.T) {
	ts, res := newTestServer(t)
	for i := 0; i < 20; i++ {
		res.Insert([]entity.Attribute{{Name: "name", Value: fmt.Sprintf("entity number %d canon", i)}})
	}
	res.Delete(4)

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	replica, err := online.Load(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	q := []entity.Attribute{{Name: "name", Value: "canon entity number 7"}}
	a := res.Query(q, online.QueryOptions{K: 5})
	b := replica.Query(q, online.QueryOptions{K: 5})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("replica answers differ: %s vs %s", ja, jb)
	}
}

// TestHealthzVsReadyz pins the liveness/readiness split: /healthz stays
// green as long as the process serves, /readyz reflects writability.
func TestHealthzVsReadyz(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on healthy server: %v %v", path, err, resp)
		}
		resp.Body.Close()
	}

	m := faultfs.NewMem()
	dts, _ := newDurableTestServer(t, m, 0)
	m.FailAllSyncs(true)
	if code := doJSON(t, "POST", dts.URL+"/entities", map[string]any{"text": "doomed"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("insert on broken disk: code=%d", code)
	}
	resp, err := http.Get(dts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body[:n]), "degraded") {
		t.Fatalf("readyz on degraded store: %d %q", resp.StatusCode, body[:n])
	}
	resp, err = http.Get(dts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz on degraded store must stay ok: %v %v", err, resp)
	}
	resp.Body.Close()
}

// TestDegradedReadOnlyServing: after a WAL disk failure writes fail fast
// with 503 while queries keep answering from the last good epoch.
func TestDegradedReadOnlyServing(t *testing.T) {
	m := faultfs.NewMem()
	ts, store := newDurableTestServer(t, m, 0)
	if code := doJSON(t, "POST", ts.URL+"/entities", map[string]any{
		"text": "canon powershot a540 camera",
	}, nil); code != http.StatusOK {
		t.Fatalf("healthy insert: code=%d", code)
	}
	m.FailAllSyncs(true)
	if code := doJSON(t, "POST", ts.URL+"/entities", map[string]any{"text": "lost"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded insert: code=%d", code)
	}
	m.FailAllSyncs(false) // disk heals, but the poisoned log stays read-only
	if code := doJSON(t, "POST", ts.URL+"/entities", map[string]any{"text": "still rejected"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("insert after heal: code=%d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/entities/0", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded delete: code=%d", code)
	}
	var q struct {
		Candidates []struct{ ID int64 } `json:"candidates"`
	}
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{"text": "canon a540"}, &q); code != http.StatusOK || len(q.Candidates) == 0 {
		t.Fatalf("degraded query: code=%d candidates=%v", code, q.Candidates)
	}
	var stats struct {
		Store online.StoreStats `json:"store"`
	}
	if code := doJSON(t, "GET", ts.URL+"/stats", nil, &stats); code != http.StatusOK || !stats.Store.Degraded {
		t.Fatalf("stats must report degradation: code=%d %+v", code, stats.Store)
	}
	_ = store
}

// TestOverloadSheds fills the write-admission queue with a write stalled
// in fsync and checks further writes are shed immediately with 503 +
// Retry-After while reads keep succeeding.
func TestOverloadSheds(t *testing.T) {
	m := faultfs.NewMem()
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	ts, _ := newDurableTestServer(t, m, 1)
	// Stall fsyncs only from here on, so store open ran unimpeded.
	m.BeforeSync = func(string) { <-gate }

	stalled := make(chan int, 1)
	go func() {
		stalled <- doJSON(t, "POST", ts.URL+"/entities", map[string]any{"text": "slow disk write"}, nil)
	}()
	// Wait until the stalled write holds the only admission token.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats struct {
			WriteQueue struct{ Depth, Capacity int } `json:"write_queue"`
		}
		doJSON(t, "GET", ts.URL+"/stats", nil, &stats)
		if stats.WriteQueue.Depth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled write never occupied the admission queue")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The queue is full: writes shed with 503 + Retry-After, fast.
	body, _ := json.Marshal(map[string]any{"text": "shed me"})
	begin := time.Now()
	resp, err := http.Post(ts.URL+"/entities", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded insert: code=%d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if d := time.Since(begin); d > 2*time.Second {
		t.Fatalf("shedding took %v, must be immediate", d)
	}
	// Reads are not admission-gated and still succeed.
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{"text": "anything"}, nil); code != http.StatusOK {
		t.Fatalf("query during overload: code=%d", code)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during overload: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Release the disk: the stalled write completes and was never lost.
	openGate()
	if code := <-stalled; code != http.StatusOK {
		t.Fatalf("stalled write finished with %d", code)
	}
}

// TestPanicRecovery drives a panicking handler through the middleware:
// the client gets a 500 and the counter moves; the daemon does not die.
func TestPanicRecovery(t *testing.T) {
	s := newServer(online.NewResolver(testServingConfig()), nil, 0)
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/anything", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d", rec.Code)
	}
	if s.panics.Value() != 1 {
		t.Fatalf("panic counter = %d", s.panics.Value())
	}
}

// TestGracefulShutdownUnderWrites runs the real daemon on a real file
// system, SIGTERMs it in the middle of a write burst, and proves the
// contract: every request is acknowledged or rejected, and every
// acknowledged write is present after restart.
func TestGracefulShutdownUnderWrites(t *testing.T) {
	dir := t.TempDir()
	o := options{
		addr: "127.0.0.1:0", method: "knnj", schema: "agnostic", model: "C3G",
		clean: true, k: 3, threshold: 0.4,
		walDir: filepath.Join(dir, "store"), checkpointEvery: 64,
		writeQueue: 8, requestTimeout: 10 * time.Second,
	}
	addrc := make(chan string, 1)
	o.ready = func(a string) { addrc <- a }
	done := make(chan error, 1)
	go func() { done <- run(o) }()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	}

	// Burst writers: each loops until the daemon stops accepting,
	// recording which texts were acknowledged with which ids.
	var mu sync.Mutex
	acked := map[int64]string{}
	var wg sync.WaitGroup
	const writers = 6
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				txt := fmt.Sprintf("writer %d entity %d canon camera", g, i)
				body, _ := json.Marshal(map[string]any{"text": txt})
				resp, err := http.Post(base+"/entities", "application/json", bytes.NewReader(body))
				if err != nil {
					return // connection refused/reset: daemon is gone
				}
				var out struct {
					IDs []int64 `json:"ids"`
				}
				code := resp.StatusCode
				decodeErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch {
				case code == http.StatusOK:
					if decodeErr != nil || len(out.IDs) != 1 {
						t.Errorf("acked insert with bad body: %v %v", decodeErr, out.IDs)
						return
					}
					mu.Lock()
					acked[out.IDs[0]] = txt
					mu.Unlock()
				case code == http.StatusServiceUnavailable:
					// Shed or draining: fine, just not acknowledged.
				default:
					t.Errorf("write answered %d", code)
					return
				}
			}
		}(g)
	}

	time.Sleep(150 * time.Millisecond) // let the burst get going
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if len(acked) == 0 {
		t.Fatal("no write was acknowledged before the SIGTERM")
	}

	// Restart the store: every acknowledged write must be there.
	store, err := online.OpenStore(o.walDir, testServingConfig(), online.StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer store.Close()
	res := store.Resolver()
	for id, txt := range acked {
		attrs, ok := res.Get(id)
		if !ok {
			t.Fatalf("acked entity %d lost across restart", id)
		}
		if len(attrs) != 1 || attrs[0].Value != txt {
			t.Fatalf("acked entity %d came back as %v, want %q", id, attrs, txt)
		}
	}
	t.Logf("verified %d acked writes across SIGTERM + restart", len(acked))
}

func writeTaskCSVs(t *testing.T) (e1, e2, truth string) {
	t.Helper()
	dir := t.TempDir()
	task := datagen.Generate(datagen.QuickSpec(20, 40, 12, 5))
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	e1 = write("e1.csv", func(f *os.File) error { return entity.WriteCSV(f, task.E1) })
	e2 = write("e2.csv", func(f *os.File) error { return entity.WriteCSV(f, task.E2) })
	truth = write("truth.csv", func(f *os.File) error {
		for _, p := range task.Truth.Pairs() {
			if _, err := fmt.Fprintf(f, "%d,%d\n", p.Left, p.Right); err != nil {
				return err
			}
		}
		return nil
	})
	return e1, e2, truth
}

// baseOptions are the flag defaults the CLI would apply, for tests that
// drive buildResolver directly.
func baseOptions() options {
	return options{
		method: "knnj", schema: "agnostic", model: "C3G",
		clean: true, k: 3, threshold: 0.4, target: 0.9, workers: 1,
	}
}

// TestBuildResolverPaths covers the startup paths: bulk CSV load, tuned
// startup, and snapshot resume.
func TestBuildResolverPaths(t *testing.T) {
	e1, e2, truth := writeTaskCSVs(t)

	o := baseOptions()
	o.bulk = e1
	res, err := buildResolver(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 20 {
		t.Fatalf("bulk load: %d entities", res.Len())
	}

	tunedOpt := baseOptions()
	tunedOpt.bulk, tunedOpt.tuneCSV, tunedOpt.truthCSV = e1, e2, truth
	tuned, err := buildResolver(tunedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Len() != 20 {
		t.Fatalf("tuned load: %d entities", tuned.Len())
	}
	if !strings.Contains(tuned.Config().Describe(), "method=knnj") {
		t.Fatalf("tuned config: %s", tuned.Config().Describe())
	}

	snapPath := filepath.Join(t.TempDir(), "resolver.snap")
	if err := res.SaveFile(nil, snapPath); err != nil {
		t.Fatal(err)
	}
	resumed, err := buildResolver(options{load: snapPath})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Len() != res.Len() {
		t.Fatalf("resumed %d entities, want %d", resumed.Len(), res.Len())
	}

	bad := baseOptions()
	bad.bulk, bad.method = e1, "pbw"
	if _, err := buildResolver(bad); err == nil {
		t.Fatal("unservable method must error")
	}
	noTruth := baseOptions()
	noTruth.bulk, noTruth.tuneCSV = e1, e2
	if _, err := buildResolver(noTruth); err == nil {
		t.Fatal("-tune without -truth must error")
	}
}

// TestBuildStateDurable covers the -wal startup paths: bulk seeding an
// empty store, recovery taking precedence over the seed on reopen, and
// the -wal/-load conflict.
func TestBuildStateDurable(t *testing.T) {
	e1, _, _ := writeTaskCSVs(t)
	o := baseOptions()
	o.bulk = e1
	o.walDir = filepath.Join(t.TempDir(), "store")
	o.checkpointEvery = 64

	res, store, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	if store == nil || res.Len() != 20 {
		t.Fatalf("durable bulk seed: store=%v len=%d", store, res.Len())
	}
	if _, err := store.Insert([]entity.Attribute{{Name: "name", Value: "extra"}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the store recovers 21 entities; the bulk seed must NOT
	// re-run on a non-empty store.
	res2, store2, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if res2.Len() != 21 {
		t.Fatalf("recovered %d entities, want 21", res2.Len())
	}

	conflicted := o
	conflicted.load = "something.snap"
	if _, _, err := buildState(conflicted); err == nil {
		t.Fatal("-wal with -load must error")
	}
}

// TestTunedFlatStartup exercises the dense tuning path end to end.
func TestTunedFlatStartup(t *testing.T) {
	if testing.Short() {
		t.Skip("dense tuning is slow")
	}
	e1, e2, truth := writeTaskCSVs(t)
	o := baseOptions()
	o.bulk, o.tuneCSV, o.truthCSV, o.method = e1, e2, truth, "flat"
	res, err := buildResolver(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config().Method != online.FlatKNN {
		t.Fatalf("config: %s", res.Config().Describe())
	}
	if res.Config().Metric != knn.L2Squared {
		t.Fatalf("metric: %v", res.Config().Metric)
	}
}
