package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func newTestServer(t *testing.T) (*httptest.Server, *online.Resolver) {
	t.Helper()
	c3g, _ := text.ParseModel("C3G")
	res := online.NewResolver(online.Config{
		Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 3, Clean: true,
	})
	ts := httptest.NewServer(newServer(res).handler())
	t.Cleanup(ts.Close)
	return ts, res
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	// Insert a batch, then one more entity.
	var ins struct {
		IDs   []int64 `json:"ids"`
		Epoch uint64  `json:"epoch"`
	}
	code := doJSON(t, "POST", ts.URL+"/entities", map[string]any{
		"entities": []map[string]any{
			{"attrs": map[string]string{"name": "canon powershot a540", "price": "199"}},
			{"attrs": map[string]string{"name": "nikon coolpix p100", "price": "299"}},
			{"text": "sony cybershot dsc w55"},
		},
	}, &ins)
	if code != http.StatusOK || len(ins.IDs) != 3 {
		t.Fatalf("batch insert: code=%d ids=%v", code, ins.IDs)
	}
	var one struct {
		IDs []int64 `json:"ids"`
	}
	if code := doJSON(t, "POST", ts.URL+"/entities", map[string]any{
		"attrs": map[string]string{"name": "apple ipod nano"},
	}, &one); code != http.StatusOK || len(one.IDs) != 1 || one.IDs[0] != 3 {
		t.Fatalf("single insert: code=%d ids=%v", code, one.IDs)
	}

	// Query finds the canon entity first.
	var q struct {
		Epoch      uint64 `json:"epoch"`
		Entities   int    `json:"entities"`
		Candidates []struct {
			ID    int64   `json:"id"`
			Score float64 `json:"score"`
		} `json:"candidates"`
	}
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{
		"attrs": map[string]string{"name": "canon power shot a540"}, "k": 2,
	}, &q); code != http.StatusOK {
		t.Fatalf("query code=%d", code)
	}
	if q.Entities != 4 || len(q.Candidates) == 0 || q.Candidates[0].ID != ins.IDs[0] {
		t.Fatalf("query result: %+v", q)
	}

	// Get echoes stored attributes.
	var got struct {
		ID    int64 `json:"id"`
		Attrs []struct{ Name, Value string }
	}
	if code := doJSON(t, "GET", fmt.Sprintf("%s/entities/%d", ts.URL, ins.IDs[0]), nil, &got); code != http.StatusOK {
		t.Fatalf("get code=%d", code)
	}
	if len(got.Attrs) != 2 || got.Attrs[0].Name != "name" {
		t.Fatalf("get attrs: %+v", got)
	}

	// Delete, then the entity is gone from queries and GETs.
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/entities/%d", ts.URL, ins.IDs[0]), nil, nil); code != http.StatusOK {
		t.Fatalf("delete code=%d", code)
	}
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/entities/%d", ts.URL, ins.IDs[0]), nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete code=%d", code)
	}
	if code := doJSON(t, "GET", fmt.Sprintf("%s/entities/%d", ts.URL, ins.IDs[0]), nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete code=%d", code)
	}
	q.Candidates = nil
	doJSON(t, "POST", ts.URL+"/query", map[string]any{"text": "canon powershot a540"}, &q)
	for _, c := range q.Candidates {
		if c.ID == ins.IDs[0] {
			t.Fatalf("deleted entity still served: %+v", q)
		}
	}

	// Bad requests are 4xx, not 5xx.
	if code := doJSON(t, "POST", ts.URL+"/query", map[string]any{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty query code=%d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/entities/notanumber", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad id code=%d", code)
	}

	// Healthz and stats.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	var stats struct {
		Resolver  online.Stats `json:"resolver"`
		Endpoints map[string]struct {
			Count  int64 `json:"count"`
			Errors int64 `json:"errors"`
		} `json:"endpoints"`
		UptimeS float64 `json:"uptime_s"`
	}
	if code := doJSON(t, "GET", ts.URL+"/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats code=%d", code)
	}
	if stats.Resolver.Entities != 3 || stats.Resolver.Inserts != 4 || stats.Resolver.Deletes != 1 {
		t.Fatalf("resolver stats: %+v", stats.Resolver)
	}
	if stats.Endpoints["query"].Count < 2 || stats.Endpoints["insert"].Count != 2 {
		t.Fatalf("endpoint counters: %+v", stats.Endpoints)
	}
	if stats.Endpoints["delete"].Errors != 1 {
		t.Fatalf("delete error counter: %+v", stats.Endpoints)
	}
}

// TestServerSnapshotStream round-trips the resolver through the
// GET /snapshot endpoint and checks the loaded replica answers queries
// identically.
func TestServerSnapshotStream(t *testing.T) {
	ts, res := newTestServer(t)
	for i := 0; i < 20; i++ {
		res.Insert([]entity.Attribute{{Name: "name", Value: fmt.Sprintf("entity number %d canon", i)}})
	}
	res.Delete(4)

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	replica, err := online.Load(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	q := []entity.Attribute{{Name: "name", Value: "canon entity number 7"}}
	a := res.Query(q, online.QueryOptions{K: 5})
	b := replica.Query(q, online.QueryOptions{K: 5})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("replica answers differ: %s vs %s", ja, jb)
	}
}

func writeTaskCSVs(t *testing.T) (e1, e2, truth string) {
	t.Helper()
	dir := t.TempDir()
	task := datagen.Generate(datagen.QuickSpec(20, 40, 12, 5))
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	e1 = write("e1.csv", func(f *os.File) error { return entity.WriteCSV(f, task.E1) })
	e2 = write("e2.csv", func(f *os.File) error { return entity.WriteCSV(f, task.E2) })
	truth = write("truth.csv", func(f *os.File) error {
		for _, p := range task.Truth.Pairs() {
			if _, err := fmt.Fprintf(f, "%d,%d\n", p.Left, p.Right); err != nil {
				return err
			}
		}
		return nil
	})
	return e1, e2, truth
}

// TestBuildResolverPaths covers the startup paths: bulk CSV load, tuned
// startup, and snapshot resume.
func TestBuildResolverPaths(t *testing.T) {
	e1, e2, truth := writeTaskCSVs(t)

	res, err := buildResolver("", e1, "knnj", "agnostic", "", "C3G", true, 3, 0.4, "", "", 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 20 {
		t.Fatalf("bulk load: %d entities", res.Len())
	}

	tuned, err := buildResolver("", e1, "knnj", "agnostic", "", "C3G", true, 3, 0.4, e2, truth, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Len() != 20 {
		t.Fatalf("tuned load: %d entities", tuned.Len())
	}
	if !strings.Contains(tuned.Config().Describe(), "method=knnj") {
		t.Fatalf("tuned config: %s", tuned.Config().Describe())
	}

	snapPath := filepath.Join(t.TempDir(), "resolver.snap")
	if err := saveSnapshot(res, snapPath); err != nil {
		t.Fatal(err)
	}
	resumed, err := buildResolver(snapPath, "", "", "", "", "", false, 0, 0, "", "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Len() != res.Len() {
		t.Fatalf("resumed %d entities, want %d", resumed.Len(), res.Len())
	}

	if _, err := buildResolver("", e1, "pbw", "agnostic", "", "C3G", true, 3, 0.4, "", "", 0.9, 1); err == nil {
		t.Fatal("unservable method must error")
	}
	if _, err := buildResolver("", e1, "knnj", "agnostic", "", "C3G", true, 3, 0.4, e2, "", 0.9, 1); err == nil {
		t.Fatal("-tune without -truth must error")
	}
}

// TestTunedFlatStartup exercises the dense tuning path end to end.
func TestTunedFlatStartup(t *testing.T) {
	if testing.Short() {
		t.Skip("dense tuning is slow")
	}
	e1, e2, truth := writeTaskCSVs(t)
	res, err := buildResolver("", e1, "flat", "agnostic", "", "C3G", true, 3, 0.4, e2, truth, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config().Method != online.FlatKNN {
		t.Fatalf("config: %s", res.Config().Describe())
	}
	if res.Config().Metric != knn.L2Squared {
		t.Fatalf("metric: %v", res.Config().Metric)
	}
}
