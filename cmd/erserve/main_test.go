package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/online"
	"erfilter/internal/serve"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func testServingConfig() online.Config {
	c3g, _ := text.ParseModel("C3G")
	return online.Config{
		Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 3, Clean: true,
	}
}

func writeTaskCSVs(t *testing.T) (e1, e2, truth string) {
	t.Helper()
	dir := t.TempDir()
	task := datagen.Generate(datagen.QuickSpec(20, 40, 12, 5))
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	e1 = write("e1.csv", func(f *os.File) error { return entity.WriteCSV(f, task.E1) })
	e2 = write("e2.csv", func(f *os.File) error { return entity.WriteCSV(f, task.E2) })
	truth = write("truth.csv", func(f *os.File) error {
		for _, p := range task.Truth.Pairs() {
			if _, err := fmt.Fprintf(f, "%d,%d\n", p.Left, p.Right); err != nil {
				return err
			}
		}
		return nil
	})
	return e1, e2, truth
}

// baseOptions are the flag defaults the CLI would apply, for tests that
// drive buildState directly.
func baseOptions() options {
	return options{
		method: "knnj", schema: "agnostic", model: "C3G", knnIndex: "flat",
		clean: true, k: 3, threshold: 0.4, target: 0.9, workers: 1, shards: 1,
		storage: "memory", memtableCap: 32768, mergeFanin: 8,
		maxBody: serve.DefaultMaxBody, maxBatch: serve.DefaultMaxBatch, maxLine: serve.DefaultMaxLine,
	}
}

// TestValidateOptions audits the flag validation: every rejected value
// names its flag, and the combinations that cannot work together are
// refused before any file is touched.
func TestValidateOptions(t *testing.T) {
	cases := []struct {
		name string
		mut  func(o *options)
		set  []string
		want string // substring of the error; "" means valid
	}{
		{"defaults", func(o *options) {}, nil, ""},
		{"negative workers", func(o *options) { o.workers = -1 }, nil, "-workers"},
		{"zero shards", func(o *options) { o.shards = 0 }, nil, "-shards"},
		{"hnsw-m zero when set", func(o *options) { o.hnswM = 0 }, []string{"hnsw-m"}, "-hnsw-m"},
		{"hnsw-m zero unset is default", func(o *options) { o.hnswM = 0 }, nil, ""},
		{"hnsw-efc negative when set", func(o *options) { o.hnswEfC = -4 }, []string{"hnsw-efc"}, "-hnsw-efc"},
		{"hnsw-ef zero when set", func(o *options) { o.hnswEf = 0 }, []string{"hnsw-ef"}, "-hnsw-ef"},
		{"negative checkpoint-every", func(o *options) { o.checkpointEvery = -1 }, nil, "-checkpoint-every"},
		{"zero memtable-cap", func(o *options) { o.memtableCap = 0 }, nil, "-memtable-cap"},
		{"zero max-body", func(o *options) { o.maxBody = 0 }, nil, "-max-body"},
		{"negative max-batch", func(o *options) { o.maxBatch = -1 }, nil, "-max-batch"},
		{"zero max-line", func(o *options) { o.maxLine = 0 }, nil, "-max-line"},
		{"merge-fanin below two", func(o *options) { o.mergeFanin = 1 }, nil, "-merge-fanin"},
		{"unknown storage", func(o *options) { o.storage = "floppy" }, nil, "-storage"},
		{"disk with hnsw index", func(o *options) {
			o.storage, o.method, o.knnIndex = "disk", "flat", "hnsw"
			o.segmentDir = "seg"
		}, nil, "exact"},
		{"volatile disk without segment-dir", func(o *options) { o.storage = "disk" }, nil, "-segment-dir"},
		{"segment-dir with wal", func(o *options) {
			o.storage, o.segmentDir, o.walDir = "disk", "seg", "store"
		}, nil, "conflicts"},
		{"segment-dir without disk", func(o *options) { o.segmentDir = "seg" }, nil, "requires -storage disk"},
		{"durable disk", func(o *options) { o.storage, o.walDir = "disk", "store" }, nil, ""},
		{"volatile disk", func(o *options) { o.storage, o.segmentDir = "disk", "seg" }, nil, ""},
		{"dirty without match", func(o *options) { o.dirty = true }, nil, "-dirty requires -match"},
		{"assign without match", func(o *options) { o.matchAssign = "bipartite" }, []string{"assign"}, "requires -match"},
		{"match-scorer without match", func(o *options) { o.matchScorer = "jaro" }, []string{"match-scorer"}, "requires -match"},
		{"match-t without match", func(o *options) { o.matchT = 0.9 }, []string{"match-t"}, "requires -match"},
		{"unknown assign", func(o *options) { o.matchStage, o.matchAssign = true, "munkres" }, nil, "-assign"},
		{"unknown match scorer", func(o *options) { o.matchStage, o.matchScorer = true, "tfidf" }, nil, "-match-scorer"},
		{"match-t out of range", func(o *options) { o.matchStage, o.matchT = true, 1.5 }, nil, "-match-t"},
		{"match with dirty", func(o *options) { o.matchStage, o.dirty = true, true }, nil, ""},
		{"match bipartite", func(o *options) {
			o.matchStage, o.matchAssign, o.matchScorer, o.matchT = true, "bipartite", "levenshtein", 0.9
		}, nil, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions()
			tc.mut(&o)
			set := map[string]bool{}
			for _, name := range tc.set {
				set[name] = true
			}
			err := validateOptions(o, set)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestReplFlagValidation audits the replication flag combinations: a
// replicated node needs a single-sharded memory-storage durable store,
// follower flags exclude leader flags, and -proxy excludes the whole
// resolver surface.
func TestReplFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(o *options)
		want string // substring of the error; "" means valid
	}{
		{"follower without wal", func(o *options) { o.replicaOf = "http://leader" }, "set -wal"},
		{"replication with shards", func(o *options) {
			o.walDir, o.lease, o.shards = "store", "shared/leader.lease", 4
		}, "-shards 1"},
		{"replication with disk storage", func(o *options) {
			o.walDir, o.replicaOf, o.storage = "store", "http://leader", "disk"
		}, "memory"},
		{"follower with bulk", func(o *options) {
			o.walDir, o.follow, o.bulk = "store", true, "seed.csv"
		}, "drop -bulk"},
		{"follower with repl-ack", func(o *options) {
			o.walDir, o.replicaOf, o.replAck = "store", "http://leader", 1
		}, "leader flag"},
		{"proxy with resolver flags", func(o *options) {
			o.proxy, o.walDir = "http://a,http://b", "store"
		}, "router"},
		{"proxy with match", func(o *options) {
			o.proxy, o.matchStage = "http://a,http://b", true
		}, "router"},
		{"dirty follower", func(o *options) {
			o.walDir, o.follow, o.matchStage, o.dirty = "store", true, true, true
		}, "drop -dirty"},
		{"matching follower", func(o *options) {
			o.walDir, o.follow, o.matchStage = "store", true, true
		}, ""},
		{"proxy alone", func(o *options) { o.proxy = "http://a,http://b" }, ""},
		{"leader with lease and acks", func(o *options) {
			o.walDir, o.lease, o.replAck = "store", "shared/leader.lease", 1
		}, ""},
		{"follower awaiting re-parent", func(o *options) { o.walDir, o.follow = "store", true }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions()
			tc.mut(&o)
			err := validateOptions(o, map[string]bool{})
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestBuildStatePaths covers the volatile startup paths: bulk CSV load,
// tuned startup, snapshot resume (single and sharded) and flag errors.
func TestBuildStatePaths(t *testing.T) {
	e1, e2, truth := writeTaskCSVs(t)

	o := baseOptions()
	o.bulk = e1
	st, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	if st.res.Len() != 20 || st.store != nil {
		t.Fatalf("bulk load: %d entities, store=%v", st.res.Len(), st.store)
	}

	tunedOpt := baseOptions()
	tunedOpt.bulk, tunedOpt.tuneCSV, tunedOpt.truthCSV = e1, e2, truth
	tuned, err := buildState(tunedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.res.Len() != 20 {
		t.Fatalf("tuned load: %d entities", tuned.res.Len())
	}
	if !strings.Contains(tuned.res.Config().Describe(), "method=knnj") {
		t.Fatalf("tuned config: %s", tuned.res.Config().Describe())
	}

	snapPath := filepath.Join(t.TempDir(), "resolver.snap")
	if err := st.saveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	resumed, err := buildState(options{load: snapPath, shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.res.Len() != st.res.Len() {
		t.Fatalf("resumed %d entities, want %d", resumed.res.Len(), st.res.Len())
	}
	// The same snapshot loads into a sharded resolver and keeps every
	// entity; its own snapshot round-trips back.
	shardedResume, err := buildState(options{load: snapPath, shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if shardedResume.res.Len() != st.res.Len() {
		t.Fatalf("sharded resume: %d entities, want %d", shardedResume.res.Len(), st.res.Len())
	}
	reSnap := filepath.Join(t.TempDir(), "sharded.snap")
	if err := shardedResume.saveFile(reSnap); err != nil {
		t.Fatal(err)
	}

	// Sharded bulk load from flags.
	so := baseOptions()
	so.bulk, so.shards = e1, 3
	sst, err := buildState(so)
	if err != nil {
		t.Fatal(err)
	}
	if sst.res.Len() != 20 {
		t.Fatalf("sharded bulk load: %d entities", sst.res.Len())
	}

	bad := baseOptions()
	bad.bulk, bad.method = e1, "pbw"
	if _, err := buildState(bad); err == nil {
		t.Fatal("unservable method must error")
	}
	noTruth := baseOptions()
	noTruth.bulk, noTruth.tuneCSV = e1, e2
	if _, err := buildState(noTruth); err == nil {
		t.Fatal("-tune without -truth must error")
	}
}

// TestBuildStateHNSW covers the -knn-index flag: an hnsw build serves
// approximate dense queries, its snapshot resumes with the graph, the
// knobs reach the config, and the flag combinations that cannot work
// (hnsw under a sparse method, an unknown index name) error at startup.
func TestBuildStateHNSW(t *testing.T) {
	e1, _, _ := writeTaskCSVs(t)

	o := baseOptions()
	o.bulk, o.method, o.knnIndex = e1, "flat", "hnsw"
	o.hnswM, o.hnswEf, o.hnswSeed = 8, 48, 42
	st, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	if st.res.Len() != 20 {
		t.Fatalf("hnsw bulk load: %d entities", st.res.Len())
	}
	desc := st.res.Config().Describe()
	if !strings.Contains(desc, "index=hnsw") || !strings.Contains(desc, "m=8") {
		t.Fatalf("hnsw config not applied: %s", desc)
	}
	probe := []entity.Attribute{{Name: "text", Value: "probe"}}
	approx, _ := st.res.Snapshot().QueryTraced(probe, online.QueryOptions{K: 3})
	exact, _ := st.res.Snapshot().QueryTraced(probe, online.QueryOptions{K: 3, Exact: true})
	if len(approx) == 0 || len(exact) == 0 {
		t.Fatalf("hnsw serving returned no candidates (approx %d, exact %d)", len(approx), len(exact))
	}

	// The shutdown snapshot carries the graph and resumes as hnsw.
	snapPath := filepath.Join(t.TempDir(), "hnsw.snap")
	if err := st.saveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	resumed, err := buildState(options{load: snapPath, shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.res.Config().Describe(); !strings.Contains(got, "index=hnsw") {
		t.Fatalf("resumed config lost the index: %s", got)
	}
	if resumed.res.Len() != st.res.Len() {
		t.Fatalf("resumed %d entities, want %d", resumed.res.Len(), st.res.Len())
	}

	sparseHNSW := baseOptions()
	sparseHNSW.bulk, sparseHNSW.knnIndex = e1, "hnsw"
	if _, err := buildState(sparseHNSW); err == nil {
		t.Fatal("-knn-index hnsw with a sparse method must error")
	}
	unknown := baseOptions()
	unknown.bulk, unknown.method, unknown.knnIndex = e1, "flat", "annoy"
	if _, err := buildState(unknown); err == nil {
		t.Fatal("unknown -knn-index must error")
	}
}

// TestBuildStateDurable covers the -wal startup paths: bulk seeding an
// empty store, recovery taking precedence over the seed on reopen, and
// the -wal/-load conflict.
func TestBuildStateDurable(t *testing.T) {
	e1, _, _ := writeTaskCSVs(t)
	o := baseOptions()
	o.bulk = e1
	o.walDir = filepath.Join(t.TempDir(), "store")
	o.checkpointEvery = 64

	st, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	if st.store == nil || st.res.Len() != 20 {
		t.Fatalf("durable bulk seed: store=%v len=%d", st.store, st.res.Len())
	}
	if _, err := st.store.InsertBatch([][]entity.Attribute{{{Name: "name", Value: "extra"}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.closeStore(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the store recovers 21 entities; the bulk seed must NOT
	// re-run on a non-empty store.
	st2, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.closeStore()
	if st2.res.Len() != 21 {
		t.Fatalf("recovered %d entities, want 21", st2.res.Len())
	}

	conflicted := o
	conflicted.load = "something.snap"
	if _, err := buildState(conflicted); err == nil {
		t.Fatal("-wal with -load must error")
	}
}

// TestBuildStateShardedDurable covers the sharded -wal paths: seeding,
// recovery across all shards, and the pinned-shard-count refusal.
func TestBuildStateShardedDurable(t *testing.T) {
	e1, _, _ := writeTaskCSVs(t)
	o := baseOptions()
	o.bulk = e1
	o.shards = 3
	o.walDir = filepath.Join(t.TempDir(), "store")
	o.checkpointEvery = 64

	st, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	if st.store == nil || st.res.Len() != 20 {
		t.Fatalf("sharded durable seed: store=%v len=%d", st.store, st.res.Len())
	}
	if _, err := st.store.InsertBatch([][]entity.Attribute{
		{{Name: "name", Value: "extra one"}},
		{{Name: "name", Value: "extra two"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.closeStore(); err != nil {
		t.Fatal(err)
	}

	st2, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	if st2.res.Len() != 22 {
		t.Fatalf("sharded recovery: %d entities, want 22", st2.res.Len())
	}
	if err := st2.closeStore(); err != nil {
		t.Fatal(err)
	}

	// Reopening with a different shard count is refused, not silently
	// re-partitioned.
	wrong := o
	wrong.shards = 5
	if _, err := buildState(wrong); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("shard-count mismatch must error, got %v", err)
	}
}

// TestBuildStateDiskTier covers the -storage disk startup paths:
// volatile bulk load over a segment tier, snapshot load into a fresh
// tier, sharded volatile disk, the unsupported sharded-load combination
// and the durable disk store.
func TestBuildStateDiskTier(t *testing.T) {
	e1, _, _ := writeTaskCSVs(t)

	o := baseOptions()
	o.bulk = e1
	o.storage = "disk"
	o.segmentDir = filepath.Join(t.TempDir(), "seg")
	o.memtableCap = 8
	o.mergeFanin = 2
	st, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	if st.res.Len() != 20 || st.store != nil || st.closeStore == nil {
		t.Fatalf("disk bulk load: len=%d store=%v close=%v", st.res.Len(), st.store, st.closeStore != nil)
	}
	snapPath := filepath.Join(t.TempDir(), "disk.snap")
	if err := st.saveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := st.closeStore(); err != nil {
		t.Fatal(err)
	}

	// The snapshot loads back into a fresh tier directory.
	lo := options{
		load: snapPath, shards: 1, storage: "disk",
		segmentDir: filepath.Join(t.TempDir(), "seg2"), memtableCap: 8, mergeFanin: 2,
	}
	lst, err := buildState(lo)
	if err != nil {
		t.Fatal(err)
	}
	if lst.res.Len() != 20 {
		t.Fatalf("disk load: %d entities, want 20", lst.res.Len())
	}
	if err := lst.closeStore(); err != nil {
		t.Fatal(err)
	}

	badLoad := lo
	badLoad.shards = 2
	badLoad.segmentDir = filepath.Join(t.TempDir(), "seg3")
	if _, err := buildState(badLoad); err == nil {
		t.Fatal("-load with -storage disk and -shards must error")
	}

	so := o
	so.shards = 3
	so.segmentDir = filepath.Join(t.TempDir(), "sharded-seg")
	sst, err := buildState(so)
	if err != nil {
		t.Fatal(err)
	}
	if sst.res.Len() != 20 {
		t.Fatalf("sharded disk bulk load: %d entities", sst.res.Len())
	}
	if err := sst.closeStore(); err != nil {
		t.Fatal(err)
	}

	// Durable disk: the WAL directory owns the tier; reopen recovers.
	do := baseOptions()
	do.bulk = e1
	do.storage = "disk"
	do.memtableCap = 8
	do.mergeFanin = 2
	do.walDir = filepath.Join(t.TempDir(), "store")
	do.checkpointEvery = 64
	dst, err := buildState(do)
	if err != nil {
		t.Fatal(err)
	}
	if dst.store == nil || dst.res.Len() != 20 {
		t.Fatalf("durable disk seed: store=%v len=%d", dst.store, dst.res.Len())
	}
	if _, err := dst.store.InsertBatch([][]entity.Attribute{{{Name: "name", Value: "extra"}}}); err != nil {
		t.Fatal(err)
	}
	if err := dst.closeStore(); err != nil {
		t.Fatal(err)
	}
	dst2, err := buildState(do)
	if err != nil {
		t.Fatal(err)
	}
	defer dst2.closeStore()
	if dst2.res.Len() != 21 {
		t.Fatalf("durable disk recovery: %d entities, want 21", dst2.res.Len())
	}
}

// TestTunedFlatStartup exercises the dense tuning path end to end.
func TestTunedFlatStartup(t *testing.T) {
	if testing.Short() {
		t.Skip("dense tuning is slow")
	}
	e1, e2, truth := writeTaskCSVs(t)
	o := baseOptions()
	o.bulk, o.tuneCSV, o.truthCSV, o.method = e1, e2, truth, "flat"
	st, err := buildState(o)
	if err != nil {
		t.Fatal(err)
	}
	if st.res.Config().Method != online.FlatKNN {
		t.Fatalf("config: %s", st.res.Config().Describe())
	}
	if st.res.Config().Metric != knn.L2Squared {
		t.Fatalf("metric: %v", st.res.Config().Metric)
	}
}

// TestGracefulShutdownUnderWrites runs the real daemon on a real file
// system, SIGTERMs it in the middle of a write burst, and proves the
// contract: every request is acknowledged or rejected, and every
// acknowledged write is present after restart. The sharded subtest runs
// the same protocol against a multi-WAL store.
func TestGracefulShutdownUnderWrites(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testGracefulShutdown(t, shards)
		})
	}
}

func testGracefulShutdown(t *testing.T, shards int) {
	dir := t.TempDir()
	o := options{
		addr: "127.0.0.1:0", method: "knnj", schema: "agnostic", model: "C3G",
		clean: true, k: 3, threshold: 0.4, shards: shards,
		walDir: filepath.Join(dir, "store"), checkpointEvery: 64,
		writeQueue: 8, requestTimeout: 10 * time.Second,
	}
	addrc := make(chan string, 1)
	o.ready = func(a string) { addrc <- a }
	done := make(chan error, 1)
	go func() { done <- run(o) }()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	}

	// Burst writers: each loops until the daemon stops accepting,
	// recording which texts were acknowledged with which ids.
	var mu sync.Mutex
	acked := map[int64]string{}
	var wg sync.WaitGroup
	const writers = 6
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				txt := fmt.Sprintf("writer %d entity %d canon camera", g, i)
				body, _ := json.Marshal(map[string]any{"text": txt})
				resp, err := http.Post(base+"/v1/entities", "application/json", bytes.NewReader(body))
				if err != nil {
					return // connection refused/reset: daemon is gone
				}
				var out struct {
					IDs []int64 `json:"ids"`
				}
				code := resp.StatusCode
				decodeErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch {
				case code == http.StatusOK:
					if decodeErr != nil || len(out.IDs) != 1 {
						t.Errorf("acked insert with bad body: %v %v", decodeErr, out.IDs)
						return
					}
					mu.Lock()
					acked[out.IDs[0]] = txt
					mu.Unlock()
				case code == http.StatusServiceUnavailable:
					// Shed or draining: fine, just not acknowledged.
				default:
					t.Errorf("write answered %d", code)
					return
				}
			}
		}(g)
	}

	time.Sleep(150 * time.Millisecond) // let the burst get going
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if len(acked) == 0 {
		t.Fatal("no write was acknowledged before the SIGTERM")
	}

	// Restart the store: every acknowledged write must be there.
	var get func(id int64) ([]entity.Attribute, bool)
	if shards > 1 {
		store, err := online.OpenShardedStore(o.walDir, testServingConfig(), shards, online.StoreOptions{})
		if err != nil {
			t.Fatalf("reopen after shutdown: %v", err)
		}
		defer store.Close()
		get = store.Resolver().Get
	} else {
		store, err := online.OpenStore(o.walDir, testServingConfig(), online.StoreOptions{})
		if err != nil {
			t.Fatalf("reopen after shutdown: %v", err)
		}
		defer store.Close()
		get = store.Resolver().Get
	}
	for id, txt := range acked {
		attrs, ok := get(id)
		if !ok {
			t.Fatalf("acked entity %d lost across restart", id)
		}
		if len(attrs) != 1 || attrs[0].Value != txt {
			t.Fatalf("acked entity %d came back as %v, want %q", id, attrs, txt)
		}
	}
	t.Logf("verified %d acked writes across SIGTERM + restart (shards=%d)", len(acked), shards)
}
