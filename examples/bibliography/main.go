// Bibliography: a DBLP-ACM-style scenario on the D4 dataset analog. It
// contrasts the schema-based setting (only the "title" attribute) against
// the schema-agnostic one and reproduces the paper's observation that the
// clean, distinctive titles of bibliographic data give near-perfect
// precision to almost every filtering method.
package main

import (
	"fmt"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/tuning"
)

func main() {
	task := datagen.ByName("D4", 0.1)
	fmt.Printf("D4 analog (DBLP-ACM): |E1|=%d |E2|=%d duplicates=%d best=%s\n\n",
		task.E1.Len(), task.E2.Len(), task.Truth.Size(), task.BestAttribute)

	for _, setting := range []entity.SchemaSetting{entity.SchemaAgnostic, entity.SchemaBased} {
		in := core.NewInput(task, setting)
		stats := entity.TextStatsOf(in.V1, in.V2)
		fmt.Printf("--- %s (vocabulary %d, characters %d)\n", setting, stats.VocabularySize, stats.CharacterLength)

		sbw := tuning.TuneBlocking(in, tuning.BlockingSpaces(false)[0], 0.9)
		knn := tuning.TuneKNNJoin(in, tuning.DefaultSparseSpace(false), 0.9)
		for _, r := range []*tuning.Result{sbw, knn} {
			fmt.Printf("%-10s PC=%.3f PQ=%.3f |C|=%-6d  %s\n",
				r.Method, r.Metrics.PC, r.Metrics.PQ, r.Metrics.Candidates, r.ConfigString())
		}

		// Time the winning blocking workflow end-to-end on a fresh input.
		out, err := sbw.Filter.Run(in.Fresh())
		if err != nil {
			panic(err)
		}
		t := out.Timing
		fmt.Printf("%-10s run-time %v (build %v, purge %v, filter %v, clean %v)\n\n",
			"SBW", t.Total.Round(1000), t.Build.Round(1000), t.Purge.Round(1000),
			t.Filter.Round(1000), t.Clean.Round(1000))
	}
}
