// Products: an Abt-Buy-style record-linkage scenario with hand-written
// entity profiles. It shows how to build datasets from your own data,
// how blocking workflows and NN methods see the same input, and how a
// few lines of grid search (Problem 1) find a configuration with
// PC >= 0.9 and the best precision.
package main

import (
	"fmt"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/tuning"
)

// catalog builds a dataset from (title, manufacturer, price) triples.
func catalog(name string, rows [][3]string) *entity.Dataset {
	profiles := make([]entity.Profile, len(rows))
	for i, r := range rows {
		profiles[i] = entity.Profile{Attrs: []entity.Attribute{
			{Name: "title", Value: r[0]},
			{Name: "manufacturer", Value: r[1]},
			{Name: "price", Value: r[2]},
		}}
	}
	return entity.New(name, profiles)
}

func main() {
	shopA := catalog("shopA", [][3]string{
		{"canon powershot a540 6mp digital camera", "canon", "199.99"},
		{"nikon coolpix p100 10x zoom", "nikon", "299.00"},
		{"sony cyber-shot dsc w55 silver", "sony", "179.95"},
		{"olympus stylus 710 ultra slim", "olympus", "249.00"},
		{"panasonic lumix dmc fz8 leica lens", "panasonic", "329.99"},
		{"kodak easyshare c613 value kit", "kodak", "89.99"},
	})
	shopB := catalog("shopB", [][3]string{
		{"canon power shot a540 camera 6 megapixel", "canon usa", "189.00"},
		{"coolpix p100 nikon digital camera", "nikon inc", "310.00"},
		{"dsc-w55 sony cybershot silver camera", "sony", "175.00"},
		{"garmin nuvi 350 gps navigator", "garmin", "449.00"},
		{"apple ipod nano 4gb", "apple", "149.00"},
		{"stylus 710 olympus digital camera", "olympus", "239.00"},
		{"lumix dmc-fz8 panasonic with leica lens", "panasonic", "315.00"},
	})
	truth := entity.NewGroundTruth([]entity.Pair{
		{Left: 0, Right: 0}, // canon a540
		{Left: 1, Right: 1}, // nikon p100
		{Left: 2, Right: 2}, // sony w55
		{Left: 3, Right: 5}, // olympus 710
		{Left: 4, Right: 6}, // panasonic fz8
	})
	task := &entity.Task{Name: "products", E1: shopA, E2: shopB, Truth: truth}
	task.BestAttribute = entity.BestAttribute(task)
	fmt.Printf("best attribute: %s\n\n", task.BestAttribute)

	in := core.NewInput(task, entity.SchemaAgnostic)

	// Fine-tune the Standard Blocking workflow and the two sparse NN
	// methods under Problem 1 (max PQ subject to PC >= 0.9).
	sbw := tuning.TuneBlocking(in, tuning.BlockingSpaces(false)[0], 0.9)
	eps := tuning.TuneEpsJoin(in, tuning.DefaultSparseSpace(false), 0.9)
	knn := tuning.TuneKNNJoin(in, tuning.DefaultSparseSpace(false), 0.9)

	for _, r := range []*tuning.Result{sbw, eps, knn} {
		status := "PC>=0.9"
		if !r.Satisfied {
			status = "TARGET MISSED"
		}
		fmt.Printf("%-10s %-9s PC=%.2f PQ=%.2f |C|=%d\n  config: %s\n  (%d configurations examined)\n\n",
			r.Method, status, r.Metrics.PC, r.Metrics.PQ, r.Metrics.Candidates,
			r.ConfigString(), r.Evaluated)
	}

	// Show the actual candidates of the best sparse method.
	out, err := knn.Filter.Run(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("kNN-Join candidates:")
	for _, p := range out.Pairs {
		marker := " "
		if truth.Contains(p) {
			marker = "*"
		}
		fmt.Printf(" %s %q <-> %q\n", marker,
			shopA.Profiles[p.Left].Value("title"), shopB.Profiles[p.Right].Value("title"))
	}
	fmt.Println("(* = true match)")
}
