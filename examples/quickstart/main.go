// Quickstart: generate a small Clean-Clean ER task, run two filtering
// methods (a parameter-free blocking workflow and a default kNN-Join) and
// compare their recall (PC), precision (PQ) and run-time.
package main

import (
	"fmt"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
)

func main() {
	// Two overlapping, duplicate-free product catalogs: 200 and 500
	// profiles, 150 of which describe the same products.
	task := datagen.Generate(datagen.QuickSpec(200, 500, 150, 42))
	fmt.Printf("task: |E1|=%d |E2|=%d duplicates=%d cartesian=%.0f\n\n",
		task.E1.Len(), task.E2.Len(), task.Truth.Size(), task.CartesianProduct())

	// All filters run over a schema-agnostic view: every profile is one
	// long textual value, so heterogeneous schemata need no alignment.
	in := core.NewInput(task, entity.SchemaAgnostic)

	filters := []core.Filter{
		core.NewPBW(),      // Standard Blocking + Block Purging + Comparison Propagation
		core.NewDkNN(true), // kNN-Join: cleaned values, C5GM five-grams, cosine, K=5
	}
	for _, f := range filters {
		out, err := f.Run(in)
		if err != nil {
			panic(err)
		}
		m := core.Evaluate(out.Pairs, task.Truth)
		fmt.Printf("%-60s\n  PC=%.3f PQ=%.3f candidates=%d (%.1fx reduction) rt=%v\n\n",
			f.Name(), m.PC, m.PQ, m.Candidates,
			task.CartesianProduct()/float64(m.Candidates), out.Timing.Total.Round(1000))
	}
}
