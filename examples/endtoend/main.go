// End-to-end: the complete Filtering-Verification pipeline of the paper's
// Section I. A tuned filter first shrinks the Cartesian product to a small
// candidate set; a rule-based matcher then verifies every candidate; the
// matched pairs are consolidated into entity clusters. The run-time of the
// whole pipeline is dominated by how good the filter is.
package main

import (
	"fmt"
	"time"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/matching"
	"erfilter/internal/tuning"
)

func main() {
	task := datagen.ByName("D2", 0.3)
	fmt.Printf("task: |E1|=%d |E2|=%d duplicates=%d cartesian=%.0f\n\n",
		task.E1.Len(), task.E2.Len(), task.Truth.Size(), task.CartesianProduct())

	in := core.NewInput(task, entity.SchemaAgnostic)

	// 1. Filtering: tune kNN-Join under Problem 1.
	start := time.Now()
	tuned := tuning.TuneKNNJoin(in, tuning.DefaultSparseSpace(false), 0.9)
	out, err := tuned.Filter.Run(in)
	if err != nil {
		panic(err)
	}
	filterTime := time.Since(start)
	fm := core.Evaluate(out.Pairs, task.Truth)
	fmt.Printf("1. filtering (kNN-Join, %s):\n   %d candidates (%.0fx reduction), PC=%.3f PQ=%.3f\n\n",
		tuned.ConfigString(), fm.Candidates, task.CartesianProduct()/float64(fm.Candidates), fm.PC, fm.PQ)

	// 2. Verification: score every candidate with TF-IDF cosine and keep
	// pairs above the threshold.
	start = time.Now()
	matcher := matching.NewMatcher(matching.SimTFIDFCosine, 0.5, in.V1, in.V2)
	matches := matcher.Verify(out.Pairs, in.V1, in.V2)
	verifyTime := time.Since(start)
	q := matching.EvaluateMatches(matches, task.Truth)
	fmt.Printf("2. verification (TF-IDF cosine >= 0.5):\n   %d matches, %s\n\n", len(matches), q)

	// 3. Clustering: consolidate matches into entities.
	clusters := matching.Cluster(matches)
	fmt.Printf("3. clustering: %d entity clusters\n\n", len(clusters))

	fmt.Printf("pipeline run-time: filtering %v + verification %v\n",
		filterTime.Round(time.Millisecond), verifyTime.Round(time.Millisecond))
	fmt.Printf("verification examined %.4f%% of the Cartesian product\n",
		100*float64(fm.Candidates)/task.CartesianProduct())
}
