// Dedupe: Dirty ER on a single collection with duplicates in itself, the
// second ER task of the paper's preliminaries (the paper evaluates
// Clean-Clean only; this library extends the filters to the dirty
// setting). A kNN-Join self-join and a native dirty blocking workflow
// both shrink the O(n²) pair space to a small candidate set.
package main

import (
	"fmt"

	"erfilter/internal/core"
	"erfilter/internal/dedup"
	"erfilter/internal/entity"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func main() {
	// 400 products, 150 of which appear twice with independent noise.
	task := dedup.GenerateDirty(400, 150, 99)
	n := task.Data.Len()
	fmt.Printf("dirty collection: %d profiles, %d duplicate pairs, %d possible pairs\n\n",
		n, task.Truth.Size(), n*(n-1)/2)

	// Native dirty blocking workflow (Standard Blocking + Purging + CP).
	out := dedup.RunPBW(task, entity.SchemaAgnostic)
	m := dedup.Evaluate(out.Pairs, task.Truth)
	fmt.Printf("blocking workflow: PC=%.3f PQ=%.3f candidates=%d\n", m.PC, m.PQ, m.Candidates)

	// Any Clean-Clean NN filter works through the self-join adapter.
	knn := &core.KNNJoinFilter{Clean: true, Model: text.Model{N: 3}, Measure: sparse.Cosine, K: 2}
	out2, err := dedup.Run(knn, task, entity.SchemaAgnostic)
	if err != nil {
		panic(err)
	}
	m2 := dedup.Evaluate(out2.Pairs, task.Truth)
	fmt.Printf("kNN-Join self-join: PC=%.3f PQ=%.3f candidates=%d\n", m2.PC, m2.PQ, m2.Candidates)
}
