// Movies: the low-coverage scenario of the paper's D5–D7 datasets. Movie
// names are frequently misplaced into the wrong attribute (extraction
// errors), so the schema-based setting cannot reach the target recall no
// matter the filter, while the schema-agnostic setting — which sees the
// whole profile as one text — is unaffected. This is the paper's core
// argument for schema-agnostic filtering.
package main

import (
	"fmt"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/tuning"
)

func main() {
	task := datagen.ByName("D6", 0.08)
	stats := entity.StatsFor(task, task.BestAttribute)
	fmt.Printf("D6 analog (IMDb-TVDB): |E1|=%d |E2|=%d duplicates=%d\n", task.E1.Len(), task.E2.Len(), task.Truth.Size())
	fmt.Printf("best attribute %q: coverage %.2f, groundtruth coverage %.2f\n\n",
		task.BestAttribute, stats.Coverage, stats.GroundtruthCoverage)

	space := tuning.DefaultSparseSpace(false)
	for _, setting := range []entity.SchemaSetting{entity.SchemaBased, entity.SchemaAgnostic} {
		in := core.NewInput(task, setting)
		r := tuning.TuneKNNJoin(in, space, 0.9)
		verdict := "reaches the 0.9 recall target"
		if !r.Satisfied {
			verdict = "CANNOT reach the 0.9 recall target (misplaced values are invisible)"
		}
		fmt.Printf("%-16s kNN-Join best PC=%.3f PQ=%.3f  -> %s\n",
			setting.String()+":", r.Metrics.PC, r.Metrics.PQ, verdict)
	}

	fmt.Println("\nWhy: a misplaced name lands in a 'notes' attribute. Schema-based")
	fmt.Println("views read only the best attribute and lose it; schema-agnostic views")
	fmt.Println("concatenate every value and still see it.")
}
