GO ?= go

# Packages whose tests exercise the worker pool and the shared caches;
# these run a second time under the race detector.
RACE_PKGS = ./internal/parallel ./internal/tuning ./internal/bench ./internal/core

.PHONY: check vet build test race bench-tune

## check: the full verification gate (vet, build, tests, race tests)
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrency-bearing packages
race:
	$(GO) test -race $(RACE_PKGS)

## bench-tune: sequential vs parallel grid-search benchmark pair
bench-tune:
	$(GO) test -run '^$$' -bench 'BenchmarkTune(Sequential|Parallel)$$' -benchtime 10x -count 3 .
