GO ?= go

# Packages whose tests exercise the worker pool, the shared caches or the
# online serving path; these run a second time under the race detector.
RACE_PKGS = ./internal/parallel ./internal/tuning ./internal/bench ./internal/core \
	./internal/sparse ./internal/knn ./internal/online ./internal/faultfs \
	./internal/wal ./internal/metrics ./internal/segment ./internal/serve \
	./internal/retry ./internal/repl ./internal/query ./internal/match ./cmd/erserve

# Fault-injection suites: crash recovery, torn writes, fsync failures,
# degraded mode and overload shedding across the durability stack.
CHAOS_PKGS = ./internal/faultfs ./internal/wal ./internal/knn ./internal/segment ./internal/online ./internal/serve ./internal/repl ./internal/match ./cmd/erserve
CHAOS_RUN = 'Crash|Torn|Corrupt|Truncat|BitFlip|Degraded|Overload|Sticky|Graceful|Panic|SaveFileAtomic|SyncFault'

.PHONY: check vet build test race chaos shard ann lsm repl bulk match scrape bench-tune bench-serve bench-wal bench-obs bench-shard bench-ann bench-lsm bench-repl bench-bulk bench-match

## check: the full verification gate (vet, build, tests, race tests, chaos, shard, ann, lsm, repl, bulk, match)
check: vet build test race chaos shard ann lsm repl bulk match

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrency-bearing packages
race:
	$(GO) test -race $(RACE_PKGS)

## chaos: fault-injection suite under the race detector — crashes, torn
## writes, fsync failures, degraded read-only mode, overload shedding
chaos:
	$(GO) test -race -count 1 -run $(CHAOS_RUN) $(CHAOS_PKGS)

## bench-tune: sequential vs parallel grid-search benchmark pair
bench-tune:
	$(GO) test -run '^$$' -bench 'BenchmarkTune(Sequential|Parallel)$$' -benchtime 10x -count 3 .

## bench-serve: online resolver under mixed read/write load
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe(Query|Insert)' -benchtime 200x -count 3 ./internal/online

## bench-wal: durable (WAL + fsync) vs volatile insert path
bench-wal:
	$(GO) test -run '^$$' -bench 'Benchmark(Serve|Store)Insert' -benchtime 2s -cpu 1,4 ./internal/online

## shard: the sharded-equivalence gate — property tests proving the
## sharded resolver is byte-identical to a single resolver (including
## after deletes, compaction and crash recovery), under the race detector
shard:
	$(GO) test -race -count 1 -run 'Sharded' ./internal/online ./internal/serve ./cmd/erserve

## ann: the approximate-tier gate — recall-floor property tests of the
## incremental HNSW against the flat oracle (inserts, deletes past
## compaction, save/load round-trips, shard counts 1..8) plus the codec
## corruption suite, under the race detector
ann:
	$(GO) test -race -count 1 -run 'HNSW|ANN' ./internal/knn ./internal/online ./internal/serve ./cmd/erserve

## lsm: the on-disk segment-tier gate — property tests proving the
## disk-backed resolver is byte-identical to the in-memory oracle
## (deletes past merge GC, mid-stream flushes, save/load, shard counts
## 1..8, crash recovery over torn-tail WALs), plus the segment and
## manifest corruption suites, under the race detector
lsm:
	$(GO) test -race -count 1 -run 'Segment|Manifest|Tier|DiskStore|Storage|ValidateOptions' ./internal/segment ./internal/online ./cmd/erserve

## repl: the replication gate — WAL-shipping property tests (follower
## convergence to byte-identical answers, epoch read-your-writes,
## lease fencing) including the kill-the-leader failover test, under
## the race detector
repl:
	$(GO) test -race -count 1 -run 'Repl|Follower|Failover|Lease|SemiSync' ./internal/wal ./internal/online ./internal/repl ./internal/serve ./cmd/erserve

## bulk: the streaming-ingestion gate — feeds a 100k-row NDJSON stream
## through the live server and fails unless the heap envelope stays
## bounded and a deterministic sample of the answers is byte-identical
## to /v1/query/batch
bulk:
	$(GO) test -count 1 -run 'TestBulkStreamGate' ./internal/serve

## match: the match-stage gate — greedy/bipartite assignment properties,
## the batch-vs-online match equivalence test, dirty-ER incremental ==
## batch clustering (including crash recovery over torn-tail WALs) and
## the serve-layer match/cluster endpoints, under the race detector
match:
	$(GO) test -race -count 1 -run 'Match|Dirty|Assign|Bipartite|Greedy|Cluster|Hungarian' ./internal/match ./internal/serve ./cmd/erserve

## bench-match: the end-to-end match-stage experiment — P/R/F1 of the
## decided matches against generated groundtruth for greedy vs bipartite
## assignment, with the sharded path checked byte-identical to the
## single resolver
bench-match:
	$(GO) run ./cmd/erbench -exp match

## scrape: the /metrics contract gate — boots the real daemon, drives
## traffic, scrapes GET /metrics and fails on unparseable exposition or
## missing series. CI runs this against every change.
scrape:
	$(GO) test -count 1 -run 'TestMetricsScrapeEndToEnd' ./cmd/erserve

## bench-obs: instrumented vs bare serving benchmark pair — prices the
## observability layer (histograms + pool counters) on the query path
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkServeQuery(Bare)?$$/' -benchtime 2000x -count 3 ./internal/online

## bench-shard: sharded vs single-shard insert/query throughput across
## shard counts; the acceptance gate is >= 2x single-shard insert
## throughput at 8 shards
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkSharded(Insert|Query)' -benchtime 1s ./internal/online

## bench-ann: IncFlat vs IncHNSW scaling table (build time, query p50,
## recall@10 against the flat oracle); the acceptance gate is >= 5x
## query p50 at 100k entities with recall@10 >= 0.95
bench-ann:
	$(GO) run ./cmd/erbench -exp ann

## bench-lsm: all-in-memory vs disk-backed resolver over the same
## workload (ingest, query p50, index heap after GC, segment count and
## on-disk bytes); the run fails unless every answer is byte-identical
## and the dataset is >= 4x the memtable cap
bench-lsm:
	$(GO) run ./cmd/erbench -exp lsm

## bench-repl: read throughput through the proxy at 1, 2 and 4 replicas
## plus steady-state replication lag — the scale-out case for
## WAL-shipping read replicas
bench-repl:
	$(GO) run ./cmd/erbench -exp repl

## bench-bulk: NDJSON bulk-resolve stream end to end — rows/s plus peak
## and settled heap deltas while a generated feed flows through POST
## /v1/resolve/stream; fails on any sampled divergence from the batch
## endpoint
bench-bulk:
	$(GO) run ./cmd/erbench -exp bulk
