GO ?= go

# Packages whose tests exercise the worker pool, the shared caches or the
# online serving path; these run a second time under the race detector.
RACE_PKGS = ./internal/parallel ./internal/tuning ./internal/bench ./internal/core \
	./internal/sparse ./internal/knn ./internal/online

.PHONY: check vet build test race bench-tune bench-serve

## check: the full verification gate (vet, build, tests, race tests)
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrency-bearing packages
race:
	$(GO) test -race $(RACE_PKGS)

## bench-tune: sequential vs parallel grid-search benchmark pair
bench-tune:
	$(GO) test -run '^$$' -bench 'BenchmarkTune(Sequential|Parallel)$$' -benchtime 10x -count 3 .

## bench-serve: online resolver under mixed read/write load
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe(Query|Insert)' -benchtime 200x -count 3 ./internal/online
