GO ?= go

# Packages whose tests exercise the worker pool, the shared caches or the
# online serving path; these run a second time under the race detector.
RACE_PKGS = ./internal/parallel ./internal/tuning ./internal/bench ./internal/core \
	./internal/sparse ./internal/knn ./internal/online ./internal/faultfs \
	./internal/wal ./internal/metrics ./cmd/erserve

# Fault-injection suites: crash recovery, torn writes, fsync failures,
# degraded mode and overload shedding across the durability stack.
CHAOS_PKGS = ./internal/faultfs ./internal/wal ./internal/online ./cmd/erserve
CHAOS_RUN = 'Crash|Torn|Corrupt|Truncat|BitFlip|Degraded|Overload|Sticky|Graceful|Panic|SaveFileAtomic|SyncFault'

.PHONY: check vet build test race chaos scrape bench-tune bench-serve bench-wal bench-obs

## check: the full verification gate (vet, build, tests, race tests, chaos)
check: vet build test race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrency-bearing packages
race:
	$(GO) test -race $(RACE_PKGS)

## chaos: fault-injection suite under the race detector — crashes, torn
## writes, fsync failures, degraded read-only mode, overload shedding
chaos:
	$(GO) test -race -count 1 -run $(CHAOS_RUN) $(CHAOS_PKGS)

## bench-tune: sequential vs parallel grid-search benchmark pair
bench-tune:
	$(GO) test -run '^$$' -bench 'BenchmarkTune(Sequential|Parallel)$$' -benchtime 10x -count 3 .

## bench-serve: online resolver under mixed read/write load
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe(Query|Insert)' -benchtime 200x -count 3 ./internal/online

## bench-wal: durable (WAL + fsync) vs volatile insert path
bench-wal:
	$(GO) test -run '^$$' -bench 'Benchmark(Serve|Store)Insert' -benchtime 2s -cpu 1,4 ./internal/online

## scrape: the /metrics contract gate — boots the real daemon, drives
## traffic, scrapes GET /metrics and fails on unparseable exposition or
## missing series. CI runs this against every change.
scrape:
	$(GO) test -count 1 -run 'TestMetricsScrapeEndToEnd' ./cmd/erserve

## bench-obs: instrumented vs bare serving benchmark pair — prices the
## observability layer (histograms + pool counters) on the query path
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkServeQuery(Bare)?$$/' -benchtime 2000x -count 3 ./internal/online
