package erfilter

import (
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole Filtering-Verification pipeline
// through the public facade only.
func TestPublicAPIEndToEnd(t *testing.T) {
	task := GenerateDataset("D2", 0.05)
	if task == nil {
		t.Fatal("GenerateDataset returned nil")
	}
	in := NewInput(task, SchemaAgnostic)

	// Baseline filtering.
	out, err := NewPBW().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(out.Pairs, task.Truth)
	if m.PC < 0.9 {
		t.Fatalf("PBW PC = %.2f", m.PC)
	}

	// Problem-1 tuning.
	r := TuneKNNJoin(in, 0.9)
	if !r.Satisfied {
		t.Fatalf("tuned kNN-Join PC = %.2f", r.Metrics.PC)
	}
	if r.ConfigString() == "" {
		t.Fatal("empty config string")
	}

	// Verification.
	matcher := NewMatcher(SimTFIDFCosine, 0.4, in)
	tunedOut, err := r.Filter.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	matches := matcher.Verify(tunedOut.Pairs, in.V1, in.V2)
	q := EvaluateMatches(matches, task.Truth)
	if q.F1 <= 0 {
		t.Fatalf("verification quality = %+v", q)
	}
}

func TestPublicAPICSV(t *testing.T) {
	d, err := ReadDatasetCSV("shop", strings.NewReader("title\ncanon a540\nnikon p100\n"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDatasetCSV("shop2", strings.NewReader("title\ncanon a540 camera\n"))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ReadGroundTruthCSV(strings.NewReader("0,0\n"), d.Len(), d2.Len())
	if err != nil {
		t.Fatal(err)
	}
	task := &Task{Name: "csv", E1: d, E2: d2, Truth: truth}
	task.BestAttribute = BestAttribute(task)
	if task.BestAttribute != "title" {
		t.Fatalf("best attribute = %q", task.BestAttribute)
	}
	in := NewInput(task, SchemaBased)
	model, err := ParseModel("C3G")
	if err != nil {
		t.Fatal(err)
	}
	out, err := (&KNNJoinFilter{Model: model, Measure: Cosine, K: 1}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if Evaluate(out.Pairs, truth).PC != 1 {
		t.Fatal("match not found through public API")
	}
}

func TestPublicDatasetConstruction(t *testing.T) {
	d := NewDataset("x", []Profile{
		{Attrs: []Attribute{{Name: "name", Value: "alpha"}}},
	})
	if d.Len() != 1 || d.Profiles[0].ID != 0 {
		t.Fatal("NewDataset wiring broken")
	}
	g := NewGroundTruth([]Pair{{Left: 0, Right: 0}})
	if g.Size() != 1 {
		t.Fatal("NewGroundTruth wiring broken")
	}
}
