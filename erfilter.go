// Package erfilter is the public API of the library: a Go implementation
// of the filtering techniques for Entity Resolution benchmarked in
// "Benchmarking Filtering Techniques for Entity Resolution" (ICDE 2023) —
// blocking workflows, sparse and dense nearest-neighbor methods, the
// Problem-1 configuration optimization, and the evaluation measures.
//
// The heavy lifting lives in the internal packages; this package
// re-exports the types and constructors a downstream application needs:
//
//	task := erfilter.GenerateDataset("D4", 0.1)     // or build from CSV
//	in := erfilter.NewInput(task, erfilter.SchemaAgnostic)
//	out, _ := erfilter.NewPBW().Run(in)
//	m := erfilter.Evaluate(out.Pairs, task.Truth)   // PC, PQ, |C|
//
//	// Fine-tune a method under Problem 1 (max PQ s.t. PC >= 0.9):
//	r := erfilter.TuneKNNJoin(in, 0.9)
//	fmt.Println(r.Metrics.PQ, r.ConfigString())
package erfilter

import (
	"io"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/matching"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
	"erfilter/internal/tuning"
)

// Core data model.
type (
	// Profile is an entity profile: a set of textual name-value pairs.
	Profile = entity.Profile
	// Attribute is one name-value pair of a profile.
	Attribute = entity.Attribute
	// Dataset is a duplicate-free collection of profiles.
	Dataset = entity.Dataset
	// Pair is a candidate pair (index into E1, index into E2).
	Pair = entity.Pair
	// GroundTruth is the set of true matching pairs.
	GroundTruth = entity.GroundTruth
	// Task is one Clean-Clean ER filtering task.
	Task = entity.Task
	// SchemaSetting selects schema-agnostic or schema-based views.
	SchemaSetting = entity.SchemaSetting
)

// Schema settings.
const (
	// SchemaAgnostic concatenates all attribute values of a profile.
	SchemaAgnostic = entity.SchemaAgnostic
	// SchemaBased uses only the task's best attribute.
	SchemaBased = entity.SchemaBased
)

// Filtering.
type (
	// Filter is one configured filtering method.
	Filter = core.Filter
	// Input is a task under one schema setting with cached preprocessing.
	Input = core.Input
	// Outcome is a filtering result: candidate pairs plus phase timings.
	Outcome = core.Outcome
	// Metrics holds PC (recall), PQ (precision) and the candidate count.
	Metrics = core.Metrics
	// BlockingWorkflow is the 4-step blocking pipeline of the paper's
	// Figure 1.
	BlockingWorkflow = core.BlockingWorkflow
	// EpsJoinFilter is the ε-Join sparse NN method.
	EpsJoinFilter = core.EpsJoinFilter
	// KNNJoinFilter is the kNN-Join sparse NN method.
	KNNJoinFilter = core.KNNJoinFilter
	// FlatKNNFilter is exact dense kNN search (the FAISS analog).
	FlatKNNFilter = core.FlatKNNFilter
	// DeepBlockerFilter is the autoencoder tuple-embedding method.
	DeepBlockerFilter = core.DeepBlockerFilter
)

// Token representations and similarities of the sparse NN methods.
type (
	// Model is one of the ten representation models of Table IV
	// (T1G, T1GM, C2G ... C5GM).
	Model = text.Model
	// Measure is a set similarity measure (Cosine, Dice, Jaccard).
	Measure = sparse.Measure
)

// Set similarity measures.
const (
	Cosine  = sparse.Cosine
	Dice    = sparse.Dice
	Jaccard = sparse.Jaccard
)

// ParseModel converts a Table IV model name (e.g. "C5GM") to a Model.
func ParseModel(name string) (Model, error) { return text.ParseModel(name) }

// NewDataset creates a dataset from profiles, assigning sequential ids.
func NewDataset(name string, profiles []Profile) *Dataset {
	return entity.New(name, profiles)
}

// NewGroundTruth builds a groundtruth from matching pairs.
func NewGroundTruth(pairs []Pair) *GroundTruth { return entity.NewGroundTruth(pairs) }

// ReadDatasetCSV loads a dataset from CSV (header row = attribute names).
func ReadDatasetCSV(name string, r io.Reader) (*Dataset, error) {
	return entity.ReadCSV(name, r)
}

// ReadGroundTruthCSV loads matching (E1 index, E2 index) pairs from CSV.
func ReadGroundTruthCSV(r io.Reader, n1, n2 int) (*GroundTruth, error) {
	return entity.ReadGroundTruthCSV(r, n1, n2)
}

// BestAttribute selects the most informative attribute of a task
// (coverage × distinctiveness) for the schema-based setting.
func BestAttribute(t *Task) string { return entity.BestAttribute(t) }

// GenerateDataset builds one of the synthetic dataset analogs D1..D10 at
// the given scale (1.0 = the paper's size); it returns nil for unknown
// names.
func GenerateDataset(name string, scale float64) *Task { return datagen.ByName(name, scale) }

// NewInput materializes a task's schema views for filtering.
func NewInput(t *Task, setting SchemaSetting) *Input { return core.NewInput(t, setting) }

// Evaluate computes Pair Completeness and Pairs Quality of a candidate
// set (Section III of the paper).
func Evaluate(pairs []Pair, truth *GroundTruth) Metrics { return core.Evaluate(pairs, truth) }

// Baseline methods (Section VI).
var (
	// NewPBW returns the Parameter-free Blocking Workflow.
	NewPBW = core.NewPBW
	// NewDBW returns the Default Blocking Workflow.
	NewDBW = core.NewDBW
	// NewDkNN returns the Default kNN-Join.
	NewDkNN = core.NewDkNN
	// NewDDB returns the Default DeepBlocker.
	NewDDB = core.NewDDB
)

// TuneResult is the outcome of a Problem-1 grid search.
type TuneResult = tuning.Result

// TuneStandardBlocking fine-tunes the Standard Blocking workflow.
func TuneStandardBlocking(in *Input, target float64) *TuneResult {
	return tuning.TuneBlocking(in, tuning.BlockingSpaces(false)[0], target)
}

// TuneEpsJoin fine-tunes the ε-Join under Problem 1.
func TuneEpsJoin(in *Input, target float64) *TuneResult {
	return tuning.TuneEpsJoin(in, tuning.DefaultSparseSpace(false), target)
}

// TuneKNNJoin fine-tunes the kNN-Join under Problem 1.
func TuneKNNJoin(in *Input, target float64) *TuneResult {
	return tuning.TuneKNNJoin(in, tuning.DefaultSparseSpace(false), target)
}

// Verification (the matching step of the Filtering-Verification
// framework).
type (
	// Matcher verifies candidate pairs with a similarity threshold.
	Matcher = matching.Matcher
	// MatchQuality holds precision/recall/F1 of verified matches.
	MatchQuality = matching.Quality
)

// Matcher similarity functions.
const (
	SimLevenshtein  = matching.SimLevenshtein
	SimJaro         = matching.SimJaro
	SimJaroWinkler  = matching.SimJaroWinkler
	SimTokenJaccard = matching.SimTokenJaccard
	SimTFIDFCosine  = matching.SimTFIDFCosine
)

// NewMatcher builds a verification matcher over the input's views.
func NewMatcher(sim matching.Similarity, threshold float64, in *Input) *Matcher {
	return matching.NewMatcher(sim, threshold, in.V1, in.V2)
}

// EvaluateMatches computes match quality against the groundtruth.
func EvaluateMatches(matches []Pair, truth *GroundTruth) MatchQuality {
	return matching.EvaluateMatches(matches, truth)
}
