// Package erfilter's top-level benchmarks regenerate every table and
// figure of the paper's evaluation section at a small scale, one
// testing.B benchmark per experiment. Run the full-size experiments with
// cmd/erbench instead:
//
//	go run ./cmd/erbench -exp all -scale 0.05
package erfilter

import (
	"io"
	"testing"

	"erfilter/internal/bench"
	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/tuning"
)

// benchOptions keeps every experiment benchmark laptop-fast: one small
// dataset analog, reduced grids, compact embeddings.
func benchOptions(datasets ...string) bench.Options {
	if len(datasets) == 0 {
		datasets = []string{"D2"}
	}
	return bench.Options{
		Scale:       0.012,
		Datasets:    datasets,
		Seed:        1,
		Repetitions: 1,
		EmbedDim:    48,
		AEHidden:    16,
		AEEpochs:    2,
	}
}

// BenchmarkTableVI regenerates the dataset characteristics table.
func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.TableVI(io.Discard, 0.012)
	}
}

// BenchmarkFig3 regenerates the coverage / vocabulary / character-length
// figure.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig3(io.Discard, 0.012)
	}
}

// BenchmarkTableVII regenerates the full PC/PQ/RT table (tuning included)
// on one dataset analog.
func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(benchOptions(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bench.TableVII(io.Discard, rep)
	}
}

// BenchmarkTableVIII regenerates the blocking-workflow configuration
// table: the five Table III grid searches.
func BenchmarkTableVIII(b *testing.B) {
	opts := benchOptions()
	opts.Methods = []string{"SBW", "QBW", "EQBW", "SABW", "ESABW"}
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bench.TableVIII(io.Discard, rep)
	}
}

// BenchmarkTableIX regenerates the sparse-NN configuration table: the
// Table IV grid searches.
func BenchmarkTableIX(b *testing.B) {
	opts := benchOptions()
	opts.Methods = []string{"eps-Join", "kNNJ"}
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bench.TableIX(io.Discard, rep)
	}
}

// BenchmarkTableX regenerates the dense-NN configuration table: the
// Table V grid searches.
func BenchmarkTableX(b *testing.B) {
	opts := benchOptions()
	opts.Methods = []string{"MH-LSH", "CP-LSH", "HP-LSH", "FAISS", "SCANN", "DeepBlocker"}
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bench.TableX(io.Discard, rep)
	}
}

// BenchmarkTableXI regenerates the candidate-set-size table.
func BenchmarkTableXI(b *testing.B) {
	opts := benchOptions()
	opts.Methods = []string{"SBW", "eps-Join", "kNNJ", "FAISS"}
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bench.TableXI(io.Discard, rep)
	}
}

// BenchmarkFig4 regenerates the schema-agnostic rank-distribution
// histograms (index E1, query E2).
func BenchmarkFig4(b *testing.B) {
	task := datagen.ByName("D2", 0.012)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RankFigure(io.Discard, task, entity.SchemaAgnostic, false, 48)
	}
}

// BenchmarkFig5 regenerates the reversed-direction rank distributions.
func BenchmarkFig5(b *testing.B) {
	task := datagen.ByName("D2", 0.012)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RankFigure(io.Discard, task, entity.SchemaAgnostic, true, 48)
	}
}

// BenchmarkFig6 regenerates the schema-based rank distributions (both
// directions).
func BenchmarkFig6(b *testing.B) {
	task := datagen.ByName("D2", 0.012)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RankFigure(io.Discard, task, entity.SchemaBased, false, 48)
		bench.RankFigure(io.Discard, task, entity.SchemaBased, true, 48)
	}
}

// BenchmarkFig7 regenerates the run-time breakdown report.
func BenchmarkFig7(b *testing.B) {
	opts := benchOptions()
	opts.Methods = []string{"SBW", "PBW", "eps-Join", "kNNJ", "FAISS", "DeepBlocker"}
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bench.Fig7(io.Discard, rep)
	}
}

// BenchmarkReduction regenerates the candidate-reduction summary
// (Conclusion 3).
func BenchmarkReduction(b *testing.B) {
	opts := benchOptions()
	opts.Methods = []string{"MH-LSH", "CP-LSH", "HP-LSH", "eps-Join", "kNNJ", "FAISS"}
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bench.Reduction(io.Discard, rep)
	}
}

// --- Sequential vs parallel grid search on a D2 analog slice. The two
// benchmarks run the same kNN-Join tuning grid; the only difference is
// the worker count, so their ratio is the speedup of the parallel
// engine (results are identical by construction — see
// internal/tuning/parallel_test.go). Measured numbers are recorded in
// EXPERIMENTS.md. ---

func tuneBenchInput(b *testing.B) *core.Input {
	b.Helper()
	task := datagen.ByName("D2", 0.012)
	in := core.NewInputDim(task, entity.SchemaAgnostic, 48)
	in.Seed = 1
	// Warm the text caches so both variants measure the grid search, not
	// the one-time preprocessing.
	in.Texts(true)
	in.Texts(false)
	return in
}

func benchTuneKNNJoin(b *testing.B, workers int) {
	in := tuneBenchInput(b)
	space := tuning.DefaultSparseSpace(false)
	space.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := tuning.TuneKNNJoin(in, space, tuning.DefaultTarget); r.Evaluated == 0 {
			b.Fatal("nothing evaluated")
		}
	}
}

func BenchmarkTuneSequential(b *testing.B) { benchTuneKNNJoin(b, 1) }

// BenchmarkTuneParallel pins 4 workers rather than NumCPU so the pool
// code path is exercised even on single-core machines (where NumCPU
// would resolve to the sequential path).
func BenchmarkTuneParallel(b *testing.B) { benchTuneKNNJoin(b, 4) }

// --- Micro-benchmarks of the individual filtering methods (per-run cost
// at a fixed configuration, complementing the per-table experiments). ---

func benchInput(b *testing.B) *core.Input {
	b.Helper()
	task := datagen.Generate(datagen.QuickSpec(100, 300, 70, 7))
	in := core.NewInputDim(task, entity.SchemaAgnostic, 48)
	in.Seed = 1
	return in
}

func benchFilter(b *testing.B, f core.Filter) {
	in := benchInput(b)
	// Warm caches so the benchmark measures the filter itself.
	if _, err := f.Run(in); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterSBW(b *testing.B)  { benchFilter(b, core.NewPBW()) }
func BenchmarkFilterKNNJ(b *testing.B) { benchFilter(b, core.NewDkNN(false)) }

func BenchmarkFilterEpsJoin(b *testing.B) {
	r := tuning.DefaultSparseSpace(false)
	benchFilter(b, &core.EpsJoinFilter{Clean: true, Model: r.Models[2], Measure: 0, Threshold: 0.4})
}

func BenchmarkFilterFlatKNN(b *testing.B) {
	benchFilter(b, &core.FlatKNNFilter{Clean: true, K: 5})
}

func BenchmarkFilterMinHash(b *testing.B) {
	benchFilter(b, &core.MinHashFilter{Bands: 32, Rows: 4, K: 3})
}

func BenchmarkFilterDeepBlocker(b *testing.B) {
	benchFilter(b, &core.DeepBlockerFilter{Clean: true, K: 5, Hidden: 16, Epochs: 2})
}

// BenchmarkAblation regenerates the design-choice ablation studies.
func BenchmarkAblation(b *testing.B) {
	task := datagen.ByName("D2", 0.012)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Ablation(io.Discard, task)
	}
}
