package blocking

import (
	"strings"
	"testing"

	"erfilter/internal/entity"
)

// heterogeneousTask builds a task where the same information lives under
// different attribute names in each dataset.
func heterogeneousTask() *entity.Task {
	e1 := entity.New("E1", []entity.Profile{
		{Attrs: []entity.Attribute{
			{Name: "name", Value: "canon powershot a540"},
			{Name: "maker", Value: "canon"},
		}},
		{Attrs: []entity.Attribute{
			{Name: "name", Value: "nikon coolpix p100"},
			{Name: "maker", Value: "nikon"},
		}},
	})
	e2 := entity.New("E2", []entity.Profile{
		{Attrs: []entity.Attribute{
			{Name: "title", Value: "canon powershot a540 camera"},
			{Name: "brand", Value: "canon"},
		}},
		{Attrs: []entity.Attribute{
			{Name: "title", Value: "nikon coolpix p100 zoom"},
			{Name: "brand", Value: "nikon"},
		}},
	})
	truth := entity.NewGroundTruth([]entity.Pair{{Left: 0, Right: 0}, {Left: 1, Right: 1}})
	return &entity.Task{Name: "hetero", E1: e1, E2: e2, Truth: truth}
}

func TestAttributeClusteringFindsMatches(t *testing.T) {
	task := heterogeneousTask()
	c := BuildAttributeClustering(task, 0.1)
	if len(c.Blocks) == 0 {
		t.Fatal("no blocks built")
	}
	// The matching pairs must co-occur in at least one block.
	found := map[entity.Pair]bool{}
	for i := range c.Blocks {
		for _, e1 := range c.Blocks[i].E1 {
			for _, e2 := range c.Blocks[i].E2 {
				found[entity.Pair{Left: e1, Right: e2}] = true
			}
		}
	}
	for _, p := range task.Truth.Pairs() {
		if !found[p] {
			t.Fatalf("matching pair %v not covered by any block", p)
		}
	}
}

func TestAttributeClusteringQualifiesKeys(t *testing.T) {
	// With clustering, the name/title cluster differs from the maker/brand
	// cluster: the token "canon" appears in both, so it must form two
	// separate blocks (one per cluster) rather than a single merged one.
	task := heterogeneousTask()
	c := BuildAttributeClustering(task, 0.1)
	canonBlocks := 0
	for i := range c.Blocks {
		if strings.HasSuffix(c.Blocks[i].Key, "\x00canon") {
			canonBlocks++
		}
	}
	if canonBlocks < 2 {
		t.Fatalf("token 'canon' in %d cluster blocks, want >= 2 (cluster-qualified keys)", canonBlocks)
	}
}

func TestAttributeClusteringGlue(t *testing.T) {
	// Attributes with no counterpart fall into the glue cluster and still
	// contribute blocks.
	e1 := entity.New("E1", []entity.Profile{
		{Attrs: []entity.Attribute{{Name: "zzz_only_here", Value: "uniquetoken"}}},
	})
	e2 := entity.New("E2", []entity.Profile{
		{Attrs: []entity.Attribute{{Name: "completely_other", Value: "uniquetoken"}}},
	})
	task := &entity.Task{E1: e1, E2: e2, Truth: entity.NewGroundTruth(nil)}
	// minSim of 1.0 forbids linking unless vocabularies are identical; the
	// vocabularies here ARE identical ("uniquetoken"), so they cluster.
	c := BuildAttributeClustering(task, 1.0)
	if len(c.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(c.Blocks))
	}
	// With an impossible threshold both go to the glue cluster - and still
	// share a block there.
	e2b := entity.New("E2", []entity.Profile{
		{Attrs: []entity.Attribute{{Name: "other", Value: "uniquetoken different words"}}},
	})
	task2 := &entity.Task{E1: e1, E2: e2b, Truth: entity.NewGroundTruth(nil)}
	c2 := BuildAttributeClustering(task2, 0.99)
	if len(c2.Blocks) != 1 {
		t.Fatalf("glue blocks = %d, want 1", len(c2.Blocks))
	}
}

func TestAttributeClusteringEmptyDatasets(t *testing.T) {
	task := &entity.Task{
		E1:    entity.New("E1", nil),
		E2:    entity.New("E2", nil),
		Truth: entity.NewGroundTruth(nil),
	}
	if c := BuildAttributeClustering(task, 0.5); len(c.Blocks) != 0 {
		t.Fatal("empty task should yield no blocks")
	}
}
