package blocking

import (
	"testing"

	"erfilter/internal/entity"
)

func TestSortedNeighborhoodFindsAdjacentKeys(t *testing.T) {
	v1, v2 := mkViews(
		[]string{"canon a540", "nikon p100"},
		[]string{"canon a540 camera", "garmin nuvi"},
	)
	sn := SortedNeighborhood{WindowSize: 3}
	pairs := sn.Candidates(v1, v2)
	found := false
	for _, p := range pairs {
		if p.Left == 0 && p.Right == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("matching pair not in window candidates: %v", pairs)
	}
}

func TestSortedNeighborhoodDistinctPairs(t *testing.T) {
	v1, v2 := mkViews(
		[]string{"a b c", "a b"},
		[]string{"a b c"},
	)
	sn := SortedNeighborhood{WindowSize: 4}
	pairs := sn.Candidates(v1, v2)
	seen := map[entity.Pair]bool{}
	for _, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestSortedNeighborhoodWindowMonotone(t *testing.T) {
	v1, v2 := mkViews(
		[]string{"alpha beta", "gamma delta", "epsilon zeta"},
		[]string{"alpha gamma", "beta epsilon", "delta zeta"},
	)
	prev := -1
	for _, w := range []int{2, 3, 5, 8} {
		n := len(SortedNeighborhood{WindowSize: w}.Candidates(v1, v2))
		if n < prev {
			t.Fatalf("window %d produced fewer candidates (%d < %d)", w, n, prev)
		}
		prev = n
	}
}

func TestSortedNeighborhoodMinimumWindow(t *testing.T) {
	v1, v2 := mkViews([]string{"x"}, []string{"x"})
	// WindowSize below 2 is clamped.
	if got := (SortedNeighborhood{WindowSize: 0}).Candidates(v1, v2); len(got) != 1 {
		t.Fatalf("candidates = %v", got)
	}
}
