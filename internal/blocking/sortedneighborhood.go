package blocking

import (
	"sort"

	"erfilter/internal/entity"
	"erfilter/internal/text"
)

// SortedNeighborhood implements the classic Sorted Neighborhood method:
// all entities of both collections are sorted by their blocking keys
// (tokens) and a window of fixed size slides over the sorted list; every
// pair of cross-collection entities inside a window becomes a candidate.
//
// The paper evaluated Sorted Neighborhood and excluded it from the
// reported results because it consistently underperforms the block-based
// methods: its windows are incompatible with the block and comparison
// cleaning techniques that remove superfluous comparisons (Section IV-B).
// It is provided here for completeness and for the ablation experiments.
type SortedNeighborhood struct {
	// WindowSize is the number of consecutive sorted entries considered
	// together; must be >= 2.
	WindowSize int
}

// Candidates returns the distinct cross-collection pairs co-occurring in
// at least one window.
func (s SortedNeighborhood) Candidates(v1, v2 *entity.View) []entity.Pair {
	w := s.WindowSize
	if w < 2 {
		w = 2
	}
	type keyed struct {
		key  string
		side int
		id   int32
	}
	var entries []keyed
	collect := func(v *entity.View, side int) {
		for i := 0; i < v.Len(); i++ {
			for _, tok := range text.Dedup(text.Tokenize(v.Text(i))) {
				entries = append(entries, keyed{key: tok, side: side, id: int32(i)})
			}
		}
	}
	collect(v1, 0)
	collect(v2, 1)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		if entries[i].side != entries[j].side {
			return entries[i].side < entries[j].side
		}
		return entries[i].id < entries[j].id
	})

	seen := map[entity.Pair]struct{}{}
	var out []entity.Pair
	for i := range entries {
		hi := i + w
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			a, b := entries[i], entries[j]
			if a.side == b.side {
				continue
			}
			if a.side == 1 {
				a, b = b, a
			}
			p := entity.Pair{Left: a.id, Right: b.id}
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	return out
}
