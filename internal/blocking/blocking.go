// Package blocking implements the block building methods of the paper's
// Section IV-B: Standard Blocking, Q-Grams Blocking, Extended Q-Grams
// Blocking, Suffix Arrays Blocking and Extended Suffix Arrays Blocking,
// together with the block collection data structure shared by the block
// cleaning (package cleaning) and comparison cleaning (package
// metablocking) steps.
//
// All methods are signature-based: each entity is associated with one or
// more textual signatures (blocking keys), and every distinct key that
// occurs in both input datasets forms a block holding the entities that
// carry it. In Clean-Clean ER a block's candidate comparisons are the cross
// product of its E1 and E2 members.
package blocking

import (
	"fmt"
	"sort"

	"erfilter/internal/entity"
	"erfilter/internal/text"
)

// Block groups the entities of both datasets that share one blocking key.
type Block struct {
	Key string
	E1  []int32
	E2  []int32
}

// Comparisons returns the number of candidate comparisons the block
// contributes: |E1| * |E2|.
func (b *Block) Comparisons() int { return len(b.E1) * len(b.E2) }

// Size returns the total number of entity placements in the block.
func (b *Block) Size() int { return len(b.E1) + len(b.E2) }

// Collection is an ordered set of blocks over a Clean-Clean ER task.
// The order is deterministic (sorted by key at build time); block ids are
// positions in Blocks.
type Collection struct {
	Blocks []Block
	// N1 and N2 are the dataset sizes, kept for the cleaning steps.
	N1, N2 int
}

// TotalComparisons sums the comparisons of all blocks (with repetitions:
// redundant pairs appearing in several blocks are counted once per block).
func (c *Collection) TotalComparisons() float64 {
	var total float64
	for i := range c.Blocks {
		total += float64(c.Blocks[i].Comparisons())
	}
	return total
}

// TotalPlacements sums the block sizes, i.e. the number of entity-to-block
// assignments (the "block assignments" BC of the meta-blocking literature).
func (c *Collection) TotalPlacements() int {
	total := 0
	for i := range c.Blocks {
		total += c.Blocks[i].Size()
	}
	return total
}

// EntityIndex maps every entity to the ids of the blocks that contain it.
// Side 0 indexes E1 entities, side 1 indexes E2 entities.
type EntityIndex struct {
	blocksOf [2][][]int32
}

// Index builds the entity-to-blocks index of the collection.
func (c *Collection) Index() *EntityIndex {
	idx := &EntityIndex{}
	idx.blocksOf[0] = make([][]int32, c.N1)
	idx.blocksOf[1] = make([][]int32, c.N2)
	for bid := range c.Blocks {
		b := &c.Blocks[bid]
		for _, e := range b.E1 {
			idx.blocksOf[0][e] = append(idx.blocksOf[0][e], int32(bid))
		}
		for _, e := range b.E2 {
			idx.blocksOf[1][e] = append(idx.blocksOf[1][e], int32(bid))
		}
	}
	return idx
}

// BlocksOf returns the ids of the blocks containing entity e of the given
// side (0 for E1, 1 for E2). The returned slice must not be modified.
func (x *EntityIndex) BlocksOf(side int, e int32) []int32 { return x.blocksOf[side][e] }

// Builder extracts the blocking keys of one entity's textual content.
type Builder interface {
	// Name identifies the method, e.g. "standard" or "qgrams(q=3)".
	Name() string
	// Keys returns the signatures of the given textual value.
	Keys(text string) []string
	// MaxBlockSize returns the proactive upper bound on block size
	// (total entities per block), or 0 if the method is lazy and imposes
	// no bound. Only the Suffix Arrays methods are proactive.
	MaxBlockSize() int
}

// Build constructs the block collection of a Clean-Clean ER task from the
// two schema views using the given builder. Keys occurring in only one
// dataset produce no comparisons and are dropped. For proactive builders,
// blocks with MaxBlockSize() or more entities are discarded at build time.
func Build(v1, v2 *entity.View, b Builder) *Collection {
	type sides struct {
		e1, e2 []int32
	}
	m := map[string]*sides{}
	collect := func(v *entity.View, side int) {
		for i := 0; i < v.Len(); i++ {
			for _, k := range text.Dedup(b.Keys(v.Text(i))) {
				s := m[k]
				if s == nil {
					s = &sides{}
					m[k] = s
				}
				if side == 0 {
					s.e1 = append(s.e1, int32(i))
				} else {
					s.e2 = append(s.e2, int32(i))
				}
			}
		}
	}
	collect(v1, 0)
	collect(v2, 1)

	keys := make([]string, 0, len(m))
	for k, s := range m {
		if len(s.e1) == 0 || len(s.e2) == 0 {
			continue
		}
		if max := b.MaxBlockSize(); max > 0 && len(s.e1)+len(s.e2) >= max {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)

	c := &Collection{N1: v1.Len(), N2: v2.Len(), Blocks: make([]Block, 0, len(keys))}
	for _, k := range keys {
		s := m[k]
		c.Blocks = append(c.Blocks, Block{Key: k, E1: s.e1, E2: s.e2})
	}
	return c
}

// Standard implements Standard (Token) Blocking: one key per distinct
// token of the entity's text. It is parameter-free.
type Standard struct{}

// Name implements Builder.
func (Standard) Name() string { return "standard" }

// MaxBlockSize implements Builder; Standard Blocking is lazy.
func (Standard) MaxBlockSize() int { return 0 }

// Keys implements Builder.
func (Standard) Keys(s string) []string { return text.Tokenize(s) }

// QGrams implements Q-Grams Blocking: the keys are the character q-grams of
// each token of Standard Blocking.
type QGrams struct {
	Q int
}

// Name implements Builder.
func (b QGrams) Name() string { return fmt.Sprintf("qgrams(q=%d)", b.Q) }

// MaxBlockSize implements Builder; Q-Grams Blocking is lazy.
func (QGrams) MaxBlockSize() int { return 0 }

// Keys implements Builder.
func (b QGrams) Keys(s string) []string {
	var keys []string
	for _, tok := range text.Tokenize(s) {
		keys = append(keys, text.NGrams(tok, b.Q)...)
	}
	return keys
}

// ExtendedQGrams implements Extended Q-Grams Blocking: keys are
// concatenations of at least L = max(1, floor(k*T)) of each token's k
// q-grams, producing fewer, more selective blocks than plain q-grams.
type ExtendedQGrams struct {
	Q int
	// T in [0,1) controls the minimum combination length.
	T float64
	// MaxGramsPerToken caps the per-token subset enumeration; 0 means the
	// default of 15 grams (32768 subsets), mirroring JedAI's cap.
	MaxGramsPerToken int
}

// Name implements Builder.
func (b ExtendedQGrams) Name() string { return fmt.Sprintf("extqgrams(q=%d,t=%.2f)", b.Q, b.T) }

// MaxBlockSize implements Builder; Extended Q-Grams Blocking is lazy.
func (ExtendedQGrams) MaxBlockSize() int { return 0 }

// Keys implements Builder.
func (b ExtendedQGrams) Keys(s string) []string {
	cap := b.MaxGramsPerToken
	if cap <= 0 {
		cap = 15
	}
	var keys []string
	for _, tok := range text.Tokenize(s) {
		keys = append(keys, text.QGramCombinations(text.NGrams(tok, b.Q), b.T, cap)...)
	}
	return keys
}

// SuffixArrays implements Suffix Arrays Blocking: keys are the token
// suffixes of at least Lmin characters; blocks reaching Bmax entities are
// discarded (the method is proactive).
type SuffixArrays struct {
	Lmin int
	Bmax int
}

// Name implements Builder.
func (b SuffixArrays) Name() string { return fmt.Sprintf("suffix(l=%d,b=%d)", b.Lmin, b.Bmax) }

// MaxBlockSize implements Builder.
func (b SuffixArrays) MaxBlockSize() int { return b.Bmax }

// Keys implements Builder.
func (b SuffixArrays) Keys(s string) []string {
	var keys []string
	for _, tok := range text.Tokenize(s) {
		keys = append(keys, text.Suffixes(tok, b.Lmin)...)
	}
	return keys
}

// ExtendedSuffixArrays implements Extended Suffix Arrays Blocking: keys are
// all token substrings of at least Lmin characters; blocks reaching Bmax
// entities are discarded.
type ExtendedSuffixArrays struct {
	Lmin int
	Bmax int
}

// Name implements Builder.
func (b ExtendedSuffixArrays) Name() string {
	return fmt.Sprintf("extsuffix(l=%d,b=%d)", b.Lmin, b.Bmax)
}

// MaxBlockSize implements Builder.
func (b ExtendedSuffixArrays) MaxBlockSize() int { return b.Bmax }

// Keys implements Builder.
func (b ExtendedSuffixArrays) Keys(s string) []string {
	var keys []string
	for _, tok := range text.Tokenize(s) {
		keys = append(keys, text.Substrings(tok, b.Lmin)...)
	}
	return keys
}
