package blocking_test

import (
	"fmt"

	"erfilter/internal/blocking"
	"erfilter/internal/entity"
)

func viewsOf(a, b []string) (*entity.View, *entity.View) {
	mk := func(texts []string) *entity.View {
		profiles := make([]entity.Profile, len(texts))
		for i, s := range texts {
			profiles[i] = entity.Profile{Attrs: []entity.Attribute{{Name: "v", Value: s}}}
		}
		return entity.NewView(entity.New("d", profiles), entity.SchemaAgnostic, "")
	}
	return mk(a), mk(b)
}

// ExampleBuild shows Standard (Token) Blocking: one block per token that
// occurs in both collections.
func ExampleBuild() {
	v1, v2 := viewsOf(
		[]string{"joe biden", "kamala harris"},
		[]string{"joseph biden", "donald trump"},
	)
	c := blocking.Build(v1, v2, blocking.Standard{})
	for _, b := range c.Blocks {
		fmt.Printf("%s: %d comparison(s)\n", b.Key, b.Comparisons())
	}
	// Output: biden: 1 comparison(s)
}

// ExampleQGrams shows how character q-grams catch typos that token
// blocking misses.
func ExampleQGrams() {
	v1, v2 := viewsOf([]string{"nikon"}, []string{"nikom"})
	std := blocking.Build(v1, v2, blocking.Standard{})
	qg := blocking.Build(v1, v2, blocking.QGrams{Q: 3})
	fmt.Println(len(std.Blocks), len(qg.Blocks))
	// Output: 0 2
}
