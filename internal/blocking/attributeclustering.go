package blocking

import (
	"sort"
	"strconv"

	"erfilter/internal/entity"
	"erfilter/internal/text"
)

// BuildAttributeClustering implements Attribute Clustering Blocking
// (Papadakis et al., TKDE 2013): attribute names from the two datasets
// are clustered by the similarity of their value vocabularies, and
// Standard Blocking keys are then qualified by their attribute's cluster,
// producing smaller, more coherent blocks than the plain schema-agnostic
// signature space on heterogeneous schemata.
//
// The paper excludes the method from its study because it is incompatible
// with the schema-based settings (Section IV-B); it is provided here as
// the heterogeneous-schema extension of the blocking family. minSim is
// the minimum Jaccard vocabulary similarity for linking two attributes;
// attributes with no link fall into a common "glue" cluster, so no token
// evidence is lost.
func BuildAttributeClustering(t *entity.Task, minSim float64) *Collection {
	vocab1 := attributeVocabularies(t.E1)
	vocab2 := attributeVocabularies(t.E2)
	names1 := sortedKeys(vocab1)
	names2 := sortedKeys(vocab2)

	// Link every attribute to its most similar counterpart in the other
	// dataset when the similarity reaches minSim.
	type link struct{ a1, a2 string }
	var links []link
	bestFor := func(vocab map[string]struct{}, others map[string]map[string]struct{}, otherNames []string) (string, float64) {
		best, bestSim := "", -1.0
		for _, name := range otherNames {
			if sim := jaccardVocab(vocab, others[name]); sim > bestSim {
				best, bestSim = name, sim
			}
		}
		return best, bestSim
	}
	for _, a1 := range names1 {
		if a2, sim := bestFor(vocab1[a1], vocab2, names2); sim >= minSim {
			links = append(links, link{a1: a1, a2: a2})
		}
	}
	for _, a2 := range names2 {
		if a1, sim := bestFor(vocab2[a2], vocab1, names1); sim >= minSim {
			links = append(links, link{a1: a1, a2: a2})
		}
	}

	// Connected components over the links give the attribute clusters.
	// Attribute ids: "1:"+name for E1, "2:"+name for E2.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, l := range links {
		union("1:"+l.a1, "2:"+l.a2)
	}

	const glue = "#glue"
	clusterOf := func(side int, name string) string {
		id := strconv.Itoa(side) + ":" + name
		if _, ok := parent[id]; !ok {
			return glue
		}
		return find(id)
	}

	// Build blocks keyed by cluster + token.
	type sides struct{ e1, e2 []int32 }
	m := map[string]*sides{}
	place := func(d *entity.Dataset, side int) {
		for i := range d.Profiles {
			seen := map[string]struct{}{}
			for _, attr := range d.Profiles[i].Attrs {
				cluster := clusterOf(side, attr.Name)
				for _, tok := range text.Tokenize(attr.Value) {
					key := cluster + "\x00" + tok
					if _, dup := seen[key]; dup {
						continue
					}
					seen[key] = struct{}{}
					s := m[key]
					if s == nil {
						s = &sides{}
						m[key] = s
					}
					if side == 1 {
						s.e1 = append(s.e1, int32(i))
					} else {
						s.e2 = append(s.e2, int32(i))
					}
				}
			}
		}
	}
	place(t.E1, 1)
	place(t.E2, 2)

	keys := make([]string, 0, len(m))
	for k, s := range m {
		if len(s.e1) > 0 && len(s.e2) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	c := &Collection{N1: t.E1.Len(), N2: t.E2.Len(), Blocks: make([]Block, 0, len(keys))}
	for _, k := range keys {
		s := m[k]
		c.Blocks = append(c.Blocks, Block{Key: k, E1: s.e1, E2: s.e2})
	}
	return c
}

// attributeVocabularies collects the token vocabulary of every attribute.
func attributeVocabularies(d *entity.Dataset) map[string]map[string]struct{} {
	out := map[string]map[string]struct{}{}
	for i := range d.Profiles {
		for _, attr := range d.Profiles[i].Attrs {
			v := out[attr.Name]
			if v == nil {
				v = map[string]struct{}{}
				out[attr.Name] = v
			}
			for _, tok := range text.Tokenize(attr.Value) {
				v[tok] = struct{}{}
			}
		}
	}
	return out
}

func jaccardVocab(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for t := range a {
		if _, ok := b[t]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

func sortedKeys(m map[string]map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
