package blocking

import (
	"sort"
	"testing"
	"testing/quick"

	"erfilter/internal/entity"
)

// mkViews builds two one-attribute datasets from plain strings.
func mkViews(a, b []string) (*entity.View, *entity.View) {
	mk := func(name string, texts []string) *entity.Dataset {
		profiles := make([]entity.Profile, len(texts))
		for i, t := range texts {
			profiles[i] = entity.Profile{Attrs: []entity.Attribute{{Name: "name", Value: t}}}
		}
		return entity.New(name, profiles)
	}
	d1, d2 := mk("E1", a), mk("E2", b)
	return entity.NewView(d1, entity.SchemaAgnostic, ""), entity.NewView(d2, entity.SchemaAgnostic, "")
}

func blockKeys(c *Collection) []string {
	keys := make([]string, len(c.Blocks))
	for i := range c.Blocks {
		keys[i] = c.Blocks[i].Key
	}
	sort.Strings(keys)
	return keys
}

func TestStandardBlocking(t *testing.T) {
	v1, v2 := mkViews(
		[]string{"joe biden", "kamala harris"},
		[]string{"biden joseph", "donald trump"},
	)
	c := Build(v1, v2, Standard{})
	// Only "biden" occurs on both sides.
	if len(c.Blocks) != 1 || c.Blocks[0].Key != "biden" {
		t.Fatalf("blocks = %v", blockKeys(c))
	}
	b := c.Blocks[0]
	if len(b.E1) != 1 || b.E1[0] != 0 || len(b.E2) != 1 || b.E2[0] != 0 {
		t.Fatalf("block members = %+v", b)
	}
	if b.Comparisons() != 1 || b.Size() != 2 {
		t.Fatalf("comparisons=%d size=%d", b.Comparisons(), b.Size())
	}
}

func TestStandardDedupKeysWithinEntity(t *testing.T) {
	v1, v2 := mkViews([]string{"red red red"}, []string{"red"})
	c := Build(v1, v2, Standard{})
	if len(c.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(c.Blocks))
	}
	if got := len(c.Blocks[0].E1); got != 1 {
		t.Fatalf("entity placed %d times in one block", got)
	}
}

func TestQGramsCatchesTypos(t *testing.T) {
	// "nikon" vs "nikom": no shared token, but shared 3-grams nik, iko.
	v1, v2 := mkViews([]string{"nikon"}, []string{"nikom"})
	if c := Build(v1, v2, Standard{}); len(c.Blocks) != 0 {
		t.Fatalf("standard should produce no block, got %v", blockKeys(c))
	}
	c := Build(v1, v2, QGrams{Q: 3})
	got := blockKeys(c)
	want := []string{"iko", "nik"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("qgram blocks = %v, want %v", got, want)
	}
}

func TestExtendedQGramsSmallerBlocks(t *testing.T) {
	texts1 := []string{"canon powershot camera", "nikon coolpix camera"}
	texts2 := []string{"canon powershot", "nikon coolpix zoom"}
	v1, v2 := mkViews(texts1, texts2)
	qb := Build(v1, v2, QGrams{Q: 3})
	eb := Build(v1, v2, ExtendedQGrams{Q: 3, T: 0.9})
	// Extended Q-Grams produces more selective keys: fewer comparisons in
	// the largest block.
	maxComp := func(c *Collection) int {
		m := 0
		for i := range c.Blocks {
			if x := c.Blocks[i].Comparisons(); x > m {
				m = x
			}
		}
		return m
	}
	if maxComp(eb) > maxComp(qb) {
		t.Fatalf("extended q-grams max block %d > q-grams %d", maxComp(eb), maxComp(qb))
	}
}

func TestSuffixArraysProactiveBound(t *testing.T) {
	// Ten entities sharing the token "metallica" on each side: the suffix
	// blocks have 20 entities, so bmax=5 discards them all.
	var a, b []string
	for i := 0; i < 10; i++ {
		a = append(a, "metallica")
		b = append(b, "metallica")
	}
	c := Build(mkViewsHelper(a), mkViewsHelper(b), SuffixArrays{Lmin: 3, Bmax: 5})
	if len(c.Blocks) != 0 {
		t.Fatalf("expected all blocks purged by bmax, got %d", len(c.Blocks))
	}
	c = Build(mkViewsHelper(a), mkViewsHelper(b), SuffixArrays{Lmin: 3, Bmax: 100})
	if len(c.Blocks) == 0 {
		t.Fatal("expected blocks with generous bmax")
	}
	for i := range c.Blocks {
		if c.Blocks[i].Size() >= 100 {
			t.Fatalf("block size %d >= bmax", c.Blocks[i].Size())
		}
	}
}

func mkViewsHelper(texts []string) *entity.View {
	profiles := make([]entity.Profile, len(texts))
	for i, t := range texts {
		profiles[i] = entity.Profile{Attrs: []entity.Attribute{{Name: "name", Value: t}}}
	}
	return entity.NewView(entity.New("d", profiles), entity.SchemaAgnostic, "")
}

func TestExtendedSuffixArraysSupersetOfSuffix(t *testing.T) {
	v1, v2 := mkViews([]string{"joe biden"}, []string{"biden"})
	sa := Build(v1, v2, SuffixArrays{Lmin: 3, Bmax: 1000})
	esa := Build(v1, v2, ExtendedSuffixArrays{Lmin: 3, Bmax: 1000})
	saKeys := map[string]bool{}
	for _, k := range blockKeys(esa) {
		saKeys[k] = true
	}
	for _, k := range blockKeys(sa) {
		if !saKeys[k] {
			t.Fatalf("suffix key %q missing from extended suffix keys", k)
		}
	}
	if len(esa.Blocks) < len(sa.Blocks) {
		t.Fatalf("extended suffix should have at least as many blocks (%d < %d)", len(esa.Blocks), len(sa.Blocks))
	}
}

func TestEntityIndex(t *testing.T) {
	v1, v2 := mkViews(
		[]string{"alpha beta", "beta gamma"},
		[]string{"alpha beta gamma"},
	)
	c := Build(v1, v2, Standard{})
	idx := c.Index()
	// entity 0 of E1 appears in blocks alpha, beta.
	bids := idx.BlocksOf(0, 0)
	if len(bids) != 2 {
		t.Fatalf("entity 0 of E1 in %d blocks, want 2", len(bids))
	}
	// entity 0 of E2 appears in all three blocks.
	if got := len(idx.BlocksOf(1, 0)); got != 3 {
		t.Fatalf("entity 0 of E2 in %d blocks, want 3", got)
	}
	total := 0
	for i := range c.Blocks {
		total += c.Blocks[i].Size()
	}
	if total != c.TotalPlacements() {
		t.Fatalf("TotalPlacements mismatch: %d vs %d", total, c.TotalPlacements())
	}
}

func TestBuildDeterministicOrder(t *testing.T) {
	v1, v2 := mkViews(
		[]string{"c b a", "b d"},
		[]string{"a b c d"},
	)
	c1 := Build(v1, v2, Standard{})
	c2 := Build(v1, v2, Standard{})
	k1, k2 := blockKeys(c1), blockKeys(c2)
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("non-deterministic block order")
		}
	}
	// Keys must be sorted.
	if !sort.StringsAreSorted(k1) {
		t.Fatal("keys not sorted")
	}
}

func TestBuildPropertyNoEmptySides(t *testing.T) {
	f := func(a, b []string) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		v1, v2 := mkViews(a, b)
		c := Build(v1, v2, Standard{})
		for i := range c.Blocks {
			if len(c.Blocks[i].E1) == 0 || len(c.Blocks[i].E2) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
