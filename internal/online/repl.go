package online

// Replication hooks on the durable store: the leader side of WAL
// shipping. Followers bootstrap from ReplSnapshot — a consistent cut
// whose position is a rotation boundary, so the follower's mirrored
// segment files are byte-identical to the leader's from their first
// byte — then stream raw log bytes via ReadLog. The fencing term rides
// inside the log itself as a walTerm record.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"

	"erfilter/internal/wal"
)

func encodeTerm(t uint64) []byte {
	var buf bytes.Buffer
	bw := &binWriter{w: bufio.NewWriter(&buf)}
	bw.u64(t)
	bw.w.Flush()
	return buf.Bytes()
}

func decodeTerm(data []byte) (uint64, error) {
	br := &binReader{r: bufio.NewReader(bytes.NewReader(data))}
	t := br.u64()
	if br.err != nil {
		return 0, fmt.Errorf("online: decoding term record: %w", br.err)
	}
	return t, nil
}

// replayTerm applies a walTerm record during recovery.
func (s *Store) replayTerm(rec wal.Record) error {
	t, err := decodeTerm(rec.Data)
	if err != nil {
		return err
	}
	if t > s.term.Load() {
		s.term.Store(t)
	}
	return nil
}

// Term returns the highest fencing term recorded in this store's log;
// 0 when the store has never taken part in replication.
func (s *Store) Term() uint64 { return s.term.Load() }

// SetTerm durably raises the store's fencing term by appending a
// walTerm record (fsynced before return, and replicated to followers
// like any other record). Lower or equal terms are a no-op: terms only
// move forward.
func (s *Store) SetTerm(t uint64) error {
	if err := s.writeable(); err != nil {
		return err
	}
	s.mu.Lock()
	if t <= s.term.Load() {
		s.mu.Unlock()
		return nil
	}
	seq, werr := s.log.AppendBuffered(walTerm, encodeTerm(t))
	if werr == nil {
		s.term.Store(t)
	}
	s.mu.Unlock()
	if werr != nil {
		s.degrade(werr)
		return werr
	}
	if err := s.log.WaitSync(seq); err != nil {
		s.degrade(err)
		return err
	}
	return nil
}

// LogPos returns the durable end of the store's log — the position a
// write's ack corresponds to, and therefore the epoch token handed to
// clients for read-your-writes.
func (s *Store) LogPos() wal.Position { return s.log.Pos() }

// ReadLog serves a raw durable byte range of the log to a follower; see
// wal.ReadAt for the at/next contract and the ErrTrimmed/ErrFuture
// signals.
func (s *Store) ReadLog(pos wal.Position, max int) (data []byte, at, next wal.Position, err error) {
	return s.log.ReadAt(pos, max)
}

// WaitLog blocks until the log's durable end is past pos or the timeout
// elapses — the long-poll a caught-up follower parks on.
func (s *Store) WaitLog(pos wal.Position, d time.Duration) bool { return s.log.WaitFor(pos, d) }

// ReplSnapshot begins a follower bootstrap: it rotates the log and
// captures the resolver state in one critical section, so the returned
// position is a rotation boundary and the capture holds exactly the
// records below it. The returned save streams the snapshot without
// holding any lock; concurrent writes land in segments at or after the
// boundary and reach the follower through the ordinary tail.
func (s *Store) ReplSnapshot() (pos wal.Position, term uint64, save func(io.Writer) error, err error) {
	s.mu.Lock()
	r := s.res
	r.mu.Lock()
	cfg, nextID, ents, graph := r.captureLocked()
	r.mu.Unlock()
	boundary, werr := s.log.Rotate()
	term = s.term.Load()
	s.mu.Unlock()
	if werr != nil {
		s.degrade(werr)
		return wal.Position{}, 0, nil, werr
	}
	return wal.Position{Seg: boundary, Off: 0}, term, func(w io.Writer) error {
		return writeSnapshot(w, cfg, nextID, ents, graph)
	}, nil
}
