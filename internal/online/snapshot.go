package online

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// The on-disk snapshot format is pure stdlib and deliberately minimal: a
// magic header, the tuned configuration, every resident entity's id and
// attributes in ascending-id order, and a CRC32-C trailer over the whole
// stream. Token sets, vocabularies and embeddings are *not* stored —
// they are deterministic functions of the entity texts and the
// configuration, so Load rebuilds them by replaying the entities in id
// order. Replay order equals the original insertion order (ids are
// monotonic and never reused), which is what makes a loaded resolver
// answer queries byte-identically to the one saved. The trailer makes
// corruption detection unconditional: any truncation or bit flip
// anywhere in the stream fails Load instead of silently loading a
// damaged resolver.
const (
	snapMagic   = "ERSNAP\x02\n"
	maxSnapStr  = 1 << 24 // sanity bound for length-prefixed strings
	maxSnapAttr = 1 << 20 // sanity bound for attributes per entity
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

type binWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
}

func (b *binWriter) u8(v uint8) { b.bytes([]byte{v}) }

func (b *binWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.bytes(buf[:])
}

func (b *binWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.bytes(buf[:])
}

func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) str(s string) {
	b.u32(uint32(len(s)))
	b.bytes([]byte(s))
}

func (b *binWriter) bytes(p []byte) {
	if b.err == nil {
		b.crc = crc32.Update(b.crc, snapCRC, p)
		_, b.err = b.w.Write(p)
	}
}

// trailer writes the running checksum itself (not folded into the CRC).
func (b *binWriter) trailer() {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], b.crc)
	if b.err == nil {
		_, b.err = b.w.Write(buf[:])
	}
}

type binReader struct {
	r   *bufio.Reader
	crc uint32
	err error
}

func (b *binReader) u8() uint8 {
	var buf [1]byte
	b.bytes(buf[:])
	return buf[0]
}

func (b *binReader) u32() uint32 {
	var buf [4]byte
	b.bytes(buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (b *binReader) u64() uint64 {
	var buf [8]byte
	b.bytes(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

func (b *binReader) str() string {
	n := b.u32()
	if b.err != nil {
		return ""
	}
	if n > maxSnapStr {
		b.err = fmt.Errorf("online: snapshot string length %d exceeds bound", n)
		return ""
	}
	buf := make([]byte, n)
	b.bytes(buf)
	return string(buf)
}

func (b *binReader) bytes(p []byte) {
	if b.err != nil {
		return
	}
	if _, b.err = io.ReadFull(b.r, p); b.err == nil {
		b.crc = crc32.Update(b.crc, snapCRC, p)
	}
}

// checkTrailer consumes the 4-byte checksum (outside the running CRC)
// and compares it against everything read so far.
func (b *binReader) checkTrailer() {
	if b.err != nil {
		return
	}
	var buf [4]byte
	if _, b.err = io.ReadFull(b.r, buf[:]); b.err != nil {
		b.err = fmt.Errorf("reading checksum trailer: %w", b.err)
		return
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != b.crc {
		b.err = fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", got, b.crc)
	}
}

// snapEntity is one captured (id, attributes) pair of a snapshot write.
type snapEntity struct {
	id    int64
	attrs []entity.Attribute
}

// captureLocked collects the writer-side state a snapshot needs. Callers
// hold r.mu; the attribute slices are shared, which is safe because they
// are copied on insert and never mutated while resident.
func (r *Resolver) captureLocked() (Config, int64, []snapEntity) {
	ents := make([]snapEntity, 0, len(r.attrs))
	for id, attrs := range r.attrs {
		ents = append(ents, snapEntity{id: id, attrs: attrs})
	}
	return r.cfg, r.nextID, ents
}

// writeSnapshot streams one consistent captured state in the snapshot
// format; ents may be unsorted and is sorted in place.
func writeSnapshot(w io.Writer, c Config, nextID int64, ents []snapEntity) error {
	sort.Slice(ents, func(i, j int) bool { return ents[i].id < ents[j].id })

	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.bytes([]byte(snapMagic))
	bw.u8(uint8(c.Method))
	bw.u8(uint8(c.Setting))
	bw.u8(boolByte(c.Clean))
	bw.u8(uint8(c.Model.N))
	bw.u8(boolByte(c.Model.Multiset))
	bw.u8(uint8(c.Measure))
	bw.u8(uint8(c.Metric))
	bw.u32(uint32(c.K))
	bw.f64(c.Threshold)
	bw.u32(uint32(c.Dim))
	bw.str(c.BestAttribute)

	bw.u64(uint64(nextID))
	bw.u32(uint32(len(ents)))
	for _, e := range ents {
		bw.u64(uint64(e.id))
		bw.u32(uint32(len(e.attrs)))
		for _, a := range e.attrs {
			bw.str(a.Name)
			bw.str(a.Value)
		}
	}
	bw.trailer()
	if bw.err != nil {
		return fmt.Errorf("online: saving snapshot: %w", bw.err)
	}
	return bw.w.Flush()
}

// Save writes the resolver — configuration, id counter and every resident
// entity — to w in the binary snapshot format. The writer lock is held
// only while the entity map is captured, not while w is written, so a
// slow destination (e.g. a stalled HTTP client draining /snapshot) never
// blocks inserts and deletes; the result is still a consistent cut as of
// one epoch. Concurrent queries are unaffected throughout.
func (r *Resolver) Save(w io.Writer) error {
	r.mu.Lock()
	c, nextID, ents := r.captureLocked()
	r.mu.Unlock()
	return writeSnapshot(w, c, nextID, ents)
}

// Load reconstructs a resolver from a snapshot written by Save. The
// incremental indexes are rebuilt by replaying the entities in id order,
// so the loaded resolver returns byte-identical query results. Any
// truncation or corruption of the stream — including a single flipped
// bit anywhere — returns an error; no partial state is ever served.
func Load(rd io.Reader) (*Resolver, error) {
	c, nextID, ents, err := decodeSnapshot(rd)
	if err != nil {
		return nil, err
	}
	r := NewResolver(c)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range ents {
		r.addLocked(e.id, e.attrs)
	}
	r.nextID = nextID
	r.publishLocked()
	return r, nil
}

// decodeSnapshot reads and fully validates a snapshot stream — checksum
// included — before any caller builds index state from it, so a corrupt
// snapshot can never leave a partially loaded resolver behind. Entities
// come back in the stored strictly-ascending id order.
func decodeSnapshot(rd io.Reader) (Config, int64, []snapEntity, error) {
	br := &binReader{r: bufio.NewReader(rd)}
	magic := make([]byte, len(snapMagic))
	br.bytes(magic)
	if br.err == nil && string(magic) != snapMagic {
		return Config{}, 0, nil, fmt.Errorf("online: not an erfilter snapshot (bad magic)")
	}

	var c Config
	c.Method = Method(br.u8())
	c.Setting = entity.SchemaSetting(br.u8())
	c.Clean = br.u8() != 0
	c.Model = text.Model{N: int(br.u8()), Multiset: br.u8() != 0}
	c.Measure = sparse.Measure(br.u8())
	c.Metric = knn.Metric(br.u8())
	c.K = int(br.u32())
	c.Threshold = br.f64()
	c.Dim = int(br.u32())
	c.BestAttribute = br.str()
	if br.err != nil {
		return Config{}, 0, nil, fmt.Errorf("online: reading snapshot header: %w", br.err)
	}
	if err := validateConfig(c); err != nil {
		return Config{}, 0, nil, err
	}

	nextID := int64(br.u64())
	count := br.u32()
	if br.err != nil {
		return Config{}, 0, nil, fmt.Errorf("online: reading snapshot counts: %w", br.err)
	}

	ents := make([]snapEntity, 0, min(int(count), 1<<16))
	var prev int64 = -1
	for i := uint32(0); i < count; i++ {
		id := int64(br.u64())
		nattrs := br.u32()
		if br.err == nil && nattrs > maxSnapAttr {
			br.err = fmt.Errorf("attribute count %d exceeds bound", nattrs)
		}
		if br.err != nil {
			return Config{}, 0, nil, fmt.Errorf("online: reading snapshot entity %d: %w", i, br.err)
		}
		attrs := make([]entity.Attribute, nattrs)
		for j := range attrs {
			attrs[j] = entity.Attribute{Name: br.str(), Value: br.str()}
		}
		if br.err != nil {
			return Config{}, 0, nil, fmt.Errorf("online: reading snapshot entity %d: %w", i, br.err)
		}
		if id <= prev || id >= nextID {
			return Config{}, 0, nil, fmt.Errorf("online: snapshot entity ids not strictly increasing below next id (%d after %d, next %d)", id, prev, nextID)
		}
		prev = id
		ents = append(ents, snapEntity{id: id, attrs: attrs})
	}
	if br.checkTrailer(); br.err != nil {
		return Config{}, 0, nil, fmt.Errorf("online: verifying snapshot: %w", br.err)
	}
	return c, nextID, ents, nil
}

// addLocked indexes an entity under an explicit id (the snapshot replay
// path). Callers hold mu and guarantee ascending, unused ids.
func (r *Resolver) addLocked(id int64, attrs []entity.Attribute) {
	r.attrs[id] = attrs
	txt := r.cfg.textOf(attrs)
	var err error
	if r.sp != nil {
		err = r.sp.Add(id, r.vocab.Encode(r.cfg.Model.Tokens(txt)))
	} else {
		err = r.kn.Add(id, r.emb.Text(txt))
	}
	if err != nil {
		panic(fmt.Sprintf("online: %v", err))
	}
	r.inserts++
}

// validateConfig range-checks every enum-like field deserialized by Load,
// so a corrupted or hand-crafted snapshot fails loudly instead of being
// served with out-of-range values that stringify as "unknown" and score
// everything as 0.
func validateConfig(c Config) error {
	if c.Method > FlatKNN {
		return fmt.Errorf("online: snapshot has unknown method %d", c.Method)
	}
	if c.Setting != entity.SchemaAgnostic && c.Setting != entity.SchemaBased {
		return fmt.Errorf("online: snapshot has unknown schema setting %d", c.Setting)
	}
	switch c.Method {
	case FlatKNN:
		if c.Metric != knn.DotProduct && c.Metric != knn.L2Squared {
			return fmt.Errorf("online: snapshot has unknown metric %d", c.Metric)
		}
	default: // sparse methods carry a representation model and a measure
		if c.Model.N < 1 || c.Model.N > 5 {
			return fmt.Errorf("online: snapshot has invalid model n-gram length %d (want 1..5)", c.Model.N)
		}
		if c.Measure < sparse.Cosine || c.Measure > sparse.Jaccard {
			return fmt.Errorf("online: snapshot has unknown measure %d", c.Measure)
		}
	}
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
