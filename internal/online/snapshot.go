package online

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

// The on-disk snapshot format is pure stdlib and deliberately minimal: a
// magic header, the tuned configuration, every resident entity's id and
// attributes in ascending-id order, an optional dense-graph section, and
// a CRC32-C trailer over the whole stream. Token sets, vocabularies and
// embeddings are *not* stored — they are deterministic functions of the
// entity texts and the configuration, so Load rebuilds them by replaying
// the entities in id order. Replay order equals the original insertion
// order (ids are monotonic and never reused), which is what makes a
// loaded resolver answer queries byte-identically to the one saved.
//
// The HNSW graph is the one structure replay cannot reproduce (replaying
// into a half-built graph routes differently than the original inserts
// did), so v3 embeds the graph section — the knn package's own
// checksummed stream — inline when a single resolver or store shard
// saves; its bytes also flow through the outer CRC. A sharded
// topology-independent save omits the section and Load rebuilds by
// replay instead. The trailer makes corruption detection unconditional:
// any truncation or bit flip anywhere in the stream fails Load instead
// of silently loading a damaged resolver.
const (
	snapMagic   = "ERSNAP\x03\n"
	maxSnapStr  = 1 << 24 // sanity bound for length-prefixed strings
	maxSnapAttr = 1 << 20 // sanity bound for attributes per entity
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

type binWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
}

func (b *binWriter) u8(v uint8) { b.bytes([]byte{v}) }

func (b *binWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.bytes(buf[:])
}

func (b *binWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.bytes(buf[:])
}

func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) str(s string) {
	b.u32(uint32(len(s)))
	b.bytes([]byte(s))
}

func (b *binWriter) bytes(p []byte) {
	if b.err == nil {
		b.crc = crc32.Update(b.crc, snapCRC, p)
		_, b.err = b.w.Write(p)
	}
}

// trailer writes the running checksum itself (not folded into the CRC).
func (b *binWriter) trailer() {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], b.crc)
	if b.err == nil {
		_, b.err = b.w.Write(buf[:])
	}
}

type binReader struct {
	r   *bufio.Reader
	crc uint32
	err error
}

func (b *binReader) u8() uint8 {
	var buf [1]byte
	b.bytes(buf[:])
	return buf[0]
}

func (b *binReader) u32() uint32 {
	var buf [4]byte
	b.bytes(buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (b *binReader) u64() uint64 {
	var buf [8]byte
	b.bytes(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

func (b *binReader) str() string {
	n := b.u32()
	if b.err != nil {
		return ""
	}
	if n > maxSnapStr {
		b.err = fmt.Errorf("online: snapshot string length %d exceeds bound", n)
		return ""
	}
	buf := make([]byte, n)
	b.bytes(buf)
	return string(buf)
}

func (b *binReader) bytes(p []byte) {
	if b.err != nil {
		return
	}
	if _, b.err = io.ReadFull(b.r, p); b.err == nil {
		b.crc = crc32.Update(b.crc, snapCRC, p)
	}
}

// checkTrailer consumes the 4-byte checksum (outside the running CRC)
// and compares it against everything read so far.
func (b *binReader) checkTrailer() {
	if b.err != nil {
		return
	}
	var buf [4]byte
	if _, b.err = io.ReadFull(b.r, buf[:]); b.err != nil {
		b.err = fmt.Errorf("reading checksum trailer: %w", b.err)
		return
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != b.crc {
		b.err = fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", got, b.crc)
	}
}

// snapEntity is one captured (id, attributes) pair of a snapshot write.
type snapEntity struct {
	id    int64
	attrs []entity.Attribute
}

// captureLocked collects the writer-side state a snapshot needs. Callers
// hold r.mu; the attribute slices are shared, which is safe because they
// are copied on insert and never mutated while resident. For an
// HNSW-backed resolver the capture includes a frozen graph snapshot —
// an O(n) header copy, not a serialization; the expensive streaming
// happens outside the lock.
func (r *Resolver) captureLocked() (Config, int64, []snapEntity, *knn.HNSWSnapshot) {
	ents := make([]snapEntity, 0, len(r.attrs))
	for id, attrs := range r.attrs {
		ents = append(ents, snapEntity{id: id, attrs: attrs})
	}
	if r.tier != nil {
		// The flushed bulk joins the capture: a disk-backed resolver's
		// snapshot is the same full-collection stream a memory one
		// writes, so Save/Load round-trips are storage-agnostic.
		r.tier.View().EachLive(func(id int64, attrs []entity.Attribute) {
			ents = append(ents, snapEntity{id: id, attrs: attrs})
		})
	}
	var graph *knn.HNSWSnapshot
	if g, ok := r.kn.(hnswDense); ok {
		graph = g.IncHNSW.Freeze()
	}
	return r.cfg, r.nextID, ents, graph
}

// graphWriter and graphReader adapt the outer CRC'd stream as plain
// io.Writer/io.Reader, so the embedded knn graph section — which carries
// its own magic and checksum — also counts toward the outer trailer.
type graphWriter struct{ b *binWriter }

func (g graphWriter) Write(p []byte) (int, error) {
	g.b.bytes(p)
	if g.b.err != nil {
		return 0, g.b.err
	}
	return len(p), nil
}

type graphReader struct{ b *binReader }

func (g graphReader) Read(p []byte) (int, error) {
	g.b.bytes(p)
	if g.b.err != nil {
		return 0, g.b.err
	}
	return len(p), nil
}

// writeSnapshot streams one consistent captured state in the snapshot
// format; ents may be unsorted and is sorted in place. graph is nil for
// every configuration except a directly-saved HNSW resolver.
func writeSnapshot(w io.Writer, c Config, nextID int64, ents []snapEntity, graph *knn.HNSWSnapshot) error {
	sort.Slice(ents, func(i, j int) bool { return ents[i].id < ents[j].id })

	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.bytes([]byte(snapMagic))
	writeConfig(bw, c)

	bw.u64(uint64(nextID))
	bw.u32(uint32(len(ents)))
	for _, e := range ents {
		bw.u64(uint64(e.id))
		bw.u32(uint32(len(e.attrs)))
		for _, a := range e.attrs {
			bw.str(a.Name)
			bw.str(a.Value)
		}
	}
	if graph != nil {
		bw.u8(1)
		if bw.err == nil {
			if err := graph.Save(graphWriter{bw}); err != nil && bw.err == nil {
				bw.err = err
			}
		}
	} else {
		bw.u8(0)
	}
	bw.trailer()
	if bw.err != nil {
		return fmt.Errorf("online: saving snapshot: %w", bw.err)
	}
	return bw.w.Flush()
}

// Save writes the resolver — configuration, id counter and every resident
// entity — to w in the binary snapshot format. The writer lock is held
// only while the entity map is captured, not while w is written, so a
// slow destination (e.g. a stalled HTTP client draining /snapshot) never
// blocks inserts and deletes; the result is still a consistent cut as of
// one epoch. Concurrent queries are unaffected throughout.
func (r *Resolver) Save(w io.Writer) error {
	r.mu.Lock()
	c, nextID, ents, graph := r.captureLocked()
	r.mu.Unlock()
	return writeSnapshot(w, c, nextID, ents, graph)
}

// Load reconstructs a resolver from a snapshot written by Save. The
// incremental indexes are rebuilt by replaying the entities in id order
// — or, when the snapshot embeds an HNSW graph section, restored
// verbatim (tombstones, adjacency and all), so the loaded resolver
// returns byte-identical query results either way. Any truncation or
// corruption of the stream — including a single flipped bit anywhere —
// returns an error; no partial state is ever served.
func Load(rd io.Reader) (*Resolver, error) {
	c, nextID, ents, graph, err := decodeSnapshot(rd)
	if err != nil {
		return nil, err
	}
	r := NewResolver(c)
	r.mu.Lock()
	defer r.mu.Unlock()
	if graph != nil {
		r.kn = hnswDense{graph}
		for _, e := range ents {
			r.attrs[e.id] = e.attrs
			r.inserts++
		}
	} else {
		for _, e := range ents {
			r.addLocked(e.id, e.attrs)
		}
	}
	r.nextID = nextID
	r.publishLocked()
	return r, nil
}

// decodeSnapshot reads and fully validates a snapshot stream — checksum
// included — before any caller builds index state from it, so a corrupt
// snapshot can never leave a partially loaded resolver behind. Entities
// come back in the stored strictly-ascending id order; the returned
// graph is non-nil only for an HNSW snapshot that embeds its section,
// and is validated against the entity set and the configuration before
// anything is returned.
func decodeSnapshot(rd io.Reader) (Config, int64, []snapEntity, *knn.IncHNSW, error) {
	fail := func(err error) (Config, int64, []snapEntity, *knn.IncHNSW, error) {
		return Config{}, 0, nil, nil, err
	}
	br := &binReader{r: bufio.NewReader(rd)}
	magic := make([]byte, len(snapMagic))
	br.bytes(magic)
	if br.err == nil && string(magic) != snapMagic {
		return fail(fmt.Errorf("online: not an erfilter snapshot (bad magic)"))
	}

	c := readConfig(br)
	if br.err != nil {
		return fail(fmt.Errorf("online: reading snapshot header: %w", br.err))
	}
	if err := validateConfig(c); err != nil {
		return fail(err)
	}

	nextID := int64(br.u64())
	count := br.u32()
	if br.err != nil {
		return fail(fmt.Errorf("online: reading snapshot counts: %w", br.err))
	}

	ents := make([]snapEntity, 0, min(int(count), 1<<16))
	var prev int64 = -1
	for i := uint32(0); i < count; i++ {
		id := int64(br.u64())
		nattrs := br.u32()
		if br.err == nil && nattrs > maxSnapAttr {
			br.err = fmt.Errorf("attribute count %d exceeds bound", nattrs)
		}
		if br.err != nil {
			return fail(fmt.Errorf("online: reading snapshot entity %d: %w", i, br.err))
		}
		attrs := make([]entity.Attribute, nattrs)
		for j := range attrs {
			attrs[j] = entity.Attribute{Name: br.str(), Value: br.str()}
		}
		if br.err != nil {
			return fail(fmt.Errorf("online: reading snapshot entity %d: %w", i, br.err))
		}
		if id <= prev || id >= nextID {
			return fail(fmt.Errorf("online: snapshot entity ids not strictly increasing below next id (%d after %d, next %d)", id, prev, nextID))
		}
		prev = id
		ents = append(ents, snapEntity{id: id, attrs: attrs})
	}

	var graph *knn.IncHNSW
	switch hasGraph := br.u8(); {
	case br.err != nil:
		return fail(fmt.Errorf("online: reading snapshot graph flag: %w", br.err))
	case hasGraph > 1:
		return fail(fmt.Errorf("online: snapshot has bad graph flag %d", hasGraph))
	case hasGraph == 1:
		if c.Dense != DenseHNSW {
			return fail(fmt.Errorf("online: snapshot embeds a graph section under a %s dense index", c.Dense))
		}
		var err error
		graph, err = knn.LoadHNSW(graphReader{br})
		if err != nil {
			return fail(fmt.Errorf("online: reading snapshot graph section: %w", err))
		}
	}
	if br.checkTrailer(); br.err != nil {
		return fail(fmt.Errorf("online: verifying snapshot: %w", br.err))
	}
	if graph != nil {
		if err := validateGraph(c, graph, ents); err != nil {
			return fail(err)
		}
	}
	return c, nextID, ents, graph, nil
}

// validateGraph cross-checks an embedded graph section against the
// snapshot it rode in on: same tuning, same metric, same dimensionality,
// and exactly the entity set as its live vectors. (Vector values are
// covered by the checksums, not recomputed.)
func validateGraph(c Config, graph *knn.IncHNSW, ents []snapEntity) error {
	if graph.Params() != c.HNSW.Normalized() {
		return fmt.Errorf("online: snapshot graph params %+v disagree with config %+v", graph.Params(), c.HNSW.Normalized())
	}
	if graph.Metric() != c.Metric {
		return fmt.Errorf("online: snapshot graph metric %s disagrees with config %s", graph.Metric(), c.Metric)
	}
	if graph.Len() > 0 && graph.Dim() != c.Dim {
		return fmt.Errorf("online: snapshot graph dim %d disagrees with config %d", graph.Dim(), c.Dim)
	}
	if graph.Len() != len(ents) {
		return fmt.Errorf("online: snapshot graph holds %d live vectors for %d entities", graph.Len(), len(ents))
	}
	for _, e := range ents {
		if !graph.Has(e.id) {
			return fmt.Errorf("online: snapshot graph is missing entity %d", e.id)
		}
	}
	return nil
}

// writeConfig encodes the serialized (filter-semantic) fields of a
// Config — the snapshot header, also pinned verbatim into the segment
// tier's manifest meta. Deployment-shape fields (Storage, SegmentDir,
// memtable/merge sizing) are deliberately not written: they describe
// where an index runs, not what it answers.
func writeConfig(bw *binWriter, c Config) {
	bw.u8(uint8(c.Method))
	bw.u8(uint8(c.Setting))
	bw.u8(boolByte(c.Clean))
	bw.u8(uint8(c.Model.N))
	bw.u8(boolByte(c.Model.Multiset))
	bw.u8(uint8(c.Measure))
	bw.u8(uint8(c.Metric))
	bw.u32(uint32(c.K))
	bw.f64(c.Threshold)
	bw.u32(uint32(c.Dim))
	bw.str(c.BestAttribute)
	bw.u8(uint8(c.Dense))
	bw.u32(uint32(c.HNSW.M))
	bw.u32(uint32(c.HNSW.EfConstruction))
	bw.u32(uint32(c.HNSW.EfSearch))
	bw.u64(c.HNSW.Seed)
}

// readConfig mirrors writeConfig; the caller checks br.err and then
// validateConfig.
func readConfig(br *binReader) Config {
	var c Config
	c.Method = Method(br.u8())
	c.Setting = entity.SchemaSetting(br.u8())
	c.Clean = br.u8() != 0
	c.Model = text.Model{N: int(br.u8()), Multiset: br.u8() != 0}
	c.Measure = sparse.Measure(br.u8())
	c.Metric = knn.Metric(br.u8())
	c.K = int(br.u32())
	c.Threshold = br.f64()
	c.Dim = int(br.u32())
	c.BestAttribute = br.str()
	c.Dense = DenseIndex(br.u8())
	c.HNSW = knn.HNSWParams{
		M:              int(br.u32()),
		EfConstruction: int(br.u32()),
		EfSearch:       int(br.u32()),
		Seed:           br.u64(),
	}
	return c
}

// addLocked indexes an entity under an explicit id (the snapshot replay
// path). Callers hold mu and guarantee ascending, unused ids.
func (r *Resolver) addLocked(id int64, attrs []entity.Attribute) {
	r.attrs[id] = attrs
	txt := r.cfg.TextOf(attrs)
	var err error
	if r.sp != nil {
		err = r.sp.Add(id, r.vocab.Encode(r.cfg.Model.Tokens(txt)))
	} else {
		err = r.kn.Add(id, r.emb.Text(txt))
	}
	if err != nil {
		panic(fmt.Sprintf("online: %v", err))
	}
	r.inserts++
}

// validateConfig range-checks every enum-like field deserialized by Load,
// so a corrupted or hand-crafted snapshot fails loudly instead of being
// served with out-of-range values that stringify as "unknown" and score
// everything as 0.
func validateConfig(c Config) error {
	if c.Method > FlatKNN {
		return fmt.Errorf("online: snapshot has unknown method %d", c.Method)
	}
	if c.Setting != entity.SchemaAgnostic && c.Setting != entity.SchemaBased {
		return fmt.Errorf("online: snapshot has unknown schema setting %d", c.Setting)
	}
	if c.Dense > DenseHNSW {
		return fmt.Errorf("online: snapshot has unknown dense index %d", c.Dense)
	}
	if c.Method != FlatKNN && c.Dense != DenseFlat {
		return fmt.Errorf("online: snapshot pairs sparse method %s with dense index %s", c.Method, c.Dense)
	}
	switch c.Method {
	case FlatKNN:
		if c.Metric != knn.DotProduct && c.Metric != knn.L2Squared {
			return fmt.Errorf("online: snapshot has unknown metric %d", c.Metric)
		}
		if c.Dense == DenseHNSW {
			if c.HNSW.M < 1 || c.HNSW.M > 1<<10 {
				return fmt.Errorf("online: snapshot has hnsw M %d out of range", c.HNSW.M)
			}
			if c.HNSW.EfConstruction < 1 || c.HNSW.EfConstruction > 1<<20 {
				return fmt.Errorf("online: snapshot has hnsw efConstruction %d out of range", c.HNSW.EfConstruction)
			}
			if c.HNSW.EfSearch < 1 || c.HNSW.EfSearch > 1<<20 {
				return fmt.Errorf("online: snapshot has hnsw efSearch %d out of range", c.HNSW.EfSearch)
			}
		}
	default: // sparse methods carry a representation model and a measure
		if c.Model.N < 1 || c.Model.N > 5 {
			return fmt.Errorf("online: snapshot has invalid model n-gram length %d (want 1..5)", c.Model.N)
		}
		if c.Measure < sparse.Cosine || c.Measure > sparse.Jaccard {
			return fmt.Errorf("online: snapshot has unknown measure %d", c.Measure)
		}
	}
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
