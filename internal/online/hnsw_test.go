package online

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
)

// onlineRecallGate is the floor the serving-path ANN tier must hold
// against the exact oracle, matching the gate in internal/knn.
const onlineRecallGate = 0.95

// recallOf computes tie-tolerant recall@k of an approximate answer
// against the oracle one: a hit is any approximate candidate scoring at
// or above the oracle's worst returned score (Candidate scores are
// higher-better for every method), capped so duplicates of the cutoff
// score cannot push recall past 1.
func recallOf(approx, exact []Candidate) float64 {
	if len(exact) == 0 {
		return 1
	}
	cutoff := exact[len(exact)-1].Score
	hit := 0
	for _, c := range approx {
		if c.Score >= cutoff {
			hit++
		}
	}
	if hit > len(exact) {
		hit = len(exact)
	}
	return float64(hit) / float64(len(exact))
}

// TestShardedHNSWRecallGateQuick is the serving-path recall gate: for
// random workloads (single and batch inserts, deletes past the shard
// compaction threshold) and shard counts 1..8, an HNSW-backed sharded
// resolver must (a) answer byte-identically to a flat-index oracle under
// QueryOptions{Exact: true} — the escape hatch is a real oracle, not a
// second approximation — and (b) keep approximate recall@k at or above
// onlineRecallGate, including after a snapshot round-trip into a
// different shard count, which rebuilds every shard graph by replay.
func TestShardedHNSWRecallGateQuick(t *testing.T) {
	flatCfg := testConfigs()["flat"]
	hnswCfg := testConfigs()["hnsw"]
	trials := 6
	if testing.Short() {
		trials = 2
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := 1 + rng.Intn(8)
		oracle := NewResolver(flatCfg)
		sharded := NewSharded(hnswCfg, shards)
		inserts := 160 + rng.Intn(140)
		deletes := 70 + rng.Intn(80)
		applyOps(rng, oracle, sharded, inserts, deletes)
		label := fmt.Sprintf("seed=%d shards=%d", seed, shards)

		assertGate := func(phase string, sr *ShardedResolver) {
			for p := 0; p < 12; p++ {
				probe := attrsText(fmt.Sprintf("%s probe %d", corpus[rng.Intn(len(corpus))], rng.Intn(40)))
				want := oracle.Query(probe, QueryOptions{K: 10})
				exact := sr.Query(probe, QueryOptions{K: 10, Exact: true})
				jw, _ := json.Marshal(want)
				je, _ := json.Marshal(exact)
				if !bytes.Equal(jw, je) {
					t.Fatalf("%s %s: exact query %q diverged from flat oracle:\n oracle: %s\n  exact: %s",
						label, phase, probe[0].Value, jw, je)
				}
				approx := sr.Query(probe, QueryOptions{K: 10})
				if r := recallOf(approx, want); r < onlineRecallGate {
					t.Fatalf("%s %s: query %q recall@10 %.3f below gate %.2f\n oracle: %s\n approx: %v",
						label, phase, probe[0].Value, r, onlineRecallGate, jw, approx)
				}
			}
		}
		assertGate("live", sharded)

		// Round-trip into a different shard count: sharded snapshots carry
		// no graphs, so this exercises the replay-rebuild restore path.
		var buf bytes.Buffer
		if err := sharded.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", label, err)
		}
		reShards := 1 + rng.Intn(8)
		reloaded, err := LoadSharded(bytes.NewReader(buf.Bytes()), reShards)
		if err != nil {
			t.Fatalf("%s: load into %d shards: %v", label, reShards, err)
		}
		assertGate(fmt.Sprintf("reloaded@%d", reShards), reloaded)
		return !t.Failed()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: trials}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStoreCrashRecoveryHNSW extends the crash property to the
// ANN tier: checkpoints embed the per-shard HNSW graphs, WAL replay
// rebuilds the tail, and after a torn-tail power failure the reopened
// store must hold exactly the acked writes, answer byte-identically to
// a batch oracle under QueryOptions{Exact: true}, and keep the
// approximate path at or above the recall gate.
func TestShardedStoreCrashRecoveryHNSW(t *testing.T) {
	cfg := testConfigs()["hnsw"]
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + 5))
			shards := 1 + rng.Intn(4)
			m := faultfs.NewMem()
			ss, err := OpenShardedStore(storeDir, cfg, shards, StoreOptions{FS: m, SegmentBytes: 512})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			m.LimitWrites(int64(400 + rng.Intn(8000)))

			model := map[int64][]entity.Attribute{}
			var nextID int64
			crashed := false
			for op := 0; op < 150 && !crashed; op++ {
				switch {
				case op%23 == 22:
					// Checkpoints on this config serialize the shard
					// graphs inline — the path the flat crash test
					// never reaches.
					_ = ss.Checkpoint()
					if ok, _ := ss.Ready(); !ok {
						crashed = true
					}
				case rng.Intn(4) == 0 && len(model) > 0:
					ids := keysOf(model)
					id := ids[rng.Intn(len(ids))]
					ok, err := ss.Delete(id)
					if err != nil {
						crashed = true
						break
					}
					if !ok {
						t.Fatalf("delete of resident %d reported missing", id)
					}
					delete(model, id)
				default:
					txt := fmt.Sprintf("%s variant %d", corpus[rng.Intn(len(corpus))], op)
					id, err := ss.Insert(attrsText(txt))
					if err != nil {
						crashed = true
						break
					}
					if id != nextID {
						t.Fatalf("acked insert id %d, want %d", id, nextID)
					}
					model[id] = attrsText(txt)
					nextID++
				}
			}
			if !crashed {
				if err := ss.Close(); err != nil {
					t.Fatalf("clean close: %v", err)
				}
			}
			m.Crash()
			m.Restart(func(name string, unsynced int) int { return rng.Intn(unsynced + 1) })

			ss2, err := OpenShardedStore(storeDir, cfg, shards, StoreOptions{FS: m})
			if err != nil {
				t.Fatalf("recovery failed (crashed=%v, shards=%d): %v", crashed, shards, err)
			}
			defer ss2.Close()
			if got := shardedResidents(ss2); !reflect.DeepEqual(got, model) {
				t.Fatalf("recovered %d residents, want %d acked (crashed=%v, shards=%d)\n got: %v\nwant: %v",
					len(got), len(model), crashed, shards, keysOf(got), keysOf(model))
			}
			oracle := batchOver(cfg, model)
			for _, probe := range probeTexts {
				want := oracle.Query(attrsText(probe), QueryOptions{K: 10, Exact: true})
				got := ss2.Resolver().Query(attrsText(probe), QueryOptions{K: 10, Exact: true})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: exact query %q diverged: recovered %v, oracle %v", trial, probe, got, want)
				}
				approx := ss2.Resolver().Query(attrsText(probe), QueryOptions{K: 10})
				if r := recallOf(approx, want); r < onlineRecallGate {
					t.Fatalf("trial %d: query %q recall@10 %.3f below gate %.2f (approx %v, oracle %v)",
						trial, probe, r, onlineRecallGate, approx, want)
				}
			}
			id, err := ss2.Insert(attrsText("post recovery insert"))
			if err != nil {
				t.Fatalf("insert after recovery: %v", err)
			}
			if id < nextID {
				t.Fatalf("recovered store reused id %d (acked next %d)", id, nextID)
			}
		})
	}
}
