package online

import (
	"fmt"
	"sync/atomic"
	"testing"

	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

var benchWords = []string{
	"canon", "nikon", "sony", "olympus", "panasonic", "powershot",
	"coolpix", "cybershot", "digital", "camera", "compact", "zoom",
	"lens", "black", "silver", "battery", "charger", "kit", "mp", "hd",
}

func benchAttrs(i int) []entity.Attribute {
	w := func(j int) string { return benchWords[(i*7+j*13)%len(benchWords)] }
	return attrsText(fmt.Sprintf("%s %s %s %d %s %s", w(0), w(1), w(2), i%97, w(3), w(4)))
}

func benchResolver(cfg Config, n int) *Resolver {
	r := NewResolver(cfg)
	batch := make([][]entity.Attribute, n)
	for i := range batch {
		batch[i] = benchAttrs(i)
	}
	r.InsertBatch(batch)
	return r
}

func benchConfigs() map[string]Config {
	c3g, _ := text.ParseModel("C3G")
	return map[string]Config{
		"knnj-C3G":  {Method: KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 10},
		"eps-C3G":   {Method: EpsJoin, Model: c3g, Measure: sparse.Jaccard, Threshold: 0.5},
		"flat-d300": {Method: FlatKNN, K: 10, Metric: knn.L2Squared},
	}
}

// disableTelemetry nils every metric the resolver records into. All
// metric methods are nil-receiver safe, so this is the disable seam the
// bare benchmark uses to measure the serving path with instrumentation
// compiled in but not recording.
func (r *Resolver) disableTelemetry() {
	*r.tel = telemetry{}
}

func benchServeQuery(b *testing.B, cfg Config, bare bool) {
	const preload = 2000
	r := benchResolver(cfg, preload)
	if bare {
		r.disableTelemetry()
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var qn atomic.Int64
	go func() {
		defer close(done)
		next := preload
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Pace writes off the query counter so the mix stays
			// roughly 8 reads : 1 write at any parallelism.
			if qn.Load() < int64(i*8) {
				continue
			}
			id := r.Insert(benchAttrs(next))
			next++
			if i%2 == 0 {
				r.Delete(id - int64(preload/2))
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := benchAttrs(i * 31)
			r.Query(q, QueryOptions{})
			qn.Add(1)
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkServeQuery is the load-generator benchmark of the serving
// path: parallel readers issue top-k queries against the published
// snapshot while one writer goroutine sustains a mixed insert/delete
// stream (one mutation batch per ~8 queries), mimicking an online
// resolver under combined traffic. Reported time is per query, with
// the standard telemetry (latency histograms, pool counters) recording.
func BenchmarkServeQuery(b *testing.B) {
	for name, cfg := range benchConfigs() {
		b.Run(name, func(b *testing.B) { benchServeQuery(b, cfg, false) })
	}
}

// BenchmarkServeQueryBare is the identical workload with every metric
// nilled out — the baseline that prices the observability layer. Compare
// with BenchmarkServeQuery (make bench-obs); the instrumented run should
// stay within ~5% of this one.
func BenchmarkServeQueryBare(b *testing.B) {
	for name, cfg := range benchConfigs() {
		b.Run(name, func(b *testing.B) { benchServeQuery(b, cfg, true) })
	}
}

// BenchmarkServeInsert measures the write path alone: one entity insert
// including the epoch publish (freeze + pointer swap).
func BenchmarkServeInsert(b *testing.B) {
	c3g, _ := text.ParseModel("C3G")
	cfg := Config{Method: KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 10}
	r := benchResolver(cfg, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Insert(benchAttrs(2000 + i))
	}
}

// BenchmarkStoreInsert is the durable counterpart of BenchmarkServeInsert:
// the same insert through the WAL on a real file system, fsynced before
// the ack. The sequential case pays one fsync per insert; the parallel
// case shows group commit amortizing the fsync across writers.
func BenchmarkStoreInsert(b *testing.B) {
	c3g, _ := text.ParseModel("C3G")
	cfg := Config{Method: KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 10}
	open := func(b *testing.B) *Store {
		b.Helper()
		s, err := OpenStore(b.TempDir(), cfg, StoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		batch := make([][]entity.Attribute, 2000)
		for i := range batch {
			batch[i] = benchAttrs(i)
		}
		if _, err := s.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("sequential", func(b *testing.B) {
		s := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Insert(benchAttrs(2000 + i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(s.Stats().WAL.Syncs)/float64(b.N), "fsyncs/op")
	})
	b.Run("parallel", func(b *testing.B) {
		s := open(b)
		var n atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(n.Add(1))
				if _, err := s.Insert(benchAttrs(2000 + i)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(s.Stats().WAL.Syncs)/float64(b.N), "fsyncs/op")
	})
}
