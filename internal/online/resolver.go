package online

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/metrics"
	"erfilter/internal/segment"
	"erfilter/internal/sparse"
	"erfilter/internal/vector"
)

// Candidate is one query answer: a resident entity and its score under
// the resolver's configuration. Higher scores are better for every
// method: sparse methods report the set similarity, FlatKNN reports the
// negated metric score (the inner product under DotProduct, the negated
// squared distance under L2Squared).
type Candidate struct {
	ID    int64
	Score float64
}

// QueryOptions overrides per-query parameters; zero values fall back to
// the resolver's tuned configuration.
type QueryOptions struct {
	// K overrides the cardinality threshold of KNNJoin and FlatKNN.
	K int
	// Threshold overrides the ε-Join similarity threshold when > 0.
	Threshold float64
	// Ef overrides the beam width of approximate dense (HNSW) queries
	// when > 0: wider beams trade latency for recall. Ignored by every
	// exact index.
	Ef int
	// Exact forces a brute-force scan over the live vectors even when
	// the resolver serves an approximate index — the per-query escape
	// hatch when a caller needs oracle answers (and the equivalence the
	// crash-recovery tests assert). Ignored by already-exact indexes.
	Exact bool
	// Predicate, when non-nil, restricts candidates to entities whose
	// stored attributes satisfy it. The predicate is pushed down into
	// the query: cardinality cuts (FlatKNN's top-k, KNNJoin's k distinct
	// similarity values) are applied to the matching candidates only, by
	// over-fetching and re-cutting until k matches are found or the
	// index is exhausted — so a filtered query returns exactly what an
	// unfiltered query over the matching sub-collection would. The
	// predicate must be pure and safe for concurrent use.
	Predicate func(attrs []entity.Attribute) bool
	// MinScore, when non-nil, drops candidates scoring below it before
	// the cardinality cut, under the same pushdown semantics as
	// Predicate. A pointer because 0 is meaningful: FlatKNN scores are
	// negated distances, so every candidate scores <= 0.
	MinScore *float64
}

// filtered reports whether the options carry a pushdown filter.
func (o QueryOptions) filtered() bool {
	return o.Predicate != nil || o.MinScore != nil
}

// denseIndex is the pluggable write-side seam over the incremental dense
// indexes: IncFlat (exact) and IncHNSW (approximate) both satisfy it, so
// every write path — inserts, deletes, compaction, WAL replay — is
// index-agnostic.
type denseIndex interface {
	Add(id int64, v vector.Vec) error
	Remove(id int64) bool
	Compact()
	Len() int
	Dead() int
	Freeze() denseSnap
}

// denseSnap is the read-side counterpart: an immutable snapshot any
// number of goroutines may search.
type denseSnap interface {
	Len() int
	Search(q vector.Vec, k int) []knn.IncResult
}

type flatDense struct{ *knn.IncFlat }

func (f flatDense) Freeze() denseSnap { return f.IncFlat.Freeze() }

type hnswDense struct{ *knn.IncHNSW }

func (h hnswDense) Freeze() denseSnap { return h.IncHNSW.Freeze() }

// Stats is a point-in-time summary of a resolver.
type Stats struct {
	Epoch       uint64 `json:"epoch"`
	Entities    int    `json:"entities"`
	Tombstones  int    `json:"tombstones"`
	VocabSize   int    `json:"vocab_size,omitempty"`
	Inserts     uint64 `json:"inserts"`
	Deletes     uint64 `json:"deletes"`
	Queries     uint64 `json:"queries"`
	Compactions uint64 `json:"compactions"`
	Config      string `json:"config"`
	// Segments and DiskBytes describe the on-disk tier of a
	// StorageDisk resolver; both are zero under StorageMemory.
	Segments  int   `json:"segments,omitempty"`
	DiskBytes int64 `json:"disk_bytes,omitempty"`
}

// compactMinDead and compactRatio set the tombstone-triggered compaction
// policy: compact once at least compactMinDead slots are dead AND the
// dead slots are at least 1/compactRatio of all slots.
const (
	compactMinDead = 64
	compactRatio   = 2
)

// Resolver holds one tuned filter configuration as a long-lived, mutable,
// concurrently-queryable index over a growing collection of entities.
//
// Writers (Insert/Delete/Load) serialize on an internal mutex, apply the
// mutation to the single-writer incremental index, and publish a fresh
// immutable Snapshot with an atomic pointer swap. Readers load the
// current snapshot pointer and query it without taking any lock, so
// query latency is unaffected by concurrent ingest; a query observes the
// resolver exactly as of some published epoch.
type Resolver struct {
	cfg Config

	mu      sync.Mutex // serializes all writers and the fields below
	attrs   map[int64][]entity.Attribute
	nextID  int64
	epoch   uint64
	inserts uint64
	deletes uint64
	compact uint64

	// Exactly one of sp (sparse methods) or kn (dense) is non-nil.
	vocab *Vocab
	sp    *sparse.IncIndex
	kn    denseIndex
	emb   *vector.Embedder // writer-side embedding cache (dense only)

	// tier is the on-disk segment store of a StorageDisk resolver (nil
	// under StorageMemory). The in-memory index above doubles as the
	// memtable: once it holds MemtableCap entities a flush drains it
	// into a new immutable segment. autoFlush enables that cap check on
	// the volatile insert paths; the durable Store drives flushes
	// itself so they can be fenced against the WAL.
	tier      *segment.Tier
	autoFlush bool

	snap    atomic.Pointer[Snapshot]
	queries atomic.Uint64
	scratch sync.Pool // *sparse.Scratch, shared by all snapshots
	embed   sync.Pool // *vector.Embedder query-side caches (dense only)

	tel *telemetry // always non-nil; individual metrics may be nil
}

// telemetry is the resolver's always-on instrumentation: latency
// histograms for the two costs that define serving behaviour (query
// time and the freeze step of an epoch publish) plus hit counters for
// the two query-side object pools. Every metric is nil-safe, so zeroing
// a field disables its recording — the seam the bare-vs-instrumented
// overhead benchmark uses.
type telemetry struct {
	queryNS       *metrics.Histogram // per-query latency, ns
	freezeNS      *metrics.Histogram // publishLocked freeze cost, ns
	scratchGets   *metrics.Counter   // sparse scratch pool fetches
	scratchMisses *metrics.Counter   // ... that allocated fresh
	embedGets     *metrics.Counter   // dense embedder pool fetches
	embedMisses   *metrics.Counter   // ... that allocated fresh

	// ANN serving telemetry (hnsw only). Every recallProbePeriod-th
	// approximate query also runs the exact oracle and scores overlap,
	// so live recall is observable as hits/want without paying the
	// brute-force cost on every request.
	exactQueries *metrics.Counter // queries forced to the exact path
	recallHits   *metrics.Counter // probe results at/above the oracle cutoff
	recallWant   *metrics.Counter // probe oracle result count
	probeTick    uint64           // atomic; probe sampling counter
}

func newTelemetry() *telemetry {
	return &telemetry{
		queryNS:       &metrics.Histogram{},
		freezeNS:      &metrics.Histogram{},
		scratchGets:   &metrics.Counter{},
		scratchMisses: &metrics.Counter{},
		embedGets:     &metrics.Counter{},
		embedMisses:   &metrics.Counter{},
		exactQueries:  &metrics.Counter{},
		recallHits:    &metrics.Counter{},
		recallWant:    &metrics.Counter{},
	}
}

// recallProbePeriod is the sampling stride of the live recall probe: one
// in this many approximate queries is double-checked against the exact
// oracle. Probing is disabled whenever the recall counters are nil.
const recallProbePeriod = 64

// NewResolver creates an empty resolver serving the configuration and
// publishes its epoch-0 snapshot.
func NewResolver(cfg Config) *Resolver {
	cfg = cfg.normalize()
	r := &Resolver{cfg: cfg, attrs: make(map[int64][]entity.Attribute), tel: newTelemetry()}
	tel := r.tel
	r.scratch.New = func() any { tel.scratchMisses.Inc(); return &sparse.Scratch{} }
	r.embed.New = func() any { tel.embedMisses.Inc(); return vector.NewEmbedder(cfg.Dim) }
	if cfg.Method == FlatKNN {
		if cfg.Dense == DenseHNSW {
			r.kn = hnswDense{knn.NewIncHNSW(cfg.Metric, cfg.HNSW)}
		} else {
			r.kn = flatDense{knn.NewIncFlat(cfg.Metric)}
		}
		r.emb = vector.NewEmbedder(cfg.Dim)
	} else {
		r.sp = sparse.NewIncIndex()
		r.vocab = NewVocab()
	}
	r.mu.Lock()
	r.publishLocked()
	r.mu.Unlock()
	return r
}

// Config returns the resolver's configuration.
func (r *Resolver) Config() Config { return r.cfg }

// Insert adds one entity and publishes a new epoch. The assigned id is
// returned; ids are monotonically increasing and never reused.
func (r *Resolver) Insert(attrs []entity.Attribute) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.insertLocked(attrs)
	r.maybeFlushLocked()
	r.publishLocked()
	return id
}

// InsertBatch adds many entities under a single epoch publish, the bulk
// ingest path.
func (r *Resolver) InsertBatch(batch [][]entity.Attribute) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]int64, len(batch))
	for i, attrs := range batch {
		ids[i] = r.insertLocked(attrs)
		r.maybeFlushLocked()
	}
	r.publishLocked()
	return ids
}

// InsertDataset bulk-loads every profile of a dataset (the CSV path).
func (r *Resolver) InsertDataset(d *entity.Dataset) []int64 {
	batch := make([][]entity.Attribute, d.Len())
	for i := range d.Profiles {
		batch[i] = d.Profiles[i].Attrs
	}
	return r.InsertBatch(batch)
}

// InsertAssigned adds entities under caller-assigned ids in one epoch
// publish — the sharded ingest path, where a global counter allocates
// ids and routes each entity to exactly one shard. Callers guarantee
// the ids are unused; they need not arrive in ascending order.
func (r *Resolver) InsertAssigned(ids []int64, batch [][]entity.Attribute) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, attrs := range batch {
		r.addLocked(ids[i], append([]entity.Attribute(nil), attrs...))
		if ids[i] >= r.nextID {
			r.nextID = ids[i] + 1
		}
		r.maybeFlushLocked()
	}
	r.publishLocked()
}

// maybeFlushLocked drains the memtable to a new segment when a
// volatile disk-backed resolver crosses its cap. Callers hold mu.
// Volatile resolvers have no WAL to retreat to, so a flush failure is
// as fatal as the addLocked panic on an index error.
func (r *Resolver) maybeFlushLocked() {
	if r.tier == nil || !r.autoFlush || len(r.attrs) < r.cfg.MemtableCap {
		return
	}
	if err := r.flushLocked(); err != nil {
		panic(fmt.Sprintf("online: memtable flush: %v", err))
	}
}

func (r *Resolver) insertLocked(attrs []entity.Attribute) int64 {
	id := r.nextID
	r.nextID++
	r.addLocked(id, append([]entity.Attribute(nil), attrs...))
	return id
}

// Delete tombstones the entity, compacts the index when the tombstone
// policy triggers, and publishes a new epoch. It reports whether the id
// was resident. On a disk-backed resolver an id absent from the
// memtable may still live in the segment tier, where the delete lands
// as a tier tombstone that the next merge garbage-collects.
func (r *Resolver) Delete(id int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deleteLocked(id)
}

func (r *Resolver) deleteLocked(id int64) bool {
	var ok bool
	if r.sp != nil {
		ok = r.sp.Remove(id)
	} else {
		ok = r.kn.Remove(id)
	}
	if !ok {
		if r.tier != nil && r.tier.Delete(id) {
			r.deletes++
			r.publishLocked()
			return true
		}
		return false
	}
	delete(r.attrs, id)
	r.deletes++
	r.maybeCompactLocked()
	r.publishLocked()
	return true
}

func (r *Resolver) maybeCompactLocked() {
	dead, total := 0, 0
	if r.sp != nil {
		dead, total = r.sp.Dead(), r.sp.Dead()+r.sp.Len()
	} else {
		dead, total = r.kn.Dead(), r.kn.Dead()+r.kn.Len()
	}
	if dead < compactMinDead || dead*compactRatio < total {
		return
	}
	if r.sp != nil {
		r.sp.Compact()
	} else {
		r.kn.Compact()
	}
	r.compact++
}

// publishLocked freezes the write-side state into an immutable snapshot
// and swaps it in. Callers hold mu. The freeze is the only part of a
// publish whose cost grows with the collection, so it is the part the
// telemetry times.
func (r *Resolver) publishLocked() {
	r.epoch++
	s := &Snapshot{
		cfg:      r.cfg,
		epoch:    r.epoch,
		getAttrs: r.attrsRef,
		queries:  &r.queries,
		scratch:  &r.scratch,
		embed:    &r.embed,
		tel:      r.tel,
	}
	begin := time.Now()
	if r.sp != nil {
		s.dict = r.vocab.Frozen()
		s.sp = r.sp.Freeze()
		s.count = s.sp.Len()
	} else {
		s.kn = r.kn.Freeze()
		s.count = s.kn.Len()
	}
	if r.tier != nil {
		s.tier = r.tier.View()
		s.count += s.tier.Live()
	}
	r.tel.freezeNS.ObserveDuration(time.Since(begin))
	r.snap.Store(s)
}

// Snapshot returns the currently published immutable snapshot.
func (r *Resolver) Snapshot() *Snapshot { return r.snap.Load() }

// Query answers against the currently published snapshot; see
// Snapshot.Query.
func (r *Resolver) Query(attrs []entity.Attribute, opt QueryOptions) []Candidate {
	return r.Snapshot().Query(attrs, opt)
}

// Get returns a copy of the attributes of a resident entity, whether
// it lives in the memtable or a flushed segment.
func (r *Resolver) Get(id int64) ([]entity.Attribute, bool) {
	attrs, ok := r.attrsRef(id)
	if !ok {
		return nil, false
	}
	return append([]entity.Attribute(nil), attrs...), true
}

// attrsRef is Get without the defensive copy — the predicate-pushdown
// hot path, which may consult attributes for every over-fetched
// candidate. Stored attribute slices are never mutated after insert
// (insertLocked copies; deletes only drop the map entry), so readers
// may hold the slice across the unlock; they must not modify it.
func (r *Resolver) attrsRef(id int64) ([]entity.Attribute, bool) {
	r.mu.Lock()
	attrs, ok := r.attrs[id]
	tier := r.tier
	r.mu.Unlock()
	if ok {
		return attrs, true
	}
	if tier != nil {
		return tier.View().Get(id)
	}
	return nil, false
}

// Len returns the number of resident (non-deleted) entities.
func (r *Resolver) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.attrs)
	if r.tier != nil {
		n += r.tier.View().Live()
	}
	return n
}

// IDs returns the ids of every resident entity in ascending order,
// whether it lives in the memtable or a flushed segment. The match
// stage's dirty-cluster rebuild walks this after a snapshot load or a
// WAL replay, when insertion order is no longer recoverable.
func (r *Resolver) IDs() []int64 {
	r.mu.Lock()
	ids := make([]int64, 0, len(r.attrs))
	for id := range r.attrs {
		ids = append(ids, id)
	}
	tier := r.tier
	r.mu.Unlock()
	if tier != nil {
		tier.View().EachLive(func(id int64, _ []entity.Attribute) {
			ids = append(ids, id)
		})
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// A freshly replayed WAL can leave an entity both in the memtable
	// and (as a stale duplicate) in a segment; residency semantics
	// dedupe them, so the id list must too.
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Close releases the segment tier of a disk-backed resolver (waiting
// out any background merge and unmapping every segment). Callers must
// have drained queries; Close on a memory resolver is a no-op.
func (r *Resolver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tier == nil {
		return nil
	}
	return r.tier.Close()
}

// Stats summarizes the resolver.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Epoch:       r.epoch,
		Entities:    len(r.attrs),
		Inserts:     r.inserts,
		Deletes:     r.deletes,
		Compactions: r.compact,
		Queries:     r.queries.Load(),
		Config:      r.cfg.Describe(),
	}
	if r.sp != nil {
		st.Tombstones = r.sp.Dead()
		st.VocabSize = r.vocab.Len()
	} else {
		st.Tombstones = r.kn.Dead()
	}
	if r.tier != nil {
		v := r.tier.View()
		st.Entities += v.Live()
		st.Tombstones += v.Tombstones()
		st.Segments = v.Segments()
		st.DiskBytes = v.DiskBytes()
	}
	return st
}

// RegisterMetrics exposes the resolver's telemetry under the registry:
// per-method query latency, epoch-publish and compaction counters, the
// freeze cost of each publish, and the hit rates of the query-side
// scratch/embedder pools (hits = gets - misses).
func (r *Resolver) RegisterMetrics(reg *metrics.Registry) {
	method := metrics.Labels{"method": r.cfg.methodLabel()}
	reg.RegisterHistogram("online_query_duration_seconds",
		"Per-query latency (text assembly + index search).", method, 1e-9, r.tel.queryNS)
	reg.RegisterHistogram("online_publish_freeze_duration_seconds",
		"Freeze cost of each epoch publish (the write-stall component).", nil, 1e-9, r.tel.freezeNS)
	reg.CounterFunc("online_epoch_publishes_total",
		"Snapshot epochs published.", nil,
		func() float64 { return float64(r.Stats().Epoch) })
	reg.CounterFunc("online_compactions_total",
		"Tombstone-triggered index compactions.", nil,
		func() float64 { return float64(r.Stats().Compactions) })
	reg.CounterFunc("online_inserts_total",
		"Entities inserted since start.", nil,
		func() float64 { return float64(r.Stats().Inserts) })
	reg.CounterFunc("online_deletes_total",
		"Entities deleted since start.", nil,
		func() float64 { return float64(r.Stats().Deletes) })
	reg.GaugeFunc("online_entities",
		"Resident (non-deleted) entities.", nil,
		func() float64 { return float64(r.Len()) })
	reg.GaugeFunc("online_tombstones",
		"Dead index slots awaiting compaction.", nil,
		func() float64 { return float64(r.Stats().Tombstones) })
	if r.cfg.Method == FlatKNN {
		reg.RegisterCounter("online_embedder_pool_gets_total",
			"Query-side embedder pool fetches.", nil, r.tel.embedGets)
		reg.RegisterCounter("online_embedder_pool_misses_total",
			"Embedder pool fetches that allocated a fresh embedder.", nil, r.tel.embedMisses)
		if r.cfg.Dense == DenseHNSW {
			reg.RegisterCounter("online_ann_exact_queries_total",
				"Dense queries forced to the exact brute-force path.", nil, r.tel.exactQueries)
			reg.RegisterCounter("online_ann_recall_probe_hits_total",
				"Sampled-probe approximate results at or above the oracle cutoff.", nil, r.tel.recallHits)
			reg.RegisterCounter("online_ann_recall_probe_expected_total",
				"Sampled-probe oracle result count (recall = hits/expected).", nil, r.tel.recallWant)
		}
	} else {
		reg.RegisterCounter("online_scratch_pool_gets_total",
			"Query-side sparse scratch pool fetches.", nil, r.tel.scratchGets)
		reg.RegisterCounter("online_scratch_pool_misses_total",
			"Scratch pool fetches that allocated fresh scratch space.", nil, r.tel.scratchMisses)
	}
	if r.tier != nil {
		r.tier.RegisterMetrics(reg, nil)
	}
}

// Snapshot is an immutable view of a resolver as of one published epoch.
// Any number of goroutines may query it concurrently; it never blocks
// and never observes later writes.
type Snapshot struct {
	cfg   Config
	epoch uint64
	count int
	dict  map[string]int32
	sp    *sparse.IncSnapshot
	kn    denseSnap
	tier  *segment.View // disk tier's read view (nil under StorageMemory)
	// getAttrs resolves a candidate id to its stored attributes for
	// predicate pushdown. It reads the live resolver (attribute slices
	// are immutable after insert, so the only post-publish drift is an
	// entity deleted since this epoch, whose candidates are simply
	// filtered out — the answer a query against the next epoch would
	// give anyway).
	getAttrs func(int64) ([]entity.Attribute, bool)
	queries  *atomic.Uint64
	scratch  *sync.Pool
	embed    *sync.Pool
	tel      *telemetry
}

// Trace is the phase breakdown of one traced query: how long the text
// assembly + representation step took (tokenize/encode for sparse
// methods, embed for dense), how long the index search took, and what
// the query saw. It is the per-request counterpart of the aggregate
// latency histograms — the tool for explaining one slow request rather
// than the distribution.
type Trace struct {
	Epoch      uint64        // snapshot epoch the query ran against
	Entities   int           // entities visible to the snapshot
	Encode     time.Duration // text assembly + tokenization/embedding
	Search     time.Duration // index probe
	Candidates int           // candidates returned (before any caller cap)
}

// Epoch returns the publish epoch of the snapshot.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Len returns the number of entities visible to the snapshot.
func (s *Snapshot) Len() int { return s.count }

// Attrs resolves a candidate id to its stored attributes — the seam the
// match stage uses to score candidate pairs. The returned slice is the
// resolver's own storage (never mutated after insert) and must not be
// modified.
func (s *Snapshot) Attrs(id int64) ([]entity.Attribute, bool) { return s.getAttrs(id) }

// Query resolves an incoming entity against the snapshot, returning the
// top candidates best first (ties broken by ascending id). The entity is
// put through exactly the same text assembly, cleaning, tokenization and
// embedding as the indexed entities were.
func (s *Snapshot) Query(attrs []entity.Attribute, opt QueryOptions) []Candidate {
	out, _ := s.QueryTraced(attrs, opt)
	return out
}

// QueryTraced answers exactly like Query and additionally returns the
// per-phase timing breakdown of this one request.
func (s *Snapshot) QueryTraced(attrs []entity.Attribute, opt QueryOptions) ([]Candidate, Trace) {
	res := s.acquire()
	defer s.release(res)
	return s.queryOne(attrs, opt, res)
}

// QueryBatch answers many queries against the same snapshot with one
// scratch/embedder pool checkout, amortizing the pool round-trip across
// a request's worth of queries. Results are identical to len(batch)
// individual Query calls. The returned Trace aggregates the batch:
// encode/search durations and candidate counts are summed.
func (s *Snapshot) QueryBatch(batch [][]entity.Attribute, opt QueryOptions) ([][]Candidate, Trace) {
	agg := Trace{Epoch: s.epoch, Entities: s.count}
	if len(batch) == 0 {
		return nil, agg
	}
	res := s.acquire()
	defer s.release(res)
	out := make([][]Candidate, len(batch))
	for i, attrs := range batch {
		var tr Trace
		out[i], tr = s.queryOne(attrs, opt, res)
		agg.Encode += tr.Encode
		agg.Search += tr.Search
		agg.Candidates += tr.Candidates
	}
	return out, agg
}

// queryRes is the pooled per-query state — sparse scratch space or a
// dense embedder, depending on the method — checked out once per query,
// or once per batch so QueryBatch pays the pool traffic a single time.
type queryRes struct {
	sc  *sparse.Scratch
	emb *vector.Embedder
}

func (s *Snapshot) acquire() queryRes {
	if s.cfg.Method == FlatKNN {
		// Pooled embedders keep their word-vector caches across queries,
		// mirroring the writer-side r.emb; embedding is deterministic, so
		// which pool member serves a query never changes the result.
		s.tel.embedGets.Inc()
		return queryRes{emb: s.embed.Get().(*vector.Embedder)}
	}
	s.tel.scratchGets.Inc()
	return queryRes{sc: s.scratch.Get().(*sparse.Scratch)}
}

func (s *Snapshot) release(res queryRes) {
	if res.emb != nil {
		s.embed.Put(res.emb)
	} else {
		s.scratch.Put(res.sc)
	}
}

func (s *Snapshot) queryOne(attrs []entity.Attribute, opt QueryOptions, res queryRes) ([]Candidate, Trace) {
	s.queries.Add(1)
	tr := Trace{Epoch: s.epoch, Entities: s.count}
	out := s.query(attrs, opt, &tr, res)
	tr.Candidates = len(out)
	s.tel.queryNS.Observe(tr.Encode.Nanoseconds() + tr.Search.Nanoseconds())
	return out, tr
}

func (s *Snapshot) query(attrs []entity.Attribute, opt QueryOptions, tr *Trace, res queryRes) []Candidate {
	k := s.cfg.K
	if opt.K > 0 {
		k = opt.K
	}
	if !opt.filtered() {
		return s.rawQuery(attrs, k, opt, tr, res)
	}
	return s.filteredQuery(attrs, k, opt, tr, res)
}

// filteredQuery answers a query whose options carry a pushdown filter,
// returning exactly what an unfiltered query over the sub-collection of
// matching entities would: the filter runs before the cardinality cut,
// not after it.
//
// EpsJoin needs no special handling — its answer is a threshold union
// with no cardinality cut, so filtering the union is filtering the
// universe. FlatKNN and KNNJoin over-fetch: probe at k', drop
// non-matching candidates, and either (a) enough matches survive to
// fill the cut (≥ k candidates for FlatKNN, ≥ k distinct similarity
// values for KNNJoin) or (b) the raw probe came back short of k', which
// proves the index has no further candidates to offer; otherwise double
// k' and retry. The loop terminates because k' eventually exceeds the
// collection size, at which point (b) must hold.
func (s *Snapshot) filteredQuery(attrs []entity.Attribute, k int, opt QueryOptions, tr *Trace, res queryRes) []Candidate {
	if s.cfg.Method == EpsJoin {
		return s.applyFilter(s.rawQuery(attrs, k, opt, tr, res), opt)
	}
	kp := k
	if kp < 1 {
		kp = 1
	}
	for {
		raw := s.rawQuery(attrs, kp, opt, tr, res)
		exhausted := len(raw) < kp
		if s.cfg.Method == KNNJoin {
			exhausted = distinctScores(raw) < kp
		}
		keep := s.applyFilter(raw, opt)
		enough := len(keep) >= k
		if s.cfg.Method == KNNJoin {
			enough = distinctScores(keep) >= k
		}
		if enough || exhausted {
			return cutCandidates(s.cfg.Method, keep, k)
		}
		kp *= 2
	}
}

// applyFilter drops candidates failing the options' score floor or
// attribute predicate. The input is sorted (score desc, id asc) and the
// output preserves that order.
func (s *Snapshot) applyFilter(in []Candidate, opt QueryOptions) []Candidate {
	out := make([]Candidate, 0, len(in))
	for _, c := range in {
		if opt.MinScore != nil && c.Score < *opt.MinScore {
			continue
		}
		if opt.Predicate != nil {
			a, ok := s.getAttrs(c.ID)
			if !ok || !opt.Predicate(a) {
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

// distinctScores counts the distinct similarity values of a sorted
// candidate list — the quantity KNNJoin's cardinality cut counts.
func distinctScores(cs []Candidate) int {
	n := 0
	last := math.Inf(1)
	for _, c := range cs {
		if c.Score != last {
			n++
			last = c.Score
		}
	}
	return n
}

// rawQuery runs the unfiltered probe at an explicit cardinality k (the
// filtered path calls it with successively doubled k; the unfiltered
// path with the effective k once).
func (s *Snapshot) rawQuery(attrs []entity.Attribute, k int, opt QueryOptions, tr *Trace, res queryRes) []Candidate {
	begin := time.Now()
	txt := s.cfg.TextOf(attrs)
	switch s.cfg.Method {
	case FlatKNN:
		q := res.emb.Text(txt)
		tr.Encode = time.Since(begin)
		begin = time.Now()
		hits := s.denseSearch(q, k, opt)
		out := make([]Candidate, len(hits))
		for i, h := range hits {
			out[i] = Candidate{ID: h.ID, Score: -h.Score}
		}
		if s.tier != nil {
			th := s.tier.DenseSearch(q, k)
			tc := make([]Candidate, len(th))
			for i, h := range th {
				tc[i] = Candidate{ID: h.ID, Score: -h.Score}
			}
			out = mergeCandidates(FlatKNN, [][]Candidate{out, tc}, k)
		}
		tr.Search = time.Since(begin)
		return out
	case EpsJoin:
		eps := s.cfg.Threshold
		if opt.Threshold > 0 {
			eps = opt.Threshold
		}
		return s.sparseQuery(txt, begin, tr, res.sc, 0,
			func(q []int32, sc *sparse.Scratch) []sparse.IncNeighbor {
				return s.sp.RangeQuery(q, s.cfg.Measure, eps, sc)
			},
			func(toks []string) []segment.Hit {
				return s.tier.SparseRange(toks, eps)
			})
	default: // KNNJoin
		return s.sparseQuery(txt, begin, tr, res.sc, k,
			func(q []int32, sc *sparse.Scratch) []sparse.IncNeighbor {
				return s.sp.KNNQuery(q, s.cfg.Measure, k, sc)
			},
			func(toks []string) []segment.Hit {
				return s.tier.SparseKNN(toks, k)
			})
	}
}

// denseSearch dispatches a dense query to the snapshot's index. Exact
// indexes ignore the ANN knobs; on an HNSW snapshot opt.Exact falls back
// to the brute-force oracle, opt.Ef widens the beam, and a sampled
// fraction of approximate queries is double-checked against the oracle
// to feed the live recall counters.
func (s *Snapshot) denseSearch(q vector.Vec, k int, opt QueryOptions) []knn.IncResult {
	hs, ok := s.kn.(*knn.HNSWSnapshot)
	if !ok {
		return s.kn.Search(q, k)
	}
	if opt.Exact {
		s.tel.exactQueries.Inc()
		return hs.SearchExact(q, k)
	}
	hits := hs.SearchEf(q, k, opt.Ef)
	s.maybeProbeRecall(hs, q, k, hits)
	return hits
}

// maybeProbeRecall runs the exact oracle for one in recallProbePeriod
// approximate queries and accumulates tie-tolerant overlap@k: a hit is
// any approximate result scoring at or above the oracle's k-th best.
func (s *Snapshot) maybeProbeRecall(hs *knn.HNSWSnapshot, q vector.Vec, k int, approx []knn.IncResult) {
	t := s.tel
	if t.recallHits == nil || t.recallWant == nil {
		return
	}
	if atomic.AddUint64(&t.probeTick, 1)%recallProbePeriod != 0 {
		return
	}
	exact := hs.SearchExact(q, k)
	if len(exact) == 0 {
		return
	}
	cutoff := exact[len(exact)-1].Score
	hit := 0
	for _, r := range approx {
		if r.Score <= cutoff {
			hit++
		}
	}
	if hit > len(exact) {
		hit = len(exact)
	}
	t.recallHits.Add(int64(hit))
	t.recallWant.Add(int64(len(exact)))
}

// sparseQuery runs a sparse query against the memtable index and, for
// disk-backed snapshots, the segment tier, folding the two parts with
// the canonical scatter-gather merge. The tier consumes the raw token
// strings (segments are vocabulary-free); the memtable consumes the
// same tokens through the frozen dictionary, so both parts score the
// identical integer-overlap similarities.
func (s *Snapshot) sparseQuery(txt string, begin time.Time, tr *Trace, sc *sparse.Scratch, k int,
	run func([]int32, *sparse.Scratch) []sparse.IncNeighbor, tierRun func([]string) []segment.Hit) []Candidate {
	toks := s.cfg.Model.Tokens(txt)
	q := encodeFrozen(s.dict, toks)
	tr.Encode = time.Since(begin)
	begin = time.Now()
	ns := run(q, sc)
	out := make([]Candidate, len(ns))
	for i, n := range ns {
		out[i] = Candidate{ID: n.ID, Score: n.Sim}
	}
	if s.tier != nil {
		th := tierRun(toks)
		tc := make([]Candidate, len(th))
		for i, h := range th {
			tc[i] = Candidate{ID: h.ID, Score: h.Score}
		}
		out = mergeCandidates(s.cfg.Method, [][]Candidate{out, tc}, k)
	}
	tr.Search = time.Since(begin)
	return out
}
