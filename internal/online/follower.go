package online

// FollowerStore is the replica-side store: a resolver fed not by client
// writes but by raw WAL bytes mirrored from a leader. Its on-disk
// layout is the leader's — current.snap plus wal-*.seg files — with one
// addition, the repl-meta anchor recording the bootstrap position and
// term. Crash recovery is the ordinary store recovery (load snapshot,
// replay the mirrored log, truncate the torn tail); promotion hands the
// mirrored log to a real WAL and returns a fully writable Store over
// the same resolver.
//
// Bootstrap writes in an order that keeps every crash window safe:
//
//  1. delete repl-meta        — the replica is now "not bootstrapped";
//  2. write current.snap      — validated before the atomic rename;
//  3. write repl-meta         — the new anchor becomes visible;
//  4. open the mirror at pos  — which deletes stale segments below it.
//
// A crash before 3 leaves no anchor, so the next open re-bootstraps
// from scratch; a crash after 3 leaves stale pre-anchor segments that
// the mirror open deletes unread. At no point can old log records
// replay onto a newer snapshot's state out of order.

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sync"

	"erfilter/internal/faultfs"
	"erfilter/internal/segment"
	"erfilter/internal/wal"
)

const (
	replMetaName = "repl-meta"
	replMetaTemp = "repl-meta.tmp"
)

// ErrNotBootstrapped is returned by operations that need follower state
// before the first successful Bootstrap.
var ErrNotBootstrapped = errors.New("online: follower not bootstrapped")

// FollowerStore mirrors a leader's log into a local resolver. All
// methods are safe for concurrent use; Apply calls are serialized by
// the owning tailer.
type FollowerStore struct {
	fs  faultfs.FS
	dir string
	opt StoreOptions

	mu        sync.Mutex
	res       *Resolver // nil until bootstrapped
	mir       *wal.Mirror
	base      wal.Position // the anchor from repl-meta
	term      uint64
	applied   uint64 // records applied since open
	sinceCkpt int
	closed    bool
}

// OpenFollower opens (or initializes) the follower state in dir. When
// the directory holds no bootstrap anchor — a fresh dir, or an
// ex-leader's dir, whose snapshot carries no position — the follower
// comes up un-bootstrapped and must Bootstrap before serving.
func OpenFollower(dir string, opt StoreOptions) (*FollowerStore, error) {
	fsys := opt.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("online: creating follower dir: %w", err)
	}
	_ = fsys.Remove(filepath.Join(dir, tempName))
	_ = fsys.Remove(filepath.Join(dir, replMetaTemp))
	if hasTier, err := segment.Exists(fsys, filepath.Join(dir, segmentsDirName)); err != nil {
		return nil, fmt.Errorf("online: probing segment tier: %w", err)
	} else if hasTier {
		return nil, fmt.Errorf("online: %s holds a -storage disk tier; followers replicate into memory-storage dirs", dir)
	}
	f := &FollowerStore{fs: fsys, dir: dir, opt: opt}

	base, term, ok, err := readReplMeta(fsys, filepath.Join(dir, replMetaName))
	if err != nil {
		return nil, err
	}
	if !ok {
		return f, nil
	}
	snapPath := filepath.Join(dir, snapName)
	if hasSnap, err := fileExists(fsys, snapPath); err != nil {
		return nil, fmt.Errorf("online: probing snapshot: %w", err)
	} else if !hasSnap {
		// An anchor without its snapshot cannot happen in the bootstrap
		// order; treat the dir as un-bootstrapped rather than serve a
		// zero-state replica.
		return f, nil
	}
	res, err := loadOrCreate(fsys, snapPath, Config{})
	if err != nil {
		return nil, err
	}
	f.base, f.term = base, term
	res.mu.Lock()
	mir, err := wal.OpenMirror(dir, wal.Options{FS: fsys, SegmentBytes: opt.SegmentBytes}, base,
		func(rec wal.Record) error { return f.replayLocked(res, rec) })
	if err == nil {
		res.publishLocked()
	}
	res.mu.Unlock()
	if err != nil {
		return nil, err
	}
	f.res, f.mir = res, mir
	return f, nil
}

// replayLocked applies one mirrored record; callers hold res.mu.
func (f *FollowerStore) replayLocked(res *Resolver, rec wal.Record) error {
	if rec.Type == walTerm {
		t, err := decodeTerm(rec.Data)
		if err != nil {
			return err
		}
		if t > f.term {
			f.term = t
		}
		return nil
	}
	return replayRecord(res, rec)
}

// readReplMeta parses the bootstrap anchor; ok is false when the file
// is absent or unparsable (either way: not bootstrapped).
func readReplMeta(fsys faultfs.FS, path string) (pos wal.Position, term uint64, ok bool, err error) {
	fh, err := faultfs.Open(fsys, path)
	if errors.Is(err, fs.ErrNotExist) {
		return wal.Position{}, 0, false, nil
	}
	if err != nil {
		return wal.Position{}, 0, false, fmt.Errorf("online: opening repl meta: %w", err)
	}
	defer fh.Close()
	data, err := io.ReadAll(fh)
	if err != nil {
		return wal.Position{}, 0, false, fmt.Errorf("online: reading repl meta: %w", err)
	}
	var posStr string
	if _, serr := fmt.Sscanf(string(data), "ERREPL 1\npos %s\nterm %d\n", &posStr, &term); serr != nil {
		return wal.Position{}, 0, false, nil
	}
	if pos, err = wal.ParsePosition(posStr); err != nil {
		return wal.Position{}, 0, false, nil
	}
	return pos, term, true, nil
}

func writeReplMeta(fsys faultfs.FS, dir string, pos wal.Position, term uint64) error {
	return faultfs.WriteFileAtomic(fsys, dir, replMetaTemp, replMetaName, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "ERREPL 1\npos %s\nterm %d\n", pos, term)
		return err
	})
}

// Bootstrapped reports whether the follower holds replica state.
func (f *FollowerStore) Bootstrapped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.res != nil
}

// Resolver returns the replica's resolver for the read paths, or nil
// before the first bootstrap. The instance changes on re-bootstrap;
// callers must not cache it.
func (f *FollowerStore) Resolver() *Resolver {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.res
}

// Pos returns the durable end of the mirrored log — the follower's
// epoch, and the from= of its next fetch.
func (f *FollowerStore) Pos() (wal.Position, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mir == nil {
		return wal.Position{}, ErrNotBootstrapped
	}
	return f.mir.Pos(), nil
}

// Term returns the highest fencing term the follower has seen.
func (f *FollowerStore) Term() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.term
}

// Applied returns the count of records applied since open.
func (f *FollowerStore) Applied() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Bootstrap (re)initializes the replica from a leader snapshot stream
// anchored at pos (a rotation boundary). Any existing replica state is
// discarded — this is both first contact and the divergence recovery
// path. The stream is fully validated before it replaces anything.
func (f *FollowerStore) Bootstrap(pos wal.Position, term uint64, snap io.Reader) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("online: follower closed")
	}
	// Step 1: drop the anchor. From here until step 3 lands, a crash
	// leaves an un-bootstrapped dir that simply re-bootstraps.
	if err := f.fs.Remove(filepath.Join(f.dir, replMetaName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("online: clearing repl meta: %w", err)
	}
	if f.mir != nil {
		f.mir.Close()
		f.mir = nil
	}
	// Step 2: stream the snapshot to disk, validating as it goes — the
	// resolver is built from the same bytes, so a truncated or corrupt
	// body can neither serve nor persist.
	res, err := f.installSnapshot(snap)
	if err != nil {
		return err
	}
	// Step 3: the anchor makes the new state authoritative.
	if err := writeReplMeta(f.fs, f.dir, pos, term); err != nil {
		return fmt.Errorf("online: writing repl meta: %w", err)
	}
	// Step 4: the mirror deletes stale pre-anchor segments unread.
	mir, err := wal.OpenMirror(f.dir, wal.Options{FS: f.fs, SegmentBytes: f.opt.SegmentBytes}, pos, nil)
	if err != nil {
		return err
	}
	f.res, f.mir, f.base, f.term, f.sinceCkpt = res, mir, pos, term, 0
	return nil
}

// installSnapshot writes the stream to the snapshot temp file while
// loading it, then atomically renames it into place.
func (f *FollowerStore) installSnapshot(snap io.Reader) (*Resolver, error) {
	path := filepath.Join(f.dir, tempName)
	fh, err := faultfs.Create(f.fs, path)
	if err != nil {
		return nil, fmt.Errorf("online: creating snapshot temp: %w", err)
	}
	res, lerr := Load(io.TeeReader(snap, fh))
	if lerr != nil {
		fh.Close()
		_ = f.fs.Remove(path)
		return nil, fmt.Errorf("online: bootstrap snapshot: %w", lerr)
	}
	if err := fh.Sync(); err == nil {
		err = fh.Close()
	} else {
		fh.Close()
	}
	if err != nil {
		_ = f.fs.Remove(path)
		return nil, fmt.Errorf("online: persisting bootstrap snapshot: %w", err)
	}
	if err := f.fs.Rename(path, filepath.Join(f.dir, snapName)); err != nil {
		return nil, fmt.Errorf("online: activating bootstrap snapshot: %w", err)
	}
	if err := f.fs.SyncDir(f.dir); err != nil {
		return nil, fmt.Errorf("online: activating bootstrap snapshot: %w", err)
	}
	return res, nil
}

// Apply mirrors a chunk of raw log bytes arriving at position at, then
// applies the complete records it contains. Only whole frames touch the
// disk or the resolver; the return value is how many bytes were
// consumed — the caller refetches from Pos() and retries the remainder.
// The bytes are fsynced into the mirror before they are applied, so an
// advertised position never claims more than the disk holds.
func (f *FollowerStore) Apply(at wal.Position, data []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mir == nil {
		return 0, ErrNotBootstrapped
	}
	recs, n, err := wal.ParseFrames(data, at.Off == 0)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	if err := f.mir.AppendAt(at, data[:n]); err != nil {
		return 0, err
	}
	res := f.res
	res.mu.Lock()
	for _, rec := range recs {
		if err := f.replayLocked(res, rec); err != nil {
			res.mu.Unlock()
			return 0, fmt.Errorf("online: applying mirrored record: %w", err)
		}
	}
	res.publishLocked()
	res.mu.Unlock()
	f.applied += uint64(len(recs))
	f.sinceCkpt += len(recs)
	ckptDue := f.opt.CheckpointEvery > 0 && f.sinceCkpt >= f.opt.CheckpointEvery
	if ckptDue {
		// Best effort, like the leader's: the mirrored log still holds
		// everything if this fails.
		if err := f.checkpointLocked(); err == nil {
			f.sinceCkpt = 0
		}
	}
	return n, nil
}

// Checkpoint rewrites the follower's snapshot at its current position
// and trims mirrored segments the snapshot absorbed.
func (f *FollowerStore) Checkpoint() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.res == nil {
		return ErrNotBootstrapped
	}
	if err := f.checkpointLocked(); err != nil {
		return err
	}
	f.sinceCkpt = 0
	return nil
}

func (f *FollowerStore) checkpointLocked() error {
	res := f.res
	res.mu.Lock()
	cfg, nextID, ents, graph := res.captureLocked()
	res.mu.Unlock()
	pos := f.mir.Pos()
	if err := faultfs.WriteFileAtomic(f.fs, f.dir, tempName, snapName, func(w io.Writer) error {
		return writeSnapshot(w, cfg, nextID, ents, graph)
	}); err != nil {
		return fmt.Errorf("online: follower checkpoint: %w", err)
	}
	// The trim may delete the segment carrying the last walTerm record;
	// restate the current term in the anchor first.
	if err := writeReplMeta(f.fs, f.dir, f.base, f.term); err != nil {
		return fmt.Errorf("online: follower checkpoint meta: %w", err)
	}
	// Segments wholly below the captured position are absorbed. Replay
	// of the retained tail over the new snapshot is idempotent, exactly
	// like the leader's crash window between checkpoint and trim.
	return f.mir.TrimBefore(pos.Seg)
}

// Promote turns the follower into a leader-capable durable Store over
// the same resolver: the mirrored log becomes the appendable WAL
// (continuing at the exact mirrored position) and newTerm is durably
// appended as the first record of the new reign. The FollowerStore is
// unusable afterwards.
func (f *FollowerStore) Promote(newTerm uint64) (*Store, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("online: follower closed")
	}
	if f.res == nil || f.mir == nil {
		return nil, ErrNotBootstrapped
	}
	log, err := f.mir.IntoWAL(wal.Options{FS: f.fs, SegmentBytes: f.opt.SegmentBytes})
	if err != nil {
		return nil, err
	}
	s := &Store{res: f.res, log: log, fs: f.fs, dir: f.dir, every: f.opt.CheckpointEvery}
	s.term.Store(f.term)
	f.closed = true
	f.mir = nil
	if err := s.SetTerm(newTerm); err != nil {
		return nil, err
	}
	return s, nil
}

// FollowerStats summarizes the replica for /stats and readiness.
type FollowerStats struct {
	Bootstrapped bool   `json:"bootstrapped"`
	Pos          string `json:"pos,omitempty"`
	Term         uint64 `json:"term"`
	Applied      uint64 `json:"applied"`
}

// Stats summarizes the replica state.
func (f *FollowerStore) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{Bootstrapped: f.res != nil, Term: f.term, Applied: f.applied}
	if f.mir != nil {
		st.Pos = f.mir.Pos().String()
	}
	return st
}

// Close releases the mirrored log. The resolver stays readable for
// callers that still hold it; the follower accepts no further state.
func (f *FollowerStore) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.mir != nil {
		err := f.mir.Close()
		f.mir = nil
		return err
	}
	return nil
}
