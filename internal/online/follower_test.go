package online

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"erfilter/internal/faultfs"
	"erfilter/internal/wal"
)

const followerDir = "replica"

// bootstrapFollower runs the full bootstrap protocol in-process:
// ReplSnapshot on the leader, Bootstrap on the follower.
func bootstrapFollower(t *testing.T, s *Store, f *FollowerStore) {
	t.Helper()
	pos, term, save, err := s.ReplSnapshot()
	if err != nil {
		t.Fatalf("repl snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		t.Fatalf("stream snapshot: %v", err)
	}
	if err := f.Bootstrap(pos, term, &buf); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
}

// replicate tails the leader until the follower is caught up, in
// chunked fetches like the real tailer.
func replicate(t *testing.T, s *Store, f *FollowerStore, chunk int) {
	t.Helper()
	for {
		pos, err := f.Pos()
		if err != nil {
			t.Fatalf("follower pos: %v", err)
		}
		data, at, _, err := s.ReadLog(pos, chunk)
		if err != nil {
			t.Fatalf("read log at %v: %v", pos, err)
		}
		if len(data) == 0 {
			return
		}
		n, err := f.Apply(at, data)
		if err != nil {
			t.Fatalf("apply %d bytes at %v: %v", len(data), at, err)
		}
		if n == 0 {
			// Partial frame: widen the window like the tailer does.
			chunk *= 2
		}
	}
}

func mustOpenFollower(t *testing.T, m faultfs.FS, opt StoreOptions) *FollowerStore {
	t.Helper()
	opt.FS = m
	f, err := OpenFollower(followerDir, opt)
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	return f
}

func TestFollowerMirrorsLeaderByteIdentically(t *testing.T) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			lm, fm := faultfs.NewMem(), faultfs.NewMem()
			s := mustOpenStore(t, lm, cfg, StoreOptions{SegmentBytes: 512})
			for _, txt := range corpus[:3] {
				if _, err := s.Insert(attrsText(txt)); err != nil {
					t.Fatal(err)
				}
			}
			f := mustOpenFollower(t, fm, StoreOptions{SegmentBytes: 512})
			if f.Bootstrapped() {
				t.Fatal("fresh follower claims bootstrap")
			}
			bootstrapFollower(t, s, f)
			replicate(t, s, f, 64)

			// Writes after bootstrap arrive through the tail.
			for _, txt := range corpus[3:] {
				if _, err := s.Insert(attrsText(txt)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Delete(1); err != nil {
				t.Fatal(err)
			}
			replicate(t, s, f, 64)

			pos, _ := f.Pos()
			if pos != s.LogPos() {
				t.Fatalf("follower at %v, leader at %v", pos, s.LogPos())
			}
			sameAnswers(t, "replicated", f.Resolver(), s.Resolver())
			if got, want := residents(&Store{res: f.Resolver()}), residents(s); !reflect.DeepEqual(got, want) {
				t.Fatalf("replica residents = %v, want %v", got, want)
			}
			f.Close()
			s.Close()
		})
	}
}

func TestFollowerCrashRecoveryResumesTail(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	lm, fm := faultfs.NewMem(), faultfs.NewMem()
	s := mustOpenStore(t, lm, cfg, StoreOptions{SegmentBytes: 256})
	for i := 0; i < 12; i++ {
		if _, err := s.Insert(attrsText(fmt.Sprintf("entity number %04d canon", i))); err != nil {
			t.Fatal(err)
		}
	}
	f := mustOpenFollower(t, fm, StoreOptions{SegmentBytes: 256})
	bootstrapFollower(t, s, f)
	replicate(t, s, f, 1<<20)
	for i := 12; i < 20; i++ {
		if _, err := s.Insert(attrsText(fmt.Sprintf("entity number %04d canon", i))); err != nil {
			t.Fatal(err)
		}
	}
	replicate(t, s, f, 1<<20)

	// Follower crashes; half the unsynced tail bytes survive (they are
	// all synced in Apply, so this only shreds whatever the OS held).
	fm.Crash()
	fm.Restart(func(string, int) int { return 1 })
	f2 := mustOpenFollower(t, fm, StoreOptions{SegmentBytes: 256})
	if !f2.Bootstrapped() {
		t.Fatal("recovered follower lost its bootstrap")
	}
	replicate(t, s, f2, 1<<20)
	pos, _ := f2.Pos()
	if pos != s.LogPos() {
		t.Fatalf("recovered follower at %v, leader at %v", pos, s.LogPos())
	}
	sameAnswers(t, "recovered replica", f2.Resolver(), s.Resolver())
	f2.Close()
	s.Close()
}

func TestFollowerCheckpointTrimsAndRecovers(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	lm, fm := faultfs.NewMem(), faultfs.NewMem()
	s := mustOpenStore(t, lm, cfg, StoreOptions{SegmentBytes: 256})
	f := mustOpenFollower(t, fm, StoreOptions{SegmentBytes: 256, CheckpointEvery: 5})
	bootstrapFollower(t, s, f)
	for i := 0; i < 30; i++ {
		if _, err := s.Insert(attrsText(fmt.Sprintf("entity number %04d canon", i))); err != nil {
			t.Fatal(err)
		}
	}
	replicate(t, s, f, 1<<20)
	if f.Stats().Applied != 30 {
		t.Fatalf("applied %d records, want 30", f.Stats().Applied)
	}
	// The auto-checkpoint must have trimmed mirrored segments.
	names, _ := fm.ReadDir(followerDir)
	segs := 0
	for _, n := range names {
		if len(n) > 4 && n[:4] == "wal-" {
			segs++
		}
	}
	if segs == 0 || segs > 3 {
		t.Fatalf("%d mirrored segments after checkpoints", segs)
	}
	// Recovery over the checkpointed state still converges.
	fm.Crash()
	fm.Restart(nil)
	f2 := mustOpenFollower(t, fm, StoreOptions{SegmentBytes: 256})
	replicate(t, s, f2, 1<<20)
	sameAnswers(t, "checkpointed replica", f2.Resolver(), s.Resolver())
	f2.Close()
	s.Close()
}

func TestFollowerRebootstrapAfterTrim(t *testing.T) {
	cfg := testConfigs()["knnj"]
	lm, fm := faultfs.NewMem(), faultfs.NewMem()
	s := mustOpenStore(t, lm, cfg, StoreOptions{SegmentBytes: 256})
	f := mustOpenFollower(t, fm, StoreOptions{SegmentBytes: 256})
	for i := 0; i < 8; i++ {
		if _, err := s.Insert(attrsText(fmt.Sprintf("entity number %04d canon", i))); err != nil {
			t.Fatal(err)
		}
	}
	bootstrapFollower(t, s, f)
	replicate(t, s, f, 1<<20)

	// The leader checkpoints and trims; a follower that fell far behind
	// (simulated: rewind impossible, so bootstrap from zero) gets the
	// trimmed signal and must re-bootstrap.
	for i := 8; i < 16; i++ {
		if _, err := s.Insert(attrsText(fmt.Sprintf("entity number %04d canon", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.ReadLog(wal.Position{Seg: 1, Off: 0}, 0); !errors.Is(err, wal.ErrTrimmed) {
		t.Fatalf("read of trimmed history: %v, want ErrTrimmed", err)
	}
	// Re-bootstrap over the live follower: full wipe + reinstall.
	bootstrapFollower(t, s, f)
	replicate(t, s, f, 1<<20)
	sameAnswers(t, "re-bootstrapped", f.Resolver(), s.Resolver())

	// Reads past the leader's end are the divergence signal.
	end := s.LogPos()
	if _, _, _, err := s.ReadLog(wal.Position{Seg: end.Seg, Off: end.Off + 4}, 0); !errors.Is(err, wal.ErrFuture) {
		t.Fatalf("read past end: %v, want ErrFuture", err)
	}
	f.Close()
	s.Close()
}

func TestFollowerPromoteContinuesAsLeader(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	lm, fm := faultfs.NewMem(), faultfs.NewMem()
	s := mustOpenStore(t, lm, cfg, StoreOptions{SegmentBytes: 512})
	for i := 0; i < 10; i++ {
		if _, err := s.Insert(attrsText(fmt.Sprintf("entity number %04d canon", i))); err != nil {
			t.Fatal(err)
		}
	}
	f := mustOpenFollower(t, fm, StoreOptions{SegmentBytes: 512, CheckpointEvery: 100})
	bootstrapFollower(t, s, f)
	replicate(t, s, f, 1<<20)
	oldLeaderState := residents(s)
	s.Close()

	promoted, err := f.Promote(7)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if promoted.Term() != 7 {
		t.Fatalf("promoted term %d, want 7", promoted.Term())
	}
	if got := residents(promoted); !reflect.DeepEqual(got, oldLeaderState) {
		t.Fatal("promotion changed the entity set")
	}
	// The promoted store accepts writes and its log replays seamlessly.
	id, err := promoted.Insert(attrsText("first write of the new reign"))
	if err != nil {
		t.Fatalf("insert on promoted: %v", err)
	}
	want := residents(promoted)
	if err := promoted.Close(); err != nil {
		t.Fatalf("close promoted: %v", err)
	}
	reopened, err := OpenStore(followerDir, cfg, StoreOptions{FS: fm, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen promoted dir as store: %v", err)
	}
	defer reopened.Close()
	if reopened.Term() != 7 {
		t.Fatalf("reopened term %d, want 7", reopened.Term())
	}
	if got := residents(reopened); !reflect.DeepEqual(got, want) {
		t.Fatal("reopened promoted store lost state")
	}
	if _, ok := reopened.Resolver().Get(id); !ok {
		t.Fatal("post-promotion write lost")
	}
	// The ex-follower is dead: further applies must fail.
	if _, err := f.Apply(wal.Position{}, nil); err == nil {
		t.Fatal("apply on promoted follower succeeded")
	}
}

func TestSetTermIsMonotonicAndDurable(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	m := faultfs.NewMem()
	s := mustOpenStore(t, m, cfg, StoreOptions{})
	if s.Term() != 0 {
		t.Fatalf("fresh term %d", s.Term())
	}
	if err := s.SetTerm(3); err != nil || s.Term() != 3 {
		t.Fatalf("set term: %v (term %d)", err, s.Term())
	}
	if err := s.SetTerm(2); err != nil || s.Term() != 3 {
		t.Fatalf("lower term regressed: %v (term %d)", err, s.Term())
	}
	s.Close()
	s2 := mustOpenStore(t, m, cfg, StoreOptions{})
	defer s2.Close()
	if s2.Term() != 3 {
		t.Fatalf("term after reopen %d, want 3", s2.Term())
	}
}

func TestFollowerBootstrapRejectsCorruptStream(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	lm, fm := faultfs.NewMem(), faultfs.NewMem()
	s := mustOpenStore(t, lm, cfg, StoreOptions{})
	for _, txt := range corpus {
		if _, err := s.Insert(attrsText(txt)); err != nil {
			t.Fatal(err)
		}
	}
	defer s.Close()
	pos, term, save, err := s.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	f := mustOpenFollower(t, fm, StoreOptions{})
	// Truncated and bit-flipped streams must be rejected whole.
	if err := f.Bootstrap(pos, term, bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/3] ^= 0x10
	if err := f.Bootstrap(pos, term, bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupt stream accepted")
	}
	if f.Bootstrapped() {
		t.Fatal("failed bootstraps left state behind")
	}
	// And the dir reopens cleanly as un-bootstrapped.
	f.Close()
	f2 := mustOpenFollower(t, fm, StoreOptions{})
	if f2.Bootstrapped() {
		t.Fatal("reopened dir claims bootstrap")
	}
	if err := f2.Bootstrap(pos, term, bytes.NewReader(raw)); err != nil {
		t.Fatalf("good stream rejected after failures: %v", err)
	}
	sameAnswers(t, "bootstrapped after failures", f2.Resolver(), s.Resolver())
	f2.Close()
}
