package online

// Vocab is the grow-only token dictionary of a sparse online resolver.
// Unlike the throwaway dictionary inside sparse.BuildCorpus, it survives
// across inserts and supports freezing: Frozen returns the current
// token→id map for inclusion in an immutable snapshot, after which the
// writer clones the map once before its next insertion (copy-on-write).
//
// The clone cost is proportional to the vocabulary, but it is only paid
// when an insert actually introduces unseen tokens after a freeze;
// character n-gram vocabularies saturate quickly, so steady-state ingest
// freezes for free.
type Vocab struct {
	dict   map[string]int32
	shared bool
}

// NewVocab returns an empty dictionary.
func NewVocab() *Vocab {
	return &Vocab{dict: make(map[string]int32)}
}

// Len returns the number of distinct tokens assigned so far.
func (v *Vocab) Len() int { return len(v.dict) }

// Encode maps the tokens to ids, assigning fresh ids to unseen tokens.
// Writer-side only; not safe for concurrent use.
func (v *Vocab) Encode(toks []string) []int32 {
	out := make([]int32, 0, len(toks))
	for _, tok := range toks {
		id, ok := v.dict[tok]
		if !ok {
			if v.shared {
				clone := make(map[string]int32, len(v.dict)+1)
				for k, val := range v.dict {
					clone[k] = val
				}
				v.dict = clone
				v.shared = false
			}
			id = int32(len(v.dict))
			v.dict[tok] = id
		}
		out = append(out, id)
	}
	return out
}

// Frozen returns the current dictionary as an immutable map for a
// snapshot and marks it shared: the next Encode that needs a new token
// works on a private clone, so snapshot holders never observe a write.
func (v *Vocab) Frozen() map[string]int32 {
	v.shared = true
	return v.dict
}

// encodeFrozen maps query tokens through a frozen dictionary. A token
// absent from the dictionary cannot overlap with anything indexed, but it
// still counts toward the query-set size every similarity measure
// normalizes by, so it is encoded as a sentinel id just past the frozen
// vocabulary: overlap counting skips ids beyond the posting table, yet
// len(result) equals the full token count. This keeps similarities equal
// to the batch pipeline (sparse.BuildCorpus encodes both collections with
// one shared dictionary, so there qs counts every query token) and makes
// scores independent of vocabulary history — a token introduced only by a
// since-deleted entity contributes size but no overlap whether or not it
// survives in the dictionary after a Save/Load replay.
func encodeFrozen(dict map[string]int32, toks []string) []int32 {
	out := make([]int32, len(toks))
	unseen := int32(len(dict))
	for i, tok := range toks {
		if id, ok := dict[tok]; ok {
			out[i] = id
		} else {
			out[i] = unseen
		}
	}
	return out
}
