package online

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/metrics"
	"erfilter/internal/segment"
	"erfilter/internal/wal"
)

// Store is the crash-safe shell around a Resolver: every insert and
// delete is framed into a write-ahead log and fsynced (group commit)
// before the call returns, so an acknowledged write survives any crash;
// checkpoints rewrite the snapshot atomically (temp file + fsync +
// rename) and trim the WAL segments the snapshot made obsolete; and on
// open, the last good snapshot plus the intact WAL prefix reconstruct
// exactly the acknowledged state — the recovery path truncates at the
// first torn record instead of failing.
//
// Failure semantics: a WAL write or fsync error permanently degrades the
// store to read-only — queries keep serving from the in-memory resolver,
// writes fail fast with ErrDegraded — because a log that cannot persist
// must not acknowledge. A failed checkpoint, by contrast, is retried
// later: the WAL still holds every record, so durability is unaffected.
//
// Mutations already applied in memory may become visible to queries
// moments before their fsync completes (read-uncommitted); the
// durability contract covers acknowledged writes only.
type Store struct {
	res *Resolver
	log *wal.WAL
	fs  faultfs.FS
	dir string

	every int // auto-checkpoint period in WAL records; 0 = manual only

	mu        sync.Mutex // serializes writers: id assignment, WAL staging, apply order
	sinceCkpt int

	ckptBusy    atomic.Bool
	checkpoints atomic.Uint64
	ckptNS      metrics.Histogram // end-to-end checkpoint cost, ns

	// term is the highest replication fencing term this log carries
	// (the walTerm record type); 0 on a log that has never replicated.
	term atomic.Uint64

	degraded atomic.Bool
	reasonMu sync.Mutex
	reason   error
}

// ErrDegraded is wrapped by every write rejected because the store has
// fallen back to read-only after a WAL failure.
var ErrDegraded = errors.New("online: store is degraded (read-only)")

// StoreOptions tune a durable store; the zero value is production-ready.
type StoreOptions struct {
	// FS is the file-system seam; nil selects the real OS.
	FS faultfs.FS
	// SegmentBytes is the WAL segment rotation threshold (default 8 MiB).
	SegmentBytes int64
	// CheckpointEvery rewrites the snapshot and trims the WAL after this
	// many logged records; 0 checkpoints only on Close (or manually).
	CheckpointEvery int
}

// WAL record types and the snapshot file names inside a store directory.
const (
	walInsert uint8 = 1
	walDelete uint8 = 2
	// walTerm carries a monotonic replication fencing term (u64). It is
	// appended at promotion and replicated in-stream, so every follower
	// learns the new leadership epoch from the log itself and a deposed
	// leader's stream is recognizably stale.
	walTerm uint8 = 3

	snapName = "current.snap"
	tempName = "current.snap.tmp"

	// segmentsDirName is the segment-tier subdirectory of a StorageDisk
	// store; the WAL and the tier share the store directory.
	segmentsDirName = "segments"
)

// OpenStore opens (or initializes) the durable resolver in dir.
//
// Under StorageMemory it loads the last good snapshot if one exists —
// its configuration wins over cfg — then replays the WAL on top of it.
// Under StorageDisk the durable bulk lives in the segment tier at
// dir/segments (the tier manifest's configuration wins); WAL replay
// repopulates only the memtable, skipping records already flushed into
// segments. Replay is idempotent either way, so a crash between a
// checkpoint's commit and its WAL trim only costs re-replaying records
// the checkpoint already absorbed.
//
// A directory created under one storage kind refuses to open under the
// other: silently ignoring a snapshot (or a segment tier) would serve
// a partial collection as if it were complete.
func OpenStore(dir string, cfg Config, opt StoreOptions) (*Store, error) {
	fsys := opt.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("online: creating store dir: %w", err)
	}
	// A leftover temp file is a checkpoint a crash interrupted before
	// the atomic rename; it was never activated, so drop it.
	_ = fsys.Remove(filepath.Join(dir, tempName))

	cfg = cfg.normalize()
	snapPath := filepath.Join(dir, snapName)
	segDir := filepath.Join(dir, segmentsDirName)
	hasSnap, err := fileExists(fsys, snapPath)
	if err != nil {
		return nil, fmt.Errorf("online: probing snapshot: %w", err)
	}
	hasTier, err := segment.Exists(fsys, segDir)
	if err != nil {
		return nil, fmt.Errorf("online: probing segment tier: %w", err)
	}
	var res *Resolver
	switch {
	case cfg.Storage == StorageDisk && hasSnap:
		return nil, fmt.Errorf("online: store at %s was created with -storage memory (found %s); reopen it with -storage memory or migrate via save/load", dir, snapName)
	case cfg.Storage != StorageDisk && hasTier:
		return nil, fmt.Errorf("online: store at %s was created with -storage disk (found a segment tier); reopen it with -storage disk or migrate via save/load", dir)
	case cfg.Storage == StorageDisk:
		// The store drives flushes itself (autoFlush=false) so every
		// flush is fenced against a WAL rotation and trim.
		res, err = newDiskResolver(cfg, fsys, segDir, false)
	default:
		res, err = loadOrCreate(fsys, snapPath, cfg)
	}
	if err != nil {
		return nil, err
	}
	s := &Store{res: res, fs: fsys, dir: dir, every: opt.CheckpointEvery}

	res.mu.Lock()
	log, err := wal.Open(dir, wal.Options{FS: fsys, SegmentBytes: opt.SegmentBytes}, func(rec wal.Record) error {
		if rec.Type == walTerm {
			return s.replayTerm(rec)
		}
		return replayRecord(res, rec)
	})
	if err == nil {
		res.publishLocked()
	}
	res.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.log = log
	return s, nil
}

// fileExists probes a path through the FS seam.
func fileExists(fsys faultfs.FS, path string) (bool, error) {
	f, err := faultfs.Open(fsys, path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, f.Close()
}

func loadOrCreate(fsys faultfs.FS, snapPath string, cfg Config) (*Resolver, error) {
	f, err := faultfs.Open(fsys, snapPath)
	if errors.Is(err, fs.ErrNotExist) {
		return NewResolver(cfg), nil
	}
	if err != nil {
		return nil, fmt.Errorf("online: opening snapshot: %w", err)
	}
	defer f.Close()
	res, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("online: store snapshot is damaged (restore from a replica or remove %s to lose the checkpoint): %w", snapPath, err)
	}
	return res, nil
}

// replayRecord applies one WAL record during recovery. Callers hold
// res.mu. Inserts of already-resident ids are records a checkpoint
// already absorbed (the crash-between-checkpoint-commit-and-trim
// window) and are skipped — on a disk-backed resolver "resident"
// includes entities a flush moved into the segment tier. Residency —
// not an id watermark — is the skip test because a sharded store
// assigns globally monotonic ids that land in each shard's WAL out of
// order. Deletes fall through the memtable to the tier: a tombstone a
// crash caught before its manifest commit is re-applied from its WAL
// record. An absorbed insert whose entity was later deleted replays as
// re-add followed by its own delete record (WAL order equals
// application order), which nets out correctly.
func replayRecord(res *Resolver, rec wal.Record) error {
	switch rec.Type {
	case walInsert:
		id, attrs, err := decodeInsert(rec.Data)
		if err != nil {
			return err
		}
		if id >= res.nextID {
			res.nextID = id + 1
		}
		if _, ok := res.attrs[id]; ok {
			return nil
		}
		if res.tier != nil && res.tier.Has(id) {
			return nil
		}
		res.addLocked(id, attrs)
	case walDelete:
		id, err := decodeDelete(rec.Data)
		if err != nil {
			return err
		}
		if _, ok := res.attrs[id]; !ok {
			if res.tier != nil && res.tier.Delete(id) {
				res.deletes++
			}
			return nil
		}
		if res.sp != nil {
			res.sp.Remove(id)
		} else {
			res.kn.Remove(id)
		}
		delete(res.attrs, id)
		res.deletes++
		res.maybeCompactLocked()
	default:
		return fmt.Errorf("online: unknown WAL record type %d", rec.Type)
	}
	return nil
}

// Resolver returns the underlying resolver for the read paths (Query,
// Get, Snapshot, Stats, Save). All mutations must go through the store.
func (s *Store) Resolver() *Resolver { return s.res }

// Ready reports whether the store accepts writes; when degraded it also
// returns the failure that forced read-only mode.
func (s *Store) Ready() (bool, error) {
	if !s.degraded.Load() {
		return true, nil
	}
	s.reasonMu.Lock()
	defer s.reasonMu.Unlock()
	return false, s.reason
}

func (s *Store) degrade(err error) {
	s.reasonMu.Lock()
	if s.reason == nil {
		s.reason = err
	}
	s.reasonMu.Unlock()
	s.degraded.Store(true)
}

func (s *Store) writeable() error {
	if !s.degraded.Load() {
		return nil
	}
	s.reasonMu.Lock()
	defer s.reasonMu.Unlock()
	return fmt.Errorf("%w: %v", ErrDegraded, s.reason)
}

// Insert durably adds one entity: on a nil error the entity is fsynced
// into the WAL and will survive any crash.
func (s *Store) Insert(attrs []entity.Attribute) (int64, error) {
	ids, err := s.InsertBatch([][]entity.Attribute{attrs})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// InsertBatch durably adds many entities under one epoch publish and —
// thanks to WAL group commit — typically one fsync.
func (s *Store) InsertBatch(batch [][]entity.Attribute) ([]int64, error) {
	return s.insertBatch(nil, batch)
}

// InsertAssigned durably inserts the batch under caller-assigned ids —
// the sharded-store ingest path, where a global counter allocates ids
// across shards. Callers guarantee the ids are unused; they need not
// arrive in ascending order (replay handles out-of-order ids).
func (s *Store) InsertAssigned(ids []int64, batch [][]entity.Attribute) error {
	if len(ids) != len(batch) {
		return fmt.Errorf("online: %d assigned ids for %d entities", len(ids), len(batch))
	}
	_, err := s.insertBatch(ids, batch)
	return err
}

func (s *Store) insertBatch(assigned []int64, batch [][]entity.Attribute) ([]int64, error) {
	if err := s.writeable(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	r := s.res
	r.mu.Lock()
	ids := make([]int64, len(batch))
	var seq uint64
	var werr error
	for i, attrs := range batch {
		id := r.nextID
		if assigned != nil {
			id = assigned[i]
		}
		copied := append([]entity.Attribute(nil), attrs...)
		if seq, werr = s.log.AppendBuffered(walInsert, encodeInsert(id, copied)); werr != nil {
			break
		}
		if id >= r.nextID {
			r.nextID = id + 1
		}
		r.addLocked(id, copied)
		ids[i] = id
	}
	var flushDue bool
	if werr == nil {
		// A full memtable checkpoints (= flushes) even before the
		// record-count period: the memtable cap is the RAM bound the
		// disk tier exists to enforce.
		flushDue = r.tier != nil && len(r.attrs) >= r.cfg.MemtableCap
		r.publishLocked()
	}
	r.mu.Unlock()
	s.sinceCkpt += len(batch)
	ckpt := s.ckptDueLocked(werr) || flushDue
	s.mu.Unlock()
	if werr != nil {
		s.degrade(werr)
		return nil, werr
	}
	if err := s.log.WaitSync(seq); err != nil {
		s.degrade(err)
		return nil, err
	}
	s.maybeCheckpoint(ckpt)
	return ids, nil
}

// Delete durably tombstones an entity; ok reports residency. A nil
// error with ok=true means the delete is fsynced and will survive any
// crash.
func (s *Store) Delete(id int64) (bool, error) {
	if err := s.writeable(); err != nil {
		return false, err
	}
	s.mu.Lock()
	r := s.res
	r.mu.Lock()
	_, inMem := r.attrs[id]
	if !inMem && (r.tier == nil || !r.tier.Has(id)) {
		r.mu.Unlock()
		s.mu.Unlock()
		return false, nil
	}
	seq, werr := s.log.AppendBuffered(walDelete, encodeDelete(id))
	if werr == nil {
		if inMem {
			if r.sp != nil {
				r.sp.Remove(id)
			} else {
				r.kn.Remove(id)
			}
			delete(r.attrs, id)
			r.maybeCompactLocked()
		} else {
			// The entity lives in a flushed segment: tombstone it in the
			// tier view. The tombstone reaches the manifest at the next
			// checkpoint flush, always before this WAL record is trimmed.
			r.tier.Delete(id)
		}
		r.deletes++
		r.publishLocked()
	}
	r.mu.Unlock()
	s.sinceCkpt++
	ckpt := s.ckptDueLocked(werr)
	s.mu.Unlock()
	if werr != nil {
		s.degrade(werr)
		return false, werr
	}
	if err := s.log.WaitSync(seq); err != nil {
		s.degrade(err)
		return false, err
	}
	s.maybeCheckpoint(ckpt)
	return true, nil
}

// ckptDueLocked decides, under s.mu, whether this write crossed the
// auto-checkpoint period.
func (s *Store) ckptDueLocked(werr error) bool {
	return werr == nil && s.every > 0 && s.sinceCkpt >= s.every
}

func (s *Store) maybeCheckpoint(due bool) {
	if !due {
		return
	}
	// Best effort: the WAL still holds everything if this fails, so the
	// write that triggered the checkpoint stays acknowledged.
	_ = s.Checkpoint()
}

// Checkpoint makes the snapshot catch up with the log: capture a
// consistent cut, rotate the WAL so the cut's records live in closed
// segments, write the snapshot to a temp file, fsync it, atomically
// rename it over the previous snapshot, and only then trim the obsolete
// segments. A crash at any point leaves either the old snapshot with the
// full WAL or the new snapshot with a replay-idempotent WAL suffix —
// never a damaged store. Writers stall only for the capture and the WAL
// rotation, not for the snapshot write.
func (s *Store) Checkpoint() error {
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return nil // a checkpoint is already running
	}
	defer s.ckptBusy.Store(false)
	begin := time.Now()
	defer func() { s.ckptNS.ObserveDuration(time.Since(begin)) }()

	if s.res.tier != nil {
		return s.checkpointDisk()
	}

	s.mu.Lock()
	r := s.res
	r.mu.Lock()
	cfg, nextID, ents, graph := r.captureLocked()
	r.mu.Unlock()
	boundary, err := s.log.Rotate()
	var termSeq uint64
	if err == nil {
		s.sinceCkpt = 0
		// The fencing term lives only in the log; trimming the old
		// segments would lose it, so restate it in the fresh one.
		if t := s.term.Load(); t > 0 {
			termSeq, err = s.log.AppendBuffered(walTerm, encodeTerm(t))
		}
	}
	s.mu.Unlock()
	if err != nil {
		s.degrade(err)
		return err
	}
	if termSeq > 0 {
		if err := s.log.WaitSync(termSeq); err != nil {
			s.degrade(err)
			return err
		}
	}

	if err := writeFileAtomic(s.fs, s.dir, tempName, snapName, func(w io.Writer) error {
		return writeSnapshot(w, cfg, nextID, ents, graph)
	}); err != nil {
		return fmt.Errorf("online: checkpoint snapshot: %w", err)
	}
	if err := s.log.TrimBefore(boundary); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	return nil
}

// checkpointDisk is the StorageDisk checkpoint: instead of rewriting a
// snapshot file, it rotates the WAL, flushes the memtable into a new
// segment (which also commits pending tier tombstones and the id
// watermark into the manifest), and only then trims the WAL segments
// the flush made obsolete. Rotation and flush are fenced under both
// the store and resolver locks, so every record before the rotation
// boundary is in the memtable (or already in the tier) when the flush
// captures it. A failed flush leaves the WAL untrimmed — durability is
// unaffected and the checkpoint is retried later, exactly like a
// failed snapshot write.
func (s *Store) checkpointDisk() error {
	s.mu.Lock()
	r := s.res
	boundary, werr := s.log.Rotate()
	var termSeq uint64
	var ferr error
	if werr == nil {
		if t := s.term.Load(); t > 0 {
			// Restate the fencing term past the trim boundary, as in
			// the snapshot checkpoint.
			termSeq, werr = s.log.AppendBuffered(walTerm, encodeTerm(t))
		}
	}
	if werr == nil {
		r.mu.Lock()
		if ferr = r.flushLocked(); ferr == nil {
			s.sinceCkpt = 0
		}
		r.publishLocked()
		r.mu.Unlock()
	}
	s.mu.Unlock()
	if werr != nil {
		s.degrade(werr)
		return werr
	}
	if termSeq > 0 {
		if err := s.log.WaitSync(termSeq); err != nil {
			s.degrade(err)
			return err
		}
	}
	if ferr != nil {
		return fmt.Errorf("online: checkpoint flush: %w", ferr)
	}
	if err := s.log.TrimBefore(boundary); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	return nil
}

// Close checkpoints (when healthy), closes the WAL, and releases the
// segment tier of a disk-backed store. The store must not be used
// afterwards.
func (s *Store) Close() error {
	var err error
	if ok, _ := s.Ready(); ok {
		err = s.Checkpoint()
	}
	if cerr := s.log.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if cerr := s.res.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// RegisterMetrics exposes the durability layer under the registry: the
// WAL's fsync/group-commit telemetry, checkpoint count and cost, and a
// 0/1 gauge for degraded read-only mode.
func (s *Store) RegisterMetrics(reg *metrics.Registry) {
	s.log.RegisterMetrics(reg, nil)
	reg.CounterFunc("store_checkpoints_total",
		"Completed snapshot checkpoints.", nil,
		func() float64 { return float64(s.checkpoints.Load()) })
	reg.RegisterHistogram("store_checkpoint_duration_seconds",
		"End-to-end checkpoint cost: capture, rotate, write, rename, trim.", nil, 1e-9, &s.ckptNS)
	reg.GaugeFunc("store_degraded",
		"1 when the store has fallen back to read-only after a WAL failure.", nil,
		func() float64 {
			if ok, _ := s.Ready(); !ok {
				return 1
			}
			return 0
		})
}

// StoreStats extends the WAL counters with checkpoint and degradation
// state for the /stats endpoint.
type StoreStats struct {
	WAL         wal.Stats `json:"wal"`
	Checkpoints uint64    `json:"checkpoints"`
	Degraded    bool      `json:"degraded"`
	Reason      string    `json:"reason,omitempty"`
}

// Stats summarizes the durability layer.
func (s *Store) Stats() StoreStats {
	st := StoreStats{WAL: s.log.Stats(), Checkpoints: s.checkpoints.Load()}
	if ok, reason := s.Ready(); !ok {
		st.Degraded = true
		if reason != nil {
			st.Reason = reason.Error()
		}
	}
	return st
}

// SaveFile writes the resolver's snapshot to path atomically: temp file
// in the same directory, fsync, rename, directory sync. A crash at any
// point leaves either the previous file or the complete new one — never
// a torn snapshot.
func (r *Resolver) SaveFile(fsys faultfs.FS, path string) error {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	return writeFileAtomic(fsys, dir, base+".tmp", base, r.Save)
}

// writeFileAtomic streams write into dir/temp, fsyncs, atomically
// renames it to dir/final and fsyncs the directory entry. It is the
// shared faultfs helper, kept under its historical local name.
func writeFileAtomic(fsys faultfs.FS, dir, temp, final string, write func(io.Writer) error) error {
	return faultfs.WriteFileAtomic(fsys, dir, temp, final, write)
}

// encodeInsert frames an insert record: id, then length-prefixed
// attribute pairs. The WAL adds its own CRC; this is pure payload.
func encodeInsert(id int64, attrs []entity.Attribute) []byte {
	var buf bytes.Buffer
	bw := &binWriter{w: bufio.NewWriter(&buf)}
	bw.u64(uint64(id))
	bw.u32(uint32(len(attrs)))
	for _, a := range attrs {
		bw.str(a.Name)
		bw.str(a.Value)
	}
	bw.w.Flush()
	return buf.Bytes()
}

func decodeInsert(data []byte) (int64, []entity.Attribute, error) {
	br := &binReader{r: bufio.NewReader(bytes.NewReader(data))}
	id := int64(br.u64())
	n := br.u32()
	if br.err == nil && n > maxSnapAttr {
		br.err = fmt.Errorf("attribute count %d exceeds bound", n)
	}
	if br.err != nil {
		return 0, nil, fmt.Errorf("online: decoding insert record: %w", br.err)
	}
	attrs := make([]entity.Attribute, n)
	for i := range attrs {
		attrs[i] = entity.Attribute{Name: br.str(), Value: br.str()}
	}
	if br.err != nil {
		return 0, nil, fmt.Errorf("online: decoding insert record: %w", br.err)
	}
	return id, attrs, nil
}

func encodeDelete(id int64) []byte {
	var buf bytes.Buffer
	bw := &binWriter{w: bufio.NewWriter(&buf)}
	bw.u64(uint64(id))
	bw.w.Flush()
	return buf.Bytes()
}

func decodeDelete(data []byte) (int64, error) {
	br := &binReader{r: bufio.NewReader(bytes.NewReader(data))}
	id := int64(br.u64())
	if br.err != nil {
		return 0, fmt.Errorf("online: decoding delete record: %w", br.err)
	}
	return id, nil
}
