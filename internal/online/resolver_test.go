package online

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
	"erfilter/internal/tuning"
)

func attrsText(s string) []entity.Attribute {
	return []entity.Attribute{{Name: "text", Value: s}}
}

func testConfigs() map[string]Config {
	c3g, _ := text.ParseModel("C3G")
	return map[string]Config{
		"knnj":    {Method: KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 2, Clean: true},
		"epsjoin": {Method: EpsJoin, Model: c3g, Measure: sparse.Jaccard, Threshold: 0.3, Clean: true},
		"flat":    {Method: FlatKNN, K: 2, Metric: knn.L2Squared, Dim: 32},
		"hnsw":    {Method: FlatKNN, K: 2, Metric: knn.L2Squared, Dim: 32, Dense: DenseHNSW, HNSW: knn.HNSWParams{Seed: 1}},
	}
}

var corpus = []string{
	"canon powershot a540 digital camera",
	"nikon coolpix p100 bridge camera",
	"sony cybershot dsc w55 compact",
	"apple ipod nano 4gb silver",
	"samsung galaxy buds wireless earbuds",
}

func TestResolverBasicQuery(t *testing.T) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			r := NewResolver(cfg)
			ids := make([]int64, len(corpus))
			for i, s := range corpus {
				ids[i] = r.Insert(attrsText(s))
			}
			got := r.Query(attrsText("canon power shot a540 camera"), QueryOptions{})
			if len(got) == 0 {
				t.Fatal("no candidates")
			}
			if got[0].ID != ids[0] {
				t.Fatalf("top candidate = %d, want %d (all: %v)", got[0].ID, ids[0], got)
			}
			for i := 1; i < len(got); i++ {
				if got[i].Score > got[i-1].Score {
					t.Fatalf("candidates not sorted best-first: %v", got)
				}
			}
		})
	}
}

func TestResolverDeleteHidesEntity(t *testing.T) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			r := NewResolver(cfg)
			var ids []int64
			for _, s := range corpus {
				ids = append(ids, r.Insert(attrsText(s)))
			}
			query := attrsText("canon powershot a540 digital camera")
			if got := r.Query(query, QueryOptions{}); len(got) == 0 || got[0].ID != ids[0] {
				t.Fatalf("precondition failed: %v", got)
			}
			if !r.Delete(ids[0]) {
				t.Fatal("delete failed")
			}
			if r.Delete(ids[0]) {
				t.Fatal("double delete must report false")
			}
			for _, c := range r.Query(query, QueryOptions{}) {
				if c.ID == ids[0] {
					t.Fatalf("deleted entity %d still returned", ids[0])
				}
			}
			if _, ok := r.Get(ids[0]); ok {
				t.Fatal("deleted entity still gettable")
			}
		})
	}
}

func TestSnapshotIsolation(t *testing.T) {
	cfg := testConfigs()["knnj"]
	r := NewResolver(cfg)
	r.Insert(attrsText(corpus[0]))
	snap := r.Snapshot()
	epoch := snap.Epoch()

	for _, s := range corpus[1:] {
		r.Insert(attrsText(s))
	}
	if snap.Len() != 1 {
		t.Fatalf("old snapshot sees %d entities, want 1", snap.Len())
	}
	if r.Snapshot().Epoch() <= epoch {
		t.Fatalf("epoch did not advance: %d -> %d", epoch, r.Snapshot().Epoch())
	}
	got := snap.Query(attrsText("nikon coolpix"), QueryOptions{})
	for _, c := range got {
		if c.ID != 0 {
			t.Fatalf("old snapshot returned entity %d from a later epoch", c.ID)
		}
	}
}

// TestResolverConcurrent hammers one resolver with concurrent queries,
// inserts, deletes and stats reads; run under -race via `make race`.
// Afterwards a snapshot round-trip pins that the surviving state is
// coherent.
func TestResolverConcurrent(t *testing.T) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			r := NewResolver(cfg)
			for i := 0; i < 50; i++ {
				r.Insert(attrsText(fmt.Sprintf("%s lot %d", corpus[i%len(corpus)], i)))
			}
			const (
				readers = 4
				queries = 150
				writes  = 200
			)
			var wg sync.WaitGroup
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < queries; i++ {
						q := attrsText(corpus[(g+i)%len(corpus)])
						snap := r.Snapshot()
						cands := snap.Query(q, QueryOptions{K: 1 + i%3})
						for j := 1; j < len(cands); j++ {
							if cands[j].Score > cands[j-1].Score {
								t.Errorf("unsorted candidates %v", cands)
								return
							}
						}
					}
				}(g)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < writes; i++ {
					id := r.Insert(attrsText(fmt.Sprintf("streamed entity %d widget", i)))
					if i%3 == 0 {
						r.Delete(id - int64(i%2))
					}
					if i%17 == 0 {
						r.Stats()
						r.Get(id)
					}
				}
			}()
			wg.Wait()

			st := r.Stats()
			if st.Entities != r.Len() {
				t.Fatalf("stats entities %d != len %d", st.Entities, r.Len())
			}
			var buf bytes.Buffer
			if err := r.Save(&buf); err != nil {
				t.Fatal(err)
			}
			r2, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			q := attrsText(corpus[0])
			if got, want := r2.Query(q, QueryOptions{}), r.Query(q, QueryOptions{}); !reflect.DeepEqual(got, want) {
				t.Fatalf("loaded resolver answers differently: %v vs %v", got, want)
			}
		})
	}
}

// TestSaveLoadByteIdentical is the acceptance check: Save→Load of a
// populated resolver (including tombstones) returns byte-identical query
// results, and a second Save round-trips byte-identically.
func TestSaveLoadByteIdentical(t *testing.T) {
	queries := [][]entity.Attribute{
		attrsText("canon powershot digital"),
		attrsText("sony compact camera"),
		attrsText("wireless buds"),
		attrsText("zzz no overlap whatsoever qqq"),
	}
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			r := NewResolver(cfg)
			for i := 0; i < 40; i++ {
				r.Insert(attrsText(fmt.Sprintf("%s variant %d", corpus[i%len(corpus)], i)))
			}
			for i := int64(0); i < 40; i += 3 {
				r.Delete(i)
			}

			answers := func(res *Resolver) []byte {
				var all [][]Candidate
				for _, q := range queries {
					all = append(all, res.Query(q, QueryOptions{K: 5}))
				}
				b, err := json.Marshal(all)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			before := answers(r)

			var buf bytes.Buffer
			if err := r.Save(&buf); err != nil {
				t.Fatal(err)
			}
			saved := append([]byte(nil), buf.Bytes()...)
			r2, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			after := answers(r2)
			if !bytes.Equal(before, after) {
				t.Fatalf("query results differ after reload:\n%s\nvs\n%s", before, after)
			}

			var buf2 bytes.Buffer
			if err := r2.Save(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(saved, buf2.Bytes()) {
				t.Fatal("snapshot bytes differ after a save/load/save round-trip")
			}

			// New inserts continue the id sequence without collisions.
			id := r2.Insert(attrsText("fresh arrival"))
			if id != 40 {
				t.Fatalf("next id after reload = %d, want 40", id)
			}
		})
	}
}

// TestSparseQueryMatchesBatchPipeline pins the query-side normalization:
// a query containing tokens the index has never seen must score exactly
// as in the batch pipeline, where sparse.BuildCorpus encodes both
// collections with one shared dictionary and the query-set size counts
// every token, seen or not.
func TestSparseQueryMatchesBatchPipeline(t *testing.T) {
	const query = "canon powershot a540 waterproof housing xkzzyq"
	for name, cfg := range testConfigs() {
		if cfg.Method == FlatKNN {
			continue
		}
		t.Run(name, func(t *testing.T) {
			r := NewResolver(cfg)
			ids := make([]int64, len(corpus))
			for i, s := range corpus {
				ids[i] = r.Insert(attrsText(s))
			}

			texts := make([]string, len(corpus))
			for i, s := range corpus {
				texts[i] = cfg.TextOf(attrsText(s))
			}
			c := sparse.BuildCorpus(texts, []string{cfg.TextOf(attrsText(query))}, cfg.Model)
			idx := sparse.NewIndex(c.Sets1, c.NumTokens)
			var batch []sparse.Neighbor
			if cfg.Method == EpsJoin {
				batch = idx.RangeQuery(c.Sets2[0], cfg.Measure, cfg.Threshold)
			} else {
				batch = idx.KNNQuery(c.Sets2[0], cfg.Measure, cfg.K)
			}
			want := map[int64]float64{}
			for _, n := range batch {
				want[ids[n.Entity]] = n.Sim
			}

			got := r.Query(attrsText(query), QueryOptions{})
			if len(got) != len(want) {
				t.Fatalf("online returned %d candidates, batch %d (online: %v)", len(got), len(want), got)
			}
			for _, cand := range got {
				if sim, ok := want[cand.ID]; !ok || sim != cand.Score {
					t.Fatalf("entity %d scored %v online, want %v as in batch", cand.ID, cand.Score, sim)
				}
			}
		})
	}
}

// TestQueryScoresSurviveVocabHistory pins restore invariance: tokens
// introduced only by a since-deleted entity linger in the live vocabulary
// but are forgotten by a Save/Load replay, and query scores must not
// depend on the difference.
func TestQueryScoresSurviveVocabHistory(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	cfg.Threshold = 0.01
	r := NewResolver(cfg)
	r.Insert(attrsText("canon powershot a540"))
	ephemeral := r.Insert(attrsText("waterproof housing kit"))
	if !r.Delete(ephemeral) {
		t.Fatal("delete failed")
	}

	query := attrsText("canon powershot waterproof housing")
	before := r.Query(query, QueryOptions{})
	if len(before) == 0 {
		t.Fatal("query found no candidates")
	}

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if after := r2.Query(query, QueryOptions{}); !reflect.DeepEqual(before, after) {
		t.Fatalf("scores changed across save/load: %v vs %v", before, after)
	}
}

// TestLoadRejectsCorruptConfig flips single header bytes to out-of-range
// enum values and expects Load to fail loudly rather than serve them.
func TestLoadRejectsCorruptConfig(t *testing.T) {
	save := func(cfg Config) []byte {
		r := NewResolver(cfg)
		r.Insert(attrsText("canon powershot"))
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sparseSnap := save(testConfigs()["knnj"])
	flatSnap := save(testConfigs()["flat"])
	// Header layout: 8 bytes magic, then method, setting, clean, model.N,
	// multiset, measure, metric — one byte each.
	cases := []struct {
		name string
		snap []byte
		off  int
	}{
		{"method", sparseSnap, 8},
		{"setting", sparseSnap, 9},
		{"model.N", sparseSnap, 11},
		{"measure", sparseSnap, 13},
		{"metric", flatSnap, 14},
	}
	for _, c := range cases {
		b := append([]byte(nil), c.snap...)
		b[c.off] = 99
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: snapshot with corrupt byte at %d was accepted", c.name, c.off)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage input must fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must fail")
	}
}

func TestCompactionTriggers(t *testing.T) {
	cfg := testConfigs()["knnj"]
	r := NewResolver(cfg)
	for i := 0; i < 200; i++ {
		r.Insert(attrsText(fmt.Sprintf("%s unit %d", corpus[i%len(corpus)], i)))
	}
	for i := int64(0); i < 150; i++ {
		r.Delete(i)
	}
	st := r.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 150 deletes: %+v", st)
	}
	if st.Tombstones >= 150 {
		t.Fatalf("tombstones not reclaimed: %+v", st)
	}
	got := r.Query(attrsText(corpus[0]), QueryOptions{K: 3})
	for _, c := range got {
		if c.ID < 150 {
			t.Fatalf("compacted entity %d still answered", c.ID)
		}
	}
}

func TestFromTuning(t *testing.T) {
	c3gm, _ := text.ParseModel("C3GM")
	cases := []struct {
		filter core.Filter
		want   Method
	}{
		{&core.KNNJoinFilter{Clean: true, Model: c3gm, Measure: sparse.Dice, K: 7}, KNNJoin},
		{&core.EpsJoinFilter{Model: c3gm, Measure: sparse.Jaccard, Threshold: 0.55}, EpsJoin},
		{&core.FlatKNNFilter{Clean: true, K: 4}, FlatKNN},
	}
	for _, c := range cases {
		cfg, err := FromTuning(&tuning.Result{Method: "x", Filter: c.filter}, entity.SchemaAgnostic, "")
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Method != c.want {
			t.Fatalf("method = %v, want %v", cfg.Method, c.want)
		}
	}
	if _, err := FromTuning(&tuning.Result{Method: "pbw", Filter: core.NewPBW()}, entity.SchemaAgnostic, ""); err == nil {
		t.Fatal("blocking workflow must be rejected")
	}
	if _, err := FromTuning(&tuning.Result{}, entity.SchemaAgnostic, ""); err == nil {
		t.Fatal("empty result must be rejected")
	}
}

func TestSchemaBasedTextAssembly(t *testing.T) {
	c3g, _ := text.ParseModel("C3G")
	cfg := Config{
		Method: KNNJoin, Model: c3g, Measure: sparse.Jaccard, K: 1,
		Setting: entity.SchemaBased, BestAttribute: "name",
	}
	r := NewResolver(cfg)
	nameID := r.Insert([]entity.Attribute{{Name: "name", Value: "canon a540"}, {Name: "price", Value: "199"}})
	r.Insert([]entity.Attribute{{Name: "name", Value: "different thing"}, {Name: "price", Value: "canon a540"}})
	got := r.Query([]entity.Attribute{{Name: "name", Value: "canon a540"}}, QueryOptions{})
	if len(got) != 1 || got[0].ID != nameID {
		t.Fatalf("schema-based query leaked non-best attributes: %v", got)
	}
}

func TestAttrsFromMapDeterministic(t *testing.T) {
	m := map[string]string{"b": "2", "a": "1", "c": "3"}
	want := []entity.Attribute{{Name: "a", Value: "1"}, {Name: "b", Value: "2"}, {Name: "c", Value: "3"}}
	for i := 0; i < 10; i++ {
		if got := AttrsFromMap(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("got %v", got)
		}
	}
}

func TestParseMethod(t *testing.T) {
	for _, s := range []string{"knnj", "KNN-Join", "epsjoin", "flat", "faiss"} {
		if _, err := ParseMethod(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	if _, err := ParseMethod("pbw"); err == nil {
		t.Fatal("pbw must be rejected")
	}
}
