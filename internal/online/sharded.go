package online

import (
	"io"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/metrics"
	"erfilter/internal/parallel"
)

// ShardedResolver hash-partitions entities across N independent
// Resolvers. Each shard has its own writer mutex and its own published
// epoch snapshot, so inserts to different shards proceed in parallel —
// the single-resolver write bottleneck (one mutex, one freeze per
// publish) splits N ways. Queries scatter to every shard snapshot
// concurrently and gather the per-shard top-k lists into a global
// answer under the same deterministic (score desc, id asc) order the
// single resolver uses, which makes the merged results provably
// identical to an unsharded resolver over the same entities:
//
//   - sparse similarity scores are shard-invariant: the score depends
//     only on token-set overlap and sizes, never on the per-shard vocab
//     id assignment (unseen query tokens encode to an out-of-dictionary
//     sentinel that still counts toward the query-set size);
//   - every method's global cut is recoverable from per-shard cuts
//     (see merge), so no qualifying candidate is lost to partitioning.
//
// Ids are allocated from one atomic counter, so a sequential workload
// assigns exactly the ids the single resolver would.
type ShardedResolver struct {
	cfg    Config
	shards []*Resolver
	nextID atomic.Int64

	queries atomic.Uint64
	tel     *shardedTelemetry
}

// shardedTelemetry times the two costs sharding introduces: the
// per-shard scatter latency (one histogram per shard, exposed under a
// shard label) and the gather merge. All metrics are nil-receiver safe.
type shardedTelemetry struct {
	shardNS []*metrics.Histogram // per-shard scatter wall time, ns
	mergeNS *metrics.Histogram   // gather merge cost, ns
}

func newShardedTelemetry(n int) *shardedTelemetry {
	t := &shardedTelemetry{mergeNS: &metrics.Histogram{}, shardNS: make([]*metrics.Histogram, n)}
	for i := range t.shardNS {
		t.shardNS[i] = &metrics.Histogram{}
	}
	return t
}

// NewSharded creates an empty sharded resolver with n shards (n < 1 is
// treated as 1). Every shard serves the same configuration.
func NewSharded(cfg Config, n int) *ShardedResolver {
	if n < 1 {
		n = 1
	}
	shards := make([]*Resolver, n)
	for i := range shards {
		shards[i] = NewResolver(cfg)
	}
	return newShardedOver(cfg.normalize(), shards)
}

// newShardedOver assembles a sharded resolver from already-built shard
// resolvers (the durable recovery path). The id counter resumes past
// every id any shard has seen.
func newShardedOver(cfg Config, shards []*Resolver) *ShardedResolver {
	sr := &ShardedResolver{cfg: cfg, shards: shards, tel: newShardedTelemetry(len(shards))}
	var next int64
	for _, r := range shards {
		r.mu.Lock()
		if r.nextID > next {
			next = r.nextID
		}
		r.mu.Unlock()
	}
	sr.nextID.Store(next)
	return sr
}

// shardOf routes an id to its shard with a splitmix64-style bit mix, so
// any id pattern (sequential ingest, clustered deletes, replayed
// subsets) spreads evenly. Routing is a pure function of (id, shard
// count): every open of the same store directory computes the same
// placement.
func shardOf(id int64, n int) int {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// Config returns the shared configuration.
func (sr *ShardedResolver) Config() Config { return sr.cfg }

// Shards returns the shard count.
func (sr *ShardedResolver) Shards() int { return len(sr.shards) }

// Insert adds one entity to its shard and publishes that shard's new
// epoch. Ids are globally monotonic and never reused.
func (sr *ShardedResolver) Insert(attrs []entity.Attribute) int64 {
	id := sr.nextID.Add(1) - 1
	sr.shards[shardOf(id, len(sr.shards))].InsertAssigned([]int64{id}, [][]entity.Attribute{attrs})
	return id
}

// InsertBatch reserves a contiguous id block, routes each entity to its
// shard and inserts the per-shard groups in parallel — one epoch
// publish per touched shard.
func (sr *ShardedResolver) InsertBatch(batch [][]entity.Attribute) []int64 {
	n := len(sr.shards)
	ids := make([]int64, len(batch))
	base := sr.nextID.Add(int64(len(batch))) - int64(len(batch))
	groupIDs := make([][]int64, n)
	groups := make([][][]entity.Attribute, n)
	for i := range batch {
		id := base + int64(i)
		ids[i] = id
		s := shardOf(id, n)
		groupIDs[s] = append(groupIDs[s], id)
		groups[s] = append(groups[s], batch[i])
	}
	err := parallel.ForEach(n, n, func(i int) error {
		if len(groups[i]) > 0 {
			sr.shards[i].InsertAssigned(groupIDs[i], groups[i])
		}
		return nil
	})
	if err != nil {
		panic(err) // only a shard panic (wrapped *parallel.PanicError) reaches here
	}
	return ids
}

// InsertDataset bulk-loads every profile of a dataset (the CSV path).
func (sr *ShardedResolver) InsertDataset(d *entity.Dataset) []int64 {
	batch := make([][]entity.Attribute, d.Len())
	for i := range d.Profiles {
		batch[i] = d.Profiles[i].Attrs
	}
	return sr.InsertBatch(batch)
}

// Delete tombstones the entity on its shard; see Resolver.Delete.
func (sr *ShardedResolver) Delete(id int64) bool {
	return sr.shards[shardOf(id, len(sr.shards))].Delete(id)
}

// Get returns a copy of the attributes of a resident entity.
func (sr *ShardedResolver) Get(id int64) ([]entity.Attribute, bool) {
	return sr.shards[shardOf(id, len(sr.shards))].Get(id)
}

// Len returns the number of resident entities across all shards.
func (sr *ShardedResolver) Len() int {
	total := 0
	for _, r := range sr.shards {
		total += r.Len()
	}
	return total
}

// IDs returns the ids of every resident entity across all shards in
// ascending order; see Resolver.IDs.
func (sr *ShardedResolver) IDs() []int64 {
	var ids []int64
	for _, r := range sr.shards {
		ids = append(ids, r.IDs()...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Snapshot captures the current snapshot of every shard. Each shard's
// view is immutable and internally consistent; the combined view may
// straddle concurrent writes to different shards, exactly as two
// back-to-back queries on a single resolver may straddle an insert.
func (sr *ShardedResolver) Snapshot() *ShardedSnapshot {
	snaps := make([]*Snapshot, len(sr.shards))
	for i, r := range sr.shards {
		snaps[i] = r.Snapshot()
	}
	return &ShardedSnapshot{cfg: sr.cfg, shards: snaps, queries: &sr.queries, tel: sr.tel}
}

// Query answers against the current shard snapshots; see
// ShardedSnapshot.Query.
func (sr *ShardedResolver) Query(attrs []entity.Attribute, opt QueryOptions) []Candidate {
	return sr.Snapshot().Query(attrs, opt)
}

// ShardedStats aggregates the shard resolvers plus the partition shape.
// Queries counts scatter-gather queries (each touches every shard);
// the per-shard entries carry each shard's own counters.
type ShardedStats struct {
	Shards      int     `json:"shards"`
	Epoch       uint64  `json:"epoch"`
	Entities    int     `json:"entities"`
	Tombstones  int     `json:"tombstones"`
	Inserts     uint64  `json:"inserts"`
	Deletes     uint64  `json:"deletes"`
	Queries     uint64  `json:"queries"`
	Compactions uint64  `json:"compactions"`
	SizeSkew    float64 `json:"size_skew"`
	Config      string  `json:"config"`
	PerShard    []Stats `json:"per_shard"`
}

// Stats summarizes the sharded resolver.
func (sr *ShardedResolver) Stats() ShardedStats {
	st := ShardedStats{
		Shards:  len(sr.shards),
		Queries: sr.queries.Load(),
		Config:  sr.cfg.Describe(),
	}
	sizes := make([]int, len(sr.shards))
	for i, r := range sr.shards {
		s := r.Stats()
		st.PerShard = append(st.PerShard, s)
		st.Epoch += s.Epoch
		st.Entities += s.Entities
		st.Tombstones += s.Tombstones
		st.Inserts += s.Inserts
		st.Deletes += s.Deletes
		st.Compactions += s.Compactions
		sizes[i] = s.Entities
	}
	st.SizeSkew = sizeSkew(sizes)
	return st
}

// sizeSkew is the largest shard's entity count relative to the even
// share: 1.0 is a perfect balance, 2.0 means the hottest shard holds
// twice its fair share. An empty collection is balanced by definition.
func sizeSkew(sizes []int) float64 {
	total, most := 0, 0
	for _, s := range sizes {
		total += s
		if s > most {
			most = s
		}
	}
	if total == 0 {
		return 1
	}
	return float64(most) * float64(len(sizes)) / float64(total)
}

// Save writes the union of all shards in the standard snapshot format —
// the same bytes an unsharded resolver over the same entities would
// write — so a sharded snapshot restores into any topology (Load,
// LoadSharded at a different shard count, a replica's bulk load).
func (sr *ShardedResolver) Save(w io.Writer) error {
	var ents []snapEntity
	for _, r := range sr.shards {
		r.mu.Lock()
		_, _, se, _ := r.captureLocked()
		r.mu.Unlock()
		ents = append(ents, se...)
	}
	// Read the id counter after the captures: every captured id was
	// assigned before its capture, so the counter already exceeds it.
	// No graph section: per-shard graphs are topology-bound, so a
	// sharded snapshot always restores by replay.
	return writeSnapshot(w, sr.cfg, sr.nextID.Load(), ents, nil)
}

// SaveFile writes the sharded snapshot to path atomically (temp file +
// fsync + rename), like Resolver.SaveFile.
func (sr *ShardedResolver) SaveFile(fsys faultfs.FS, path string) error {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	return writeFileAtomic(fsys, dir, base+".tmp", base, sr.Save)
}

// LoadSharded reconstructs a sharded resolver from any snapshot written
// by Save (sharded or not): entities keep their ids and re-route to
// shards under the new count, so re-sharding is exactly a save/load.
func LoadSharded(rd io.Reader, n int) (*ShardedResolver, error) {
	// A single-resolver snapshot may embed a graph section; re-sharding
	// discards it (decode still validates it) and rebuilds per shard.
	c, nextID, ents, _, err := decodeSnapshot(rd)
	if err != nil {
		return nil, err
	}
	sr := NewSharded(c, n)
	groupIDs := make([][]int64, len(sr.shards))
	groups := make([][][]entity.Attribute, len(sr.shards))
	for _, e := range ents {
		s := shardOf(e.id, len(sr.shards))
		groupIDs[s] = append(groupIDs[s], e.id)
		groups[s] = append(groups[s], e.attrs)
	}
	for i := range sr.shards {
		if len(groups[i]) > 0 {
			sr.shards[i].InsertAssigned(groupIDs[i], groups[i])
		}
	}
	sr.nextID.Store(nextID)
	return sr, nil
}

// RegisterMetrics exposes the sharded resolver under the registry:
// aggregate series matching the single-resolver names, per-shard entity
// counts and scatter latency under a shard label, the size-skew gauge
// and the gather merge cost.
func (sr *ShardedResolver) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("online_shards",
		"Shard count of the sharded resolver.", nil,
		func() float64 { return float64(len(sr.shards)) })
	reg.GaugeFunc("online_shard_size_skew",
		"Largest shard's entity count relative to the even share (1.0 = balanced).", nil,
		func() float64 { return sizeSkew(sr.shardSizes()) })
	reg.CounterFunc("online_epoch_publishes_total",
		"Snapshot epochs published (summed across shards).", nil,
		func() float64 { return float64(sr.Stats().Epoch) })
	reg.CounterFunc("online_compactions_total",
		"Tombstone-triggered index compactions (all shards).", nil,
		func() float64 { return float64(sr.Stats().Compactions) })
	reg.CounterFunc("online_inserts_total",
		"Entities inserted since start.", nil,
		func() float64 { return float64(sr.Stats().Inserts) })
	reg.CounterFunc("online_deletes_total",
		"Entities deleted since start.", nil,
		func() float64 { return float64(sr.Stats().Deletes) })
	reg.GaugeFunc("online_entities",
		"Resident (non-deleted) entities across all shards.", nil,
		func() float64 { return float64(sr.Len()) })
	reg.GaugeFunc("online_tombstones",
		"Dead index slots awaiting compaction (all shards).", nil,
		func() float64 { return float64(sr.Stats().Tombstones) })
	reg.RegisterHistogram("online_gather_merge_duration_seconds",
		"Cost of merging per-shard top-k lists into the global answer.", nil, 1e-9, sr.tel.mergeNS)
	for i := range sr.shards {
		i := i
		lbl := metrics.Labels{"shard": strconv.Itoa(i)}
		reg.GaugeFunc("online_shard_entities",
			"Resident entities per shard.", lbl,
			func() float64 { return float64(sr.shards[i].Len()) })
		reg.RegisterHistogram("online_shard_query_duration_seconds",
			"Per-shard wall time of scatter-gather queries.", lbl, 1e-9, sr.tel.shardNS[i])
	}
}

func (sr *ShardedResolver) shardSizes() []int {
	sizes := make([]int, len(sr.shards))
	for i, r := range sr.shards {
		sizes[i] = r.Len()
	}
	return sizes
}

// ShardedSnapshot is an immutable scatter-gather view over one snapshot
// per shard. Any number of goroutines may query it concurrently.
type ShardedSnapshot struct {
	cfg     Config
	shards  []*Snapshot
	queries *atomic.Uint64
	tel     *shardedTelemetry
}

// Epoch returns the sum of the shard epochs — monotonic under writes to
// any shard, like the single resolver's epoch under every write.
func (ss *ShardedSnapshot) Epoch() uint64 {
	var sum uint64
	for _, s := range ss.shards {
		sum += s.Epoch()
	}
	return sum
}

// Len returns the number of entities visible across all shards.
func (ss *ShardedSnapshot) Len() int {
	total := 0
	for _, s := range ss.shards {
		total += s.Len()
	}
	return total
}

// Attrs resolves a candidate id to its stored attributes via the owning
// shard — placement is a pure function of (id, shard count), so the
// lookup touches exactly one shard.
func (ss *ShardedSnapshot) Attrs(id int64) ([]entity.Attribute, bool) {
	return ss.shards[shardOf(id, len(ss.shards))].Attrs(id)
}

// Query resolves an incoming entity against every shard in parallel and
// merges the per-shard answers; results are identical to a single
// resolver holding the union of the shards.
func (ss *ShardedSnapshot) Query(attrs []entity.Attribute, opt QueryOptions) []Candidate {
	out, _ := ss.QueryTraced(attrs, opt)
	return out
}

// QueryTraced answers exactly like Query and returns the aggregate
// phase breakdown: Encode and Search are the slowest shard's phases
// (the scatter's critical path, with the merge folded into Search),
// Entities counts all shards.
func (ss *ShardedSnapshot) QueryTraced(attrs []entity.Attribute, opt QueryOptions) ([]Candidate, Trace) {
	ss.queries.Add(1)
	n := len(ss.shards)
	per := make([][]Candidate, n)
	traces := make([]Trace, n)
	ss.scatter(func(i int) {
		per[i], traces[i] = ss.shards[i].QueryTraced(attrs, opt)
	})
	tr := ss.foldTraces(traces)
	begin := time.Now()
	out := ss.merge(per, ss.k(opt))
	merge := time.Since(begin)
	ss.tel.mergeNS.ObserveDuration(merge)
	tr.Search += merge
	tr.Candidates = len(out)
	return out, tr
}

// QueryBatch scatters the whole batch to every shard — each shard pays
// one pool checkout for the batch — then merges shard answers query by
// query. Results are identical to len(batch) Query calls.
func (ss *ShardedSnapshot) QueryBatch(batch [][]entity.Attribute, opt QueryOptions) ([][]Candidate, Trace) {
	agg := Trace{Epoch: ss.Epoch(), Entities: ss.Len()}
	if len(batch) == 0 {
		return nil, agg
	}
	ss.queries.Add(uint64(len(batch)))
	n := len(ss.shards)
	perShard := make([][][]Candidate, n)
	traces := make([]Trace, n)
	ss.scatter(func(i int) {
		perShard[i], traces[i] = ss.shards[i].QueryBatch(batch, opt)
	})
	for _, t := range traces {
		if t.Encode > agg.Encode {
			agg.Encode = t.Encode
		}
		if t.Search > agg.Search {
			agg.Search = t.Search
		}
	}
	begin := time.Now()
	k := ss.k(opt)
	out := make([][]Candidate, len(batch))
	per := make([][]Candidate, n)
	for q := range batch {
		for i := range per {
			per[i] = perShard[i][q]
		}
		out[q] = ss.merge(per, k)
		agg.Candidates += len(out[q])
	}
	merge := time.Since(begin)
	ss.tel.mergeNS.ObserveDuration(merge)
	agg.Search += merge
	return out, agg
}

// scatter runs fn(i) for every shard concurrently (one goroutine per
// shard via the shared worker-pool helper), recording each shard's wall
// time into its scatter-latency histogram.
func (ss *ShardedSnapshot) scatter(fn func(i int)) {
	n := len(ss.shards)
	err := parallel.ForEach(n, n, func(i int) error {
		begin := time.Now()
		fn(i)
		ss.tel.shardNS[i].ObserveDuration(time.Since(begin))
		return nil
	})
	if err != nil {
		panic(err) // only a shard panic (wrapped *parallel.PanicError) reaches here
	}
}

// k resolves the effective cardinality threshold, like the single
// resolver's query path.
func (ss *ShardedSnapshot) k(opt QueryOptions) int {
	if opt.K > 0 {
		return opt.K
	}
	return ss.cfg.K
}

// foldTraces combines per-shard traces of one scatter: epochs and
// entity counts sum (matching Epoch/Len), phase times take the slowest
// shard — the critical path of the parallel fan-out.
func (ss *ShardedSnapshot) foldTraces(traces []Trace) Trace {
	var tr Trace
	for _, t := range traces {
		tr.Epoch += t.Epoch
		tr.Entities += t.Entities
		if t.Encode > tr.Encode {
			tr.Encode = t.Encode
		}
		if t.Search > tr.Search {
			tr.Search = t.Search
		}
	}
	return tr
}

// merge folds per-shard answer lists into the global answer under the
// method's own cut. Every per-shard list is sorted by (score desc, id
// asc) and the global order is the same comparison, so the merged
// answer equals the unsharded resolver's:
//
//   - EpsJoin keeps every candidate at or above the threshold — the
//     global answer is exactly the union;
//   - FlatKNN keeps the k lexicographically best (score, id) pairs — a
//     global winner beats everything in its own shard too, so it is in
//     that shard's top k;
//   - KNNJoin keeps candidates within the k highest distinct similarity
//     values — a set at global distinct rank r ≤ k is at distinct rank
//     ≤ r within its shard, so it survives the per-shard cut.
func (ss *ShardedSnapshot) merge(per [][]Candidate, k int) []Candidate {
	return mergeCandidates(ss.cfg.Method, per, k)
}

// mergeCandidates is the canonical scatter-gather fold shared by the
// sharded resolver (one part per shard) and the disk tier (one part
// for the memtable, one for the segment gather): concatenate, sort by
// (score desc, id asc), re-apply the method's cut. When the per-shard
// lists were produced by a filtered (predicate-pushdown) query the same
// argument applies verbatim to the filtered universe: every list holds
// its shard's cut over matching candidates, so the re-cut union is the
// global answer over matching candidates.
func mergeCandidates(method Method, per [][]Candidate, k int) []Candidate {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	all := make([]Candidate, 0, total)
	for _, p := range per {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	return cutCandidates(method, all, k)
}

// cutCandidates applies the method's cardinality cut to a candidate
// list already sorted by (score desc, id asc), in place.
func cutCandidates(method Method, all []Candidate, k int) []Candidate {
	switch method {
	case EpsJoin:
		// union only — no cut
	case FlatKNN:
		if len(all) > k {
			all = all[:k]
		}
	default: // KNNJoin: keep the k highest distinct similarity values
		distinct := 0
		last := math.Inf(1)
		for i, c := range all {
			if c.Score != last {
				if distinct == k {
					all = all[:i]
					break
				}
				distinct++
				last = c.Score
			}
		}
	}
	return all
}
