package online

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/knn"
	"erfilter/internal/segment"
	"erfilter/internal/sparse"
	"erfilter/internal/vector"
)

// This file wires the on-disk segment tier (internal/segment) behind
// the resolver: constructors that open disk-backed resolvers, the
// memtable flush that drains the in-memory index into a new segment,
// and the config codec pinned into the tier manifest so a reopened
// directory always serves the configuration it was built under.

// cfgMetaMagic versions the config blob stored as tier manifest meta.
const cfgMetaMagic = "ERCFG\x01\n"

// encodeConfigMeta serializes the filter-semantic Config fields (the
// same set a snapshot header records) with a self-contained magic and
// CRC trailer, for pinning into the segment tier's manifest.
func encodeConfigMeta(c Config) []byte {
	var buf bytes.Buffer
	bw := &binWriter{w: bufio.NewWriter(&buf)}
	bw.bytes([]byte(cfgMetaMagic))
	writeConfig(bw, c)
	bw.trailer()
	if bw.err == nil {
		bw.err = bw.w.Flush()
	}
	if bw.err != nil {
		// bytes.Buffer writes cannot fail; nothing else can error here.
		panic(fmt.Sprintf("online: encoding tier config meta: %v", bw.err))
	}
	return buf.Bytes()
}

// decodeConfigMeta mirrors encodeConfigMeta and fully validates the
// result, so a tampered manifest meta fails loudly at open.
func decodeConfigMeta(data []byte) (Config, error) {
	br := &binReader{r: bufio.NewReader(bytes.NewReader(data))}
	magic := make([]byte, len(cfgMetaMagic))
	br.bytes(magic)
	if br.err == nil && string(magic) != cfgMetaMagic {
		return Config{}, fmt.Errorf("online: tier meta has bad magic")
	}
	c := readConfig(br)
	br.checkTrailer()
	if br.err != nil {
		return Config{}, fmt.Errorf("online: tier meta: %w", br.err)
	}
	if _, err := br.r.ReadByte(); err != io.EOF {
		return Config{}, fmt.Errorf("online: tier meta has trailing bytes")
	}
	if err := validateConfig(c); err != nil {
		return Config{}, err
	}
	return c, nil
}

// flushLocked drains the memtable into a new immutable segment and
// resets the in-memory index to empty. Callers hold r.mu. An empty
// memtable still commits a manifest round — that ratchets the id
// watermark and persists any tier tombstones accumulated since the
// last flush (the durable store's checkpoint path relies on both).
// On error the memtable is left intact, so a durable caller can retry
// the flush while the WAL still covers every buffered entity.
func (r *Resolver) flushLocked() error {
	if r.tier == nil {
		return nil
	}
	if len(r.attrs) == 0 {
		return r.tier.Flush(nil, r.nextID)
	}
	ids := make([]int64, 0, len(r.attrs))
	for id := range r.attrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ents := make([]segment.Entry, len(ids))
	for i, id := range ids {
		attrs := r.attrs[id]
		txt := r.cfg.TextOf(attrs)
		ents[i] = segment.Entry{ID: id, Attrs: attrs}
		if r.sp != nil {
			ents[i].Tokens = r.cfg.Model.Tokens(txt)
		} else {
			ents[i].Vec = r.emb.Text(txt)
		}
	}
	if err := r.tier.Flush(ents, r.nextID); err != nil {
		return err
	}
	r.attrs = make(map[int64][]entity.Attribute)
	if r.sp != nil {
		r.sp = sparse.NewIncIndex()
		r.vocab = NewVocab()
	} else {
		r.kn = flatDense{knn.NewIncFlat(r.cfg.Metric)}
	}
	return nil
}

// Flush forces the memtable of a disk-backed resolver to a new segment
// and publishes the result; a no-op under StorageMemory. Volatile
// callers use it to persist a tail shorter than MemtableCap.
func (r *Resolver) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.flushLocked(); err != nil {
		return err
	}
	r.publishLocked()
	return nil
}

// OpenResolver creates (or reopens) a resolver under the config's
// storage kind. StorageMemory behaves exactly like NewResolver;
// StorageDisk roots a segment tier at cfg.SegmentDir, restores any
// segments a previous run flushed there, and flushes the memtable
// automatically whenever it crosses cfg.MemtableCap. Disk-backed
// resolvers must be Closed when done.
func OpenResolver(cfg Config) (*Resolver, error) {
	cfg = cfg.normalize()
	if cfg.Storage != StorageDisk {
		return NewResolver(cfg), nil
	}
	return newDiskResolver(cfg, nil, cfg.SegmentDir, true)
}

// newDiskResolver opens a disk-backed resolver over an explicit
// filesystem and tier directory (the seam the durable store and the
// crash tests use). When dir already holds a tier, the configuration
// pinned in its manifest wins over the caller's semantic fields —
// reopening a directory under a drifted config would silently change
// every stored score. Deployment-shape fields (memtable cap, merge
// fan-in) always come from the caller.
func newDiskResolver(cfg Config, fsys faultfs.FS, dir string, autoFlush bool) (*Resolver, error) {
	cfg = cfg.normalize()
	if dir == "" {
		return nil, fmt.Errorf("online: disk storage needs a segment directory")
	}
	meta, err := segment.ReadMeta(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("online: reading tier manifest: %w", err)
	}
	if len(meta) > 0 {
		stored, err := decodeConfigMeta(meta)
		if err != nil {
			return nil, err
		}
		stored.Storage = StorageDisk
		stored.SegmentDir = cfg.SegmentDir
		stored.MemtableCap = cfg.MemtableCap
		stored.MergeFanin = cfg.MergeFanin
		stored.segSyncMerge = cfg.segSyncMerge
		cfg = stored.normalize()
	}
	if cfg.Method == FlatKNN && cfg.Dense == DenseHNSW {
		return nil, fmt.Errorf("online: disk storage serves the exact dense index only (use -knn-index flat)")
	}
	kind, dim := segment.KindSparse, 0
	if cfg.Method == FlatKNN {
		kind, dim = segment.KindDense, cfg.Dim
	}
	t, err := segment.Open(segment.Options{
		FS:         fsys,
		Dir:        dir,
		Kind:       kind,
		Dim:        dim,
		Measure:    cfg.Measure,
		Metric:     cfg.Metric,
		MergeFanin: cfg.MergeFanin,
		Meta:       encodeConfigMeta(cfg),
		SyncMerge:  cfg.segSyncMerge,
	})
	if err != nil {
		return nil, err
	}
	r := &Resolver{cfg: cfg, attrs: make(map[int64][]entity.Attribute), tel: newTelemetry()}
	tel := r.tel
	r.scratch.New = func() any { tel.scratchMisses.Inc(); return &sparse.Scratch{} }
	r.embed.New = func() any { tel.embedMisses.Inc(); return vector.NewEmbedder(cfg.Dim) }
	if cfg.Method == FlatKNN {
		r.kn = flatDense{knn.NewIncFlat(cfg.Metric)}
		r.emb = vector.NewEmbedder(cfg.Dim)
	} else {
		r.sp = sparse.NewIncIndex()
		r.vocab = NewVocab()
	}
	r.tier = t
	r.autoFlush = autoFlush
	r.nextID = t.Watermark()
	r.mu.Lock()
	r.publishLocked()
	r.mu.Unlock()
	return r, nil
}

// OpenSharded creates (or reopens) a sharded resolver under the
// config's storage kind. Under StorageDisk each shard roots its own
// tier at SegmentDir/shard-<i>; shard routing is a pure function of
// (id, shard count), so reopening with the same count finds every
// entity in the shard that flushed it.
func OpenSharded(cfg Config, n int) (*ShardedResolver, error) {
	cfg = cfg.normalize()
	if n < 1 {
		n = 1
	}
	if cfg.Storage != StorageDisk {
		return NewSharded(cfg, n), nil
	}
	if cfg.SegmentDir == "" {
		return nil, fmt.Errorf("online: disk storage needs a segment directory")
	}
	shards := make([]*Resolver, n)
	for i := range shards {
		sc := cfg
		sc.SegmentDir = filepath.Join(cfg.SegmentDir, fmt.Sprintf("shard-%d", i))
		r, err := newDiskResolver(sc, nil, sc.SegmentDir, true)
		if err != nil {
			for _, prev := range shards[:i] {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("online: opening shard %d: %w", i, err)
		}
		shards[i] = r
	}
	return newShardedOver(cfg, shards), nil
}

// Close releases every shard's segment tier; a no-op for in-memory
// shards.
func (sr *ShardedResolver) Close() error {
	var first error
	for _, r := range sr.shards {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LoadStorage loads any snapshot written by Save into a disk-backed
// resolver: the snapshot supplies the configuration and the entities,
// the caller's cfg supplies the storage shape (segment directory,
// memtable cap, merge fan-in). The tier directory must be fresh —
// loading a snapshot over an existing tier would collide ids with
// already-flushed segments.
func LoadStorage(rd io.Reader, cfg Config) (*Resolver, error) {
	c, nextID, ents, _, err := decodeSnapshot(rd)
	if err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	c.Storage = StorageDisk
	c.SegmentDir = cfg.SegmentDir
	c.MemtableCap = cfg.MemtableCap
	c.MergeFanin = cfg.MergeFanin
	c.segSyncMerge = cfg.segSyncMerge
	if c.Method == FlatKNN && c.Dense == DenseHNSW {
		// The snapshot's graph cannot flush to segments; serve its
		// vectors through the exact index instead.
		c.Dense = DenseFlat
		c.HNSW = knn.HNSWParams{}
	}
	r, err := OpenResolver(c)
	if err != nil {
		return nil, err
	}
	if r.Len() > 0 || r.tier.Watermark() > 0 {
		_ = r.Close()
		return nil, fmt.Errorf("online: refusing to load a snapshot into non-empty segment tier %s", c.SegmentDir)
	}
	ids := make([]int64, len(ents))
	batch := make([][]entity.Attribute, len(ents))
	for i, e := range ents {
		ids[i] = e.id
		batch[i] = e.attrs
	}
	if len(ids) > 0 {
		r.InsertAssigned(ids, batch)
	}
	r.mu.Lock()
	if nextID > r.nextID {
		r.nextID = nextID
	}
	r.mu.Unlock()
	return r, nil
}
