package online

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"erfilter/internal/entity"
	"erfilter/internal/query"
)

// filterWords feed the synthetic attribute generator: enough overlap
// that queries find neighbors, enough variety that predicates split the
// collection into non-trivial matching subsets.
var (
	filterNames  = []string{"canon powershot", "nikon coolpix", "sony cybershot", "canon eos", "apple ipod", "samsung galaxy", "nikon d3200", "sony alpha"}
	filterCities = []string{"berlin", "munich", "paris", "Berlin"}
	filterTags   = []string{"a1", "a2", "b1", "b2"}
)

func filterEntity(rng *rand.Rand) []entity.Attribute {
	return []entity.Attribute{
		{Name: "name", Value: filterNames[rng.Intn(len(filterNames))] + fmt.Sprintf(" model %d", rng.Intn(30))},
		{Name: "city", Value: filterCities[rng.Intn(len(filterCities))]},
		{Name: "tag", Value: filterTags[rng.Intn(len(filterTags))]},
	}
}

// filterCorpus is the predicate corpus the equivalence test sweeps:
// every clause operator, boolean shape, and modifier the DSL offers.
var filterCorpus = []string{
	`city = berlin`,
	`city != berlin`,
	`city = berlin AND tag ^= a`,
	`city = paris OR tag = b1`,
	`NOT (city = munich OR tag = a2)`,
	`name ~ "canon|nikon"`,
	`name ^= "sony" AND NOT tag = b2`,
	`tag != zzz`,     // matches everything
	`city = nowhere`, // matches nothing
	`score >= 0.05`,
	`city = berlin score >= 0.1`,
}

// TestPredicatePushdownEquivalenceQuick is the pushdown property test:
// for every method and shard count 1–8, a DSL-filtered query must equal
// the post-hoc oracle — query unfiltered at k = collection size, drop
// non-matching candidates, then apply the method's cardinality cut to
// what survives.
func TestPredicatePushdownEquivalenceQuick(t *testing.T) {
	const nEntities = 64
	rng := rand.New(rand.NewSource(7))
	collection := make([][]entity.Attribute, nEntities)
	for i := range collection {
		collection[i] = filterEntity(rng)
	}
	queries := make([][]entity.Attribute, 12)
	for i := range queries {
		queries[i] = filterEntity(rng)
	}

	for name, cfg := range testConfigs() {
		for shards := 1; shards <= 8; shards++ {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				sr := NewSharded(cfg, shards)
				sr.InsertBatch(collection)
				k := cfg.normalize().K
				for _, src := range filterCorpus {
					q, err := query.Parse(src)
					if err != nil {
						t.Fatalf("Parse(%q): %v", src, err)
					}
					for _, qa := range queries {
						opt := QueryOptions{Exact: true}
						if q.Where != nil {
							opt.Predicate = q.Match
						}
						opt.MinScore = q.MinScore
						got := sr.Query(qa, opt)
						want := pushdownOracle(sr, qa, q, k, cfg.Method)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("filtered query diverges from post-hoc oracle\npredicate: %s\nquery: %v\ngot:  %v\nwant: %v",
								src, qa, got, want)
						}
					}
				}
			})
		}
	}
}

// pushdownOracle computes the filtered answer the slow way: unfiltered
// query with the cardinality cut widened past the collection size,
// post-hoc filtering, then the method's own cut over the survivors.
func pushdownOracle(sr *ShardedResolver, qa []entity.Attribute, q *query.Query, k int, method Method) []Candidate {
	raw := sr.Query(qa, QueryOptions{K: sr.Len() + 1, Exact: true})
	keep := make([]Candidate, 0, len(raw))
	for _, c := range raw {
		if q.MinScore != nil && c.Score < *q.MinScore {
			continue
		}
		if q.Where != nil {
			attrs, ok := sr.Get(c.ID)
			if !ok || !q.Match(attrs) {
				continue
			}
		}
		keep = append(keep, c)
	}
	return cutCandidates(method, keep, k)
}

// TestPredicateDropsDeletedEntity pins the post-publish drift rule: a
// snapshot predicate consults live attributes, so an entity deleted
// after the snapshot was published is filtered out of its candidates
// rather than matched against stale attributes.
func TestPredicateDropsDeletedEntity(t *testing.T) {
	cfg := testConfigs()["knnj"]
	r := NewResolver(cfg)
	var ids []int64
	for _, s := range corpus {
		ids = append(ids, r.Insert(attrsText(s)))
	}
	snap := r.Snapshot()
	all := func([]entity.Attribute) bool { return true }
	pre := snap.Query(attrsText(corpus[0]), QueryOptions{Predicate: all})
	if len(pre) == 0 || pre[0].ID != ids[0] {
		t.Fatalf("precondition failed: %v", pre)
	}
	if !r.Delete(ids[0]) {
		t.Fatal("delete failed")
	}
	for _, c := range snap.Query(attrsText(corpus[0]), QueryOptions{Predicate: all}) {
		if c.ID == ids[0] {
			t.Fatalf("deleted entity %d still passes the predicate filter", ids[0])
		}
	}
	// The unfiltered query against the old snapshot still sees it — the
	// filter, not the snapshot, consults live state.
	found := false
	for _, c := range snap.Query(attrsText(corpus[0]), QueryOptions{}) {
		found = found || c.ID == ids[0]
	}
	if !found {
		t.Fatal("unfiltered old-snapshot query must still see the deleted entity")
	}
}

// TestMinScoreNegativeFloor pins the pointer semantics of MinScore on
// FlatKNN, whose scores are negated distances: a floor of 0 (meaningful,
// not "unset") excludes everything with positive distance, and a
// negative floor keeps close candidates.
func TestMinScoreNegativeFloor(t *testing.T) {
	cfg := testConfigs()["flat"]
	r := NewResolver(cfg)
	for _, s := range corpus {
		r.Insert(attrsText(s))
	}
	zero := 0.0
	if got := r.Query(attrsText("something else entirely"), QueryOptions{MinScore: &zero}); len(got) != 0 {
		t.Fatalf("MinScore 0 on negated distances must drop all, got %v", got)
	}
	raw := r.Query(attrsText(corpus[0]), QueryOptions{})
	if len(raw) == 0 {
		t.Fatal("no raw candidates")
	}
	floor := raw[0].Score // keep only the best-scoring candidate's ties
	got := r.Query(attrsText(corpus[0]), QueryOptions{MinScore: &floor})
	if len(got) == 0 || got[0] != raw[0] {
		t.Fatalf("floor at best score: got %v, want first of %v", got, raw)
	}
	for _, c := range got {
		if c.Score < floor {
			t.Fatalf("candidate below floor: %v", c)
		}
	}
}
