// Package online turns the batch-built, throwaway filters of the
// benchmark into a long-lived serving subsystem: incremental indexes that
// accept entities as they arrive, a Resolver answering top-candidate
// queries under one tuned configuration, reader/writer isolation through
// epoch-swapped immutable snapshots (an RCU-style atomic pointer swap —
// the query hot path takes no locks), and a pure-stdlib binary snapshot
// format so a populated resolver survives restarts.
package online

import (
	"fmt"
	"sort"
	"strings"

	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
	"erfilter/internal/tuning"
	"erfilter/internal/vector"
)

// Method selects the filtering family a Resolver serves.
type Method uint8

const (
	// KNNJoin serves the sparse kNN-Join: per query, the k sets with the
	// highest distinct similarity values (Table IV semantics).
	KNNJoin Method = iota
	// EpsJoin serves the sparse ε-Join: all sets with similarity ≥ t.
	EpsJoin
	// FlatKNN serves the dense exact kNN over tuple embeddings (the
	// FAISS-Flat configuration the paper settles on).
	FlatKNN
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case KNNJoin:
		return "knnj"
	case EpsJoin:
		return "epsjoin"
	case FlatKNN:
		return "flat"
	}
	return "unknown"
}

// DenseIndex selects the incremental index structure behind FlatKNN's
// dense queries: the exact flat scan or the approximate HNSW graph.
type DenseIndex uint8

const (
	// DenseFlat scans every live vector per query — exact, O(n).
	DenseFlat DenseIndex = iota
	// DenseHNSW runs a beam search over an incremental HNSW graph —
	// approximate, sub-linear, recall governed by the ef knob.
	DenseHNSW
)

// String implements fmt.Stringer.
func (d DenseIndex) String() string {
	if d == DenseHNSW {
		return "hnsw"
	}
	return "flat"
}

// ParseDenseIndex converts a dense index name used by cmd flags
// (-knn-index) to a DenseIndex.
func ParseDenseIndex(s string) (DenseIndex, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "flat", "exact":
		return DenseFlat, nil
	case "hnsw", "ann":
		return DenseHNSW, nil
	}
	return 0, fmt.Errorf("online: unknown dense index %q", s)
}

// StorageKind selects where a resolver's index lives: entirely on the
// heap (the default), or split between a bounded in-memory memtable
// and an on-disk LSM segment tier.
type StorageKind uint8

const (
	// StorageMemory keeps every entity in the incremental in-memory
	// indexes.
	StorageMemory StorageKind = iota
	// StorageDisk bounds the memtable and flushes overflow to immutable
	// mmap'd segment files under Config.SegmentDir, with answers
	// byte-identical to StorageMemory.
	StorageDisk
)

// String implements fmt.Stringer.
func (s StorageKind) String() string {
	if s == StorageDisk {
		return "disk"
	}
	return "memory"
}

// ParseStorage converts a storage name used by cmd flags (-storage) to
// a StorageKind.
func ParseStorage(s string) (StorageKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "memory", "mem", "ram":
		return StorageMemory, nil
	case "disk", "lsm", "segment":
		return StorageDisk, nil
	}
	return 0, fmt.Errorf("online: unknown storage kind %q", s)
}

// ParseMethod converts a method name used by cmd flags and the snapshot
// format to a Method.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "knnj", "knn-join", "knnjoin":
		return KNNJoin, nil
	case "epsjoin", "eps-join", "eps":
		return EpsJoin, nil
	case "flat", "faiss", "flatknn":
		return FlatKNN, nil
	}
	return 0, fmt.Errorf("online: unknown method %q", s)
}

// Config is one tuned filter configuration held resident by a Resolver.
// It mirrors the parameters of the corresponding core filters (Tables IV
// and V) plus the schema setting that turns an entity's attributes into
// its indexed text.
type Config struct {
	Method Method
	// Setting selects schema-agnostic (all values) or schema-based (one
	// attribute) text assembly; BestAttribute names the attribute for the
	// latter.
	Setting       entity.SchemaSetting
	BestAttribute string
	// Clean applies stop-word removal and stemming (CL).
	Clean bool
	// Model is the representation model (RM) of the sparse methods.
	Model text.Model
	// Measure is the similarity measure (SM) of the sparse methods.
	Measure sparse.Measure
	// K is the cardinality threshold of KNNJoin and FlatKNN.
	K int
	// Threshold is the similarity threshold t of EpsJoin.
	Threshold float64
	// Metric ranks FlatKNN results (the paper's configuration uses
	// squared Euclidean distance over normalized embeddings).
	Metric knn.Metric
	// Dim is the embedding dimensionality of FlatKNN (0 = vector.Dim).
	Dim int
	// Dense selects the incremental index behind FlatKNN: the exact
	// flat scan (default) or the approximate HNSW graph.
	Dense DenseIndex
	// HNSW tunes the graph when Dense is DenseHNSW; zero fields take
	// the knn package defaults.
	HNSW knn.HNSWParams

	// Storage selects in-memory (default) or disk-backed indexing. The
	// fields below configure the disk tier and, like shard topology,
	// are deployment shape rather than filter semantics: they are not
	// serialized into snapshots, and the tier manifest's own copy wins
	// over a caller's on reopen.
	Storage StorageKind
	// SegmentDir is the tier directory for StorageDisk resolvers
	// opened volatile (durable stores derive it from the WAL dir).
	SegmentDir string
	// MemtableCap is the entity count at which the memtable flushes to
	// a new segment (0 = 32768).
	MemtableCap int
	// MergeFanin is how many segments one compaction folds together
	// (0 = 8, minimum 2).
	MergeFanin int

	// segSyncMerge runs tier compactions inline rather than in the
	// background — deterministic scheduling for the equivalence and
	// crash property tests.
	segSyncMerge bool
}

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.K <= 0 {
		c.K = 1
	}
	if c.Dim <= 0 {
		c.Dim = vector.Dim
	}
	if c.Method == FlatKNN && c.Dense == DenseHNSW {
		// Pin the concrete graph parameters now: they are persisted in
		// snapshots and must not drift if the knn defaults ever change.
		c.HNSW = c.HNSW.Normalized()
	}
	if c.Storage == StorageDisk {
		if c.MemtableCap <= 0 {
			c.MemtableCap = 32768
		}
		if c.MergeFanin < 2 {
			c.MergeFanin = 8
		}
	}
	return c
}

// methodLabel is the metrics "method" label: dense configurations are
// split by index structure so flat and hnsw latency distributions never
// mix in one series.
func (c Config) methodLabel() string {
	if c.Method == FlatKNN && c.Dense == DenseHNSW {
		return "hnsw"
	}
	return c.Method.String()
}

// Describe renders the configuration deterministically for logs and the
// /stats endpoint.
func (c Config) Describe() string {
	parts := []string{"method=" + c.Method.String(), "setting=" + c.Setting.String()}
	if c.Setting == entity.SchemaBased {
		parts = append(parts, "attribute="+c.BestAttribute)
	}
	parts = append(parts, fmt.Sprintf("clean=%v", c.Clean))
	switch c.Method {
	case KNNJoin:
		parts = append(parts, "model="+c.Model.String(), "measure="+c.Measure.String(), fmt.Sprintf("k=%d", c.K))
	case EpsJoin:
		parts = append(parts, "model="+c.Model.String(), "measure="+c.Measure.String(), fmt.Sprintf("t=%.2f", c.Threshold))
	case FlatKNN:
		parts = append(parts, fmt.Sprintf("metric=%s", c.Metric), fmt.Sprintf("k=%d", c.K), fmt.Sprintf("dim=%d", c.Dim), "index="+c.Dense.String())
		if c.Dense == DenseHNSW {
			p := c.HNSW.Normalized()
			parts = append(parts, fmt.Sprintf("m=%d", p.M), fmt.Sprintf("efc=%d", p.EfConstruction), fmt.Sprintf("ef=%d", p.EfSearch))
		}
	}
	return strings.Join(parts, " ")
}

// FromTuning converts a Problem-1 tuning result into a serving Config, so
// a grid-searched optimum can be promoted directly into the online
// resolver. Only the filter families the online subsystem serves are
// supported (kNN-Join, ε-Join, FAISS-Flat).
func FromTuning(r *tuning.Result, setting entity.SchemaSetting, bestAttribute string) (Config, error) {
	if r == nil || r.Filter == nil {
		return Config{}, fmt.Errorf("online: tuning result has no filter")
	}
	cfg := Config{Setting: setting, BestAttribute: bestAttribute}
	switch f := r.Filter.(type) {
	case *core.KNNJoinFilter:
		cfg.Method = KNNJoin
		cfg.Clean, cfg.Model, cfg.Measure, cfg.K = f.Clean, f.Model, f.Measure, f.K
	case *core.EpsJoinFilter:
		cfg.Method = EpsJoin
		cfg.Clean, cfg.Model, cfg.Measure, cfg.Threshold = f.Clean, f.Model, f.Measure, f.Threshold
	case *core.FlatKNNFilter:
		cfg.Method = FlatKNN
		cfg.Clean, cfg.K, cfg.Metric = f.Clean, f.K, knn.L2Squared
	default:
		return Config{}, fmt.Errorf("online: filter %s is not servable online", r.Filter.Name())
	}
	return cfg.normalize(), nil
}

// TextOf assembles the indexed/queried text of an entity under the
// config's schema setting, mirroring entity.NewView, and applies the
// optional cleaning. Attributes are consumed in slice order, so CSV rows
// and JSON payloads must present them deterministically. Exported so
// the match stage scores exactly the text the filter indexed.
func (c Config) TextOf(attrs []entity.Attribute) string {
	var sb strings.Builder
	for _, a := range attrs {
		if a.Value == "" {
			continue
		}
		if c.Setting == entity.SchemaBased && a.Name != c.BestAttribute {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(a.Value)
	}
	s := sb.String()
	if c.Clean {
		s = text.Clean(s)
	}
	return s
}

// AttrsFromMap converts a JSON-style attribute map into a deterministic
// attribute list (sorted by name), the form the HTTP daemon feeds to
// Insert and Query.
func AttrsFromMap(m map[string]string) []entity.Attribute {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	attrs := make([]entity.Attribute, 0, len(names))
	for _, name := range names {
		attrs = append(attrs, entity.Attribute{Name: name, Value: m[name]})
	}
	return attrs
}
