package online

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/metrics"
	"erfilter/internal/parallel"
)

// shardMetaName records the shard count a sharded store directory was
// created with. Reopening with a different -shards is refused: shard
// routing is a pure function of (id, shard count), so changing the
// count would strand entities in WALs their shard no longer owns.
// Re-sharding is a bulk operation — save a snapshot, load it into a
// fresh directory at the new count — not a flag flip.
const shardMetaName = "SHARDS"

// ShardedStore is the durable sharded resolver: one independent Store
// (its own WAL directory, its own checkpoints, its own degraded state)
// per shard under dir/shard-<i>, glued together by the same global id
// allocator and scatter-gather machinery as ShardedResolver. Recovery
// replays every shard's WAL in parallel; SIGTERM-path Close checkpoints
// all shards. A WAL failure degrades its own shard — and therefore the
// whole store's write path — to read-only, while queries keep serving.
type ShardedStore struct {
	res    *ShardedResolver
	stores []*Store
}

// OpenShardedStore opens (or initializes) the sharded durable resolver
// in dir. The shard count is pinned by a meta file on first open;
// subsequent opens must pass the same count. Each shard recovers
// independently — snapshot load plus WAL replay run on one goroutine
// per shard, so recovery time is bounded by the largest shard.
func OpenShardedStore(dir string, cfg Config, shards int, opt StoreOptions) (*ShardedStore, error) {
	if shards < 1 {
		shards = 1
	}
	if opt.FS == nil {
		opt.FS = faultfs.OS{}
	}
	if err := opt.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("online: creating sharded store dir: %w", err)
	}
	n, err := loadOrInitShardMeta(opt.FS, dir, shards)
	if err != nil {
		return nil, err
	}
	stores := make([]*Store, n)
	err = parallel.ForEach(n, n, func(i int) error {
		st, err := OpenStore(filepath.Join(dir, "shard-"+strconv.Itoa(i)), cfg, opt)
		if err != nil {
			return fmt.Errorf("online: opening shard %d: %w", i, err)
		}
		stores[i] = st
		return nil
	})
	if err != nil {
		for _, st := range stores {
			if st != nil {
				_ = st.Close()
			}
		}
		return nil, err
	}
	resolvers := make([]*Resolver, n)
	for i, st := range stores {
		resolvers[i] = st.Resolver()
	}
	return &ShardedStore{res: newShardedOver(resolvers[0].Config(), resolvers), stores: stores}, nil
}

// loadOrInitShardMeta reads the pinned shard count, or atomically writes
// it on the first open of the directory.
func loadOrInitShardMeta(fsys faultfs.FS, dir string, shards int) (int, error) {
	path := filepath.Join(dir, shardMetaName)
	f, err := faultfs.Open(fsys, path)
	if err == nil {
		defer f.Close()
		raw, rerr := io.ReadAll(f)
		if rerr != nil {
			return 0, fmt.Errorf("online: reading shard meta: %w", rerr)
		}
		v, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil || v < 1 {
			return 0, fmt.Errorf("online: damaged shard meta %s: %q", path, raw)
		}
		if v != shards {
			return 0, fmt.Errorf("online: store at %s was created with %d shards, not %d (re-shard by loading a snapshot into a fresh directory)", dir, v, shards)
		}
		return v, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("online: opening shard meta: %w", err)
	}
	err = writeFileAtomic(fsys, dir, shardMetaName+".tmp", shardMetaName, func(w io.Writer) error {
		_, werr := fmt.Fprintf(w, "%d\n", shards)
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("online: writing shard meta: %w", err)
	}
	return shards, nil
}

// Resolver returns the sharded resolver for the read paths (Query,
// Get, Snapshot, Stats, Save). All mutations must go through the store.
func (s *ShardedStore) Resolver() *ShardedResolver { return s.res }

// Shards returns the shard count.
func (s *ShardedStore) Shards() int { return len(s.stores) }

// Ready reports whether every shard accepts writes; the first degraded
// shard's failure is returned.
func (s *ShardedStore) Ready() (bool, error) {
	for _, st := range s.stores {
		if ok, err := st.Ready(); !ok {
			return false, err
		}
	}
	return true, nil
}

// Insert durably adds one entity to its shard; see Store.Insert.
func (s *ShardedStore) Insert(attrs []entity.Attribute) (int64, error) {
	ids, err := s.InsertBatch([][]entity.Attribute{attrs})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// InsertBatch assigns globally monotonic ids, routes each entity to its
// shard and commits the per-shard sub-batches in parallel — one WAL
// append stream plus one group-committed fsync per touched shard. On
// error the batch may be partially durable: sub-batches acknowledged by
// healthy shards stay committed (ids are never reused and replay is
// idempotent), and the first failing shard's error is returned.
func (s *ShardedStore) InsertBatch(batch [][]entity.Attribute) ([]int64, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	n := len(s.stores)
	base := s.res.nextID.Add(int64(len(batch))) - int64(len(batch))
	ids := make([]int64, len(batch))
	groupIDs := make([][]int64, n)
	groups := make([][][]entity.Attribute, n)
	for i := range batch {
		id := base + int64(i)
		ids[i] = id
		sh := shardOf(id, n)
		groupIDs[sh] = append(groupIDs[sh], id)
		groups[sh] = append(groups[sh], batch[i])
	}
	err := parallel.ForEach(n, n, func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		return s.stores[i].InsertAssigned(groupIDs[i], groups[i])
	})
	if err != nil {
		return nil, err
	}
	return ids, nil
}

// Delete durably tombstones an entity on its shard; see Store.Delete.
func (s *ShardedStore) Delete(id int64) (bool, error) {
	return s.stores[shardOf(id, len(s.stores))].Delete(id)
}

// Checkpoint checkpoints every shard in parallel. Every shard is
// attempted regardless of other shards' failures; the first error (by
// shard index) is returned.
func (s *ShardedStore) Checkpoint() error {
	errs := make([]error, len(s.stores))
	_ = parallel.ForEach(len(s.stores), len(s.stores), func(i int) error {
		errs[i] = s.stores[i].Checkpoint()
		return nil
	})
	return errors.Join(errs...)
}

// Close checkpoints healthy shards and closes every WAL. The store must
// not be used afterwards.
func (s *ShardedStore) Close() error {
	errs := make([]error, len(s.stores))
	_ = parallel.ForEach(len(s.stores), len(s.stores), func(i int) error {
		errs[i] = s.stores[i].Close()
		return nil
	})
	return errors.Join(errs...)
}

// ShardedStoreStats aggregates the durability layer across shards for
// the /stats endpoint.
type ShardedStoreStats struct {
	Shards      int          `json:"shards"`
	Checkpoints uint64       `json:"checkpoints"`
	Degraded    bool         `json:"degraded"`
	Reason      string       `json:"reason,omitempty"`
	PerShard    []StoreStats `json:"per_shard"`
}

// Stats summarizes the sharded durability layer.
func (s *ShardedStore) Stats() ShardedStoreStats {
	st := ShardedStoreStats{Shards: len(s.stores)}
	for _, sh := range s.stores {
		ss := sh.Stats()
		st.PerShard = append(st.PerShard, ss)
		st.Checkpoints += ss.Checkpoints
		if ss.Degraded && !st.Degraded {
			st.Degraded = true
			st.Reason = ss.Reason
		}
	}
	return st
}

// RegisterMetrics exposes the durability layer of every shard under a
// shard label (WAL fsync/commit telemetry, checkpoint cost) plus
// store-wide aggregate checkpoint and degraded series.
func (s *ShardedStore) RegisterMetrics(reg *metrics.Registry) {
	for i, st := range s.stores {
		st := st
		lbl := metrics.Labels{"shard": strconv.Itoa(i)}
		st.log.RegisterMetrics(reg, lbl)
		reg.RegisterHistogram("store_checkpoint_duration_seconds",
			"End-to-end checkpoint cost: capture, rotate, write, rename, trim.", lbl, 1e-9, &st.ckptNS)
	}
	reg.CounterFunc("store_checkpoints_total",
		"Completed snapshot checkpoints across all shards.", nil,
		func() float64 { return float64(s.Stats().Checkpoints) })
	reg.GaugeFunc("store_degraded",
		"1 when any shard has fallen back to read-only after a WAL failure.", nil,
		func() float64 {
			if ok, _ := s.Ready(); !ok {
				return 1
			}
			return 0
		})
}
