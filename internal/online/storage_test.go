package online

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
)

// diskConfig turns a test config into its disk-backed twin with a tiny
// memtable and inline merges, so short workloads exercise flushes,
// merges and tombstone GC.
func diskConfig(cfg Config, dir string, cap int) Config {
	cfg.Storage = StorageDisk
	cfg.SegmentDir = dir
	cfg.MemtableCap = cap
	cfg.MergeFanin = 2
	cfg.segSyncMerge = true
	return cfg
}

// mutator is the write surface shared by *Resolver and *ShardedResolver,
// so one workload can drive every topology under test in lockstep.
type mutator interface {
	Insert([]entity.Attribute) int64
	InsertBatch([][]entity.Attribute) []int64
	Delete(int64) bool
	Query([]entity.Attribute, QueryOptions) []Candidate
	Get(int64) ([]entity.Attribute, bool)
	Len() int
}

// applyOpsAll drives one randomized workload — single inserts, batch
// inserts, deletes (of residents and of already-flushed entities) —
// against every target, asserting identical id assignment and delete
// outcomes throughout. Returns the ids still live.
func applyOpsAll(t *testing.T, rng *rand.Rand, targets []mutator, inserts, deletes int) []int64 {
	t.Helper()
	var live []int64
	i := 0
	for i < inserts {
		if rng.Intn(4) == 0 {
			n := 1 + rng.Intn(8)
			if i+n > inserts {
				n = inserts - i
			}
			batch := make([][]entity.Attribute, n)
			for j := range batch {
				batch[j] = attrsText(fmt.Sprintf("%s batch %d", corpus[rng.Intn(len(corpus))], i+j))
			}
			first := targets[0].InsertBatch(batch)
			for _, m := range targets[1:] {
				if ids := m.InsertBatch(batch); !reflect.DeepEqual(ids, first) {
					t.Fatalf("batch id divergence: %v vs %v", ids, first)
				}
			}
			live = append(live, first...)
			i += n
		} else {
			attrs := attrsText(fmt.Sprintf("%s variant %d", corpus[rng.Intn(len(corpus))], i))
			first := targets[0].Insert(attrs)
			for _, m := range targets[1:] {
				if id := m.Insert(attrs); id != first {
					t.Fatalf("id divergence: %d vs %d", id, first)
				}
			}
			live = append(live, first)
			i++
		}
		// Interleave deletes with inserts so some deletes land on
		// entities that later flushes and merges must garbage-collect.
		if len(live) > 0 && deletes > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(live))
			id := live[j]
			live = append(live[:j], live[j+1:]...)
			first := targets[0].Delete(id)
			for _, m := range targets[1:] {
				if ok := m.Delete(id); ok != first {
					t.Fatalf("delete divergence on %d: %v vs %v", id, ok, first)
				}
			}
			deletes--
		}
	}
	for d := 0; d < deletes && len(live) > 0; d++ {
		j := rng.Intn(len(live))
		id := live[j]
		live = append(live[:j], live[j+1:]...)
		first := targets[0].Delete(id)
		for _, m := range targets[1:] {
			if ok := m.Delete(id); ok != first {
				t.Fatalf("delete divergence on %d: %v vs %v", id, ok, first)
			}
		}
	}
	return live
}

// checkAnswersMatch asserts byte-identical JSON query results between
// the oracle and every other target, across query options, plus Get and
// Len agreement.
func checkAnswersMatch(t *testing.T, label string, targets []mutator, rng *rand.Rand, maxID int64) {
	t.Helper()
	oracle := targets[0]
	opts := []QueryOptions{{}, {K: 1}, {K: 7}, {Threshold: 0.2}}
	for _, opt := range opts {
		for p := 0; p < 10; p++ {
			probe := attrsText(fmt.Sprintf("%s probe %d", corpus[rng.Intn(len(corpus))], rng.Intn(40)))
			want, _ := json.Marshal(oracle.Query(probe, opt))
			for ti, m := range targets[1:] {
				got, _ := json.Marshal(m.Query(probe, opt))
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: target %d query %q opt %+v diverged:\nwant %s\n got %s",
						label, ti+1, probe[0].Value, opt, want, got)
				}
			}
		}
	}
	for ti, m := range targets[1:] {
		if m.Len() != oracle.Len() {
			t.Fatalf("%s: target %d Len = %d, want %d", label, ti+1, m.Len(), oracle.Len())
		}
	}
	for id := int64(0); id < maxID; id++ {
		a, aok := oracle.Get(id)
		for ti, m := range targets[1:] {
			b, bok := m.Get(id)
			if aok != bok || !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: target %d Get(%d) diverged: (%v,%v) vs (%v,%v)", label, ti+1, id, a, aok, b, bok)
			}
		}
	}
}

// TestDiskTierEquivalenceQuick is the acceptance property test of the
// LSM tier: for random workloads — deletes that merges must GC,
// memtable caps small enough to force many flushes mid-stream, shard
// counts 1..8 — a disk-backed resolver (and a disk-backed sharded
// resolver) must answer byte-identically to the all-in-memory oracle,
// and must keep doing so after a save/load round trip and after a
// close/reopen of the segment directory.
func TestDiskTierEquivalenceQuick(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 1
	}
	for name, cfg := range testConfigs() {
		if cfg.Dense == DenseHNSW {
			continue // disk storage serves the exact dense index only
		}
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				label := fmt.Sprintf("seed=%d", seed)

				oracle := NewResolver(cfg)
				dcfg := diskConfig(cfg, t.TempDir(), 8+rng.Intn(24))
				disk, err := OpenResolver(dcfg)
				if err != nil {
					t.Fatalf("%s: OpenResolver: %v", label, err)
				}
				shards := 1 + rng.Intn(8)
				scfg := diskConfig(cfg, t.TempDir(), 4+rng.Intn(16))
				sharded, err := OpenSharded(scfg, shards)
				if err != nil {
					t.Fatalf("%s: OpenSharded: %v", label, err)
				}

				targets := []mutator{oracle, disk, sharded}
				inserts := 120 + rng.Intn(120)
				deletes := 50 + rng.Intn(60)
				applyOpsAll(t, rng, targets, inserts, deletes)
				// A mid-stream forced flush leaves a short tail segment.
				if err := disk.Flush(); err != nil {
					t.Fatalf("%s: forced flush: %v", label, err)
				}
				maxID := int64(inserts)
				checkAnswersMatch(t, label, targets, rng, maxID)

				if st := disk.Stats(); st.Segments == 0 || st.DiskBytes == 0 {
					t.Fatalf("%s: workload never flushed (stats %+v)", label, st)
				}

				// Save the disk resolver, load as memory: still identical.
				var buf bytes.Buffer
				if err := disk.Save(&buf); err != nil {
					t.Fatalf("%s: save: %v", label, err)
				}
				reloaded, err := Load(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s: load: %v", label, err)
				}
				checkAnswersMatch(t, label+" reloaded", []mutator{oracle, reloaded}, rng, maxID)

				// Close and reopen the tier directory: the flushed bulk and
				// the replayed memtable must reconstruct the same answers.
				if err := disk.Close(); err != nil {
					t.Fatalf("%s: close: %v", label, err)
				}
				// Note: the volatile resolver's memtable dies with it, so a
				// plain reopen only holds flushed entities. Flush() above
				// plus this check pins the reopen path.
				reopened, err := OpenResolver(dcfg)
				if err != nil {
					t.Fatalf("%s: reopen: %v", label, err)
				}
				if got := reopened.Len(); got > oracle.Len() {
					t.Fatalf("%s: reopened resolver has %d live, oracle %d", label, got, oracle.Len())
				}
				if err := reopened.Close(); err != nil {
					t.Fatalf("%s: reopened close: %v", label, err)
				}
				if err := sharded.Close(); err != nil {
					t.Fatalf("%s: sharded close: %v", label, err)
				}
				return !t.Failed()
			}
			if err := quick.Check(check, &quick.Config{MaxCount: trials}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiskTierVolatileReopenPersistence pins the volatile reopen
// contract exactly: everything flushed (explicitly or by cap overflow)
// survives a Close/Open cycle with queries and deletes intact.
func TestDiskTierVolatileReopenPersistence(t *testing.T) {
	cfg := diskConfig(testConfigs()["epsjoin"], t.TempDir(), 4)
	r, err := OpenResolver(cfg)
	if err != nil {
		t.Fatalf("OpenResolver: %v", err)
	}
	var ids []int64
	for i := 0; i < 10; i++ {
		ids = append(ids, r.Insert(attrsText(fmt.Sprintf("%s unit %d", corpus[i%len(corpus)], i))))
	}
	if !r.Delete(ids[3]) {
		t.Fatal("delete failed")
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	want, _ := json.Marshal(r.Query(attrsText("canon camera unit"), QueryOptions{Threshold: 0.05}))
	wantLen := r.Len()
	nextBefore := r.nextID
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r2, err := OpenResolver(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if r2.Len() != wantLen {
		t.Fatalf("reopened Len = %d, want %d", r2.Len(), wantLen)
	}
	got, _ := json.Marshal(r2.Query(attrsText("canon camera unit"), QueryOptions{Threshold: 0.05}))
	if !bytes.Equal(got, want) {
		t.Fatalf("reopened answers diverged:\nwant %s\n got %s", want, got)
	}
	// The id watermark survives: new inserts never reuse an id.
	r2.mu.Lock()
	nextAfter := r2.nextID
	r2.mu.Unlock()
	if nextAfter < nextBefore {
		t.Fatalf("watermark regressed: nextID %d after reopen, %d before", nextAfter, nextBefore)
	}
	if id := r2.Insert(attrsText("fresh entity")); id < nextBefore {
		t.Fatalf("reopened resolver reused id %d (< %d)", id, nextBefore)
	}
}

// TestDiskTierConfigPinned: the manifest's stored configuration wins
// over a drifted caller config on reopen.
func TestDiskTierConfigPinned(t *testing.T) {
	dir := t.TempDir()
	cfg := diskConfig(testConfigs()["epsjoin"], dir, 4)
	r, err := OpenResolver(cfg)
	if err != nil {
		t.Fatalf("OpenResolver: %v", err)
	}
	r.Insert(attrsText(corpus[0]))
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	drifted := cfg
	drifted.Threshold = 0.9
	drifted.Clean = false
	r2, err := OpenResolver(drifted)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	got := r2.Config()
	if got.Threshold != cfg.Threshold || got.Clean != cfg.Clean {
		t.Fatalf("reopened config %+v did not pin stored threshold/clean %+v", got, cfg)
	}
}

// TestDiskTierRejectsHNSW: the approximate dense index cannot flush,
// so disk storage refuses it up front.
func TestDiskTierRejectsHNSW(t *testing.T) {
	cfg := diskConfig(testConfigs()["hnsw"], t.TempDir(), 8)
	if _, err := OpenResolver(cfg); err == nil {
		t.Fatal("OpenResolver accepted hnsw + disk")
	}
}

// TestLoadStorage loads a memory snapshot into a fresh disk tier and
// demands identical answers; a second load into the same (now
// non-empty) directory must be refused.
func TestLoadStorage(t *testing.T) {
	src := NewResolver(testConfigs()["knnj"])
	for i := 0; i < 20; i++ {
		src.Insert(attrsText(fmt.Sprintf("%s item %d", corpus[i%len(corpus)], i)))
	}
	src.Delete(2)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}

	cfg := diskConfig(Config{}, t.TempDir(), 6)
	r, err := LoadStorage(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatalf("LoadStorage: %v", err)
	}
	defer r.Close()
	if r.Len() != src.Len() {
		t.Fatalf("loaded Len = %d, want %d", r.Len(), src.Len())
	}
	probe := attrsText("canon item probe")
	want, _ := json.Marshal(src.Query(probe, QueryOptions{K: 5}))
	got, _ := json.Marshal(r.Query(probe, QueryOptions{K: 5}))
	if !bytes.Equal(got, want) {
		t.Fatalf("loaded disk resolver diverged:\nwant %s\n got %s", want, got)
	}
	if st := r.Stats(); st.Segments == 0 {
		t.Fatalf("load never flushed: %+v", st)
	}

	if _, err := LoadStorage(bytes.NewReader(buf.Bytes()), cfg); err == nil {
		t.Fatal("LoadStorage accepted a non-empty tier directory")
	}
}

// TestDiskStoreCrashRecoveryProperty extends the crash-safety property
// to the segment tier: a tiny memtable cap and checkpoint period mean
// the random write budget can expire inside a WAL append, a segment
// flush, a manifest swap or an inline merge, and the restart keeps only
// a random prefix of each file's un-fsynced tail. Whatever the crash
// point, the recovered store must hold exactly the acknowledged
// survivors — whether they live in segments, in tier tombstones or in
// the replayed memtable — and answer like a batch resolver over them.
func TestDiskStoreCrashRecoveryProperty(t *testing.T) {
	base := testConfigs()["epsjoin"]
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*104729 + 17))
			cfg := diskConfig(base, "", 3+rng.Intn(6))
			cfg.SegmentDir = "" // durable stores derive it from the store dir
			m := faultfs.NewMem()
			s, err := OpenStore(storeDir, cfg, StoreOptions{
				FS:              m,
				SegmentBytes:    512,
				CheckpointEvery: 4 + rng.Intn(8),
			})
			if err != nil {
				t.Fatalf("open store: %v", err)
			}
			m.LimitWrites(int64(300 + rng.Intn(9000)))

			// The oracle: entities whose write was acknowledged.
			model := map[int64][]entity.Attribute{}
			var nextID int64
			crashed := false
			for op := 0; op < 140 && !crashed; op++ {
				switch {
				case op%19 == 18:
					// Explicit checkpoints race the budget too — a torn
					// flush or manifest swap must not lose acked state.
					_ = s.Checkpoint()
					if ok, _ := s.Ready(); !ok {
						crashed = true
					}
				case rng.Intn(4) == 0 && len(model) > 0:
					ids := keysOf(model)
					id := ids[rng.Intn(len(ids))]
					ok, err := s.Delete(id)
					if err != nil {
						crashed = true
						break
					}
					if !ok {
						t.Fatalf("delete of resident %d reported missing", id)
					}
					delete(model, id)
				default:
					txt := fmt.Sprintf("%s variant %d", corpus[rng.Intn(len(corpus))], op)
					id, err := s.Insert(attrsText(txt))
					if err != nil {
						crashed = true
						break
					}
					if id != nextID {
						t.Fatalf("acked insert id %d, want %d", id, nextID)
					}
					model[id] = attrsText(txt)
					nextID++
				}
			}
			if !crashed {
				if err := s.Close(); err != nil {
					t.Fatalf("clean close: %v", err)
				}
			}
			// Power failure: drop a random amount of the un-fsynced tail.
			m.Crash()
			m.Restart(func(name string, unsynced int) int { return rng.Intn(unsynced + 1) })

			s2, err := OpenStore(storeDir, cfg, StoreOptions{FS: m})
			if err != nil {
				t.Fatalf("recovery failed (crashed=%v): %v", crashed, err)
			}
			defer s2.Close()
			r2 := s2.Resolver()
			if got := r2.Len(); got != len(model) {
				t.Fatalf("recovered %d residents, want %d acked (crashed=%v)\n got: %v\nwant: %v",
					got, len(model), crashed, recoveredIDs(r2, nextID), keysOf(model))
			}
			for id, want := range model {
				got, ok := r2.Get(id)
				if !ok || !reflect.DeepEqual(got, want) {
					t.Fatalf("recovered Get(%d) = (%v, %v), want %v", id, got, ok, want)
				}
			}
			sameAnswers(t, fmt.Sprintf("trial %d", trial), r2, batchOver(cfg, model))
			// The recovered store must stay writable with a fresh id.
			id, err := s2.Insert(attrsText("post recovery insert"))
			if err != nil {
				t.Fatalf("insert after recovery: %v", err)
			}
			if id < nextID {
				t.Fatalf("recovered store reused id %d (acked next %d)", id, nextID)
			}
		})
	}
}

// recoveredIDs lists the live ids a recovered resolver actually holds,
// for crash-test failure messages.
func recoveredIDs(r *Resolver, maxID int64) []int64 {
	var ids []int64
	for id := int64(0); id < maxID; id++ {
		if _, ok := r.Get(id); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// TestOpenStoreStorageMismatch: a store directory refuses to reopen
// under the other storage kind.
func TestOpenStoreStorageMismatch(t *testing.T) {
	memCfg := testConfigs()["epsjoin"]

	t.Run("memory-then-disk", func(t *testing.T) {
		dir := t.TempDir()
		st, err := OpenStore(dir, memCfg, StoreOptions{})
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		if _, err := st.Insert(attrsText(corpus[0])); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		dcfg := memCfg
		dcfg.Storage = StorageDisk
		if _, err := OpenStore(dir, dcfg, StoreOptions{}); err == nil {
			t.Fatal("memory-store dir reopened as disk")
		}
	})

	t.Run("disk-then-memory", func(t *testing.T) {
		dir := t.TempDir()
		dcfg := memCfg
		dcfg.Storage = StorageDisk
		st, err := OpenStore(dir, dcfg, StoreOptions{})
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		if _, err := st.Insert(attrsText(corpus[0])); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if _, err := OpenStore(dir, memCfg, StoreOptions{}); err == nil {
			t.Fatal("disk-store dir reopened as memory")
		}
	})
}

// TestDiskStoreDurableRoundTrip: the durable disk-backed store flushes
// at the memtable cap, survives Close/Open with the flushed bulk in
// segments and the tail replayed from the WAL, and keeps answering
// like a memory oracle fed the same surviving operations.
func TestDiskStoreDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := diskConfig(testConfigs()["knnj"], "", 6)
	cfg.SegmentDir = "" // durable stores derive it from the store dir

	st, err := OpenStore(dir, cfg, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	oracle := NewResolver(cfg)
	var ids []int64
	for i := 0; i < 20; i++ {
		attrs := attrsText(fmt.Sprintf("%s rec %d", corpus[i%len(corpus)], i))
		id, err := st.Insert(attrs)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if oid := oracle.Insert(attrs); oid != id {
			t.Fatalf("id divergence %d vs %d", id, oid)
		}
		ids = append(ids, id)
	}
	// Delete one entity that is already flushed into a segment and one
	// that is still in the memtable.
	for _, id := range []int64{ids[1], ids[len(ids)-1]} {
		ok, err := st.Delete(id)
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", id, ok, err)
		}
		if !oracle.Delete(id) {
			t.Fatalf("oracle delete %d", id)
		}
	}
	if st.Resolver().Stats().Segments == 0 {
		t.Fatal("cap-triggered flush never happened")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The segment tier lives under the store directory.
	if ok, _ := fileExists(faultfs.OS{}, filepath.Join(dir, segmentsDirName, "MANIFEST")); !ok {
		t.Fatal("no segment manifest under the store dir")
	}

	st2, err := OpenStore(dir, cfg, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	rng := rand.New(rand.NewSource(1))
	checkAnswersMatch(t, "durable reopen", []mutator{oracle, st2.Resolver()}, rng, int64(len(ids)))
	// Replay must be idempotent: deletes of GC'd ids, re-inserts of
	// flushed ids — all absorbed. A fresh insert continues the id space.
	id, err := st2.Insert(attrsText("post-recovery entity"))
	if err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if id < int64(len(ids)) {
		t.Fatalf("post-recovery insert reused id %d", id)
	}
}
