package online

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
)

const storeDir = "store"

func mustOpenStore(t *testing.T, m faultfs.FS, cfg Config, opt StoreOptions) *Store {
	t.Helper()
	opt.FS = m
	s, err := OpenStore(storeDir, cfg, opt)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s
}

// residents returns the store's entity map as a plain copy for oracle
// comparison.
func residents(s *Store) map[int64][]entity.Attribute {
	r := s.Resolver()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int64][]entity.Attribute, len(r.attrs))
	for id, attrs := range r.attrs {
		out[id] = attrs
	}
	return out
}

// batchOver builds a fresh resolver holding exactly the given entities
// under their original ids — the oracle a recovered store must match.
func batchOver(cfg Config, ents map[int64][]entity.Attribute) *Resolver {
	ids := make([]int64, 0, len(ents))
	for id := range ents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r := NewResolver(cfg)
	r.mu.Lock()
	for _, id := range ids {
		r.addLocked(id, ents[id])
	}
	if n := len(ids); n > 0 {
		r.nextID = ids[n-1] + 1
	}
	r.publishLocked()
	r.mu.Unlock()
	return r
}

var probeTexts = []string{
	"canon power shot a540 camera",
	"nikon coolpix bridge",
	"sony compact cybershot",
	"apple ipod 4gb",
	"wireless earbuds galaxy",
}

// sameAnswers asserts got answers every probe exactly like the oracle.
func sameAnswers(t *testing.T, label string, got, oracle *Resolver) {
	t.Helper()
	for _, probe := range probeTexts {
		g := got.Query(attrsText(probe), QueryOptions{})
		w := oracle.Query(attrsText(probe), QueryOptions{})
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: query %q diverged: recovered %v, batch oracle %v", label, probe, g, w)
		}
	}
}

// TestStoreRoundTrip covers the plain durable path for every method:
// acked writes survive a clean close and reopen, and the reopened
// resolver answers like a batch build over the survivors.
func TestStoreRoundTrip(t *testing.T) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			m := faultfs.NewMem()
			s := mustOpenStore(t, m, cfg, StoreOptions{})
			var ids []int64
			for _, txt := range corpus {
				id, err := s.Insert(attrsText(txt))
				if err != nil {
					t.Fatalf("insert: %v", err)
				}
				ids = append(ids, id)
			}
			if ok, err := s.Delete(ids[2]); !ok || err != nil {
				t.Fatalf("delete: %v %v", ok, err)
			}
			if ok, err := s.Delete(999); ok || err != nil {
				t.Fatalf("delete missing: %v %v", ok, err)
			}
			want := residents(s)
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			s2 := mustOpenStore(t, m, cfg, StoreOptions{})
			defer s2.Close()
			if got := residents(s2); !reflect.DeepEqual(got, want) {
				t.Fatalf("reopened residents = %v, want %v", got, want)
			}
			sameAnswers(t, "reopen", s2.Resolver(), batchOver(cfg, want))
			// The store must keep accepting writes with fresh ids.
			id, err := s2.Insert(attrsText("fresh entity after reopen"))
			if err != nil || id != ids[len(ids)-1]+1 {
				t.Fatalf("insert after reopen: id=%d err=%v", id, err)
			}
		})
	}
}

// TestStoreBatchInsert checks the one-publish, one-fsync batch path.
func TestStoreBatchInsert(t *testing.T) {
	m := faultfs.NewMem()
	s := mustOpenStore(t, m, testConfigs()["epsjoin"], StoreOptions{})
	defer s.Close()
	batch := make([][]entity.Attribute, len(corpus))
	for i, txt := range corpus {
		batch[i] = attrsText(txt)
	}
	ids, err := s.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("batch ids not consecutive: %v", ids)
		}
	}
	if st := s.Stats(); st.WAL.Syncs > 1 {
		t.Fatalf("batch insert used %d fsyncs, want 1", st.WAL.Syncs)
	}
}

// TestStoreCheckpointTrimsWAL proves checkpoints bound the log: after
// enough writes the obsolete segments are deleted and recovery starts
// from the snapshot, not from the full history.
func TestStoreCheckpointTrimsWAL(t *testing.T) {
	m := faultfs.NewMem()
	cfg := testConfigs()["epsjoin"]
	s := mustOpenStore(t, m, cfg, StoreOptions{SegmentBytes: 256, CheckpointEvery: 10})
	for i := 0; i < 35; i++ {
		if _, err := s.Insert(attrsText(fmt.Sprintf("entity number %04d canon", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Checkpoints < 3 {
		t.Fatalf("auto-checkpoint never ran: %+v", st)
	}
	if st.WAL.Trimmed == 0 {
		t.Fatalf("checkpoints never trimmed the WAL: %+v", st)
	}
	names, err := m.ReadDir(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) > 3 { // current.snap + at most two live segments
		t.Fatalf("WAL not bounded after checkpoints: %v", names)
	}
	want := residents(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpenStore(t, m, cfg, StoreOptions{})
	defer s2.Close()
	if got := residents(s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("residents after checkpointed reopen = %d entities, want %d", len(got), len(want))
	}
}

// TestStoreDegradedReadOnly proves a WAL disk failure flips the store to
// read-only: the failed write is not acknowledged, later writes fail
// fast with ErrDegraded, and reads keep serving.
func TestStoreDegradedReadOnly(t *testing.T) {
	m := faultfs.NewMem()
	s := mustOpenStore(t, m, testConfigs()["epsjoin"], StoreOptions{})
	for _, txt := range corpus {
		if _, err := s.Insert(attrsText(txt)); err != nil {
			t.Fatal(err)
		}
	}
	m.FailAllSyncs(true)
	if _, err := s.Insert(attrsText("never durable")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("insert on broken disk: %v", err)
	}
	if ok, reason := s.Ready(); ok || reason == nil {
		t.Fatalf("store not degraded after disk failure: %v %v", ok, reason)
	}
	m.FailAllSyncs(false) // the disk "recovers", but the log is poisoned
	if _, err := s.Insert(attrsText("still rejected")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert while degraded: %v", err)
	}
	if _, err := s.Delete(0); !errors.Is(err, ErrDegraded) {
		t.Fatalf("delete while degraded: %v", err)
	}
	if st := s.Stats(); !st.Degraded || st.Reason == "" {
		t.Fatalf("stats hide degradation: %+v", st)
	}
	// Reads must still work from the last published epoch.
	if got := s.Resolver().Query(attrsText(probeTexts[0]), QueryOptions{}); len(got) == 0 {
		t.Fatal("degraded store stopped serving reads")
	}
	s.Close()

	// After a restart on the healed disk, only acked writes are back.
	m.Restart(nil)
	s2 := mustOpenStore(t, m, testConfigs()["epsjoin"], StoreOptions{})
	defer s2.Close()
	if got := residents(s2); len(got) != len(corpus) {
		t.Fatalf("recovered %d entities, want %d", len(got), len(corpus))
	}
}

// TestStoreCrashRecoveryProperty is the crash-safety property test: a
// random workload of inserts, deletes and checkpoints runs against a
// file system that dies after a random write budget, with a random
// prefix of the un-fsynced tail surviving the restart. Whatever the
// crash point, the recovered store must hold exactly the acknowledged
// survivors and answer queries identically to a batch resolver built
// over them.
func TestStoreCrashRecoveryProperty(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			m := faultfs.NewMem()
			s := mustOpenStore(t, m, cfg, StoreOptions{SegmentBytes: 512})
			m.LimitWrites(int64(200 + rng.Intn(6000)))

			// The oracle: entities whose write was acknowledged.
			model := map[int64][]entity.Attribute{}
			var nextID int64
			crashed := false
			for op := 0; op < 150 && !crashed; op++ {
				switch {
				case op%17 == 16:
					// Checkpoints race the budget too; a failed one must
					// not lose acked state.
					_ = s.Checkpoint()
					if ok, _ := s.Ready(); !ok {
						crashed = true
					}
				case rng.Intn(4) == 0 && len(model) > 0:
					ids := make([]int64, 0, len(model))
					for id := range model {
						ids = append(ids, id)
					}
					id := ids[rng.Intn(len(ids))]
					ok, err := s.Delete(id)
					if err != nil {
						crashed = true
						break
					}
					if !ok {
						t.Fatalf("delete of resident %d reported missing", id)
					}
					delete(model, id)
				default:
					txt := fmt.Sprintf("%s variant %d", corpus[rng.Intn(len(corpus))], op)
					id, err := s.Insert(attrsText(txt))
					if err != nil {
						crashed = true
						break
					}
					if id != nextID {
						t.Fatalf("acked insert id %d, want %d", id, nextID)
					}
					model[id] = attrsText(txt)
					nextID++
				}
			}
			if !crashed {
				if err := s.Close(); err != nil {
					t.Fatalf("clean close: %v", err)
				}
			}
			// Power failure: drop a random amount of the un-fsynced tail.
			m.Crash()
			m.Restart(func(name string, unsynced int) int { return rng.Intn(unsynced + 1) })

			s2, err := OpenStore(storeDir, cfg, StoreOptions{FS: m})
			if err != nil {
				t.Fatalf("recovery failed (crashed=%v): %v", crashed, err)
			}
			defer s2.Close()
			if got := residents(s2); !reflect.DeepEqual(got, model) {
				t.Fatalf("recovered %d residents, want %d acked (crashed=%v)\n got: %v\nwant: %v",
					len(got), len(model), crashed, keysOf(got), keysOf(model))
			}
			sameAnswers(t, fmt.Sprintf("trial %d", trial), s2.Resolver(), batchOver(cfg, model))
			// The recovered store must remain writable with a fresh id.
			id, err := s2.Insert(attrsText("post recovery insert"))
			if err != nil {
				t.Fatalf("insert after recovery: %v", err)
			}
			if id < nextID {
				t.Fatalf("recovered store reused id %d (acked next %d)", id, nextID)
			}
		})
	}
}

func keysOf(m map[int64][]entity.Attribute) []int64 {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestSaveFileAtomic pins the temp-file + fsync + rename discipline: a
// crash right after SaveFile keeps the complete snapshot, and a crash
// during the write leaves the previous snapshot untouched.
func TestSaveFileAtomic(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	r := NewResolver(cfg)
	for _, txt := range corpus {
		r.Insert(attrsText(txt))
	}

	m := faultfs.NewMem()
	if err := m.MkdirAll("out"); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveFile(m, "out/snap"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	m.Restart(nil)
	f, err := faultfs.Open(m, "out/snap")
	if err != nil {
		t.Fatalf("snapshot lost after crash: %v", err)
	}
	r2, err := Load(f)
	f.Close()
	if err != nil {
		t.Fatalf("snapshot damaged after crash: %v", err)
	}
	if r2.Len() != len(corpus) {
		t.Fatalf("loaded %d entities, want %d", r2.Len(), len(corpus))
	}

	// A failed rewrite must leave the old snapshot in place.
	m.FailAllSyncs(true)
	r.Insert(attrsText("extra entity"))
	if err := r.SaveFile(m, "out/snap"); err == nil {
		t.Fatal("save on broken disk must error")
	}
	m.FailAllSyncs(false)
	if _, err := faultfs.Open(m, "out/snap.tmp"); err == nil {
		t.Fatal("temp file leaked after failed save")
	}
	f, err = faultfs.Open(m, "out/snap")
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Load(f)
	f.Close()
	if err != nil || r3.Len() != len(corpus) {
		t.Fatalf("old snapshot damaged by failed rewrite: %v, len %d", err, r3.Len())
	}
}
