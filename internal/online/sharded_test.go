package online

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/metrics"
)

// applyOps drives the same randomized workload — single inserts, batch
// inserts, deletes of residents — against a single resolver and a
// sharded one. Both allocate ids in arrival order, so the same op
// sequence produces the same id assignment on both sides.
func applyOps(rng *rand.Rand, single *Resolver, sharded *ShardedResolver, inserts, deletes int) {
	var live []int64
	insertOne := func(i int) {
		attrs := attrsText(fmt.Sprintf("%s variant %d", corpus[rng.Intn(len(corpus))], i))
		a := single.Insert(attrs)
		b := sharded.Insert(attrs)
		if a != b {
			panic(fmt.Sprintf("id divergence: single %d, sharded %d", a, b))
		}
		live = append(live, a)
	}
	i := 0
	for i < inserts {
		if rng.Intn(4) == 0 {
			// Batch insert: exercises the block id reservation.
			n := 1 + rng.Intn(8)
			if i+n > inserts {
				n = inserts - i
			}
			batch := make([][]entity.Attribute, n)
			for j := range batch {
				batch[j] = attrsText(fmt.Sprintf("%s batch %d", corpus[rng.Intn(len(corpus))], i+j))
			}
			a := single.InsertBatch(batch)
			b := sharded.InsertBatch(batch)
			if !reflect.DeepEqual(a, b) {
				panic(fmt.Sprintf("batch id divergence: %v vs %v", a, b))
			}
			live = append(live, a...)
			i += n
		} else {
			insertOne(i)
			i++
		}
	}
	for d := 0; d < deletes && len(live) > 0; d++ {
		j := rng.Intn(len(live))
		id := live[j]
		live = append(live[:j], live[j+1:]...)
		a := single.Delete(id)
		b := sharded.Delete(id)
		if a != b {
			panic(fmt.Sprintf("delete divergence on %d: single %v, sharded %v", id, a, b))
		}
	}
}

// checkEquivalence asserts the sharded resolver answers byte-identically
// to the single one on a set of probes, through both Query and
// QueryBatch, and that the aggregate stats agree.
func checkEquivalence(t *testing.T, label string, single *Resolver, sharded *ShardedResolver, rng *rand.Rand) {
	t.Helper()
	opts := []QueryOptions{{}, {K: 1}, {K: 7}, {Threshold: 0.2}}
	var batch [][]entity.Attribute
	for p := 0; p < 12; p++ {
		txt := fmt.Sprintf("%s probe %d", corpus[rng.Intn(len(corpus))], rng.Intn(40))
		batch = append(batch, attrsText(txt))
	}
	for _, opt := range opts {
		for _, probe := range batch {
			a := single.Query(probe, opt)
			b := sharded.Query(probe, opt)
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("%s: query %q opt %+v diverged:\n single: %s\nsharded: %s", label, probe[0].Value, opt, ja, jb)
			}
		}
		av, _ := single.Snapshot().QueryBatch(batch, opt)
		bv, _ := sharded.Snapshot().QueryBatch(batch, opt)
		ja, _ := json.Marshal(av)
		jb, _ := json.Marshal(bv)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: QueryBatch opt %+v diverged:\n single: %s\nsharded: %s", label, opt, ja, jb)
		}
	}
	ss, st := single.Stats(), sharded.Stats()
	if ss.Entities != st.Entities || ss.Inserts != st.Inserts || ss.Deletes != st.Deletes {
		t.Fatalf("%s: stats diverged: single %+v, sharded %+v", label, ss, st)
	}
	if got := sharded.Len(); got != single.Len() {
		t.Fatalf("%s: Len %d, want %d", label, got, single.Len())
	}
	// Every live entity is routable to its shard.
	for id := int64(0); id < int64(ss.Inserts); id++ {
		a, aok := single.Get(id)
		b, bok := sharded.Get(id)
		if aok != bok || !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Get(%d) diverged: (%v,%v) vs (%v,%v)", label, id, a, aok, b, bok)
		}
	}
}

// TestShardedEquivalenceQuick is the tentpole property test: for random
// workloads (insert/batch-insert/delete, enough deletes to trigger
// compaction at low shard counts) and a random shard count in 1..8, a
// ShardedResolver must answer byte-identically to a single Resolver —
// through Query and QueryBatch, for every method — and a snapshot
// round-trip through any other shard count must preserve that.
func TestShardedEquivalenceQuick(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for name, cfg := range testConfigs() {
		if cfg.Dense == DenseHNSW {
			// Per-shard HNSW graphs see different insertion orders than
			// the single resolver's one graph, so approximate answers are
			// not byte-identical across topologies (any agreement at this
			// scale is incidental). The ANN tier is instead held to exact
			// equivalence under QueryOptions{Exact: true} and a recall
			// floor in TestShardedHNSWRecallGateQuick.
			continue
		}
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				shards := 1 + rng.Intn(8)
				single := NewResolver(cfg)
				sharded := NewSharded(cfg, shards)
				// Enough deletes that a 1-2 shard run crosses the
				// compaction threshold (compactMinDead dead in one shard).
				inserts := 160 + rng.Intn(140)
				deletes := 70 + rng.Intn(80)
				applyOps(rng, single, sharded, inserts, deletes)
				label := fmt.Sprintf("seed=%d shards=%d", seed, shards)
				checkEquivalence(t, label, single, sharded, rng)

				// Snapshot round-trip into a different shard count keeps
				// every answer.
				var buf bytes.Buffer
				if err := sharded.Save(&buf); err != nil {
					t.Fatalf("%s: save: %v", label, err)
				}
				reShards := 1 + rng.Intn(8)
				reloaded, err := LoadSharded(bytes.NewReader(buf.Bytes()), reShards)
				if err != nil {
					t.Fatalf("%s: load into %d shards: %v", label, reShards, err)
				}
				probe := attrsText(corpus[rng.Intn(len(corpus))])
				a := single.Query(probe, QueryOptions{K: 5})
				b := reloaded.Query(probe, QueryOptions{K: 5})
				ja, _ := json.Marshal(a)
				jb, _ := json.Marshal(b)
				if !bytes.Equal(ja, jb) {
					t.Fatalf("%s: reloaded at %d shards diverged: %s vs %s", label, reShards, ja, jb)
				}
				return !t.Failed()
			}
			if err := quick.Check(check, &quick.Config{MaxCount: trials}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedInsertBatchParallelEquivalence pins that concurrent batch
// inserts against the sharded resolver keep the id space dense and every
// entity resident — the block-reservation path under contention.
func TestShardedInsertBatchParallelEquivalence(t *testing.T) {
	cfg := testConfigs()["knnj"]
	sr := NewSharded(cfg, 4)
	const goroutines, perG = 8, 10
	done := make(chan []int64, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			var mine []int64
			for i := 0; i < perG; i++ {
				batch := [][]entity.Attribute{
					attrsText(fmt.Sprintf("writer %d op %d canon", g, i)),
					attrsText(fmt.Sprintf("writer %d op %d nikon", g, i)),
				}
				mine = append(mine, sr.InsertBatch(batch)...)
			}
			done <- mine
		}(g)
	}
	seen := map[int64]bool{}
	for g := 0; g < goroutines; g++ {
		for _, id := range <-done {
			if seen[id] {
				t.Fatalf("id %d assigned twice", id)
			}
			seen[id] = true
			if _, ok := sr.Get(id); !ok {
				t.Fatalf("assigned id %d not resident", id)
			}
		}
	}
	total := goroutines * perG * 2
	if sr.Len() != total || len(seen) != total {
		t.Fatalf("resident %d ids %d, want %d", sr.Len(), len(seen), total)
	}
	st := sr.Stats()
	if st.SizeSkew < 1 {
		t.Fatalf("size skew %v must be >= 1", st.SizeSkew)
	}
}

// shardedResidents mirrors residents() across every shard.
func shardedResidents(ss *ShardedStore) map[int64][]entity.Attribute {
	out := map[int64][]entity.Attribute{}
	for _, st := range ss.stores {
		for id, attrs := range residents(st) {
			out[id] = attrs
		}
	}
	return out
}

// TestShardedStoreCrashRecoveryProperty is the sharded version of the
// store crash property: random single-entity writes until the disk
// budget trips, a power failure that truncates a random amount of each
// shard's un-fsynced WAL tail independently, then recovery — the
// reopened store must hold exactly the acked writes and answer like a
// batch build over them.
func TestShardedStoreCrashRecoveryProperty(t *testing.T) {
	cfg := testConfigs()["epsjoin"]
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*104729 + 17))
			shards := 1 + rng.Intn(4)
			m := faultfs.NewMem()
			ss, err := OpenShardedStore(storeDir, cfg, shards, StoreOptions{FS: m, SegmentBytes: 512})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			m.LimitWrites(int64(400 + rng.Intn(8000)))

			model := map[int64][]entity.Attribute{}
			var nextID int64
			crashed := false
			for op := 0; op < 150 && !crashed; op++ {
				switch {
				case op%23 == 22:
					_ = ss.Checkpoint()
					if ok, _ := ss.Ready(); !ok {
						crashed = true
					}
				case rng.Intn(4) == 0 && len(model) > 0:
					ids := keysOf(model)
					id := ids[rng.Intn(len(ids))]
					ok, err := ss.Delete(id)
					if err != nil {
						crashed = true
						break
					}
					if !ok {
						t.Fatalf("delete of resident %d reported missing", id)
					}
					delete(model, id)
				default:
					txt := fmt.Sprintf("%s variant %d", corpus[rng.Intn(len(corpus))], op)
					id, err := ss.Insert(attrsText(txt))
					if err != nil {
						crashed = true
						break
					}
					if id != nextID {
						t.Fatalf("acked insert id %d, want %d", id, nextID)
					}
					model[id] = attrsText(txt)
					nextID++
				}
			}
			if !crashed {
				if err := ss.Close(); err != nil {
					t.Fatalf("clean close: %v", err)
				}
			}
			// Power failure: every shard WAL independently loses a random
			// amount of its un-fsynced tail.
			m.Crash()
			m.Restart(func(name string, unsynced int) int { return rng.Intn(unsynced + 1) })

			ss2, err := OpenShardedStore(storeDir, cfg, shards, StoreOptions{FS: m})
			if err != nil {
				t.Fatalf("recovery failed (crashed=%v, shards=%d): %v", crashed, shards, err)
			}
			defer ss2.Close()
			if got := shardedResidents(ss2); !reflect.DeepEqual(got, model) {
				t.Fatalf("recovered %d residents, want %d acked (crashed=%v, shards=%d)\n got: %v\nwant: %v",
					len(got), len(model), crashed, shards, keysOf(got), keysOf(model))
			}
			oracle := batchOver(cfg, model)
			for _, probe := range probeTexts {
				g := ss2.Resolver().Query(attrsText(probe), QueryOptions{})
				w := oracle.Query(attrsText(probe), QueryOptions{})
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("trial %d: query %q diverged: recovered %v, oracle %v", trial, probe, g, w)
				}
			}
			// The recovered store must stay writable with a fresh id.
			id, err := ss2.Insert(attrsText("post recovery insert"))
			if err != nil {
				t.Fatalf("insert after recovery: %v", err)
			}
			if id < nextID {
				t.Fatalf("recovered store reused id %d (acked next %d)", id, nextID)
			}
		})
	}
}

// TestShardedStoreMetaMismatch pins the shard-count guard: a directory
// created at one count refuses to open at another.
func TestShardedStoreMetaMismatch(t *testing.T) {
	cfg := testConfigs()["knnj"]
	m := faultfs.NewMem()
	ss, err := OpenShardedStore(storeDir, cfg, 3, StoreOptions{FS: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Insert(attrsText("pinned")); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedStore(storeDir, cfg, 5, StoreOptions{FS: m}); err == nil {
		t.Fatal("reopen at a different shard count must error")
	}
	ss2, err := OpenShardedStore(storeDir, cfg, 3, StoreOptions{FS: m})
	if err != nil {
		t.Fatalf("reopen at the pinned count: %v", err)
	}
	defer ss2.Close()
	if ss2.Resolver().Len() != 1 {
		t.Fatalf("recovered %d entities, want 1", ss2.Resolver().Len())
	}
}

// benchSharded builds a preloaded sharded resolver with telemetry
// disabled on every shard, so the benchmark prices the data path.
func benchSharded(cfg Config, shards, n int) *ShardedResolver {
	sr := NewSharded(cfg, shards)
	batch := make([][]entity.Attribute, n)
	for i := range batch {
		batch[i] = benchAttrs(i)
	}
	sr.InsertBatch(batch)
	for _, sh := range sr.shards {
		sh.disableTelemetry()
	}
	// Nil every sharded metric too (all are nil-receiver safe).
	*sr.tel = shardedTelemetry{shardNS: make([]*metrics.Histogram, len(sr.shards))}
	return sr
}

// BenchmarkShardedInsert measures parallel single-entity insert
// throughput across shard counts: each insert takes one shard's writer
// lock and republishes only that shard's epoch, and the publish cost is
// proportional to the shard's size, so throughput scales with shards.
// The preload is large enough that the size-dependent publish term
// dominates from the first iteration at any -benchtime. The acceptance
// gate for the sharded resolver is >= 2x single-shard throughput at
// 8 shards (make bench-shard).
func BenchmarkShardedInsert(b *testing.B) {
	c3g := benchConfigs()["knnj-C3G"]
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const preload = 100000
			sr := benchSharded(c3g, shards, preload)
			var n atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(n.Add(1))
					sr.Insert(benchAttrs(preload + i))
				}
			})
		})
	}
}

// BenchmarkShardedQuery measures scatter-gather top-k latency across
// shard counts on a fixed collection: per query it pays one fan-out over
// the shard snapshots plus the deterministic merge.
func BenchmarkShardedQuery(b *testing.B) {
	c3g := benchConfigs()["knnj-C3G"]
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const preload = 2000
			sr := benchSharded(c3g, shards, preload)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					sr.Query(benchAttrs(i*31), QueryOptions{})
					i++
				}
			})
		})
	}
}

// BenchmarkShardedQueryBatch prices the batch amortization: one
// QueryBatch of 64 queries versus 64 scatter-gathers.
func BenchmarkShardedQueryBatch(b *testing.B) {
	c3g := benchConfigs()["knnj-C3G"]
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const preload, batchN = 2000, 64
			sr := benchSharded(c3g, shards, preload)
			batch := make([][]entity.Attribute, batchN)
			for i := range batch {
				batch[i] = benchAttrs(i * 13)
			}
			snap := sr.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap.QueryBatch(batch, QueryOptions{})
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batchN), "queries")
		})
	}
}
