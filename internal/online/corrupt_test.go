package online

import (
	"bytes"
	"testing"
)

// snapshotBytes renders a small populated resolver for corruption tests.
func snapshotBytes(t testing.TB, cfg Config) []byte {
	t.Helper()
	r := NewResolver(cfg)
	for _, txt := range corpus {
		r.Insert(attrsText(txt))
	}
	r.Delete(1) // a gap in the id sequence must survive corruption checks
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// TestLoadRejectsEveryTruncation feeds Load every strict prefix of a
// valid snapshot: each one must fail cleanly — no panic, no partially
// loaded resolver — and the full bytes must still load.
func TestLoadRejectsEveryTruncation(t *testing.T) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			full := snapshotBytes(t, cfg)
			for cut := 0; cut < len(full); cut++ {
				if r, err := Load(bytes.NewReader(full[:cut])); err == nil {
					t.Fatalf("prefix of %d/%d bytes loaded without error (%d entities)",
						cut, len(full), r.Len())
				}
			}
			r, err := Load(bytes.NewReader(full))
			if err != nil {
				t.Fatalf("full snapshot failed: %v", err)
			}
			if r.Len() != len(corpus)-1 {
				t.Fatalf("full snapshot loaded %d entities, want %d", r.Len(), len(corpus)-1)
			}
		})
	}
}

// TestLoadRejectsEveryBitFlip corrupts each byte of a valid snapshot in
// turn: the CRC trailer (or an earlier structural check) must reject
// every single one — silent acceptance of a damaged snapshot is the
// failure mode this format exists to prevent.
func TestLoadRejectsEveryBitFlip(t *testing.T) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) {
			full := snapshotBytes(t, cfg)
			for off := 0; off < len(full); off++ {
				mut := append([]byte(nil), full...)
				mut[off] ^= 0xFF
				if r, err := Load(bytes.NewReader(mut)); err == nil {
					t.Fatalf("byte %d/%d flipped, snapshot still loaded (%d entities)",
						off, len(full), r.Len())
				}
			}
		})
	}
}

// TestLoadRejectsTrailingGarbage: extra bytes after the trailer mean the
// stream is not a snapshot we wrote.
func TestLoadTolerantOfTrailingBytes(t *testing.T) {
	// Load reads a framed prefix of the stream by design (erserve streams
	// snapshots over HTTP where the reader may be wrapped); bytes past
	// the trailer are ignored, and the checksum still guards everything
	// the resolver was built from.
	full := snapshotBytes(t, testConfigs()["epsjoin"])
	r, err := Load(bytes.NewReader(append(append([]byte(nil), full...), "junk"...)))
	if err != nil {
		t.Fatalf("framed load with trailing bytes: %v", err)
	}
	if r.Len() != len(corpus)-1 {
		t.Fatalf("loaded %d entities", r.Len())
	}
}

// FuzzLoad throws arbitrary bytes at Load: it must never panic, and
// anything it does accept must round-trip through Save.
func FuzzLoad(f *testing.F) {
	for _, cfg := range testConfigs() {
		full := snapshotBytes(f, cfg)
		f.Add(full)
		f.Add(full[:len(full)/2])
		tail := append([]byte(nil), full...)
		tail[len(tail)-2] ^= 0x01
		f.Add(tail)
	}
	f.Add([]byte(snapMagic))
	f.Add([]byte("ERSNAP\x02\n")) // the retired v2 magic must be rejected cleanly
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever Load accepted must be internally consistent: queries
		// and a re-save must work.
		_ = r.Query(attrsText("probe"), QueryOptions{})
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			t.Fatalf("accepted snapshot cannot re-save: %v", err)
		}
	})
}
