package metablocking

import (
	"math"
	"sort"
	"testing"

	"erfilter/internal/blocking"
	"erfilter/internal/entity"
)

func mkViews(a, b []string) (*entity.View, *entity.View) {
	mk := func(texts []string) *entity.View {
		profiles := make([]entity.Profile, len(texts))
		for i, s := range texts {
			profiles[i] = entity.Profile{Attrs: []entity.Attribute{{Name: "v", Value: s}}}
		}
		return entity.NewView(entity.New("d", profiles), entity.SchemaAgnostic, "")
	}
	return mk(a), mk(b)
}

func buildBlocks(a, b []string) *blocking.Collection {
	v1, v2 := mkViews(a, b)
	return blocking.Build(v1, v2, blocking.Standard{})
}

func naiveDistinctPairs(c *blocking.Collection) map[entity.Pair]bool {
	m := map[entity.Pair]bool{}
	for i := range c.Blocks {
		for _, e1 := range c.Blocks[i].E1 {
			for _, e2 := range c.Blocks[i].E2 {
				m[entity.Pair{Left: e1, Right: e2}] = true
			}
		}
	}
	return m
}

func TestPropagateExactDistinctPairs(t *testing.T) {
	c := buildBlocks(
		[]string{"canon camera zoom", "nikon camera", "sony tv"},
		[]string{"canon camera", "nikon zoom camera", "panasonic tv"},
	)
	got := Propagate(c)
	want := naiveDistinctPairs(c)
	if len(got) != len(want) {
		t.Fatalf("propagate returned %d pairs, want %d", len(got), len(want))
	}
	seen := map[entity.Pair]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
		if !want[p] {
			t.Fatalf("unexpected pair %v", p)
		}
	}
}

func TestGraphStatistics(t *testing.T) {
	// E1[0]="a b", E2[0]="a b" share 2 blocks; E2[1]="b" shares 1.
	c := buildBlocks([]string{"a b"}, []string{"a b", "b"})
	g := BuildGraph(c)
	if g.TotalBlocks != 2 {
		t.Fatalf("total blocks = %v", g.TotalBlocks)
	}
	if len(g.Pairs) != 2 {
		t.Fatalf("pairs = %v", g.Pairs)
	}
	find := func(p entity.Pair) int {
		for i, q := range g.Pairs {
			if q == p {
				return i
			}
		}
		t.Fatalf("pair %v missing", p)
		return -1
	}
	i00 := find(entity.Pair{Left: 0, Right: 0})
	i01 := find(entity.Pair{Left: 0, Right: 1})
	if g.CBS[i00] != 2 || g.CBS[i01] != 1 {
		t.Fatalf("CBS = %v / %v", g.CBS[i00], g.CBS[i01])
	}
	// Block "a" has 1 comparison, block "b" has 2 (1x2).
	wantARCS := 1.0/1.0 + 1.0/2.0
	if math.Abs(g.ARCS[i00]-wantARCS) > 1e-12 {
		t.Fatalf("ARCS(0,0) = %v, want %v", g.ARCS[i00], wantARCS)
	}
	if g.BlocksOf1[0] != 2 || g.BlocksOf2[0] != 2 || g.BlocksOf2[1] != 1 {
		t.Fatalf("per-entity block counts wrong: %v %v", g.BlocksOf1, g.BlocksOf2)
	}
	if g.Degree1[0] != 2 || g.Degree2[0] != 1 || g.Degree2[1] != 1 {
		t.Fatalf("degrees wrong: %v %v", g.Degree1, g.Degree2)
	}
}

func TestWeightingSchemesOrderMatchingFirst(t *testing.T) {
	// Matching pair shares two rare blocks; non-matching pair shares one
	// popular block. Every scheme must weight the matching pair higher.
	a := []string{"canon powershot camera", "nikon coolpix camera", "sony alpha camera"}
	b := []string{"canon powershot camera", "nikon coolpix camera", "sony alpha camera"}
	c := buildBlocks(a, b)
	g := BuildGraph(c)
	match := -1
	nonmatch := -1
	for i, p := range g.Pairs {
		if p.Left == 0 && p.Right == 0 {
			match = i
		}
		if p.Left == 0 && p.Right == 1 {
			nonmatch = i
		}
	}
	if match < 0 || nonmatch < 0 {
		t.Fatalf("expected both pairs present: %v", g.Pairs)
	}
	for _, s := range Schemes() {
		w := g.Weights(s)
		if w[match] <= w[nonmatch] {
			t.Errorf("%s: match weight %v <= non-match weight %v", s, w[match], w[nonmatch])
		}
	}
}

func TestJSRange(t *testing.T) {
	c := buildBlocks(
		[]string{"a b c", "x y"},
		[]string{"a b", "x z c"},
	)
	g := BuildGraph(c)
	for i, w := range g.Weights(JS) {
		if w < 0 || w > 1 {
			t.Fatalf("JS weight %v out of [0,1] for %v", w, g.Pairs[i])
		}
	}
}

func pairSet(ps []entity.Pair) map[entity.Pair]bool {
	m := map[entity.Pair]bool{}
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func TestPruningSubsets(t *testing.T) {
	c := buildBlocks(
		[]string{"canon powershot a540 camera", "nikon coolpix camera", "sony cyber shot", "olympus stylus camera"},
		[]string{"canon powershot a540", "nikon coolpix zoom camera", "sony cyber shot tv", "olympus stylus camera deluxe"},
	)
	g := BuildGraph(c)
	all := pairSet(g.Pairs)
	tp := c.TotalPlacements()
	for _, s := range Schemes() {
		for _, a := range Algorithms() {
			got := Prune(g, s, a, tp)
			if len(got) == 0 {
				t.Errorf("%s+%s pruned everything", s, a)
				continue
			}
			for _, p := range got {
				if !all[p] {
					t.Fatalf("%s+%s invented pair %v", s, a, p)
				}
			}
			if len(got) > len(g.Pairs) {
				t.Fatalf("%s+%s returned more pairs than exist", s, a)
			}
		}
	}
}

func TestReciprocalSubsumption(t *testing.T) {
	// RCNP ⊆ CNP and RWNP ⊆ WNP for every scheme.
	c := buildBlocks(
		[]string{"alpha beta gamma", "beta delta", "gamma epsilon zeta", "delta zeta"},
		[]string{"alpha beta", "beta delta gamma", "epsilon zeta", "delta gamma zeta"},
	)
	g := BuildGraph(c)
	tp := c.TotalPlacements()
	for _, s := range Schemes() {
		cnp := pairSet(Prune(g, s, CNP, tp))
		for _, p := range Prune(g, s, RCNP, tp) {
			if !cnp[p] {
				t.Fatalf("%s: RCNP pair %v not in CNP", s, p)
			}
		}
		wnp := pairSet(Prune(g, s, WNP, tp))
		for _, p := range Prune(g, s, RWNP, tp) {
			if !wnp[p] {
				t.Fatalf("%s: RWNP pair %v not in WNP", s, p)
			}
		}
	}
}

func TestCEPRespectsK(t *testing.T) {
	c := buildBlocks(
		[]string{"a b c d", "b c d e", "c d e f"},
		[]string{"a b c", "d e f", "b d f"},
	)
	g := BuildGraph(c)
	k := c.TotalPlacements() / 2
	got := Prune(g, CBS, CEP, c.TotalPlacements())
	if len(got) > k && k < len(g.Pairs) {
		t.Fatalf("CEP returned %d pairs, budget %d", len(got), k)
	}
}

func TestWEPKeepsAboveMean(t *testing.T) {
	c := buildBlocks(
		[]string{"a b c", "a x", "b y"},
		[]string{"a b c", "x y"},
	)
	g := BuildGraph(c)
	w := g.Weights(CBS)
	var sum float64
	for _, x := range w {
		sum += x
	}
	mean := sum / float64(len(w))
	got := pairSet(Prune(g, CBS, WEP, c.TotalPlacements()))
	for i, p := range g.Pairs {
		if (w[i] >= mean) != got[p] {
			t.Fatalf("WEP wrong for %v: w=%v mean=%v kept=%v", p, w[i], mean, got[p])
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := BuildGraph(&blocking.Collection{N1: 3, N2: 3})
	for _, s := range Schemes() {
		for _, a := range Algorithms() {
			if got := Prune(g, s, a, 0); len(got) != 0 {
				t.Fatalf("%s+%s on empty graph returned %v", s, a, got)
			}
		}
	}
}

func TestPairsSortedByLeft(t *testing.T) {
	c := buildBlocks(
		[]string{"z a", "a b", "b z"},
		[]string{"a z b"},
	)
	g := BuildGraph(c)
	lefts := make([]int, len(g.Pairs))
	for i, p := range g.Pairs {
		lefts[i] = int(p.Left)
	}
	if !sort.IntsAreSorted(lefts) {
		t.Fatalf("pairs not grouped by left entity: %v", g.Pairs)
	}
}

func TestChiSquareHandComputed(t *testing.T) {
	// Two blocks: "a" = {e1_0} x {e2_0}; "b" = {e1_0} x {e2_0, e2_1}.
	c := buildBlocks([]string{"a b"}, []string{"a b", "b"})
	g := BuildGraph(c)
	w := g.Weights(ChiSquare)
	var w00 float64
	for i, p := range g.Pairs {
		if p.Left == 0 && p.Right == 0 {
			w00 = w[i]
		}
	}
	// Contingency for (0,0): n=2 blocks, n11=2 (both shared), n10=0,
	// n01=0, n00=0. Expected values: r1=2, r0=0, c1=2, c0=0.
	// chi2 = (2 - 2*2/2)^2/(2) + 0 + 0 + 0 = 0.
	if w00 != 0 {
		t.Fatalf("chi2(0,0) = %v, want 0 (perfectly dependent with full margins)", w00)
	}

	// A case with partial overlap: entity pair sharing 1 of their 2/1
	// blocks.
	c2 := buildBlocks([]string{"a x"}, []string{"a y"})
	g2 := BuildGraph(c2)
	w2 := g2.Weights(ChiSquare)
	if len(w2) != 1 {
		t.Fatalf("pairs = %v", g2.Pairs)
	}
	// n=1 block total ("a"); n11=1, n10=0, n01=0, n00=0 -> chi2 = 0.
	if w2[0] != 0 {
		t.Fatalf("chi2 = %v, want 0", w2[0])
	}
}

func TestECBSDiscountsBusyEntities(t *testing.T) {
	// Two pairs with equal CBS=1; the one whose entities sit in fewer
	// blocks must get the higher ECBS weight.
	c := buildBlocks(
		[]string{"a", "b p q r s"},
		[]string{"a", "b p q r s"},
	)
	g := BuildGraph(c)
	w := g.Weights(ECBS)
	var sparse, busy float64
	for i, p := range g.Pairs {
		if p.Left == 0 && p.Right == 0 {
			sparse = w[i] // entities in 1 block each
		}
		if p.Left == 1 && p.Right == 1 {
			busy = w[i] // entities in 5 blocks each
		}
	}
	if sparse <= busy {
		t.Fatalf("ECBS should discount busy entities: sparse=%v busy=%v", sparse, busy)
	}
}
