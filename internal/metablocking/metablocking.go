// Package metablocking implements the comparison cleaning step of the
// blocking workflow (Figure 1): Comparison Propagation, which removes the
// redundant candidate pairs, and Meta-blocking, which additionally prunes
// superfluous (likely non-matching) pairs by weighting every distinct
// candidate pair and keeping only the best-weighted ones.
//
// The six weighting schemes (ARCS, CBS, ECBS, JS, EJS, ChiSquare) and seven
// pruning algorithms (BLAST, CEP, CNP, RCNP, WEP, WNP, RWNP) follow the
// definitions in the paper's Section IV-B and the meta-blocking literature
// it cites.
package metablocking

import (
	"math"
	"sort"

	"erfilter/internal/blocking"
	"erfilter/internal/entity"
)

// Graph holds the distinct candidate pairs of a block collection together
// with the per-pair statistics every weighting scheme needs. Pairs are
// stored grouped by their E1 entity.
type Graph struct {
	// Pairs lists every distinct (non-redundant) candidate pair once.
	Pairs []entity.Pair
	// CBS[i] is the number of blocks shared by Pairs[i]'s entities.
	CBS []float64
	// ARCS[i] is the sum over the shared blocks of 1/comparisons(block).
	ARCS []float64
	// BlocksOf1[e] and BlocksOf2[e] count the blocks containing each entity.
	BlocksOf1, BlocksOf2 []float64
	// Degree1[e], Degree2[e] count the distinct pairs of each entity (|v_i|
	// in the EJS formula).
	Degree1, Degree2 []float64
	// TotalBlocks is |B|, TotalPairs is |V| (distinct pairs).
	TotalBlocks float64
	TotalPairs  float64
	N1, N2      int
}

// BuildGraph enumerates the distinct candidate pairs of the collection and
// computes the shared-block statistics. It performs the work of Comparison
// Propagation (each redundant pair is counted exactly once) while keeping
// the information Meta-blocking needs.
func BuildGraph(c *blocking.Collection) *Graph {
	g := &Graph{
		N1:          c.N1,
		N2:          c.N2,
		BlocksOf1:   make([]float64, c.N1),
		BlocksOf2:   make([]float64, c.N2),
		Degree1:     make([]float64, c.N1),
		Degree2:     make([]float64, c.N2),
		TotalBlocks: float64(len(c.Blocks)),
	}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, e := range b.E1 {
			g.BlocksOf1[e]++
		}
		for _, e := range b.E2 {
			g.BlocksOf2[e]++
		}
	}

	idx := c.Index()
	// Accumulate neighbors of each E1 entity across its blocks using a
	// timestamped counter array over E2, avoiding a map per entity.
	stamp := make([]int32, c.N2)
	cbs := make([]float64, c.N2)
	arcs := make([]float64, c.N2)
	for i := range stamp {
		stamp[i] = -1
	}
	var neighbors []int32
	for e1 := int32(0); e1 < int32(c.N1); e1++ {
		neighbors = neighbors[:0]
		for _, bid := range idx.BlocksOf(0, e1) {
			b := &c.Blocks[bid]
			w := 1.0 / float64(b.Comparisons())
			for _, e2 := range b.E2 {
				if stamp[e2] != e1 {
					stamp[e2] = e1
					cbs[e2] = 0
					arcs[e2] = 0
					neighbors = append(neighbors, e2)
				}
				cbs[e2]++
				arcs[e2] += w
			}
		}
		sort.Slice(neighbors, func(a, b int) bool { return neighbors[a] < neighbors[b] })
		for _, e2 := range neighbors {
			g.Pairs = append(g.Pairs, entity.Pair{Left: e1, Right: e2})
			g.CBS = append(g.CBS, cbs[e2])
			g.ARCS = append(g.ARCS, arcs[e2])
			g.Degree1[e1]++
			g.Degree2[e2]++
		}
	}
	g.TotalPairs = float64(len(g.Pairs))
	return g
}

// Propagate implements Comparison Propagation: it returns every distinct
// candidate pair exactly once, eliminating all redundant pairs at no cost
// in recall.
func Propagate(c *blocking.Collection) []entity.Pair {
	return BuildGraph(c).Pairs
}

// Scheme is a Meta-blocking weighting scheme.
type Scheme int

// The six weighting schemes of Section IV-B.
const (
	ARCS      Scheme = iota // promotes pairs sharing smaller blocks
	CBS                     // counts common blocks
	ECBS                    // CBS discounted by per-entity block counts
	JS                      // Jaccard coefficient of the entities' block id sets
	EJS                     // JS discounted by per-entity pair degrees
	ChiSquare               // independence test of block co-occurrence
)

// Schemes lists all weighting schemes.
func Schemes() []Scheme { return []Scheme{ARCS, CBS, ECBS, JS, EJS, ChiSquare} }

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case ARCS:
		return "ARCS"
	case CBS:
		return "CBS"
	case ECBS:
		return "ECBS"
	case JS:
		return "JS"
	case EJS:
		return "EJS"
	case ChiSquare:
		return "X2"
	}
	return "unknown"
}

// Weights computes the weight of every pair in the graph under the scheme.
func (g *Graph) Weights(scheme Scheme) []float64 {
	w := make([]float64, len(g.Pairs))
	for i, p := range g.Pairs {
		w[i] = g.weight(scheme, i, p)
	}
	return w
}

func (g *Graph) weight(scheme Scheme, i int, p entity.Pair) float64 {
	cbs := g.CBS[i]
	b1 := g.BlocksOf1[p.Left]
	b2 := g.BlocksOf2[p.Right]
	switch scheme {
	case ARCS:
		return g.ARCS[i]
	case CBS:
		return cbs
	case ECBS:
		return cbs * safeLog(g.TotalBlocks/b1) * safeLog(g.TotalBlocks/b2)
	case JS:
		union := b1 + b2 - cbs
		if union <= 0 {
			return 0
		}
		return cbs / union
	case EJS:
		union := b1 + b2 - cbs
		if union <= 0 {
			return 0
		}
		js := cbs / union
		return js * safeLog(g.TotalPairs/g.Degree1[p.Left]) * safeLog(g.TotalPairs/g.Degree2[p.Right])
	case ChiSquare:
		// 2x2 contingency over block membership: does e1's presence in a
		// block predict e2's presence?
		n := g.TotalBlocks
		if n <= 0 {
			return 0
		}
		n11 := cbs
		n10 := b1 - cbs
		n01 := b2 - cbs
		n00 := n - n11 - n10 - n01
		if n00 < 0 {
			n00 = 0
		}
		r1, r0 := n11+n10, n01+n00
		c1, c0 := n11+n01, n10+n00
		var chi float64
		for _, cell := range []struct{ obs, row, col float64 }{
			{n11, r1, c1}, {n10, r1, c0}, {n01, r0, c1}, {n00, r0, c0},
		} {
			exp := cell.row * cell.col / n
			if exp > 0 {
				d := cell.obs - exp
				chi += d * d / exp
			}
		}
		return chi
	}
	return 0
}

func safeLog(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log10(x)
}
