package metablocking

import (
	"math"
	"sort"

	"erfilter/internal/entity"
)

// Algorithm is a Meta-blocking pruning algorithm.
type Algorithm int

// The seven pruning algorithms of Section IV-B.
const (
	BLAST Algorithm = iota // weight above a fraction of the entities' average maximum weight
	CEP                    // overall top-K pairs
	CNP                    // top-k pairs per entity (union of both entities' lists)
	RCNP                   // reciprocal CNP: top-k of both entities
	WEP                    // weight above the overall average
	WNP                    // weight above the average of at least one entity
	RWNP                   // reciprocal WNP: above the average of both entities
)

// Algorithms lists all pruning algorithms.
func Algorithms() []Algorithm { return []Algorithm{BLAST, CEP, CNP, RCNP, WEP, WNP, RWNP} }

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case BLAST:
		return "BLAST"
	case CEP:
		return "CEP"
	case CNP:
		return "CNP"
	case RCNP:
		return "RCNP"
	case WEP:
		return "WEP"
	case WNP:
		return "WNP"
	case RWNP:
		return "RWNP"
	}
	return "unknown"
}

// blastRatio is the fraction c of the average maximum entity weight that a
// pair must exceed under BLAST, following the original BLAST publication
// (Simonini et al., PVLDB 2016).
const blastRatio = 0.35

// Prune applies the pruning algorithm to the graph under the given
// weighting scheme and returns the retained candidate pairs. K and k of
// CEP/CNP/RCNP are configured automatically from the block characteristics
// carried by the graph, as the paper describes.
func Prune(g *Graph, scheme Scheme, alg Algorithm, totalPlacements int) []entity.Pair {
	if len(g.Pairs) == 0 {
		return nil
	}
	w := g.Weights(scheme)
	switch alg {
	case WEP:
		return pruneWEP(g, w)
	case CEP:
		k := totalPlacements / 2
		return pruneCEP(g, w, k)
	case CNP, RCNP:
		k := int(math.Max(1, math.Round(float64(totalPlacements)/float64(g.N1+g.N2))))
		return pruneCNP(g, w, k, alg == RCNP)
	case WNP, RWNP:
		return pruneWNP(g, w, alg == RWNP)
	case BLAST:
		return pruneBLAST(g, w)
	}
	return nil
}

func pruneWEP(g *Graph, w []float64) []entity.Pair {
	var sum float64
	for _, x := range w {
		sum += x
	}
	mean := sum / float64(len(w))
	var out []entity.Pair
	for i, p := range g.Pairs {
		if w[i] >= mean {
			out = append(out, p)
		}
	}
	return out
}

func pruneCEP(g *Graph, w []float64, k int) []entity.Pair {
	if k <= 0 {
		k = 1
	}
	if k >= len(g.Pairs) {
		return append([]entity.Pair(nil), g.Pairs...)
	}
	order := make([]int, len(w))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if w[order[a]] != w[order[b]] {
			return w[order[a]] > w[order[b]]
		}
		return order[a] < order[b]
	})
	out := make([]entity.Pair, 0, k)
	for _, i := range order[:k] {
		out = append(out, g.Pairs[i])
	}
	return out
}

// entityTopK returns, for each entity of each side, the weight of its k-th
// best pair (used as the per-entity retention threshold of CNP/RCNP).
func entityTopK(g *Graph, w []float64, k int) (thr1, thr2 []float64) {
	top1 := make([][]float64, g.N1)
	top2 := make([][]float64, g.N2)
	push := func(heap []float64, x float64) []float64 {
		// Keep the k largest weights in a small sorted slice (k is tiny).
		if len(heap) < k {
			heap = append(heap, x)
			sort.Float64s(heap)
			return heap
		}
		if x > heap[0] {
			heap[0] = x
			sort.Float64s(heap)
		}
		return heap
	}
	for i, p := range g.Pairs {
		top1[p.Left] = push(top1[p.Left], w[i])
		top2[p.Right] = push(top2[p.Right], w[i])
	}
	thr1 = make([]float64, g.N1)
	thr2 = make([]float64, g.N2)
	for e, h := range top1 {
		if len(h) > 0 {
			thr1[e] = h[0]
		} else {
			thr1[e] = math.Inf(1)
		}
	}
	for e, h := range top2 {
		if len(h) > 0 {
			thr2[e] = h[0]
		} else {
			thr2[e] = math.Inf(1)
		}
	}
	return thr1, thr2
}

func pruneCNP(g *Graph, w []float64, k int, reciprocal bool) []entity.Pair {
	thr1, thr2 := entityTopK(g, w, k)
	var out []entity.Pair
	for i, p := range g.Pairs {
		in1 := w[i] >= thr1[p.Left]
		in2 := w[i] >= thr2[p.Right]
		if (reciprocal && in1 && in2) || (!reciprocal && (in1 || in2)) {
			out = append(out, p)
		}
	}
	return out
}

// entityStats returns the mean and max pair weight per entity of each side.
func entityStats(g *Graph, w []float64) (mean1, mean2, max1, max2 []float64) {
	sum1 := make([]float64, g.N1)
	cnt1 := make([]float64, g.N1)
	sum2 := make([]float64, g.N2)
	cnt2 := make([]float64, g.N2)
	max1 = make([]float64, g.N1)
	max2 = make([]float64, g.N2)
	for i := range max1 {
		max1[i] = math.Inf(-1)
	}
	for i := range max2 {
		max2[i] = math.Inf(-1)
	}
	for i, p := range g.Pairs {
		sum1[p.Left] += w[i]
		cnt1[p.Left]++
		sum2[p.Right] += w[i]
		cnt2[p.Right]++
		if w[i] > max1[p.Left] {
			max1[p.Left] = w[i]
		}
		if w[i] > max2[p.Right] {
			max2[p.Right] = w[i]
		}
	}
	mean1 = make([]float64, g.N1)
	mean2 = make([]float64, g.N2)
	for e := range mean1 {
		if cnt1[e] > 0 {
			mean1[e] = sum1[e] / cnt1[e]
		}
	}
	for e := range mean2 {
		if cnt2[e] > 0 {
			mean2[e] = sum2[e] / cnt2[e]
		}
	}
	return mean1, mean2, max1, max2
}

func pruneWNP(g *Graph, w []float64, reciprocal bool) []entity.Pair {
	mean1, mean2, _, _ := entityStats(g, w)
	var out []entity.Pair
	for i, p := range g.Pairs {
		in1 := w[i] >= mean1[p.Left]
		in2 := w[i] >= mean2[p.Right]
		if (reciprocal && in1 && in2) || (!reciprocal && (in1 || in2)) {
			out = append(out, p)
		}
	}
	return out
}

func pruneBLAST(g *Graph, w []float64) []entity.Pair {
	_, _, max1, max2 := entityStats(g, w)
	var out []entity.Pair
	for i, p := range g.Pairs {
		thr := blastRatio * (max1[p.Left] + max2[p.Right]) / 2
		if w[i] >= thr {
			out = append(out, p)
		}
	}
	return out
}
