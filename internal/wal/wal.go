// Package wal is a pure-stdlib write-ahead log: CRC32-framed,
// length-prefixed records appended to rotating segment files, with
// group-committed fsyncs and a recovery path that replays everything up
// to the first torn or corrupt record and truncates the rest.
//
// The contract the online resolver builds on:
//
//   - A record whose Append returned nil survives any later crash
//     (fsync-before-ack).
//   - Recovery never fails on a torn tail: the bytes a crash cut short
//     are truncated away and the log keeps appending where the last
//     intact record ended. Only unreadable directories or a replay
//     callback error abort Open.
//   - Records come back in exactly the order they were appended.
//
// Concurrency uses leader-based group commit: appenders stage frames in
// an in-memory buffer under a mutex, then the first waiter becomes the
// leader, writes the whole batch and fsyncs once while later appenders
// keep staging; every waiter whose record made the batch is released by
// that single fsync. Under k concurrent writers the fsync cost is paid
// ~once per batch instead of once per record.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"erfilter/internal/faultfs"
	"erfilter/internal/metrics"
)

const (
	segMagic = "ERWAL\x01\n"
	// segPrefix/segSuffix name segment files wal-%016x.seg so that
	// lexicographic order equals numeric order.
	segPrefix = "wal-"
	segSuffix = ".seg"
	// frameHeader is u32 payload length + u32 CRC32-C of the payload.
	frameHeader = 8
	// maxRecord bounds a single payload; a corrupt length field larger
	// than this is treated as a torn record, not an allocation request.
	maxRecord = 1 << 26

	defaultSegmentBytes = 8 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed WAL entry: an opaque payload under a caller-
// defined type byte.
type Record struct {
	Type uint8
	Data []byte
}

// Options tune a WAL. The zero value is ready for production use.
type Options struct {
	// FS is the file-system seam; nil selects the real OS.
	FS faultfs.FS
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this size (default 8 MiB).
	SegmentBytes int64
}

// WAL is an append-only, segment-rotating, group-committed log. All
// methods are safe for concurrent use. After any write or fsync error
// the WAL is broken for good: the sticky error is returned from every
// later call, and the owner is expected to degrade to read-only.
type WAL struct {
	fs     faultfs.FS
	dir    string
	segMax int64

	mu       sync.Mutex
	cond     *sync.Cond
	f        faultfs.File // current segment; IO only by the leader
	segIdx   uint64
	segSize  int64  // bytes written to the current segment
	pending  []byte // staged frames not yet handed to a leader
	appended uint64
	synced   uint64
	leader   bool
	err      error
	syncs    uint64
	trimmed  uint64

	// Telemetry, recorded by the commit leader outside the mutex. The
	// histograms answer the two questions the mean-based Stats cannot:
	// what the tail of the fsync cost looks like, and how well group
	// commit is amortizing it (batch records per fsync).
	fsyncNS   metrics.Histogram // one observation per fsync, in ns
	batchRecs metrics.Histogram // records covered by each group commit
	rotations metrics.Counter   // segments cut by size or checkpoint
}

func segName(idx uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, idx, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if len(name) != len(segPrefix)+16+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	idx, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// Open recovers the log in dir — replaying every intact record through
// replay in append order, truncating the log at the first torn or
// corrupt record — and returns it ready for appending. A replay error
// aborts Open; everything a crash could plausibly leave behind does not.
func Open(dir string, opt Options, replay func(Record) error) (*WAL, error) {
	fsys := opt.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	segMax := opt.SegmentBytes
	if segMax <= 0 {
		segMax = defaultSegmentBytes
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	w := &WAL{fs: fsys, dir: dir, segMax: segMax}
	w.cond = sync.NewCond(&w.mu)
	if err := w.recover(replay); err != nil {
		return nil, err
	}
	return w, nil
}

// recover scans the segment files in index order, replays intact
// records, and cuts the log at the first damage: the damaged segment is
// truncated to its last intact byte and every later segment is removed
// (a torn middle record means nothing after it was acknowledged).
func (w *WAL) recover(replay func(Record) error) error {
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", w.dir, err)
	}
	var segs []uint64
	for _, name := range names {
		if idx, ok := parseSegName(name); ok {
			segs = append(segs, idx)
		}
	}
	damagedAt := -1 // index into segs of the segment that had to be cut
	for i, idx := range segs {
		intact, err := w.replaySegment(idx, replay)
		if err != nil {
			return err
		}
		if !intact {
			damagedAt = i
			break
		}
	}
	if damagedAt >= 0 {
		for _, idx := range segs[damagedAt+1:] {
			if err := w.fs.Remove(filepath.Join(w.dir, segName(idx))); err != nil {
				return fmt.Errorf("wal: removing post-damage segment %d: %w", idx, err)
			}
		}
		segs = segs[:damagedAt+1]
	}

	// Resume appending into the last segment, or start segment 1.
	if len(segs) == 0 {
		return w.createSegment(1)
	}
	last := segs[len(segs)-1]
	f, err := w.fs.OpenFile(filepath.Join(w.dir, segName(last)), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening segment %d: %w", last, err)
	}
	size, err := sizeOf(w.fs, filepath.Join(w.dir, segName(last)))
	if err != nil {
		f.Close()
		return err
	}
	if size < int64(len(segMagic)) {
		// The segment was created but the crash beat the magic write;
		// rewrite it from scratch.
		f.Close()
		return w.createSegment(last)
	}
	w.f, w.segIdx, w.segSize = f, last, size
	return nil
}

// replaySegment feeds the segment's intact records to replay. It
// reports intact=false — after truncating the file at the damage — when
// the segment ends in a torn or corrupt record.
func (w *WAL) replaySegment(idx uint64, replay func(Record) error) (intact bool, err error) {
	path := filepath.Join(w.dir, segName(idx))
	data, err := readFileAll(w.fs, path)
	if err != nil {
		return false, fmt.Errorf("wal: reading segment %d: %w", idx, err)
	}
	good := 0
	if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
		good = len(segMagic)
		for {
			rec, next, ok := parseFrame(data, good)
			if !ok {
				break
			}
			if replay != nil {
				if err := replay(rec); err != nil {
					return false, fmt.Errorf("wal: replaying segment %d: %w", idx, err)
				}
			}
			good = next
		}
	}
	if good == len(data) {
		return true, nil
	}
	if err := w.truncateFile(path, int64(good)); err != nil {
		return false, fmt.Errorf("wal: truncating torn segment %d at %d: %w", idx, good, err)
	}
	return false, nil
}

// parseFrame decodes one frame at off; ok is false when the bytes from
// off on do not hold a complete, checksum-intact record.
func parseFrame(data []byte, off int) (Record, int, bool) {
	if off+frameHeader > len(data) {
		return Record{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n < 1 || n > maxRecord || off+frameHeader+n > len(data) {
		return Record{}, 0, false
	}
	payload := data[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, 0, false
	}
	return Record{Type: payload[0], Data: payload[1:]}, off + frameHeader + n, true
}

func appendFrame(dst []byte, typ uint8, data []byte) []byte {
	n := 1 + len(data)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n))
	crc := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, data)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, typ)
	return append(dst, data...)
}

func (w *WAL) truncateFile(path string, size int64) error {
	f, err := w.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	err = f.Truncate(size)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// createSegment starts a fresh segment file (truncating any partial
// leftover under the same name) and makes it current.
func (w *WAL) createSegment(idx uint64) error {
	f, err := faultfs.Create(w.fs, filepath.Join(w.dir, segName(idx)))
	if err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", idx, err)
	}
	if _, err := f.Write([]byte(segMagic)); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: initializing segment %d: %w", idx, err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing dir for segment %d: %w", idx, err)
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f, w.segIdx, w.segSize = f, idx, int64(len(segMagic))
	return nil
}

// Append stages one record and blocks until it is durably on disk (its
// fsync may be shared with concurrent appenders — group commit). On a
// nil return the record survives any later crash.
func (w *WAL) Append(typ uint8, data []byte) error {
	seq, err := w.AppendBuffered(typ, data)
	if err != nil {
		return err
	}
	return w.WaitSync(seq)
}

// AppendBuffered stages one record in the commit buffer and returns its
// sequence number without waiting for durability. The record is applied
// to disk in staging order by the next group commit; callers that need
// the ack must WaitSync the returned sequence.
func (w *WAL) AppendBuffered(typ uint8, data []byte) (uint64, error) {
	if 1+len(data) > maxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(data), maxRecord)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	w.pending = appendFrame(w.pending, typ, data)
	w.appended++
	return w.appended, nil
}

// WaitSync blocks until the record with the given sequence number is
// durable (or the WAL is broken). The first waiter becomes the commit
// leader: it takes the whole staged batch, writes and fsyncs it without
// holding the mutex — so later appenders keep staging — and releases
// every waiter the batch covered.
func (w *WAL) WaitSync(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.synced < seq && w.err == nil {
		if w.leader {
			w.cond.Wait()
			continue
		}
		w.commitLocked(false)
	}
	if w.synced >= seq {
		return nil
	}
	return w.err
}

// commitLocked runs one group commit as the leader. Called with w.mu
// held; temporarily releases it around the IO. When rotate is true a
// fresh segment is cut after the batch lands, so every record staged so
// far lives in segments strictly before the returned current index.
func (w *WAL) commitLocked(rotate bool) {
	w.leader = true
	batch := w.pending
	w.pending = nil
	target := w.appended
	covered := target - w.synced
	needRotate := rotate || w.segSize+int64(len(batch)) > w.segMax
	f := w.f
	w.mu.Unlock()

	var err error
	if len(batch) > 0 {
		if _, err = f.Write(batch); err == nil {
			begin := time.Now()
			err = f.Sync()
			w.fsyncNS.ObserveDuration(time.Since(begin))
			w.batchRecs.Observe(int64(covered))
		}
	}

	w.mu.Lock()
	w.leader = false
	if err != nil {
		w.err = fmt.Errorf("wal: committing batch: %w", err)
	} else {
		if len(batch) > 0 {
			w.syncs++
		}
		w.segSize += int64(len(batch))
		if target > w.synced {
			w.synced = target
		}
		// Rotation only matters for future appends; an empty current
		// segment is already a valid checkpoint boundary.
		if needRotate && w.segSize > int64(len(segMagic)) {
			if rerr := w.createSegment(w.segIdx + 1); rerr != nil {
				w.err = rerr
			} else {
				w.rotations.Inc()
			}
		}
	}
	w.cond.Broadcast()
}

// Rotate flushes everything staged so far and cuts a fresh segment,
// returning the new current segment index: every record appended before
// the call lives in a segment with a strictly smaller index, which is
// exactly the boundary a checkpoint needs for TrimBefore.
func (w *WAL) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.leader {
		w.cond.Wait()
	}
	if w.err != nil {
		return 0, w.err
	}
	w.commitLocked(true)
	return w.segIdx, w.err
}

// TrimBefore deletes every segment with an index strictly below keep —
// the post-checkpoint cleanup. Failing to remove an obsolete segment is
// reported but does not break the WAL (recovery replays idempotently).
func (w *WAL) TrimBefore(keep uint64) error {
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", w.dir, err)
	}
	var firstErr error
	for _, name := range names {
		idx, ok := parseSegName(name)
		if !ok || idx >= keep {
			continue
		}
		if err := w.fs.Remove(filepath.Join(w.dir, name)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: trimming segment %d: %w", idx, err)
		} else if err == nil {
			w.mu.Lock()
			w.trimmed++
			w.mu.Unlock()
		}
	}
	return firstErr
}

// Err returns the sticky failure, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	Appended uint64 `json:"appended"` // records staged since Open
	Synced   uint64 `json:"synced"`   // records durably committed
	Syncs    uint64 `json:"syncs"`    // fsync batches (group commits)
	Segment  uint64 `json:"segment"`  // current segment index
	Trimmed  uint64 `json:"trimmed"`  // segments deleted by TrimBefore
	Broken   bool   `json:"broken"`   // sticky failure present
}

// RegisterMetrics exposes the log's telemetry under the given registry:
// fsync latency and group-commit batch-size histograms, plus counters
// for appended/synced records, fsyncs, rotations and trims, and a 0/1
// gauge for the sticky-failure state.
func (w *WAL) RegisterMetrics(reg *metrics.Registry, labels metrics.Labels) {
	reg.RegisterHistogram("wal_fsync_duration_seconds",
		"Latency of each WAL fsync (one per group commit).", labels, 1e-9, &w.fsyncNS)
	reg.RegisterHistogram("wal_commit_batch_records",
		"Records covered by each group commit (fsync amortization).", labels, 1, &w.batchRecs)
	reg.RegisterCounter("wal_segment_rotations_total",
		"Segments cut by size or checkpoint rotation.", labels, &w.rotations)
	reg.CounterFunc("wal_appended_records_total",
		"Records staged since the log was opened.", labels,
		func() float64 { return float64(w.Stats().Appended) })
	reg.CounterFunc("wal_synced_records_total",
		"Records durably committed (fsynced).", labels,
		func() float64 { return float64(w.Stats().Synced) })
	reg.CounterFunc("wal_fsyncs_total",
		"Group commits (fsync batches) performed.", labels,
		func() float64 { return float64(w.Stats().Syncs) })
	reg.CounterFunc("wal_segments_trimmed_total",
		"Obsolete segments deleted after checkpoints.", labels,
		func() float64 { return float64(w.Stats().Trimmed) })
	reg.GaugeFunc("wal_broken",
		"1 when the log carries a sticky write/fsync failure, else 0.", labels,
		func() float64 {
			if w.Stats().Broken {
				return 1
			}
			return 0
		})
}

// Stats summarizes the log.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Appended: w.appended, Synced: w.synced, Syncs: w.syncs,
		Segment: w.segIdx, Trimmed: w.trimmed, Broken: w.err != nil,
	}
}

// Close commits anything still staged and closes the current segment.
// The WAL is unusable afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	for w.leader {
		w.cond.Wait()
	}
	if w.err == nil && len(w.pending) > 0 {
		w.commitLocked(false)
	}
	err := w.err
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	if w.err == nil {
		w.err = fmt.Errorf("wal: closed")
	}
	w.mu.Unlock()
	w.cond.Broadcast()
	return err
}

func readFileAll(fsys faultfs.FS, path string) ([]byte, error) {
	f, err := faultfs.Open(fsys, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

func sizeOf(fsys faultfs.FS, path string) (int64, error) {
	b, err := readFileAll(fsys, path)
	if err != nil {
		return 0, err
	}
	return int64(len(b)), nil
}
