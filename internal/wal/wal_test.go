package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"erfilter/internal/faultfs"
)

const dir = "waldir"

func collect(records *[]Record) func(Record) error {
	return func(r Record) error {
		*records = append(*records, Record{Type: r.Type, Data: append([]byte(nil), r.Data...)})
		return nil
	}
}

func mustOpen(t *testing.T, fsys faultfs.FS, opt Options) (*WAL, []Record) {
	t.Helper()
	var recs []Record
	opt.FS = fsys
	w, err := Open(dir, opt, collect(&recs))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w, recs
}

func appendN(t *testing.T, w *WAL, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := w.Append(1, []byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, recs []Record, n int) {
	t.Helper()
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("record-%04d", i); string(r.Data) != want || r.Type != 1 {
			t.Fatalf("record %d = type %d %q, want %q", i, r.Type, r.Data, want)
		}
	}
}

// TestAppendReplayRoundTrip covers the plain path across several
// reopen cycles and multiple segments.
func TestAppendReplayRoundTrip(t *testing.T) {
	m := faultfs.NewMem()
	w, recs := mustOpen(t, m, Options{SegmentBytes: 256})
	wantRecords(t, recs, 0)
	appendN(t, w, 0, 40)
	if st := w.Stats(); st.Segment < 2 {
		t.Fatalf("tiny segments never rotated: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs := mustOpen(t, m, Options{SegmentBytes: 256})
	wantRecords(t, recs, 40)
	appendN(t, w2, 40, 10)
	w2.Close()

	_, recs = mustOpen(t, m, Options{SegmentBytes: 256})
	wantRecords(t, recs, 50)
}

// TestTornTailTruncated kills the file system mid-record and proves
// recovery keeps exactly the acknowledged prefix and can append again.
func TestTornTailTruncated(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{})
	appendN(t, w, 0, 10)

	// The 11th record is torn: the write budget cuts it after a few
	// bytes, so its Append errors and it must NOT come back.
	m.LimitWrites(5)
	if err := w.Append(1, []byte("record-0010")); err == nil {
		t.Fatal("torn append must error")
	}
	m.Restart(func(string, int) int { return 1 << 20 }) // keep every torn byte

	w2, recs := mustOpen(t, m, Options{})
	wantRecords(t, recs, 10)
	appendN(t, w2, 10, 5)
	w2.Close()
	_, recs = mustOpen(t, m, Options{})
	wantRecords(t, recs, 15)
}

// TestCrashDropsUnsyncedTail restarts with a random-length torn tail at
// every possible byte length and checks recovery never fails and never
// resurrects a record that was not fully durable.
func TestCrashDropsUnsyncedTail(t *testing.T) {
	// Build a reference log to learn the byte layout.
	ref := faultfs.NewMem()
	w, _ := mustOpen(t, ref, Options{})
	appendN(t, w, 0, 6)
	w.Close()
	full, ok := ref.FileBytes(filepath.Join(dir, segName(1)))
	if !ok {
		t.Fatal("no segment file")
	}

	for cut := 0; cut <= len(full); cut++ {
		m := faultfs.NewMem()
		w, _ := mustOpen(t, m, Options{})
		appendN(t, w, 0, 6)
		m.Crash()
		m.Restart(func(name string, unsynced int) int { return 0 })
		// Simulate the platter holding only a prefix: truncate directly.
		f, err := m.OpenFile(filepath.Join(dir, segName(1)), os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(int64(cut)); err != nil {
			t.Fatal(err)
		}
		f.Close()

		var recs []Record
		w2, err := Open(dir, Options{FS: m}, collect(&recs))
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		for i, r := range recs {
			if want := fmt.Sprintf("record-%04d", i); string(r.Data) != want {
				t.Fatalf("cut=%d: record %d = %q", cut, i, r.Data)
			}
		}
		// Appends after recovery must still work and survive.
		if err := w2.Append(2, []byte("after")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		w2.Close()
		var again []Record
		if _, err := Open(dir, Options{FS: m}, collect(&again)); err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(again) != len(recs)+1 || again[len(again)-1].Type != 2 {
			t.Fatalf("cut=%d: after-recovery append lost: %d vs %d", cut, len(again), len(recs)+1)
		}
	}
}

// TestCorruptMiddleStopsReplay flips a byte inside an early record: the
// log must replay only the prefix before the damage and discard
// everything after it, including whole later segments.
func TestCorruptMiddleStopsReplay(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{SegmentBytes: 128})
	appendN(t, w, 0, 20) // several segments
	w.Close()
	if st := w.Stats(); st.Segment < 3 {
		t.Fatalf("want ≥3 segments, got %+v", st)
	}

	// Flip one payload byte in the first segment, after the magic and
	// the first record.
	seg1 := filepath.Join(dir, segName(1))
	if err := m.FlipByte(seg1, int64(len(segMagic))+frameHeader+1+11+frameHeader+3); err != nil {
		t.Fatal(err)
	}

	_, recs := mustOpen(t, m, Options{})
	wantRecords(t, recs, 1)
	names, err := m.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("later segments not removed: %v", names)
	}
}

// TestGroupCommitBatchesFsyncs hammers the log from many goroutines and
// checks (a) every acked record survives, in order, and (b) the number
// of fsyncs is well below the number of records — the group commit.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	m := faultfs.NewMem()
	// A realistic fsync is far slower than an in-memory one; the delay
	// gives followers time to stage, which is what produces batches.
	m.BeforeSync = func(string) { time.Sleep(200 * time.Microsecond) }
	var recs []Record
	w, err := Open(dir, Options{FS: m}, collect(&recs))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := w.Append(1, []byte(fmt.Sprintf("w%d-%04d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Synced != writers*perWriter {
		t.Fatalf("synced %d records, want %d", st.Synced, writers*perWriter)
	}
	if st.Syncs >= st.Synced {
		t.Fatalf("no batching: %d fsyncs for %d records", st.Syncs, st.Synced)
	}
	w.Close()

	var replayed []Record
	if _, err := Open(dir, Options{FS: m}, collect(&replayed)); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(replayed), writers*perWriter)
	}
	// Per-writer order must be preserved even under interleaving.
	next := map[byte]int{}
	for _, r := range replayed {
		var g, i int
		if _, err := fmt.Sscanf(string(r.Data), "w%d-%d", &g, &i); err != nil {
			t.Fatalf("bad record %q", r.Data)
		}
		if i != next[byte(g)] {
			t.Fatalf("writer %d record %d out of order (want %d)", g, i, next[byte(g)])
		}
		next[byte(g)]++
	}
}

// TestRotateAndTrim checks the checkpoint boundary contract: after
// Rotate, TrimBefore(new) deletes exactly the segments holding the
// already-appended records, and recovery still works.
func TestRotateAndTrim(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{SegmentBytes: 1 << 20})
	appendN(t, w, 0, 10)
	boundary, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if boundary < 2 {
		t.Fatalf("rotate did not advance: %d", boundary)
	}
	// Rotate on an already-empty segment is a no-op boundary.
	again, err := w.Rotate()
	if err != nil || again != boundary {
		t.Fatalf("idle rotate: %d, %v", again, err)
	}
	if err := w.TrimBefore(boundary); err != nil {
		t.Fatal(err)
	}
	names, _ := m.ReadDir(dir)
	if len(names) != 1 {
		t.Fatalf("segments after trim: %v", names)
	}
	appendN(t, w, 0, 3)
	w.Close()
	_, recs := mustOpen(t, m, Options{})
	wantRecords(t, recs, 3)
}

// TestSyncFailureIsSticky proves a failed fsync breaks the log for good
// and the failed record is not acknowledged.
func TestSyncFailureIsSticky(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{})
	appendN(t, w, 0, 3)
	m.FailAllSyncs(true)
	if err := w.Append(1, []byte("record-0003")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append with broken disk: %v", err)
	}
	if err := w.Err(); err == nil {
		t.Fatal("error not sticky")
	}
	m.FailAllSyncs(false)
	if err := w.Append(1, []byte("record-9999")); err == nil {
		t.Fatal("append after sticky failure must keep failing")
	}
	m.Restart(nil)
	_, recs := mustOpen(t, m, Options{})
	wantRecords(t, recs, 3)
}

func TestRecordBound(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{})
	if _, err := w.AppendBuffered(1, make([]byte, maxRecord)); err == nil {
		t.Fatal("oversized record must be rejected")
	}
}
