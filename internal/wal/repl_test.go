package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"erfilter/internal/faultfs"
)

func TestPositionWireForm(t *testing.T) {
	cases := []Position{{}, {1, 0}, {1, 8}, {42, 1 << 30}, {^uint64(0), 7}}
	for _, p := range cases {
		got, err := ParsePosition(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v -> %q -> %v (%v)", p, p.String(), got, err)
		}
	}
	for _, bad := range []string{"", "5", "5.", ".5", "5.-1", "x.0", "5.0x", "5..0"} {
		if _, err := ParsePosition(bad); err == nil {
			t.Fatalf("ParsePosition(%q) accepted", bad)
		}
	}
	if !(Position{1, 9}).Less(Position{2, 0}) || (Position{2, 0}).Less(Position{2, 0}) ||
		!(Position{2, 0}).Less(Position{2, 1}) {
		t.Fatal("position ordering wrong")
	}
}

// drain walks the log from pos via ReadAt with a small chunk size,
// returning the concatenated bytes — the follower's fetch loop in
// miniature.
func drain(t *testing.T, w *WAL, pos Position, chunk int) ([]byte, Position) {
	t.Helper()
	var out []byte
	for {
		data, at, next, err := w.ReadAt(pos, chunk)
		if err != nil {
			t.Fatalf("ReadAt(%v): %v", pos, err)
		}
		if len(data) == 0 {
			if next != pos || at != pos {
				t.Fatalf("empty read moved position %v -> at %v next %v", pos, at, next)
			}
			return out, pos
		}
		out = append(out, data...)
		pos = next
	}
}

func TestReadAtEmptyLog(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{})
	defer w.Close()
	// A fresh log holds exactly the magic of segment 1.
	data, at, next, err := w.ReadAt(Position{1, 0}, 0)
	if err != nil || len(data) != MagicLen || at != (Position{1, 0}) || next != (Position{1, int64(MagicLen)}) {
		t.Fatalf("got %d bytes at=%v next=%v err=%v", len(data), at, next, err)
	}
	// Caught up: empty read, same position.
	data, _, next, err = w.ReadAt(next, 0)
	if err != nil || len(data) != 0 || next != (Position{1, int64(MagicLen)}) {
		t.Fatalf("caught-up read: %d bytes next=%v err=%v", len(data), next, err)
	}
}

func TestReadAtWalksRotatedSegmentsByteIdentically(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{SegmentBytes: 128})
	defer w.Close()
	appendN(t, w, 0, 40) // several rotations at 128-byte segments
	end := w.Pos()
	if end.Seg < 3 {
		t.Fatalf("expected rotations, still at %v", end)
	}
	got, at := drain(t, w, Position{1, 0}, 37) // odd chunk: split frames mid-header
	if at != end {
		t.Fatalf("drained to %v, want %v", at, end)
	}
	// The drained stream must equal the segment files concatenated.
	var want []byte
	for seg := uint64(1); seg <= end.Seg; seg++ {
		b, ok := m.FileBytes(dir + "/" + segName(seg))
		if !ok {
			t.Fatalf("segment %d missing", seg)
		}
		want = append(want, b...)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("drained %d bytes != %d on-disk bytes", len(got), len(want))
	}
	// And parse back to exactly the appended records.
	var recs []Record
	off := 0
	for seg := uint64(1); seg <= end.Seg; seg++ {
		b, _ := m.FileBytes(dir + "/" + segName(seg))
		rs, n, err := ParseFrames(b, true)
		if err != nil || n != len(b) {
			t.Fatalf("segment %d: consumed %d/%d err=%v", seg, n, len(b), err)
		}
		recs, off = append(recs, rs...), off+n
	}
	wantRecords(t, recs, 40)
}

func TestReadAtOffsetPastEndIsFuture(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{})
	defer w.Close()
	appendN(t, w, 0, 3)
	end := w.Pos()
	for _, pos := range []Position{{end.Seg, end.Off + 1}, {end.Seg + 1, 0}, {end.Seg + 5, 99}} {
		if _, _, _, err := w.ReadAt(pos, 0); !errors.Is(err, ErrFuture) {
			t.Fatalf("ReadAt(%v) err=%v, want ErrFuture", pos, err)
		}
	}
}

func TestReadAtTrimmedSegmentSignalsRestart(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{SegmentBytes: 64})
	defer w.Close()
	appendN(t, w, 0, 20)
	keep, err := w.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := w.TrimBefore(keep); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if _, _, _, err := w.ReadAt(Position{1, 0}, 0); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("read into trimmed segment err=%v, want ErrTrimmed", err)
	}
	// The retained tail still reads fine.
	if _, _, _, err := w.ReadAt(Position{keep, 0}, 0); err != nil {
		t.Fatalf("read at keep boundary: %v", err)
	}
}

func TestReadAtServesOnlyDurableBytesOfTornTail(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{})
	appendN(t, w, 0, 5)
	durable := w.Pos()
	// Stage a record and fail its fsync: the bytes hit the file but are
	// not durable; ReadAt must not serve them.
	m.FailSync(1)
	if err := w.Append(1, []byte("lost")); err == nil {
		t.Fatal("append with failed fsync succeeded")
	}
	data, _, next, err := w.ReadAt(Position{1, 0}, 1<<20)
	if err != nil {
		t.Fatalf("ReadAt on broken wal: %v", err)
	}
	if next != durable || int64(len(data)) != durable.Off {
		t.Fatalf("read %d bytes to %v, want exactly the durable %v", len(data), next, durable)
	}
	recs, n, perr := ParseFrames(data, true)
	if perr != nil || n != len(data) || len(recs) != 5 {
		t.Fatalf("durable prefix parsed to %d records (consumed %d/%d, err %v)", len(recs), n, len(data), perr)
	}
}

func TestWaitForLongPoll(t *testing.T) {
	m := faultfs.NewMem()
	w, _ := mustOpen(t, m, Options{})
	defer w.Close()
	end := w.Pos()
	if w.WaitFor(end, 20*time.Millisecond) {
		t.Fatal("WaitFor reported progress on an idle log")
	}
	done := make(chan bool, 1)
	go func() { done <- w.WaitFor(end, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	appendN(t, w, 0, 1)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitFor missed the append")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor never woke")
	}
	if !w.WaitFor(Position{1, 0}, 0) {
		t.Fatal("WaitFor with bytes already available returned false")
	}
}

func TestParseFramesRejectsCorruption(t *testing.T) {
	var stream []byte
	stream = append(stream, segMagic...)
	stream = appendFrame(stream, 1, []byte("hello"))
	stream = appendFrame(stream, 2, []byte("world"))

	if _, _, err := ParseFrames(append([]byte("XXWAL\x01\n"), stream[MagicLen:]...), true); err == nil {
		t.Fatal("bad magic accepted")
	}
	flipped := append([]byte(nil), stream...)
	flipped[MagicLen+frameHeader+2] ^= 0x40 // payload bit flip in a complete frame
	if _, _, err := ParseFrames(flipped, true); err == nil {
		t.Fatal("checksum mismatch accepted")
	}
	insane := append([]byte(nil), stream[:MagicLen]...)
	insane = append(insane, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	if _, _, err := ParseFrames(insane, true); err == nil {
		t.Fatal("insane length accepted")
	}
	// Every truncation of a valid stream is torn, not corrupt, and
	// consumes only whole frames.
	for cut := 0; cut < len(stream); cut++ {
		recs, n, err := ParseFrames(stream[:cut], true)
		if err != nil {
			t.Fatalf("prefix %d: %v", cut, err)
		}
		if n > cut {
			t.Fatalf("prefix %d: consumed %d", cut, n)
		}
		if cut == len(stream)-1 && len(recs) != 1 {
			t.Fatalf("prefix %d: %d records, want 1", cut, len(recs))
		}
	}
	recs, n, err := ParseFrames(stream, true)
	if err != nil || n != len(stream) || len(recs) != 2 ||
		string(recs[0].Data) != "hello" || string(recs[1].Data) != "world" {
		t.Fatalf("full parse: %d recs consumed %d err %v", len(recs), n, err)
	}
}

// mirrorFrom tails w into a fresh mirror under mfs until caught up,
// chunked so frames split across fetches.
func mirrorFrom(t *testing.T, w *WAL, mfs faultfs.FS, mdir string, chunk int) *Mirror {
	t.Helper()
	mir, err := OpenMirror(mdir, Options{FS: mfs}, Position{1, 0}, nil)
	if err != nil {
		t.Fatalf("open mirror: %v", err)
	}
	catchUp(t, w, mir, chunk)
	return mir
}

func catchUp(t *testing.T, w *WAL, mir *Mirror, chunk int) {
	t.Helper()
	for {
		pos := mir.Pos()
		data, at, _, err := w.ReadAt(pos, chunk)
		if err != nil {
			t.Fatalf("tail ReadAt(%v): %v", pos, err)
		}
		if len(data) == 0 {
			return
		}
		// Only durable whole frames cross into the mirror, like the
		// real tailer: parse first, append the consumed prefix.
		_, n, perr := ParseFrames(data, at.Off == 0)
		if perr != nil {
			t.Fatalf("tail parse at %v: %v", at, perr)
		}
		if n == 0 {
			// A frame split below the chunk size would stall; the test
			// chunk is always big enough for one frame.
			t.Fatalf("no complete frame in %d bytes at %v", len(data), at)
		}
		if err := mir.AppendAt(at, data[:n]); err != nil {
			t.Fatalf("mirror append at %v: %v", at, err)
		}
	}
}

func segmentsEqual(t *testing.T, a faultfs.FS, adir string, b faultfs.FS, bdir string) {
	t.Helper()
	an, err := a.ReadDir(adir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range an {
		if _, ok := parseSegName(name); !ok {
			continue
		}
		ab, err := readFileAll(a, adir+"/"+name)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := readFileAll(b, bdir+"/"+name)
		if err != nil {
			t.Fatalf("mirror missing %s: %v", name, err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("segment %s differs: leader %d bytes, mirror %d", name, len(ab), len(bb))
		}
	}
}

func TestMirrorByteIdenticalAcrossRotations(t *testing.T) {
	lm, mm := faultfs.NewMem(), faultfs.NewMem()
	w, _ := mustOpen(t, lm, Options{SegmentBytes: 128})
	defer w.Close()
	appendN(t, w, 0, 30)
	mir := mirrorFrom(t, w, mm, dir, 64)
	if mir.Pos() != w.Pos() {
		t.Fatalf("mirror at %v, leader at %v", mir.Pos(), w.Pos())
	}
	segmentsEqual(t, lm, dir, mm, dir)
	// More appends, catch up again: same invariant.
	appendN(t, w, 30, 10)
	catchUp(t, w, mir, 512)
	segmentsEqual(t, lm, dir, mm, dir)
	mir.Close()
}

func TestMirrorCrashRecoveryTruncatesTornTail(t *testing.T) {
	lm, mm := faultfs.NewMem(), faultfs.NewMem()
	w, _ := mustOpen(t, lm, Options{SegmentBytes: 1 << 20})
	defer w.Close()
	appendN(t, w, 0, 10)
	mir := mirrorFrom(t, w, mm, dir, 1<<20)
	durable := mir.Pos()

	// The follower crashes with un-fsynced junk on the end of its
	// segment (a torn mirror write).
	mm.Crash()
	mm.Restart(func(name string, unsynced int) int { return unsynced / 2 })
	f, err := mm.OpenFile(dir+"/"+segName(durable.Seg), 0x2|0x400 /* O_RDWR|O_APPEND */, 0o644)
	if err == nil {
		f.Write([]byte{0x13, 0x37, 0x00})
		f.Close()
	}

	var recs []Record
	mir2, err := OpenMirror(dir, Options{FS: mm}, Position{1, 0}, collect(&recs))
	if err != nil {
		t.Fatalf("reopen mirror: %v", err)
	}
	if mir2.Pos() != durable {
		t.Fatalf("recovered to %v, want the durable %v", mir2.Pos(), durable)
	}
	wantRecords(t, recs, 10)
	// And it keeps tailing from there.
	appendN(t, w, 10, 5)
	catchUp(t, w, mir2, 1<<20)
	segmentsEqual(t, lm, dir, mm, dir)
	mir2.Close()
}

func TestMirrorOpenDropsPreBootstrapSegments(t *testing.T) {
	mm := faultfs.NewMem()
	// Fake leftovers from an earlier life: segments 1 and 2.
	for _, seg := range []uint64{1, 2} {
		f, err := faultfs.Create(mm, dir+"/"+segName(seg))
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte(segMagic))
		f.Sync()
		f.Close()
	}
	var recs []Record
	mir, err := OpenMirror(dir, Options{FS: mm}, Position{7, 0}, collect(&recs))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("replayed %d pre-bootstrap records", len(recs))
	}
	if !mir.Pos().IsZero() && mir.Pos() != (Position{7, 0}) {
		t.Fatalf("anchored at %v, want 7.0", mir.Pos())
	}
	if names, _ := mm.ReadDir(dir); len(names) != 0 {
		t.Fatalf("stale segments survived: %v", names)
	}
	mir.Close()
}

func TestMirrorRejectsMisalignedAppend(t *testing.T) {
	mm := faultfs.NewMem()
	mir, err := OpenMirror(dir, Options{FS: mm}, Position{1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mir.Close()
	if err := mir.AppendAt(Position{1, 0}, []byte(segMagic)); err != nil {
		t.Fatal(err)
	}
	if err := mir.AppendAt(Position{1, 99}, []byte("x")); err == nil {
		t.Fatal("gap append accepted")
	}
	if err := mir.AppendAt(Position{1, 2}, []byte("x")); err == nil {
		t.Fatal("rewind append accepted")
	}
}

func TestMirrorResetAndTruncate(t *testing.T) {
	lm, mm := faultfs.NewMem(), faultfs.NewMem()
	w, _ := mustOpen(t, lm, Options{SegmentBytes: 128})
	defer w.Close()
	appendN(t, w, 0, 20)
	mir := mirrorFrom(t, w, mm, dir, 256)
	end := mir.Pos()

	// Truncate back inside the current segment.
	back := Position{end.Seg, int64(MagicLen)}
	if end.Off == int64(MagicLen) {
		back = Position{end.Seg - 1, int64(MagicLen)}
	}
	if err := mir.TruncateTo(back); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if mir.Pos() != back {
		t.Fatalf("at %v after truncate, want %v", mir.Pos(), back)
	}
	catchUp(t, w, mir, 256)
	t.Log("re-tailed after truncate") // truncated suffix refetched verbatim
	segmentsEqual(t, lm, dir, mm, dir)

	// Reset wipes everything and re-anchors.
	if err := mir.Reset(Position{42, 0}); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if mir.Pos() != (Position{42, 0}) {
		t.Fatalf("at %v after reset", mir.Pos())
	}
	if names, _ := mm.ReadDir(dir); len(names) != 0 {
		t.Fatalf("reset left segments: %v", names)
	}
	if err := mir.Reset(Position{42, 9}); err == nil {
		t.Fatal("reset to a mid-segment offset accepted")
	}
}

func TestMirrorIntoWALContinuesTheLog(t *testing.T) {
	lm, mm := faultfs.NewMem(), faultfs.NewMem()
	w, _ := mustOpen(t, lm, Options{SegmentBytes: 256})
	appendN(t, w, 0, 12)
	mir := mirrorFrom(t, w, mm, dir, 1<<20)
	w.Close()

	// Promote: the mirror becomes a live WAL and appends continue in
	// the same segment.
	pw, err := mir.IntoWAL(Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("IntoWAL: %v", err)
	}
	appendN(t, pw, 12, 8)
	pw.Close()

	// Recovery of the promoted log sees one seamless history.
	var recs []Record
	w2, err := Open(dir, Options{FS: mm, SegmentBytes: 256}, collect(&recs))
	if err != nil {
		t.Fatalf("reopen promoted: %v", err)
	}
	defer w2.Close()
	wantRecords(t, recs, 20)

	// Promoting an empty mirror starts a fresh segment at the anchor.
	m3 := faultfs.NewMem()
	mir3, err := OpenMirror(dir, Options{FS: m3}, Position{9, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := mir3.IntoWAL(Options{})
	if err != nil {
		t.Fatalf("IntoWAL empty: %v", err)
	}
	if err := w3.Append(1, []byte(fmt.Sprintf("record-%04d", 0))); err != nil {
		t.Fatalf("append on promoted-empty: %v", err)
	}
	if w3.Pos().Seg != 9 {
		t.Fatalf("promoted-empty at segment %d, want 9", w3.Pos().Seg)
	}
	w3.Close()
}
