package wal

// Replication read side: positions, durable range reads and a long-poll
// wait. A follower mirrors the leader's segment files byte-for-byte, so
// a (segment, offset) pair is a coordinate both sides agree on — the
// public "epoch" of a replica is simply how far its mirrored log
// extends. ReadAt serves only durable bytes (fsynced, never staged), so
// anything a follower receives is something the leader cannot lose.

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

var (
	// ErrTrimmed reports a read inside a segment a checkpoint has
	// deleted: the follower cannot catch up by tailing and must restart
	// from a fresh snapshot (the HTTP layer's 410).
	ErrTrimmed = errors.New("wal: segment trimmed away; restart from snapshot")
	// ErrFuture reports a read position beyond the durable end of the
	// log. A follower seeing it holds bytes this leader never wrote —
	// its log diverged across a failover — and must re-bootstrap.
	ErrFuture = errors.New("wal: position beyond end of log")
)

// DefaultReadChunk bounds one ReadAt reply when the caller passes no
// explicit limit.
const DefaultReadChunk = 1 << 20

// Position addresses a byte in the log: segment index plus byte offset
// within that segment file (offset 0 is the first byte of the segment
// magic). Positions are totally ordered by (Seg, Off).
type Position struct {
	Seg uint64
	Off int64
}

// String renders "seg.off" in decimal — the wire form used by the
// /v1/wal from= parameter and the X-ER-Epoch header.
func (p Position) String() string { return fmt.Sprintf("%d.%d", p.Seg, p.Off) }

// Less reports whether p is strictly before q.
func (p Position) Less(q Position) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// IsZero reports the zero position (before any segment; segment indices
// start at 1).
func (p Position) IsZero() bool { return p.Seg == 0 && p.Off == 0 }

// ParsePosition parses the "seg.off" wire form.
func ParsePosition(s string) (Position, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return Position{}, fmt.Errorf("wal: position %q: want seg.off", s)
	}
	seg, err := strconv.ParseUint(s[:dot], 10, 64)
	if err != nil {
		return Position{}, fmt.Errorf("wal: position %q: bad segment: %w", s, err)
	}
	off, err := strconv.ParseInt(s[dot+1:], 10, 64)
	if err != nil || off < 0 {
		return Position{}, fmt.Errorf("wal: position %q: bad offset", s)
	}
	return Position{Seg: seg, Off: off}, nil
}

// Pos returns the durable end of the log: the position just past the
// last fsynced byte. Staged-but-unsynced bytes are invisible here, so
// Pos is safe to hand to followers and to use as a write's epoch after
// WaitSync returns.
func (w *WAL) Pos() Position {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Position{Seg: w.segIdx, Off: w.segSize}
}

// ReadAt returns up to max durable bytes, the position at where they
// start — pos itself, or (seg+1, 0) when pos sat exactly on the end of
// a sealed segment — and the position next immediately after them, so a
// caller that keeps requesting from next walks the whole log. An empty
// reply with next == at == pos means the caller is caught up. max <= 0
// selects DefaultReadChunk.
//
// Errors: ErrTrimmed when pos lies in a deleted segment (restart from a
// snapshot), ErrFuture when pos is beyond the durable end (the caller's
// log diverged). A broken WAL still serves reads — followers may drain
// a degraded leader.
func (w *WAL) ReadAt(pos Position, max int) (data []byte, at, next Position, err error) {
	if max <= 0 {
		max = DefaultReadChunk
	}
	w.mu.Lock()
	cur, durable := w.segIdx, w.segSize
	w.mu.Unlock()

	for {
		if pos.Seg > cur || (pos.Seg == cur && pos.Off > durable) {
			return nil, Position{}, Position{}, ErrFuture
		}
		raw, rerr := readFileAll(w.fs, filepath.Join(w.dir, segName(pos.Seg)))
		if rerr != nil {
			// The only way a segment at or below the current index is
			// missing is a checkpoint trim (possibly racing this read).
			return nil, Position{}, Position{}, ErrTrimmed
		}
		limit := int64(len(raw))
		if pos.Seg == cur {
			// The current segment may carry written-but-unsynced bytes
			// past the durable watermark; never serve those.
			limit = durable
		}
		if pos.Off > limit {
			return nil, Position{}, Position{}, ErrFuture
		}
		if pos.Off == limit && pos.Seg < cur {
			// Exactly at the end of a sealed segment: step into the
			// next one so an empty reply always means caught up.
			pos = Position{Seg: pos.Seg + 1, Off: 0}
			continue
		}
		n := limit - pos.Off
		if n > int64(max) {
			n = int64(max)
		}
		data = append([]byte(nil), raw[pos.Off:pos.Off+n]...)
		next = Position{Seg: pos.Seg, Off: pos.Off + n}
		if pos.Seg < cur && next.Off == limit {
			next = Position{Seg: pos.Seg + 1, Off: 0}
		}
		return data, pos, next, nil
	}
}

// WaitFor blocks until the durable end of the log is past pos, the
// timeout elapses, or the WAL breaks; it reports whether bytes beyond
// pos exist. This is the long-poll primitive behind /v1/wal: a
// caught-up follower parks here instead of busy-polling.
func (w *WAL) WaitFor(pos Position, d time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	fired := false
	t := time.AfterFunc(d, func() {
		w.mu.Lock()
		fired = true
		w.mu.Unlock()
		w.cond.Broadcast()
	})
	defer t.Stop()
	for {
		end := Position{Seg: w.segIdx, Off: w.segSize}
		if pos.Less(end) {
			return true
		}
		if fired || w.err != nil {
			return false
		}
		// Commits broadcast on every group-commit completion and
		// rotation, so any durable progress wakes this waiter.
		w.cond.Wait()
	}
}

// MagicLen is the length of the segment-file magic that starts every
// segment (offset 0 .. MagicLen-1 of each segment file).
const MagicLen = len(segMagic)

// ParseFrames walks the complete frames in data — a raw byte run lifted
// from a segment file. When segStart is true data begins at offset 0 of
// a segment and must open with the segment magic. It returns the
// decoded records, how many bytes they (plus the magic) cover, and an
// error only for provable corruption: bad magic, an insane length
// field, or a complete frame whose checksum fails. A merely-incomplete
// tail is not an error — the caller re-requests from pos+consumed.
//
// The returned records alias data; callers that retain them must copy.
func ParseFrames(data []byte, segStart bool) (recs []Record, consumed int, err error) {
	off := 0
	if segStart {
		if len(data) < MagicLen {
			return nil, 0, nil
		}
		if string(data[:MagicLen]) != segMagic {
			return nil, 0, fmt.Errorf("wal: bad segment magic in stream")
		}
		off = MagicLen
	}
	for {
		rec, next, ok := parseFrame(data, off)
		if !ok {
			// Distinguish torn (incomplete suffix) from corrupt (a
			// complete frame that fails its own checks).
			if off+frameHeader <= len(data) {
				n := int(frameLen(data, off))
				if n < 1 || n > maxRecord {
					return nil, 0, fmt.Errorf("wal: corrupt frame length %d in stream", n)
				}
				if off+frameHeader+n <= len(data) {
					return nil, 0, fmt.Errorf("wal: frame checksum mismatch in stream")
				}
			}
			return recs, off, nil
		}
		recs = append(recs, rec)
		off = next
	}
}

func frameLen(data []byte, off int) uint32 {
	return uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
}
