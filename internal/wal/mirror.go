package wal

// Mirror is the follower-side log: a byte-for-byte replica of a
// leader's segment files, fed raw chunks lifted by ReadAt on the other
// end. It never frames records itself — the leader already did — it
// only appends verbatim, fsyncs before acknowledging, and preserves the
// invariant that its files are a prefix of the leader's. Because the
// bytes are identical, recovery after a follower crash is the ordinary
// WAL recovery (truncate the torn tail, replay the rest), and promotion
// is a handoff: IntoWAL turns the mirror into a real appendable WAL
// without copying a byte.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"erfilter/internal/faultfs"
)

// Mirror replicates a WAL's segment files verbatim. All methods are
// safe for concurrent use. Like the WAL, any write or fsync error is
// sticky; Reset clears it (the follower re-bootstraps from scratch).
type Mirror struct {
	fs     faultfs.FS
	dir    string
	segMax int64

	mu     sync.Mutex
	f      faultfs.File // current segment; nil before the first byte lands
	seg    uint64
	size   int64
	err    error
	closed bool
}

// OpenMirror recovers the mirrored log in dir. Segments below base.Seg
// are deleted unread — they predate the bootstrap snapshot the caller
// is anchored to and their records are absorbed by it. The remaining
// segments are replayed through replay with the ordinary WAL recovery
// semantics (truncate at the first torn record, drop later segments).
// When no segment survives, the mirror positions itself at base
// awaiting the leader's bytes; base.Off must be 0 (bootstrap positions
// are rotation boundaries).
func OpenMirror(dir string, opt Options, base Position, replay func(Record) error) (*Mirror, error) {
	if base.Off != 0 {
		return nil, fmt.Errorf("wal: mirror base %s: bootstrap positions start segments", base)
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	segMax := opt.SegmentBytes
	if segMax <= 0 {
		segMax = defaultSegmentBytes
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	m := &Mirror{fs: fsys, dir: dir, segMax: segMax, seg: base.Seg}

	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []uint64
	for _, name := range names {
		idx, ok := parseSegName(name)
		if !ok {
			continue
		}
		if idx < base.Seg {
			// A leftover from before the last bootstrap: the snapshot
			// already contains its records, and replaying them against
			// the newer snapshot could resurrect deleted entities.
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: removing pre-bootstrap segment %d: %w", idx, err)
			}
			continue
		}
		segs = append(segs, idx)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	// Recovery proper is identical to the leader's: the throwaway WAL
	// value only lends its fs/dir to replaySegment and truncateFile.
	rw := &WAL{fs: fsys, dir: dir}
	damagedAt := -1
	for i, idx := range segs {
		intact, err := rw.replaySegment(idx, replay)
		if err != nil {
			return nil, err
		}
		if !intact {
			damagedAt = i
			break
		}
	}
	if damagedAt >= 0 {
		for _, idx := range segs[damagedAt+1:] {
			if err := fsys.Remove(filepath.Join(dir, segName(idx))); err != nil {
				return nil, fmt.Errorf("wal: removing post-damage segment %d: %w", idx, err)
			}
		}
		segs = segs[:damagedAt+1]
	}
	if len(segs) == 0 {
		return m, nil
	}
	last := segs[len(segs)-1]
	path := filepath.Join(dir, segName(last))
	size, err := sizeOf(fsys, path)
	if err != nil {
		return nil, err
	}
	if size < int64(MagicLen) {
		// The crash beat even the magic bytes; restart the segment so
		// the next fetch asks from offset 0.
		if err := rw.truncateFile(path, 0); err != nil {
			return nil, fmt.Errorf("wal: resetting runt segment %d: %w", last, err)
		}
		size = 0
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: reopening segment %d: %w", last, err)
	}
	m.f, m.seg, m.size = f, last, size
	return m, nil
}

// Pos returns the durable end of the mirrored log — the from= value of
// the follower's next fetch, and therefore its ack to the leader.
func (m *Mirror) Pos() Position {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Position{Seg: m.seg, Off: m.size}
}

// Err returns the sticky failure, if any.
func (m *Mirror) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// AppendAt appends data at pos, which must be the mirror's current end
// — or the start of a later segment, which seals the current one and
// cuts the next (the leader rotated). The bytes are fsynced before
// AppendAt returns: a position the follower advertises is durable.
func (m *Mirror) AppendAt(pos Position, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if m.closed {
		return fmt.Errorf("wal: mirror closed")
	}
	switch {
	case pos.Seg == m.seg && pos.Off == m.size:
		if m.f == nil {
			if err := m.cutLocked(m.seg); err != nil {
				return err
			}
		}
	case pos.Seg > m.seg && pos.Off == 0:
		if err := m.cutLocked(pos.Seg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("wal: mirror at %s cannot append at %s", Position{m.seg, m.size}, pos)
	}
	if len(data) == 0 {
		return nil
	}
	_, err := m.f.Write(data)
	if err == nil {
		err = m.f.Sync()
	}
	if err != nil {
		m.err = fmt.Errorf("wal: mirroring at %s: %w", pos, err)
		return m.err
	}
	m.size += int64(len(data))
	return nil
}

// cutLocked opens a fresh, empty segment file as current. Unlike the
// leader's createSegment it writes no magic — the magic arrives in the
// replicated byte stream.
func (m *Mirror) cutLocked(idx uint64) error {
	f, err := faultfs.Create(m.fs, filepath.Join(m.dir, segName(idx)))
	if err != nil {
		m.err = fmt.Errorf("wal: cutting mirror segment %d: %w", idx, err)
		return m.err
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		f.Close()
		m.err = fmt.Errorf("wal: syncing dir for mirror segment %d: %w", idx, err)
		return m.err
	}
	if m.f != nil {
		m.f.Close()
	}
	m.f, m.seg, m.size = f, idx, 0
	return nil
}

// TruncateTo cuts the mirrored log back to pos: segments beyond pos.Seg
// are removed and the current segment is truncated to pos.Off. The
// caller owns re-deriving its in-memory state (the dropped suffix was
// already applied); the store layer does that by reopening.
func (m *Mirror) TruncateTo(pos Position) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("wal: mirror closed")
	}
	cur := Position{Seg: m.seg, Off: m.size}
	if cur.Less(pos) {
		return fmt.Errorf("wal: mirror at %s cannot truncate forward to %s", cur, pos)
	}
	names, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", m.dir, err)
	}
	if m.f != nil {
		m.f.Close()
		m.f = nil
	}
	for _, name := range names {
		idx, ok := parseSegName(name)
		if !ok || idx <= pos.Seg {
			continue
		}
		if err := m.fs.Remove(filepath.Join(m.dir, name)); err != nil {
			m.err = fmt.Errorf("wal: truncating mirror: %w", err)
			return m.err
		}
	}
	rw := &WAL{fs: m.fs, dir: m.dir}
	path := filepath.Join(m.dir, segName(pos.Seg))
	if err := rw.truncateFile(path, pos.Off); err != nil {
		m.err = fmt.Errorf("wal: truncating mirror segment %d: %w", pos.Seg, err)
		return m.err
	}
	f, err := m.fs.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		m.err = fmt.Errorf("wal: reopening truncated segment %d: %w", pos.Seg, err)
		return m.err
	}
	m.f, m.seg, m.size = f, pos.Seg, pos.Off
	return nil
}

// Reset wipes every mirrored segment and re-anchors the mirror at base
// (a rotation boundary: base.Off must be 0) — the re-bootstrap path
// after divergence or a trimmed-away tail. It also clears a sticky
// error: the slate is genuinely clean.
func (m *Mirror) Reset(base Position) error {
	if base.Off != 0 {
		return fmt.Errorf("wal: mirror reset to %s: bootstrap positions start segments", base)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("wal: mirror closed")
	}
	if m.f != nil {
		m.f.Close()
		m.f = nil
	}
	names, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", m.dir, err)
	}
	for _, name := range names {
		if _, ok := parseSegName(name); !ok {
			continue
		}
		if err := m.fs.Remove(filepath.Join(m.dir, name)); err != nil {
			return fmt.Errorf("wal: resetting mirror: %w", err)
		}
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		return fmt.Errorf("wal: resetting mirror: %w", err)
	}
	m.seg, m.size, m.err = base.Seg, 0, nil
	return nil
}

// TrimBefore deletes mirrored segments strictly below keep — the
// follower's post-checkpoint cleanup. The current segment is never
// deleted.
func (m *Mirror) TrimBefore(keep uint64) error {
	m.mu.Lock()
	cur := m.seg
	m.mu.Unlock()
	if keep > cur {
		keep = cur
	}
	names, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", m.dir, err)
	}
	for _, name := range names {
		idx, ok := parseSegName(name)
		if !ok || idx >= keep {
			continue
		}
		if err := m.fs.Remove(filepath.Join(m.dir, name)); err != nil {
			return fmt.Errorf("wal: trimming mirror segment %d: %w", idx, err)
		}
	}
	return nil
}

// IntoWAL promotes the mirror into an appendable WAL continuing at the
// mirror's exact position — the open segment file changes hands without
// a copy. The mirror is unusable afterwards. When the mirror never
// received a byte (or holds a runt segment with no magic yet), the WAL
// starts the segment itself.
func (m *Mirror) IntoWAL(opt Options) (*WAL, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	if m.closed {
		return nil, fmt.Errorf("wal: mirror closed")
	}
	m.closed = true
	segMax := opt.SegmentBytes
	if segMax <= 0 {
		segMax = m.segMax
	}
	w := &WAL{fs: m.fs, dir: m.dir, segMax: segMax}
	w.cond = sync.NewCond(&w.mu)
	if m.f == nil || m.size < int64(MagicLen) {
		if m.f != nil {
			m.f.Close()
		}
		seg := m.seg
		if seg == 0 {
			seg = 1
		}
		if err := w.createSegment(seg); err != nil {
			return nil, err
		}
		m.f = nil
		return w, nil
	}
	w.f, w.segIdx, w.segSize = m.f, m.seg, m.size
	m.f = nil
	return w, nil
}

// Close closes the mirrored segment file; the mirror is unusable
// afterwards.
func (m *Mirror) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.f != nil {
		err := m.f.Close()
		m.f = nil
		return err
	}
	return nil
}
