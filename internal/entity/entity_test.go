package entity

import (
	"testing"
	"testing/quick"
)

func sampleTask() *Task {
	e1 := New("E1", []Profile{
		{Attrs: []Attribute{{Name: "name", Value: "canon a540"}, {Name: "price", Value: "199"}}},
		{Attrs: []Attribute{{Name: "name", Value: "nikon p100"}}},
		{Attrs: []Attribute{{Name: "price", Value: "99"}}},
	})
	e2 := New("E2", []Profile{
		{Attrs: []Attribute{{Name: "name", Value: "canon a540 camera"}}},
		{Attrs: []Attribute{{Name: "name", Value: "garmin nuvi"}, {Name: "price", Value: "449"}}},
	})
	truth := NewGroundTruth([]Pair{{Left: 0, Right: 0}})
	return &Task{Name: "t", E1: e1, E2: e2, Truth: truth, BestAttribute: "name"}
}

func TestProfileValueAndAllText(t *testing.T) {
	p := Profile{Attrs: []Attribute{
		{Name: "name", Value: "canon"},
		{Name: "name", Value: "a540"},
		{Name: "price", Value: ""},
		{Name: "desc", Value: "camera"},
	}}
	if got := p.Value("name"); got != "canon a540" {
		t.Fatalf("Value(name) = %q", got)
	}
	if got := p.Value("missing"); got != "" {
		t.Fatalf("Value(missing) = %q", got)
	}
	if got := p.AllText(); got != "canon a540 camera" {
		t.Fatalf("AllText = %q", got)
	}
}

func TestNewAssignsSequentialIDs(t *testing.T) {
	d := New("d", make([]Profile, 5))
	for i, p := range d.Profiles {
		if p.ID != int32(i) {
			t.Fatalf("profile %d has ID %d", i, p.ID)
		}
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestAttributeNamesSorted(t *testing.T) {
	task := sampleTask()
	names := task.E1.AttributeNames()
	if len(names) != 2 || names[0] != "name" || names[1] != "price" {
		t.Fatalf("names = %v", names)
	}
}

func TestGroundTruth(t *testing.T) {
	g := NewGroundTruth([]Pair{{Left: 1, Right: 2}, {Left: 1, Right: 2}, {Left: 3, Right: 4}})
	if g.Size() != 2 {
		t.Fatalf("size = %d (duplicates must collapse)", g.Size())
	}
	if !g.Contains(Pair{Left: 1, Right: 2}) || g.Contains(Pair{Left: 2, Right: 1}) {
		t.Fatal("contains semantics wrong")
	}
	if len(g.Pairs()) != 2 {
		t.Fatal("Pairs() length wrong")
	}
}

func TestViews(t *testing.T) {
	task := sampleTask()
	agn := NewView(task.E1, SchemaAgnostic, "")
	if agn.Text(0) != "canon a540 199" {
		t.Fatalf("agnostic text = %q", agn.Text(0))
	}
	based := NewView(task.E1, SchemaBased, "name")
	if based.Text(0) != "canon a540" {
		t.Fatalf("based text = %q", based.Text(0))
	}
	if based.Text(2) != "" {
		t.Fatalf("missing attribute should give empty text, got %q", based.Text(2))
	}
	v1, v2 := TaskViews(task, SchemaBased)
	if v1.Len() != 3 || v2.Len() != 2 {
		t.Fatal("TaskViews lengths wrong")
	}
}

func TestViewWithTexts(t *testing.T) {
	task := sampleTask()
	v := NewView(task.E1, SchemaAgnostic, "")
	replaced := v.WithTexts([]string{"a", "b", "c"})
	if replaced.Text(1) != "b" || v.Text(1) == "b" {
		t.Fatal("WithTexts must not mutate the original")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	v.WithTexts([]string{"too", "short"})
}

func TestStatsFor(t *testing.T) {
	task := sampleTask()
	s := StatsFor(task, "name")
	// 4 of 5 profiles have a name.
	if s.Coverage != 0.8 {
		t.Fatalf("coverage = %v", s.Coverage)
	}
	// Both duplicate profiles have names.
	if s.GroundtruthCoverage != 1 {
		t.Fatalf("groundtruth coverage = %v", s.GroundtruthCoverage)
	}
	// All 4 values distinct.
	if s.Distinctiveness != 1 {
		t.Fatalf("distinctiveness = %v", s.Distinctiveness)
	}
	price := StatsFor(task, "price")
	if price.Coverage != 0.6 {
		t.Fatalf("price coverage = %v", price.Coverage)
	}
	if price.GroundtruthCoverage != 0.5 {
		t.Fatalf("price groundtruth coverage = %v", price.GroundtruthCoverage)
	}
}

func TestBestAttributePrefersRichText(t *testing.T) {
	task := sampleTask()
	if got := BestAttribute(task); got != "name" {
		t.Fatalf("best attribute = %q", got)
	}
}

func TestTextStatsOf(t *testing.T) {
	task := sampleTask()
	v1, v2 := TaskViews(task, SchemaAgnostic)
	s := TextStatsOf(v1, v2)
	if s.VocabularySize == 0 || s.CharacterLength == 0 {
		t.Fatalf("stats = %+v", s)
	}
	// The schema-based view is a strict subset of the text.
	b1, b2 := TaskViews(task, SchemaBased)
	sb := TextStatsOf(b1, b2)
	if sb.CharacterLength >= s.CharacterLength {
		t.Fatal("schema-based character length should shrink")
	}
}

func TestCartesianProduct(t *testing.T) {
	task := sampleTask()
	if task.CartesianProduct() != 6 {
		t.Fatalf("cartesian = %v", task.CartesianProduct())
	}
}

func TestSchemaSettingString(t *testing.T) {
	if SchemaAgnostic.String() != "schema-agnostic" || SchemaBased.String() != "schema-based" {
		t.Fatal("setting names wrong")
	}
}

func TestStatsBounds(t *testing.T) {
	f := func(values []string) bool {
		profiles := make([]Profile, len(values))
		for i, v := range values {
			profiles[i] = Profile{Attrs: []Attribute{{Name: "a", Value: v}}}
		}
		if len(profiles) == 0 {
			return true
		}
		task := &Task{
			E1:    New("x", profiles),
			E2:    New("y", []Profile{{Attrs: []Attribute{{Name: "a", Value: "z"}}}}),
			Truth: NewGroundTruth(nil),
		}
		s := StatsFor(task, "a")
		return s.Coverage >= 0 && s.Coverage <= 1 && s.Distinctiveness >= 0 && s.Distinctiveness <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
