// Package entity defines the data model of Clean-Clean Entity Resolution:
// entity profiles made of textual name-value pairs, datasets of profiles,
// candidate pairs, and the groundtruth of matching pairs.
//
// The model follows the paper's Section III: an entity profile e_i is a set
// of textual name-value pairs describing a real-world object. Clean-Clean ER
// receives two individually duplicate-free but overlapping datasets E1 and E2
// and asks for the pairs (e1, e2) that refer to the same object.
package entity

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute is a single textual name-value pair of an entity profile.
type Attribute struct {
	Name  string
	Value string
}

// Profile is an entity profile: an identifier plus its name-value pairs.
// The ID is unique within its dataset and doubles as the index of the
// profile in Dataset.Profiles.
type Profile struct {
	ID    int32
	Attrs []Attribute
}

// Value returns the value of the named attribute, or "" if absent.
// If the attribute appears multiple times the values are joined by a space.
func (p *Profile) Value(name string) string {
	var parts []string
	for _, a := range p.Attrs {
		if a.Name == name && a.Value != "" {
			parts = append(parts, a.Value)
		}
	}
	return strings.Join(parts, " ")
}

// AllText concatenates every attribute value of the profile, separated by
// single spaces, in attribute order. This is the schema-agnostic view used
// throughout the paper: the entity is treated as one long textual value.
func (p *Profile) AllText() string {
	var sb strings.Builder
	for _, a := range p.Attrs {
		if a.Value == "" {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(a.Value)
	}
	return sb.String()
}

// Dataset is an ordered collection of entity profiles, duplicate-free in
// Clean-Clean ER. Profiles[i].ID == int32(i) always holds for datasets
// constructed through New.
type Dataset struct {
	Name     string
	Profiles []Profile
}

// New creates a dataset and assigns sequential IDs to the given profiles.
func New(name string, profiles []Profile) *Dataset {
	for i := range profiles {
		profiles[i].ID = int32(i)
	}
	return &Dataset{Name: name, Profiles: profiles}
}

// Len returns the number of profiles in the dataset.
func (d *Dataset) Len() int { return len(d.Profiles) }

// AttributeNames returns the distinct attribute names appearing in the
// dataset, sorted lexicographically.
func (d *Dataset) AttributeNames() []string {
	seen := map[string]bool{}
	for i := range d.Profiles {
		for _, a := range d.Profiles[i].Attrs {
			seen[a.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Pair is a candidate pair of a Clean-Clean ER task: Left indexes a profile
// of E1 and Right a profile of E2.
type Pair struct {
	Left  int32
	Right int32
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.Left, p.Right) }

// GroundTruth is the set of true matching pairs between E1 and E2.
type GroundTruth struct {
	pairs map[Pair]struct{}
}

// NewGroundTruth builds a groundtruth from a list of matching pairs.
// Duplicate entries are collapsed.
func NewGroundTruth(pairs []Pair) *GroundTruth {
	g := &GroundTruth{pairs: make(map[Pair]struct{}, len(pairs))}
	for _, p := range pairs {
		g.pairs[p] = struct{}{}
	}
	return g
}

// Size returns the number of duplicate pairs in the groundtruth.
func (g *GroundTruth) Size() int { return len(g.pairs) }

// Contains reports whether the pair is a true match.
func (g *GroundTruth) Contains(p Pair) bool {
	_, ok := g.pairs[p]
	return ok
}

// Pairs returns the matching pairs in an unspecified order.
func (g *GroundTruth) Pairs() []Pair {
	out := make([]Pair, 0, len(g.pairs))
	for p := range g.pairs {
		out = append(out, p)
	}
	return out
}

// Task bundles the inputs of one Clean-Clean ER filtering task.
type Task struct {
	Name  string
	E1    *Dataset
	E2    *Dataset
	Truth *GroundTruth
	// BestAttribute is the most informative attribute in terms of coverage
	// and distinctiveness, used by the schema-based settings (Table VI).
	BestAttribute string
}

// CartesianProduct returns |E1| * |E2| as a float64 (it can exceed int32).
func (t *Task) CartesianProduct() float64 {
	return float64(t.E1.Len()) * float64(t.E2.Len())
}
