package entity

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "name,price\ncanon a540,199\nnikon p100,\n"
	d, err := ReadCSV("shop", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if got := d.Profiles[0].Value("price"); got != "199" {
		t.Fatalf("price = %q", got)
	}
	if got := d.Profiles[1].Value("price"); got != "" {
		t.Fatalf("empty cell should be absent, got %q", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := New("d", []Profile{
		{Attrs: []Attribute{{Name: "a", Value: "x y"}, {Name: "b", Value: "1"}}},
		{Attrs: []Attribute{{Name: "b", Value: "2"}}},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("d", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round-trip length %d", got.Len())
	}
	for i := range orig.Profiles {
		if got.Profiles[i].AllText() != orig.Profiles[i].AllText() {
			t.Fatalf("profile %d: %q != %q", i, got.Profiles[i].AllText(), orig.Profiles[i].AllText())
		}
	}
}

func TestReadGroundTruthCSV(t *testing.T) {
	in := "id1,id2\n0,1\n2,0\n"
	g, err := ReadGroundTruthCSV(strings.NewReader(in), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 || !g.Contains(Pair{Left: 2, Right: 0}) {
		t.Fatalf("groundtruth wrong: %v", g.Pairs())
	}
	// Headerless input works too.
	g2, err := ReadGroundTruthCSV(strings.NewReader("0,0\n"), 1, 1)
	if err != nil || g2.Size() != 1 {
		t.Fatalf("headerless: %v %v", g2, err)
	}
	// Out of range.
	if _, err := ReadGroundTruthCSV(strings.NewReader("5,0\n"), 3, 2); err == nil {
		t.Fatal("out-of-range pair should error")
	}
	// Non-numeric beyond the header.
	if _, err := ReadGroundTruthCSV(strings.NewReader("a,b\nc,d\n"), 3, 2); err == nil {
		t.Fatal("non-numeric body should error")
	}
}
