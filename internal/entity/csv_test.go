package entity

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "name,price\ncanon a540,199\nnikon p100,\n"
	d, err := ReadCSV("shop", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if got := d.Profiles[0].Value("price"); got != "199" {
		t.Fatalf("price = %q", got)
	}
	if got := d.Profiles[1].Value("price"); got != "" {
		t.Fatalf("empty cell should be absent, got %q", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := New("d", []Profile{
		{Attrs: []Attribute{{Name: "a", Value: "x y"}, {Name: "b", Value: "1"}}},
		{Attrs: []Attribute{{Name: "b", Value: "2"}}},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("d", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round-trip length %d", got.Len())
	}
	for i := range orig.Profiles {
		if got.Profiles[i].AllText() != orig.Profiles[i].AllText() {
			t.Fatalf("profile %d: %q != %q", i, got.Profiles[i].AllText(), orig.Profiles[i].AllText())
		}
	}
}

// TestCSVRoundTripEdgeCases pins the ingest behaviors the erserve
// bulk-load path relies on: quoted fields containing commas, newlines and
// quotes survive a write/read round-trip, missing values become absent
// attributes, and ragged rows neither crash nor invent attributes.
func TestCSVRoundTripEdgeCases(t *testing.T) {
	orig := New("edge", []Profile{
		{Attrs: []Attribute{
			{Name: "name", Value: `canon, powershot "a540"`},
			{Name: "desc", Value: "line one\nline two, with comma"},
		}},
		{Attrs: []Attribute{
			{Name: "desc", Value: "only a description"},
		}},
		{Attrs: []Attribute{
			{Name: "name", Value: "  leading and trailing  "},
			{Name: "desc", Value: ","},
		}},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("edge", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round-trip length %d, want %d", got.Len(), orig.Len())
	}
	for i := range orig.Profiles {
		for _, name := range []string{"name", "desc"} {
			if w, g := orig.Profiles[i].Value(name), got.Profiles[i].Value(name); w != g {
				t.Fatalf("profile %d %s: %q != %q", i, name, g, w)
			}
		}
	}
	// The missing value stayed an absent attribute, not an empty one.
	for _, a := range got.Profiles[1].Attrs {
		if a.Name == "name" {
			t.Fatalf("missing cell materialized as %+v", a)
		}
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	// Short row: trailing attributes absent. Long row: extra cells have no
	// attribute name and are dropped.
	in := "name,price\nshort\nlong,12,extra,cells\n"
	d, err := ReadCSV("ragged", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if got := d.Profiles[0].Value("price"); got != "" {
		t.Fatalf("short row price = %q", got)
	}
	if got := d.Profiles[1].Value("price"); got != "12" {
		t.Fatalf("long row price = %q", got)
	}
	if n := len(d.Profiles[1].Attrs); n != 2 {
		t.Fatalf("long row grew %d attributes", n)
	}
}

func TestReadCSVQuotedNewlineDirect(t *testing.T) {
	in := "name,desc\n\"a, b\",\"first\nsecond\"\n"
	d, err := ReadCSV("q", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Profiles[0].Value("name"); got != "a, b" {
		t.Fatalf("name = %q", got)
	}
	if got := d.Profiles[0].Value("desc"); got != "first\nsecond" {
		t.Fatalf("desc = %q", got)
	}
}

func TestReadCSVStripsBOM(t *testing.T) {
	in := "\ufeffname,price\ncanon,199\n"
	d, err := ReadCSV("bom", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Profiles[0].Value("name"); got != "canon" {
		t.Fatalf("BOM leaked into header: attrs = %+v", d.Profiles[0].Attrs)
	}
}

func TestReadGroundTruthCSV(t *testing.T) {
	in := "id1,id2\n0,1\n2,0\n"
	g, err := ReadGroundTruthCSV(strings.NewReader(in), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 || !g.Contains(Pair{Left: 2, Right: 0}) {
		t.Fatalf("groundtruth wrong: %v", g.Pairs())
	}
	// Headerless input works too.
	g2, err := ReadGroundTruthCSV(strings.NewReader("0,0\n"), 1, 1)
	if err != nil || g2.Size() != 1 {
		t.Fatalf("headerless: %v %v", g2, err)
	}
	// Out of range.
	if _, err := ReadGroundTruthCSV(strings.NewReader("5,0\n"), 3, 2); err == nil {
		t.Fatal("out-of-range pair should error")
	}
	// Non-numeric beyond the header.
	if _, err := ReadGroundTruthCSV(strings.NewReader("a,b\nc,d\n"), 3, 2); err == nil {
		t.Fatal("non-numeric body should error")
	}
}
