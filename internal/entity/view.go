package entity

// SchemaSetting selects how the textual content of a profile is assembled
// before filtering, per the paper's "schema settings" (Section VI).
type SchemaSetting int

const (
	// SchemaAgnostic concatenates all attribute values of a profile,
	// treating the entity as one long textual value. It is inherently
	// applicable to heterogeneous schemata and tolerates misplaced values.
	SchemaAgnostic SchemaSetting = iota
	// SchemaBased uses only the value of the task's best attribute,
	// selected for coverage and distinctiveness.
	SchemaBased
)

// String implements fmt.Stringer.
func (s SchemaSetting) String() string {
	if s == SchemaBased {
		return "schema-based"
	}
	return "schema-agnostic"
}

// View exposes the textual content of a dataset under one schema setting.
// Filters operate exclusively through Views, so every method sees the exact
// same input text for a given (dataset, setting) combination.
type View struct {
	Dataset *Dataset
	Setting SchemaSetting
	// Attribute is the attribute used by SchemaBased views; ignored for
	// SchemaAgnostic ones.
	Attribute string
	texts     []string
}

// NewView materializes the per-entity text of the dataset under the setting.
func NewView(d *Dataset, setting SchemaSetting, attribute string) *View {
	v := &View{Dataset: d, Setting: setting, Attribute: attribute}
	v.texts = make([]string, d.Len())
	for i := range d.Profiles {
		if setting == SchemaBased {
			v.texts[i] = d.Profiles[i].Value(attribute)
		} else {
			v.texts[i] = d.Profiles[i].AllText()
		}
	}
	return v
}

// Len returns the number of entities in the view.
func (v *View) Len() int { return len(v.texts) }

// Text returns the textual content of entity i under the view's setting.
func (v *View) Text(i int) string { return v.texts[i] }

// Texts returns the backing slice of per-entity texts. Callers must not
// modify it.
func (v *View) Texts() []string { return v.texts }

// WithTexts returns a copy of the view whose texts have been replaced,
// e.g. after cleaning (stop-word removal and stemming). The replacement
// slice must have the same length.
func (v *View) WithTexts(texts []string) *View {
	if len(texts) != len(v.texts) {
		panic("entity: WithTexts length mismatch")
	}
	return &View{Dataset: v.Dataset, Setting: v.Setting, Attribute: v.Attribute, texts: texts}
}

// TaskViews builds the E1 and E2 views of a task under the given setting.
func TaskViews(t *Task, setting SchemaSetting) (*View, *View) {
	return NewView(t.E1, setting, t.BestAttribute),
		NewView(t.E2, setting, t.BestAttribute)
}
