package entity

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads a dataset from CSV: the first row holds attribute names,
// every following row one entity profile. Empty cells become absent
// attributes. This is the ingestion path for the real-world benchmark
// datasets (Abt-Buy, DBLP-ACM, ...), which are distributed as CSV files.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("entity: reading CSV header: %w", err)
	}
	// Real-world exports (Excel, some DBMS dumps) prefix the file with a
	// UTF-8 BOM, which would otherwise corrupt the first attribute name.
	if len(header) > 0 {
		header[0] = strings.TrimPrefix(header[0], "\ufeff")
	}
	var profiles []Profile
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("entity: reading CSV row %d: %w", len(profiles)+2, err)
		}
		var attrs []Attribute
		for i, cell := range row {
			if i >= len(header) || cell == "" {
				continue
			}
			attrs = append(attrs, Attribute{Name: header[i], Value: cell})
		}
		profiles = append(profiles, Profile{Attrs: attrs})
	}
	return New(name, profiles), nil
}

// ReadGroundTruthCSV loads matching pairs from a two-column CSV of
// (E1 index, E2 index) rows; a header row is skipped if the first cell is
// not numeric.
func ReadGroundTruthCSV(r io.Reader, n1, n2 int) (*GroundTruth, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var pairs []Pair
	first := true
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("entity: reading groundtruth: %w", err)
		}
		if len(row) < 2 {
			return nil, fmt.Errorf("entity: groundtruth row needs 2 columns, got %d", len(row))
		}
		l, err1 := strconv.Atoi(row[0])
		rgt, err2 := strconv.Atoi(row[1])
		if err1 != nil || err2 != nil {
			if first {
				first = false
				continue // header row
			}
			return nil, fmt.Errorf("entity: non-numeric groundtruth row %v", row)
		}
		first = false
		if l < 0 || l >= n1 || rgt < 0 || rgt >= n2 {
			return nil, fmt.Errorf("entity: groundtruth pair (%d,%d) out of range (%d,%d)", l, rgt, n1, n2)
		}
		pairs = append(pairs, Pair{Left: int32(l), Right: int32(rgt)})
	}
	return NewGroundTruth(pairs), nil
}

// WriteCSV writes the dataset in the format ReadCSV consumes, using the
// union of attribute names as columns.
func WriteCSV(w io.Writer, d *Dataset) error {
	header := d.AttributeNames()
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for i := range d.Profiles {
		row := make([]string, len(header))
		for _, a := range d.Profiles[i].Attrs {
			c := col[a.Name]
			if row[c] != "" {
				row[c] += " "
			}
			row[c] += a.Value
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
