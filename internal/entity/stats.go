package entity

import (
	"strings"
	"unicode/utf8"
)

// AttributeStats summarizes an attribute's usefulness for schema-based
// filtering, per Section VI ("Schema settings") of the paper.
type AttributeStats struct {
	Name string
	// Coverage is the portion of entities with a non-empty value for the
	// attribute.
	Coverage float64
	// GroundtruthCoverage is the portion of duplicate profiles that have at
	// least one non-empty value for the attribute (Figure 3a).
	GroundtruthCoverage float64
	// Distinctiveness is the portion of distinct values among the entities
	// covered by the attribute.
	Distinctiveness float64
}

// StatsFor computes coverage, groundtruth coverage and distinctiveness of
// one attribute over a whole task (both datasets).
func StatsFor(t *Task, attribute string) AttributeStats {
	s := AttributeStats{Name: attribute}
	covered := 0
	distinct := map[string]struct{}{}
	total := t.E1.Len() + t.E2.Len()
	for _, d := range []*Dataset{t.E1, t.E2} {
		for i := range d.Profiles {
			v := d.Profiles[i].Value(attribute)
			if v != "" {
				covered++
				distinct[v] = struct{}{}
			}
		}
	}
	if total > 0 {
		s.Coverage = float64(covered) / float64(total)
	}
	if covered > 0 {
		s.Distinctiveness = float64(len(distinct)) / float64(covered)
	}

	// Groundtruth coverage: portion of duplicate profiles (each side counted)
	// with a non-empty value.
	if n := t.Truth.Size(); n > 0 {
		coveredDup := 0
		for _, p := range t.Truth.Pairs() {
			if t.E1.Profiles[p.Left].Value(attribute) != "" {
				coveredDup++
			}
			if t.E2.Profiles[p.Right].Value(attribute) != "" {
				coveredDup++
			}
		}
		s.GroundtruthCoverage = float64(coveredDup) / float64(2*n)
	}
	return s
}

// BestAttribute selects the attribute with the highest product of coverage
// and distinctiveness across both datasets of the task, mirroring the
// paper's selection criteria for the schema-based settings. Ties are
// broken by the average value length, preferring richer textual
// attributes (a title over an equally distinctive numeric id).
func BestAttribute(t *Task) string {
	best, bestScore, bestLen := "", -1.0, -1.0
	for _, name := range append(t.E1.AttributeNames(), t.E2.AttributeNames()...) {
		s := StatsFor(t, name)
		score := s.Coverage * s.Distinctiveness
		l := avgValueLength(t, name)
		if score > bestScore || (score == bestScore && l > bestLen) {
			best, bestScore, bestLen = name, score, l
		}
	}
	return best
}

func avgValueLength(t *Task, attribute string) float64 {
	total, n := 0, 0
	for _, d := range []*Dataset{t.E1, t.E2} {
		for i := range d.Profiles {
			if v := d.Profiles[i].Value(attribute); v != "" {
				total += utf8.RuneCountInString(v)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// TextStats reports the computational-cost measures of Figure 3(b,c):
// vocabulary size (distinct whitespace tokens) and overall character length.
type TextStats struct {
	VocabularySize  int
	CharacterLength int
}

// TextStatsOf computes the vocabulary size and character length over the
// texts of both views of a task.
func TextStatsOf(views ...*View) TextStats {
	vocab := map[string]struct{}{}
	chars := 0
	for _, v := range views {
		for i := 0; i < v.Len(); i++ {
			txt := v.Text(i)
			chars += utf8.RuneCountInString(txt)
			for _, tok := range strings.Fields(txt) {
				vocab[tok] = struct{}{}
			}
		}
	}
	return TextStats{VocabularySize: len(vocab), CharacterLength: chars}
}
