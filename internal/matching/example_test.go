package matching_test

import (
	"fmt"

	"erfilter/internal/entity"
	"erfilter/internal/matching"
)

// ExampleLevenshtein shows the edit distance used by rule-based matching.
func ExampleLevenshtein() {
	fmt.Println(matching.Levenshtein("kitten", "sitting"))
	fmt.Printf("%.2f\n", matching.LevenshteinSim("kitten", "sitting"))
	// Output:
	// 3
	// 0.57
}

// ExampleJaroWinkler shows the prefix-boosted Jaro similarity.
func ExampleJaroWinkler() {
	fmt.Printf("%.3f\n", matching.JaroWinkler("martha", "marhta"))
	// Output: 0.961
}

// ExampleCluster consolidates matched pairs into entity clusters via
// connected components.
func ExampleCluster() {
	clusters := matching.Cluster([]entity.Pair{
		{Left: 0, Right: 0},
		{Left: 1, Right: 0}, // links E1's 0 and 1 through E2's 0
	})
	fmt.Println(len(clusters), len(clusters[0]))
	// Output: 1 3
}
