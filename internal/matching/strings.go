// Package matching implements the verification step of the
// Filtering-Verification framework (Section I): it examines every
// candidate pair produced by a filter and decides whether it is a
// duplicate. Following the paper's description of early, label-free ER,
// the matchers are rule-based: a string similarity function compared
// against a threshold. The package provides the classic similarity
// functions (normalized Levenshtein, Jaro, Jaro-Winkler, token Jaccard,
// TF-IDF cosine) and a connected-components clustering to consolidate the
// matched pairs.
package matching

import (
	"math"
	"strings"

	"erfilter/internal/text"
)

// Levenshtein returns the edit distance between two strings (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim returns 1 - dist/maxLen, a similarity in [0,1].
func LevenshteinSim(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(max)
}

// Jaro returns the Jaro similarity of two strings in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among the matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts the Jaro similarity by the length of the common
// prefix (up to 4 characters), with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TokenJaccard returns the Jaccard coefficient of the two strings' token
// sets.
func TokenJaccard(a, b string) float64 {
	sa := map[string]struct{}{}
	for _, t := range text.Tokenize(a) {
		sa[t] = struct{}{}
	}
	sb := map[string]struct{}{}
	for _, t := range text.Tokenize(b) {
		sb[t] = struct{}{}
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TFIDFCosine scores candidate pairs with a TF-IDF-weighted cosine over
// whitespace tokens. Document frequencies are taken over the corpus given
// at construction, so rare shared tokens weigh more than generic ones —
// the same rationale as Meta-blocking's weighting schemes.
type TFIDFCosine struct {
	df   map[string]float64
	docs float64
}

// NewTFIDFCosine builds the document-frequency table over the corpus.
func NewTFIDFCosine(corpus []string) *TFIDFCosine {
	c := &TFIDFCosine{df: map[string]float64{}, docs: float64(len(corpus))}
	for _, doc := range corpus {
		seen := map[string]struct{}{}
		for _, t := range text.Tokenize(doc) {
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			c.df[t]++
		}
	}
	return c
}

func (c *TFIDFCosine) weights(s string) map[string]float64 {
	tf := map[string]float64{}
	for _, t := range text.Tokenize(s) {
		tf[t]++
	}
	w := make(map[string]float64, len(tf))
	for t, f := range tf {
		idf := math.Log((c.docs + 1) / (c.df[t] + 1))
		w[t] = f * idf
	}
	return w
}

// Sim returns the TF-IDF cosine similarity of two strings in [0,1].
func (c *TFIDFCosine) Sim(a, b string) float64 {
	wa, wb := c.weights(a), c.weights(b)
	var dot, na, nb float64
	for t, x := range wa {
		na += x * x
		if y, ok := wb[t]; ok {
			dot += x * y
		}
	}
	for _, y := range wb {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// normalize lower-cases and collapses whitespace for the character-level
// similarities.
func normalize(s string) string {
	return strings.Join(text.Tokenize(s), " ")
}
