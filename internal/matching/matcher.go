package matching

import (
	"fmt"

	"erfilter/internal/entity"
)

// Similarity identifies one of the built-in similarity functions.
type Similarity int

// The rule-based similarity functions.
const (
	SimLevenshtein Similarity = iota
	SimJaro
	SimJaroWinkler
	SimTokenJaccard
	SimTFIDFCosine
)

// String implements fmt.Stringer.
func (s Similarity) String() string {
	switch s {
	case SimLevenshtein:
		return "levenshtein"
	case SimJaro:
		return "jaro"
	case SimJaroWinkler:
		return "jaro-winkler"
	case SimTokenJaccard:
		return "token-jaccard"
	case SimTFIDFCosine:
		return "tfidf-cosine"
	}
	return "unknown"
}

// Matcher verifies candidate pairs: a pair is declared a duplicate when
// the similarity of the two entities' texts reaches the threshold.
type Matcher struct {
	Similarity Similarity
	Threshold  float64
	tfidf      *TFIDFCosine
}

// NewMatcher builds a matcher over the two views; the corpus is needed
// only for SimTFIDFCosine document frequencies.
func NewMatcher(sim Similarity, threshold float64, v1, v2 *entity.View) *Matcher {
	m := &Matcher{Similarity: sim, Threshold: threshold}
	if sim == SimTFIDFCosine {
		corpus := append(append([]string{}, v1.Texts()...), v2.Texts()...)
		m.tfidf = NewTFIDFCosine(corpus)
	}
	return m
}

// Sim scores one pair of texts.
func (m *Matcher) Sim(a, b string) float64 {
	switch m.Similarity {
	case SimLevenshtein:
		return LevenshteinSim(normalize(a), normalize(b))
	case SimJaro:
		return Jaro(normalize(a), normalize(b))
	case SimJaroWinkler:
		return JaroWinkler(normalize(a), normalize(b))
	case SimTokenJaccard:
		return TokenJaccard(a, b)
	case SimTFIDFCosine:
		return m.tfidf.Sim(a, b)
	}
	return 0
}

// Verify scores every candidate pair and returns those reaching the
// threshold.
func (m *Matcher) Verify(candidates []entity.Pair, v1, v2 *entity.View) []entity.Pair {
	var out []entity.Pair
	for _, p := range candidates {
		if m.Sim(v1.Text(int(p.Left)), v2.Text(int(p.Right))) >= m.Threshold {
			out = append(out, p)
		}
	}
	return out
}

// Quality holds the precision/recall/F1 of a verified match set.
type Quality struct {
	Precision, Recall, F1 float64
	TruePositives         int
}

// String implements fmt.Stringer.
func (q Quality) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f", q.Precision, q.Recall, q.F1)
}

// EvaluateMatches computes match quality against the groundtruth.
func EvaluateMatches(matches []entity.Pair, truth *entity.GroundTruth) Quality {
	seen := map[entity.Pair]struct{}{}
	tp := 0
	for _, p := range matches {
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		if truth.Contains(p) {
			tp++
		}
	}
	q := Quality{TruePositives: tp}
	if len(seen) > 0 {
		q.Precision = float64(tp) / float64(len(seen))
	}
	if truth.Size() > 0 {
		q.Recall = float64(tp) / float64(truth.Size())
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// Cluster consolidates matched pairs into entity clusters via connected
// components over the bipartite match graph, the standard post-processing
// of rule-based ER. Each cluster lists E1 members as non-negative ids and
// E2 members as ^id (bitwise complement).
func Cluster(matches []entity.Pair) [][]int32 {
	parent := map[int32]int32{}
	var find func(x int32) int32
	find = func(x int32) int32 {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range matches {
		union(p.Left, ^p.Right)
	}
	groups := map[int32][]int32{}
	for x := range parent {
		r := find(x)
		groups[r] = append(groups[r], x)
	}
	out := make([][]int32, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	return out
}
