package matching

import (
	"math"
	"testing"
	"testing/quick"

	"erfilter/internal/entity"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
		{"café", "cafe", 1}, // rune-level
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			return false // symmetry
		}
		if (d == 0) != (a == b) {
			return false // identity
		}
		s := LevenshteinSim(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJaro(t *testing.T) {
	// Reference values from the literature.
	if got := Jaro("martha", "marhta"); math.Abs(got-0.944) > 0.001 {
		t.Errorf("Jaro(martha,marhta) = %.4f", got)
	}
	if got := Jaro("dixon", "dicksonx"); math.Abs(got-0.767) > 0.001 {
		t.Errorf("Jaro(dixon,dicksonx) = %.4f", got)
	}
	if got := Jaro("abc", "abc"); got != 1 {
		t.Errorf("Jaro identity = %v", got)
	}
	if got := Jaro("abc", "xyz"); got != 0 {
		t.Errorf("Jaro disjoint = %v", got)
	}
	if got := Jaro("", ""); got != 1 {
		t.Errorf("Jaro empty = %v", got)
	}
	if got := Jaro("a", ""); got != 0 {
		t.Errorf("Jaro half-empty = %v", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.961) > 0.001 {
		t.Errorf("JaroWinkler(martha,marhta) = %.4f", got)
	}
	// Prefix boost: JW >= Jaro always.
	f := func(a, b string) bool {
		return JaroWinkler(a, b) >= Jaro(a, b)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("canon a540 camera", "camera canon a540"); got != 1 {
		t.Errorf("order-insensitive jaccard = %v", got)
	}
	if got := TokenJaccard("a b", "b c"); got != 1.0/3.0 {
		t.Errorf("jaccard = %v", got)
	}
	if got := TokenJaccard("", ""); got != 1 {
		t.Errorf("empty jaccard = %v", got)
	}
}

func TestTFIDFCosineWeighsRareTokens(t *testing.T) {
	corpus := []string{
		"canon a540 camera", "nikon p100 camera", "sony w55 camera",
		"olympus 710 camera", "kodak c613 camera",
	}
	c := NewTFIDFCosine(corpus)
	// Shared rare token ("a540") must outweigh shared common token ("camera").
	rare := c.Sim("canon a540", "a540 deluxe")
	common := c.Sim("canon camera", "nikon camera")
	if rare <= common {
		t.Fatalf("rare-token sim %.3f <= common-token sim %.3f", rare, common)
	}
	if got := c.Sim("canon a540 camera", "canon a540 camera"); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self-sim = %v", got)
	}
}

func mkViews(a, b []string) (*entity.View, *entity.View) {
	mk := func(texts []string) *entity.View {
		profiles := make([]entity.Profile, len(texts))
		for i, s := range texts {
			profiles[i] = entity.Profile{Attrs: []entity.Attribute{{Name: "v", Value: s}}}
		}
		return entity.NewView(entity.New("d", profiles), entity.SchemaAgnostic, "")
	}
	return mk(a), mk(b)
}

func TestMatcherVerify(t *testing.T) {
	v1, v2 := mkViews(
		[]string{"canon powershot a540", "nikon coolpix p100"},
		[]string{"canon power shot a540", "garmin nuvi 350"},
	)
	truth := entity.NewGroundTruth([]entity.Pair{{Left: 0, Right: 0}})
	candidates := []entity.Pair{
		{Left: 0, Right: 0}, {Left: 0, Right: 1}, {Left: 1, Right: 0}, {Left: 1, Right: 1},
	}
	thresholds := map[Similarity]float64{
		SimLevenshtein: 0.55, SimJaro: 0.55, SimJaroWinkler: 0.55,
		SimTokenJaccard: 0.3, SimTFIDFCosine: 0.25,
	}
	for sim, thr := range thresholds {
		m := NewMatcher(sim, thr, v1, v2)
		matches := m.Verify(candidates, v1, v2)
		q := EvaluateMatches(matches, truth)
		if q.Recall < 1 {
			t.Errorf("%s: missed the true match (recall %.2f)", sim, q.Recall)
		}
		if q.Precision < 0.5 {
			t.Errorf("%s: too many false matches (precision %.2f): %v", sim, q.Precision, matches)
		}
	}
}

func TestEvaluateMatches(t *testing.T) {
	truth := entity.NewGroundTruth([]entity.Pair{{Left: 0, Right: 0}, {Left: 1, Right: 1}})
	q := EvaluateMatches([]entity.Pair{{Left: 0, Right: 0}, {Left: 0, Right: 1}}, truth)
	if q.Precision != 0.5 || q.Recall != 0.5 || math.Abs(q.F1-0.5) > 1e-12 {
		t.Fatalf("quality = %+v", q)
	}
	empty := EvaluateMatches(nil, truth)
	if empty.F1 != 0 {
		t.Fatalf("empty quality = %+v", empty)
	}
}

func TestCluster(t *testing.T) {
	matches := []entity.Pair{
		{Left: 0, Right: 0},
		{Left: 1, Right: 0}, // 0,1 of E1 linked through E2's 0
		{Left: 2, Right: 2},
	}
	clusters := Cluster(matches)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	sizes := map[int]int{}
	for _, c := range clusters {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 {
		t.Fatalf("cluster sizes wrong: %v", clusters)
	}
}

func TestSimilarityNames(t *testing.T) {
	for _, s := range []Similarity{SimLevenshtein, SimJaro, SimJaroWinkler, SimTokenJaccard, SimTFIDFCosine} {
		if s.String() == "unknown" {
			t.Errorf("similarity %d has no name", s)
		}
	}
}
