// Package cleaning implements the two coarse-grained block cleaning steps
// of the blocking workflow (Figure 1): Block Purging and Block Filtering.
// Both operate on whole blocks or entity placements and never inspect
// individual comparisons; the fine-grained comparison cleaning lives in
// package metablocking.
package cleaning

import (
	"math"
	"sort"

	"erfilter/internal/blocking"
)

// DefaultSmoothFactor is the smooth factor of comparison-based Block
// Purging, matching the value used by the JedAI toolkit the paper builds
// on. The step remains parameter-free from the user's perspective.
const DefaultSmoothFactor = 1.025

// Purge applies comparison-based Block Purging: a parameter-free method
// that discards the blocks with the most comparisons (oversized blocks
// stemming from stop-word-like signatures), because such blocks are the
// least likely to convey matching pairs that share no other block.
//
// The maximum allowed comparisons per block is determined from the data:
// scanning the distinct block cardinalities from largest to smallest, the
// threshold is set just below the first cardinality whose marginal
// contribution of comparisons outweighs its contribution of entity
// placements by more than the smooth factor.
func Purge(c *blocking.Collection) *blocking.Collection {
	return PurgeSmooth(c, DefaultSmoothFactor)
}

// PurgeSmooth is Purge with an explicit smooth factor, exposed for testing
// and ablation studies.
func PurgeSmooth(c *blocking.Collection, smoothFactor float64) *blocking.Collection {
	if len(c.Blocks) == 0 {
		return c
	}
	// Gather the distinct block cardinalities in ascending order with
	// cumulative placement (BC) and comparison (CC) counts.
	type stat struct {
		cardinality float64 // comparisons of one block of this cardinality
		bc          float64 // cumulative placements of blocks with <= cardinality
		cc          float64 // cumulative comparisons of blocks with <= cardinality
	}
	byCard := map[float64]*stat{}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		card := float64(b.Comparisons())
		s := byCard[card]
		if s == nil {
			s = &stat{cardinality: card}
			byCard[card] = s
		}
		s.bc += float64(b.Size())
		s.cc += card
	}
	stats := make([]stat, 0, len(byCard))
	for _, s := range byCard {
		stats = append(stats, *s)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].cardinality < stats[j].cardinality })
	for i := 1; i < len(stats); i++ {
		stats[i].bc += stats[i-1].bc
		stats[i].cc += stats[i-1].cc
	}

	// Walk the cutoffs in ascending cardinality. The cumulative ratio
	// cc/bc (comparisons per entity placement) is non-decreasing; the first
	// cutoff that raises it by more than the smooth factor marks the start
	// of the oversized, stop-word-like blocks. Everything above the last
	// accepted cardinality is purged.
	maxComparisons := stats[len(stats)-1].cardinality
	for i := 1; i < len(stats); i++ {
		prev, cur := &stats[i-1], &stats[i]
		// cur.cc/cur.bc > smoothFactor * prev.cc/prev.bc, cross-multiplied
		// to avoid divisions.
		if cur.cc*prev.bc > smoothFactor*prev.cc*cur.bc {
			maxComparisons = prev.cardinality
			break
		}
	}

	out := &blocking.Collection{N1: c.N1, N2: c.N2}
	for i := range c.Blocks {
		if float64(c.Blocks[i].Comparisons()) <= maxComparisons {
			out.Blocks = append(out.Blocks, c.Blocks[i])
		}
	}
	return out
}

// Filter applies Block Filtering with ratio r in (0,1]: every entity is
// retained only in the ceil(r * |blocks(e)|) smallest of its blocks
// (ordered by comparisons ascending), on the assumption that an entity's
// largest blocks are the least likely to pair it with its match. r = 1
// keeps all placements and is equivalent to skipping the step.
func Filter(c *blocking.Collection, r float64) *blocking.Collection {
	if r >= 1 || len(c.Blocks) == 0 {
		return c
	}
	if r <= 0 {
		return &blocking.Collection{N1: c.N1, N2: c.N2}
	}
	idx := c.Index()

	// keep[side][block id] is the set of entities of that side retained in
	// the block after filtering.
	keep := [2][]map[int32]struct{}{}
	for side := 0; side < 2; side++ {
		keep[side] = make([]map[int32]struct{}, len(c.Blocks))
		for i := range keep[side] {
			keep[side][i] = map[int32]struct{}{}
		}
	}

	order := make([]int32, 0, 64)
	for side, n := range []int{c.N1, c.N2} {
		for e := int32(0); e < int32(n); e++ {
			bids := idx.BlocksOf(side, e)
			if len(bids) == 0 {
				continue
			}
			order = order[:0]
			order = append(order, bids...)
			sort.Slice(order, func(i, j int) bool {
				ci := c.Blocks[order[i]].Comparisons()
				cj := c.Blocks[order[j]].Comparisons()
				if ci != cj {
					return ci < cj
				}
				return order[i] < order[j]
			})
			limit := int(math.Ceil(r * float64(len(order))))
			if limit < 1 {
				limit = 1
			}
			for _, bid := range order[:limit] {
				keep[side][bid][e] = struct{}{}
			}
		}
	}

	out := &blocking.Collection{N1: c.N1, N2: c.N2}
	for bid := range c.Blocks {
		b := &c.Blocks[bid]
		var e1, e2 []int32
		for _, e := range b.E1 {
			if _, ok := keep[0][bid][e]; ok {
				e1 = append(e1, e)
			}
		}
		for _, e := range b.E2 {
			if _, ok := keep[1][bid][e]; ok {
				e2 = append(e2, e)
			}
		}
		if len(e1) > 0 && len(e2) > 0 {
			out.Blocks = append(out.Blocks, blocking.Block{Key: b.Key, E1: e1, E2: e2})
		}
	}
	return out
}
