package cleaning

import (
	"fmt"
	"testing"
	"testing/quick"

	"erfilter/internal/blocking"
	"erfilter/internal/entity"
)

// mkCollection builds a collection with blocks of the given (|E1|,|E2|)
// shapes over synthetic entity ids.
func mkCollection(n1, n2 int, shapes ...[2]int) *blocking.Collection {
	c := &blocking.Collection{N1: n1, N2: n2}
	for i, s := range shapes {
		b := blocking.Block{Key: fmt.Sprintf("k%d", i)}
		for e := 0; e < s[0]; e++ {
			b.E1 = append(b.E1, int32(e%n1))
		}
		for e := 0; e < s[1]; e++ {
			b.E2 = append(b.E2, int32(e%n2))
		}
		c.Blocks = append(c.Blocks, b)
	}
	return c
}

func TestPurgeDropsOversizedBlocks(t *testing.T) {
	// Many small blocks plus one giant stop-word block.
	shapes := make([][2]int, 0, 41)
	for i := 0; i < 40; i++ {
		shapes = append(shapes, [2]int{2, 2})
	}
	shapes = append(shapes, [2]int{100, 100}) // 10,000 comparisons
	c := mkCollection(100, 100, shapes...)
	out := Purge(c)
	if len(out.Blocks) != 40 {
		t.Fatalf("purge kept %d blocks, want 40 (giant block removed)", len(out.Blocks))
	}
	for i := range out.Blocks {
		if out.Blocks[i].Comparisons() > 4 {
			t.Fatalf("oversized block survived: %d comparisons", out.Blocks[i].Comparisons())
		}
	}
}

func TestPurgeKeepsUniformBlocks(t *testing.T) {
	// All blocks equal: nothing should be purged.
	shapes := make([][2]int, 20)
	for i := range shapes {
		shapes[i] = [2]int{3, 3}
	}
	c := mkCollection(10, 10, shapes...)
	out := Purge(c)
	if len(out.Blocks) != 20 {
		t.Fatalf("purge of uniform blocks kept %d, want 20", len(out.Blocks))
	}
}

func TestPurgeEmpty(t *testing.T) {
	c := &blocking.Collection{N1: 5, N2: 5}
	if out := Purge(c); len(out.Blocks) != 0 {
		t.Fatal("purging empty collection should stay empty")
	}
}

// buildRealistic builds blocks from actual strings via Standard Blocking.
func buildRealistic(t *testing.T) *blocking.Collection {
	t.Helper()
	mk := func(texts []string) *entity.View {
		profiles := make([]entity.Profile, len(texts))
		for i, s := range texts {
			profiles[i] = entity.Profile{Attrs: []entity.Attribute{{Name: "v", Value: s}}}
		}
		return entity.NewView(entity.New("d", profiles), entity.SchemaAgnostic, "")
	}
	a := []string{
		"the canon powershot a540 camera",
		"the nikon coolpix p100 camera",
		"the sony cybershot w55 camera",
		"the olympus stylus 710 camera",
	}
	b := []string{
		"canon powershot a540 digital the camera",
		"nikon coolpix p100 digital the camera",
		"sony cybershot w55 digital the camera",
		"olympus stylus 710 digital the camera",
	}
	return blocking.Build(mk(a), mk(b), blocking.Standard{})
}

func TestFilterReducesComparisons(t *testing.T) {
	c := buildRealistic(t)
	before := c.TotalComparisons()
	out := Filter(c, 0.5)
	after := out.TotalComparisons()
	if after >= before {
		t.Fatalf("filtering did not reduce comparisons: %v -> %v", before, after)
	}
}

func TestFilterRatioOneIsIdentity(t *testing.T) {
	c := buildRealistic(t)
	out := Filter(c, 1.0)
	if out.TotalComparisons() != c.TotalComparisons() {
		t.Fatal("r=1 must keep all comparisons")
	}
}

func TestFilterMonotoneInRatio(t *testing.T) {
	c := buildRealistic(t)
	prev := -1.0
	for _, r := range []float64{0.25, 0.5, 0.75, 1.0} {
		cur := Filter(c, r).TotalComparisons()
		if cur < prev {
			t.Fatalf("comparisons not monotone in r: r=%v gives %v < %v", r, cur, prev)
		}
		prev = cur
	}
}

func TestFilterKeepsSmallestBlocks(t *testing.T) {
	// Entity 0 of E1 is in a small and a big block. With r=0.5 it must stay
	// only in the small one.
	c := &blocking.Collection{N1: 1, N2: 3}
	c.Blocks = []blocking.Block{
		{Key: "small", E1: []int32{0}, E2: []int32{0}},
		{Key: "big", E1: []int32{0}, E2: []int32{0, 1, 2}},
	}
	out := Filter(c, 0.5)
	if len(out.Blocks) != 1 || out.Blocks[0].Key != "small" {
		t.Fatalf("filter kept %+v", out.Blocks)
	}
}

func TestFilterZeroRatioEmpties(t *testing.T) {
	c := buildRealistic(t)
	if out := Filter(c, 0); len(out.Blocks) != 0 {
		t.Fatal("r=0 should drop everything")
	}
}

func TestPurgeKeepsSmallestBlocks(t *testing.T) {
	// Property: Block Purging never removes a block from the smallest
	// cardinality level — pairs that only co-occur in minimum-size blocks
	// always survive.
	shapes := [][2]int{{1, 1}, {1, 1}, {2, 2}, {3, 3}, {50, 50}}
	c := mkCollection(60, 60, shapes...)
	out := Purge(c)
	minCard := c.Blocks[0].Comparisons()
	for i := range c.Blocks {
		if x := c.Blocks[i].Comparisons(); x < minCard {
			minCard = x
		}
	}
	kept := map[string]bool{}
	for i := range out.Blocks {
		kept[out.Blocks[i].Key] = true
	}
	for i := range c.Blocks {
		if c.Blocks[i].Comparisons() == minCard && !kept[c.Blocks[i].Key] {
			t.Fatalf("minimum-cardinality block %q purged", c.Blocks[i].Key)
		}
	}
}

func TestPurgeNeverIncreasesComparisons(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 25 {
			sizes = sizes[:25]
		}
		shapes := make([][2]int, 0, len(sizes))
		for _, s := range sizes {
			k := int(s%10) + 1
			shapes = append(shapes, [2]int{k, k})
		}
		c := mkCollection(11, 11, shapes...)
		out := Purge(c)
		return out.TotalComparisons() <= c.TotalComparisons() && len(out.Blocks) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterPreservesNoGhostEntities(t *testing.T) {
	// After filtering, every retained entity placement existed before.
	c := buildRealistic(t)
	out := Filter(c, 0.4)
	before := map[string]map[int32]bool{}
	for i := range c.Blocks {
		m := map[int32]bool{}
		for _, e := range c.Blocks[i].E1 {
			m[e] = true
		}
		for _, e := range c.Blocks[i].E2 {
			m[^e] = true
		}
		before[c.Blocks[i].Key] = m
	}
	for i := range out.Blocks {
		b := &out.Blocks[i]
		for _, e := range b.E1 {
			if !before[b.Key][e] {
				t.Fatalf("ghost E1 entity %d in block %q", e, b.Key)
			}
		}
		for _, e := range b.E2 {
			if !before[b.Key][^e] {
				t.Fatalf("ghost E2 entity %d in block %q", e, b.Key)
			}
		}
	}
}
