// Package repl is the replication control plane over the durable online
// store: WAL-shipping from one leader to read-only followers, a
// file-based leader lease with monotonic fencing terms, and explicit
// (operator- or proxy-driven) failover.
//
// The data plane is deliberately thin — followers mirror the leader's
// log segments byte-for-byte over HTTP (internal/wal.Mirror), so a
// follower's directory is bit-identical to the prefix of the leader's
// it has fetched, and promotion is a file handoff rather than a state
// rebuild. The pieces here are:
//
//   - Lease: the on-disk arbiter naming the current leader and its
//     fencing term. Taking the lease bumps the term; the term is
//     appended into the WAL stream itself (online.Store.SetTerm), so
//     every follower learns reigns from the log and recognizes a
//     deposed leader's stream as stale.
//   - Node: the role state machine (leader / follower / deposed) that
//     fronts the store for the serving layer. It gates writes on
//     leadership (re-checking the lease at a bounded cadence), tracks
//     follower fetch positions for semi-synchronous acks, and reports
//     role-aware readiness: a deposed leader and a lagging follower
//     both fail /v1/readyz while continuing to serve stale reads.
//   - Tailer: the follower's pull loop. It bootstraps from a streamed
//     leader snapshot (anchored at a log rotation boundary), then tails
//     /v1/wal with long-polls, retrying with jittered exponential
//     backoff (internal/retry). A trimmed (410) or diverged (409)
//     position triggers a full re-bootstrap; a response carrying a term
//     below the follower's own is a deposed leader and is refused.
//
// Positions in the log double as epochs: a write acked at position p is
// readable on any replica whose applied position is >= p, which is what
// the serving layer's X-ER-Epoch header and min_epoch request field
// check against.
package repl

import (
	"errors"
	"fmt"
)

// Wire constants of the replication protocol: query parameters and
// headers of GET /v1/wal and GET /v1/snapshot?repl=1. They live here so
// the tailer (client side) and the serving layer (server side) cannot
// drift apart.
const (
	// HeaderTerm carries the sender's fencing term on WAL and snapshot
	// responses; a follower refuses bytes from a term below its own.
	HeaderTerm = "X-ER-Term"
	// HeaderAt is the position at which a WAL response's bytes start
	// (ReadAt may skip a sealed-segment boundary past the requested from).
	HeaderAt = "X-ER-At"
	// HeaderNext is the position to fetch from after applying the body.
	HeaderNext = "X-ER-Next"
	// HeaderEnd is the leader's durable log end at response time — the
	// follower's lag is the distance from its own position to this.
	HeaderEnd = "X-ER-End"
	// HeaderReplPos anchors a bootstrap snapshot: the rotation-boundary
	// position the snapshot's state corresponds to.
	HeaderReplPos = "X-ER-Repl-Pos"
	// HeaderEpoch tags every query and write response with the replica's
	// current log position, the token for read-your-writes.
	HeaderEpoch = "X-ER-Epoch"
	// HeaderRole reports a replica's role on /v1/readyz (also on 503s,
	// so a proxy can find the leader among not-ready replicas).
	HeaderRole = "X-ER-Role"
)

// ErrNotLeader rejects writes and replication reads on a node that is
// not the leader — a follower, or a leader deposed by a higher term.
var ErrNotLeader = errors.New("repl: not the leader")

// ErrStale marks a follower whose replication lag exceeds the
// configured bound; reads still serve, readiness fails.
var ErrStale = errors.New("repl: follower is stale")

// Role is a node's position in the replication topology.
type Role int32

const (
	// RoleLeader accepts writes and serves the WAL to followers.
	RoleLeader Role = iota
	// RoleFollower applies the leader's log and serves stale-ok reads.
	RoleFollower
	// RoleDeposed is an ex-leader fenced by a higher term: read-only,
	// not ready, awaiting operator replacement.
	RoleDeposed
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	case RoleDeposed:
		return "deposed"
	}
	return fmt.Sprintf("role(%d)", int32(r))
}
