package repl

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"

	"erfilter/internal/faultfs"
)

// Lease is the on-disk leader arbiter: one small file in a directory
// shared by the replica set (or by the operators driving failover),
// holding the current fencing term and the owner that took it. It is
// not a consensus protocol — Take is read-increment-write, and two
// concurrent takers can collide — it is the durable record of *orderly*
// failover: promotion bumps the term here first, the new term rides the
// WAL stream, and an ex-leader that re-reads the file (or replays a
// stream carrying a higher term) fences itself.
type Lease struct {
	fs   faultfs.FS
	dir  string
	name string
}

const leaseTempSuffix = ".tmp"

// NewLease addresses the lease file dir/name on fsys (nil selects the
// real OS). The file need not exist yet: an absent lease reads as term
// 0 with no owner.
func NewLease(fsys faultfs.FS, dir, name string) *Lease {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	return &Lease{fs: fsys, dir: dir, name: name}
}

// Read returns the current term and owner; an absent or unparsable
// file is term 0 with no owner (never held), not an error.
func (l *Lease) Read() (term uint64, owner string, err error) {
	fh, err := faultfs.Open(l.fs, filepath.Join(l.dir, l.name))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, "", nil
	}
	if err != nil {
		return 0, "", fmt.Errorf("repl: opening lease: %w", err)
	}
	defer fh.Close()
	data, err := io.ReadAll(fh)
	if err != nil {
		return 0, "", fmt.Errorf("repl: reading lease: %w", err)
	}
	if _, serr := fmt.Sscanf(string(data), "ERLEASE 1\nterm %d\nowner %s\n", &term, &owner); serr != nil {
		return 0, "", nil
	}
	return term, owner, nil
}

// Take claims the lease for owner at the next term and returns it. The
// write is atomic (temp + fsync + rename), so a crash mid-take leaves
// the previous lease intact.
func (l *Lease) Take(owner string) (uint64, error) {
	if owner == "" {
		return 0, errors.New("repl: lease owner must not be empty")
	}
	if err := l.fs.MkdirAll(l.dir); err != nil {
		return 0, fmt.Errorf("repl: creating lease dir: %w", err)
	}
	term, _, err := l.Read()
	if err != nil {
		return 0, err
	}
	term++
	err = faultfs.WriteFileAtomic(l.fs, l.dir, l.name+leaseTempSuffix, l.name, func(w io.Writer) error {
		_, werr := fmt.Fprintf(w, "ERLEASE 1\nterm %d\nowner %s\n", term, owner)
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("repl: writing lease: %w", err)
	}
	return term, nil
}
