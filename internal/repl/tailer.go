package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"erfilter/internal/online"
	"erfilter/internal/retry"
	"erfilter/internal/wal"
)

// maxChunk caps the tailer's adaptive fetch window at the WAL's own
// record bound plus framing, so any single record fits in one fetch.
const maxChunk = (1 << 26) + 64

// TailerOptions tune a follower's pull loop; the zero value is
// production-ready.
type TailerOptions struct {
	// Client issues the HTTP requests (default http.DefaultClient). Give
	// it no overall timeout: WAL fetches long-poll.
	Client *http.Client
	// Chunk is the initial fetch window in bytes (default 1 MiB). The
	// loop doubles it transiently when a record straddles the window.
	Chunk int
	// Wait is the long-poll park a caught-up fetch requests (default 2s).
	Wait time.Duration
	// Retry shapes the backoff between failed rounds (default: full
	// jitter, 50ms base doubling to a 2s cap, no elapsed budget).
	Retry retry.Policy
	// SegmentBytes is the leader's WAL rotation threshold, used only to
	// estimate byte lag across segment boundaries (default 8 MiB).
	SegmentBytes int64
}

func (o TailerOptions) withDefaults() TailerOptions {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Chunk <= 0 {
		o.Chunk = wal.DefaultReadChunk
	}
	if o.Wait <= 0 {
		o.Wait = 2 * time.Second
	}
	if o.Retry.Cap <= 0 {
		o.Retry.Cap = 2 * time.Second
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// Tailer is a follower's replication loop: bootstrap once, then fetch,
// fsync-mirror and apply the leader's log forever, backing off with
// jitter on failure. It exits on Close or when its node stops being a
// follower (promotion).
type Tailer struct {
	n      *Node
	opt    TailerOptions
	chunk  int
	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// StartTailer launches the pull loop for n (a follower node) and
// returns its handle.
func StartTailer(n *Node, opt TailerOptions) *Tailer {
	ctx, cancel := context.WithCancel(context.Background())
	t := &Tailer{n: n, opt: opt.withDefaults(), cancel: cancel, done: make(chan struct{})}
	t.chunk = t.opt.Chunk
	go t.run(ctx)
	return t
}

// Close stops the loop and waits for it to exit.
func (t *Tailer) Close() {
	t.once.Do(t.cancel)
	<-t.done
}

func (t *Tailer) run(ctx context.Context) {
	defer close(t.done)
	b := retry.NewBackoff(t.opt.Retry)
	for ctx.Err() == nil {
		if t.n.Role() != RoleFollower {
			return
		}
		if err := t.step(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			t.n.noteTailError(err)
			if !b.Sleep(ctx) {
				if ctx.Err() != nil {
					return
				}
				b.Reset()
			}
			continue
		}
		b.Reset()
	}
}

// step performs one replication round: bootstrap when unanchored,
// otherwise one WAL fetch-and-apply.
func (t *Tailer) step(ctx context.Context) error {
	up := t.n.Upstream()
	if up == "" {
		return errors.New("repl: no upstream configured (POST /v1/replica-of)")
	}
	fol := t.n.followerStore()
	if fol == nil {
		return errors.New("repl: follower store gone")
	}
	if !fol.Bootstrapped() {
		return t.bootstrap(ctx, up, fol)
	}
	pos, err := fol.Pos()
	if err != nil {
		return err
	}
	q := url.Values{}
	q.Set("from", pos.String())
	q.Set("max", strconv.Itoa(t.chunk))
	q.Set("wait", strconv.FormatInt(t.opt.Wait.Milliseconds(), 10))
	if t.n.opt.ID != "" {
		q.Set("id", t.n.opt.ID)
	}
	resp, err := t.get(ctx, up+"/v1/wal?"+q.Encode())
	if err != nil {
		return err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The leader trimmed past our position: the snapshot has absorbed
		// it. Start over from a fresh bootstrap.
		return t.bootstrap(ctx, up, fol)
	case http.StatusConflict:
		// Our position is beyond the leader's log: we mirrored bytes from
		// a deposed reign the new leader never had. Re-bootstrapping
		// truncates to the last common prefix — the snapshot boundary —
		// by construction.
		return t.bootstrap(ctx, up, fol)
	default:
		return fmt.Errorf("repl: fetching wal from %s: %s", up, resp.Status)
	}
	term, err := headerTerm(resp)
	if err != nil {
		return err
	}
	if local := fol.Term(); term < local {
		return fmt.Errorf("repl: refusing stream from deposed leader %s: term %d < local %d", up, term, local)
	}
	at, err := wal.ParsePosition(resp.Header.Get(HeaderAt))
	if err != nil {
		return fmt.Errorf("repl: bad %s header: %w", HeaderAt, err)
	}
	end, err := wal.ParsePosition(resp.Header.Get(HeaderEnd))
	if err != nil {
		return fmt.Errorf("repl: bad %s header: %w", HeaderEnd, err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: reading wal body: %w", err)
	}
	if len(body) == 0 {
		// Caught up; the long poll elapsed idle.
		t.n.noteTail(t.lag(end, pos))
		return nil
	}
	n, err := fol.Apply(at, body)
	if err != nil {
		return err
	}
	if n == 0 {
		// A record straddles the window; widen it for the next round.
		if t.chunk < maxChunk {
			t.chunk = min(t.chunk*2, maxChunk)
		} else {
			return fmt.Errorf("repl: no complete frame within %d bytes at %s", t.chunk, at)
		}
		return nil
	}
	t.chunk = t.opt.Chunk
	newPos, err := fol.Pos()
	if err != nil {
		return err
	}
	t.n.noteTail(t.lag(end, newPos))
	return nil
}

// bootstrap streams a full snapshot from the leader and anchors the
// follower at its rotation-boundary position.
func (t *Tailer) bootstrap(ctx context.Context, up string, fol *online.FollowerStore) error {
	resp, err := t.get(ctx, up+"/v1/snapshot?repl=1")
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: bootstrap from %s: %s", up, resp.Status)
	}
	term, err := headerTerm(resp)
	if err != nil {
		return err
	}
	if local := fol.Term(); term < local {
		return fmt.Errorf("repl: refusing bootstrap from deposed leader %s: term %d < local %d", up, term, local)
	}
	pos, err := wal.ParsePosition(resp.Header.Get(HeaderReplPos))
	if err != nil {
		return fmt.Errorf("repl: bad %s header: %w", HeaderReplPos, err)
	}
	if err := fol.Bootstrap(pos, term, resp.Body); err != nil {
		return err
	}
	t.n.noteTail(0)
	return nil
}

func (t *Tailer) get(ctx context.Context, u string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	return t.opt.Client.Do(req)
}

// lag estimates how many bytes of log separate a follower position from
// the leader's end. Sealed segment sizes are not known follower-side,
// so cross-segment distance assumes full segments — an overestimate
// that errs toward reporting staleness.
func (t *Tailer) lag(end, pos wal.Position) int64 {
	if !pos.Less(end) {
		return 0
	}
	return int64(end.Seg-pos.Seg)*t.opt.SegmentBytes + (end.Off - pos.Off)
}

func headerTerm(resp *http.Response) (uint64, error) {
	term, err := strconv.ParseUint(resp.Header.Get(HeaderTerm), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: bad %s header: %w", HeaderTerm, err)
	}
	return term, nil
}

// drain discards any unread body so the HTTP connection is reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
