package repl

import (
	"testing"

	"erfilter/internal/faultfs"
)

func TestLeaseAbsentReadsUnheld(t *testing.T) {
	l := NewLease(faultfs.NewMem(), "shared", "leader.lease")
	term, owner, err := l.Read()
	if err != nil {
		t.Fatalf("read absent lease: %v", err)
	}
	if term != 0 || owner != "" {
		t.Fatalf("absent lease = term %d owner %q, want 0 and empty", term, owner)
	}
}

func TestLeaseTakeMonotonic(t *testing.T) {
	m := faultfs.NewMem()
	l := NewLease(m, "shared", "leader.lease")
	if term, err := l.Take("a"); err != nil || term != 1 {
		t.Fatalf("first take = %d, %v; want 1", term, err)
	}
	if term, err := l.Take("b"); err != nil || term != 2 {
		t.Fatalf("second take = %d, %v; want 2", term, err)
	}
	// A fresh handle over the same file sees the latest claim.
	term, owner, err := NewLease(m, "shared", "leader.lease").Read()
	if err != nil {
		t.Fatalf("re-read lease: %v", err)
	}
	if term != 2 || owner != "b" {
		t.Fatalf("lease = term %d owner %q, want 2 %q", term, owner, "b")
	}
}

func TestLeaseTakeRejectsEmptyOwner(t *testing.T) {
	l := NewLease(faultfs.NewMem(), "shared", "leader.lease")
	if _, err := l.Take(""); err == nil {
		t.Fatal("take with empty owner succeeded")
	}
}

func TestLeaseCrashMidTakeKeepsPrevious(t *testing.T) {
	m := faultfs.NewMem()
	l := NewLease(m, "shared", "leader.lease")
	if _, err := l.Take("a"); err != nil {
		t.Fatalf("first take: %v", err)
	}
	// The atomic write syncs before renaming, so a take that dies on the
	// sync must leave the previous claim in place.
	m.FailAllSyncs(true)
	if _, err := l.Take("b"); err == nil {
		t.Fatal("take under sync faults succeeded")
	}
	m.FailAllSyncs(false)
	term, owner, err := l.Read()
	if err != nil {
		t.Fatalf("re-read lease: %v", err)
	}
	if term != 1 || owner != "a" {
		t.Fatalf("lease after failed take = term %d owner %q, want 1 %q", term, owner, "a")
	}
}
