package repl

import (
	"errors"
	"strings"
	"testing"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
	"erfilter/internal/wal"
)

func testConfig() online.Config {
	c3g, _ := text.ParseModel("C3G")
	return online.Config{
		Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 3, Clean: true,
	}
}

func testBatch(vals ...string) [][]entity.Attribute {
	batch := make([][]entity.Attribute, len(vals))
	for i, v := range vals {
		batch[i] = []entity.Attribute{{Name: "text", Value: v}}
	}
	return batch
}

func TestNewLeaderDeposedByForeignLease(t *testing.T) {
	leaseFS := faultfs.NewMem()
	if _, err := NewLease(leaseFS, "shared", "leader.lease").Take("other"); err != nil {
		t.Fatalf("pre-claim lease: %v", err)
	}
	st, err := online.OpenStore("node", testConfig(), online.StoreOptions{FS: faultfs.NewMem()})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	n, err := NewLeader(st, Options{ID: "me", Lease: NewLease(leaseFS, "shared", "leader.lease")})
	if err != nil {
		t.Fatalf("new leader: %v", err)
	}
	defer n.Close()
	if n.Role() != RoleDeposed {
		t.Fatalf("role = %s, want deposed: someone else holds a higher term", n.Role())
	}
	if _, err := n.InsertBatch(testBatch("x")); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("insert on deposed node: %v, want ErrNotLeader", err)
	}
	if ok, err := n.Ready(); ok || !errors.Is(err, ErrNotLeader) {
		t.Fatalf("ready on deposed node = %v, %v; want false with ErrNotLeader", ok, err)
	}
}

func TestLeaderSelfFencesOnLeaseLoss(t *testing.T) {
	leaseFS := faultfs.NewMem()
	st, err := online.OpenStore("node", testConfig(), online.StoreOptions{FS: faultfs.NewMem()})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	n, err := NewLeader(st, Options{
		ID:              "a",
		Lease:           NewLease(leaseFS, "shared", "leader.lease"),
		LeaseCheckEvery: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("new leader: %v", err)
	}
	defer n.Close()
	if _, err := n.InsertBatch(testBatch("alpha")); err != nil {
		t.Fatalf("insert while leading: %v", err)
	}
	if got := n.Term(); got != 1 {
		t.Fatalf("leader term = %d, want 1", got)
	}

	// Another node claims the lease out from under us; the next write
	// re-reads the file and deposes this node in place.
	if _, err := NewLease(leaseFS, "shared", "leader.lease").Take("b"); err != nil {
		t.Fatalf("foreign take: %v", err)
	}
	time.Sleep(time.Millisecond)
	if _, err := n.InsertBatch(testBatch("beta")); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("insert after lease loss: %v, want ErrNotLeader", err)
	}
	if n.Role() != RoleDeposed {
		t.Fatalf("role after lease loss = %s, want deposed", n.Role())
	}
	// Reads keep serving the last-known state.
	if n.Resolver().Len() != 1 {
		t.Fatalf("deposed resolver lost state: %d entities, want 1", n.Resolver().Len())
	}
}

func TestSemiSyncWriteTimesOutWithoutFollowers(t *testing.T) {
	st, err := online.OpenStore("node", testConfig(), online.StoreOptions{FS: faultfs.NewMem()})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	n, err := NewLeader(st, Options{AckReplicas: 1, AckTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("new leader: %v", err)
	}
	defer n.Close()
	_, err = n.InsertBatch(testBatch("lonely"))
	if err == nil || !strings.Contains(err.Error(), "unacknowledged") {
		t.Fatalf("semi-sync write with no followers: %v, want unacknowledged timeout", err)
	}
	// The write is durable regardless: only the ack was withheld.
	if n.Resolver().Len() != 1 {
		t.Fatalf("timed-out write not durable: %d entities, want 1", n.Resolver().Len())
	}
	// A follower fetching past the log end acks everything below it.
	n.ObserveFetch("f1", wal.Position{Seg: 1 << 40})
	if _, err := n.InsertBatch(testBatch("acked")); err != nil {
		t.Fatalf("semi-sync write with an acking follower: %v", err)
	}
}
