package repl

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/metrics"
	"erfilter/internal/online"
	"erfilter/internal/wal"
)

// Options tune a replication node; the zero value is a lease-less
// leader with asynchronous replication.
type Options struct {
	// ID names this node — in acks, the lease file and logs. Use the
	// advertised address.
	ID string
	// Lease is the shared leader arbiter; nil disables lease fencing
	// (terms still ride the WAL, bumped at promotion).
	Lease *Lease
	// AckReplicas > 0 makes writes semi-synchronous: a write returns
	// only after that many distinct followers have fetched past its log
	// position (their next fetch's from= is the durable ack).
	AckReplicas int
	// AckTimeout bounds the semi-sync wait (default 5s). A timed-out
	// write is locally durable but unacknowledged; the client retries.
	AckTimeout time.Duration
	// LeaseCheckEvery is how stale the leader's cached lease view may
	// grow before the write path re-reads the file (default 500ms).
	LeaseCheckEvery time.Duration
	// MaxLag fails a follower's readiness when its tailer has made no
	// upstream progress for this long (default 10s).
	MaxLag time.Duration
	// MaxLagBytes fails a follower's readiness when its estimated byte
	// lag behind the leader exceeds this (default 4 MiB).
	MaxLagBytes int64
}

func (o Options) withDefaults() Options {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 5 * time.Second
	}
	if o.LeaseCheckEvery <= 0 {
		o.LeaseCheckEvery = 500 * time.Millisecond
	}
	if o.MaxLag <= 0 {
		o.MaxLag = 10 * time.Second
	}
	if o.MaxLagBytes <= 0 {
		o.MaxLagBytes = 4 << 20
	}
	return o
}

// Node is one replica's role state machine. It fronts the durable store
// for the serving layer — writes are gated on leadership, reads pass
// through to whichever resolver the role currently owns — and carries
// the replication bookkeeping: follower fetch positions on the leader,
// lag gauges on a follower.
type Node struct {
	opt Options

	mu    sync.Mutex
	role  Role
	store *online.Store         // leader and deposed
	fol   *online.FollowerStore // follower
	empty *online.Resolver      // read surface before the first bootstrap

	upstream atomic.Value // string: the leader URL a follower tails

	lastLease atomic.Int64 // unixnano of the last lease re-read

	ackMu   sync.Mutex
	ackCond *sync.Cond
	acks    map[string]wal.Position

	lagBytes     atomic.Int64
	lastProgress atomic.Int64 // unixnano of the tailer's last good round
	tailErr      atomic.Value // string: last tailer error, for stats

	deposals atomic.Uint64
}

// NewLeader fronts an opened durable store as the leader. With a lease,
// the node first consults it: a lease held by someone else at a term
// above the store's own means this process was deposed while down, and
// it comes up read-only; otherwise the lease is (re)taken and the new
// term appended to the log.
func NewLeader(st *online.Store, opt Options) (*Node, error) {
	n := newNode(opt)
	n.role, n.store = RoleLeader, st
	if l := n.opt.Lease; l != nil {
		term, owner, err := l.Read()
		if err != nil {
			return nil, err
		}
		if owner != "" && owner != n.opt.ID && term > st.Term() {
			n.role = RoleDeposed
			return n, nil
		}
		t, err := l.Take(n.opt.ID)
		if err != nil {
			return nil, err
		}
		if err := st.SetTerm(t); err != nil {
			return nil, err
		}
		n.lastLease.Store(time.Now().UnixNano())
	}
	return n, nil
}

// NewFollower fronts a follower store. The node serves stale-ok reads
// immediately (an empty collection before the first bootstrap) and
// rejects writes; a Tailer keeps it fresh.
func NewFollower(f *online.FollowerStore, opt Options) *Node {
	n := newNode(opt)
	n.role, n.fol = RoleFollower, f
	n.empty = online.NewResolver(online.Config{})
	n.lastProgress.Store(time.Now().UnixNano())
	return n
}

func newNode(opt Options) *Node {
	n := &Node{opt: opt.withDefaults(), acks: map[string]wal.Position{}}
	n.ackCond = sync.NewCond(&n.ackMu)
	n.upstream.Store("")
	n.tailErr.Store("")
	return n
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term returns the node's fencing term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.role {
	case RoleFollower:
		return n.fol.Term()
	default:
		return n.store.Term()
	}
}

// Resolver returns the read surface of the current role: the store's
// resolver on a (possibly deposed) leader, the replica's on a follower,
// or an empty placeholder before the first bootstrap. The instance
// changes on re-bootstrap and promotion; fetch it per call.
func (n *Node) Resolver() *online.Resolver {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleFollower {
		if r := n.fol.Resolver(); r != nil {
			return r
		}
		return n.empty
	}
	return n.store.Resolver()
}

// LogPos is the node's replication epoch: the durable log end on a
// leader, the durably applied position on a follower. A write acked at
// position p is readable on any node whose LogPos is >= p.
func (n *Node) LogPos() wal.Position {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleFollower {
		pos, err := n.fol.Pos()
		if err != nil {
			return wal.Position{}
		}
		return pos
	}
	return n.store.LogPos()
}

// leaderStore returns the store iff this node currently holds
// leadership, re-reading the lease when the cached view is older than
// LeaseCheckEvery. Observing a higher term deposes the node in place.
func (n *Node) leaderStore() (*online.Store, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.role {
	case RoleFollower:
		return nil, fmt.Errorf("%w: this replica follows the leader", ErrNotLeader)
	case RoleDeposed:
		return nil, fmt.Errorf("%w: deposed by a higher term", ErrNotLeader)
	}
	if l := n.opt.Lease; l != nil {
		now := time.Now().UnixNano()
		if now-n.lastLease.Load() > int64(n.opt.LeaseCheckEvery) {
			term, owner, err := l.Read()
			if err == nil && owner != n.opt.ID && term > n.store.Term() {
				n.role = RoleDeposed
				n.deposals.Add(1)
				return nil, fmt.Errorf("%w: lease term %d taken by %s", ErrNotLeader, term, owner)
			}
			// A transient lease read error keeps the cached view: the
			// authoritative fence is the term in the WAL stream.
			n.lastLease.Store(now)
		}
	}
	return n.store, nil
}

// InsertBatch appends the batch through the leader's WAL, then, with
// AckReplicas > 0, waits for that many followers to fetch past it.
func (n *Node) InsertBatch(batch [][]entity.Attribute) ([]int64, error) {
	st, err := n.leaderStore()
	if err != nil {
		return nil, err
	}
	ids, err := st.InsertBatch(batch)
	if err != nil {
		return nil, err
	}
	if err := n.waitAcks(st.LogPos()); err != nil {
		return nil, err
	}
	return ids, nil
}

// Delete tombstones the entity through the leader's WAL, with the same
// semi-sync ack rule as InsertBatch.
func (n *Node) Delete(id int64) (bool, error) {
	st, err := n.leaderStore()
	if err != nil {
		return false, err
	}
	ok, err := st.Delete(id)
	if err != nil || !ok {
		return ok, err
	}
	return true, n.waitAcks(st.LogPos())
}

// ObserveFetch records a follower's durable position: the from= of its
// WAL fetch acknowledges everything below it. Semi-sync writes block on
// these.
func (n *Node) ObserveFetch(id string, pos wal.Position) {
	if id == "" {
		return
	}
	n.ackMu.Lock()
	if old, ok := n.acks[id]; !ok || old.Less(pos) {
		n.acks[id] = pos
		n.ackCond.Broadcast()
	}
	n.ackMu.Unlock()
}

// waitAcks blocks until AckReplicas distinct followers have fetched to
// or past pos, or AckTimeout elapses. The write is locally durable
// either way; a timeout just withholds the ack.
func (n *Node) waitAcks(pos wal.Position) error {
	need := n.opt.AckReplicas
	if need <= 0 {
		return nil
	}
	var fired atomic.Bool
	t := time.AfterFunc(n.opt.AckTimeout, func() {
		fired.Store(true)
		n.ackMu.Lock()
		n.ackCond.Broadcast()
		n.ackMu.Unlock()
	})
	defer t.Stop()
	n.ackMu.Lock()
	defer n.ackMu.Unlock()
	for {
		got := 0
		for _, p := range n.acks {
			if !p.Less(pos) {
				got++
			}
		}
		if got >= need {
			return nil
		}
		if fired.Load() {
			return fmt.Errorf("repl: write durable but unacknowledged: %d/%d follower acks past %s within %s",
				got, need, pos, n.opt.AckTimeout)
		}
		n.ackCond.Wait()
	}
}

// ReadLog serves a raw durable log range to a follower; leader only.
func (n *Node) ReadLog(pos wal.Position, max int) (data []byte, at, next wal.Position, err error) {
	st, err := n.leaderStore()
	if err != nil {
		return nil, wal.Position{}, wal.Position{}, err
	}
	return st.ReadLog(pos, max)
}

// WaitLog long-poll-parks until the leader's log grows past pos.
func (n *Node) WaitLog(pos wal.Position, d time.Duration) bool {
	st, err := n.leaderStore()
	if err != nil {
		return false
	}
	return st.WaitLog(pos, d)
}

// ReplSnapshot begins a follower bootstrap from this leader.
func (n *Node) ReplSnapshot() (pos wal.Position, term uint64, save func(io.Writer) error, err error) {
	st, err := n.leaderStore()
	if err != nil {
		return wal.Position{}, 0, nil, err
	}
	return st.ReplSnapshot()
}

// Promote turns a follower into the leader: the lease is taken (or,
// without one, the local term bumped), the mirrored log becomes the
// appendable WAL, and the new term is durably appended — the fence
// every other replica will observe in-stream. Idempotent on a node that
// already leads; refused on a deposed ex-leader, whose log may have
// diverged past the fence.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.role {
	case RoleLeader:
		return n.store.Term(), nil
	case RoleDeposed:
		return 0, fmt.Errorf("%w: a deposed leader cannot be promoted; wipe its directory and re-follow", ErrNotLeader)
	}
	var term uint64
	if l := n.opt.Lease; l != nil {
		t, err := l.Take(n.opt.ID)
		if err != nil {
			return 0, err
		}
		term = t
	} else {
		term = n.fol.Term() + 1
	}
	st, err := n.fol.Promote(term)
	if err != nil {
		return 0, err
	}
	n.store, n.fol, n.role = st, nil, RoleLeader
	n.upstream.Store("")
	n.lastLease.Store(time.Now().UnixNano())
	return term, nil
}

// SetUpstream points a follower's tailer at a (new) leader URL, the
// /v1/replica-of re-parenting used after failover.
func (n *Node) SetUpstream(u string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RoleFollower {
		return fmt.Errorf("repl: %s does not follow an upstream", n.role)
	}
	n.upstream.Store(u)
	return nil
}

// Upstream returns the leader URL a follower tails ("" when unset or
// not a follower).
func (n *Node) Upstream() string { return n.upstream.Load().(string) }

// followerStore returns the follower state, or nil after promotion.
func (n *Node) followerStore() *online.FollowerStore {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fol
}

// noteTail records a successful tailer round: the estimated byte lag
// behind the leader and the progress timestamp readiness checks.
func (n *Node) noteTail(lag int64) {
	if lag < 0 {
		lag = 0
	}
	n.lagBytes.Store(lag)
	n.lastProgress.Store(time.Now().UnixNano())
	n.tailErr.Store("")
}

// noteTailError records a failed tailer round for stats; progress time
// is left alone, so persistent failure trips the MaxLag readiness bound.
func (n *Node) noteTailError(err error) { n.tailErr.Store(err.Error()) }

// Ready is role-aware readiness: a leader must hold leadership and an
// undegraded store; a follower must be bootstrapped, recently in touch
// with its upstream and within the byte-lag bound; a deposed leader is
// never ready. Reads keep serving in every not-ready state.
func (n *Node) Ready() (bool, error) {
	n.mu.Lock()
	role, st, fol := n.role, n.store, n.fol
	n.mu.Unlock()
	switch role {
	case RoleDeposed:
		return false, fmt.Errorf("%w: deposed by a higher term", ErrNotLeader)
	case RoleFollower:
		if !fol.Bootstrapped() {
			return false, fmt.Errorf("%w: awaiting first bootstrap", ErrStale)
		}
		if silent := time.Duration(time.Now().UnixNano() - n.lastProgress.Load()); silent > n.opt.MaxLag {
			return false, fmt.Errorf("%w: no upstream progress for %s (bound %s)", ErrStale, silent.Round(time.Millisecond), n.opt.MaxLag)
		}
		if lag := n.lagBytes.Load(); lag > n.opt.MaxLagBytes {
			return false, fmt.Errorf("%w: %d bytes behind the leader (bound %d)", ErrStale, lag, n.opt.MaxLagBytes)
		}
		return true, nil
	}
	if _, err := n.leaderStore(); err != nil {
		return false, err
	}
	return st.Ready()
}

// NodeStats summarizes the node for /v1/stats.
type NodeStats struct {
	Role     string `json:"role"`
	Term     uint64 `json:"term"`
	Pos      string `json:"pos"`
	Upstream string `json:"upstream,omitempty"`
	// Followers maps follower ids to their last observed fetch position
	// (leader only).
	Followers map[string]string `json:"followers,omitempty"`
	LagBytes  int64             `json:"lag_bytes,omitempty"`
	TailError string            `json:"tail_error,omitempty"`
	Deposals  uint64            `json:"deposals,omitempty"`
	Store     any               `json:"store"`
}

// Stats summarizes the node and its underlying store.
func (n *Node) Stats() any {
	n.mu.Lock()
	role, st, fol := n.role, n.store, n.fol
	n.mu.Unlock()
	out := NodeStats{Role: role.String(), Term: n.Term(), Pos: n.LogPos().String(), Deposals: n.deposals.Load()}
	if role == RoleFollower {
		out.Upstream = n.Upstream()
		out.LagBytes = n.lagBytes.Load()
		out.TailError = n.tailErr.Load().(string)
		out.Store = fol.Stats()
		return out
	}
	n.ackMu.Lock()
	if len(n.acks) > 0 {
		out.Followers = make(map[string]string, len(n.acks))
		for id, p := range n.acks {
			out.Followers[id] = p.String()
		}
	}
	n.ackMu.Unlock()
	out.Store = st.Stats()
	return out
}

// RegisterMetrics contributes the replication gauges. Store-level WAL
// metrics are registered when the node currently owns a durable store;
// a follower promoted later keeps its node gauges only.
func (n *Node) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("erserve_repl_role", "Replication role: 0 leader, 1 follower, 2 deposed.", nil,
		func() float64 { return float64(n.Role()) })
	reg.GaugeFunc("erserve_repl_term", "Current replication fencing term.", nil,
		func() float64 { return float64(n.Term()) })
	reg.GaugeFunc("erserve_repl_lag_bytes", "Estimated byte lag behind the leader (followers).", nil,
		func() float64 { return float64(n.lagBytes.Load()) })
	reg.GaugeFunc("erserve_repl_seconds_since_progress", "Seconds since the tailer last made progress (followers).", nil,
		func() float64 {
			if n.Role() != RoleFollower {
				return 0
			}
			return time.Duration(time.Now().UnixNano() - n.lastProgress.Load()).Seconds()
		})
	n.mu.Lock()
	st := n.store
	n.mu.Unlock()
	if st != nil {
		st.RegisterMetrics(reg)
	}
}

// Close releases the role's underlying store.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.fol != nil {
		return n.fol.Close()
	}
	if n.store != nil {
		return n.store.Close()
	}
	return nil
}
