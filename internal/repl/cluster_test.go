package repl_test

// End-to-end replication tests: a real leader and followers wired over
// httptest servers, the follower tailers pulling the leader's WAL
// exactly as production does. The failover test is the property the
// subsystem exists for — random workload, leader killed mid-stream,
// a follower promoted — every acked write must survive and every
// replica must converge to byte-identical answers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"erfilter/internal/faultfs"
	"erfilter/internal/online"
	"erfilter/internal/repl"
	"erfilter/internal/retry"
	"erfilter/internal/serve"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func clusterConfig() online.Config {
	c3g, _ := text.ParseModel("C3G")
	return online.Config{
		Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 3, Clean: true,
	}
}

// replicaHarness is one node of a test cluster: its private file
// system, its replication node and the HTTP server fronting it.
type replicaHarness struct {
	m       *faultfs.Mem
	node    *repl.Node
	srv     *httptest.Server
	tail    *repl.Tailer
	stopped bool
}

func (h *replicaHarness) URL() string { return h.srv.URL }

func (h *replicaHarness) stop() {
	if h.stopped {
		return
	}
	h.stopped = true
	if h.tail != nil {
		h.tail.Close()
	}
	h.srv.Close()
	h.node.Close()
}

func serveNode(node *repl.Node) *httptest.Server {
	s := serve.NewServer(serve.WrapReplicated(node), node, serve.Options{
		Replication: node, RequestTimeout: 10 * time.Second,
	})
	return httptest.NewServer(s.Handler())
}

func startLeader(t *testing.T, m *faultfs.Mem, opt repl.Options) *replicaHarness {
	t.Helper()
	st, err := online.OpenStore("node", clusterConfig(), online.StoreOptions{FS: m})
	if err != nil {
		t.Fatalf("open leader store: %v", err)
	}
	node, err := repl.NewLeader(st, opt)
	if err != nil {
		t.Fatalf("new leader: %v", err)
	}
	h := &replicaHarness{m: m, node: node, srv: serveNode(node)}
	t.Cleanup(h.stop)
	return h
}

// fastTail shortens the long poll and backoff so tests converge in
// milliseconds instead of the production-friendly seconds.
func fastTail() repl.TailerOptions {
	return repl.TailerOptions{
		Wait:  100 * time.Millisecond,
		Retry: retry.Policy{Base: 2 * time.Millisecond, Cap: 25 * time.Millisecond},
	}
}

func startFollower(t *testing.T, m *faultfs.Mem, id, upstream string, opt repl.Options) *replicaHarness {
	t.Helper()
	opt.ID = id
	fol, err := online.OpenFollower("node", online.StoreOptions{FS: m})
	if err != nil {
		t.Fatalf("open follower store: %v", err)
	}
	node := repl.NewFollower(fol, opt)
	if upstream != "" {
		if err := node.SetUpstream(upstream); err != nil {
			t.Fatalf("set upstream: %v", err)
		}
	}
	h := &replicaHarness{m: m, node: node, srv: serveNode(node)}
	h.tail = repl.StartTailer(node, fastTail())
	t.Cleanup(h.stop)
	return h
}

func doJSON(t *testing.T, method, url string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader = http.NoBody
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, resp.Header
}

type errBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func insertEntities(t *testing.T, base string, texts ...string) ([]int64, http.Header) {
	t.Helper()
	ents := make([]map[string]string, len(texts))
	for i, v := range texts {
		ents[i] = map[string]string{"text": v}
	}
	var out struct {
		IDs []int64 `json:"ids"`
	}
	code, h := doJSON(t, http.MethodPost, base+"/v1/entities", map[string]any{"entities": ents}, &out)
	if code != http.StatusOK {
		t.Fatalf("insert on %s: status %d", base, code)
	}
	if len(out.IDs) != len(texts) {
		t.Fatalf("insert returned %d ids for %d entities", len(out.IDs), len(texts))
	}
	return out.IDs, h
}

// queryCandidates runs one query and returns the status plus the
// candidate list re-marshalled to canonical JSON, so two replicas'
// answers can be compared byte for byte.
func queryCandidates(t *testing.T, base, q, minEpoch string) (int, string) {
	t.Helper()
	body := map[string]any{"text": q, "k": 3}
	if minEpoch != "" {
		body["min_epoch"] = minEpoch
	}
	var out map[string]any
	code, _ := doJSON(t, http.MethodPost, base+"/v1/query", body, &out)
	b, err := json.Marshal(out["candidates"])
	if err != nil {
		t.Fatal(err)
	}
	return code, string(b)
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitConverged(t *testing.T, leader, f *replicaHarness) {
	t.Helper()
	waitFor(t, 10*time.Second, "follower to converge with the leader", func() bool {
		return f.node.LogPos() == leader.node.LogPos()
	})
}

func TestReplFollowersServeLeaderWritesAndEpochs(t *testing.T) {
	leader := startLeader(t, faultfs.NewMem(), repl.Options{ID: "leader"})
	f1 := startFollower(t, faultfs.NewMem(), "f1", leader.URL(), repl.Options{})
	f2 := startFollower(t, faultfs.NewMem(), "f2", leader.URL(), repl.Options{})

	corpus := []string{
		"Atelier Logic Inc", "Atelier Logik Incorporated",
		"Quantum Paper Co", "Quanta Papers Company",
		"Nordic Fjord Trading", "Nordik Fiord Traders",
	}
	var ids []int64
	var lastEpoch string
	for i, v := range corpus {
		got, h := insertEntities(t, leader.URL(), v, fmt.Sprintf("%s branch %d", v, i))
		ids = append(ids, got...)
		lastEpoch = h.Get(repl.HeaderEpoch)
	}
	if lastEpoch == "" {
		t.Fatal("insert response missing the epoch header")
	}
	if code, _ := doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/entities/%d", leader.URL(), ids[0]), nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}

	waitConverged(t, leader, f1)
	waitConverged(t, leader, f2)

	// Converged followers answer queries byte-identically to the leader,
	// and satisfy the client's read-your-writes epoch bound.
	for _, probe := range []string{"Atelier Logic", "Quantum Papers", "Nordic Trading"} {
		_, want := queryCandidates(t, leader.URL(), probe, "")
		for i, f := range []*replicaHarness{f1, f2} {
			code, got := queryCandidates(t, f.URL(), probe, lastEpoch)
			if code != http.StatusOK {
				t.Fatalf("follower %d query %q: status %d", i+1, probe, code)
			}
			if got != want {
				t.Errorf("follower %d diverges on %q:\n  got  %s\n  want %s", i+1, probe, got, want)
			}
		}
	}

	// The replicated delete took effect; its neighbor survived.
	if code, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/entities/%d", f1.URL(), ids[0]), nil, nil); code != http.StatusNotFound {
		t.Errorf("deleted entity still resident on follower: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/entities/%d", f1.URL(), ids[1]), nil, nil); code != http.StatusOK {
		t.Errorf("live entity missing on follower: status %d", code)
	}

	// An epoch the follower has not reached answers 412, not stale data.
	var eb errBody
	code, _ := doJSON(t, http.MethodPost, f1.URL()+"/v1/query",
		map[string]any{"text": "x", "k": 1, "min_epoch": "9999.0"}, &eb)
	if code != http.StatusPreconditionFailed || eb.Error.Code != serve.CodeStaleEpoch {
		t.Errorf("future min_epoch = %d %q, want 412 %q", code, eb.Error.Code, serve.CodeStaleEpoch)
	}

	// Roles ride readyz; followers refuse writes with a routable error.
	if _, h := doJSON(t, http.MethodGet, f1.URL()+"/v1/readyz", nil, nil); h.Get(repl.HeaderRole) != "follower" {
		t.Errorf("follower readyz role header = %q, want follower", h.Get(repl.HeaderRole))
	}
	if _, h := doJSON(t, http.MethodGet, leader.URL()+"/v1/readyz", nil, nil); h.Get(repl.HeaderRole) != "leader" {
		t.Errorf("leader readyz role header = %q, want leader", h.Get(repl.HeaderRole))
	}
	var web errBody
	if code, _ := doJSON(t, http.MethodPost, f1.URL()+"/v1/entities", map[string]any{"text": "nope"}, &web); code != http.StatusServiceUnavailable || web.Error.Code != serve.CodeNotLeader {
		t.Errorf("write on follower = %d %q, want 503 %q", code, web.Error.Code, serve.CodeNotLeader)
	}
}

// TestReplFailoverCrashPreservesAckedWrites is the subsystem's core
// property: under a random workload with semi-sync acks, crashing the
// leader and promoting the most advanced follower loses no acked write,
// the survivors converge to byte-identical answers, and the crashed
// ex-leader comes back fenced.
func TestReplFailoverCrashPreservesAckedWrites(t *testing.T) {
	leaseFS := faultfs.NewMem()
	lease := func() *repl.Lease { return repl.NewLease(leaseFS, "shared", "leader.lease") }

	a := startLeader(t, faultfs.NewMem(), repl.Options{
		ID: "a", Lease: lease(), AckReplicas: 1, AckTimeout: 10 * time.Second,
	})
	b := startFollower(t, faultfs.NewMem(), "b", a.URL(), repl.Options{Lease: lease()})
	c := startFollower(t, faultfs.NewMem(), "c", a.URL(), repl.Options{Lease: lease()})

	rng := rand.New(rand.NewSource(7))
	oracle := map[int64]string{} // acked live entities: id -> text
	deleted := map[int64]bool{}  // acked tombstones
	seq := 0
	writeRound := func(base string) {
		t.Helper()
		if rng.Float64() < 0.8 || len(oracle) == 0 {
			n := 1 + rng.Intn(3)
			texts := make([]string, n)
			for i := range texts {
				seq++
				texts[i] = fmt.Sprintf("Entity Corp %d variant %d", seq, rng.Intn(100))
			}
			ids, _ := insertEntities(t, base, texts...)
			for i, id := range ids {
				oracle[id] = texts[i]
			}
		} else {
			var pick int64
			k := rng.Intn(len(oracle))
			for id := range oracle {
				if k == 0 {
					pick = id
					break
				}
				k--
			}
			if code, _ := doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/entities/%d", base, pick), nil, nil); code != http.StatusOK {
				t.Fatalf("delete %d: status %d", pick, code)
			}
			delete(oracle, pick)
			deleted[pick] = true
		}
	}
	for range 30 {
		writeRound(a.URL())
	}

	// Kill the leader: power loss, no goodbye. Every write above was
	// acked by at least one follower before it returned.
	a.srv.Close()
	a.m.Crash()
	a.stop()

	// Promote whichever follower saw more of the log; the other one is
	// re-parented under it.
	newLeader, other := b, c
	if newLeader.node.LogPos().Less(other.node.LogPos()) {
		newLeader, other = other, newLeader
	}
	var promo struct {
		Role string `json:"role"`
		Term uint64 `json:"term"`
	}
	if code, _ := doJSON(t, http.MethodPost, newLeader.URL()+"/v1/failover", nil, &promo); code != http.StatusOK {
		t.Fatalf("failover: status %d", code)
	}
	if promo.Role != "leader" || promo.Term < 2 {
		t.Fatalf("promotion = role %q term %d, want leader at term >= 2", promo.Role, promo.Term)
	}
	if code, _ := doJSON(t, http.MethodPost, other.URL()+"/v1/replica-of",
		map[string]string{"upstream": newLeader.URL()}, nil); code != http.StatusOK {
		t.Fatalf("replica-of: status %d", code)
	}

	// Every acked write survives the failover; every acked delete holds.
	for id, want := range oracle {
		var got struct {
			Attrs []struct {
				Name  string `json:"name"`
				Value string `json:"value"`
			} `json:"attrs"`
		}
		code, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/entities/%d", newLeader.URL(), id), nil, &got)
		if code != http.StatusOK {
			t.Fatalf("acked entity %d lost in failover: status %d", id, code)
		}
		if len(got.Attrs) != 1 || got.Attrs[0].Value != want {
			t.Errorf("entity %d = %+v, want value %q", id, got.Attrs, want)
		}
	}
	for id := range deleted {
		if code, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/entities/%d", newLeader.URL(), id), nil, nil); code != http.StatusNotFound {
			t.Errorf("acked delete %d resurrected by failover: status %d", id, code)
		}
	}

	// The new leader takes writes; the surviving follower converges to
	// byte-identical answers.
	for range 10 {
		writeRound(newLeader.URL())
	}
	waitConverged(t, newLeader, other)
	for _, probe := range []string{"Entity Corp 3", "Entity Corp 12 variant", "Entity Corp 40"} {
		_, want := queryCandidates(t, newLeader.URL(), probe, "")
		if _, got := queryCandidates(t, other.URL(), probe, ""); got != want {
			t.Errorf("post-failover divergence on %q:\n  got  %s\n  want %s", probe, got, want)
		}
	}

	// The crashed ex-leader restarts: only its synced prefix survived.
	// Consulting the lease, it learns it was deposed and comes up
	// read-only; its writes are refused with a routable error.
	a.m.Restart(nil)
	st, err := online.OpenStore("node", clusterConfig(), online.StoreOptions{FS: a.m})
	if err != nil {
		t.Fatalf("reopen ex-leader store: %v", err)
	}
	defer st.Close()
	revenant, err := repl.NewLeader(st, repl.Options{ID: "a", Lease: lease()})
	if err != nil {
		t.Fatalf("restart ex-leader: %v", err)
	}
	if revenant.Role() != repl.RoleDeposed {
		t.Fatalf("ex-leader restarted as %s, want deposed", revenant.Role())
	}
	rsrv := serveNode(revenant)
	defer rsrv.Close()
	var eb errBody
	if code, _ := doJSON(t, http.MethodPost, rsrv.URL+"/v1/entities", map[string]any{"text": "zombie write"}, &eb); code != http.StatusServiceUnavailable || eb.Error.Code != serve.CodeNotLeader {
		t.Fatalf("deposed write = %d %q, want 503 %q", code, eb.Error.Code, serve.CodeNotLeader)
	}

	// Even a lease-blind restart cannot feed the survivors: its stream
	// carries term 1 and the followers are fenced at term >= 2.
	zombie, err := repl.NewLeader(st, repl.Options{ID: "a-zombie"})
	if err != nil {
		t.Fatalf("lease-blind restart: %v", err)
	}
	if zombie.Term() != 1 {
		t.Fatalf("replayed ex-leader term = %d, want 1", zombie.Term())
	}
	zsrv := serveNode(zombie)
	defer zsrv.Close()
	before := other.node.LogPos()
	if code, _ := doJSON(t, http.MethodPost, other.URL()+"/v1/replica-of",
		map[string]string{"upstream": zsrv.URL}, nil); code != http.StatusOK {
		t.Fatalf("replica-of zombie: status %d", code)
	}
	waitFor(t, 5*time.Second, "the follower to refuse the deposed leader's stream", func() bool {
		ns, ok := other.node.Stats().(repl.NodeStats)
		return ok && strings.Contains(ns.TailError, "deposed")
	})
	if pos := other.node.LogPos(); pos != before {
		t.Fatalf("follower advanced on a deposed leader's stream: %s -> %s", before, pos)
	}

	// Re-parented under the real leader, it picks right back up.
	if code, _ := doJSON(t, http.MethodPost, other.URL()+"/v1/replica-of",
		map[string]string{"upstream": newLeader.URL()}, nil); code != http.StatusOK {
		t.Fatalf("re-parent back: status %d", code)
	}
	writeRound(newLeader.URL())
	waitConverged(t, newLeader, other)
}

func TestReplFollowerCrashRestartResumesTailing(t *testing.T) {
	leader := startLeader(t, faultfs.NewMem(), repl.Options{ID: "leader"})
	fm := faultfs.NewMem()
	f := startFollower(t, fm, "f", leader.URL(), repl.Options{})

	for i := range 25 {
		insertEntities(t, leader.URL(), fmt.Sprintf("Crashproof Industries %d", i))
	}
	waitConverged(t, leader, f)

	// Power-cycle the follower; whatever it had not fsynced is gone.
	f.stop()
	fm.Crash()
	fm.Restart(nil)

	for i := 25; i < 35; i++ {
		insertEntities(t, leader.URL(), fmt.Sprintf("Crashproof Industries %d", i))
	}

	f2 := startFollower(t, fm, "f", leader.URL(), repl.Options{})
	waitConverged(t, leader, f2)
	if got, want := f2.node.Resolver().Len(), leader.node.Resolver().Len(); got != want {
		t.Errorf("restarted follower holds %d entities, leader %d", got, want)
	}
	_, want := queryCandidates(t, leader.URL(), "Crashproof Industries", "")
	if _, got := queryCandidates(t, f2.URL(), "Crashproof Industries", ""); got != want {
		t.Errorf("restarted follower diverges:\n  got  %s\n  want %s", got, want)
	}
}

func TestReplProxyRoutesWritesAndFailsOver(t *testing.T) {
	leader := startLeader(t, faultfs.NewMem(), repl.Options{ID: "p-leader"})
	f := startFollower(t, faultfs.NewMem(), "p-f", leader.URL(), repl.Options{})

	proxy, err := serve.NewProxy([]string{leader.URL(), f.URL()}, serve.ProxyOptions{
		ProbeEvery: 25 * time.Millisecond, EjectAfter: 2,
	})
	if err != nil {
		t.Fatalf("new proxy: %v", err)
	}
	t.Cleanup(proxy.Close)
	psrv := httptest.NewServer(proxy.Handler())
	t.Cleanup(psrv.Close)

	// Writes route to the leader even when sent to the proxy.
	ids, _ := insertEntities(t, psrv.URL, "Proxy Metals AG", "Proxy Metals Aktiengesellschaft")
	if leader.node.Resolver().Len() != 2 {
		t.Fatalf("proxied write missed the leader: %d entities", leader.node.Resolver().Len())
	}
	waitConverged(t, leader, f)

	// Reads fan out across the rotation and keep answering.
	for i := range 6 {
		if code, cands := queryCandidates(t, psrv.URL, "Proxy Metals", ""); code != http.StatusOK || cands == "null" {
			t.Fatalf("proxied read %d: status %d candidates %s", i, code, cands)
		}
	}
	for range 4 {
		if code, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/entities/%d", psrv.URL, ids[0]), nil, nil); code != http.StatusOK {
			t.Fatalf("proxied get: status %d", code)
		}
	}
	var stats struct {
		Leader string `json:"leader"`
	}
	if code, _ := doJSON(t, http.MethodGet, psrv.URL+"/v1/stats", nil, &stats); code != http.StatusOK || stats.Leader != leader.URL() {
		t.Fatalf("proxy stats = %d leader %q, want 200 %q", code, stats.Leader, leader.URL())
	}

	// The leader dies; after an explicit failover the proxy discovers
	// the new leader on its next probe round, no reconfiguration.
	leader.srv.Close()
	leader.m.Crash()
	leader.stop()
	if code, _ := doJSON(t, http.MethodPost, f.URL()+"/v1/failover", nil, nil); code != http.StatusOK {
		t.Fatalf("failover: status %d", code)
	}
	waitFor(t, 5*time.Second, "the proxy to discover the new leader", func() bool {
		var st struct {
			Leader string `json:"leader"`
		}
		doJSON(t, http.MethodGet, psrv.URL+"/v1/stats", nil, &st)
		return st.Leader == f.URL()
	})
	if ids2, _ := insertEntities(t, psrv.URL, "Post Failover Corp"); len(ids2) != 1 {
		t.Fatalf("post-failover proxied write returned %d ids", len(ids2))
	}
	if code, _ := queryCandidates(t, psrv.URL, "Post Failover", ""); code != http.StatusOK {
		t.Fatalf("post-failover proxied read: status %d", code)
	}
}
