package bench

import (
	"fmt"
	"io"
	"time"

	"erfilter/internal/entity"
)

// familyOf maps every Table VII method to its family.
func familyOf(method string) string {
	switch method {
	case "SBW", "QBW", "EQBW", "SABW", "ESABW":
		return "blocking"
	case "PBW", "DBW", "DkNN", "DDB":
		return "baseline"
	case "eps-Join", "kNNJ":
		return "sparse"
	case "MH-LSH", "CP-LSH", "HP-LSH", "FAISS", "SCANN", "DeepBlocker":
		return "dense"
	}
	return "other"
}

// tunedOf maps each baseline to its fine-tuned counterpart.
var tunedOf = map[string]string{
	"PBW": "SBW", "DBW": "QBW", "DkNN": "kNNJ", "DDB": "DeepBlocker",
}

// Conclusions checks the paper's six conclusions against the measured
// report and prints one verdict per conclusion. It is the quantitative
// backbone of EXPERIMENTS.md.
func Conclusions(w io.Writer, r *Report) {
	fmt.Fprintln(w, "Paper conclusions vs this run")
	fmt.Fprintln(w, "=============================")

	// 1. Fine-tuning vs default parameters.
	{
		wins, total := 0, 0
		var ratioSum float64
		for _, c := range r.Cells {
			for base, tuned := range tunedOf {
				b, t := c.Results[base], c.Results[tuned]
				if b == nil || t == nil || !t.Satisfied {
					continue
				}
				total++
				if t.Metrics.PQ >= b.Metrics.PQ {
					wins++
				}
				if b.Metrics.PQ > 0 {
					ratioSum += t.Metrics.PQ / b.Metrics.PQ
				}
			}
		}
		verdict(w, 1, "fine-tuned methods beat their default baselines on PQ",
			total > 0 && wins*3 >= total*2,
			fmt.Sprintf("tuned >= baseline in %d/%d comparisons, mean PQ ratio %.1fx", wins, total, ratioSum/float64(max(1, total))))
	}

	// 2. SBW and kNN-Join lead precision.
	{
		leaders := map[string]int{}
		cells := 0
		for _, c := range r.Cells {
			best, bestPQ := "", -1.0
			for m, mr := range c.Results {
				if familyOf(m) == "baseline" || !mr.Satisfied {
					continue
				}
				if mr.Metrics.PQ > bestPQ {
					best, bestPQ = m, mr.Metrics.PQ
				}
			}
			if best != "" {
				leaders[best]++
				cells++
			}
		}
		lead := leaders["SBW"] + leaders["QBW"] + leaders["kNNJ"] + leaders["eps-Join"]
		verdict(w, 2, "blocking workflows and sparse cardinality joins lead precision",
			cells > 0 && lead*2 >= cells,
			fmt.Sprintf("per-cell PQ winners: %v", leaders))
	}

	// 3. Cardinality thresholds beat similarity thresholds on |C|.
	{
		simCand, cardCand := 0.0, 0.0
		n := 0
		for _, c := range r.Cells {
			sim := minCandidates(c, "MH-LSH", "CP-LSH", "HP-LSH", "eps-Join")
			card := minCandidates(c, "kNNJ", "FAISS", "SCANN")
			if sim < 0 || card < 0 {
				continue
			}
			simCand += sim
			cardCand += card
			n++
		}
		verdict(w, 3, "cardinality-threshold methods need fewer candidates than similarity-threshold ones",
			n > 0 && cardCand < simCand,
			fmt.Sprintf("total |C| over %d cells: similarity %.0f vs cardinality %.0f", n, simCand, cardCand))
	}

	// 4. Syntactic representations beat semantic ones.
	{
		wins, total := 0, 0
		for _, c := range r.Cells {
			syn := bestPQOf(c, "SBW", "QBW", "EQBW", "SABW", "ESABW", "eps-Join", "kNNJ", "MH-LSH")
			sem := bestPQOf(c, "CP-LSH", "HP-LSH", "FAISS", "SCANN", "DeepBlocker")
			if syn < 0 || sem < 0 {
				continue
			}
			total++
			if syn >= sem {
				wins++
			}
		}
		verdict(w, 4, "syntactic representations beat semantic (embedding) ones",
			total > 0 && wins*3 >= total*2,
			fmt.Sprintf("syntactic wins %d/%d cells", wins, total))
	}

	// 5. Schema-based settings lose recall robustness.
	{
		agnFails, basFails := 0, 0
		agnCells, basCells := 0, 0
		for _, c := range r.Cells {
			for m, mr := range c.Results {
				if familyOf(m) == "baseline" {
					continue
				}
				if c.Setting == entity.SchemaAgnostic {
					agnCells++
					if !mr.Satisfied {
						agnFails++
					}
				} else {
					basCells++
					if !mr.Satisfied {
						basFails++
					}
				}
			}
		}
		frac := func(f, n int) float64 {
			if n == 0 {
				return 0
			}
			return float64(f) / float64(n)
		}
		verdict(w, 5, "schema-agnostic settings are more robust in recall",
			frac(agnFails, agnCells) <= frac(basFails, basCells)+1e-9,
			fmt.Sprintf("target-recall failures: agnostic %d/%d, schema-based %d/%d (plus the D5-D7/D10 coverage exclusions)",
				agnFails, agnCells, basFails, basCells))
	}

	// 6. Blocking fastest, DeepBlocker slowest.
	{
		blockFaster, dbSlowest, cells := 0, 0, 0
		for _, c := range r.Cells {
			bt := familyMinTime(c, "SBW", "QBW", "EQBW", "SABW", "ESABW", "PBW")
			nn := familyMinTime(c, "eps-Join", "kNNJ", "MH-LSH", "CP-LSH", "HP-LSH", "FAISS", "SCANN")
			db := c.Results["DeepBlocker"]
			if bt <= 0 || nn <= 0 || db == nil || db.Timing.Total <= 0 {
				continue
			}
			cells++
			if bt <= nn {
				blockFaster++
			}
			slowest := true
			for m, mr := range c.Results {
				if m == "DeepBlocker" || m == "DDB" || mr.Timing.Total == 0 {
					continue
				}
				if mr.Timing.Total > db.Timing.Total {
					slowest = false
					break
				}
			}
			if slowest {
				dbSlowest++
			}
		}
		verdict(w, 6, "blocking workflows are fastest and DeepBlocker is slowest",
			cells > 0 && blockFaster*3 >= cells*2 && dbSlowest*2 >= cells,
			fmt.Sprintf("blocking fastest in %d/%d cells; DeepBlocker slowest in %d/%d", blockFaster, cells, dbSlowest, cells))
	}
}

func verdict(w io.Writer, n int, claim string, holds bool, evidence string) {
	mark := "REPRODUCED"
	if !holds {
		mark = "NOT REPRODUCED"
	}
	fmt.Fprintf(w, "%d. %s: %s\n   evidence: %s\n", n, claim, mark, evidence)
}

// minCandidates returns the smallest satisfied candidate count among the
// methods, or -1 when none qualifies.
func minCandidates(c *Cell, methods ...string) float64 {
	best := -1.0
	for _, m := range methods {
		mr := c.Results[m]
		if mr == nil || !mr.Satisfied || mr.Metrics.Candidates == 0 {
			continue
		}
		v := float64(mr.Metrics.Candidates)
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}

// bestPQOf returns the best satisfied PQ among the methods, or -1.
func bestPQOf(c *Cell, methods ...string) float64 {
	best := -1.0
	for _, m := range methods {
		mr := c.Results[m]
		if mr == nil || !mr.Satisfied {
			continue
		}
		if mr.Metrics.PQ > best {
			best = mr.Metrics.PQ
		}
	}
	return best
}

// familyMinTime returns the fastest total run-time among the methods.
func familyMinTime(c *Cell, methods ...string) time.Duration {
	var best time.Duration = -1
	for _, m := range methods {
		mr := c.Results[m]
		if mr == nil || mr.Timing.Total <= 0 {
			continue
		}
		if best < 0 || mr.Timing.Total < best {
			best = mr.Timing.Total
		}
	}
	return best
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
