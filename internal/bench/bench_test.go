package bench

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"erfilter/internal/datagen"
	"erfilter/internal/entity"
)

// tinyOptions keeps the full pipeline fast enough for unit tests.
func tinyOptions() Options {
	return Options{
		Scale:       0.012,
		Datasets:    []string{"D2"},
		Seed:        3,
		Repetitions: 1,
		EmbedDim:    48,
		AEHidden:    16,
		AEEpochs:    2,
	}
}

func TestRunAllMethodsOneDataset(t *testing.T) {
	rep, err := Run(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 { // D2 has both schema settings
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		for _, m := range MethodNames {
			mr := c.Results[m]
			if mr == nil {
				t.Errorf("%s: method %s missing", c.Key(), m)
				continue
			}
			if mr.Metrics.Candidates == 0 && mr.Metrics.PC > 0 {
				t.Errorf("%s/%s: inconsistent metrics %+v", c.Key(), m, mr.Metrics)
			}
		}
		// Shape check: every fine-tuned method reaches the target on the
		// schema-agnostic setting of this clean product dataset.
		if c.Setting == entity.SchemaAgnostic {
			for _, m := range []string{"SBW", "QBW", "eps-Join", "kNNJ", "FAISS"} {
				if !c.Results[m].Satisfied {
					t.Errorf("%s/%s did not reach target PC (%.3f)", c.Key(), m, c.Results[m].Metrics.PC)
				}
			}
		}
	}
}

func TestTableRenderers(t *testing.T) {
	rep, err := Run(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	TableVII(&buf, rep)
	out := buf.String()
	for _, want := range []string{"Table VII(a)", "Table VII(b)", "Table VII(c)", "SBW", "kNNJ", "DeepBlocker", "Da2", "Db2"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableVII output missing %q", want)
		}
	}
	buf.Reset()
	TableVIII(&buf, rep)
	TableIX(&buf, rep)
	TableX(&buf, rep)
	out = buf.String()
	for _, want := range []string{"Table VIII", "Table IX", "Table X", "BFr", "RM=", "K="} {
		if !strings.Contains(out, want) {
			t.Errorf("config tables missing %q", want)
		}
	}
	buf.Reset()
	TableXI(&buf, rep)
	if !strings.Contains(buf.String(), "Table XI") {
		t.Error("TableXI header missing")
	}
	buf.Reset()
	Fig7(&buf, rep)
	out = buf.String()
	if !strings.Contains(out, "preprocess") || !strings.Contains(out, "build") {
		t.Errorf("Fig7 breakdown missing phases:\n%s", out)
	}
	buf.Reset()
	Reduction(&buf, rep)
	if !strings.Contains(buf.String(), "eps-Join") {
		t.Error("Reduction table missing eps-Join")
	}
}

func TestTableVIAndFig3(t *testing.T) {
	var buf bytes.Buffer
	TableVI(&buf, 0.012)
	out := buf.String()
	for _, want := range []string{"D1", "D10", "best attribute", "title"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableVI missing %q", want)
		}
	}
	buf.Reset()
	Fig3(&buf, 0.012)
	out = buf.String()
	if !strings.Contains(out, "coverage") || !strings.Contains(out, "vocab") {
		t.Errorf("Fig3 output incomplete:\n%s", out)
	}
}

func TestRankFigure(t *testing.T) {
	task := datagen.ByName("D2", 0.02)
	var buf bytes.Buffer
	RankFigure(&buf, task, entity.SchemaAgnostic, false, 48)
	out := buf.String()
	if !strings.Contains(out, "syntactic") || !strings.Contains(out, "semantic") {
		t.Fatalf("rank figure incomplete:\n%s", out)
	}
	// The syntactic histogram must concentrate mass at rank 0 (paper's
	// core observation in Figures 4-6).
	if !strings.Contains(out, "#") {
		t.Fatal("histogram bars missing")
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int]int{-1: len(rankBuckets) - 1, 0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9, 100000: 9}
	for rank, want := range cases {
		if got := bucketOf(rank); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", rank, got, want)
		}
	}
}

func TestMethodFiltering(t *testing.T) {
	opts := tinyOptions()
	opts.Methods = []string{"SBW", "kNNJ"}
	opts.Datasets = []string{"D1"}
	rep, err := Run(opts, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if len(c.Results) != 2 {
			t.Fatalf("expected 2 methods, got %d", len(c.Results))
		}
	}
}

func TestAblation(t *testing.T) {
	task := datagen.ByName("D2", 0.05)
	var buf bytes.Buffer
	Ablation(&buf, task)
	out := buf.String()
	for _, want := range []string{
		"1. Contribution", "2. Block Purging", "3. Block Filtering",
		"4. Meta-blocking weighting", "5. Meta-blocking pruning",
		"6. kNN-Join representation", "7. Stop-word",
		"8. Sorted Neighborhood", "9. FAISS index types", "10. Holistic vs step-by-step",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestConclusions(t *testing.T) {
	rep, err := Run(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Conclusions(&buf, rep)
	out := buf.String()
	for i := 1; i <= 6; i++ {
		if !strings.Contains(out, fmt.Sprintf("%d. ", i)) {
			t.Errorf("conclusion %d missing", i)
		}
	}
	if !strings.Contains(out, "REPRODUCED") {
		t.Error("no verdicts printed")
	}
}

func TestWriteJSON(t *testing.T) {
	opts := tinyOptions()
	opts.Methods = []string{"SBW", "kNNJ", "FAISS"}
	rep, err := Run(opts, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cells, ok := parsed["cells"].([]interface{})
	if !ok || len(cells) == 0 {
		t.Fatalf("no cells in JSON: %v", parsed)
	}
	first := cells[0].(map[string]interface{})
	methods := first["methods"].([]interface{})
	if len(methods) != 3 {
		t.Fatalf("methods = %d", len(methods))
	}
	m0 := methods[0].(map[string]interface{})
	for _, key := range []string{"method", "pc", "pq", "candidates", "rt_ms"} {
		if _, ok := m0[key]; !ok {
			t.Errorf("JSON method missing key %q", key)
		}
	}
}
