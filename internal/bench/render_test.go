package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFmtPQ(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.500",
		0.001:   "0.001",
		0.0003:  "3.0e-04",
		2.7e-05: "2.7e-05",
	}
	for in, want := range cases {
		if got := fmtPQ(in); got != want {
			t.Errorf("fmtPQ(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtPC(t *testing.T) {
	if got := fmtPC(0.95, true); got != "0.950" {
		t.Errorf("fmtPC satisfied = %q", got)
	}
	if got := fmtPC(0.85, false); got != "0.850!" {
		t.Errorf("fmtPC unsatisfied = %q", got)
	}
}

func TestFmtRT(t *testing.T) {
	if got := fmtRT(2500 * time.Microsecond); got != "2.5ms" {
		t.Errorf("fmtRT ms = %q", got)
	}
	if got := fmtRT(3200 * time.Millisecond); got != "3.2s" {
		t.Errorf("fmtRT s = %q", got)
	}
}

func TestFmtCount(t *testing.T) {
	if got := fmtCount(999); got != "999" {
		t.Errorf("small count = %q", got)
	}
	if got := fmtCount(2_500_000); got != "2.5e+06" {
		t.Errorf("large count = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := newTable("a", "bbbb")
	tb.add("xxxxxx", "y")
	var buf bytes.Buffer
	tb.write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
	// Separator row uses dashes matching column widths.
	if !strings.HasPrefix(lines[1], "------") {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestHistogramRendering(t *testing.T) {
	var buf bytes.Buffer
	histogram(&buf, "title", []string{"0", "1"}, []int{10, 5})
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "#") {
		t.Fatalf("histogram output:\n%s", out)
	}
	// The larger bucket gets the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if got := pct(250*time.Millisecond, time.Second); got != "25.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(time.Second, 0); got != "0%" {
		t.Errorf("pct zero total = %q", got)
	}
}
