package bench

import (
	"encoding/json"
	"io"
	"time"
)

// jsonReport is the machine-readable form of a Report, for downstream
// plotting and regression tracking (the "Continuous Benchmark" spirit of
// the paper's released artifact).
type jsonReport struct {
	Scale     float64    `json:"scale"`
	FullGrids bool       `json:"full_grids"`
	Target    float64    `json:"target_pc"`
	Cells     []jsonCell `json:"cells"`
}

type jsonCell struct {
	Dataset string       `json:"dataset"`
	Setting string       `json:"setting"`
	N1      int          `json:"e1"`
	N2      int          `json:"e2"`
	Dups    int          `json:"duplicates"`
	Methods []jsonMethod `json:"methods"`
}

type jsonMethod struct {
	Method     string             `json:"method"`
	PC         float64            `json:"pc"`
	PQ         float64            `json:"pq"`
	Candidates int                `json:"candidates"`
	Satisfied  bool               `json:"satisfied"`
	RTMillis   float64            `json:"rt_ms"`
	Phases     map[string]float64 `json:"phases_ms,omitempty"`
	Config     map[string]string  `json:"config,omitempty"`
}

// WriteJSON serializes the report.
func WriteJSON(w io.Writer, r *Report) error {
	out := jsonReport{
		Scale:     r.Options.Scale,
		FullGrids: r.Options.FullGrids,
		Target:    r.Options.Target,
	}
	for _, c := range r.Cells {
		jc := jsonCell{
			Dataset: c.Dataset,
			Setting: c.Setting.String(),
			N1:      c.Task.E1.Len(),
			N2:      c.Task.E2.Len(),
			Dups:    c.Task.Truth.Size(),
		}
		for _, name := range MethodNames {
			mr := c.Results[name]
			if mr == nil {
				continue
			}
			jm := jsonMethod{
				Method:     mr.Method,
				PC:         mr.Metrics.PC,
				PQ:         mr.Metrics.PQ,
				Candidates: mr.Metrics.Candidates,
				Satisfied:  mr.Satisfied,
				RTMillis:   ms(mr.Timing.Total),
				Config:     mr.Config,
			}
			phases := map[string]float64{}
			for _, p := range []struct {
				name string
				d    time.Duration
			}{
				{"build", mr.Timing.Build}, {"purge", mr.Timing.Purge},
				{"filter", mr.Timing.Filter}, {"clean", mr.Timing.Clean},
				{"preprocess", mr.Timing.Preprocess}, {"index", mr.Timing.Index},
				{"query", mr.Timing.Query},
			} {
				if p.d > 0 {
					phases[p.name] = ms(p.d)
				}
			}
			if len(phases) > 0 {
				jm.Phases = phases
			}
			jc.Methods = append(jc.Methods, jm)
		}
		out.Cells = append(out.Cells, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a report previously written by WriteJSON into its
// machine-readable form (used by tests and external tooling; the full
// Report with live tasks is not reconstructed).
func ReadJSON(r io.Reader) (map[string]interface{}, error) {
	var out map[string]interface{}
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
