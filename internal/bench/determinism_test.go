package bench

import (
	"bytes"
	"reflect"
	"regexp"
	"testing"
)

// rtPattern matches wall-clock runtimes in progress lines; runtimes are
// the one legitimately nondeterministic part of the output.
var rtPattern = regexp.MustCompile(`rt=\S+`)

// TestRunDeterministicAcrossWorkerCounts is the determinism satellite: a
// small bench.Run (one dataset, two methods, hence two schema-setting
// cells) executed on the sequential path and on a 4-worker pool must
// produce byte-identical timing-free reports, identical per-cell
// configurations and metrics, and — after masking wall-clock runtimes —
// byte-identical progress logs.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	runAt := func(workers int) (*Report, string) {
		opts := tinyOptions()
		opts.Methods = []string{"SBW", "kNNJ"}
		opts.Workers = workers
		var log bytes.Buffer
		rep, err := Run(opts, &log)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep, log.String()
	}

	seqRep, seqLog := runAt(1)
	parRep, parLog := runAt(4)

	// Progress logs agree byte for byte once runtimes are masked: the
	// sequencer must release the buffered cell logs in canonical order.
	mask := func(s string) string { return rtPattern.ReplaceAllString(s, "rt=X") }
	if mask(seqLog) != mask(parLog) {
		t.Errorf("progress logs diverged\n--- workers=1 ---\n%s--- workers=4 ---\n%s", mask(seqLog), mask(parLog))
	}

	// Cell structure and every tuned outcome agree exactly.
	if len(seqRep.Cells) != len(parRep.Cells) {
		t.Fatalf("cell count %d != %d", len(seqRep.Cells), len(parRep.Cells))
	}
	for i, sc := range seqRep.Cells {
		pc := parRep.Cells[i]
		if sc.Key() != pc.Key() {
			t.Fatalf("cell %d: %s != %s (canonical order broken)", i, sc.Key(), pc.Key())
		}
		for name, sr := range sc.Results {
			pr := pc.Results[name]
			if pr == nil {
				t.Errorf("%s/%s missing from parallel run", pc.Key(), name)
				continue
			}
			if !reflect.DeepEqual(sr.Config, pr.Config) {
				t.Errorf("%s/%s config diverged\n  workers=1: %v\n  workers=4: %v", sc.Key(), name, sr.Config, pr.Config)
			}
			if sr.Metrics != pr.Metrics {
				t.Errorf("%s/%s metrics diverged\n  workers=1: %+v\n  workers=4: %+v", sc.Key(), name, sr.Metrics, pr.Metrics)
			}
			if sr.Satisfied != pr.Satisfied {
				t.Errorf("%s/%s satisfied %v != %v", sc.Key(), name, sr.Satisfied, pr.Satisfied)
			}
		}
	}

	// The timing-free tables render byte-identically. (Table VII and
	// Figure 7 embed runtimes, so they are compared via the masked logs
	// and the metrics above instead.)
	renderers := map[string]func(*Report) string{
		"TableVIII": func(r *Report) string { var b bytes.Buffer; TableVIII(&b, r); return b.String() },
		"TableIX":   func(r *Report) string { var b bytes.Buffer; TableIX(&b, r); return b.String() },
		"TableX":    func(r *Report) string { var b bytes.Buffer; TableX(&b, r); return b.String() },
		"TableXI":   func(r *Report) string { var b bytes.Buffer; TableXI(&b, r); return b.String() },
	}
	for name, render := range renderers {
		if s, p := render(seqRep), render(parRep); s != p {
			t.Errorf("%s diverged\n--- workers=1 ---\n%s--- workers=4 ---\n%s", name, s, p)
		}
	}
}
