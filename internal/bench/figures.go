package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
	"erfilter/internal/vector"
)

// Fig3 prints the best-attribute coverage (a) and the vocabulary size /
// character length of both schema settings, raw and cleaned (b, c).
func Fig3(w io.Writer, scale float64) {
	ta := newTable("dataset", "coverage", "groundtruth coverage", "distinctiveness")
	tb := newTable("dataset", "vocab agn", "vocab agn+cl", "vocab based", "vocab based+cl",
		"chars agn", "chars agn+cl", "chars based", "chars based+cl")
	for _, spec := range datagen.Specs(scale) {
		task := datagen.Generate(spec)
		stats := entity.StatsFor(task, task.BestAttribute)
		ta.add(spec.Name, fmt.Sprintf("%.2f", stats.Coverage),
			fmt.Sprintf("%.2f", stats.GroundtruthCoverage),
			fmt.Sprintf("%.2f", stats.Distinctiveness))

		row := []string{spec.Name}
		var vocabCols, charCols []string
		for _, setting := range []entity.SchemaSetting{entity.SchemaAgnostic, entity.SchemaBased} {
			v1, v2 := entity.TaskViews(task, setting)
			raw := entity.TextStatsOf(v1, v2)
			cl1 := v1.WithTexts(text.CleanAll(v1.Texts()))
			cl2 := v2.WithTexts(text.CleanAll(v2.Texts()))
			cleaned := entity.TextStatsOf(cl1, cl2)
			vocabCols = append(vocabCols, fmt.Sprintf("%d", raw.VocabularySize), fmt.Sprintf("%d", cleaned.VocabularySize))
			charCols = append(charCols, fmt.Sprintf("%d", raw.CharacterLength), fmt.Sprintf("%d", cleaned.CharacterLength))
		}
		row = append(row, vocabCols...)
		row = append(row, charCols...)
		tb.add(row...)
	}
	fmt.Fprintln(w, "Figure 3(a): best-attribute coverage per dataset")
	ta.write(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 3(b,c): vocabulary size and character length per schema setting (raw / cleaned)")
	tb.write(w)
}

// rankBuckets are the log-spaced ranking-position buckets of the
// Figure 4–6 histograms. "miss" counts duplicates the representation
// cannot retrieve at all (zero similarity / not indexed).
var rankBuckets = []string{"0", "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128-255", ">=256", "miss"}

func bucketOf(rank int) int {
	if rank < 0 {
		return len(rankBuckets) - 1
	}
	switch {
	case rank == 0:
		return 0
	case rank == 1:
		return 1
	}
	b := 2
	for lo := 2; b < len(rankBuckets)-2; b++ {
		lo *= 2
		if rank < lo {
			return b
		}
	}
	return len(rankBuckets) - 2
}

// syntacticRanks computes, for every duplicate pair, the ranking position
// of the match among the query's candidates under the DkNN representation
// (cleaned values, C5GM multiset five-grams, cosine similarity), which the
// appendix uses as the syntactic representative.
func syntacticRanks(in *core.Input, reverse bool) []int {
	t1, t2 := in.Texts(true)
	model := text.Model{N: 5, Multiset: true}
	corpus := sparse.BuildCorpus(t1, t2, model)
	indexSets, querySets := corpus.Sets1, corpus.Sets2
	if reverse {
		indexSets, querySets = corpus.Sets2, corpus.Sets1
	}
	idx := sparse.NewIndex(indexSets, corpus.NumTokens)

	var out []int
	for _, p := range in.Task.Truth.Pairs() {
		qi, target := int(p.Right), p.Left
		if reverse {
			qi, target = int(p.Left), p.Right
		}
		q := querySets[qi]
		qs := len(q)
		matchSim := -1.0
		better := 0
		idx.Overlaps(q, func(e int32, overlap int) {
			sim := sparse.Cosine.Sim(overlap, qs, idx.Size(e))
			if e == target {
				matchSim = sim
			}
		})
		if matchSim <= 0 {
			out = append(out, -1)
			continue
		}
		idx.Overlaps(q, func(e int32, overlap int) {
			sim := sparse.Cosine.Sim(overlap, qs, idx.Size(e))
			if sim > matchSim || (sim == matchSim && e < target) {
				better++
			}
		})
		out = append(out, better)
	}
	return out
}

// semanticRanks computes the match ranking positions under the semantic
// representation: tuple embeddings with Euclidean distance, brute-force.
func semanticRanks(in *core.Input, reverse bool) []int {
	v1, v2 := in.Embeddings(true)
	indexed, queries := v1, v2
	if reverse {
		indexed, queries = v2, v1
	}
	var out []int
	for _, p := range in.Task.Truth.Pairs() {
		qi, target := int(p.Right), p.Left
		if reverse {
			qi, target = int(p.Left), p.Right
		}
		q := queries[qi]
		matchDist := vector.L2Sq(q, indexed[target])
		rank := 0
		for e, v := range indexed {
			if int32(e) == target {
				continue
			}
			d := vector.L2Sq(q, v)
			if d < matchDist || (d == matchDist && int32(e) < target) {
				rank++
			}
		}
		out = append(out, rank)
	}
	return out
}

// RankFigure prints the Figure 4/5/6 histograms for one dataset: the
// distribution of duplicate ranking positions under the syntactic vs the
// semantic representation.
func RankFigure(w io.Writer, task *entity.Task, setting entity.SchemaSetting, reverse bool, embedDim int) {
	in := core.NewInputDim(task, setting, embedDim)
	direction := "indexing E1, querying E2"
	if reverse {
		direction = "indexing E2, querying E1"
	}
	fmt.Fprintf(w, "%s (%s, %s)\n", task.Name, setting, direction)

	for _, repr := range []struct {
		name  string
		ranks []int
	}{
		{"syntactic (C5GM cosine)", syntacticRanks(in, reverse)},
		{"semantic (embeddings, L2)", semanticRanks(in, reverse)},
	} {
		counts := make([]int, len(rankBuckets))
		for _, r := range repr.ranks {
			counts[bucketOf(r)]++
		}
		histogram(w, "  "+repr.name, rankBuckets, counts)
	}
	fmt.Fprintln(w)
}

// Fig7 prints the run-time breakdown of every method in the report:
// block building / purging / filtering / comparison cleaning for the
// blocking workflows, preprocessing / indexing / querying for NN methods —
// the content of Figures 7, 8 and 9 (which differ only in dataset and
// schema setting coverage).
func Fig7(w io.Writer, r *Report) {
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%s run-time breakdown:\n", c.Key())
		t := newTable("method", "total", "phase breakdown")
		names := make([]string, 0, len(c.Results))
		for m := range c.Results {
			names = append(names, m)
		}
		sort.Slice(names, func(i, j int) bool { return methodOrder(names[i]) < methodOrder(names[j]) })
		for _, m := range names {
			mr := c.Results[m]
			tt := mr.Timing
			if tt.Total == 0 {
				continue
			}
			var detail string
			if tt.Build+tt.Purge+tt.Filter+tt.Clean > 0 {
				detail = fmt.Sprintf("build %s | purge %s | filter %s | clean %s",
					pct(tt.Build, tt.Total), pct(tt.Purge, tt.Total), pct(tt.Filter, tt.Total), pct(tt.Clean, tt.Total))
			} else {
				detail = fmt.Sprintf("preprocess %s | index %s | query %s",
					pct(tt.Preprocess, tt.Total), pct(tt.Index, tt.Total), pct(tt.Query, tt.Total))
			}
			t.add(m, fmtRT(tt.Total), detail)
		}
		t.write(w)
		fmt.Fprintln(w)
	}
}

func pct(part, total time.Duration) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func methodOrder(name string) int {
	for i, m := range MethodNames {
		if m == name {
			return i
		}
	}
	return len(MethodNames)
}

// Reduction prints the average candidate-pair reduction of the
// similarity-threshold methods versus the brute-force Cartesian product
// (Conclusion 3 of the paper).
func Reduction(w io.Writer, r *Report) {
	methods := []string{"MH-LSH", "CP-LSH", "HP-LSH", "eps-Join", "kNNJ", "FAISS"}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, c := range r.Cells {
		bf := c.Task.CartesianProduct()
		for _, m := range methods {
			mr := c.Results[m]
			if mr == nil || mr.Metrics.Candidates == 0 {
				continue
			}
			sums[m] += 1 - float64(mr.Metrics.Candidates)/bf
			counts[m]++
		}
	}
	t := newTable("method", "avg candidate reduction vs brute force")
	for _, m := range methods {
		if counts[m] == 0 {
			continue
		}
		t.add(m, fmt.Sprintf("%.1f%%", 100*sums[m]/float64(counts[m])))
	}
	fmt.Fprintln(w, "Candidate reduction vs brute force (Conclusion 3)")
	t.write(w)
}
