package bench

import (
	"fmt"
	"io"
	"time"

	"erfilter/internal/blocking"
	"erfilter/internal/cleaning"
	"erfilter/internal/core"
	"erfilter/internal/entity"
	"erfilter/internal/knn"
	"erfilter/internal/metablocking"
	"erfilter/internal/metrics"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
	"erfilter/internal/tuning"
)

// Ablation prints the design-choice studies called out in DESIGN.md: the
// contribution of every blocking-workflow step, the weighting-scheme and
// pruning-algorithm axes of Meta-blocking, set vs multiset token models,
// the effect of cleaning, and the excluded Sorted Neighborhood baseline.
func Ablation(w io.Writer, task *entity.Task) {
	in := core.NewInput(task, entity.SchemaAgnostic)
	truth := task.Truth
	fmt.Fprintf(w, "Ablation studies on %s (|E1|=%d |E2|=%d dup=%d)\n\n",
		task.Name, task.E1.Len(), task.E2.Len(), truth.Size())

	// 1. Blocking workflow steps: raw blocks -> +purging -> +filtering ->
	// +meta-blocking.
	{
		t := newTable("pipeline", "PC", "PQ", "|C|")
		raw := blocking.Build(in.V1, in.V2, blocking.Standard{})
		steps := []struct {
			name   string
			blocks *blocking.Collection
		}{
			{"standard blocking only", raw},
			{"+ block purging", cleaning.Purge(raw)},
			{"+ block filtering r=0.5", cleaning.Filter(cleaning.Purge(raw), 0.5)},
		}
		for _, s := range steps {
			m := core.Evaluate(metablocking.Propagate(s.blocks), truth)
			t.add(s.name, fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates))
		}
		g := metablocking.BuildGraph(steps[2].blocks)
		pruned := metablocking.Prune(g, metablocking.ARCS, metablocking.RCNP, steps[2].blocks.TotalPlacements())
		m := core.Evaluate(pruned, truth)
		t.add("+ meta-blocking (ARCS+RCNP)", fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates))
		fmt.Fprintln(w, "1. Contribution of each blocking-workflow step:")
		t.write(w)
		fmt.Fprintln(w)
	}

	// 2. Block Purging smooth factor.
	{
		t := newTable("smooth factor", "PC", "PQ", "|C|", "blocks kept")
		raw := blocking.Build(in.V1, in.V2, blocking.Standard{})
		for _, sf := range []float64{1.005, 1.025, 1.1, 1.5, 3.0} {
			purged := cleaning.PurgeSmooth(raw, sf)
			m := core.Evaluate(metablocking.Propagate(purged), truth)
			t.add(fmt.Sprintf("%.3f", sf), fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ),
				fmtCount(m.Candidates), fmt.Sprintf("%d/%d", len(purged.Blocks), len(raw.Blocks)))
		}
		fmt.Fprintln(w, "2. Block Purging smooth factor (default 1.025):")
		t.write(w)
		fmt.Fprintln(w)
	}

	// 3. Block Filtering ratio sweep.
	{
		t := newTable("ratio r", "PC", "PQ", "|C|")
		base := cleaning.Purge(blocking.Build(in.V1, in.V2, blocking.Standard{}))
		for _, r := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
			m := core.Evaluate(metablocking.Propagate(cleaning.Filter(base, r)), truth)
			t.add(fmt.Sprintf("%.1f", r), fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates))
		}
		fmt.Fprintln(w, "3. Block Filtering ratio (precision/recall trade-off):")
		t.write(w)
		fmt.Fprintln(w)
	}

	// 4. Weighting schemes at fixed pruning (RCNP).
	{
		t := newTable("scheme", "PC", "PQ", "|C|")
		blocks := cleaning.Purge(blocking.Build(in.V1, in.V2, blocking.Standard{}))
		g := metablocking.BuildGraph(blocks)
		for _, s := range metablocking.Schemes() {
			m := core.Evaluate(metablocking.Prune(g, s, metablocking.RCNP, blocks.TotalPlacements()), truth)
			t.add(s.String(), fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates))
		}
		fmt.Fprintln(w, "4. Meta-blocking weighting schemes (pruning fixed to RCNP):")
		t.write(w)
		fmt.Fprintln(w)
	}

	// 5. Pruning algorithms at fixed scheme (ARCS).
	{
		t := newTable("algorithm", "PC", "PQ", "|C|")
		blocks := cleaning.Purge(blocking.Build(in.V1, in.V2, blocking.Standard{}))
		g := metablocking.BuildGraph(blocks)
		for _, a := range metablocking.Algorithms() {
			m := core.Evaluate(metablocking.Prune(g, metablocking.ARCS, a, blocks.TotalPlacements()), truth)
			t.add(a.String(), fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates))
		}
		fmt.Fprintln(w, "5. Meta-blocking pruning algorithms (weighting fixed to ARCS):")
		t.write(w)
		fmt.Fprintln(w)
	}

	// 6. Set vs multiset representation models for kNN-Join.
	{
		t := newTable("model", "PC", "PQ", "|C|")
		for _, name := range []string{"T1G", "T1GM", "C3G", "C3GM", "C5G", "C5GM"} {
			model, _ := text.ParseModel(name)
			f := &core.KNNJoinFilter{Clean: true, Model: model, Measure: sparse.Cosine, K: 2}
			out, err := f.Run(in)
			if err != nil {
				continue
			}
			m := core.Evaluate(out.Pairs, truth)
			t.add(name, fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates))
		}
		fmt.Fprintln(w, "6. kNN-Join representation models, set vs multiset (cosine, K=2):")
		t.write(w)
		fmt.Fprintln(w)
	}

	// 7. Cleaning (stop-words + stemming) on/off for kNN-Join.
	{
		t := newTable("cleaning", "PC", "PQ", "|C|", "RT")
		for _, clean := range []bool{false, true} {
			f := &core.KNNJoinFilter{Clean: clean, Model: text.Model{N: 3}, Measure: sparse.Cosine, K: 2}
			out, err := f.Run(in.Fresh())
			if err != nil {
				continue
			}
			m := core.Evaluate(out.Pairs, truth)
			t.add(fmtYesNo(clean), fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates), fmtRT(out.Timing.Total))
		}
		fmt.Fprintln(w, "7. Stop-word removal + stemming for kNN-Join (C3G cosine, K=2):")
		t.write(w)
		fmt.Fprintln(w)
	}

	// 8. Sorted Neighborhood vs the Standard Blocking workflow (why the
	// paper excludes it).
	{
		t := newTable("method", "PC", "PQ", "|C|")
		for _, ws := range []int{5, 10, 25} {
			sn := blocking.SortedNeighborhood{WindowSize: ws}
			m := core.Evaluate(sn.Candidates(in.V1, in.V2), truth)
			t.add(fmt.Sprintf("sorted neighborhood w=%d", ws),
				fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates))
		}
		out, err := core.NewPBW().Run(in)
		if err == nil {
			m := core.Evaluate(out.Pairs, truth)
			t.add("standard blocking workflow (PBW)", fmt.Sprintf("%.3f", m.PC), fmtPQ(m.PQ), fmtCount(m.Candidates))
		}
		fmt.Fprintln(w, "8. Sorted Neighborhood vs blocking workflow (the excluded method):")
		t.write(w)
		fmt.Fprintln(w)
	}

	// 9. FAISS index types (Flat vs IVF vs HNSW).
	ablationIndexes(w, in, truth)

	// 10. Holistic vs step-by-step tuning (the paper's Section II claim
	// that simultaneous fine-tuning of all workflow steps beats the prior
	// per-step optimization).
	{
		t := newTable("tuning strategy", "PC", "PQ", "|C|", "configs examined")
		space := tuning.BlockingSpaces(false)[0] // SBW
		for _, s := range []struct {
			name string
			r    *tuning.Result
		}{
			{"step-by-step", tuning.TuneBlockingStepwise(in, space, tuning.DefaultTarget)},
			{"holistic", tuning.TuneBlocking(in, space, tuning.DefaultTarget)},
		} {
			t.add(s.name, fmt.Sprintf("%.3f", s.r.Metrics.PC), fmtPQ(s.r.Metrics.PQ),
				fmtCount(s.r.Metrics.Candidates), fmt.Sprintf("%d", s.r.Evaluated))
		}
		fmt.Fprintln(w, "10. Holistic vs step-by-step configuration optimization (SBW):")
		t.write(w)
		fmt.Fprintln(w)
	}
}

// ablationIndexes compares the FAISS index types the paper experimented
// with — exhaustive Flat, cell-probing (IVF, our Partitioned BF) and the
// HNSW graph — reproducing the finding that the approximate variants do
// not outperform Flat under Problem 1 while Flat stays competitive in
// run-time at these scales. Per-query latencies go through the same
// log-bucketed histogram the serving daemon uses, so the reported
// p50/p95/p99 are comparable with a live /metrics scrape.
func ablationIndexes(w io.Writer, in *core.Input, truth *entity.GroundTruth) {
	v1, v2 := in.Embeddings(true)
	if len(v1) == 0 || len(v2) == 0 {
		return
	}
	const k = 3
	run := func(name string, build func() knn.Searcher) {
		start := time.Now()
		idx := build()
		buildTime := time.Since(start)
		var hist metrics.Histogram
		var pairs []entity.Pair
		for qi, q := range v2 {
			qStart := time.Now()
			res := idx.Search(q, k)
			hist.ObserveDuration(time.Since(qStart))
			for _, r := range res {
				pairs = append(pairs, entity.Pair{Left: r.ID, Right: int32(qi)})
			}
		}
		snap := hist.Snapshot()
		m := core.Evaluate(pairs, truth)
		fmt.Fprintf(w, "  %-22s PC=%.3f PQ=%s |C|=%s build=%s query=%s p50=%s p99=%s\n",
			name, m.PC, fmtPQ(m.PQ), fmtCount(m.Candidates), fmtRT(buildTime),
			fmtRT(time.Duration(snap.Sum)),
			fmtRT(time.Duration(snap.Quantile(0.50))), fmtRT(time.Duration(snap.Quantile(0.99))))
	}
	fmt.Fprintln(w, "9. FAISS index types at K=3 (why the paper keeps only Flat):")
	run("flat (exhaustive)", func() knn.Searcher { return knn.NewFlat(v1, knn.L2Squared) })
	run("ivf (cell probing)", func() knn.Searcher {
		return knn.NewPartitioned(v1, knn.PartitionedConfig{Metric: knn.L2Squared, Scoring: knn.BruteForce, Seed: 1})
	})
	run("hnsw (graph)", func() knn.Searcher {
		return knn.NewHNSW(v1, knn.HNSW{Metric: knn.L2Squared, Seed: 1})
	})
	fmt.Fprintln(w)
}

func fmtYesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
