// Package bench drives the paper's experiments: it tunes every filtering
// method on every dataset analog under Problem 1 and renders the tables
// (VI–XI) and figures (3–9) of the evaluation section as text reports.
package bench

import (
	"bytes"
	"fmt"
	"io"

	"erfilter/internal/core"
	"erfilter/internal/datagen"
	"erfilter/internal/entity"
	"erfilter/internal/parallel"
	"erfilter/internal/tuning"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full size).
	Scale float64
	// FullGrids enables the complete Table III–V configuration grids
	// instead of the reduced laptop-scale ones.
	FullGrids bool
	// Target is the Problem-1 recall threshold τ (default 0.9).
	Target float64
	// Datasets restricts the run ("D1".."D10"); empty = all.
	Datasets []string
	// Methods restricts the run to the named methods; empty = all.
	Methods []string
	// Seed drives all stochastic components.
	Seed uint64
	// Repetitions for stochastic methods (0 = space default).
	Repetitions int
	// EmbedDim overrides the embedding dimensionality (0 = 300).
	EmbedDim int
	// AEHidden/AEEpochs bound the DeepBlocker autoencoder for the
	// laptop-scale runs (0 = package defaults).
	AEHidden, AEEpochs int
	// Workers bounds the worker pool of the run: dataset×setting cells
	// and the configuration grids inside each tuner fan out onto at most
	// this many goroutines per pool. 0 selects runtime.NumCPU(); 1 forces
	// the legacy sequential path. Reports are byte-identical at any
	// worker count for the same Seed.
	Workers int
}

// WithDefaults fills unset options.
func (o Options) WithDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.Target <= 0 {
		o.Target = tuning.DefaultTarget
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.EmbedDim <= 0 {
		o.EmbedDim = 96
	}
	if o.AEHidden <= 0 {
		o.AEHidden = 48
	}
	if o.AEEpochs <= 0 {
		o.AEEpochs = 5
	}
	return o
}

// MethodNames lists every method of Table VII in presentation order.
var MethodNames = []string{
	"SBW", "QBW", "EQBW", "SABW", "ESABW", "PBW", "DBW",
	"eps-Join", "kNNJ", "DkNN",
	"MH-LSH", "CP-LSH", "HP-LSH", "FAISS", "SCANN", "DeepBlocker", "DDB",
}

// MethodResult is the per-cell outcome: the tuned (or baseline)
// configuration, its effectiveness and its phase timings on a fresh run.
type MethodResult struct {
	Method    string
	Config    map[string]string
	Metrics   core.Metrics
	Timing    core.Timing
	Satisfied bool
	Err       error
}

// Cell is one (dataset, schema setting) combination.
type Cell struct {
	Dataset string
	Setting entity.SchemaSetting
	Task    *entity.Task
	Results map[string]*MethodResult
}

// Key renders the paper's cell label, e.g. "Da4" or "Db4".
func (c *Cell) Key() string {
	tag := "a"
	if c.Setting == entity.SchemaBased {
		tag = "b"
	}
	return "D" + tag + c.Dataset[1:]
}

// Report is the outcome of a full experiment run.
type Report struct {
	Options Options
	Cells   []*Cell
}

// wantMethod reports whether the method participates in the run.
func (o Options) wantMethod(name string) bool {
	if len(o.Methods) == 0 {
		return true
	}
	for _, m := range o.Methods {
		if m == name {
			return true
		}
	}
	return false
}

// wantDataset reports whether the dataset participates in the run.
func (o Options) wantDataset(name string) bool {
	if len(o.Datasets) == 0 {
		return true
	}
	for _, d := range o.Datasets {
		if d == name {
			return true
		}
	}
	return false
}

// Run executes tuning and measurement for every requested cell. Progress
// lines go to log (pass io.Discard to silence).
//
// Cells are dispatched onto opts.Workers goroutines (0 = NumCPU, 1 =
// sequential). Each concurrent cell buffers its progress lines and a
// sequencer releases the buffers in canonical cell order, so the log
// stream — like the report — is byte-identical at any worker count.
func Run(opts Options, log io.Writer) (*Report, error) {
	opts = opts.WithDefaults()
	rep := &Report{Options: opts}

	// Plan the cells up front: dataset generation is cheap and sharing
	// one task between the two schema settings of a dataset mirrors the
	// sequential run.
	type plan struct {
		dataset string
		setting entity.SchemaSetting
		task    *entity.Task
	}
	var plans []plan
	for _, spec := range datagen.Specs(opts.Scale) {
		if !opts.wantDataset(spec.Name) {
			continue
		}
		task := datagen.Generate(spec)
		settings := []entity.SchemaSetting{entity.SchemaAgnostic}
		if datagen.SchemaBasedDatasets[spec.Name] {
			settings = append(settings, entity.SchemaBased)
		}
		for _, setting := range settings {
			plans = append(plans, plan{dataset: spec.Name, setting: setting, task: task})
		}
	}

	workers := parallel.Workers(opts.Workers)
	cells := make([]*Cell, len(plans))
	seq := parallel.NewSequencer(log)
	err := parallel.ForEach(workers, len(plans), func(i int) error {
		p := plans[i]
		cell := &Cell{Dataset: p.dataset, Setting: p.setting, Task: p.task, Results: map[string]*MethodResult{}}

		// Sequential runs stream their progress lines directly; parallel
		// runs buffer per cell and release through the sequencer.
		var w io.Writer = log
		var buf *bytes.Buffer
		if workers > 1 {
			buf = &bytes.Buffer{}
			w = buf
		}
		fmt.Fprintf(w, "== %s (%s) |E1|=%d |E2|=%d dup=%d\n",
			cell.Key(), p.setting, p.task.E1.Len(), p.task.E2.Len(), p.task.Truth.Size())
		err := runCell(opts, cell, w)
		if buf != nil {
			seq.Put(i, buf.Bytes())
		}
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Cells = cells
	return rep, nil
}

// runCell tunes and measures every method on one cell.
func runCell(opts Options, cell *Cell, log io.Writer) error {
	in := core.NewInputDim(cell.Task, cell.Setting, opts.EmbedDim)
	in.Seed = opts.Seed

	record := func(name string, r *tuning.Result) {
		mr := &MethodResult{Method: name}
		if r != nil {
			mr.Config = r.Config
			mr.Metrics = r.Metrics
			mr.Satisfied = r.Satisfied
			if r.Filter != nil {
				// Measure the winning configuration end-to-end on a fresh
				// input so preprocessing/caching does not distort RT.
				fresh := in.Fresh()
				if out, err := r.Filter.Run(fresh); err == nil {
					mr.Timing = out.Timing
				}
			}
		}
		cell.Results[name] = mr
		progressLine(log, name, mr)
	}

	// Blocking workflows.
	for _, space := range tuning.BlockingSpaces(opts.FullGrids) {
		if !opts.wantMethod(space.Label) {
			continue
		}
		space.Workers = opts.Workers
		record(space.Label, tuning.TuneBlocking(in, space, opts.Target))
	}

	// Baseline blocking workflows.
	for _, b := range []struct {
		name string
		f    core.Filter
	}{
		{"PBW", core.NewPBW()},
		{"DBW", core.NewDBW()},
	} {
		if !opts.wantMethod(b.name) {
			continue
		}
		record(b.name, runBaseline(in, b.f))
	}

	// Sparse NN.
	sparseSpace := tuning.DefaultSparseSpace(opts.FullGrids)
	sparseSpace.Workers = opts.Workers
	if opts.wantMethod("eps-Join") {
		record("eps-Join", tuning.TuneEpsJoin(in, sparseSpace, opts.Target))
	}
	if opts.wantMethod("kNNJ") {
		record("kNNJ", tuning.TuneKNNJoin(in, sparseSpace, opts.Target))
	}
	smallerIsE2 := cell.Task.E2.Len() <= cell.Task.E1.Len()
	if opts.wantMethod("DkNN") {
		record("DkNN", runBaseline(in, core.NewDkNN(smallerIsE2)))
	}

	// Dense NN.
	denseSpace := tuning.DefaultDenseSpace(opts.FullGrids)
	denseSpace.Workers = opts.Workers
	if opts.Repetitions > 0 {
		denseSpace.Repetitions = opts.Repetitions
	}
	denseSpace.AEHidden = opts.AEHidden
	denseSpace.AEEpochs = opts.AEEpochs

	type denseTuner struct {
		name string
		run  func() (*tuning.Result, error)
	}
	for _, dt := range []denseTuner{
		{"MH-LSH", func() (*tuning.Result, error) { return tuning.TuneMinHash(in, denseSpace, opts.Target) }},
		{"CP-LSH", func() (*tuning.Result, error) { return tuning.TuneCrossPolytope(in, denseSpace, opts.Target) }},
		{"HP-LSH", func() (*tuning.Result, error) { return tuning.TuneHyperplane(in, denseSpace, opts.Target) }},
		{"FAISS", func() (*tuning.Result, error) { return tuning.TuneFlatKNN(in, denseSpace, opts.Target) }},
		{"SCANN", func() (*tuning.Result, error) { return tuning.TunePartitioned(in, denseSpace, opts.Target) }},
		{"DeepBlocker", func() (*tuning.Result, error) { return tuning.TuneDeepBlocker(in, denseSpace, opts.Target) }},
	} {
		if !opts.wantMethod(dt.name) {
			continue
		}
		r, err := dt.run()
		if err != nil {
			return fmt.Errorf("%s on %s: %w", dt.name, cell.Key(), err)
		}
		record(dt.name, r)
	}
	if opts.wantMethod("DDB") {
		ddb := core.NewDDB(smallerIsE2)
		ddb.Hidden = opts.AEHidden
		ddb.Epochs = opts.AEEpochs
		record("DDB", runBaseline(in, ddb))
	}
	return nil
}

// runBaseline evaluates a fixed-configuration method, wrapping it in the
// tuning result shape.
func runBaseline(in *core.Input, f core.Filter) *tuning.Result {
	out, err := f.Run(in)
	if err != nil {
		return &tuning.Result{Method: f.Name()}
	}
	m := core.Evaluate(out.Pairs, in.Task.Truth)
	return &tuning.Result{
		Method:    f.Name(),
		Config:    map[string]string{"default": f.Name()},
		Filter:    f,
		Metrics:   m,
		Satisfied: m.PC >= tuning.DefaultTarget,
		Evaluated: 1,
	}
}
