package bench

import (
	"fmt"
	"io"
	"sort"

	"erfilter/internal/datagen"
	"erfilter/internal/entity"
)

// TableVI prints the technical characteristics of the dataset analogs
// (entities, duplicates, Cartesian product, best attribute), mirroring the
// paper's Table VI.
func TableVI(w io.Writer, scale float64) {
	t := newTable("dataset", "|E1|", "|E2|", "duplicates", "cartesian", "best attribute")
	for _, spec := range datagen.Specs(scale) {
		task := datagen.Generate(spec)
		t.add(spec.Name,
			fmt.Sprintf("%d", task.E1.Len()),
			fmt.Sprintf("%d", task.E2.Len()),
			fmt.Sprintf("%d", task.Truth.Size()),
			fmt.Sprintf("%.2e", task.CartesianProduct()),
			task.BestAttribute,
		)
	}
	fmt.Fprintln(w, "Table VI: technical characteristics of the dataset analogs")
	t.write(w)
}

// cellsOf groups the report's cells by schema setting, preserving order.
func (r *Report) cellsOf(setting entity.SchemaSetting) []*Cell {
	var out []*Cell
	for _, c := range r.Cells {
		if c.Setting == setting {
			out = append(out, c)
		}
	}
	return out
}

// methodRows returns the methods present in the report, in Table VII order.
func (r *Report) methodRows() []string {
	present := map[string]bool{}
	for _, c := range r.Cells {
		for m := range c.Results {
			present[m] = true
		}
	}
	var out []string
	for _, m := range MethodNames {
		if present[m] {
			out = append(out, m)
		}
	}
	return out
}

// TableVII prints the three effectiveness/efficiency sub-tables (PC, PQ,
// RT) for every method and cell, like the paper's Table VII.
func TableVII(w io.Writer, r *Report) {
	cells := append(r.cellsOf(entity.SchemaAgnostic), r.cellsOf(entity.SchemaBased)...)
	if len(cells) == 0 {
		fmt.Fprintln(w, "Table VII: no cells in report")
		return
	}
	methods := r.methodRows()

	section := func(title string, render func(*MethodResult) string) {
		t := newTable(append([]string{"method"}, keysOf(cells)...)...)
		for _, m := range methods {
			row := []string{m}
			for _, c := range cells {
				mr := c.Results[m]
				if mr == nil {
					row = append(row, "-")
					continue
				}
				row = append(row, render(mr))
			}
			t.add(row...)
		}
		fmt.Fprintln(w, title)
		t.write(w)
		fmt.Fprintln(w)
	}

	section("Table VII(a): recall PC ('!' marks PC below the target)",
		func(mr *MethodResult) string { return fmtPC(mr.Metrics.PC, mr.Satisfied) })
	section("Table VII(b): precision PQ ('!' marks PC below the target)",
		func(mr *MethodResult) string {
			s := fmtPQ(mr.Metrics.PQ)
			if !mr.Satisfied {
				s += "!"
			}
			return s
		})
	section("Table VII(c): overall run-time RT",
		func(mr *MethodResult) string { return fmtRT(mr.Timing.Total) })
}

func keysOf(cells []*Cell) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = c.Key()
	}
	return out
}

// configTable prints the winning configuration of the given methods per
// cell, reproducing Tables VIII (blocking workflows), IX (sparse NN) and
// X (dense NN).
func configTable(w io.Writer, r *Report, title string, methods []string) {
	cells := append(r.cellsOf(entity.SchemaAgnostic), r.cellsOf(entity.SchemaBased)...)
	fmt.Fprintln(w, title)
	for _, m := range methods {
		any := false
		t := newTable("cell", "configuration")
		for _, c := range cells {
			mr := c.Results[m]
			if mr == nil || len(mr.Config) == 0 {
				continue
			}
			any = true
			t.add(c.Key(), renderConfig(mr.Config))
		}
		if any {
			fmt.Fprintf(w, "\n%s:\n", m)
			t.write(w)
		}
	}
	fmt.Fprintln(w)
}

// TableVIII prints the best blocking-workflow configurations.
func TableVIII(w io.Writer, r *Report) {
	configTable(w, r, "Table VIII: best configuration per blocking workflow",
		[]string{"SBW", "QBW", "EQBW", "SABW", "ESABW"})
}

// TableIX prints the best sparse-NN configurations.
func TableIX(w io.Writer, r *Report) {
	configTable(w, r, "Table IX: best configuration per sparse NN method",
		[]string{"eps-Join", "kNNJ"})
}

// TableX prints the best dense-NN configurations.
func TableX(w io.Writer, r *Report) {
	configTable(w, r, "Table X: best configuration per dense NN method",
		[]string{"MH-LSH", "CP-LSH", "HP-LSH", "FAISS", "SCANN", "DeepBlocker"})
}

// TableXI prints the candidate-set sizes per method and cell.
func TableXI(w io.Writer, r *Report) {
	cells := append(r.cellsOf(entity.SchemaAgnostic), r.cellsOf(entity.SchemaBased)...)
	if len(cells) == 0 {
		fmt.Fprintln(w, "Table XI: no cells in report")
		return
	}
	t := newTable(append([]string{"method"}, keysOf(cells)...)...)
	for _, m := range r.methodRows() {
		row := []string{m}
		for _, c := range cells {
			mr := c.Results[m]
			if mr == nil {
				row = append(row, "-")
				continue
			}
			s := fmtCount(mr.Metrics.Candidates)
			if !mr.Satisfied {
				s += "!"
			}
			row = append(row, s)
		}
		t.add(row...)
	}
	fmt.Fprintln(w, "Table XI: number of candidate pairs ('!' marks PC below the target)")
	t.write(w)
}

func renderConfig(cfg map[string]string) string {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += k + "=" + cfg[k]
	}
	return s
}
