package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// msRound is the rounding applied to reported run-times.
const msRound = 100 * time.Microsecond

// progressLine renders one method's per-cell progress log line. The
// format is deliberately deterministic (sorted config keys, fixed
// rounding of everything except the run-time) so that concurrent and
// sequential runs produce comparable streams; the run-time is the one
// wall-clock-dependent field.
func progressLine(w io.Writer, name string, mr *MethodResult) {
	fmt.Fprintf(w, "   %-12s PC=%.3f PQ=%.4f |C|=%-8d cfg{%s} rt=%v\n",
		name, mr.Metrics.PC, mr.Metrics.PQ, mr.Metrics.Candidates, configBrief(mr.Config), mr.Timing.Total.Round(msRound))
}

// configBrief renders a config map as a compact comma-separated list with
// deterministically ordered keys.
func configBrief(cfg map[string]string) string {
	if len(cfg) == 0 {
		return ""
	}
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=" + cfg[k]
	}
	return s
}

// table is a minimal fixed-width text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtPQ renders a Pairs Quality value with the paper's precision, using
// scientific notation for very small values.
func fmtPQ(pq float64) string {
	if pq == 0 {
		return "0"
	}
	if pq < 0.001 {
		return fmt.Sprintf("%.1e", pq)
	}
	return fmt.Sprintf("%.3f", pq)
}

// fmtPC renders a Pair Completeness value; a trailing '!' flags cells
// below the target recall (printed red in the paper).
func fmtPC(pc float64, satisfied bool) string {
	s := fmt.Sprintf("%.3f", pc)
	if !satisfied {
		s += "!"
	}
	return s
}

// fmtRT renders a run-time like the paper: milliseconds below a second,
// seconds above.
func fmtRT(d time.Duration) string {
	if d < time.Second {
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// fmtCount renders a candidate count like Table XI (scientific notation
// for large values).
func fmtCount(n int) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%.1e", float64(n))
	}
	return fmt.Sprintf("%d", n)
}

// histogram renders an ASCII histogram with log-spaced bucket labels.
func histogram(w io.Writer, title string, buckets []string, counts []int) {
	fmt.Fprintln(w, title)
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	const width = 50
	for i, label := range buckets {
		bar := counts[i] * width / max
		fmt.Fprintf(w, "  %-10s %6d %s\n", label, counts[i], strings.Repeat("#", bar))
	}
}
