package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDotAndNorm(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("dot = %v", got)
	}
	if got := Norm(Vec{3, 4}); got != 5 {
		t.Fatalf("norm = %v", got)
	}
	if got := L2Sq(a, b); got != 27 {
		t.Fatalf("l2sq = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize(Vec{3, 4})
	if math.Abs(Norm(v)-1) > 1e-6 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := Normalize(Vec{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector must stay zero")
	}
}

func TestEmbedderDeterministic(t *testing.T) {
	e1 := NewEmbedder(64)
	e2 := NewEmbedder(64)
	a := e1.Text("canon powershot camera")
	b := e2.Text("canon powershot camera")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic across embedders")
		}
	}
}

func TestEmbedderUnitNorm(t *testing.T) {
	e := NewEmbedder(64)
	for _, s := range []string{"a", "canon camera", "the quick brown fox"} {
		if n := Norm(e.Text(s)); math.Abs(n-1) > 1e-5 {
			t.Fatalf("Text(%q) norm = %v", s, n)
		}
	}
	if n := Norm(e.Text("")); n != 0 {
		t.Fatalf("empty text should embed to zero, norm = %v", n)
	}
}

func TestEmbedderSubwordRobustness(t *testing.T) {
	// A typo'd word must stay far closer to the original than an unrelated
	// word, because they share most subword grams (the fastText property
	// the substitution must preserve).
	e := NewEmbedder(Dim)
	orig := e.Word("powershot")
	typo := e.Word("powershut")
	other := e.Word("bibliography")
	simTypo := Dot(orig, typo)
	simOther := Dot(orig, other)
	if simTypo <= simOther+0.2 {
		t.Fatalf("typo similarity %.3f not well above unrelated %.3f", simTypo, simOther)
	}
}

func TestEmbedderWordOrderInsensitive(t *testing.T) {
	e := NewEmbedder(Dim)
	a := e.Text("canon camera black")
	b := e.Text("black canon camera")
	if Dot(a, b) < 0.999 {
		t.Fatalf("tuple embedding should be order-insensitive, sim = %v", Dot(a, b))
	}
}

func TestGaussianMoments(t *testing.T) {
	out := make([]float64, 100000)
	Gaussian(out, 42)
	var mean, varSum float64
	for _, x := range out {
		mean += x
	}
	mean /= float64(len(out))
	for _, x := range out {
		varSum += (x - mean) * (x - mean)
	}
	variance := varSum / float64(len(out))
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("gaussian variance = %v", variance)
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(xs []float32) bool {
		if len(xs) == 0 {
			return true
		}
		v := make(Vec, len(xs))
		allZero := true
		for i, x := range xs {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return true
			}
			// Keep magnitudes sane to avoid float32 overflow artifacts.
			v[i] = x / 1e10
			if v[i] != 0 {
				allZero = false
			}
		}
		n := Norm(Normalize(v))
		if allZero || n == 0 {
			return true
		}
		return math.Abs(n-1) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
