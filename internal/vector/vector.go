// Package vector provides the dense-vector substrate of the dense NN
// methods: fixed-dimensional float32 vectors, the usual inner-product and
// Euclidean operations, and a deterministic hashed-subword embedder that
// substitutes the paper's pre-trained fastText model (see DESIGN.md).
package vector

import "math"

// Dim is the embedding dimensionality used throughout the benchmark,
// matching the 300-dimensional fastText vectors of the paper.
const Dim = 300

// Vec is a dense vector.
type Vec []float32

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b Vec) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v Vec) float64 {
	return math.Sqrt(Dot(v, v))
}

// Normalize scales v to unit norm in place and returns it. The zero vector
// is left unchanged.
func Normalize(v Vec) Vec {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
	return v
}

// L2Sq returns the squared Euclidean distance between two vectors.
func L2Sq(a, b Vec) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Add accumulates b into a.
func Add(a, b Vec) {
	for i := range a {
		a[i] += b[i]
	}
}

// Scale multiplies every component of v by x.
func Scale(v Vec, x float32) {
	for i := range v {
		v[i] *= x
	}
}

// Clone returns a copy of v.
func Clone(v Vec) Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}
