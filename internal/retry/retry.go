// Package retry implements jittered exponential backoff: the reusable
// wait schedule behind the replication tailer (and any future client of
// a flaky peer). A Policy describes the schedule; a Backoff walks it.
//
// The schedule is "full jitter": the n-th delay is drawn uniformly from
// (0, min(Base*Factor^n, Cap)]. Full jitter de-synchronizes a fleet of
// retriers hammering a recovering leader, which matters more than any
// individual retry landing early or late. MaxElapsed bounds the total
// time spent waiting across a Backoff's lifetime; once crossed, Sleep
// reports false and the caller gives up (or, for the tailer, keeps the
// replica in its degraded read-only-stale state and re-arms).
//
// Time and randomness are injected so tests can verify the exact
// schedule without sleeping.
package retry

import (
	"context"
	"math/rand"
	"time"
)

// Policy describes a backoff schedule. The zero value is usable and
// selects the defaults noted per field.
type Policy struct {
	// Base is the cap of the first delay (default 50ms).
	Base time.Duration
	// Cap bounds any single delay (default 5s).
	Cap time.Duration
	// Factor multiplies the cap of successive delays (default 2).
	Factor float64
	// MaxElapsed bounds the total time spent sleeping since NewBackoff
	// or the last Reset; 0 means no bound. Once crossed, Sleep returns
	// false without sleeping.
	MaxElapsed time.Duration

	// Rand returns a uniform float64 in [0,1); nil selects math/rand.
	Rand func() float64
	// Sleeper sleeps for d or until ctx is done, reporting whether the
	// full duration elapsed; nil selects a timer-based sleep. Tests
	// inject a recorder here.
	Sleeper func(ctx context.Context, d time.Duration) bool
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	if p.Factor <= 1 {
		p.Factor = 2
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.Sleeper == nil {
		p.Sleeper = realSleep
	}
	return p
}

func realSleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Backoff walks a Policy's schedule. Not safe for concurrent use; each
// retry loop owns one.
type Backoff struct {
	p       Policy
	attempt int
	slept   time.Duration
}

// NewBackoff returns a Backoff at the start of p's schedule.
func NewBackoff(p Policy) *Backoff {
	return &Backoff{p: p.withDefaults()}
}

// Reset rewinds the schedule to the first delay and clears the elapsed
// budget — called after a success so the next failure starts cheap.
func (b *Backoff) Reset() {
	b.attempt = 0
	b.slept = 0
}

// Next returns the upcoming delay without consuming it.
func (b *Backoff) Next() time.Duration {
	ceil := float64(b.p.Base)
	for i := 0; i < b.attempt; i++ {
		ceil *= b.p.Factor
		if ceil >= float64(b.p.Cap) {
			ceil = float64(b.p.Cap)
			break
		}
	}
	d := time.Duration(b.p.Rand() * ceil)
	if d <= 0 {
		d = 1 // a zero sleep would spin; keep the floor visible in tests
	}
	if d > b.p.Cap {
		d = b.p.Cap
	}
	return d
}

// Sleep consumes one delay from the schedule, sleeping through the
// injected Sleeper. It reports false — without advancing the schedule —
// when ctx is already done, the MaxElapsed budget is spent, or the
// sleep was cut short by cancellation.
func (b *Backoff) Sleep(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	if b.p.MaxElapsed > 0 && b.slept >= b.p.MaxElapsed {
		return false
	}
	d := b.Next()
	if b.p.MaxElapsed > 0 && b.slept+d > b.p.MaxElapsed {
		d = b.p.MaxElapsed - b.slept
	}
	if !b.p.Sleeper(ctx, d) {
		return false
	}
	b.attempt++
	b.slept += d
	return true
}

// Do calls fn until it returns nil, sleeping between failures on p's
// schedule. It returns fn's last error when ctx is cancelled or the
// MaxElapsed budget runs out.
func Do(ctx context.Context, p Policy, fn func() error) error {
	b := NewBackoff(p)
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if !b.Sleep(ctx) {
			return err
		}
	}
}
