package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fixedRand returns r on every draw.
func fixedRand(r float64) func() float64 { return func() float64 { return r } }

// recordingSleeper appends each requested delay and never blocks.
func recordingSleeper(got *[]time.Duration) func(context.Context, time.Duration) bool {
	return func(_ context.Context, d time.Duration) bool {
		*got = append(*got, d)
		return true
	}
}

func TestScheduleDoublesUpToCap(t *testing.T) {
	var got []time.Duration
	b := NewBackoff(Policy{
		Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2,
		Rand:    fixedRand(0.999999), // draw ~the ceiling so the shape is visible
		Sleeper: recordingSleeper(&got),
	})
	for i := 0; i < 6; i++ {
		if !b.Sleep(context.Background()) {
			t.Fatalf("sleep %d refused", i)
		}
	}
	// Ceilings: 10, 20, 40, 80, 80, 80 ms; the draw is just under each.
	wantCeil := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, d := range got {
		ceil := wantCeil[i] * time.Millisecond
		if d > ceil || d < ceil-ceil/1000-1 {
			t.Fatalf("delay %d = %v, want ~%v", i, d, ceil)
		}
	}
}

func TestJitterDrawsBelowCeiling(t *testing.T) {
	var got []time.Duration
	b := NewBackoff(Policy{
		Base: 100 * time.Millisecond, Cap: time.Second,
		Rand:    fixedRand(0.25),
		Sleeper: recordingSleeper(&got),
	})
	b.Sleep(context.Background())
	b.Sleep(context.Background())
	if got[0] != 25*time.Millisecond || got[1] != 50*time.Millisecond {
		t.Fatalf("got %v, want [25ms 50ms]", got)
	}
}

func TestMaxElapsedStopsTheSchedule(t *testing.T) {
	var got []time.Duration
	b := NewBackoff(Policy{
		Base: 10 * time.Millisecond, Cap: 10 * time.Millisecond,
		MaxElapsed: 25 * time.Millisecond,
		Rand:       fixedRand(0.999999),
		Sleeper:    recordingSleeper(&got),
	})
	ok := 0
	for b.Sleep(context.Background()) {
		ok++
		if ok > 10 {
			t.Fatal("schedule never ended")
		}
	}
	// Two ~10ms sleeps fit; the third is clipped to the ~5ms remainder;
	// the fourth is refused.
	if ok != 3 {
		t.Fatalf("got %d sleeps, want 3 (delays %v)", ok, got)
	}
	var total time.Duration
	for _, d := range got {
		total += d
	}
	if total > 25*time.Millisecond {
		t.Fatalf("slept %v, beyond the 25ms budget", total)
	}
}

func TestResetRewindsScheduleAndBudget(t *testing.T) {
	var got []time.Duration
	b := NewBackoff(Policy{
		Base: 10 * time.Millisecond, Cap: time.Second, MaxElapsed: time.Minute,
		Rand:    fixedRand(0.999999),
		Sleeper: recordingSleeper(&got),
	})
	b.Sleep(context.Background())
	b.Sleep(context.Background())
	b.Reset()
	b.Sleep(context.Background())
	if got[2] > 10*time.Millisecond || got[2] < 9*time.Millisecond {
		t.Fatalf("post-reset delay %v, want ~10ms", got[2])
	}
	if b.slept != got[2] {
		t.Fatalf("post-reset budget %v, want %v", b.slept, got[2])
	}
}

func TestSleepHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := NewBackoff(Policy{Sleeper: func(context.Context, time.Duration) bool {
		t.Fatal("sleeper called with a dead context")
		return false
	}})
	if b.Sleep(ctx) {
		t.Fatal("Sleep succeeded under a cancelled context")
	}
}

func TestSleeperCutShortReportsFalse(t *testing.T) {
	b := NewBackoff(Policy{Sleeper: func(context.Context, time.Duration) bool { return false }})
	if b.Sleep(context.Background()) {
		t.Fatal("Sleep reported success for an interrupted sleep")
	}
	if b.attempt != 0 {
		t.Fatal("interrupted sleep advanced the schedule")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var got []time.Duration
	calls := 0
	err := Do(context.Background(), Policy{
		Base: time.Millisecond, Rand: fixedRand(0.5), Sleeper: recordingSleeper(&got),
	}, func() error {
		calls++
		if calls < 4 {
			return errors.New("nope")
		}
		return nil
	})
	if err != nil || calls != 4 || len(got) != 3 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want nil/4/3", err, calls, len(got))
	}
}

func TestDoReturnsLastErrorOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("persistent failure")
	calls := 0
	err := Do(ctx, Policy{Sleeper: func(context.Context, time.Duration) bool { return true }},
		func() error {
			calls++
			if calls == 3 {
				cancel()
			}
			return sentinel
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v, want the fn's last error", err)
	}
}

func TestRealSleeperSleepsAndCancels(t *testing.T) {
	b := NewBackoff(Policy{Base: time.Millisecond, Rand: fixedRand(0.5)})
	begin := time.Now()
	if !b.Sleep(context.Background()) {
		t.Fatal("real sleep refused")
	}
	if time.Since(begin) > time.Second {
		t.Fatal("1ms-scale sleep took over a second")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	b2 := NewBackoff(Policy{Base: time.Hour, Cap: time.Hour, Rand: fixedRand(0.999)})
	if b2.Sleep(ctx) {
		t.Fatal("hour-long sleep was not cut short by cancellation")
	}
}
