package match

import (
	"sort"
	"sync"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/metrics"
	"erfilter/internal/online"
)

// Snapshot is the candidate source a Decider consumes: an immutable
// epoch view that can batch-resolve queries and surface the stored
// attributes of any candidate it returned. *online.Snapshot and
// *online.ShardedSnapshot both satisfy it, which is how the sharded
// path inherits the single-resolver equivalence — everything below the
// candidate lists is a deterministic function of them.
type Snapshot interface {
	Epoch() uint64
	Len() int
	QueryBatch(batch [][]entity.Attribute, opt online.QueryOptions) ([][]online.Candidate, online.Trace)
	Attrs(id int64) ([]entity.Attribute, bool)
}

// Decision is one decided match: the batch-local query index, the
// resident entity it matched, and the scorer similarity that decided
// the pair.
type Decision struct {
	Query int     `json:"query"`
	ID    int64   `json:"id"`
	Score float64 `json:"score"`
}

// Request tunes one DecideBatch call.
type Request struct {
	// Opt is passed through to candidate generation.
	Opt online.QueryOptions
	// Budget caps the number of scorer comparisons; 0 is unlimited.
	// Pairs are scored in decreasing filter-score order, so a budgeted
	// run spends its comparisons on the most promising pairs first —
	// the progressive-resolution discipline of Galhotra et al.
	Budget int
	// Top keeps only the N best decisions (by scorer similarity);
	// 0 keeps all.
	Top int
}

// Result is the outcome of one decided batch. Decisions are in
// emission order: scorer similarity descending, then query index, then
// entity id — the progressive "best pairs first" order.
type Result struct {
	Epoch       uint64
	Entities    int
	Decisions   []Decision
	Comparisons int  // scorer comparisons actually spent
	Pairs       int  // candidate pairs the filter produced
	Exhausted   bool // budget ran out before every pair was scored
}

// Decider scores filtered candidates and resolves them into decided
// matches. Safe for concurrent use; all state is read-only after
// construction except the (atomic) telemetry.
type Decider struct {
	cfg  Config
	rcfg online.Config // the resolver's config: the text the filter indexed
	tel  *telemetry
}

// NewDecider builds a decider for a resolver configured by rcfg.
func NewDecider(cfg Config, rcfg online.Config) *Decider {
	return &Decider{cfg: cfg.Normalize(), rcfg: rcfg, tel: newTelemetry()}
}

// Config returns the decider's normalized configuration.
func (d *Decider) Config() Config { return d.cfg }

// pair is one scorable (query, candidate) pair in progressive order.
type pair struct {
	q      int
	id     int64
	filter float64 // the filter's score, ordering only
}

// DecideBatch resolves the batch against the snapshot, scores the
// candidate pairs with the configured scorer, and returns the
// one-to-one decided matches. assign overrides the configured
// assignment when >= 0 (the HTTP layer lets a request choose).
func (d *Decider) DecideBatch(snap Snapshot, batch [][]entity.Attribute, req Request, assign Assign) Result {
	begin := time.Now()
	cands, tr := snap.QueryBatch(batch, req.Opt)

	res := Result{Epoch: tr.Epoch, Entities: tr.Entities}
	if res.Epoch == 0 {
		res.Epoch = snap.Epoch()
	}
	if res.Entities == 0 {
		res.Entities = snap.Len()
	}

	// Flatten to pairs and order them by decreasing filter score (ties
	// by query index, then id): the order both the comparison budget
	// and the progressive emitter walk.
	var pairs []pair
	for q, cs := range cands {
		for _, c := range cs {
			pairs = append(pairs, pair{q: q, id: c.ID, filter: c.Score})
		}
	}
	sortPairs(pairs)
	res.Pairs = len(pairs)

	// Score under the budget. Query texts are assembled once per query,
	// candidate texts once per distinct id.
	qText := make([]string, len(batch))
	qDone := make([]bool, len(batch))
	idText := make(map[int64]string)
	var edges []Edge
	for _, p := range pairs {
		if req.Budget > 0 && res.Comparisons >= req.Budget {
			res.Exhausted = true
			break
		}
		if !qDone[p.q] {
			qText[p.q] = d.rcfg.TextOf(batch[p.q])
			qDone[p.q] = true
		}
		ct, ok := idText[p.id]
		if !ok {
			attrs, live := snap.Attrs(p.id)
			if !live {
				// The entity vanished between the query and the attr
				// lookup (concurrent delete); skip the pair.
				idText[p.id] = ""
				continue
			}
			ct = d.rcfg.TextOf(attrs)
			idText[p.id] = ct
		} else if ct == "" {
			continue
		}
		res.Comparisons++
		sim := d.cfg.Scorer.Sim(qText[p.q], ct)
		if sim >= d.cfg.Threshold {
			edges = append(edges, Edge{Q: p.q, ID: p.id, Score: sim})
		}
	}

	if assign < 0 {
		assign = d.cfg.Assign
	}
	if assign == AssignBipartite {
		res.Decisions = toDecisions(Bipartite(edges))
	} else {
		res.Decisions = toDecisions(Greedy(edges))
	}
	if req.Top > 0 && len(res.Decisions) > req.Top {
		res.Decisions = res.Decisions[:req.Top]
	}

	d.probe(res.Decisions, qText, idText)
	d.observe(res, time.Since(begin))
	return res
}

// probe re-scores a deterministic 1-in-probePeriod sample of the
// decided matches with an independent scorer at the same threshold and
// counts agreement — a running precision proxy that costs one extra
// comparison per sampled decision and never touches the decisions.
func (d *Decider) probe(decisions []Decision, qText []string, idText map[int64]string) {
	if len(decisions) == 0 {
		return
	}
	t := d.tel
	t.mu.Lock()
	seq := t.probeSeq
	t.probeSeq += int64(len(decisions))
	t.mu.Unlock()
	probe := d.probeScorer()
	for i, dec := range decisions {
		if (seq+int64(i))%probePeriod != 0 {
			continue
		}
		t.probeTotal.Inc()
		if probe.Sim(qText[dec.Query], idText[dec.ID]) >= d.cfg.Threshold {
			t.probeAgree.Inc()
		}
	}
}

// sortPairs orders candidate pairs by filter score descending, then
// query index, then entity id — deterministic for identical candidate
// lists.
func sortPairs(ps []pair) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.filter != b.filter {
			return a.filter > b.filter
		}
		if a.q != b.q {
			return a.q < b.q
		}
		return a.id < b.id
	})
}

// toDecisions converts assigned edges (canonical order) to decisions.
func toDecisions(es []Edge) []Decision {
	out := make([]Decision, len(es))
	for i, e := range es {
		out[i] = Decision{Query: e.Q, ID: e.ID, Score: e.Score}
	}
	return out
}

// probePeriod samples every Nth decided match for the precision probe.
const probePeriod = 16

// telemetry is the decider's (nil-safe at zero value via newTelemetry)
// metric set.
type telemetry struct {
	decideNS    *metrics.Histogram
	batches     *metrics.Counter
	comparisons *metrics.Counter
	pairs       *metrics.Counter
	decisions   *metrics.Counter
	exhausted   *metrics.Counter
	probeTotal  *metrics.Counter
	probeAgree  *metrics.Counter
	mu          sync.Mutex
	probeSeq    int64
}

func newTelemetry() *telemetry {
	return &telemetry{
		decideNS:    &metrics.Histogram{},
		batches:     &metrics.Counter{},
		comparisons: &metrics.Counter{},
		pairs:       &metrics.Counter{},
		decisions:   &metrics.Counter{},
		exhausted:   &metrics.Counter{},
		probeTotal:  &metrics.Counter{},
		probeAgree:  &metrics.Counter{},
	}
}

// observe records one decided batch into the telemetry.
func (d *Decider) observe(res Result, dur time.Duration) {
	t := d.tel
	t.decideNS.ObserveDuration(dur)
	t.batches.Inc()
	t.comparisons.Add(int64(res.Comparisons))
	t.pairs.Add(int64(res.Pairs))
	t.decisions.Add(int64(len(res.Decisions)))
	if res.Exhausted {
		t.exhausted.Inc()
	}
}

// probeScorer picks the independent second opinion: Levenshtein unless
// it is the primary, then Jaro.
func (d *Decider) probeScorer() Scorer {
	if d.cfg.Scorer == ScoreLevenshtein {
		return ScoreJaro
	}
	return ScoreLevenshtein
}

// DeciderStats is the stats-endpoint view of a decider.
type DeciderStats struct {
	Scorer      string `json:"scorer"`
	Threshold   float64 `json:"threshold"`
	Assign      string `json:"assign"`
	Batches     int64  `json:"batches"`
	Pairs       int64  `json:"pairs"`
	Comparisons int64  `json:"comparisons"`
	Decisions   int64  `json:"decisions"`
	Exhausted   int64  `json:"budget_exhausted"`
	ProbeTotal  int64  `json:"probe_total"`
	ProbeAgree  int64  `json:"probe_agree"`
}

// Stats snapshots the decider's counters.
func (d *Decider) Stats() DeciderStats {
	return DeciderStats{
		Scorer:      d.cfg.Scorer.String(),
		Threshold:   d.cfg.Threshold,
		Assign:      d.cfg.Assign.String(),
		Batches:     d.tel.batches.Value(),
		Pairs:       d.tel.pairs.Value(),
		Comparisons: d.tel.comparisons.Value(),
		Decisions:   d.tel.decisions.Value(),
		Exhausted:   d.tel.exhausted.Value(),
		ProbeTotal:  d.tel.probeTotal.Value(),
		ProbeAgree:  d.tel.probeAgree.Value(),
	}
}

// RegisterMetrics exposes the decider's telemetry.
func (d *Decider) RegisterMetrics(reg *metrics.Registry) {
	t := d.tel
	reg.RegisterHistogram("match_decide_duration_seconds",
		"Wall time of one decided batch (candidates, scoring, assignment).",
		nil, 1e-9, t.decideNS)
	reg.RegisterCounter("match_batches_total",
		"Decided batches.", nil, t.batches)
	reg.RegisterCounter("match_candidate_pairs_total",
		"Candidate pairs produced by the filter for decision.", nil, t.pairs)
	reg.RegisterCounter("match_comparisons_total",
		"Scorer comparisons spent (budget-capped).", nil, t.comparisons)
	reg.RegisterCounter("match_decisions_total",
		"Decided matches emitted.", nil, t.decisions)
	reg.RegisterCounter("match_budget_exhausted_total",
		"Decided batches whose comparison budget ran out.", nil, t.exhausted)
	reg.RegisterCounter("match_probe_total",
		"Decided matches sampled by the precision probe.", nil, t.probeTotal)
	reg.RegisterCounter("match_probe_agree_total",
		"Sampled matches the independent probe scorer agreed with.", nil, t.probeAgree)
}
