package match

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"erfilter/internal/entity"
	"erfilter/internal/matching"
	"erfilter/internal/online"
	"erfilter/internal/sparse"
	"erfilter/internal/text"
)

func attrsText(s string) []entity.Attribute {
	return []entity.Attribute{{Name: "text", Value: s}}
}

var corpus = []string{
	"canon powershot a540 digital camera",
	"nikon coolpix p100 bridge camera",
	"sony cybershot dsc w55 compact",
	"apple ipod nano 4gb silver",
	"samsung galaxy buds wireless earbuds",
}

func epsCfg() online.Config {
	c3g, _ := text.ParseModel("C3G")
	return online.Config{Method: online.EpsJoin, Model: c3g, Measure: sparse.Jaccard, Threshold: 0.3, Clean: true}
}

func knnCfg() online.Config {
	c3g, _ := text.ParseModel("C3G")
	return online.Config{Method: online.KNNJoin, Model: c3g, Measure: sparse.Cosine, K: 3, Clean: true}
}

// applyWorkload drives identical inserts and deletes against the single
// and sharded resolvers (both allocate ids in arrival order) and
// returns the live ids.
func applyWorkload(rng *rand.Rand, single *online.Resolver, sharded *online.ShardedResolver, inserts, deletes int) []int64 {
	var live []int64
	i := 0
	for i < inserts {
		n := 1
		if rng.Intn(4) == 0 {
			n = 1 + rng.Intn(8)
			if i+n > inserts {
				n = inserts - i
			}
		}
		batch := make([][]entity.Attribute, n)
		for j := range batch {
			batch[j] = attrsText(fmt.Sprintf("%s variant %d", corpus[rng.Intn(len(corpus))], (i+j)%97))
		}
		a := single.InsertBatch(batch)
		b := sharded.InsertBatch(batch)
		for j := range a {
			if a[j] != b[j] {
				panic(fmt.Sprintf("id divergence: %d vs %d", a[j], b[j]))
			}
		}
		live = append(live, a...)
		i += n
	}
	for d := 0; d < deletes && len(live) > 0; d++ {
		j := rng.Intn(len(live))
		id := live[j]
		live = append(live[:j], live[j+1:]...)
		single.Delete(id)
		sharded.Delete(id)
	}
	return live
}

// oracleDecisions reruns the decided batch the way the offline pipeline
// would: candidates from the snapshot, pairs ordered by filter score,
// scored with internal/matching's similarity, thresholded, budget-cut,
// then greedily assigned by an independent reimplementation. The
// decider's greedy path must be byte-identical to this.
func oracleDecisions(snap Snapshot, rcfg online.Config, batch [][]entity.Attribute, req Request, mcfg Config) []Decision {
	cands, _ := snap.QueryBatch(batch, req.Opt)
	type op struct {
		q      int
		id     int64
		filter float64
	}
	var pairs []op
	for q, cs := range cands {
		for _, c := range cs {
			pairs = append(pairs, op{q, c.ID, c.Score})
		}
	}
	// Selection sort for full independence from the decider's sort.
	for i := range pairs {
		best := i
		for j := i + 1; j < len(pairs); j++ {
			a, b := pairs[j], pairs[best]
			if a.filter > b.filter ||
				(a.filter == b.filter && (a.q < b.q || (a.q == b.q && a.id < b.id))) {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
	}
	m := matching.Matcher{Similarity: matching.SimJaroWinkler}
	var edges []Edge
	spent := 0
	for _, p := range pairs {
		if req.Budget > 0 && spent >= req.Budget {
			break
		}
		attrs, ok := snap.Attrs(p.id)
		if !ok {
			continue
		}
		spent++
		sim := m.Sim(rcfg.TextOf(batch[p.q]), rcfg.TextOf(attrs))
		if sim >= mcfg.Threshold {
			edges = append(edges, Edge{Q: p.q, ID: p.id, Score: sim})
		}
	}
	// Independent greedy: repeatedly extract the best remaining edge.
	var out []Decision
	usedQ := map[int]bool{}
	usedID := map[int64]bool{}
	for len(edges) > 0 {
		best := 0
		for j := 1; j < len(edges); j++ {
			a, b := edges[j], edges[best]
			if a.Score > b.Score ||
				(a.Score == b.Score && (a.Q < b.Q || (a.Q == b.Q && a.ID < b.ID))) {
				best = j
			}
		}
		e := edges[best]
		edges = append(edges[:best], edges[best+1:]...)
		if usedQ[e.Q] || usedID[e.ID] {
			continue
		}
		usedQ[e.Q], usedID[e.ID] = true, true
		out = append(out, Decision{Query: e.Q, ID: e.ID, Score: e.Score})
	}
	if req.Top > 0 && len(out) > req.Top {
		out = out[:req.Top]
	}
	return out
}

// TestMatchEquivalenceQuick is the match-stage property gate: for
// random workloads (batch inserts, deletes past the compaction
// threshold), shard counts 1..8, and a save/load round-trip into a
// different shard count, the online decided matches must be
// byte-identical across the single resolver, the sharded resolver and
// the reloaded resolver — and the greedy path byte-identical to the
// batch internal/matching oracle run over the same snapshot. The
// bipartite path must additionally be a valid one-to-one matching of
// optimal total weight (optima can tie, so weight, not bytes, is the
// invariant against the brute-force oracle).
func TestMatchEquivalenceQuick(t *testing.T) {
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for name, cfg := range map[string]online.Config{"epsjoin": epsCfg(), "knnj": knnCfg()} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				shards := 1 + rng.Intn(8)
				single := online.NewResolver(cfg)
				sharded := online.NewSharded(cfg, shards)
				inserts := 160 + rng.Intn(120)
				deletes := 70 + rng.Intn(70)
				applyWorkload(rng, single, sharded, inserts, deletes)

				var buf bytes.Buffer
				if err := sharded.Save(&buf); err != nil {
					t.Fatalf("save: %v", err)
				}
				reShards := 1 + rng.Intn(8)
				reloaded, err := online.LoadSharded(bytes.NewReader(buf.Bytes()), reShards)
				if err != nil {
					t.Fatalf("load into %d shards: %v", reShards, err)
				}

				mcfg := Config{Scorer: ScoreJaroWinkler, Threshold: 0.80 + 0.05*rng.Float64()}
				dec := NewDecider(mcfg, single.Config())

				batch := make([][]entity.Attribute, 6+rng.Intn(8))
				for i := range batch {
					batch[i] = attrsText(fmt.Sprintf("%s variant %d", corpus[rng.Intn(len(corpus))], rng.Intn(97)))
				}
				reqs := []Request{
					{},
					{Opt: online.QueryOptions{K: 4}},
					{Budget: 1 + rng.Intn(30)},
					{Top: 1 + rng.Intn(4)},
				}
				label := fmt.Sprintf("seed=%d shards=%d reShards=%d t=%.3f", seed, shards, reShards, mcfg.Threshold)
				// view strips the epoch: shard epochs sum and a reload
				// restarts them, so epochs legitimately differ across
				// topologies; everything decided must not.
				view := func(r Result) []byte {
					j, _ := json.Marshal(struct {
						Entities    int
						Decisions   []Decision
						Comparisons int
						Pairs       int
						Exhausted   bool
					}{r.Entities, r.Decisions, r.Comparisons, r.Pairs, r.Exhausted})
					return j
				}
				for ri, req := range reqs {
					for _, assign := range []Assign{AssignGreedy, AssignBipartite} {
						a := dec.DecideBatch(single.Snapshot(), batch, req, assign)
						b := dec.DecideBatch(sharded.Snapshot(), batch, req, assign)
						c := dec.DecideBatch(reloaded.Snapshot(), batch, req, assign)
						ja := view(a)
						jb := view(b)
						jc := view(c)
						if !bytes.Equal(ja, jb) {
							t.Fatalf("%s req=%d %s: sharded diverged:\n single: %s\nsharded: %s", label, ri, assign, ja, jb)
						}
						if !bytes.Equal(ja, jc) {
							t.Fatalf("%s req=%d %s: reloaded diverged:\n single: %s\nreload: %s", label, ri, assign, ja, jc)
						}
						if assign == AssignGreedy {
							want := oracleDecisions(single.Snapshot(), cfg, batch, req, mcfg)
							jw, _ := json.Marshal(want)
							jg, _ := json.Marshal(a.Decisions)
							if !bytes.Equal(jg, jw) {
								t.Fatalf("%s req=%d: decider diverged from matching oracle:\n got: %s\nwant: %s", label, ri, jg, jw)
							}
						} else if req.Top == 0 {
							// Optimality check against the unassigned edge
							// set — brute force, so only when it is tractable.
							edges := rebuildEdges(single.Snapshot(), cfg, batch, req, mcfg)
							if len(edges) <= 18 {
								want := bruteForceMax(edges)
								var got float64
								for _, d := range a.Decisions {
									got += d.Score
								}
								if got < want-1e-9 || got > want+1e-9 {
									t.Fatalf("%s req=%d: bipartite weight %v, oracle %v", label, ri, got, want)
								}
							}
						}
					}
				}
				return !t.Failed()
			}
			if err := quick.Check(check, &quick.Config{MaxCount: trials}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// rebuildEdges recomputes the thresholded, budget-cut edge set the
// decider assigned — the input to the brute-force optimality oracle.
func rebuildEdges(snap Snapshot, rcfg online.Config, batch [][]entity.Attribute, req Request, mcfg Config) []Edge {
	cands, _ := snap.QueryBatch(batch, req.Opt)
	var pairs []pair
	for q, cs := range cands {
		for _, c := range cs {
			pairs = append(pairs, pair{q: q, id: c.ID, filter: c.Score})
		}
	}
	sortPairs(pairs)
	var edges []Edge
	spent := 0
	for _, p := range pairs {
		if req.Budget > 0 && spent >= req.Budget {
			break
		}
		attrs, ok := snap.Attrs(p.id)
		if !ok {
			continue
		}
		spent++
		sim := mcfg.Scorer.Sim(rcfg.TextOf(batch[p.q]), rcfg.TextOf(attrs))
		if sim >= mcfg.Threshold {
			edges = append(edges, Edge{Q: p.q, ID: p.id, Score: sim})
		}
	}
	return edges
}

// TestMatchProgressiveBudget pins the progressive emitter: a budgeted
// run marks exhaustion, spends exactly the budget, and emits a prefix
// (in decreasing similarity) of the unbudgeted decisions under Top.
func TestMatchProgressiveBudget(t *testing.T) {
	cfg := epsCfg()
	r := online.NewResolver(cfg)
	for i := 0; i < 40; i++ {
		r.Insert(attrsText(fmt.Sprintf("%s variant %d", corpus[i%len(corpus)], i%7)))
	}
	dec := NewDecider(Config{Scorer: ScoreJaroWinkler, Threshold: 0.8}, cfg)
	batch := [][]entity.Attribute{
		attrsText("canon powershot a540 digital camera"),
		attrsText("apple ipod nano 4gb silver"),
		attrsText("sony cybershot dsc w55 compact"),
	}
	full := dec.DecideBatch(r.Snapshot(), batch, Request{}, -1)
	if len(full.Decisions) == 0 {
		t.Fatal("no decisions on exact duplicates")
	}
	if full.Exhausted {
		t.Fatal("unbudgeted run reported exhaustion")
	}
	for i := 1; i < len(full.Decisions); i++ {
		if full.Decisions[i].Score > full.Decisions[i-1].Score {
			t.Fatalf("decisions not in decreasing likelihood: %+v", full.Decisions)
		}
	}
	budgeted := dec.DecideBatch(r.Snapshot(), batch, Request{Budget: 3}, -1)
	if !budgeted.Exhausted {
		t.Fatalf("budget 3 over %d pairs did not exhaust", budgeted.Pairs)
	}
	if budgeted.Comparisons > 3 {
		t.Fatalf("budget 3 spent %d comparisons", budgeted.Comparisons)
	}
	top := dec.DecideBatch(r.Snapshot(), batch, Request{Top: 1}, -1)
	if len(top.Decisions) != 1 {
		t.Fatalf("top 1 emitted %d decisions", len(top.Decisions))
	}
	if top.Decisions[0] != full.Decisions[0] {
		t.Fatalf("top-1 %+v is not the best full decision %+v", top.Decisions[0], full.Decisions[0])
	}
}
