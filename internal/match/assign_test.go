package match

import (
	"math/rand"
	"reflect"
	"testing"
)

func totalWeight(es []Edge) float64 {
	var w float64
	for _, e := range es {
		w += e.Score
	}
	return w
}

// validMatching asserts one-to-one use of both endpoint sets and that
// every output edge exists in the input.
func validMatching(t *testing.T, in, out []Edge) {
	t.Helper()
	have := map[Edge]bool{}
	for _, e := range in {
		have[e] = true
	}
	usedQ := map[int]bool{}
	usedID := map[int64]bool{}
	for _, e := range out {
		if !have[e] {
			t.Fatalf("assignment invented edge %+v", e)
		}
		if usedQ[e.Q] || usedID[e.ID] {
			t.Fatalf("assignment reused an endpoint: %+v", e)
		}
		usedQ[e.Q], usedID[e.ID] = true, true
	}
}

// bruteForceMax computes the maximum-weight matching by exhaustive
// recursion — the oracle for small graphs.
func bruteForceMax(es []Edge) float64 {
	var rec func(i int, usedQ map[int]bool, usedID map[int64]bool) float64
	rec = func(i int, usedQ map[int]bool, usedID map[int64]bool) float64 {
		if i == len(es) {
			return 0
		}
		// Skip edge i.
		best := rec(i+1, usedQ, usedID)
		e := es[i]
		if !usedQ[e.Q] && !usedID[e.ID] {
			usedQ[e.Q], usedID[e.ID] = true, true
			if w := e.Score + rec(i+1, usedQ, usedID); w > best {
				best = w
			}
			delete(usedQ, e.Q)
			delete(usedID, e.ID)
		}
		return best
	}
	return rec(0, map[int]bool{}, map[int64]bool{})
}

func TestAssignGreedyUniqueMapping(t *testing.T) {
	edges := []Edge{
		{Q: 0, ID: 10, Score: 0.9},
		{Q: 0, ID: 11, Score: 0.8},
		{Q: 1, ID: 10, Score: 0.85},
		{Q: 2, ID: 12, Score: 0.95},
	}
	got := Greedy(edges)
	// Best-first: (2,12) then (0,10); (1,10) and (0,11) reuse endpoints.
	expect := []Edge{{Q: 2, ID: 12, Score: 0.95}, {Q: 0, ID: 10, Score: 0.9}}
	if !reflect.DeepEqual(got, expect) {
		t.Fatalf("greedy picked %+v, want %+v", got, expect)
	}
	validMatching(t, edges, got)
}

func TestAssignBipartiteBeatsGreedyOnContention(t *testing.T) {
	// Greedy takes (0,a)=0.9 and strands query 1; the optimum pairs
	// (0,b)=0.8 with (1,a)=0.85.
	edges := []Edge{
		{Q: 0, ID: 100, Score: 0.9},
		{Q: 0, ID: 101, Score: 0.8},
		{Q: 1, ID: 100, Score: 0.85},
	}
	g := Greedy(edges)
	b := Bipartite(edges)
	validMatching(t, edges, g)
	validMatching(t, edges, b)
	if gw, bw := totalWeight(g), totalWeight(b); !(bw > gw) {
		t.Fatalf("bipartite weight %v not above greedy %v", bw, gw)
	}
	if w := totalWeight(b); w < 1.6499 || w > 1.6501 {
		t.Fatalf("bipartite total %v, want 1.65", w)
	}
}

func TestAssignBipartiteOracleQuick(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 2654435761))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		var edges []Edge
		for q := 0; q < n; q++ {
			for c := 0; c < m; c++ {
				if rng.Intn(3) == 0 {
					continue // sparse
				}
				// Quantized scores force weight ties.
				s := float64(1+rng.Intn(20)) / 20
				edges = append(edges, Edge{Q: q, ID: int64(100 + c), Score: s})
			}
		}
		got := Bipartite(edges)
		validMatching(t, edges, got)
		want := bruteForceMax(edges)
		if g := totalWeight(got); g < want-1e-9 || g > want+1e-9 {
			t.Fatalf("trial %d: bipartite weight %v, brute force %v (edges %+v)", trial, g, want, edges)
		}
		if gw := totalWeight(Greedy(edges)); gw > want+1e-9 {
			t.Fatalf("trial %d: greedy weight %v exceeds optimum %v", trial, gw, want)
		}
		// Determinism: a shuffled copy of the same edges decides
		// identically.
		shuf := append([]Edge(nil), edges...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		if again := Bipartite(shuf); !reflect.DeepEqual(again, got) {
			t.Fatalf("trial %d: bipartite not order-independent:\n %+v\n %+v", trial, got, again)
		}
	}
}
