package match

import (
	"sync"

	"erfilter/internal/entity"
	"erfilter/internal/metrics"
	"erfilter/internal/online"
)

// Writer is the insert side a Dirty clusterer drives — satisfied by
// the serving layer's resolver wrappers (volatile, durable, sharded).
type Writer interface {
	InsertBatch(batch [][]entity.Attribute) ([]int64, error)
}

// InsertDecision is the dirty-mode answer for one inserted entity: its
// assigned id, the matches that decided for it, and the canonical id
// of the duplicate cluster it landed in (its own id when unmatched).
type InsertDecision struct {
	ID      int64
	Cluster int64
	Matches []Decision // Query is the batch-local index of the insert
}

// Dirty maintains dirty-ER duplicate clusters over decided matches:
// every insert is first decided against the pre-insert snapshot, then
// applied, then unioned with its matches — all under one lock, so the
// cluster state observes inserts in exactly insertion order. Decisions
// here are NOT one-to-one: a new entity unions with every resident
// entity it matches (they are all its duplicates), which is what makes
// the incremental closure equal to the batch union-find over the same
// decided pairs.
//
// With a pair-local scorer and an ε-join filter the decided-pair set is
// itself pair-local ("filter similarity >= eps AND scorer similarity >=
// t"), so Rebuild — run after a snapshot load or WAL replay, when
// insertion order is gone — reconstructs the identical clusters by
// walking resident ids in ascending order. Cardinality-cut filters
// (kNN-join, FlatKNN) still cluster usefully but the replayed closure
// can differ where the cut hid a pair; DESIGN.md §15 records the
// trade-off.
type Dirty struct {
	mu  sync.Mutex
	dec *Decider
	cl  *Clusters
}

// NewDirty wraps a decider with dirty-ER cluster maintenance.
func NewDirty(dec *Decider) *Dirty {
	return &Dirty{dec: dec, cl: NewClusters()}
}

// Decider returns the underlying decider (for stats).
func (d *Dirty) Decider() *Decider { return d.dec }

// InsertBatch inserts the batch one entity at a time: each entity is
// decided against the snapshot that precedes it (so an entity can match
// earlier members of its own batch, but never itself), inserted, and
// unioned with its matches. snapFn must return the writer's current
// snapshot; opt tunes candidate generation (zero = resolver defaults).
func (d *Dirty) InsertBatch(w Writer, snapFn func() Snapshot, batch [][]entity.Attribute, opt online.QueryOptions) ([]InsertDecision, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]InsertDecision, 0, len(batch))
	for i, attrs := range batch {
		matches := d.decideOne(snapFn(), attrs, i, opt)
		ids, err := w.InsertBatch([][]entity.Attribute{attrs})
		if err != nil {
			return out, err
		}
		id := ids[0]
		d.cl.Add(id)
		for _, m := range matches {
			d.cl.Union(id, m.ID)
		}
		cluster, _, _ := d.cl.ClusterOf(id)
		out = append(out, InsertDecision{ID: id, Cluster: cluster, Matches: matches})
	}
	return out, nil
}

// decideOne scores one entity against the snapshot and returns every
// resident match at or above the threshold, best first. The scored
// pairs feed the decider's telemetry like any decided batch.
func (d *Dirty) decideOne(snap Snapshot, attrs []entity.Attribute, q int, opt online.QueryOptions) []Decision {
	cands, _ := snap.QueryBatch([][]entity.Attribute{attrs}, opt)
	if len(cands) == 0 || len(cands[0]) == 0 {
		return nil
	}
	tel := d.dec.tel
	tel.pairs.Add(int64(len(cands[0])))
	qt := d.dec.rcfg.TextOf(attrs)
	var edges []Edge
	for _, c := range cands[0] {
		ca, ok := snap.Attrs(c.ID)
		if !ok {
			continue
		}
		tel.comparisons.Inc()
		if sim := d.dec.cfg.Scorer.Sim(qt, d.dec.rcfg.TextOf(ca)); sim >= d.dec.cfg.Threshold {
			edges = append(edges, Edge{Q: q, ID: c.ID, Score: sim})
		}
	}
	tel.decisions.Add(int64(len(edges)))
	sortEdges(edges)
	return toDecisions(edges)
}

// Delete drops an id from its cluster; see Clusters.Remove for the
// bridge caveat.
func (d *Dirty) Delete(id int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cl.Remove(id)
}

// ClusterOf returns the canonical cluster id and sorted members for a
// resident entity.
func (d *Dirty) ClusterOf(id int64) (int64, []int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cl.ClusterOf(id)
}

// Stats snapshots the cluster summary.
func (d *Dirty) Stats() ClusterStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cl.Stats()
}

// Rebuild reconstructs the clusters from scratch over the resident
// collection — the recovery path after a snapshot load or a WAL
// replay, where insertion order is unrecoverable. ids must be every
// resident id in ascending order (Resolver.IDs). Each id is decided
// against the full snapshot and unioned with its matches below itself:
// for pair-local decisions this reproduces the insert-time closure
// exactly, because "decide i against everything inserted before i" and
// "decide i against everything, keep partners < i" select the same
// pairs.
func (d *Dirty) Rebuild(snap Snapshot, ids []int64, opt online.QueryOptions) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cl = NewClusters()
	for _, id := range ids {
		attrs, ok := snap.Attrs(id)
		if !ok {
			continue
		}
		d.cl.Add(id)
		for _, m := range d.decideOne(snap, attrs, 0, opt) {
			if m.ID < id {
				d.cl.Union(id, m.ID)
			}
		}
	}
}

// RegisterMetrics exposes the cluster-size gauges.
func (d *Dirty) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("match_clusters",
		"Duplicate clusters (size >= 2) tracked in dirty mode.", nil,
		func() float64 { return float64(d.Stats().Clusters) })
	reg.GaugeFunc("match_clustered_entities",
		"Entities inside duplicate clusters in dirty mode.", nil,
		func() float64 { return float64(d.Stats().Clustered) })
	reg.GaugeFunc("match_cluster_max_size",
		"Largest duplicate cluster tracked in dirty mode.", nil,
		func() float64 { return float64(d.Stats().MaxSize) })
}
