package match

import "sort"

// Edge is one thresholded candidate pair: query index Q on the left,
// resident entity ID on the right, scored by the decider's scorer.
type Edge struct {
	Q     int
	ID    int64
	Score float64
}

// sortEdges orders edges canonically: score descending, then query
// index ascending, then entity id ascending. Every assignment consumes
// and produces this order, which is what makes decisions byte-identical
// across shard counts: identical candidate lists give identical edge
// lists give identical matchings.
func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Q != b.Q {
			return a.Q < b.Q
		}
		return a.ID < b.ID
	})
}

// Greedy resolves the edge list into a one-to-one matching best-first:
// walk the edges in canonical order and keep each edge whose endpoints
// are both still free. The input is not modified.
func Greedy(edges []Edge) []Edge {
	es := append([]Edge(nil), edges...)
	sortEdges(es)
	usedQ := make(map[int]bool, len(es))
	usedID := make(map[int64]bool, len(es))
	out := make([]Edge, 0, len(es))
	for _, e := range es {
		if usedQ[e.Q] || usedID[e.ID] {
			continue
		}
		usedQ[e.Q], usedID[e.ID] = true, true
		out = append(out, e)
	}
	return out
}

// Bipartite resolves the edge list into an exact maximum-weight
// one-to-one matching (vertices may stay unmatched; with all edge
// weights positive the optimum never benefits from leaving a usable
// edge on the table unless an endpoint is contended). The input is not
// modified and the output is in canonical edge order.
//
// The graph induced by a candidate batch is a disjoint union of small
// components — most queries share no candidates — so the edges are
// split into connected components first and the Hungarian algorithm
// runs per component on a dense cost matrix with one zero-cost dummy
// column per row (the "stay unmatched" option). Weights enter as
// negated scores, so the minimum-cost assignment is the maximum-weight
// matching.
func Bipartite(edges []Edge) []Edge {
	if len(edges) == 0 {
		return nil
	}
	es := append([]Edge(nil), edges...)
	sortEdges(es)

	// Union-find over left (query) nodes keyed by query index; right
	// nodes attach through the edges that mention them.
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	byID := map[int64]int{} // entity id -> representative query index
	for _, e := range es {
		if _, ok := parent[e.Q]; !ok {
			parent[e.Q] = e.Q
		}
		if q, ok := byID[e.ID]; ok {
			union(e.Q, q)
		} else {
			byID[e.ID] = e.Q
		}
	}

	groups := map[int][]Edge{}
	var roots []int
	for _, e := range es {
		r := find(e.Q)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], e)
	}
	sort.Ints(roots)

	var out []Edge
	for _, r := range roots {
		out = append(out, assignComponent(groups[r])...)
	}
	sortEdges(out)
	return out
}

// assignComponent runs the exact assignment over one connected
// component, whose edges arrive in canonical order.
func assignComponent(es []Edge) []Edge {
	// Index the component's queries and entity ids densely,
	// preserving canonical order for determinism.
	qIdx := map[int]int{}
	idIdx := map[int64]int{}
	var qs []int
	var ids []int64
	for _, e := range es {
		if _, ok := qIdx[e.Q]; !ok {
			qIdx[e.Q] = len(qs)
			qs = append(qs, e.Q)
		}
		if _, ok := idIdx[e.ID]; !ok {
			idIdx[e.ID] = len(ids)
			ids = append(ids, e.ID)
		}
	}
	n, m := len(qs), len(ids)
	if n == 1 {
		// Single query: the best edge wins outright (es is sorted).
		return []Edge{es[0]}
	}

	// Dense cost matrix: columns 0..m-1 are the entity ids, columns
	// m..m+n-1 are per-row dummies (row i may take only dummy m+i, at
	// cost 0 — the unmatched option). Non-edges cost a large finite
	// penalty so the potentials arithmetic stays exact enough.
	const nonEdge = 1e9
	cols := m + n
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, cols)
		for j := range cost[i] {
			cost[i][j] = nonEdge
		}
		cost[i][m+i] = 0
	}
	best := make([][]float64, n) // dedupe parallel edges: keep the best
	for i := range best {
		best[i] = make([]float64, m)
		for j := range best[i] {
			best[i][j] = -1
		}
	}
	for _, e := range es {
		i, j := qIdx[e.Q], idIdx[e.ID]
		if e.Score > best[i][j] {
			best[i][j] = e.Score
			cost[i][j] = -e.Score
		}
	}

	match := hungarian(cost)

	var out []Edge
	for i, j := range match {
		if j >= 0 && j < m && best[i][j] >= 0 {
			out = append(out, Edge{Q: qs[i], ID: ids[j], Score: best[i][j]})
		}
	}
	return out
}

// hungarian solves the rectangular assignment problem (rows n <= cols)
// by the standard potentials formulation, returning the column chosen
// for each row. O(n^2 * cols) — components are small, so this is cheap.
func hungarian(cost [][]float64) []int {
	n := len(cost)
	cols := len(cost[0])
	const inf = 1e18
	u := make([]float64, n+1)
	v := make([]float64, cols+1)
	p := make([]int, cols+1)   // p[j] = row assigned to column j (1-based; 0 = none)
	way := make([]int, cols+1) // back-pointers of the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, cols+1)
		used := make([]bool, cols+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0, delta, j1 := p[j0], inf, -1
			for j := 1; j <= cols; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= cols; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for j := 1; j <= cols; j++ {
		if p[j] > 0 {
			match[p[j]-1] = j - 1
		}
	}
	return match
}
