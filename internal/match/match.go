// Package match turns the resolver's filtered candidates into decided
// matches — the post-filter stage of the entity-resolution pipeline the
// paper's filtering benchmark feeds. A Decider scores each (query,
// candidate) pair with a rule-based similarity, keeps the pairs that
// reach a decision threshold, and resolves the survivors into a
// one-to-one matching (clean-clean ER, after Papadakis et al.'s
// bipartite-graph matching evaluation) — greedily, or by exact
// maximum-weight bipartite assignment. A Dirty wrapper maintains the
// transitive closure of decided matches within a single collection
// (dirty ER): each insert returns its own duplicate cluster, tracked
// incrementally under the writer lock and rebuilt deterministically
// after a snapshot load or WAL replay.
//
// Everything operates on immutable epoch snapshots, so deciding is as
// lock-free as querying: a batch is decided against one snapshot, and
// the sharded scatter-gather path is byte-identical to a single
// resolver holding the union of the shards (the candidate merge is
// proven identical upstream, and every stage here is a deterministic
// function of the candidate lists).
package match

import (
	"fmt"

	"erfilter/internal/matching"
)

// Scorer identifies the pair-local similarity that decides a candidate
// pair. The corpus-dependent TF-IDF cosine of internal/matching is
// deliberately absent: a decision must depend only on the two texts, or
// incremental dirty-ER clusters could not survive replay (the corpus at
// replay time differs from the corpus at insert time).
type Scorer int

const (
	// ScoreJaroWinkler is the default: the Jaro-Winkler similarity,
	// the customary choice for short entity descriptions.
	ScoreJaroWinkler Scorer = iota
	// ScoreJaro is the Jaro similarity without the prefix boost.
	ScoreJaro
	// ScoreLevenshtein is the normalized Levenshtein similarity.
	ScoreLevenshtein
	// ScoreTokenJaccard is the Jaccard similarity of the token sets.
	ScoreTokenJaccard
)

// String implements fmt.Stringer.
func (s Scorer) String() string {
	switch s {
	case ScoreJaroWinkler:
		return "jaro-winkler"
	case ScoreJaro:
		return "jaro"
	case ScoreLevenshtein:
		return "levenshtein"
	case ScoreTokenJaccard:
		return "token-jaccard"
	}
	return "unknown"
}

// ParseScorer parses a scorer name as spelled by String.
func ParseScorer(s string) (Scorer, error) {
	switch s {
	case "jaro-winkler", "":
		return ScoreJaroWinkler, nil
	case "jaro":
		return ScoreJaro, nil
	case "levenshtein":
		return ScoreLevenshtein, nil
	case "token-jaccard":
		return ScoreTokenJaccard, nil
	}
	return 0, fmt.Errorf("unknown scorer %q (want jaro-winkler, jaro, levenshtein or token-jaccard)", s)
}

// Sim scores one pair of texts in [0, 1]. Pure and pair-local: the
// score depends only on the two arguments.
func (s Scorer) Sim(a, b string) float64 {
	m := matching.Matcher{Similarity: s.similarity()}
	return m.Sim(a, b)
}

func (s Scorer) similarity() matching.Similarity {
	switch s {
	case ScoreJaro:
		return matching.SimJaro
	case ScoreLevenshtein:
		return matching.SimLevenshtein
	case ScoreTokenJaccard:
		return matching.SimTokenJaccard
	}
	return matching.SimJaroWinkler
}

// Assign identifies the one-to-one assignment algorithm run over the
// thresholded pair graph.
type Assign int

const (
	// AssignGreedy picks edges best-first, skipping any that reuse an
	// endpoint — Papadakis et al.'s unique-mapping heuristic.
	AssignGreedy Assign = iota
	// AssignBipartite computes an exact maximum-weight bipartite
	// matching over the thresholded edges.
	AssignBipartite
)

// String implements fmt.Stringer.
func (a Assign) String() string {
	if a == AssignBipartite {
		return "bipartite"
	}
	return "greedy"
}

// ParseAssign parses an assignment name as spelled by String.
func ParseAssign(s string) (Assign, error) {
	switch s {
	case "greedy", "":
		return AssignGreedy, nil
	case "bipartite":
		return AssignBipartite, nil
	}
	return 0, fmt.Errorf("unknown assignment %q (want greedy or bipartite)", s)
}

// DefaultThreshold is the decision threshold applied when a Config
// leaves it zero.
const DefaultThreshold = 0.85

// Config fixes a Decider's scorer, decision threshold and assignment
// algorithm.
type Config struct {
	Scorer    Scorer
	Threshold float64 // decide a pair when scorer similarity >= this
	Assign    Assign
}

// Normalize fills zero values with the defaults.
func (c Config) Normalize() Config {
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	return c
}

// Validate rejects thresholds outside (0, 1].
func (c Config) Validate() error {
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("match threshold must be in (0, 1], got %g", c.Threshold)
	}
	return nil
}

// Describe renders the configuration for logs and stats.
func (c Config) Describe() string {
	return fmt.Sprintf("%s>=%.2f assign=%s", c.Scorer, c.Threshold, c.Assign)
}
