package match

import (
	"reflect"
	"testing"
)

func TestClustersCanonicalMinID(t *testing.T) {
	c := NewClusters()
	for _, id := range []int64{5, 9, 3, 7} {
		c.Add(id)
	}
	c.Union(9, 5)
	c.Union(7, 9) // {5,7,9} regardless of union order
	root, members, ok := c.ClusterOf(7)
	if !ok || root != 5 {
		t.Fatalf("ClusterOf(7) = (%d, %v, %v), want root 5", root, members, ok)
	}
	if !reflect.DeepEqual(members, []int64{5, 7, 9}) {
		t.Fatalf("members %v, want [5 7 9]", members)
	}
	if root3, _, _ := c.ClusterOf(3); root3 != 3 {
		t.Fatalf("singleton 3 got root %d", root3)
	}
	s := c.Stats()
	if s.Entities != 4 || s.Clusters != 1 || s.Clustered != 3 || s.MaxSize != 3 {
		t.Fatalf("stats %+v", s)
	}
}

func TestClustersRemoveKeepsRemainder(t *testing.T) {
	c := NewClusters()
	c.Union(1, 2)
	c.Union(2, 3)
	c.Remove(1) // 1 was the canonical id
	if _, _, ok := c.ClusterOf(1); ok {
		t.Fatal("removed id still resolves")
	}
	root, members, ok := c.ClusterOf(3)
	if !ok || root != 2 || !reflect.DeepEqual(members, []int64{2, 3}) {
		t.Fatalf("after remove: (%d, %v, %v), want (2, [2 3], true)", root, members, ok)
	}
	// Re-adding revives the id as part of its old cluster (ids are
	// never reused upstream; this pins the structure's own contract).
	c.Add(1)
	if root, _, _ := c.ClusterOf(3); root != 1 {
		t.Fatalf("revived cluster root %d, want 1", root)
	}
}
