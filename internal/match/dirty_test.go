package match

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"erfilter/internal/dedup"
	"erfilter/internal/entity"
	"erfilter/internal/faultfs"
	"erfilter/internal/online"
)

// dirtyTexts generates a dirty collection: each record is a noisy copy
// of one of a few bases, so duplicate clusters form naturally.
func dirtyText(rng *rand.Rand, i int) string {
	base := corpus[rng.Intn(len(corpus))]
	switch rng.Intn(3) {
	case 0:
		return base
	case 1:
		return base + " refurbished"
	default:
		return fmt.Sprintf("%s lot %d", base, i%5)
	}
}

// volatileWriter adapts a plain resolver to the Dirty writer seam.
type volatileWriter struct{ r *online.Resolver }

func (w volatileWriter) InsertBatch(b [][]entity.Attribute) ([]int64, error) {
	return w.r.InsertBatch(b), nil
}

// batchClusterOracle computes dirty-ER clusters from scratch over the
// given residents: a fresh resolver is batch-built over the survivors
// (no WAL, no segments, no replay), every entity is decided against its
// full snapshot, and the decided pairs — canonicalized through
// internal/dedup — are closed under a plain union-find. The incremental
// and recovered cluster states must match this exactly (the filter is
// an ε-join and the scorer pair-local, so decisions are pair-local).
func batchClusterOracle(cfg online.Config, mcfg Config, ents map[int64][]entity.Attribute) map[int64]int64 {
	ids := make([]int64, 0, len(ents))
	for id := range ents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r := online.NewResolver(cfg)
	batch := make([][]entity.Attribute, len(ids))
	for i, id := range ids {
		batch[i] = ents[id]
	}
	r.InsertAssigned(ids, batch)

	snap := r.Snapshot()
	var pairs []dedup.Pair
	for _, id := range ids {
		qt := cfg.TextOf(ents[id])
		cands, _ := snap.QueryBatch([][]entity.Attribute{ents[id]}, online.QueryOptions{})
		for _, c := range cands[0] {
			if c.ID == id {
				continue
			}
			attrs, ok := snap.Attrs(c.ID)
			if !ok {
				continue
			}
			if mcfg.Scorer.Sim(qt, cfg.TextOf(attrs)) >= mcfg.Threshold {
				if p, ok := dedup.Canon(int32(id), int32(c.ID)); ok {
					pairs = append(pairs, p)
				}
			}
		}
	}
	// Union-find closure, canonical root = min id.
	parent := map[int64]int64{}
	for _, id := range ids {
		parent[id] = id
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range pairs {
		a, b := find(int64(p.A)), find(int64(p.B))
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	out := make(map[int64]int64, len(ids))
	for _, id := range ids {
		out[id] = find(id)
	}
	return out
}

// clustersOf flattens a Dirty's state to id -> canonical cluster id.
func clustersOf(d *Dirty, ids []int64) map[int64]int64 {
	out := make(map[int64]int64, len(ids))
	for _, id := range ids {
		root, _, ok := d.ClusterOf(id)
		if !ok {
			continue
		}
		out[id] = root
	}
	return out
}

func sameClusters(t *testing.T, label string, got, want map[int64]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d clustered ids, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for id, root := range want {
		if got[id] != root {
			t.Fatalf("%s: id %d in cluster %d, want %d\n got: %v\nwant: %v", label, id, got[id], root, got, want)
		}
	}
}

// TestDirtyIncrementalEqualsBatch pins the dirty-ER core property: the
// clusters maintained insert-by-insert (each entity decided against the
// snapshot preceding it) equal the batch union-find oracle computed
// from scratch over the final collection — including after deletes.
func TestDirtyIncrementalEqualsBatch(t *testing.T) {
	cfg := epsCfg()
	mcfg := Config{Scorer: ScoreJaroWinkler, Threshold: 0.9}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 6364136223846793005))
		r := online.NewResolver(cfg)
		d := NewDirty(NewDecider(mcfg, cfg))
		model := map[int64][]entity.Attribute{}
		var live []int64
		for op := 0; op < 120; op++ {
			if rng.Intn(5) == 0 && len(live) > 0 {
				j := rng.Intn(len(live))
				id := live[j]
				live = append(live[:j], live[j+1:]...)
				r.Delete(id)
				d.Delete(id)
				delete(model, id)
				continue
			}
			n := 1 + rng.Intn(3)
			batch := make([][]entity.Attribute, n)
			for i := range batch {
				batch[i] = attrsText(dirtyText(rng, op*3+i))
			}
			decs, err := d.InsertBatch(volatileWriter{r}, func() Snapshot { return r.Snapshot() }, batch, online.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for i, dec := range decs {
				model[dec.ID] = batch[i]
				live = append(live, dec.ID)
			}
			op += n - 1
		}
		// Deletes can orphan cluster bridges incrementally; rebuild to
		// the exact closure first (the documented contract), then
		// compare with the batch oracle.
		d.Rebuild(r.Snapshot(), r.IDs(), online.QueryOptions{})
		got := clustersOf(d, r.IDs())
		want := batchClusterOracle(cfg, mcfg, model)
		sameClusters(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDirtyIncrementalNoDeletes pins the stronger claim available when
// nothing is deleted: the purely incremental cluster state (no rebuild)
// already equals the batch oracle.
func TestDirtyIncrementalNoDeletes(t *testing.T) {
	cfg := epsCfg()
	mcfg := Config{Scorer: ScoreJaroWinkler, Threshold: 0.9}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*31 + 7))
		r := online.NewResolver(cfg)
		d := NewDirty(NewDecider(mcfg, cfg))
		model := map[int64][]entity.Attribute{}
		for op := 0; op < 90; op++ {
			batch := [][]entity.Attribute{attrsText(dirtyText(rng, op))}
			decs, err := d.InsertBatch(volatileWriter{r}, func() Snapshot { return r.Snapshot() }, batch, online.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			model[decs[0].ID] = batch[0]
		}
		got := clustersOf(d, r.IDs())
		want := batchClusterOracle(cfg, mcfg, model)
		sameClusters(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestDirtyCrashRecovery is the dirty-ER durability gate: inserts flow
// through a durable store with fault-injected fsyncs; after a crash
// that tears the un-fsynced WAL tail, the store recovers the acked
// survivors, the clusters are rebuilt over the recovered snapshot, and
// the result must equal the batch union-find oracle computed from
// scratch over exactly those survivors.
func TestDirtyCrashRecovery(t *testing.T) {
	cfg := epsCfg()
	mcfg := Config{Scorer: ScoreJaroWinkler, Threshold: 0.9}
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			m := faultfs.NewMem()
			s, err := online.OpenStore("store", cfg, online.StoreOptions{FS: m, SegmentBytes: 512})
			if err != nil {
				t.Fatalf("open store: %v", err)
			}
			d := NewDirty(NewDecider(mcfg, cfg))
			m.LimitWrites(int64(300 + rng.Intn(5000)))

			model := map[int64][]entity.Attribute{} // acked inserts
			var live []int64
			crashed := false
			for op := 0; op < 100 && !crashed; op++ {
				if rng.Intn(5) == 0 && len(live) > 0 {
					j := rng.Intn(len(live))
					id := live[j]
					ok, err := s.Delete(id)
					if err != nil {
						crashed = true
						break
					}
					if !ok {
						t.Fatalf("delete of resident %d reported missing", id)
					}
					d.Delete(id)
					live = append(live[:j], live[j+1:]...)
					delete(model, id)
					continue
				}
				batch := [][]entity.Attribute{attrsText(dirtyText(rng, op))}
				decs, err := d.InsertBatch(s, func() Snapshot { return s.Resolver().Snapshot() }, batch, online.QueryOptions{})
				if err != nil {
					crashed = true
					break
				}
				model[decs[0].ID] = batch[0]
				live = append(live, decs[0].ID)
			}
			if !crashed {
				if err := s.Close(); err != nil {
					t.Fatalf("clean close: %v", err)
				}
			}
			// Power failure: tear a random amount of the un-fsynced tail.
			m.Crash()
			m.Restart(func(name string, unsynced int) int { return rng.Intn(unsynced + 1) })

			s2, err := online.OpenStore("store", cfg, online.StoreOptions{FS: m})
			if err != nil {
				t.Fatalf("recovery failed (crashed=%v): %v", crashed, err)
			}
			defer s2.Close()

			ids := s2.Resolver().IDs()
			if len(ids) != len(model) {
				t.Fatalf("recovered %d residents, want %d acked", len(ids), len(model))
			}
			d2 := NewDirty(NewDecider(mcfg, cfg))
			d2.Rebuild(s2.Resolver().Snapshot(), ids, online.QueryOptions{})
			got := clustersOf(d2, ids)
			want := batchClusterOracle(cfg, mcfg, model)
			sameClusters(t, fmt.Sprintf("trial %d (crashed=%v)", trial, crashed), got, want)
		})
	}
}
