package match

import "sort"

// Clusters is a union-find over decided matches: the transitive closure
// of "these two entities matched" within one collection — dirty ER's
// duplicate clusters. The canonical cluster id is the smallest member
// id, which is stable under any union order, so incremental maintenance
// and a from-scratch rebuild name every cluster identically.
//
// Not safe for concurrent use; the Dirty wrapper serializes access
// under its writer lock.
type Clusters struct {
	parent  map[int64]int64   // union-find forest (roots self-parent)
	members map[int64][]int64 // root -> present members, unsorted
	minID   map[int64]int64   // root -> canonical (smallest) member id
	present map[int64]bool    // ids not removed by a delete
}

// NewClusters returns an empty cluster set.
func NewClusters() *Clusters {
	return &Clusters{
		parent:  make(map[int64]int64),
		members: make(map[int64][]int64),
		minID:   make(map[int64]int64),
		present: make(map[int64]bool),
	}
}

// Add registers an id as its own singleton cluster; a no-op when the
// id is already tracked (re-adding a removed id revives it).
func (c *Clusters) Add(id int64) {
	if _, ok := c.parent[id]; !ok {
		c.parent[id] = id
		c.members[id] = []int64{id}
		c.minID[id] = id
	}
	if !c.present[id] {
		c.present[id] = true
		r := c.find(id)
		found := false
		for _, m := range c.members[r] {
			if m == id {
				found = true
				break
			}
		}
		if !found {
			c.members[r] = append(c.members[r], id)
		}
		if c.minID[r] < 0 || id < c.minID[r] {
			c.minID[r] = id
		}
	}
}

func (c *Clusters) find(id int64) int64 {
	for c.parent[id] != id {
		c.parent[id] = c.parent[c.parent[id]]
		id = c.parent[id]
	}
	return id
}

// Union merges the clusters of a and b (adding either if unseen).
func (c *Clusters) Union(a, b int64) {
	c.Add(a)
	c.Add(b)
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	// Merge the smaller member list into the larger.
	if len(c.members[ra]) < len(c.members[rb]) {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	c.members[ra] = append(c.members[ra], c.members[rb]...)
	if c.minID[rb] < c.minID[ra] {
		c.minID[ra] = c.minID[rb]
	}
	delete(c.members, rb)
	delete(c.minID, rb)
}

// Remove drops an id from its cluster (a delete). The remaining members
// stay together even when the removed id was the bridge that joined
// them — the standard incremental dirty-ER compromise; a Rebuild over
// the surviving collection recomputes the exact closure.
func (c *Clusters) Remove(id int64) {
	if !c.present[id] {
		return
	}
	c.present[id] = false
	r := c.find(id)
	ms := c.members[r]
	for i, m := range ms {
		if m == id {
			ms[i] = ms[len(ms)-1]
			c.members[r] = ms[:len(ms)-1]
			break
		}
	}
	if id == c.minID[r] {
		min := int64(-1)
		for _, m := range c.members[r] {
			if min < 0 || m < min {
				min = m
			}
		}
		c.minID[r] = min // -1 when the cluster emptied; unseen from outside
	}
}

// ClusterOf returns the canonical cluster id and the sorted members of
// the cluster containing id; ok is false when id is not present.
func (c *Clusters) ClusterOf(id int64) (cluster int64, members []int64, ok bool) {
	if !c.present[id] {
		return 0, nil, false
	}
	r := c.find(id)
	members = append([]int64(nil), c.members[r]...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return c.minID[r], members, true
}

// ClusterStats summarizes the cluster set for stats and gauges. Only
// clusters with two or more members count as duplicates.
type ClusterStats struct {
	Entities  int `json:"entities"`   // present ids
	Clusters  int `json:"clusters"`   // clusters of size >= 2
	Clustered int `json:"clustered"`  // entities in those clusters
	MaxSize   int `json:"max_size"`   // largest cluster
}

// Stats computes the current summary.
func (c *Clusters) Stats() ClusterStats {
	var s ClusterStats
	for _, ms := range c.members {
		n := len(ms)
		if n == 0 {
			continue
		}
		s.Entities += n
		if n >= 2 {
			s.Clusters++
			s.Clustered += n
		}
		if n > s.MaxSize {
			s.MaxSize = n
		}
	}
	return s
}
