package knn

import "erfilter/internal/vector"

// productQuantizer implements the asymmetric-hashing (AH) scoring of the
// SCANN analog: vectors are split into m contiguous subspaces, each
// subspace is quantized with its own small k-means codebook, and queries
// are scored against the codes through per-subspace lookup tables built
// once per query ("asymmetric": the query stays exact, only the database
// side is quantized).
type productQuantizer struct {
	m         int            // number of subspaces
	subdim    int            // dimensions per subspace (last one may be shorter)
	codebooks [][]vector.Vec // [subspace][code] -> centroid
	codes     [][]uint8      // [vector][subspace] -> code
}

// pqCodebookSize is the number of centroids per subspace codebook (one
// byte codes, the standard 16-centroid codebook of 4-bit AH doubled for
// accuracy would be 16; we use 16 as in SCANN's default AH config).
const pqCodebookSize = 16

// newProductQuantizer trains codebooks over the vectors and encodes them.
func newProductQuantizer(vecs []vector.Vec, m int, seed uint64) *productQuantizer {
	dim := len(vecs[0])
	if m > dim {
		m = dim
	}
	pq := &productQuantizer{m: m, subdim: (dim + m - 1) / m}
	pq.codebooks = make([][]vector.Vec, m)
	pq.codes = make([][]uint8, len(vecs))
	for i := range pq.codes {
		pq.codes[i] = make([]uint8, m)
	}
	for s := 0; s < m; s++ {
		lo := s * pq.subdim
		hi := lo + pq.subdim
		if hi > dim {
			hi = dim
		}
		sub := make([]vector.Vec, len(vecs))
		for i, v := range vecs {
			sub[i] = v[lo:hi]
		}
		km := kmeans(sub, pqCodebookSize, 8, seed+uint64(s)*0x100000001b3)
		pq.codebooks[s] = km.centroids
		for i := range vecs {
			pq.codes[i][s] = uint8(km.assign[i])
		}
	}
	return pq
}

// lut builds the per-query lookup table: lut[s][c] is the metric score
// contribution of subspace s when the database code is c.
func (pq *productQuantizer) lut(q vector.Vec, metric Metric) [][]float64 {
	dim := len(q)
	out := make([][]float64, pq.m)
	for s := 0; s < pq.m; s++ {
		lo := s * pq.subdim
		hi := lo + pq.subdim
		if hi > dim {
			hi = dim
		}
		qs := q[lo:hi]
		row := make([]float64, len(pq.codebooks[s]))
		for c, centroid := range pq.codebooks[s] {
			if metric == DotProduct {
				row[c] = -vector.Dot(qs, centroid)
			} else {
				row[c] = vector.L2Sq(qs, centroid)
			}
		}
		out[s] = row
	}
	return out
}

// score sums the lookup-table contributions of one encoded vector.
func (pq *productQuantizer) score(lut [][]float64, id int32) float64 {
	var sum float64
	code := pq.codes[id]
	for s := 0; s < pq.m; s++ {
		sum += lut[s][code[s]]
	}
	return sum
}
