package knn

import (
	"math"

	"erfilter/internal/vector"
)

// kmeansResult holds trained centroids and the assignment of every input
// vector to its nearest centroid.
type kmeansResult struct {
	centroids []vector.Vec
	assign    []int
}

// kmeans runs Lloyd's algorithm with deterministic seeding: the initial
// centroids are the input vectors at stride positions permuted by the seed,
// a cheap stand-in for k-means++ that is reproducible without a shared
// random source. Empty clusters are re-seeded from the farthest point.
func kmeans(vecs []vector.Vec, k, iterations int, seed uint64) *kmeansResult {
	n := len(vecs)
	if k > n {
		k = n
	}
	if k <= 0 {
		k = 1
	}
	dim := len(vecs[0])

	centroids := make([]vector.Vec, k)
	for i := 0; i < k; i++ {
		pick := int(vector.Mix64(uint64(i), seed) % uint64(n))
		centroids[i] = vector.Clone(vecs[pick])
	}

	assign := make([]int, n)
	nearest := func(v vector.Vec) (int, float64) {
		best, bestD := 0, math.Inf(1)
		for c := range centroids {
			if d := vector.L2Sq(v, centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		return best, bestD
	}

	for iter := 0; iter < iterations; iter++ {
		changed := false
		dists := make([]float64, n)
		for i, v := range vecs {
			c, d := nearest(v)
			dists[i] = d
			if assign[i] != c || iter == 0 {
				assign[i] = c
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([]vector.Vec, k)
		for c := range sums {
			sums[c] = make(vector.Vec, dim)
		}
		for i, v := range vecs {
			counts[assign[i]]++
			vector.Add(sums[assign[i]], v)
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster from the farthest point.
				far, farD := 0, -1.0
				for i := range vecs {
					if dists[i] > farD {
						far, farD = i, dists[i]
					}
				}
				centroids[c] = vector.Clone(vecs[far])
				continue
			}
			vector.Scale(sums[c], 1/float32(counts[c]))
			centroids[c] = sums[c]
		}
	}
	// Final assignment against the last centroids.
	for i, v := range vecs {
		assign[i], _ = nearest(v)
	}
	return &kmeansResult{centroids: centroids, assign: assign}
}
