package knn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"erfilter/internal/vector"
)

// The HNSW graph section is serialized in the same style as the online
// snapshot-v2 container: a magic header, little-endian fixed-width
// fields, and a trailing CRC-32C over everything before it. The stream
// is self-delimiting (every array is counted), so it can be embedded
// inline in a larger stream: Load reads exactly the bytes Save wrote.
const hnswMagic = "ERHNSW\x01\n"

// Codec sanity bounds: a corrupt length field must not trigger an
// enormous allocation before the CRC check gets a chance to reject it.
const (
	maxHNSWSlots = 1 << 27
	maxHNSWDim   = 1 << 16
	maxHNSWM     = 1 << 10
	maxHNSWEf    = 1 << 20
)

var hnswCRC = crc32.MakeTable(crc32.Castagnoli)

type hnswWriter struct {
	w   io.Writer
	crc uint32
	err error
	buf [8]byte
}

func (w *hnswWriter) bytes(p []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, hnswCRC, p)
	_, w.err = w.w.Write(p)
}

func (w *hnswWriter) u8(v uint8) {
	w.buf[0] = v
	w.bytes(w.buf[:1])
}

func (w *hnswWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.bytes(w.buf[:4])
}

func (w *hnswWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.bytes(w.buf[:8])
}

func (w *hnswWriter) trailer() {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(w.buf[:4], w.crc)
	_, w.err = w.w.Write(w.buf[:4])
}

type hnswReader struct {
	r   io.Reader
	crc uint32
	buf [8]byte
}

func (r *hnswReader) bytes(p []byte) error {
	if _, err := io.ReadFull(r.r, p); err != nil {
		return fmt.Errorf("knn: truncated hnsw snapshot: %w", err)
	}
	r.crc = crc32.Update(r.crc, hnswCRC, p)
	return nil
}

func (r *hnswReader) u8() (uint8, error) {
	if err := r.bytes(r.buf[:1]); err != nil {
		return 0, err
	}
	return r.buf[0], nil
}

func (r *hnswReader) u32() (uint32, error) {
	if err := r.bytes(r.buf[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(r.buf[:4]), nil
}

func (r *hnswReader) u64() (uint64, error) {
	if err := r.bytes(r.buf[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(r.buf[:8]), nil
}

func (r *hnswReader) checkTrailer() error {
	want := r.crc
	if _, err := io.ReadFull(r.r, r.buf[:4]); err != nil {
		return fmt.Errorf("knn: truncated hnsw snapshot: %w", err)
	}
	if got := binary.LittleEndian.Uint32(r.buf[:4]); got != want {
		return fmt.Errorf("knn: hnsw snapshot checksum mismatch (stored %08x, computed %08x)", got, want)
	}
	return nil
}

// Save serializes the snapshot — graph structure, vectors and tombstones
// — to w. The output is a pure function of the snapshot's state, so two
// indexes built by the same op sequence save byte-identically.
func (s *HNSWSnapshot) Save(w io.Writer) error {
	hw := &hnswWriter{w: w}
	hw.bytes([]byte(hnswMagic))
	hw.u8(uint8(s.metric))
	hw.u32(uint32(s.p.M))
	hw.u32(uint32(s.p.EfConstruction))
	hw.u32(uint32(s.p.EfSearch))
	hw.u64(s.p.Seed)
	dim := 0
	if len(s.vecs) > 0 {
		dim = len(s.vecs[0])
	}
	hw.u32(uint32(dim))
	hw.u32(uint32(len(s.ids)))
	hw.u32(uint32(s.entry + 1))
	hw.u32(uint32(s.maxL + 1))
	for slot := range s.ids {
		hw.u64(uint64(s.ids[slot]))
		if s.live[slot] {
			hw.u8(1)
		} else {
			hw.u8(0)
		}
		for _, f := range s.vecs[slot] {
			hw.u32(math.Float32bits(f))
		}
		hw.u8(uint8(len(s.links[slot])))
		for _, layer := range s.links[slot] {
			hw.u32(uint32(len(layer)))
			for _, n := range layer {
				hw.u32(uint32(n))
			}
		}
	}
	hw.trailer()
	return hw.err
}

// Save serializes the index's current state (see HNSWSnapshot.Save).
func (h *IncHNSW) Save(w io.Writer) error { return h.Freeze().Save(w) }

// LoadHNSW reads an index previously written by Save, restoring slots,
// tombstones and adjacency verbatim. Every structural invariant the
// search paths rely on is validated — and the trailing checksum verified
// — before anything is returned: a truncated or corrupted stream yields
// (nil, error), never a half-built graph.
func LoadHNSW(r io.Reader) (*IncHNSW, error) {
	hr := &hnswReader{r: r}
	magic := make([]byte, len(hnswMagic))
	if err := hr.bytes(magic); err != nil {
		return nil, err
	}
	if string(magic) != hnswMagic {
		return nil, fmt.Errorf("knn: not an hnsw snapshot (bad magic)")
	}
	m8, err := hr.u8()
	if err != nil {
		return nil, err
	}
	if m8 > uint8(L2Squared) {
		return nil, fmt.Errorf("knn: hnsw snapshot has unknown metric %d", m8)
	}
	var p HNSWParams
	mm, err := hr.u32()
	if err != nil {
		return nil, err
	}
	efc, err := hr.u32()
	if err != nil {
		return nil, err
	}
	efs, err := hr.u32()
	if err != nil {
		return nil, err
	}
	if p.Seed, err = hr.u64(); err != nil {
		return nil, err
	}
	if mm == 0 || mm > maxHNSWM {
		return nil, fmt.Errorf("knn: hnsw snapshot M %d out of range", mm)
	}
	if efc == 0 || efc > maxHNSWEf {
		return nil, fmt.Errorf("knn: hnsw snapshot efConstruction %d out of range", efc)
	}
	if efs == 0 || efs > maxHNSWEf {
		return nil, fmt.Errorf("knn: hnsw snapshot efSearch %d out of range", efs)
	}
	p.M, p.EfConstruction, p.EfSearch = int(mm), int(efc), int(efs)
	dim32, err := hr.u32()
	if err != nil {
		return nil, err
	}
	nslots32, err := hr.u32()
	if err != nil {
		return nil, err
	}
	entry32, err := hr.u32()
	if err != nil {
		return nil, err
	}
	maxL32, err := hr.u32()
	if err != nil {
		return nil, err
	}
	dim, nslots := int(dim32), int(nslots32)
	if dim > maxHNSWDim {
		return nil, fmt.Errorf("knn: hnsw snapshot dim %d out of range", dim)
	}
	if nslots > maxHNSWSlots {
		return nil, fmt.Errorf("knn: hnsw snapshot slot count %d out of range", nslots)
	}
	entry := int32(entry32) - 1
	maxL := int(maxL32) - 1
	if nslots == 0 {
		if dim != 0 || entry != -1 || maxL != -1 {
			return nil, fmt.Errorf("knn: empty hnsw snapshot with nonempty header")
		}
	} else {
		if dim == 0 {
			return nil, fmt.Errorf("knn: hnsw snapshot with %d slots but dim 0", nslots)
		}
		if entry < 0 || int(entry) >= nslots {
			return nil, fmt.Errorf("knn: hnsw snapshot entry %d out of range", entry)
		}
		if maxL < 0 || maxL > maxHNSWLevel {
			return nil, fmt.Errorf("knn: hnsw snapshot max level %d out of range", maxL)
		}
	}
	// Grow by appending rather than trusting the claimed count: a corrupt
	// nslots must not allocate gigabytes before the stream runs dry.
	initCap := nslots
	if initCap > 4096 {
		initCap = 4096
	}
	h := NewIncHNSW(Metric(m8), p)
	h.ids = make([]int64, 0, initCap)
	h.vecs = make([]vector.Vec, 0, initCap)
	h.live = make([]bool, 0, initCap)
	h.links = make([][][]int32, 0, initCap)
	h.ownGen = make([]uint64, 0, initCap)
	h.slotOf = make(map[int64]int32, initCap)
	h.entry = entry
	h.maxL = maxL
	for slot := 0; slot < nslots; slot++ {
		id, err := hr.u64()
		if err != nil {
			return nil, err
		}
		h.ids = append(h.ids, int64(id))
		lv, err := hr.u8()
		if err != nil {
			return nil, err
		}
		if lv > 1 {
			return nil, fmt.Errorf("knn: hnsw snapshot slot %d has bad tombstone byte %d", slot, lv)
		}
		h.live = append(h.live, lv == 1)
		if lv == 1 {
			if _, dup := h.slotOf[h.ids[slot]]; dup {
				return nil, fmt.Errorf("knn: hnsw snapshot has duplicate live id %d", h.ids[slot])
			}
			h.slotOf[h.ids[slot]] = int32(slot)
		} else {
			h.dead++
		}
		v := make(vector.Vec, dim)
		for i := range v {
			bits, err := hr.u32()
			if err != nil {
				return nil, err
			}
			v[i] = math.Float32frombits(bits)
		}
		h.vecs = append(h.vecs, v)
		nlayers, err := hr.u8()
		if err != nil {
			return nil, err
		}
		if nlayers == 0 || int(nlayers) > maxL+1 {
			return nil, fmt.Errorf("knn: hnsw snapshot slot %d has %d layers (max level %d)", slot, nlayers, maxL)
		}
		layers := make([][]int32, nlayers)
		for l := range layers {
			cnt, err := hr.u32()
			if err != nil {
				return nil, err
			}
			bound := p.M
			if l == 0 {
				bound = 2 * p.M
			}
			if int(cnt) > bound {
				return nil, fmt.Errorf("knn: hnsw snapshot slot %d layer %d has %d links (bound %d)", slot, l, cnt, bound)
			}
			layer := make([]int32, cnt)
			for i := range layer {
				n, err := hr.u32()
				if err != nil {
					return nil, err
				}
				if int(n) >= nslots {
					return nil, fmt.Errorf("knn: hnsw snapshot slot %d links to missing slot %d", slot, n)
				}
				layer[i] = int32(n)
			}
			layers[l] = layer
		}
		h.links = append(h.links, layers)
		h.ownGen = append(h.ownGen, 0)
	}
	if err := hr.checkTrailer(); err != nil {
		return nil, err
	}
	// Structural invariants the search paths index by without checking:
	// the entry point carries the top layer, no node exceeds it, and a
	// layer's links only lead to nodes that exist on that layer.
	if nslots > 0 {
		if len(h.links[entry]) != maxL+1 {
			return nil, fmt.Errorf("knn: hnsw snapshot entry %d has %d layers, want %d", entry, len(h.links[entry]), maxL+1)
		}
		for slot := range h.links {
			if len(h.links[slot]) > maxL+1 {
				return nil, fmt.Errorf("knn: hnsw snapshot slot %d above max level", slot)
			}
			for l, layer := range h.links[slot] {
				for _, n := range layer {
					if len(h.links[n]) <= l {
						return nil, fmt.Errorf("knn: hnsw snapshot slot %d layer %d links to slot %d absent from that layer", slot, l, n)
					}
				}
			}
		}
	}
	return h, nil
}
