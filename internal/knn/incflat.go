package knn

import (
	"container/heap"
	"fmt"
	"sort"

	"erfilter/internal/vector"
)

// IncResult is one search hit of an incremental flat index: the external
// id of an indexed vector and its metric-normalized score (smaller is
// better).
type IncResult struct {
	ID    int64
	Score float64
}

// IncFlat is the incremental variant of the exact Flat index: vectors are
// added and removed under stable external int64 ids, deletions are
// tombstones reclaimed by Compact, and Freeze publishes an immutable
// snapshot for lock-free concurrent searches.
//
// Selection is fully determined by (score, id): a candidate displaces the
// current k-th best only if it scores strictly better or ties with a
// smaller id. Because the batch Flat scores vectors in position order and
// breaks ties by position, a snapshot search equals a batch Flat search
// over the surviving vectors laid out in ascending-id order — which is
// slot order whenever ids are added monotonically, the discipline the
// online resolver follows (the equivalence tests check exactly this).
//
// An IncFlat is a single-writer structure: Add, Remove, Compact and
// Freeze must be externally serialized. Snapshots stay valid forever.
type IncFlat struct {
	metric Metric
	vecs   []vector.Vec // slot → vector (retained, not copied)
	ids    []int64      // slot → external id
	live   []bool       // slot → not tombstoned
	dead   int
	slotOf map[int64]int32
}

// NewIncFlat returns an empty incremental flat index under the metric.
func NewIncFlat(metric Metric) *IncFlat {
	return &IncFlat{metric: metric, slotOf: make(map[int64]int32)}
}

// Len returns the number of live (non-tombstoned) vectors.
func (f *IncFlat) Len() int { return len(f.ids) - f.dead }

// Dead returns the number of tombstoned slots awaiting compaction.
func (f *IncFlat) Dead() int { return f.dead }

// Add indexes the vector under the external id. The vector is retained,
// not copied; callers must not mutate it afterwards. It is an error to
// add an id that is currently indexed.
func (f *IncFlat) Add(id int64, v vector.Vec) error {
	if _, ok := f.slotOf[id]; ok {
		return fmt.Errorf("knn: id %d already indexed", id)
	}
	slot := int32(len(f.ids))
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, v)
	f.live = append(f.live, true)
	f.slotOf[id] = slot
	return nil
}

// Remove tombstones the vector indexed under id, reporting whether it was
// present.
func (f *IncFlat) Remove(id int64) bool {
	slot, ok := f.slotOf[id]
	if !ok {
		return false
	}
	delete(f.slotOf, id)
	f.live[slot] = false
	f.dead++
	return true
}

// Compact rewrites the index without tombstoned slots, preserving the
// survivors' relative order. Arrays are freshly allocated, so frozen
// snapshots remain valid.
func (f *IncFlat) Compact() {
	if f.dead == 0 {
		return
	}
	n := len(f.ids) - f.dead
	ids := make([]int64, 0, n)
	vecs := make([]vector.Vec, 0, n)
	live := make([]bool, n)
	for slot := range f.ids {
		if !f.live[slot] {
			continue
		}
		ids = append(ids, f.ids[slot])
		vecs = append(vecs, f.vecs[slot])
	}
	for i := range live {
		live[i] = true
	}
	f.ids, f.vecs, f.live, f.dead = ids, vecs, live, 0
	slotOf := make(map[int64]int32, len(ids))
	for slot, id := range ids {
		slotOf[id] = int32(slot)
	}
	f.slotOf = slotOf
}

// Freeze publishes an immutable point-in-time snapshot sharing the
// append-only vector and id arrays (later appends land strictly beyond
// the snapshot's recorded lengths) and copying the tombstone bits, the
// only state mutated in place.
func (f *IncFlat) Freeze() *FlatSnapshot {
	return &FlatSnapshot{
		metric: f.metric,
		vecs:   f.vecs[:len(f.vecs):len(f.vecs)],
		ids:    f.ids[:len(f.ids):len(f.ids)],
		live:   append([]bool(nil), f.live...),
		count:  f.Len(),
	}
}

// FlatSnapshot is an immutable view of an IncFlat at one instant; any
// number of goroutines may call Search concurrently.
type FlatSnapshot struct {
	metric Metric
	vecs   []vector.Vec
	ids    []int64
	live   []bool
	count  int
}

// Len returns the number of live vectors visible to the snapshot.
func (s *FlatSnapshot) Len() int { return s.count }

// Search returns the k best-scoring live vectors, best first (score
// ascending, ties by ascending id). Fewer are returned when the snapshot
// holds fewer than k live vectors.
func (s *FlatSnapshot) Search(q vector.Vec, k int) []IncResult {
	if k <= 0 {
		return nil
	}
	h := &incTopK{k: k}
	for slot, v := range s.vecs {
		if !s.live[slot] {
			continue
		}
		h.offer(s.ids[slot], s.metric.score(q, v))
	}
	out := append([]IncResult(nil), h.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// incTopK keeps the k lexicographically smallest (score, id) results in a
// max-heap, making the selection independent of scan order.
type incTopK struct {
	k     int
	items []IncResult
}

func (h *incTopK) Len() int { return len(h.items) }
func (h *incTopK) Less(i, j int) bool {
	if h.items[i].Score != h.items[j].Score {
		return h.items[i].Score > h.items[j].Score
	}
	return h.items[i].ID > h.items[j].ID
}
func (h *incTopK) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *incTopK) Push(x interface{}) { h.items = append(h.items, x.(IncResult)) }
func (h *incTopK) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

func (h *incTopK) offer(id int64, score float64) {
	if len(h.items) < h.k {
		heap.Push(h, IncResult{ID: id, Score: score})
		return
	}
	worst := h.items[0]
	if score < worst.Score || (score == worst.Score && id < worst.ID) {
		h.items[0] = IncResult{ID: id, Score: score}
		heap.Fix(h, 0)
	}
}
