package knn

import (
	"bytes"
	"testing"
)

// hnswSnapshotBytes builds a small but structurally rich graph (several
// layers, tombstones, a compaction in the middle) and returns its
// serialization. n trades richness against corpus size: the every-bit
// test wants the stream short, the truncation test can afford more.
func hnswSnapshotBytes(t testing.TB, n int64) []byte {
	t.Helper()
	idx := NewIncHNSW(L2Squared, HNSWParams{M: 4, Seed: 5})
	for i := int64(0); i < n; i++ {
		if err := idx.Add(i, hnswVec(uint64(i)+31, 6)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < n; i += 7 {
		idx.Remove(i)
	}
	idx.Compact()
	for i := n; i < n+n/3; i++ {
		if err := idx.Add(i, hnswVec(uint64(i)+31, 6)); err != nil {
			t.Fatal(err)
		}
	}
	for i := n + 2; i < n+n/3; i += 5 {
		idx.Remove(i)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHNSWLoadRejectsEveryTruncation: every proper prefix of a valid
// snapshot must fail to load — cleanly, never a panic or a partial graph.
func TestHNSWLoadRejectsEveryTruncation(t *testing.T) {
	data := hnswSnapshotBytes(t, 48)
	for n := 0; n < len(data); n++ {
		idx, err := LoadHNSW(bytes.NewReader(data[:n]))
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded successfully", n, len(data))
		}
		if idx != nil {
			t.Fatalf("truncation to %d bytes returned a non-nil index alongside %v", n, err)
		}
	}
}

// TestHNSWLoadRejectsEveryBitFlip: flipping any single bit anywhere in
// the snapshot must fail the load (the CRC covers everything before the
// trailer; the trailer is checked against the recomputed CRC).
func TestHNSWLoadRejectsEveryBitFlip(t *testing.T) {
	data := hnswSnapshotBytes(t, 15)
	mut := make([]byte, len(data))
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			copy(mut, data)
			mut[i] ^= 1 << bit
			idx, err := LoadHNSW(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d loaded successfully", i, bit)
			}
			if idx != nil {
				t.Fatalf("bit flip at byte %d bit %d returned a non-nil index", i, bit)
			}
		}
	}
}

// FuzzLoadHNSW drives arbitrary bytes through the loader. Invariants: no
// panic, and anything accepted must re-save to exactly the bytes it was
// loaded from (the codec is canonical and self-delimiting, so trailing
// garbage past the stream is simply not consumed).
func FuzzLoadHNSW(f *testing.F) {
	valid := hnswSnapshotBytes(f, 24)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte(hnswMagic))
	f.Add([]byte{})
	empty := func() []byte {
		var buf bytes.Buffer
		if err := NewIncHNSW(DotProduct, HNSWParams{}).Save(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(empty)
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := LoadHNSW(bytes.NewReader(data))
		if err != nil {
			if idx != nil {
				t.Fatal("error with non-nil index")
			}
			return
		}
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			t.Fatalf("accepted snapshot failed to re-save: %v", err)
		}
		out := buf.Bytes()
		if len(out) > len(data) || !bytes.Equal(out, data[:len(out)]) {
			t.Fatalf("accepted snapshot did not round-trip: %d bytes in, %d out", len(data), len(out))
		}
	})
}
