package knn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"

	"erfilter/internal/vector"
)

// HNSWParams are the tuning knobs of an incremental HNSW index. The zero
// value selects the same defaults as the batch HNSW (M=16, beam widths
// 100/64, seed 0).
type HNSWParams struct {
	// M is the maximum number of neighbors per node per layer (2M at
	// layer 0); 0 selects 16.
	M int
	// EfConstruction is the beam width during insertion; 0 selects 100.
	EfConstruction int
	// EfSearch is the default beam width during queries; 0 selects 64.
	EfSearch int
	// Seed drives the deterministic level assignment.
	Seed uint64
}

// Normalized returns the params with defaults filled in — the concrete
// values an index built from them will actually run with (and persist).
func (p HNSWParams) Normalized() HNSWParams { return p.withDefaults() }

func (p HNSWParams) withDefaults() HNSWParams {
	if p.M <= 0 {
		p.M = 16
	}
	if p.EfConstruction <= 0 {
		p.EfConstruction = 100
	}
	if p.EfSearch <= 0 {
		p.EfSearch = 64
	}
	return p
}

// IncHNSW is the incremental variant of the batch HNSW graph, mirroring
// IncFlat's contract: vectors are added and removed under stable external
// int64 ids, deletions are tombstones reclaimed by Compact, and Freeze
// publishes an immutable snapshot for lock-free concurrent searches.
//
// Tombstoned nodes stay in the graph as routing waypoints — search
// traverses them but never returns them — so deletions cannot sever the
// navigable small-world structure. Compact rebuilds the graph from
// scratch over the survivors; because a node's layer is a pure function
// of (external id, seed), every survivor keeps its layer across the
// rebuild.
//
// An IncHNSW is a single-writer structure: Add, Remove, Compact and
// Freeze must be externally serialized. Snapshots stay valid forever:
// Freeze copies the per-node adjacency headers lazily (a generation
// counter marks which nodes the writer still owns; the first post-freeze
// mutation of a node copies its layer table), while the id, vector and
// link backing arrays are shared append-only.
type IncHNSW struct {
	metric  Metric
	p       HNSWParams
	levelML float64

	ids    []int64      // slot → external id
	vecs   []vector.Vec // slot → vector (retained, not copied)
	live   []bool       // slot → not tombstoned
	links  [][][]int32  // slot → layer → neighbor slots
	ownGen []uint64     // slot → freeze generation that owns links[slot]
	gen    uint64       // current freeze generation
	dead   int
	slotOf map[int64]int32
	entry  int32
	maxL   int

	vis *visitSet // construction scratch
}

// NewIncHNSW returns an empty incremental HNSW index under the metric.
func NewIncHNSW(metric Metric, p HNSWParams) *IncHNSW {
	p = p.withDefaults()
	return &IncHNSW{
		metric:  metric,
		p:       p,
		levelML: 1 / math.Log(float64(p.M)),
		slotOf:  make(map[int64]int32),
		entry:   -1,
		maxL:    -1,
		vis:     &visitSet{},
	}
}

// Params returns the index's normalized tuning knobs.
func (h *IncHNSW) Params() HNSWParams { return h.p }

// Metric returns the metric the index ranks under.
func (h *IncHNSW) Metric() Metric { return h.metric }

// Len returns the number of live (non-tombstoned) vectors.
func (h *IncHNSW) Len() int { return len(h.ids) - h.dead }

// Dead returns the number of tombstoned slots awaiting compaction.
func (h *IncHNSW) Dead() int { return h.dead }

// Has reports whether id is currently indexed (live).
func (h *IncHNSW) Has(id int64) bool {
	_, ok := h.slotOf[id]
	return ok
}

// Dim returns the dimensionality of the indexed vectors (0 when empty).
func (h *IncHNSW) Dim() int {
	if len(h.vecs) == 0 {
		return 0
	}
	return len(h.vecs[0])
}

// claim takes writer ownership of slot's layer table before a mutation.
// Snapshots share the table published at freeze time; the first mutation
// after a freeze copies the layer headers so in-place neighbor appends
// and prune replacements stay invisible to every published snapshot.
// (Appends into a shared neighbor backing array land strictly beyond any
// snapshot's recorded length, so the int32 contents need no copy.)
func (h *IncHNSW) claim(s int32) {
	if h.ownGen[s] == h.gen {
		return
	}
	h.links[s] = append([][]int32(nil), h.links[s]...)
	h.ownGen[s] = h.gen
}

// Add indexes the vector under the external id. The vector is retained,
// not copied; callers must not mutate it afterwards. It is an error to
// add an id that is currently indexed.
func (h *IncHNSW) Add(id int64, v vector.Vec) error {
	if _, ok := h.slotOf[id]; ok {
		return fmt.Errorf("knn: id %d already indexed", id)
	}
	slot := int32(len(h.ids))
	level := levelFor(uint64(id)+1, h.p.Seed, h.levelML)
	h.ids = append(h.ids, id)
	h.vecs = append(h.vecs, v)
	h.live = append(h.live, true)
	h.links = append(h.links, make([][]int32, level+1))
	h.ownGen = append(h.ownGen, h.gen)
	h.slotOf[id] = slot
	h.insertLinks(slot, level)
	return nil
}

func (h *IncHNSW) insertLinks(slot int32, level int) {
	if h.entry < 0 {
		h.entry = slot
		h.maxL = level
		return
	}
	g := hnswView{metric: h.metric, vecs: h.vecs, links: h.links}
	q := h.vecs[slot]
	ep := []cand{{id: h.entry, d: g.dist(q, h.entry)}}
	for l := h.maxL; l > level; l-- {
		ep = g.searchLayer(q, ep, 1, l, h.vis)
	}
	top := level
	if top > h.maxL {
		top = h.maxL
	}
	for l := top; l >= 0; l-- {
		found := g.searchLayer(q, ep, h.p.EfConstruction, l, h.vis)
		m := h.p.M
		if l == 0 {
			m = 2 * h.p.M
		}
		neighbors := selectNeighbors(found, m, func(a, b int32) float64 {
			return h.metric.score(h.vecs[a], h.vecs[b])
		})
		for _, n := range neighbors {
			h.links[slot][l] = append(h.links[slot][l], n.id)
			h.claim(n.id)
			h.links[n.id][l] = append(h.links[n.id][l], slot)
			if len(h.links[n.id][l]) > m {
				h.pruneSlot(n.id, l, m)
			}
		}
		ep = found
	}
	if level > h.maxL {
		h.maxL = level
		h.entry = slot
	}
}

// pruneSlot trims an over-connected claimed slot's layer links back to
// m with the same diversity heuristic as insertion (see selectNeighbors
// in hnsw.go), relative to the slot's own vector.
func (h *IncHNSW) pruneSlot(s int32, layer, m int) {
	links := h.links[s][layer]
	cands := make([]cand, 0, len(links))
	for _, n := range links {
		cands = append(cands, cand{id: n, d: h.metric.score(h.vecs[s], h.vecs[n])})
	}
	sortCands(cands)
	sel := selectNeighbors(cands, m, func(a, b int32) float64 {
		return h.metric.score(h.vecs[a], h.vecs[b])
	})
	kept := make([]int32, 0, m)
	for _, c := range sel {
		kept = append(kept, c.id)
	}
	h.links[s][layer] = kept
}

// Remove tombstones the vector indexed under id, reporting whether it
// was present. The node stays in the graph as a routing waypoint until
// the next Compact.
func (h *IncHNSW) Remove(id int64) bool {
	slot, ok := h.slotOf[id]
	if !ok {
		return false
	}
	delete(h.slotOf, id)
	h.live[slot] = false
	h.dead++
	return true
}

// Compact rebuilds the graph from scratch over the survivors in slot
// order. Arrays are freshly allocated, so frozen snapshots remain valid;
// levels are a pure function of (id, seed), so every survivor keeps its
// layer.
func (h *IncHNSW) Compact() {
	if h.dead == 0 {
		return
	}
	ids, vecs, live := h.ids, h.vecs, h.live
	n := len(ids) - h.dead
	h.ids = make([]int64, 0, n)
	h.vecs = make([]vector.Vec, 0, n)
	h.live = make([]bool, 0, n)
	h.links = make([][][]int32, 0, n)
	h.ownGen = make([]uint64, 0, n)
	h.slotOf = make(map[int64]int32, n)
	h.dead = 0
	h.entry = -1
	h.maxL = -1
	for slot := range ids {
		if !live[slot] {
			continue
		}
		if err := h.Add(ids[slot], vecs[slot]); err != nil {
			// Unreachable: live ids are unique by construction.
			panic(err)
		}
	}
}

// Freeze publishes an immutable point-in-time snapshot. The id, vector
// and adjacency-header arrays are shared (the writer copies a node's
// headers before its first post-freeze mutation — see claim); the
// tombstone bits are copied.
func (h *IncHNSW) Freeze() *HNSWSnapshot {
	h.gen++
	return &HNSWSnapshot{
		metric: h.metric,
		p:      h.p,
		ids:    h.ids[:len(h.ids):len(h.ids)],
		vecs:   h.vecs[:len(h.vecs):len(h.vecs)],
		live:   append([]bool(nil), h.live...),
		links:  append([][][]int32(nil), h.links...),
		entry:  h.entry,
		maxL:   h.maxL,
		count:  h.Len(),
	}
}

// HNSWSnapshot is an immutable view of an IncHNSW at one instant; any
// number of goroutines may call the Search methods concurrently.
type HNSWSnapshot struct {
	metric Metric
	p      HNSWParams
	ids    []int64
	vecs   []vector.Vec
	live   []bool
	links  [][][]int32
	entry  int32
	maxL   int
	count  int
}

// Len returns the number of live vectors visible to the snapshot.
func (s *HNSWSnapshot) Len() int { return s.count }

// Search returns (approximately) the k best-scoring live vectors, best
// first (score ascending, ties by ascending id), using the index's
// default beam width.
func (s *HNSWSnapshot) Search(q vector.Vec, k int) []IncResult {
	return s.SearchEf(q, k, 0)
}

// SearchEf is Search with an explicit beam width; ef <= 0 selects the
// index default, and the beam is never narrower than k. Wider beams
// raise recall at the cost of latency.
func (s *HNSWSnapshot) SearchEf(q vector.Vec, k, ef int) []IncResult {
	if k <= 0 || s.entry < 0 || s.count == 0 {
		return nil
	}
	if ef <= 0 {
		ef = s.p.EfSearch
	}
	if ef < k {
		ef = k
	}
	g := hnswView{metric: s.metric, vecs: s.vecs, links: s.links}
	vis := visitPool.Get().(*visitSet)
	defer visitPool.Put(vis)
	ep := []cand{{id: s.entry, d: g.dist(q, s.entry)}}
	for l := s.maxL; l > 0; l-- {
		ep = g.searchLayer(q, ep, 1, l, vis)
	}
	found := g.searchLive(q, s.live, ep, ef, vis)
	sort.Slice(found, func(i, j int) bool {
		if found[i].d != found[j].d {
			return found[i].d < found[j].d
		}
		return s.ids[found[i].id] < s.ids[found[j].id]
	})
	if len(found) > k {
		found = found[:k]
	}
	out := make([]IncResult, len(found))
	for i, c := range found {
		out[i] = IncResult{ID: s.ids[c.id], Score: c.d}
	}
	return out
}

// SearchExact brute-force scans the snapshot's live vectors, returning
// exactly what a FlatSnapshot over the same (id, vector, tombstone)
// state would: the k lexicographically smallest (score, id) results.
func (s *HNSWSnapshot) SearchExact(q vector.Vec, k int) []IncResult {
	if k <= 0 {
		return nil
	}
	h := &incTopK{k: k}
	for slot, v := range s.vecs {
		if !s.live[slot] {
			continue
		}
		h.offer(s.ids[slot], s.metric.score(q, v))
	}
	out := append([]IncResult(nil), h.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// hnswView bundles the arrays both the writer (during construction) and
// snapshots (during queries) search over.
type hnswView struct {
	metric Metric
	vecs   []vector.Vec
	links  [][][]int32
}

func (g hnswView) dist(q vector.Vec, s int32) float64 {
	return g.metric.score(q, g.vecs[s])
}

// searchLayer runs a best-first beam search of width ef on one layer,
// starting from the given entry points. Returns the ef closest nodes,
// best first. Tombstones are ignored: construction and upper-layer
// descent route through every node.
func (g hnswView) searchLayer(q vector.Vec, entries []cand, ef, layer int, vis *visitSet) []cand {
	vis.reset(len(g.links))
	frontier := candMinHeap{}
	results := candMaxHeap{}
	for _, e := range entries {
		if vis.testAndSet(e.id) {
			continue
		}
		heap.Push(&frontier, e)
		heap.Push(&results, e)
	}
	for frontier.Len() > 0 {
		cur := heap.Pop(&frontier).(cand)
		if results.Len() >= ef && cur.d > results[0].d {
			break
		}
		for _, n := range g.links[cur.id][layer] {
			if vis.testAndSet(n) {
				continue
			}
			d := g.dist(q, n)
			if results.Len() < ef || d < results[0].d {
				heap.Push(&frontier, cand{id: n, d: d})
				heap.Push(&results, cand{id: n, d: d})
				if results.Len() > ef {
					heap.Pop(&results)
				}
			}
		}
	}
	out := make([]cand, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&results).(cand)
	}
	return out
}

// searchLive is the layer-0 query beam: the frontier traverses
// tombstoned nodes as waypoints, but only live nodes are admitted to the
// result set. When fewer than ef live nodes have been found the beam
// keeps expanding, so deletions degrade latency before they degrade
// recall.
func (g hnswView) searchLive(q vector.Vec, live []bool, entries []cand, ef int, vis *visitSet) []cand {
	vis.reset(len(g.links))
	frontier := candMinHeap{}
	results := candMaxHeap{}
	for _, e := range entries {
		if vis.testAndSet(e.id) {
			continue
		}
		heap.Push(&frontier, e)
		if live[e.id] {
			heap.Push(&results, e)
		}
	}
	for frontier.Len() > 0 {
		cur := heap.Pop(&frontier).(cand)
		if results.Len() >= ef && cur.d > results[0].d {
			break
		}
		for _, n := range g.links[cur.id][0] {
			if vis.testAndSet(n) {
				continue
			}
			d := g.dist(q, n)
			if results.Len() < ef || d < results[0].d {
				heap.Push(&frontier, cand{id: n, d: d})
				if live[n] {
					heap.Push(&results, cand{id: n, d: d})
					if results.Len() > ef {
						heap.Pop(&results)
					}
				}
			}
		}
	}
	out := make([]cand, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&results).(cand)
	}
	return out
}

// visitSet is a round-stamped visited marker: reset is O(1) (a round
// bump) until the uint32 round wraps. One instance serves all the layer
// searches of a single insert or query.
type visitSet struct {
	mark  []uint32
	round uint32
}

func (v *visitSet) reset(n int) {
	if len(v.mark) < n {
		v.mark = make([]uint32, n)
		v.round = 1
		return
	}
	v.round++
	if v.round == 0 {
		for i := range v.mark {
			v.mark[i] = 0
		}
		v.round = 1
	}
}

func (v *visitSet) testAndSet(i int32) bool {
	if v.mark[i] == v.round {
		return true
	}
	v.mark[i] = v.round
	return false
}

// visitPool recycles query-path visit sets across searches (snapshots
// are immutable, so the scratch cannot live on them).
var visitPool = sync.Pool{New: func() interface{} { return &visitSet{} }}
