package knn

import (
	"math"

	"erfilter/internal/vector"
)

// maxHNSWLevel caps the top layer any node can be assigned. With the
// geometric layer distribution the cap is effectively unreachable (it
// would need a 2^-53 draw under M=2), but it turns the snapshot codec's
// per-node layer count into a hard, validatable bound.
const maxHNSWLevel = 60

// levelFor draws the top layer for a node as a pure function of (key,
// seed): the geometric distribution of Malkov & Yashunin sampled from a
// splitmix64 hash of the key. Both the batch and the incremental HNSW
// builds draw levels through this one helper with an explicit seed — no
// global RNG state anywhere — so concurrent builds of the same data are
// identical, and a node re-inserted under the same external id (e.g. by
// rebuild-compaction) lands on the same layer every time.
func levelFor(key, seed uint64, ml float64) int {
	u := float64(vector.Mix64(key, seed)>>11) / (1 << 53)
	if u <= 0 {
		u = 1e-18
	}
	l := int(-math.Log(u) * ml)
	if l > maxHNSWLevel {
		l = maxHNSWLevel
	}
	return l
}
