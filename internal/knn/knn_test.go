package knn

import (
	"math"
	"sort"
	"testing"

	"erfilter/internal/vector"
)

func randomVecs(n, dim int, seed uint64) []vector.Vec {
	out := make([]vector.Vec, n)
	buf := make([]float64, dim)
	for i := range out {
		vector.Gaussian(buf, seed+uint64(i)*31)
		v := make(vector.Vec, dim)
		for j := range v {
			v[j] = float32(buf[j])
		}
		out[i] = vector.Normalize(v)
	}
	return out
}

func naiveSearch(vecs []vector.Vec, q vector.Vec, k int, m Metric) []Result {
	all := make([]Result, len(vecs))
	for i, v := range vecs {
		all[i] = Result{ID: int32(i), Score: m.score(q, v)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score < all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestFlatMatchesNaive(t *testing.T) {
	vecs := randomVecs(100, 24, 1)
	queries := randomVecs(10, 24, 2)
	for _, m := range []Metric{DotProduct, L2Squared} {
		f := NewFlat(vecs, m)
		for _, q := range queries {
			for _, k := range []int{1, 3, 10} {
				got := f.Search(q, k)
				want := naiveSearch(vecs, q, k, m)
				if len(got) != len(want) {
					t.Fatalf("%s k=%d: %d results, want %d", m, k, len(got), len(want))
				}
				for i := range got {
					if got[i].ID != want[i].ID {
						t.Fatalf("%s k=%d pos %d: id %d, want %d", m, k, i, got[i].ID, want[i].ID)
					}
				}
			}
		}
	}
}

func TestFlatSelfNearest(t *testing.T) {
	vecs := randomVecs(50, 16, 3)
	f := NewFlat(vecs, L2Squared)
	for i := range vecs {
		got := f.Search(vecs[i], 1)
		if len(got) != 1 || got[0].ID != int32(i) {
			t.Fatalf("vector %d: nearest = %v", i, got)
		}
	}
}

func TestFlatEdgeCases(t *testing.T) {
	vecs := randomVecs(3, 8, 4)
	f := NewFlat(vecs, DotProduct)
	if got := f.Search(vecs[0], 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := f.Search(vecs[0], 100); len(got) != 3 {
		t.Fatalf("k beyond index size: %d results", len(got))
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestMetricsAgreeOnNormalizedVectors(t *testing.T) {
	vecs := randomVecs(60, 16, 5)
	q := randomVecs(1, 16, 6)[0]
	dp := NewFlat(vecs, DotProduct).Search(q, 5)
	l2 := NewFlat(vecs, L2Squared).Search(q, 5)
	for i := range dp {
		if dp[i].ID != l2[i].ID {
			t.Fatalf("rankings diverge on normalized vectors: %v vs %v", dp, l2)
		}
	}
}

func TestKMeansInvariants(t *testing.T) {
	vecs := randomVecs(80, 8, 7)
	km := kmeans(vecs, 5, 10, 42)
	if len(km.centroids) != 5 {
		t.Fatalf("centroids = %d", len(km.centroids))
	}
	if len(km.assign) != len(vecs) {
		t.Fatalf("assign length = %d", len(km.assign))
	}
	// Every vector is assigned to its nearest centroid.
	for i, v := range vecs {
		best, bestD := 0, math.Inf(1)
		for c := range km.centroids {
			if d := vector.L2Sq(v, km.centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if km.assign[i] != best {
			t.Fatalf("vector %d assigned to %d, nearest is %d", i, km.assign[i], best)
		}
	}
	// No empty clusters in this regime.
	counts := make([]int, 5)
	for _, c := range km.assign {
		counts[c]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
}

func TestKMeansMoreClustersThanPoints(t *testing.T) {
	vecs := randomVecs(3, 4, 8)
	km := kmeans(vecs, 10, 5, 1)
	if len(km.centroids) > 3 {
		t.Fatalf("centroids = %d, want <= 3", len(km.centroids))
	}
}

func TestPartitionedBFHighRecall(t *testing.T) {
	vecs := randomVecs(300, 16, 9)
	queries := randomVecs(30, 16, 10)
	flat := NewFlat(vecs, L2Squared)
	part := NewPartitioned(vecs, PartitionedConfig{Metric: L2Squared, Scoring: BruteForce, Seed: 1})
	hits, total := 0, 0
	for _, q := range queries {
		want := map[int32]bool{}
		for _, r := range flat.Search(q, 5) {
			want[r.ID] = true
		}
		for _, r := range part.Search(q, 5) {
			if want[r.ID] {
				hits++
			}
			total++
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.6 {
		t.Fatalf("partitioned BF recall vs flat = %.2f", recall)
	}
}

func TestPartitionedSelfQuery(t *testing.T) {
	vecs := randomVecs(100, 16, 11)
	part := NewPartitioned(vecs, PartitionedConfig{Metric: L2Squared, Scoring: BruteForce, Seed: 2})
	found := 0
	for i := range vecs {
		rs := part.Search(vecs[i], 1)
		if len(rs) == 1 && rs[0].ID == int32(i) {
			found++
		}
	}
	// The query's own partition always contains it, so self-recall is 1.
	if found != len(vecs) {
		t.Fatalf("self-query found %d/%d", found, len(vecs))
	}
}

func TestPartitionedAHApproximates(t *testing.T) {
	vecs := randomVecs(200, 32, 12)
	queries := randomVecs(20, 32, 13)
	flat := NewFlat(vecs, L2Squared)
	ah := NewPartitioned(vecs, PartitionedConfig{
		Metric: L2Squared, Scoring: AsymmetricHashing, Subspaces: 8, Seed: 3,
	})
	hits, total := 0.0, 0.0
	for _, q := range queries {
		want := map[int32]bool{}
		for _, r := range flat.Search(q, 10) {
			want[r.ID] = true
		}
		for _, r := range ah.Search(q, 10) {
			if want[r.ID] {
				hits++
			}
			total++
		}
	}
	if hits/total < 0.3 {
		t.Fatalf("AH recall@10 vs flat = %.2f, too low", hits/total)
	}
}

func TestProductQuantizerScoresCorrelate(t *testing.T) {
	vecs := randomVecs(100, 16, 14)
	pq := newProductQuantizer(vecs, 4, 9)
	q := randomVecs(1, 16, 15)[0]
	lut := pq.lut(q, L2Squared)
	// Approximate and exact distances must correlate positively: compare
	// the mean approx distance of the 10 exact-nearest vs 10 exact-farthest.
	type pairD struct{ exact, approx float64 }
	all := make([]pairD, len(vecs))
	for i, v := range vecs {
		all[i] = pairD{exact: vector.L2Sq(q, v), approx: pq.score(lut, int32(i))}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].exact < all[j].exact })
	var near, far float64
	for i := 0; i < 10; i++ {
		near += all[i].approx
		far += all[len(all)-1-i].approx
	}
	if near >= far {
		t.Fatalf("PQ scores uncorrelated with exact distances: near=%v far=%v", near, far)
	}
}
