package knn

import (
	"testing"

	"erfilter/internal/vector"
)

func TestHNSWSelfRecall(t *testing.T) {
	vecs := randomVecs(200, 16, 21)
	idx := NewHNSW(vecs, HNSW{Metric: L2Squared, Seed: 1})
	found := 0
	for i := range vecs {
		rs := idx.Search(vecs[i], 1)
		if len(rs) == 1 && rs[0].ID == int32(i) {
			found++
		}
	}
	if found < 195 {
		t.Fatalf("self-recall %d/200", found)
	}
}

func TestHNSWRecallVsFlat(t *testing.T) {
	vecs := randomVecs(400, 24, 22)
	queries := randomVecs(40, 24, 23)
	flat := NewFlat(vecs, L2Squared)
	idx := NewHNSW(vecs, HNSW{Metric: L2Squared, EfSearch: 96, Seed: 2})
	hits, total := 0, 0
	for _, q := range queries {
		want := map[int32]bool{}
		for _, r := range flat.Search(q, 10) {
			want[r.ID] = true
		}
		for _, r := range idx.Search(q, 10) {
			if want[r.ID] {
				hits++
			}
			total++
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.8 {
		t.Fatalf("HNSW recall@10 = %.2f", recall)
	}
}

func TestHNSWResultsSorted(t *testing.T) {
	vecs := randomVecs(100, 8, 24)
	idx := NewHNSW(vecs, HNSW{Metric: L2Squared, Seed: 3})
	rs := idx.Search(randomVecs(1, 8, 25)[0], 10)
	for i := 1; i < len(rs); i++ {
		if rs[i].Score < rs[i-1].Score {
			t.Fatalf("results not sorted: %v", rs)
		}
	}
}

func TestHNSWEdgeCases(t *testing.T) {
	empty := NewHNSW(nil, HNSW{Metric: L2Squared})
	if got := empty.Search(make(vector.Vec, 8), 5); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
	single := NewHNSW(randomVecs(1, 8, 26), HNSW{Metric: L2Squared})
	if got := single.Search(single.vecs[0], 5); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("single-vector index returned %v", got)
	}
	if got := single.Search(single.vecs[0], 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestHNSWDeterministicGivenSeed(t *testing.T) {
	vecs := randomVecs(150, 12, 27)
	q := randomVecs(1, 12, 28)[0]
	a := NewHNSW(vecs, HNSW{Metric: L2Squared, Seed: 9}).Search(q, 5)
	b := NewHNSW(vecs, HNSW{Metric: L2Squared, Seed: 9}).Search(q, 5)
	if len(a) != len(b) {
		t.Fatal("non-deterministic result size")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("non-deterministic results for equal seeds")
		}
	}
}
