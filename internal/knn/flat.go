// Package knn implements the dense-vector kNN search frameworks of Section
// IV-D: an exact Flat index (the FAISS configuration the paper settles on)
// and a partitioned index with brute-force or asymmetric-hashing scoring
// (the SCANN analog), plus the k-means and product-quantization machinery
// the latter needs.
package knn

import (
	"container/heap"
	"sort"

	"erfilter/internal/vector"
)

// Metric selects the similarity of a search: dot product (higher is
// better) or squared Euclidean distance (lower is better). On normalized
// vectors the two produce identical rankings.
type Metric int

// The metrics of the paper's FAISS/SCANN configurations.
const (
	// DotProduct ranks by inner product, descending.
	DotProduct Metric = iota
	// L2Squared ranks by squared Euclidean distance, ascending.
	L2Squared
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	if m == DotProduct {
		return "DP"
	}
	return "L2^2"
}

// score returns a "smaller is better" score for the metric.
func (m Metric) score(q, v vector.Vec) float64 {
	if m == DotProduct {
		return -vector.Dot(q, v)
	}
	return vector.L2Sq(q, v)
}

// Score exposes the metric's raw smaller-is-better score for storage
// tiers that scan vectors outside the knn indexes (the on-disk segment
// reader); it is the exact function every index scores with, which is
// what keeps external scans byte-identical to an index search.
func (m Metric) Score(q, v vector.Vec) float64 { return m.score(q, v) }

// Result is one search hit: the indexed vector's id and its score
// (smaller is better, metric-normalized).
type Result struct {
	ID    int32
	Score float64
}

// Searcher is the query interface shared by all dense indexes.
type Searcher interface {
	// Search returns the k best-scoring indexed vectors for the query,
	// best first. Fewer results are returned when the index is smaller
	// than k.
	Search(q vector.Vec, k int) []Result
}

// Flat is an exact, exhaustive kNN index: every query is scored against
// every indexed vector. It is the analog of FAISS's Flat index, which the
// paper found to dominate the approximate FAISS variants on Problem 1.
type Flat struct {
	vecs   []vector.Vec
	metric Metric
}

// NewFlat indexes the vectors. The slice is retained, not copied.
func NewFlat(vecs []vector.Vec, metric Metric) *Flat {
	return &Flat{vecs: vecs, metric: metric}
}

// Len returns the number of indexed vectors.
func (f *Flat) Len() int { return len(f.vecs) }

// Search implements Searcher with a bounded max-heap selection.
func (f *Flat) Search(q vector.Vec, k int) []Result {
	if k <= 0 {
		return nil
	}
	h := newTopK(k)
	for i, v := range f.vecs {
		h.offer(int32(i), f.metric.score(q, v))
	}
	return h.sorted()
}

// topK keeps the k lexicographically smallest (score, id) results seen so
// far in a max-heap. Breaking score ties by id makes the selected set — not
// just its sorted order — independent of scan order and heap layout, so a
// Flat search is a pure function of the indexed set.
type topK struct {
	k     int
	items []Result
}

func newTopK(k int) *topK { return &topK{k: k} }

func (h *topK) Len() int { return len(h.items) }
func (h *topK) Less(i, j int) bool {
	if h.items[i].Score != h.items[j].Score {
		return h.items[i].Score > h.items[j].Score
	}
	return h.items[i].ID > h.items[j].ID
}
func (h *topK) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topK) Push(x interface{}) { h.items = append(h.items, x.(Result)) }
func (h *topK) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// offer inserts the candidate if it beats the current k-th best under the
// (score, id) order.
func (h *topK) offer(id int32, score float64) {
	if len(h.items) < h.k {
		heap.Push(h, Result{ID: id, Score: score})
		return
	}
	worst := h.items[0]
	if score < worst.Score || (score == worst.Score && id < worst.ID) {
		h.items[0] = Result{ID: id, Score: score}
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into a best-first slice.
func (h *topK) sorted() []Result {
	out := append([]Result(nil), h.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}
