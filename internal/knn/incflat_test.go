package knn

import (
	"sort"
	"testing"
	"testing/quick"

	"erfilter/internal/vector"
)

func mixU64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// vecFrom derives a deterministic 4-d vector. Components come from a
// small integer grid so score ties actually occur and exercise the
// deterministic (score, id) tie-breaking.
func vecFrom(v uint64) vector.Vec {
	v = mixU64(v)
	out := make(vector.Vec, 4)
	for i := range out {
		v = mixU64(v + uint64(i) + 1)
		out[i] = float32(int(v%5)) - 2
	}
	return out
}

// applyVecOps replays a random op sequence against an IncFlat and a
// mirror map of survivors.
func applyVecOps(ops []uint64, metric Metric) (*IncFlat, map[int64]vector.Vec) {
	idx := NewIncFlat(metric)
	m := map[int64]vector.Vec{}
	var nextID int64
	var live []int64
	for _, v := range ops {
		switch {
		case v%5 == 0 && len(live) > 0:
			i := int(mixU64(v) % uint64(len(live)))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if !idx.Remove(id) {
				panic("remove of live id failed")
			}
			delete(m, id)
		case v%11 == 0:
			idx.Compact()
		default:
			id := nextID
			nextID++
			if err := idx.Add(id, vecFrom(v)); err != nil {
				panic(err)
			}
			m[id] = vecFrom(v)
			live = append(live, id)
		}
	}
	return idx, m
}

// TestIncFlatEquivalenceQuick: any Add/Remove/Compact interleaving yields
// snapshot searches identical to a batch Flat index over the survivors in
// ascending-id order.
func TestIncFlatEquivalenceQuick(t *testing.T) {
	prop := func(ops []uint64, qseed uint64) bool {
		for _, metric := range []Metric{DotProduct, L2Squared} {
			idx, m := applyVecOps(ops, metric)
			snap := idx.Freeze()

			ids := make([]int64, 0, len(m))
			for id := range m {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			vecs := make([]vector.Vec, len(ids))
			for i, id := range ids {
				vecs[i] = m[id]
			}
			batch := NewFlat(vecs, metric)

			for qi := 0; qi < 3; qi++ {
				q := vecFrom(qseed + uint64(qi))
				for _, k := range []int{1, 3, 10} {
					inc := snap.Search(q, k)
					ref := batch.Search(q, k)
					if len(inc) != len(ref) {
						return false
					}
					for i := range inc {
						if inc[i].ID != ids[ref[i].ID] || inc[i].Score != ref[i].Score {
							t.Logf("mismatch metric=%v k=%d inc=%v ref=%v ids=%v", metric, k, inc, ref, ids)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestIncFlatSnapshotImmutable pins the RCU contract for the dense index.
func TestIncFlatSnapshotImmutable(t *testing.T) {
	idx := NewIncFlat(L2Squared)
	for i := int64(0); i < 8; i++ {
		if err := idx.Add(i, vecFrom(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := idx.Freeze()
	q := vecFrom(42)
	before := snap.Search(q, 4)

	for i := int64(0); i < 8; i += 2 {
		idx.Remove(i)
	}
	for i := int64(8); i < 100; i++ {
		if err := idx.Add(i, vecFrom(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	idx.Compact()
	after := snap.Search(q, 4)
	if len(before) != len(after) {
		t.Fatalf("snapshot changed: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot changed: %v vs %v", before, after)
		}
	}
	if snap.Len() != 8 {
		t.Fatalf("snapshot Len = %d, want 8", snap.Len())
	}
}

func TestIncFlatBasics(t *testing.T) {
	idx := NewIncFlat(DotProduct)
	if err := idx.Add(3, vector.Vec{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(3, vector.Vec{0, 1, 0, 0}); err == nil {
		t.Fatal("duplicate add must error")
	}
	if idx.Remove(4) {
		t.Fatal("removing absent id must report false")
	}
	if !idx.Remove(3) || idx.Len() != 0 || idx.Dead() != 1 {
		t.Fatalf("remove bookkeeping wrong: len=%d dead=%d", idx.Len(), idx.Dead())
	}
	idx.Compact()
	if idx.Dead() != 0 {
		t.Fatal("compact left tombstones")
	}
	if got := idx.Freeze().Search(vector.Vec{1, 0, 0, 0}, 3); len(got) != 0 {
		t.Fatalf("empty index returned %v", got)
	}
}
