package knn

import (
	"container/heap"
	"math"
	"sort"

	"erfilter/internal/vector"
)

// HNSW is a Hierarchical Navigable Small World graph index (Malkov &
// Yashunin), the graph-based approximate method FAISS offers. The paper
// experimented with it and found it does not outperform the Flat index
// under Problem 1; it is implemented here so that finding is reproducible
// (see the ablation experiments).
type HNSW struct {
	// M is the maximum number of neighbors per node per layer (2M at
	// layer 0); 0 selects 16.
	M int
	// EfConstruction is the beam width during insertion; 0 selects 100.
	EfConstruction int
	// EfSearch is the beam width during queries; 0 selects 64.
	EfSearch int
	// Metric ranks candidates (DotProduct or L2Squared).
	Metric Metric
	// Seed drives the random level assignment.
	Seed uint64

	vecs    []vector.Vec
	levels  []int
	links   [][][]int32 // [node][layer][] neighbor ids
	entry   int32
	maxL    int
	levelML float64
}

// NewHNSW builds the graph over the vectors.
func NewHNSW(vecs []vector.Vec, h HNSW) *HNSW {
	idx := &h
	if idx.M <= 0 {
		idx.M = 16
	}
	if idx.EfConstruction <= 0 {
		idx.EfConstruction = 100
	}
	if idx.EfSearch <= 0 {
		idx.EfSearch = 64
	}
	idx.levelML = 1 / math.Log(float64(idx.M))
	idx.entry = -1
	idx.maxL = -1
	for i := range vecs {
		idx.insert(vecs, int32(i))
	}
	idx.vecs = vecs
	return idx
}

// Len returns the number of indexed vectors.
func (h *HNSW) Len() int { return len(h.vecs) }

// randomLevel samples a node's top layer geometrically through the
// shared seeded helper (see level.go).
func (h *HNSW) randomLevel(id int32) int {
	return levelFor(uint64(id)+1, h.Seed, h.levelML)
}

func (h *HNSW) dist(vecs []vector.Vec, a vector.Vec, b int32) float64 {
	return h.Metric.score(a, vecs[b])
}

// searchLayer runs a best-first beam search of width ef on one layer,
// starting from the given entry points. Returns the ef closest nodes.
type cand struct {
	id int32
	d  float64
}

type candMinHeap []cand

func (h candMinHeap) Len() int            { return len(h) }
func (h candMinHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h candMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candMinHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *candMinHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

type candMaxHeap []cand

func (h candMaxHeap) Len() int            { return len(h) }
func (h candMaxHeap) Less(i, j int) bool  { return h[i].d > h[j].d }
func (h candMaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candMaxHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *candMaxHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func (h *HNSW) searchLayer(vecs []vector.Vec, q vector.Vec, entries []cand, ef, layer int) []cand {
	visited := map[int32]bool{}
	frontier := candMinHeap{}
	results := candMaxHeap{}
	for _, e := range entries {
		if visited[e.id] {
			continue
		}
		visited[e.id] = true
		heap.Push(&frontier, e)
		heap.Push(&results, e)
	}
	for frontier.Len() > 0 {
		cur := heap.Pop(&frontier).(cand)
		if results.Len() >= ef && cur.d > results[0].d {
			break
		}
		for _, n := range h.links[cur.id][layer] {
			if visited[n] {
				continue
			}
			visited[n] = true
			d := h.dist(vecs, q, n)
			if results.Len() < ef || d < results[0].d {
				heap.Push(&frontier, cand{id: n, d: d})
				heap.Push(&results, cand{id: n, d: d})
				if results.Len() > ef {
					heap.Pop(&results)
				}
			}
		}
	}
	out := make([]cand, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&results).(cand)
	}
	return out
}

// selectNeighbors implements the neighbor-selection heuristic of Malkov
// & Yashunin (Algorithm 4). Scanning candidates best-first, a candidate
// is kept only when it is closer to the query than to every neighbor
// kept before it — a candidate that is not is "shadowed" by a kept
// neighbor which can route to it. This preserves bridge links between
// clusters: keeping simply the m closest fragments clustered data into
// per-cluster islands that greedy search cannot cross. Shadowed
// candidates backfill any remaining degree (the paper's
// keepPrunedConnections), so diversity never costs connectivity.
// between must return the distance between two indexed nodes; cands
// must be sorted best (smallest d) first.
func selectNeighbors(cands []cand, m int, between func(a, b int32) float64) []cand {
	if len(cands) <= m {
		return cands
	}
	kept := make([]cand, 0, m)
	skipped := make([]cand, 0, len(cands))
	for _, c := range cands {
		if len(kept) == m {
			break
		}
		shadowed := false
		for _, r := range kept {
			if between(c.id, r.id) < c.d {
				shadowed = true
				break
			}
		}
		if shadowed {
			skipped = append(skipped, c)
		} else {
			kept = append(kept, c)
		}
	}
	for _, c := range skipped {
		if len(kept) == m {
			break
		}
		kept = append(kept, c)
	}
	return kept
}

func (h *HNSW) insert(vecs []vector.Vec, id int32) {
	level := h.randomLevel(id)
	node := make([][]int32, level+1)
	h.links = append(h.links, node)
	h.levels = append(h.levels, level)

	if h.entry < 0 {
		h.entry = id
		h.maxL = level
		return
	}

	q := vecs[id]
	ep := []cand{{id: h.entry, d: h.dist(vecs, q, h.entry)}}
	// Greedy descent through the layers above the node's level.
	for l := h.maxL; l > level; l-- {
		ep = h.searchLayer(vecs, q, ep, 1, l)
	}
	// Insert at each layer from min(level, maxL) down to 0.
	top := level
	if top > h.maxL {
		top = h.maxL
	}
	for l := top; l >= 0; l-- {
		found := h.searchLayer(vecs, q, ep, h.EfConstruction, l)
		m := h.M
		if l == 0 {
			m = 2 * h.M
		}
		neighbors := selectNeighbors(found, m, func(a, b int32) float64 {
			return h.Metric.score(vecs[a], vecs[b])
		})
		for _, n := range neighbors {
			h.links[id][l] = append(h.links[id][l], n.id)
			h.links[n.id][l] = append(h.links[n.id][l], id)
			// Prune over-connected neighbors.
			if len(h.links[n.id][l]) > m {
				h.pruneNode(vecs, n.id, l, m)
			}
		}
		ep = found
	}
	if level > h.maxL {
		h.maxL = level
		h.entry = id
	}
}

// pruneNode trims an over-connected node's layer links back to m, using
// the same diversity heuristic as insertion (relative to the node's own
// vector) so pruning cannot sever the bridge links insertion kept.
func (h *HNSW) pruneNode(vecs []vector.Vec, id int32, layer, m int) {
	links := h.links[id][layer]
	cands := make([]cand, 0, len(links))
	for _, n := range links {
		cands = append(cands, cand{id: n, d: h.Metric.score(vecs[id], vecs[n])})
	}
	sortCands(cands)
	sel := selectNeighbors(cands, m, func(a, b int32) float64 {
		return h.Metric.score(vecs[a], vecs[b])
	})
	kept := make([]int32, 0, m)
	for _, c := range sel {
		kept = append(kept, c.id)
	}
	h.links[id][layer] = kept
}

// sortCands orders candidates by (distance, id) — the deterministic
// best-first order the selection heuristic scans in.
func sortCands(cands []cand) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
}

// Search implements Searcher.
func (h *HNSW) Search(q vector.Vec, k int) []Result {
	if k <= 0 || h.entry < 0 {
		return nil
	}
	ep := []cand{{id: h.entry, d: h.dist(h.vecs, q, h.entry)}}
	for l := h.maxL; l > 0; l-- {
		ep = h.searchLayer(h.vecs, q, ep, 1, l)
	}
	ef := h.EfSearch
	if ef < k {
		ef = k
	}
	found := h.searchLayer(h.vecs, q, ep, ef, 0)
	if len(found) > k {
		found = found[:k]
	}
	out := make([]Result, len(found))
	for i, c := range found {
		out[i] = Result{ID: c.id, Score: c.d}
	}
	return out
}
