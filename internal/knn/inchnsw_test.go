package knn

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"erfilter/internal/vector"
)

// hnswVec derives a deterministic vector on a richer grid than vecFrom:
// ties still occur, but the space is navigable enough for a small-world
// graph to mean something.
func hnswVec(v uint64, dim int) vector.Vec {
	v = mixU64(v)
	out := make(vector.Vec, dim)
	for i := range out {
		v = mixU64(v + uint64(i) + 1)
		out[i] = float32(int(v%9)) - 4
	}
	return out
}

// applyDualOps replays one op sequence against an IncHNSW and an IncFlat
// oracle in lockstep: same adds, same removes, same compaction points.
func applyDualOps(ops []uint64, metric Metric, p HNSWParams, dim int) (*IncHNSW, *IncFlat) {
	hidx := NewIncHNSW(metric, p)
	fidx := NewIncFlat(metric)
	var nextID int64
	var live []int64
	for _, v := range ops {
		switch {
		case v%5 == 0 && len(live) > 0:
			i := int(mixU64(v) % uint64(len(live)))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if !hidx.Remove(id) || !fidx.Remove(id) {
				panic("remove of live id failed")
			}
		case v%11 == 0:
			hidx.Compact()
			fidx.Compact()
		default:
			id := nextID
			nextID++
			vec := hnswVec(v, dim)
			if err := hidx.Add(id, vec); err != nil {
				panic(err)
			}
			if err := fidx.Add(id, vec); err != nil {
				panic(err)
			}
			live = append(live, id)
		}
	}
	return hidx, fidx
}

// recallAgainst counts how many approximate results score at least as
// well as the exact k-th best. Tie-tolerant: an approximate hit that
// ties the oracle's cutoff counts even if the ids differ.
func recallAgainst(approx, exact []IncResult) (hit, want int) {
	if len(exact) == 0 {
		return 0, 0
	}
	thr := exact[len(exact)-1].Score
	n := 0
	for _, r := range approx {
		if r.Score <= thr {
			n++
		}
	}
	if n > len(exact) {
		n = len(exact)
	}
	return n, len(exact)
}

// TestIncHNSWRecallGateQuick is the knn-level recall gate: any
// Add/Remove/Compact interleaving, followed by a save/load round-trip,
// keeps recall@k against the IncFlat oracle at 1.0 — with beams at least
// as wide as these small graphs, the approximate search must find every
// reachable answer — and the round-trip must not change a single result.
func TestIncHNSWRecallGateQuick(t *testing.T) {
	prop := func(ops []uint64, qseed uint64) bool {
		for _, metric := range []Metric{DotProduct, L2Squared} {
			hidx, fidx := applyDualOps(ops, metric, HNSWParams{Seed: 42}, 8)
			hsnap, fsnap := hidx.Freeze(), fidx.Freeze()

			var buf bytes.Buffer
			if err := hsnap.Save(&buf); err != nil {
				t.Logf("save: %v", err)
				return false
			}
			loaded, err := LoadHNSW(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Logf("load: %v", err)
				return false
			}
			lsnap := loaded.Freeze()

			var hits, wants int
			for qi := 0; qi < 4; qi++ {
				q := hnswVec(qseed+uint64(qi), 8)
				for _, k := range []int{1, 3, 10} {
					approx := hsnap.Search(q, k)
					exact := fsnap.Search(q, k)
					h, w := recallAgainst(approx, exact)
					hits += h
					wants += w
					if ex := hsnap.SearchExact(q, k); len(ex) != len(exact) {
						t.Logf("exact len mismatch: %d vs %d", len(ex), len(exact))
						return false
					} else {
						for i := range ex {
							if ex[i] != exact[i] {
								t.Logf("SearchExact diverged from flat oracle: %v vs %v", ex, exact)
								return false
							}
						}
					}
					rt := lsnap.Search(q, k)
					if len(rt) != len(approx) {
						t.Logf("round-trip len mismatch: %v vs %v", rt, approx)
						return false
					}
					for i := range rt {
						if rt[i] != approx[i] {
							t.Logf("round-trip diverged: %v vs %v", rt, approx)
							return false
						}
					}
				}
			}
			if hits < wants { // ef >= graph size here: demand perfection
				t.Logf("recall %d/%d under metric %v", hits, wants, metric)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIncHNSWRecallGateAtScale enforces the CI recall floor at a size
// where the graph is genuinely approximate: 2000 vectors, a fifth
// deleted, compacted, recall@10 >= 0.95 against the flat oracle.
func TestIncHNSWRecallGateAtScale(t *testing.T) {
	const (
		n    = 2000
		dim  = 16
		gate = 0.95
	)
	hidx := NewIncHNSW(L2Squared, HNSWParams{Seed: 7})
	fidx := NewIncFlat(L2Squared)
	for i := 0; i < n; i++ {
		v := hnswVec(uint64(i)+1e6, dim)
		if err := hidx.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
		if err := fidx.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 5 {
		hidx.Remove(int64(i))
		fidx.Remove(int64(i))
	}
	hidx.Compact()
	fidx.Compact()
	hsnap, fsnap := hidx.Freeze(), fidx.Freeze()

	var hits, wants int
	for qi := 0; qi < 50; qi++ {
		q := hnswVec(uint64(qi)+5e6, dim)
		h, w := recallAgainst(hsnap.Search(q, 10), fsnap.Search(q, 10))
		hits += h
		wants += w
	}
	if recall := float64(hits) / float64(wants); recall < gate {
		t.Fatalf("recall@10 = %.3f (%d/%d), gate %v", recall, hits, wants, gate)
	}
}

// TestIncHNSWDeterminism: same seed + same op sequence means
// byte-identical Save output and identical query results at any
// checkpoint, compaction included — and a loaded index re-saves to the
// same bytes.
func TestIncHNSWDeterminism(t *testing.T) {
	const dim = 8
	ops := make([]uint64, 300)
	for i := range ops {
		ops[i] = mixU64(uint64(i) + 99)
	}
	checkpoints := map[int]bool{60: true, 121: true, 200: true, 299: true}

	a := NewIncHNSW(L2Squared, HNSWParams{Seed: 9})
	b := NewIncHNSW(L2Squared, HNSWParams{Seed: 9})
	var nextID int64
	var live []int64
	step := func(idx *IncHNSW, v uint64, id int64) {
		switch {
		case v%5 == 0 && len(live) > 0:
			idx.Remove(live[int(mixU64(v)%uint64(len(live)))])
		case v%7 == 0:
			idx.Compact()
		default:
			if err := idx.Add(id, hnswVec(v, dim)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, v := range ops {
		id := nextID
		step(a, v, id)
		step(b, v, id)
		// Mirror bookkeeping once per op (step must not mutate shared state).
		switch {
		case v%5 == 0 && len(live) > 0:
			j := int(mixU64(v) % uint64(len(live)))
			live = append(live[:j], live[j+1:]...)
		case v%7 == 0:
		default:
			nextID++
			live = append(live, id)
		}
		if !checkpoints[i] {
			continue
		}
		var abuf, bbuf bytes.Buffer
		asnap, bsnap := a.Freeze(), b.Freeze()
		if err := asnap.Save(&abuf); err != nil {
			t.Fatal(err)
		}
		if err := bsnap.Save(&bbuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(abuf.Bytes(), bbuf.Bytes()) {
			t.Fatalf("checkpoint %d: identical op sequences saved different bytes", i)
		}
		loaded, err := LoadHNSW(bytes.NewReader(abuf.Bytes()))
		if err != nil {
			t.Fatalf("checkpoint %d: load: %v", i, err)
		}
		var rbuf bytes.Buffer
		if err := loaded.Save(&rbuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(abuf.Bytes(), rbuf.Bytes()) {
			t.Fatalf("checkpoint %d: save/load/save not byte-identical", i)
		}
		for qi := 0; qi < 3; qi++ {
			q := hnswVec(uint64(qi)+7e6, dim)
			ra, rb := asnap.Search(q, 5), bsnap.Search(q, 5)
			if len(ra) != len(rb) {
				t.Fatalf("checkpoint %d: result lengths differ", i)
			}
			for j := range ra {
				if ra[j] != rb[j] {
					t.Fatalf("checkpoint %d: results differ: %v vs %v", i, ra, rb)
				}
			}
		}
	}
}

// TestIncHNSWSnapshotImmutable pins the copy-on-write contract: a frozen
// snapshot's results must not move while the writer keeps inserting,
// deleting, pruning and compacting.
func TestIncHNSWSnapshotImmutable(t *testing.T) {
	idx := NewIncHNSW(L2Squared, HNSWParams{M: 4, Seed: 3})
	for i := int64(0); i < 60; i++ {
		if err := idx.Add(i, hnswVec(uint64(i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	snap := idx.Freeze()
	q := hnswVec(424242, 8)
	before := snap.Search(q, 8)
	beforeExact := snap.SearchExact(q, 8)
	var beforeBytes bytes.Buffer
	if err := snap.Save(&beforeBytes); err != nil {
		t.Fatal(err)
	}

	for i := int64(0); i < 60; i += 3 {
		idx.Remove(i)
	}
	// Heavy insert load after the freeze: every new link claims and
	// mutates existing nodes' adjacency (M=4 keeps pruning hot).
	for i := int64(60); i < 400; i++ {
		if err := idx.Add(i, hnswVec(uint64(i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	idx.Compact()

	after := snap.Search(q, 8)
	afterExact := snap.SearchExact(q, 8)
	var afterBytes bytes.Buffer
	if err := snap.Save(&afterBytes); err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("snapshot changed: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot changed: %v vs %v", before, after)
		}
	}
	for i := range beforeExact {
		if beforeExact[i] != afterExact[i] {
			t.Fatalf("snapshot exact results changed: %v vs %v", beforeExact, afterExact)
		}
	}
	if !bytes.Equal(beforeBytes.Bytes(), afterBytes.Bytes()) {
		t.Fatal("snapshot serialization changed under writer mutations")
	}
	if snap.Len() != 60 {
		t.Fatalf("snapshot Len = %d, want 60", snap.Len())
	}
}

func TestIncHNSWBasics(t *testing.T) {
	idx := NewIncHNSW(DotProduct, HNSWParams{})
	if got := idx.Params(); got.M != 16 || got.EfConstruction != 100 || got.EfSearch != 64 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if err := idx.Add(3, vector.Vec{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(3, vector.Vec{0, 1, 0, 0}); err == nil {
		t.Fatal("duplicate add must error")
	}
	if idx.Remove(4) {
		t.Fatal("removing absent id must report false")
	}
	if idx.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", idx.Dim())
	}
	if !idx.Remove(3) || idx.Len() != 0 || idx.Dead() != 1 {
		t.Fatalf("remove bookkeeping wrong: len=%d dead=%d", idx.Len(), idx.Dead())
	}
	// The tombstoned node routes but must not surface.
	if got := idx.Freeze().Search(vector.Vec{1, 0, 0, 0}, 3); len(got) != 0 {
		t.Fatalf("tombstoned id surfaced: %v", got)
	}
	idx.Compact()
	if idx.Dead() != 0 {
		t.Fatal("compact left tombstones")
	}
	if got := idx.Freeze().Search(vector.Vec{1, 0, 0, 0}, 3); len(got) != 0 {
		t.Fatalf("empty index returned %v", got)
	}
	if err := idx.Add(3, vector.Vec{0, 1, 0, 0}); err != nil {
		t.Fatalf("re-add after compact: %v", err)
	}
	if got := idx.Freeze().Search(vector.Vec{0, 1, 0, 0}, 1); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("re-added id not found: %v", got)
	}
}

// TestHNSWBatchConcurrentBuildsDeterministic pins the level-draw fix:
// index builds share no RNG state, so concurrent builds of the same data
// are identical.
func TestHNSWBatchConcurrentBuildsDeterministic(t *testing.T) {
	vecs := make([]vector.Vec, 500)
	for i := range vecs {
		vecs[i] = hnswVec(uint64(i)+17, 8)
	}
	const builders = 4
	idxs := make([]*HNSW, builders)
	var wg sync.WaitGroup
	for b := 0; b < builders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			idxs[b] = NewHNSW(vecs, HNSW{Metric: L2Squared, Seed: 11})
		}(b)
	}
	wg.Wait()
	for qi := 0; qi < 10; qi++ {
		q := hnswVec(uint64(qi)+9e6, 8)
		ref := idxs[0].Search(q, 10)
		for b := 1; b < builders; b++ {
			got := idxs[b].Search(q, 10)
			if len(got) != len(ref) {
				t.Fatalf("builder %d returned %d results, want %d", b, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("builder %d diverged at query %d: %v vs %v", b, qi, got, ref)
				}
			}
		}
	}
}
