package knn

import (
	"math"
	"sort"

	"erfilter/internal/vector"
)

// Scoring selects how the Partitioned index scores candidates within the
// probed partitions, matching SCANN's two modes (Table V).
type Scoring int

// The SCANN scoring modes.
const (
	// BruteForce performs exact score computations within the probed
	// partitions.
	BruteForce Scoring = iota
	// AsymmetricHashing scores through a product-quantization lookup
	// table: faster, slightly less accurate.
	AsymmetricHashing
)

// String implements fmt.Stringer.
func (s Scoring) String() string {
	if s == AsymmetricHashing {
		return "AH"
	}
	return "BF"
}

// PartitionedConfig configures a Partitioned index.
type PartitionedConfig struct {
	// Metric is the similarity: dot product or squared Euclidean.
	Metric Metric
	// Scoring is brute-force or asymmetric hashing.
	Scoring Scoring
	// Partitions is the number of k-means partitions; 0 selects
	// sqrt(n) automatically.
	Partitions int
	// Probe is the number of closest partitions scored per query; 0
	// selects a fraction that keeps recall high (sqrt of partitions,
	// at least 4).
	Probe int
	// Subspaces is the number of product-quantization subspaces for
	// AsymmetricHashing; 0 selects dim/10.
	Subspaces int
	// Seed drives k-means seeding.
	Seed uint64
}

// Partitioned is the SCANN analog: the indexed vectors are split into
// disjoint k-means partitions at training time, and each query is answered
// by scoring only the most relevant partitions with brute-force or
// asymmetric-hashing computations.
type Partitioned struct {
	cfg     PartitionedConfig
	vecs    []vector.Vec
	parts   [][]int32 // vector ids per partition
	centers []vector.Vec
	pq      *productQuantizer
}

// NewPartitioned trains the partitioning (and the PQ codebooks for AH) and
// indexes the vectors.
func NewPartitioned(vecs []vector.Vec, cfg PartitionedConfig) *Partitioned {
	n := len(vecs)
	if n == 0 {
		return &Partitioned{cfg: cfg}
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = int(math.Max(1, math.Sqrt(float64(n))))
	}
	if cfg.Probe <= 0 {
		cfg.Probe = int(math.Max(4, math.Sqrt(float64(cfg.Partitions))))
	}
	if cfg.Probe > cfg.Partitions {
		cfg.Probe = cfg.Partitions
	}
	p := &Partitioned{cfg: cfg, vecs: vecs}
	km := kmeans(vecs, cfg.Partitions, 10, cfg.Seed+1)
	p.centers = km.centroids
	p.parts = make([][]int32, len(km.centroids))
	for i, c := range km.assign {
		p.parts[c] = append(p.parts[c], int32(i))
	}
	if cfg.Scoring == AsymmetricHashing {
		m := cfg.Subspaces
		if m <= 0 {
			m = len(vecs[0]) / 10
			if m < 1 {
				m = 1
			}
		}
		p.pq = newProductQuantizer(vecs, m, cfg.Seed+2)
	}
	return p
}

// Len returns the number of indexed vectors.
func (p *Partitioned) Len() int { return len(p.vecs) }

// Search implements Searcher: it ranks the partitions by centroid distance,
// scores the vectors of the closest Probe partitions and returns the top k.
func (p *Partitioned) Search(q vector.Vec, k int) []Result {
	if k <= 0 || len(p.centers) == 0 {
		return nil
	}
	type pd struct {
		part int
		dist float64
	}
	order := make([]pd, len(p.centers))
	for c := range p.centers {
		order[c] = pd{part: c, dist: p.cfg.Metric.score(q, p.centers[c])}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].dist < order[j].dist })

	var lut [][]float64
	if p.cfg.Scoring == AsymmetricHashing {
		lut = p.pq.lut(q, p.cfg.Metric)
	}
	h := newTopK(k)
	for _, o := range order[:p.cfg.Probe] {
		for _, id := range p.parts[o.part] {
			var score float64
			if lut != nil {
				score = p.pq.score(lut, id)
			} else {
				score = p.cfg.Metric.score(q, p.vecs[id])
			}
			h.offer(id, score)
		}
	}
	return h.sorted()
}
