package datagen

import (
	"testing"

	"erfilter/internal/entity"
)

func TestGenerateShape(t *testing.T) {
	task := Generate(QuickSpec(50, 120, 30, 1))
	if task.E1.Len() != 50 || task.E2.Len() != 120 {
		t.Fatalf("sizes = %d/%d", task.E1.Len(), task.E2.Len())
	}
	if task.Truth.Size() != 30 {
		t.Fatalf("duplicates = %d", task.Truth.Size())
	}
	for _, p := range task.Truth.Pairs() {
		if p.Left < 0 || int(p.Left) >= 50 || p.Right < 0 || int(p.Right) >= 120 {
			t.Fatalf("groundtruth pair out of range: %v", p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(QuickSpec(30, 60, 15, 7))
	b := Generate(QuickSpec(30, 60, 15, 7))
	for i := range a.E1.Profiles {
		if a.E1.Profiles[i].AllText() != b.E1.Profiles[i].AllText() {
			t.Fatal("generation not deterministic")
		}
	}
	c := Generate(QuickSpec(30, 60, 15, 8))
	same := true
	for i := range a.E1.Profiles {
		if a.E1.Profiles[i].AllText() != c.E1.Profiles[i].AllText() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestDuplicatesShareContent(t *testing.T) {
	task := Generate(QuickSpec(60, 120, 40, 3))
	v1, v2 := entity.TaskViews(task, entity.SchemaAgnostic)
	shared := 0
	for _, p := range task.Truth.Pairs() {
		t1 := map[string]bool{}
		for _, w := range splitWords(v1.Text(int(p.Left))) {
			t1[w] = true
		}
		for _, w := range splitWords(v2.Text(int(p.Right))) {
			if t1[w] {
				shared++
				break
			}
		}
	}
	if float64(shared) < 0.95*float64(task.Truth.Size()) {
		t.Fatalf("only %d/%d duplicate pairs share a token", shared, task.Truth.Size())
	}
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestSpecsScaling(t *testing.T) {
	full := Specs(1)
	if len(full) != 10 {
		t.Fatalf("specs = %d", len(full))
	}
	if full[3].N1 != 2616 || full[3].N2 != 2294 || full[3].Duplicates != 2224 {
		t.Fatalf("D4 spec wrong: %+v", full[3])
	}
	small := Specs(0.05)
	for i, s := range small {
		if s.N1 < 30 && paperSpecs[i].N1 >= 30 {
			t.Fatalf("%s scaled below minimum: %+v", s.Name, s)
		}
		if s.Duplicates > s.N1 || s.Duplicates > s.N2 {
			t.Fatalf("%s has more duplicates than entities", s.Name)
		}
	}
}

func TestMisplacedValuesBreakSchemaBasedCoverage(t *testing.T) {
	// The D6 analog has a high misplace rate: the best attribute's
	// groundtruth coverage must be well below 0.9, while schema-agnostic
	// text still contains the name (under "notes").
	task := ByName("D6", 0.05)
	stats := entity.StatsFor(task, task.BestAttribute)
	if stats.GroundtruthCoverage > 0.8 {
		t.Fatalf("D6 groundtruth coverage = %.2f, want < 0.8", stats.GroundtruthCoverage)
	}
	// D4 analog is clean: near-complete coverage.
	clean := ByName("D4", 0.05)
	cleanStats := entity.StatsFor(clean, clean.BestAttribute)
	if cleanStats.GroundtruthCoverage < 0.95 {
		t.Fatalf("D4 groundtruth coverage = %.2f, want >= 0.95", cleanStats.GroundtruthCoverage)
	}
}

func TestBestAttributeSelection(t *testing.T) {
	task := ByName("D4", 0.05)
	if got := entity.BestAttribute(task); got != "title" {
		t.Fatalf("best attribute of D4 analog = %q, want title", got)
	}
}

func TestD1NonDupCoverageGap(t *testing.T) {
	task := ByName("D1", 0.5)
	stats := entity.StatsFor(task, task.BestAttribute)
	// All duplicates covered, but overall coverage visibly lower.
	if stats.GroundtruthCoverage < 0.9 {
		t.Fatalf("D1 duplicate coverage = %.2f", stats.GroundtruthCoverage)
	}
	if stats.Coverage > stats.GroundtruthCoverage-0.05 {
		t.Fatalf("D1 overall coverage %.2f should trail groundtruth coverage %.2f",
			stats.Coverage, stats.GroundtruthCoverage)
	}
}

func TestByNameUnknown(t *testing.T) {
	if ByName("D99", 1) != nil {
		t.Fatal("unknown dataset should return nil")
	}
}

func TestCleanCleanNoIntraDuplicates(t *testing.T) {
	// Each object is rendered at most once per collection, so the AllText
	// of two distinct profiles should rarely be identical; verify the
	// groundtruth maps E1 to E2 injectively (Clean-Clean assumption).
	task := Generate(QuickSpec(40, 80, 25, 9))
	seenL := map[int32]bool{}
	seenR := map[int32]bool{}
	for _, p := range task.Truth.Pairs() {
		if seenL[p.Left] || seenR[p.Right] {
			t.Fatalf("groundtruth not injective at %v", p)
		}
		seenL[p.Left] = true
		seenR[p.Right] = true
	}
}
