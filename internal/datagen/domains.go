package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// object is one real-world entity: canonical attribute values before any
// rendering noise.
type object map[string]string

// domain renders real-world objects of one flavor (restaurants, products,
// bibliographic records, movies/TV shows).
type domain interface {
	// best returns the most informative attribute (Table VI's "Best
	// Attribute" row).
	best() string
	// newObject draws a fresh canonical object.
	newObject(rng *rand.Rand) object
}

// pick returns a random element of the slice.
func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// maybeGeneric returns a generic filler word with probability bias,
// otherwise a distinctive word from the vocabulary.
func maybeGeneric(rng *rand.Rand, bias float64, vocab []string) string {
	if rng.Float64() < bias {
		return pick(rng, genericWords)
	}
	return pick(rng, vocab)
}

// --- Restaurants (the D1 analog) ---

type restaurantDomain struct {
	names []string
	gen   *wordGen
}

func newRestaurantDomain(gen *wordGen) *restaurantDomain {
	return &restaurantDomain{names: gen.vocab(4000, 2, 4), gen: gen}
}

func (d *restaurantDomain) best() string { return "name" }

func (d *restaurantDomain) newObject(rng *rand.Rand) object {
	name := pick(rng, d.names)
	if rng.Intn(2) == 0 {
		name += " " + pick(rng, d.names)
	}
	return object{
		"name":    name,
		"address": fmt.Sprintf("%d %s %s", 1+rng.Intn(9999), pick(rng, d.names), pick(rng, streetTypes)),
		"city":    pick(rng, cityNames),
		"phone":   fmt.Sprintf("%03d %03d %04d", rng.Intn(1000), rng.Intn(1000), rng.Intn(10000)),
		"type":    pick(rng, cuisines),
	}
}

// --- Products (the D2, D3, D8 analogs) ---

type productDomain struct {
	brands      []string
	types       []string
	descWords   []string
	genericBias float64
	gen         *wordGen
}

func newProductDomain(gen *wordGen, genericBias float64) *productDomain {
	return &productDomain{
		brands:      gen.vocab(120, 2, 3),
		types:       gen.vocab(60, 2, 3),
		descWords:   gen.vocab(3000, 2, 4),
		genericBias: genericBias,
		gen:         gen,
	}
}

func (d *productDomain) best() string { return "title" }

func (d *productDomain) newObject(rng *rand.Rand) object {
	brand := pick(rng, d.brands)
	code := d.gen.modelCode()
	title := []string{brand, code, pick(rng, d.types)}
	for i := 0; i < rng.Intn(3); i++ {
		title = append(title, maybeGeneric(rng, d.genericBias, d.descWords))
	}
	var desc []string
	for i := 0; i < 6+rng.Intn(8); i++ {
		desc = append(desc, maybeGeneric(rng, d.genericBias, d.descWords))
	}
	return object{
		"title":        strings.Join(title, " "),
		"manufacturer": brand,
		"description":  strings.Join(desc, " "),
		"price":        fmt.Sprintf("%d.%02d", 5+rng.Intn(995), rng.Intn(100)),
	}
}

// --- Bibliographic records (the D4, D9 analogs) ---

type bibDomain struct {
	topics      []string
	genericBias float64
}

func newBibDomain(gen *wordGen, genericBias float64) *bibDomain {
	return &bibDomain{topics: gen.vocab(5000, 2, 4), genericBias: genericBias}
}

func (d *bibDomain) best() string { return "title" }

func (d *bibDomain) newObject(rng *rand.Rand) object {
	var title []string
	for i := 0; i < 5+rng.Intn(5); i++ {
		title = append(title, maybeGeneric(rng, d.genericBias, d.topics))
	}
	var authors []string
	for i := 0; i < 2+rng.Intn(3); i++ {
		authors = append(authors, pick(rng, firstNames)+" "+pick(rng, lastNames))
	}
	return object{
		"title":   strings.Join(title, " "),
		"authors": strings.Join(authors, " "),
		"venue":   pick(rng, venues),
		"year":    fmt.Sprintf("%d", 1995+rng.Intn(26)),
	}
}

// --- Movies / TV shows (the D5–D7, D10 analogs) ---

type movieDomain struct {
	titleWords  []string
	genericBias float64
}

func newMovieDomain(gen *wordGen, genericBias float64) *movieDomain {
	return &movieDomain{titleWords: gen.vocab(6000, 2, 4), genericBias: genericBias}
}

func (d *movieDomain) best() string { return "name" }

func (d *movieDomain) newObject(rng *rand.Rand) object {
	var title []string
	for i := 0; i < 1+rng.Intn(4); i++ {
		title = append(title, maybeGeneric(rng, d.genericBias, d.titleWords))
	}
	var actors []string
	for i := 0; i < 2+rng.Intn(2); i++ {
		actors = append(actors, pick(rng, firstNames)+" "+pick(rng, lastNames))
	}
	return object{
		"name":     strings.Join(title, " "),
		"actors":   strings.Join(actors, " "),
		"year":     fmt.Sprintf("%d", 1960+rng.Intn(62)),
		"language": pick(rng, languages),
		"genre":    pick(rng, genres),
	}
}
