package datagen

import (
	"math/rand"
	"strings"
)

// noise controls the corruption applied to every rendered entity profile.
type noise struct {
	// TypoRate is the per-token probability of a character-level edit
	// (substitution, deletion, transposition or insertion).
	TypoRate float64
	// DropTokenRate is the per-token probability of dropping the token.
	DropTokenRate float64
	// MissingRate is the per-attribute probability of losing the value
	// entirely.
	MissingRate float64
	// MisplaceRate is the per-profile probability that the best
	// attribute's value migrates into a generic "notes" attribute — the
	// extraction-error phenomenon the paper describes for D5–D7 and D10:
	// the value is not missing from the profile, only filed under the
	// wrong attribute, so schema-agnostic settings still see it.
	MisplaceRate float64
	// ShuffleRate is the per-attribute probability of shuffling token
	// order (harmless to set models, visible to humans).
	ShuffleRate float64
}

const letters = "abcdefghijklmnopqrstuvwxyz"

// typo applies one random character edit to the word.
func typo(rng *rand.Rand, w string) string {
	if len(w) < 2 {
		return w
	}
	b := []byte(w)
	switch rng.Intn(4) {
	case 0: // substitution
		b[rng.Intn(len(b))] = letters[rng.Intn(26)]
	case 1: // deletion
		i := rng.Intn(len(b))
		b = append(b[:i], b[i+1:]...)
	case 2: // transposition
		i := rng.Intn(len(b) - 1)
		b[i], b[i+1] = b[i+1], b[i]
	default: // insertion
		i := rng.Intn(len(b) + 1)
		b = append(b[:i], append([]byte{letters[rng.Intn(26)]}, b[i:]...)...)
	}
	return string(b)
}

// corrupt applies token-level noise to a value.
func (n noise) corrupt(rng *rand.Rand, value string) string {
	toks := strings.Fields(value)
	out := make([]string, 0, len(toks))
	for _, tok := range toks {
		if len(toks) > 1 && rng.Float64() < n.DropTokenRate {
			continue
		}
		if rng.Float64() < n.TypoRate {
			tok = typo(rng, tok)
		}
		out = append(out, tok)
	}
	if len(out) == 0 {
		out = toks[:1]
	}
	if rng.Float64() < n.ShuffleRate {
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return strings.Join(out, " ")
}
