package datagen

import (
	"math/rand"
	"strings"

	"erfilter/internal/entity"
)

// Spec describes one synthetic Clean-Clean ER dataset analog.
type Spec struct {
	// Name of the dataset, e.g. "D4".
	Name string
	// Domain is one of "restaurant", "product", "bibliographic", "movie".
	Domain string
	// N1, N2 are the collection sizes; Duplicates the number of matching
	// pairs (each matching object appears once per collection).
	N1, N2, Duplicates int

	// TypoRate, DropTokenRate, MissingRate, ShuffleRate feed the noise
	// channel (see noise).
	TypoRate, DropTokenRate, MissingRate, ShuffleRate float64
	// MisplaceRate moves the best attribute's value into a "notes"
	// attribute, breaking schema-based coverage without losing the text.
	MisplaceRate float64
	// BestMissingNonDupRate drops the best attribute only from
	// non-duplicate profiles, reproducing D1's "covers 2/3 of all
	// profiles but all of the duplicate ones".
	BestMissingNonDupRate float64
	// GenericBias is the fraction of title/description words drawn from
	// the small shared generic vocabulary; high values depress filtering
	// precision (the D3/D8 regime).
	GenericBias float64
	// Seed makes generation deterministic.
	Seed uint64
}

// newDomain instantiates the Spec's domain with a seeded vocabulary.
func (s Spec) newDomain(rng *rand.Rand) domain {
	gen := &wordGen{rng: rng}
	switch s.Domain {
	case "restaurant":
		return newRestaurantDomain(gen)
	case "product":
		return newProductDomain(gen, s.GenericBias)
	case "bibliographic":
		return newBibDomain(gen, s.GenericBias)
	case "movie":
		return newMovieDomain(gen, s.GenericBias)
	}
	panic("datagen: unknown domain " + s.Domain)
}

// Generate materializes the task: N1+N2-Duplicates distinct objects, the
// first Duplicates of which are rendered (with independent noise) into
// both collections. E2's profile order is shuffled so matching pairs do
// not align by index.
func Generate(s Spec) *entity.Task {
	rng := rand.New(rand.NewSource(int64(s.Seed)))
	dom := s.newDomain(rng)
	n := noise{
		TypoRate:      s.TypoRate,
		DropTokenRate: s.DropTokenRate,
		MissingRate:   s.MissingRate,
		MisplaceRate:  s.MisplaceRate,
		ShuffleRate:   s.ShuffleRate,
	}

	total := s.N1 + s.N2 - s.Duplicates
	objects := make([]object, total)
	for i := range objects {
		objects[i] = dom.newObject(rng)
	}

	render := func(obj object, isDup bool) entity.Profile {
		var attrs []entity.Attribute
		var notes []string
		for _, name := range attributeOrder(obj) {
			val := obj[name]
			if rng.Float64() < s.MissingRate {
				continue
			}
			val = n.corrupt(rng, val)
			if name == dom.best() {
				if !isDup && rng.Float64() < s.BestMissingNonDupRate {
					continue
				}
				if rng.Float64() < s.MisplaceRate {
					notes = append(notes, val)
					continue
				}
			}
			attrs = append(attrs, entity.Attribute{Name: name, Value: val})
		}
		if len(notes) > 0 {
			attrs = append(attrs, entity.Attribute{Name: "notes", Value: strings.Join(notes, " ")})
		}
		return entity.Profile{Attrs: attrs}
	}

	// E1: duplicates first, then E1-only objects.
	p1 := make([]entity.Profile, 0, s.N1)
	for i := 0; i < s.N1; i++ {
		p1 = append(p1, render(objects[i], i < s.Duplicates))
	}
	// E2: duplicates plus the remaining objects, shuffled.
	type e2src struct {
		obj   object
		match int32 // E1 index for duplicates, -1 otherwise
	}
	srcs := make([]e2src, 0, s.N2)
	for i := 0; i < s.Duplicates; i++ {
		srcs = append(srcs, e2src{obj: objects[i], match: int32(i)})
	}
	for i := s.N1; i < total; i++ {
		srcs = append(srcs, e2src{obj: objects[i], match: -1})
	}
	rng.Shuffle(len(srcs), func(i, j int) { srcs[i], srcs[j] = srcs[j], srcs[i] })

	p2 := make([]entity.Profile, 0, s.N2)
	var truth []entity.Pair
	for j, src := range srcs {
		p2 = append(p2, render(src.obj, src.match >= 0))
		if src.match >= 0 {
			truth = append(truth, entity.Pair{Left: src.match, Right: int32(j)})
		}
	}

	return &entity.Task{
		Name:          s.Name,
		E1:            entity.New(s.Name+"/E1", p1),
		E2:            entity.New(s.Name+"/E2", p2),
		Truth:         entity.NewGroundTruth(truth),
		BestAttribute: dom.best(),
	}
}

// attributeOrder returns the object's attribute names in a fixed canonical
// order so rendering is deterministic.
func attributeOrder(obj object) []string {
	order := []string{"name", "title", "manufacturer", "authors", "address", "description", "actors", "city", "venue", "phone", "type", "genre", "language", "year", "price"}
	var out []string
	for _, n := range order {
		if _, ok := obj[n]; ok {
			out = append(out, n)
		}
	}
	return out
}
