package datagen

import "erfilter/internal/entity"

// paperSpec holds the full-size shape of one dataset analog, mirroring
// Table VI, together with its noise profile.
var paperSpecs = []Spec{
	{
		// D1: restaurants (OAEI 2010). Small and clean; the best attribute
		// covers ~2/3 of all profiles but all of the duplicate ones.
		Name: "D1", Domain: "restaurant", N1: 339, N2: 2256, Duplicates: 89,
		TypoRate: 0.08, DropTokenRate: 0.02, MissingRate: 0.02, ShuffleRate: 0.2,
		BestMissingNonDupRate: 0.35, Seed: 101,
	},
	{
		// D2: Abt-Buy products. Distinctive titles with model codes.
		Name: "D2", Domain: "product", N1: 1076, N2: 1076, Duplicates: 1076,
		TypoRate: 0.06, DropTokenRate: 0.08, MissingRate: 0.06, ShuffleRate: 0.3,
		GenericBias: 0.25, Seed: 102,
	},
	{
		// D3: Amazon-Google products. Duplicates share mostly generic
		// content, depressing the precision of every filter.
		Name: "D3", Domain: "product", N1: 1354, N2: 3039, Duplicates: 1104,
		TypoRate: 0.10, DropTokenRate: 0.15, MissingRate: 0.10, ShuffleRate: 0.4,
		GenericBias: 0.55, Seed: 103,
	},
	{
		// D4: DBLP-ACM bibliography. Very clean, highly distinctive titles:
		// the near-perfect-precision regime.
		Name: "D4", Domain: "bibliographic", N1: 2616, N2: 2294, Duplicates: 2224,
		TypoRate: 0.02, DropTokenRate: 0.02, MissingRate: 0.01, ShuffleRate: 0.1,
		GenericBias: 0.05, Seed: 104,
	},
	{
		// D5: IMDb-TMDb movies. Misplaced names break schema-based coverage.
		Name: "D5", Domain: "movie", N1: 5118, N2: 6056, Duplicates: 1968,
		TypoRate: 0.06, DropTokenRate: 0.06, MissingRate: 0.08, ShuffleRate: 0.2,
		MisplaceRate: 0.45, GenericBias: 0.20, Seed: 105,
	},
	{
		// D6: IMDb-TVDB.
		Name: "D6", Domain: "movie", N1: 5118, N2: 7810, Duplicates: 1072,
		TypoRate: 0.07, DropTokenRate: 0.08, MissingRate: 0.10, ShuffleRate: 0.2,
		MisplaceRate: 0.50, GenericBias: 0.25, Seed: 106,
	},
	{
		// D7: TMDb-TVDB.
		Name: "D7", Domain: "movie", N1: 6056, N2: 7810, Duplicates: 1095,
		TypoRate: 0.06, DropTokenRate: 0.07, MissingRate: 0.09, ShuffleRate: 0.2,
		MisplaceRate: 0.40, GenericBias: 0.20, Seed: 107,
	},
	{
		// D8: Walmart-Amazon products. Large, noisy, generic-heavy.
		Name: "D8", Domain: "product", N1: 2554, N2: 22074, Duplicates: 853,
		TypoRate: 0.08, DropTokenRate: 0.12, MissingRate: 0.08, ShuffleRate: 0.3,
		GenericBias: 0.45, Seed: 108,
	},
	{
		// D9: DBLP-Google Scholar bibliography.
		Name: "D9", Domain: "bibliographic", N1: 2516, N2: 61353, Duplicates: 2308,
		TypoRate: 0.05, DropTokenRate: 0.08, MissingRate: 0.05, ShuffleRate: 0.2,
		GenericBias: 0.15, Seed: 109,
	},
	{
		// D10: IMDb-DBpedia movies. The largest task; one constituent
		// dataset has inadequate best-attribute coverage.
		Name: "D10", Domain: "movie", N1: 27615, N2: 23182, Duplicates: 22863,
		TypoRate: 0.06, DropTokenRate: 0.08, MissingRate: 0.06, ShuffleRate: 0.2,
		MisplaceRate: 0.30, GenericBias: 0.20, Seed: 110,
	},
}

// SchemaBasedDatasets lists the dataset names whose best attribute has
// adequate groundtruth coverage for the schema-based settings; D5–D7 and
// D10 are excluded, as in the paper (Section VI, "Schema settings").
var SchemaBasedDatasets = map[string]bool{
	"D1": true, "D2": true, "D3": true, "D4": true, "D8": true, "D9": true,
}

// Specs returns the D1..D10 dataset specs with every size multiplied by
// scale (clamped below at 30 entities / 10 duplicates). scale=1 reproduces
// the paper's sizes.
func Specs(scale float64) []Spec {
	if scale <= 0 {
		scale = 1
	}
	out := make([]Spec, len(paperSpecs))
	for i, s := range paperSpecs {
		s.N1 = scaled(s.N1, scale, 30)
		s.N2 = scaled(s.N2, scale, 30)
		s.Duplicates = scaled(s.Duplicates, scale, 10)
		if s.Duplicates > s.N1 {
			s.Duplicates = s.N1
		}
		if s.Duplicates > s.N2 {
			s.Duplicates = s.N2
		}
		out[i] = s
	}
	return out
}

func scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		if n < min {
			return n
		}
		return min
	}
	return v
}

// GenerateAll generates every dataset analog at the given scale.
func GenerateAll(scale float64) []*entity.Task {
	specs := Specs(scale)
	out := make([]*entity.Task, len(specs))
	for i, s := range specs {
		out[i] = Generate(s)
	}
	return out
}

// ByName generates a single dataset analog by name ("D1".."D10") at the
// given scale; it returns nil for unknown names.
func ByName(name string, scale float64) *entity.Task {
	for _, s := range Specs(scale) {
		if s.Name == name {
			return Generate(s)
		}
	}
	return nil
}

// QuickSpec returns a tiny product task for tests and examples: n1 and n2
// entities with the given number of duplicates and moderate noise.
func QuickSpec(n1, n2, dups int, seed uint64) Spec {
	return Spec{
		Name: "quick", Domain: "product", N1: n1, N2: n2, Duplicates: dups,
		TypoRate: 0.06, DropTokenRate: 0.08, MissingRate: 0.05, ShuffleRate: 0.3,
		GenericBias: 0.25, Seed: seed,
	}
}
