// Package datagen generates the synthetic Clean-Clean ER datasets that
// substitute the paper's 10 real-world datasets (see DESIGN.md). Each
// generated task mirrors the structural properties that drive the
// benchmark: two duplicate-free overlapping collections, duplicates that
// share distinctive rare tokens, character-level typos, missing values,
// misplaced values (the phenomenon that breaks schema-based settings on
// the D5–D7 and D10 analogs), and generic shared content that depresses
// precision (the D3 analog).
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// wordGen produces pronounceable pseudo-words deterministically from a
// seeded random source, used to build domain vocabularies.
type wordGen struct {
	rng *rand.Rand
}

var (
	consonants = []string{"b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "st", "br", "tr"}
	vowels     = []string{"a", "e", "i", "o", "u", "ia", "ou", "ei"}
)

func (g *wordGen) word(minSyl, maxSyl int) string {
	syl := minSyl + g.rng.Intn(maxSyl-minSyl+1)
	var sb strings.Builder
	for i := 0; i < syl; i++ {
		sb.WriteString(consonants[g.rng.Intn(len(consonants))])
		sb.WriteString(vowels[g.rng.Intn(len(vowels))])
	}
	return sb.String()
}

// vocab returns n distinct pseudo-words.
func (g *wordGen) vocab(n, minSyl, maxSyl int) []string {
	seen := map[string]bool{}
	out := make([]string, 0, n)
	for len(out) < n {
		w := g.word(minSyl, maxSyl)
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// modelCode produces a distinctive alphanumeric code like "sx1420b",
// mimicking product model numbers and catalog identifiers — the rare,
// high-information tokens that duplicates share.
func (g *wordGen) modelCode() string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	var sb strings.Builder
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		sb.WriteByte(letters[g.rng.Intn(26)])
	}
	fmt.Fprintf(&sb, "%d", 100+g.rng.Intn(9900))
	if g.rng.Intn(2) == 0 {
		sb.WriteByte(letters[g.rng.Intn(26)])
	}
	return sb.String()
}

// genericWords is the small vocabulary of generic filler content shared by
// many non-matching entities (product marketing words, common title
// words). Heavy use of these words creates the low-precision regime of the
// D3 analog: duplicates share only content that also appears in
// non-matching profiles.
var genericWords = []string{
	"new", "digital", "series", "edition", "deluxe", "pro", "classic",
	"compact", "portable", "premium", "original", "standard", "ultra",
	"black", "silver", "white", "pack", "set", "kit", "bundle",
	"wireless", "mini", "plus", "home", "office", "the", "and", "with",
	"for", "of",
}

var cityNames = []string{
	"springfield", "riverton", "lakewood", "fairview", "georgetown",
	"salem", "madison", "clinton", "arlington", "ashland", "dover",
	"hudson", "milton", "newport", "oxford",
}

var streetTypes = []string{"st", "ave", "blvd", "rd", "lane", "drive", "way", "plaza"}

var cuisines = []string{
	"italian", "french", "chinese", "japanese", "mexican", "indian",
	"greek", "thai", "american", "spanish", "korean", "vietnamese",
}

var venues = []string{
	"sigmod", "vldb", "icde", "edbt", "cikm", "kdd", "www", "acl",
	"tkde", "tods", "vldbj", "is", "dke", "pods",
}

var languages = []string{"english", "french", "german", "spanish", "italian", "japanese"}

var genres = []string{
	"drama", "comedy", "thriller", "action", "documentary", "horror",
	"romance", "scifi", "fantasy", "crime", "western", "animation",
}

var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard",
	"susan", "joseph", "jessica", "thomas", "sarah", "george", "karen",
	"nikos", "maria", "wolfgang", "franziska", "marco", "anna",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson",
	"papadakis", "augsten", "nejdl", "fisichella", "mandilaras",
}
