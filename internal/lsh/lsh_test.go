package lsh

import (
	"math"
	"testing"

	"erfilter/internal/entity"
	"erfilter/internal/text"
	"erfilter/internal/vector"
)

func TestProbeSequenceOrdering(t *testing.T) {
	options := [][]float64{
		{0, 0.5},
		{0, 0.1},
		{0, 0.3},
	}
	got := probeSequence(options, 8)
	if len(got) != 8 {
		t.Fatalf("probe count = %d", len(got))
	}
	// First probe must be the base.
	for _, c := range got[0] {
		if c != 0 {
			t.Fatalf("first probe not base: %v", got[0])
		}
	}
	cost := func(c []int) float64 {
		var s float64
		for p, i := range c {
			s += options[p][i]
		}
		return s
	}
	for i := 1; i < len(got); i++ {
		if cost(got[i]) < cost(got[i-1])-1e-12 {
			t.Fatalf("probe costs not non-decreasing: %v", got)
		}
	}
	// Second probe must flip the cheapest position (index 1).
	if got[1][1] != 1 || got[1][0] != 0 || got[1][2] != 0 {
		t.Fatalf("second probe = %v, want cheapest flip", got[1])
	}
	// All probes distinct.
	seen := map[string]bool{}
	for _, c := range got {
		k := fingerprint(c)
		if seen[k] {
			t.Fatalf("duplicate probe %v", c)
		}
		seen[k] = true
	}
}

func TestProbeSequenceBounds(t *testing.T) {
	if got := probeSequence(nil, 5); len(got) != 1 {
		t.Fatalf("empty options should yield just the base, got %v", got)
	}
	if got := probeSequence([][]float64{{0, 1}}, 100); len(got) != 2 {
		t.Fatalf("exhaustive enumeration expected 2 probes, got %d", len(got))
	}
	if got := probeSequence([][]float64{{0, 1}}, 0); got != nil {
		t.Fatalf("max=0 should yield nil")
	}
}

func jaccardStrings(a, b string, k int) float64 {
	sa := map[string]bool{}
	for _, g := range text.NGrams(a, k) {
		sa[g] = true
	}
	sb := map[string]bool{}
	for _, g := range text.NGrams(b, k) {
		sb[g] = true
	}
	inter := 0
	for g := range sa {
		if sb[g] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TestMinHashCollisionProbability verifies the banding behaviour: pairs
// with high Jaccard similarity collide far more often than low-similarity
// pairs across repeated seeds.
func TestMinHashCollisionProbability(t *testing.T) {
	hi := [2]string{"canon powershot a540", "canon powershot a540 camera"}
	lo := [2]string{"canon powershot a540", "zzz qqq kkk www"}
	if jaccardStrings(hi[0], hi[1], 3) < 0.5 {
		t.Fatal("test setup: high pair not similar enough")
	}
	hits := func(pair [2]string) int {
		n := 0
		for seed := uint64(0); seed < 20; seed++ {
			m := &MinHash{Bands: 16, Rows: 4, K: 3, Seed: seed}
			ps := m.Candidates([]string{pair[0]}, []string{pair[1]})
			if len(ps) > 0 {
				n++
			}
		}
		return n
	}
	if h := hits(hi); h < 15 {
		t.Fatalf("high-similarity pair collided only %d/20 times", h)
	}
	if l := hits(lo); l > 5 {
		t.Fatalf("low-similarity pair collided %d/20 times", l)
	}
}

func TestMinHashDistinctPairs(t *testing.T) {
	m := &MinHash{Bands: 8, Rows: 2, K: 3, Seed: 1}
	t1 := []string{"alpha beta gamma", "alpha beta gamma"}
	t2 := []string{"alpha beta gamma"}
	ps := m.Candidates(t1, t2)
	seen := map[entity.Pair]bool{}
	for _, p := range ps {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

// angled returns two unit vectors at the given angle (radians).
func angled(dim int, alpha float64) (vector.Vec, vector.Vec) {
	a := make(vector.Vec, dim)
	b := make(vector.Vec, dim)
	a[0] = 1
	b[0] = float32(math.Cos(alpha))
	b[1] = float32(math.Sin(alpha))
	return a, b
}

// TestHyperplaneCollisionProbability checks Pr[h(a)=h(b)] ≈ 1 - α/π per
// hyperplane by measuring single-hash agreement over many tables.
func TestHyperplaneCollisionProbability(t *testing.T) {
	dim := 32
	for _, alpha := range []float64{0.2, 1.0, 2.0} {
		a, b := angled(dim, alpha)
		collisions := 0
		trials := 400
		for s := 0; s < trials; s++ {
			h := &Hyperplane{Tables: 1, Hashes: 1, Probes: 1, Seed: uint64(s)}
			if len(h.Candidates([]vector.Vec{a}, []vector.Vec{b})) > 0 {
				collisions++
			}
		}
		want := 1 - alpha/math.Pi
		got := float64(collisions) / float64(trials)
		if math.Abs(got-want) > 0.1 {
			t.Errorf("alpha=%.1f: collision rate %.3f, want ≈ %.3f", alpha, got, want)
		}
	}
}

func TestHyperplaneMultiprobeWidensCandidates(t *testing.T) {
	dim := 16
	var idx []vector.Vec
	for i := 0; i < 50; i++ {
		v := make(vector.Vec, dim)
		buf := make([]float64, dim)
		vector.Gaussian(buf, uint64(i)+100)
		for j := range v {
			v[j] = float32(buf[j])
		}
		idx = append(idx, vector.Normalize(v))
	}
	q := []vector.Vec{idx[0]}
	one := &Hyperplane{Tables: 2, Hashes: 8, Probes: 1, Seed: 7}
	many := &Hyperplane{Tables: 2, Hashes: 8, Probes: 16, Seed: 7}
	n1 := len(one.Candidates(idx, q))
	n2 := len(many.Candidates(idx, q))
	if n2 < n1 {
		t.Fatalf("multi-probe produced fewer candidates: %d < %d", n2, n1)
	}
	if n2 == 0 {
		t.Fatal("query identical to an indexed vector found nothing")
	}
}

func TestCrossPolytopeFindsIdentical(t *testing.T) {
	dim := 32
	var idx []vector.Vec
	for i := 0; i < 30; i++ {
		v := make(vector.Vec, dim)
		buf := make([]float64, dim)
		vector.Gaussian(buf, uint64(i)+999)
		for j := range v {
			v[j] = float32(buf[j])
		}
		idx = append(idx, vector.Normalize(v))
	}
	cp := &CrossPolytope{Tables: 4, Hashes: 1, LastCPDim: 32, Probes: 1, Seed: 3}
	got := cp.Candidates(idx, []vector.Vec{idx[5]})
	found := false
	for _, p := range got {
		if p.Left == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("identical vector not among candidates: %v", got)
	}
}

func TestCrossPolytopeSelectivity(t *testing.T) {
	// More hash functions -> fewer candidates (finer partition).
	dim := 32
	var idx []vector.Vec
	for i := 0; i < 200; i++ {
		v := make(vector.Vec, dim)
		buf := make([]float64, dim)
		vector.Gaussian(buf, uint64(i)+5000)
		for j := range v {
			v[j] = float32(buf[j])
		}
		idx = append(idx, vector.Normalize(v))
	}
	q := idx[:20]
	coarse := &CrossPolytope{Tables: 2, Hashes: 1, Probes: 1, Seed: 11}
	fine := &CrossPolytope{Tables: 2, Hashes: 3, Probes: 1, Seed: 11}
	nc := len(coarse.Candidates(idx, q))
	nf := len(fine.Candidates(idx, q))
	if nf > nc {
		t.Fatalf("more hashes should not increase candidates: fine=%d coarse=%d", nf, nc)
	}
}

func TestHadamardInvolution(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]float64(nil), v...)
	hadamard(v)
	hadamard(v)
	// H*H = n*I for the unnormalized transform.
	for i := range v {
		if math.Abs(v[i]-8*orig[i]) > 1e-9 {
			t.Fatalf("hadamard involution failed: %v", v)
		}
	}
}

func TestCrossPolytopeLastDimOne(t *testing.T) {
	// With lastCPDim=1 and a single hash the family degenerates to a
	// hyperplane-like single-bit hash; candidates must still be found for
	// identical vectors.
	dim := 16
	v := make(vector.Vec, dim)
	v[3] = 1
	cp := &CrossPolytope{Tables: 8, Hashes: 1, LastCPDim: 1, Probes: 1, Seed: 21}
	got := cp.Candidates([]vector.Vec{v}, []vector.Vec{v})
	if len(got) != 1 {
		t.Fatalf("identical vectors with lastCPDim=1: %v", got)
	}
}
