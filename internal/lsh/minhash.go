package lsh

import (
	"erfilter/internal/entity"
	"erfilter/internal/text"
	"erfilter/internal/vector"
)

// MinHash implements MinHash LSH: every entity's character k-shingle set is
// summarized by a signature of Bands*Rows min-hash values; the signature is
// split into bands, and two entities become candidates when at least one
// band hashes identically. The banding approximates a high-pass filter on
// Jaccard similarity with collision threshold roughly
// (1/#bands)^(1/#rows) (Section IV-D).
type MinHash struct {
	// Bands and Rows configure the banding; the signature length is
	// Bands*Rows and is a power of two in the paper's grid.
	Bands, Rows int
	// K is the shingle size (character k-grams), in [2,5] in the paper.
	K int
	// Seed drives the random permutations, making the method stochastic:
	// different seeds give different candidates.
	Seed uint64
}

// MinHashIndex holds the banded buckets of one indexed collection.
type MinHashIndex struct {
	m       *MinHash
	n       int
	buckets []map[uint64][]int32 // per band
	stamp   []int32
	query   int32
}

// signature computes the min-hash signature of a text.
func (m *MinHash) signature(s string) []uint64 {
	n := m.Bands * m.Rows
	sig := make([]uint64, n)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	shingles := text.NGrams(s, m.K)
	for _, sh := range shingles {
		h := fnvString(sh)
		for i := 0; i < n; i++ {
			v := vector.Mix64(h, m.Seed+uint64(i)*0x9e3779b97f4a7c15+1)
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

func fnvString(s string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// bandKey hashes one band of the signature to a bucket key.
func (m *MinHash) bandKey(sig []uint64, band int) uint64 {
	h := uint64(band) + 0x517cc1b727220a95
	for _, v := range sig[band*m.Rows : (band+1)*m.Rows] {
		h = vector.Mix64(v^h, m.Seed)
	}
	return h
}

// Build indexes the shingle signatures of one collection.
func (m *MinHash) Build(texts []string) *MinHashIndex {
	idx := &MinHashIndex{
		m:       m,
		n:       len(texts),
		buckets: make([]map[uint64][]int32, m.Bands),
		stamp:   make([]int32, len(texts)),
		query:   0,
	}
	for b := range idx.buckets {
		idx.buckets[b] = map[uint64][]int32{}
	}
	for i := range idx.stamp {
		idx.stamp[i] = -1
	}
	for i, s := range texts {
		sig := m.signature(s)
		for b := 0; b < m.Bands; b++ {
			k := m.bandKey(sig, b)
			idx.buckets[b][k] = append(idx.buckets[b][k], int32(i))
		}
	}
	return idx
}

// Query invokes fn once for every indexed entity colliding with the text
// in at least one band. An index must not be queried concurrently.
func (idx *MinHashIndex) Query(s string, fn func(e int32)) {
	idx.query++
	sig := idx.m.signature(s)
	for b := 0; b < idx.m.Bands; b++ {
		k := idx.m.bandKey(sig, b)
		for _, e := range idx.buckets[b][k] {
			if idx.stamp[e] != idx.query {
				idx.stamp[e] = idx.query
				fn(e)
			}
		}
	}
}

// Candidates indexes texts1 and probes with every entity of texts2,
// returning the distinct candidate pairs.
func (m *MinHash) Candidates(texts1, texts2 []string) []entity.Pair {
	idx := m.Build(texts1)
	var out []entity.Pair
	for j, s := range texts2 {
		idx.Query(s, func(e1 int32) {
			out = append(out, entity.Pair{Left: e1, Right: int32(j)})
		})
	}
	return out
}
