// Package lsh implements the three locality-sensitive hashing families of
// Section IV-D: MinHash LSH over character k-shingles, Hyperplane LSH and
// Cross-Polytope LSH over dense embedding vectors, the latter two with
// multi-probe querying as in FALCONN.
package lsh

import "container/heap"

// probeSequence enumerates up to max per-position option-index combinations
// in increasing total-penalty order. options[p] holds the penalties of
// position p's choices sorted ascending, with options[p][0] == 0 being the
// base (best) choice. The first returned combination is the all-zeros base
// probe. This is the generic multi-probe engine shared by the Hyperplane
// (bit flips weighted by margin) and Cross-Polytope (alternative vertices
// weighted by coordinate gap) families.
func probeSequence(options [][]float64, max int) [][]int {
	if max <= 0 {
		return nil
	}
	n := len(options)
	base := make([]int, n)
	out := [][]int{base}
	if max == 1 || n == 0 {
		return out
	}

	pq := &probeHeap{}
	seen := map[string]bool{}
	push := func(choices []int, cost float64) {
		k := fingerprint(choices)
		if seen[k] {
			return
		}
		seen[k] = true
		heap.Push(pq, probeState{choices: choices, cost: cost})
	}
	cost := func(choices []int) float64 {
		var c float64
		for p, i := range choices {
			c += options[p][i]
		}
		return c
	}
	// Successors of the base: bump each position to its second choice.
	for p := 0; p < n; p++ {
		if len(options[p]) > 1 {
			next := append([]int(nil), base...)
			next[p] = 1
			push(next, cost(next))
		}
	}
	for pq.Len() > 0 && len(out) < max {
		s := heap.Pop(pq).(probeState)
		out = append(out, s.choices)
		// Successors: advance any position by one step.
		for p := 0; p < n; p++ {
			if s.choices[p]+1 < len(options[p]) {
				next := append([]int(nil), s.choices...)
				next[p]++
				push(next, cost(next))
			}
		}
	}
	return out
}

func fingerprint(choices []int) string {
	b := make([]byte, len(choices))
	for i, c := range choices {
		b[i] = byte(c)
	}
	return string(b)
}

type probeState struct {
	choices []int
	cost    float64
}

type probeHeap []probeState

func (h probeHeap) Len() int            { return len(h) }
func (h probeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h probeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *probeHeap) Push(x interface{}) { *h = append(*h, x.(probeState)) }
func (h *probeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
