package lsh

import (
	"math"

	"erfilter/internal/entity"
	"erfilter/internal/vector"
)

// CrossPolytope implements Cross-Polytope LSH (Andoni et al., NIPS 2015):
// the unit sphere is partitioned by the Voronoi cells of the vertices
// ±e_i of a randomly rotated cross-polytope. A vector's hash is the vertex
// closest to its pseudo-random rotation, computed FALCONN-style with
// rounds of random sign flips followed by fast Hadamard transforms.
// The 1-dimensional special case degenerates to Hyperplane LSH.
type CrossPolytope struct {
	Tables, Hashes int
	// LastCPDim restricts the vertex choice of the last hash function to
	// the first LastCPDim coordinates (1 .. padded dimension), trading
	// granularity for collision probability, as in FALCONN.
	LastCPDim int
	// Probes is the number of buckets inspected per table per query.
	Probes int
	// Seed drives the random rotations.
	Seed uint64
}

// maxProbeVerticesPerHash bounds the alternative vertices considered per
// hash function during multi-probe query expansion.
const maxProbeVerticesPerHash = 4

// CrossPolytopeIndex holds the rotations and buckets of one indexed
// collection.
type CrossPolytopeIndex struct {
	c       *CrossPolytope
	dim     int
	pd      int
	lastDim int
	tables  []cpTable
	stamp   []int32
	query   int32
	buf     []float64
}

// cpTable holds the rotation sign patterns of one table: three rounds per
// hash function.
type cpTable struct {
	signs   [][]float64 // [hash*3+round][paddedDim]
	buckets map[uint64][]int32
}

// paddedDim returns the smallest power of two >= dim.
func paddedDim(dim int) int {
	p := 1
	for p < dim {
		p <<= 1
	}
	return p
}

// rotate applies one pseudo-random rotation (3 rounds of sign flip +
// Hadamard) to buf in place.
func rotate(buf []float64, signs [][]float64) {
	for _, s := range signs {
		for i := range buf {
			if s[i] < 0 {
				buf[i] = -buf[i]
			}
		}
		hadamard(buf)
	}
}

// hadamard applies the unnormalized fast Walsh–Hadamard transform in place
// (the scale factor is irrelevant for argmax hashing).
func hadamard(v []float64) {
	n := len(v)
	for step := 1; step < n; step <<= 1 {
		for i := 0; i < n; i += step << 1 {
			for j := i; j < i+step; j++ {
				a, b := v[j], v[j+step]
				v[j], v[j+step] = a+b, a-b
			}
		}
	}
}

// rankedVertex is one cross-polytope vertex candidate: value encodes
// 2*coordinate + signBit, penalty the gap to the best coordinate.
type rankedVertex struct {
	value   uint32
	penalty float64
}

func rankVertices(rot []float64, dims, limit int) []rankedVertex {
	out := make([]rankedVertex, 0, limit)
	for len(out) < limit {
		best, bestAbs := -1, -1.0
		for i := 0; i < dims; i++ {
			a := math.Abs(rot[i])
			taken := false
			for _, r := range out {
				if int(r.value>>1) == i {
					taken = true
					break
				}
			}
			if !taken && a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 {
			break
		}
		v := uint32(best << 1)
		if rot[best] < 0 {
			v |= 1
		}
		out = append(out, rankedVertex{value: v})
	}
	if len(out) > 0 {
		top := math.Abs(rot[out[0].value>>1])
		for i := range out {
			out[i].penalty = top - math.Abs(rot[out[i].value>>1])
		}
	}
	return out
}

// Build indexes the vectors.
func (c *CrossPolytope) Build(vecs []vector.Vec) *CrossPolytopeIndex {
	if len(vecs) == 0 {
		return &CrossPolytopeIndex{c: c}
	}
	dim := len(vecs[0])
	pd := paddedDim(dim)
	lastDim := c.LastCPDim
	if lastDim <= 0 || lastDim > pd {
		lastDim = pd
	}
	idx := &CrossPolytopeIndex{
		c: c, dim: dim, pd: pd, lastDim: lastDim,
		tables: make([]cpTable, c.Tables),
		stamp:  make([]int32, len(vecs)),
		buf:    make([]float64, pd),
	}
	for i := range idx.stamp {
		idx.stamp[i] = -1
	}
	for t := range idx.tables {
		idx.tables[t].buckets = map[uint64][]int32{}
		idx.tables[t].signs = make([][]float64, c.Hashes*3)
		for i := range idx.tables[t].signs {
			s := make([]float64, pd)
			vector.Gaussian(s, c.Seed+uint64(t)*1000003+uint64(i)*7919+5)
			idx.tables[t].signs[i] = s
		}
		for i, v := range vecs {
			ranked := idx.hashAll(&idx.tables[t], v, 1)
			k := idx.combineKey(ranked, nil)
			idx.tables[t].buckets[k] = append(idx.tables[t].buckets[k], int32(i))
		}
	}
	return idx
}

// hashAll computes, per hash function, the ranked vertex list of v.
func (idx *CrossPolytopeIndex) hashAll(tb *cpTable, v vector.Vec, limit int) [][]rankedVertex {
	out := make([][]rankedVertex, idx.c.Hashes)
	for hf := 0; hf < idx.c.Hashes; hf++ {
		for i := range idx.buf {
			idx.buf[i] = 0
		}
		for i := 0; i < idx.dim; i++ {
			idx.buf[i] = float64(v[i])
		}
		rotate(idx.buf, tb.signs[hf*3:hf*3+3])
		dims := idx.pd
		if hf == idx.c.Hashes-1 {
			dims = idx.lastDim
		}
		out[hf] = rankVertices(idx.buf, dims, limit)
	}
	return out
}

func (idx *CrossPolytopeIndex) combineKey(ranked [][]rankedVertex, choice []int) uint64 {
	var k uint64 = 0x243f6a8885a308d3
	for hf, r := range ranked {
		ci := 0
		if choice != nil {
			ci = choice[hf]
		}
		if ci >= len(r) {
			ci = len(r) - 1
		}
		k = vector.Mix64(k^uint64(r[ci].value), idx.c.Seed+uint64(hf))
	}
	return k
}

// Query invokes fn once for every indexed entity sharing a (multi-probed)
// bucket with v in any table.
func (idx *CrossPolytopeIndex) Query(v vector.Vec, fn func(e int32)) {
	if len(idx.tables) == 0 {
		return
	}
	probes := idx.c.Probes
	if probes < 1 {
		probes = 1
	}
	idx.query++
	for t := range idx.tables {
		tb := &idx.tables[t]
		limit := 1
		if probes > 1 {
			limit = maxProbeVerticesPerHash
		}
		ranked := idx.hashAll(tb, v, limit)
		options := make([][]float64, idx.c.Hashes)
		for hf, r := range ranked {
			pen := make([]float64, len(r))
			for i := range r {
				pen[i] = r[i].penalty
			}
			options[hf] = pen
		}
		for _, choice := range probeSequence(options, probes) {
			k := idx.combineKey(ranked, choice)
			for _, e1 := range tb.buckets[k] {
				if idx.stamp[e1] != idx.query {
					idx.stamp[e1] = idx.query
					fn(e1)
				}
			}
		}
	}
}

// Candidates indexes vecs1 and probes with every vector of vecs2.
func (c *CrossPolytope) Candidates(vecs1, vecs2 []vector.Vec) []entity.Pair {
	if len(vecs1) == 0 || len(vecs2) == 0 {
		return nil
	}
	idx := c.Build(vecs1)
	var out []entity.Pair
	for j, v := range vecs2 {
		idx.Query(v, func(e1 int32) {
			out = append(out, entity.Pair{Left: e1, Right: int32(j)})
		})
	}
	sortPairs(out)
	return out
}
