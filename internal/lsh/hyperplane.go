package lsh

import (
	"math"
	"sort"

	"erfilter/internal/entity"
	"erfilter/internal/vector"
)

// Hyperplane implements Hyperplane LSH (Charikar, STOC 2002): each of
// Tables hash tables draws Hashes random Gaussian hyperplanes; a vector's
// hash in a table is the sign pattern of its projections. Two unit vectors
// with angle α collide on one hyperplane with probability 1 − α/π.
// Querying is multi-probe: besides the query's own bucket, the Probes−1
// buckets obtained by flipping the lowest-margin sign bits are inspected.
type Hyperplane struct {
	Tables, Hashes int
	// Probes is the number of buckets inspected per table per query
	// (including the base bucket). Probes <= 1 disables multi-probing.
	Probes int
	// Seed drives the random hyperplanes.
	Seed uint64
}

// HyperplaneIndex holds the per-table hyperplanes and buckets of one
// indexed collection.
type HyperplaneIndex struct {
	h      *Hyperplane
	dim    int
	tables []hpTable
	stamp  []int32
	query  int32
	dots   []float64
	bits   []bool
}

type hpTable struct {
	planes  []float64
	buckets map[uint64][]int32
}

// hyperplanes returns the Hashes random hyperplanes of one table as a
// flat [Hashes][dim] matrix.
func (h *Hyperplane) hyperplanes(table, dim int) []float64 {
	planes := make([]float64, h.Hashes*dim)
	vector.Gaussian(planes, h.Seed+uint64(table)*0x2545f4914f6cdd1d+11)
	return planes
}

// signKey packs sign bits into a bucket key.
func signKey(bits []bool) uint64 {
	var k uint64
	for i, b := range bits {
		if b {
			k |= 1 << uint(i)
		}
	}
	return k
}

// Build indexes the vectors.
func (h *Hyperplane) Build(vecs []vector.Vec) *HyperplaneIndex {
	if len(vecs) == 0 {
		return &HyperplaneIndex{h: h}
	}
	idx := &HyperplaneIndex{
		h:      h,
		dim:    len(vecs[0]),
		tables: make([]hpTable, h.Tables),
		stamp:  make([]int32, len(vecs)),
		dots:   make([]float64, h.Hashes),
		bits:   make([]bool, h.Hashes),
	}
	for i := range idx.stamp {
		idx.stamp[i] = -1
	}
	for t := range idx.tables {
		idx.tables[t].planes = h.hyperplanes(t, idx.dim)
		idx.tables[t].buckets = map[uint64][]int32{}
		for i, v := range vecs {
			idx.project(idx.tables[t].planes, v)
			k := signKey(idx.bits)
			idx.tables[t].buckets[k] = append(idx.tables[t].buckets[k], int32(i))
		}
	}
	return idx
}

func (idx *HyperplaneIndex) project(planes []float64, v vector.Vec) {
	for i := 0; i < idx.h.Hashes; i++ {
		row := planes[i*idx.dim : (i+1)*idx.dim]
		var d float64
		for j := range row {
			d += row[j] * float64(v[j])
		}
		idx.dots[i] = d
		idx.bits[i] = d >= 0
	}
}

// Query invokes fn once for every indexed entity sharing a (multi-probed)
// bucket with v in any table.
func (idx *HyperplaneIndex) Query(v vector.Vec, fn func(e int32)) {
	if len(idx.tables) == 0 {
		return
	}
	probes := idx.h.Probes
	if probes < 1 {
		probes = 1
	}
	idx.query++
	for t := range idx.tables {
		tb := &idx.tables[t]
		idx.project(tb.planes, v)
		base := signKey(idx.bits)
		keys := []uint64{base}
		if probes > 1 {
			options := make([][]float64, idx.h.Hashes)
			for i := range options {
				options[i] = []float64{0, math.Abs(idx.dots[i])}
			}
			keys = keys[:0]
			for _, choice := range probeSequence(options, probes) {
				k := base
				for bit, c := range choice {
					if c == 1 {
						k ^= 1 << uint(bit)
					}
				}
				keys = append(keys, k)
			}
		}
		for _, k := range keys {
			for _, e1 := range tb.buckets[k] {
				if idx.stamp[e1] != idx.query {
					idx.stamp[e1] = idx.query
					fn(e1)
				}
			}
		}
	}
}

// Candidates indexes vecs1 and probes with every vector of vecs2.
func (h *Hyperplane) Candidates(vecs1, vecs2 []vector.Vec) []entity.Pair {
	if len(vecs1) == 0 || len(vecs2) == 0 {
		return nil
	}
	idx := h.Build(vecs1)
	var out []entity.Pair
	for j, v := range vecs2 {
		idx.Query(v, func(e1 int32) {
			out = append(out, entity.Pair{Left: e1, Right: int32(j)})
		})
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []entity.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Left != ps[j].Left {
			return ps[i].Left < ps[j].Left
		}
		return ps[i].Right < ps[j].Right
	})
}
