package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"path/filepath"
	"testing"
)

func writeString(t *testing.T, f File, s string) {
	t.Helper()
	if _, err := f.Write([]byte(s)); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readAll(t *testing.T, fsys FS, name string) string {
	t.Helper()
	f, err := Open(fsys, name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

// TestMemBasics covers the plain-file contract shared with OS: create,
// append, read, rename, remove, readdir.
func TestMemBasics(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := Create(m, "d/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "hello ")
	writeString(t, f, "world")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "d/a.txt"); got != "hello world" {
		t.Fatalf("content %q", got)
	}
	if _, err := Open(m, "d/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
	if err := m.Rename("d/a.txt", "d/b.txt"); err != nil {
		t.Fatal(err)
	}
	names, err := m.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "b.txt" {
		t.Fatalf("readdir: %v", names)
	}
	if err := m.Remove("d/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(m, "d/b.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("after remove: %v", err)
	}
}

// TestMemCrashDropsUnsynced is the core power-failure model: synced
// bytes survive a crash, un-synced bytes survive only as the prefix the
// Restart policy keeps.
func TestMemCrashDropsUnsynced(t *testing.T) {
	m := NewMem()
	f, _ := Create(m, "log")
	writeString(t, f, "durable")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "-volatile")

	m.Crash()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if _, err := Open(m, "log"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: %v", err)
	}

	m.Restart(func(name string, unsynced int) int { return 4 })
	if got := readAll(t, m, "log"); got != "durable-vol" {
		t.Fatalf("after torn restart: %q", got)
	}
	m.Crash()
	m.Restart(nil)
	if got := readAll(t, m, "log"); got != "durable-vol" {
		t.Fatalf("restart re-synced the survivor: %q", got)
	}
}

// TestMemWriteBudget proves the budget-crossing write lands partially
// (a torn write) and kills the file system.
func TestMemWriteBudget(t *testing.T) {
	m := NewMem()
	f, _ := Create(m, "log")
	m.LimitWrites(10)
	if _, err := f.Write([]byte("123456")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrCrashed) || n != 4 {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	m.Restart(func(string, int) int { return 1 << 20 })
	if got := readAll(t, m, "log"); got != "123456abcd" {
		t.Fatalf("torn content: %q", got)
	}
}

// TestMemSyncFaults covers both disk-error models: a counted one-shot
// failure and a permanently failing flush.
func TestMemSyncFaults(t *testing.T) {
	m := NewMem()
	f, _ := Create(m, "log")
	writeString(t, f, "abc")
	m.FailSync(1)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("next sync: %v", err)
	}
	m.FailAllSyncs(true)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("fail-all sync: %v", err)
	}
	m.FailAllSyncs(false)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	// A failed sync must not mark bytes durable.
	m2 := NewMem()
	g, _ := Create(m2, "log")
	writeString(t, g, "abc")
	m2.FailSync(1)
	_ = g.Sync()
	m2.Crash()
	m2.Restart(nil)
	if got := readAll(t, m2, "log"); got != "" {
		t.Fatalf("failed sync persisted bytes: %q", got)
	}
}

// TestMemRenameCarriesDurability pins the atomic-rename model: content
// synced before the rename survives under the new name, content that
// skipped the fsync does not.
func TestMemRenameCarriesDurability(t *testing.T) {
	m := NewMem()
	f, _ := Create(m, "snap.tmp")
	writeString(t, f, "synced")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "-not")
	f.Close()
	if err := m.Rename("snap.tmp", "snap"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	m.Restart(nil)
	if got := readAll(t, m, "snap"); got != "synced" {
		t.Fatalf("after crash: %q", got)
	}
	if _, err := Open(m, "snap.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("old name survived rename: %v", err)
	}
}

func TestMemTruncate(t *testing.T) {
	m := NewMem()
	f, _ := Create(m, "log")
	writeString(t, f, "0123456789")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(99); err == nil {
		t.Fatal("truncate beyond size must fail")
	}
	m.Crash()
	m.Restart(nil)
	if got := readAll(t, m, "log"); got != "0123" {
		t.Fatalf("truncate did not clamp synced length: %q", got)
	}
}

// TestOSRoundTrip smoke-tests the production passthrough against a real
// temp dir so both implementations stay behaviorally aligned.
func TestOSRoundTrip(t *testing.T) {
	var o OS
	dir := filepath.Join(t.TempDir(), "sub")
	if err := o.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "a.txt")
	f, err := Create(o, name)
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, o, name); got != "hell" {
		t.Fatalf("content %q", got)
	}
	if err := o.Rename(name, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	names, err := o.ReadDir(dir)
	if err != nil || len(names) != 1 || names[0] != "b.txt" {
		t.Fatalf("readdir: %v %v", names, err)
	}
	if err := o.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
}
