// Package faultfs is the file-system seam of the durability stack: a
// minimal FS interface that the write-ahead log and the snapshot
// checkpointer write through, with two implementations — OS, a thin
// passthrough to the os package used in production, and Mem, an
// in-memory file system with scripted fault injection (short writes,
// fsync errors, crashes that discard un-synced bytes) used by the
// crash-recovery property tests. Threading every durable write through
// this interface is what makes "kill the process at byte N" a unit test
// instead of a hope.
package faultfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the durability code needs. Writes are
// sequential appends; Truncate is used by WAL recovery to cut a torn
// tail.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS abstracts the handful of file-system operations behind the WAL and
// the snapshot checkpointer. Implementations must make Rename atomic:
// after a crash the destination holds either the old or the new file,
// never a mixture. Durability of file *contents* still requires Sync
// before the rename, which Mem enforces by discarding un-synced bytes at
// Crash.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// ReadDir returns the sorted base names of the plain files directly
	// under dir.
	ReadDir(dir string) ([]string, error)
	MkdirAll(dir string) error
	// SyncDir flushes the directory entry metadata (file creations,
	// renames, removals) of dir to stable storage.
	SyncDir(dir string) error
}

// Create opens name for writing, truncating any previous content.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open opens name read-only.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// WriteFileAtomic streams write into dir/temp, fsyncs, atomically
// renames it to dir/final and fsyncs the directory entry — the
// checkpoint discipline shared by snapshots, segment files and the
// segment manifest. On any error the temp file is removed and the
// previous dir/final (if any) is untouched.
func WriteFileAtomic(fsys FS, dir, temp, final string, write func(io.Writer) error) error {
	tempPath := filepath.Join(dir, temp)
	f, err := Create(fsys, tempPath)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fsys.Remove(tempPath)
		return err
	}
	if err := fsys.Rename(tempPath, filepath.Join(dir, final)); err != nil {
		_ = fsys.Remove(tempPath)
		return err
	}
	return fsys.SyncDir(dir)
}

// OS is the production FS: a direct passthrough to the os package.
type OS struct{}

// OpenFile opens a real file.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename renames a real file (atomic on POSIX file systems).
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes a real file.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir lists the plain files directly under dir, sorted by name.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll creates a real directory tree.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir fsyncs the directory so entry mutations (create, rename,
// remove) survive a power cut.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
