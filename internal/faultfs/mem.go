package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed is returned by every operation on a Mem after Crash (or
// after a write budget set by LimitWrites is exhausted): the simulated
// process is dead and nothing it does reaches the disk any more.
var ErrCrashed = errors.New("faultfs: simulated crash")

// ErrInjected is the error returned by operations a fault script fails
// deliberately (fsync errors, short writes).
var ErrInjected = errors.New("faultfs: injected fault")

// Mem is an in-memory FS with power-failure semantics: every file keeps
// both its written bytes and the length that has been fsynced, and a
// simulated crash throws away an arbitrary suffix of the un-synced
// bytes. Fault scripts can additionally exhaust a global write budget
// (the write that crosses it is applied only partially — a torn write —
// and the file system is crashed from then on) and fail fsyncs by
// count (a disk error the process survives).
//
// Rename is modeled as atomic and carries the synced length with the
// file, so content that was fsynced before an atomic rename survives a
// crash — and content that was not, does not. All methods are safe for
// concurrent use.
type Mem struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	crashed bool

	budget    int64 // remaining write bytes; -1 = unlimited
	syncN     int   // syncs performed so far
	syncFails map[int]bool
	failAll   bool

	// BeforeSync, when non-nil, runs before every file Sync with no
	// internal lock held, so tests can stall a committer at will.
	BeforeSync func(name string)
}

type memFile struct {
	data   []byte
	synced int
}

// NewMem returns an empty in-memory file system with no faults armed.
func NewMem() *Mem {
	return &Mem{files: map[string]*memFile{}, dirs: map[string]bool{}, budget: -1}
}

// LimitWrites arms the write budget: after n more bytes have been
// written (across all files), the write that crosses the boundary is
// applied only up to the boundary and fails with ErrCrashed, and every
// later operation fails the same way — the moral equivalent of kill -9
// at an arbitrary byte offset.
func (m *Mem) LimitWrites(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = n
}

// FailSync makes the n-th future Sync (1-based, counted across all
// files from now) return ErrInjected without persisting anything.
func (m *Mem) FailSync(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.syncFails == nil {
		m.syncFails = map[int]bool{}
	}
	m.syncFails[m.syncN+n] = true
}

// FailAllSyncs makes every future Sync fail with ErrInjected — a disk
// that stopped accepting flushes while the process lives on.
func (m *Mem) FailAllSyncs(fail bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAll = fail
}

// Crash kills the simulated process: every subsequent operation returns
// ErrCrashed until Restart.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = true
}

// Restart models the machine coming back after a crash: for every file,
// the synced prefix survives and keep decides how many of the un-synced
// tail bytes made it to the platter (0..n); a nil keep drops them all.
// The file system is usable again afterwards, with all fault scripts
// disarmed.
func (m *Mem) Restart(keep func(name string, unsynced int) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		k := 0
		if n := len(f.data) - f.synced; n > 0 && keep != nil {
			k = keep(name, n)
			if k < 0 {
				k = 0
			}
			if k > n {
				k = n
			}
		}
		f.data = f.data[:f.synced+k]
		f.synced = len(f.data)
	}
	m.crashed = false
	m.budget = -1
	m.syncFails = nil
	m.failAll = false
}

// FileBytes returns a copy of the current content of name (written, not
// necessarily synced), for tests that corrupt files in place.
func (m *Mem) FileBytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// FlipByte XORs one stored byte with 0xFF — a bit-rot injection that no
// write path would ever produce.
func (m *Mem) FlipByte(name string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("faultfs: flip %s@%d: no such byte", name, off)
	}
	f.data[off] ^= 0xFF
	return nil
}

// OpenFile opens an in-memory file. Writes always append (the WAL and
// snapshot writers are strictly sequential); O_TRUNC resets the file.
func (m *Mem) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		f = &memFile{}
		m.files[name] = f
	case flag&os.O_TRUNC != 0:
		f.data, f.synced = nil, 0
	}
	return &memHandle{m: m, name: name, f: f, writable: flag&(os.O_WRONLY|os.O_RDWR) != 0}, nil
}

// Rename atomically moves a file, synced length and all.
func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

// Remove deletes a file.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// ReadDir lists the files directly under dir, sorted by base name.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	clean := filepath.Clean(dir)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == clean {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll records the directory; Mem does not enforce hierarchy beyond
// ReadDir's prefix matching.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.dirs[filepath.Clean(dir)] = true
	return nil
}

// SyncDir is durable by construction for Mem (Rename/Remove are modeled
// atomic and durable); it still honors the crash flag.
func (m *Mem) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

type memHandle struct {
	m        *Mem
	name     string
	f        *memFile
	off      int
	writable bool
	closed   bool
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Read(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.m.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.m.crashed {
		return 0, ErrCrashed
	}
	if h.closed || !h.writable {
		return 0, fs.ErrClosed
	}
	n := len(p)
	if h.m.budget >= 0 {
		if int64(n) > h.m.budget {
			// The torn write: the budget-crossing write lands partially
			// and the process is dead from here on.
			n = int(h.m.budget)
			h.f.data = append(h.f.data, p[:n]...)
			h.m.budget = 0
			h.m.crashed = true
			return n, ErrCrashed
		}
		h.m.budget -= int64(n)
	}
	h.f.data = append(h.f.data, p...)
	return n, nil
}

func (h *memHandle) Sync() error {
	if fn := h.m.BeforeSync; fn != nil {
		fn(h.name)
	}
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.m.crashed {
		return ErrCrashed
	}
	if h.closed {
		return fs.ErrClosed
	}
	h.m.syncN++
	if h.m.failAll || h.m.syncFails[h.m.syncN] {
		return fmt.Errorf("fsync %s: %w", h.name, ErrInjected)
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.m.crashed {
		return ErrCrashed
	}
	if h.closed || !h.writable {
		return fs.ErrClosed
	}
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("faultfs: truncate %s to %d: out of range", h.name, size)
	}
	h.f.data = h.f.data[:size]
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	h.closed = true
	return nil
}

// assert interface satisfaction at compile time.
var (
	_ FS = (*Mem)(nil)
	_ FS = OS{}
)
