package parallel

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	cases := map[int]int{-1: runtime.NumCPU(), 0: runtime.NumCPU(), 1: 1, 7: 7}
	for in, want := range cases {
		if got := Workers(in); got != want {
			t.Errorf("Workers(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestForEachPool is the table-driven worker-pool contract test: it
// covers completion, ordered results, error propagation, panic recovery
// and cancellation at several worker counts, including the sequential
// path (workers = 1) that backs Options.Workers = 1.
func TestForEachPool(t *testing.T) {
	sentinel := errors.New("boom")
	cases := []struct {
		name    string
		n       int
		fn      func(i int) (int, error)
		wantErr error // nil, sentinel, or a *PanicError (matched via errors.As)
	}{
		{
			name: "all items run",
			n:    100,
			fn:   func(i int) (int, error) { return i * i, nil },
		},
		{
			name: "zero items",
			n:    0,
			fn:   func(i int) (int, error) { t.Error("fn called for n=0"); return 0, nil },
		},
		{
			name: "single item",
			n:    1,
			fn:   func(i int) (int, error) { return 42, nil },
		},
		{
			name:    "error propagates",
			n:       50,
			fn:      func(i int) (int, error) { return 0, fmt.Errorf("item %d: %w", i, sentinel) },
			wantErr: sentinel,
		},
		{
			name: "lowest-index error wins",
			n:    50,
			fn: func(i int) (int, error) {
				if i%2 == 1 {
					return 0, fmt.Errorf("item %d: %w", i, sentinel)
				}
				return i, nil
			},
			wantErr: sentinel,
		},
		{
			name:    "panic recovered",
			n:       20,
			fn:      func(i int) (int, error) { panic("kaboom") },
			wantErr: &PanicError{},
		},
	}

	for _, workers := range []int{1, 2, 4, 16} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				got, err := Map(workers, tc.n, tc.fn)
				switch tc.wantErr.(type) {
				case nil:
					if err != nil {
						t.Fatalf("unexpected error: %v", err)
					}
					for i := range got {
						w, _ := tc.fn(i)
						if got[i] != w {
							t.Fatalf("result[%d] = %d, want %d (must be index order, not completion order)", i, got[i], w)
						}
					}
				case *PanicError:
					var pe *PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("want PanicError, got %v", err)
					}
					if pe.Value != "kaboom" {
						t.Fatalf("panic value = %v", pe.Value)
					}
					if len(pe.Stack) == 0 {
						t.Fatal("panic stack missing")
					}
				default:
					if !errors.Is(err, sentinel) {
						t.Fatalf("want sentinel error, got %v", err)
					}
				}
			})
		}
	}
}

// TestForEachDeterministicError pins the reported error to the failing
// item with the lowest index among those that ran, not to whichever
// worker failed first on the clock. Items 2+ fail only after items 0 and
// 1 have started, so item 1's error must win every time.
func TestForEachDeterministicError(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var earlyStarted sync.WaitGroup
		earlyStarted.Add(2)
		err := ForEach(8, 16, func(i int) error {
			if i < 2 {
				earlyStarted.Done()
				time.Sleep(time.Millisecond)
				if i == 1 {
					return errors.New("early 1")
				}
				return nil
			}
			// Later failures race with the early ones on wall-clock but
			// must never win the report.
			earlyStarted.Wait()
			return fmt.Errorf("late %d", i)
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := err.Error(); got != "early 1" {
			t.Fatalf("trial %d: error = %q, want the lowest evaluated index (early 1)", trial, got)
		}
	}
}

// TestForEachCancellation checks that after the first failure the pool
// stops dispatching new items instead of draining the whole range.
func TestForEachCancellation(t *testing.T) {
	const n = 1000
	var started atomic.Int64
	err := ForEach(2, n, func(i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("stop")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if s := started.Load(); s >= n/2 {
		t.Fatalf("started %d of %d items after early failure; cancellation not effective", s, n)
	}
}

// TestForEachConcurrencyBound verifies the pool never runs more than the
// requested number of items at once.
func TestForEachConcurrencyBound(t *testing.T) {
	const workers, n = 3, 64
	var cur, peak atomic.Int64
	err := ForEach(workers, n, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestSequencerOrdersChunks(t *testing.T) {
	var buf bytes.Buffer
	s := NewSequencer(&buf)
	// Deliver chunks in a scrambled order; output must be 0..4.
	for _, i := range []int{3, 1, 4, 0, 2} {
		s.Put(i, []byte(fmt.Sprintf("chunk%d\n", i)))
	}
	want := "chunk0\nchunk1\nchunk2\nchunk3\nchunk4\n"
	if buf.String() != want {
		t.Fatalf("sequencer output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestSequencerConcurrentPuts(t *testing.T) {
	var buf bytes.Buffer
	s := NewSequencer(&buf)
	const n = 200
	if err := ForEach(8, n, func(i int) error {
		s.Put(i, []byte(fmt.Sprintf("%04d\n", i)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&want, "%04d\n", i)
	}
	if buf.String() != want.String() {
		t.Fatal("concurrent sequencer output not in index order")
	}
}
