package parallel

import (
	"io"
	"sync"
)

// Sequencer releases per-index output chunks to an underlying writer in
// strict index order, regardless of the order in which they are produced.
// bench.Run uses it so that per-cell progress logs from concurrent workers
// come out byte-identical to a sequential run: each worker buffers its
// cell's lines and hands them over with the cell's canonical index; the
// sequencer writes chunk i only after chunks 0..i-1 have been written.
type Sequencer struct {
	mu      sync.Mutex
	w       io.Writer
	next    int
	pending map[int][]byte
}

// NewSequencer returns a sequencer writing to w, starting at index 0.
func NewSequencer(w io.Writer) *Sequencer {
	return &Sequencer{w: w, pending: map[int][]byte{}}
}

// Put hands over the complete output chunk of index i. If i is the next
// index in sequence the chunk is written immediately, along with any
// buffered successors; otherwise it is buffered. Each index must be put
// exactly once. Write errors are ignored: the sequencer carries progress
// logs, and a broken log sink must not fail the computation.
func (s *Sequencer) Put(i int, chunk []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[i] = chunk
	for {
		c, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		if len(c) > 0 {
			s.w.Write(c)
		}
	}
}
