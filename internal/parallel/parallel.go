// Package parallel is the shared worker-pool execution layer of the
// benchmark: a bounded pool with deterministic, index-ordered semantics.
//
// Every fan-out in the repo (dataset×setting cells in bench.Run, grid
// branches in the tuners) goes through ForEach or Map so that the same
// guarantees hold everywhere:
//
//   - work items are identified by their index in a canonical enumeration
//     order, and results/errors are reduced by that index, never by
//     completion order;
//   - a panic inside a work item is recovered and surfaced as a
//     *PanicError instead of killing the process from a bare goroutine;
//   - after the first failure no further items are started
//     (cancellation), and the error reported is the failed item with the
//     lowest index among those that ran — the same error a sequential
//     loop would have returned.
//
// Together these make a parallel grid search a pure performance
// optimization: byte-identical outputs at any worker count.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: values <= 0 select
// runtime.NumCPU(), everything else is returned unchanged. A count of 1
// selects the sequential path.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// PanicError wraps a panic recovered from a work item.
type PanicError struct {
	// Index of the work item that panicked.
	Index int
	// Value passed to panic.
	Value any
	// Stack of the panicking goroutine at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: work item %d panicked: %v", e.Index, e.Value)
}

// call runs fn(i), converting a panic into a *PanicError.
func call(fn func(int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 4096)
			err = &PanicError{Index: i, Value: v, Stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	return fn(i)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (Workers(workers) resolves the count). Items are dispatched in index
// order; once any item fails, no new items are started. The returned
// error is the one from the lowest-index item that ran and failed, so the
// outcome is independent of goroutine scheduling.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential path: identical dispatch order and first-error
		// semantics, minus the goroutines.
		for i := 0; i < n; i++ {
			if err := call(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := call(fn, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order — the canonical reduction order for
// deterministic grid searches. Error semantics match ForEach; on error
// the partial results are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
