package serve

// Replication endpoints: the leader side of WAL shipping (raw log
// ranges and bootstrap snapshots), explicit failover, follower
// re-parenting, and the epoch plumbing that gives clients
// read-your-writes across replicas. All of it mounts only when the
// server is built with a replication node.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/metrics"
	"erfilter/internal/online"
	"erfilter/internal/repl"
	"erfilter/internal/wal"
)

// maxWALWait caps one /v1/wal long-poll park; callers re-poll.
const maxWALWait = 30 * time.Second

// WrapReplicated adapts a replication node to the serving surface. The
// read methods resolve the node's *current* resolver per call, so a
// follower's re-bootstrap (and a promotion) swap state under a running
// server without rewiring handlers.
func WrapReplicated(n *repl.Node) Resolver { return replResolver{n} }

type replResolver struct{ n *repl.Node }

func (a replResolver) Config() online.Config                   { return a.n.Resolver().Config() }
func (a replResolver) Len() int                                { return a.n.Resolver().Len() }
func (a replResolver) IDs() []int64                            { return a.n.Resolver().IDs() }
func (a replResolver) Get(id int64) ([]entity.Attribute, bool) { return a.n.Resolver().Get(id) }
func (a replResolver) Save(w io.Writer) error                  { return a.n.Resolver().Save(w) }
func (a replResolver) Snapshot() Snapshot                      { return a.n.Resolver().Snapshot() }
func (a replResolver) Stats() any                              { return a.n.Resolver().Stats() }
func (a replResolver) RegisterMetrics(reg *metrics.Registry)   { a.n.Resolver().RegisterMetrics(reg) }
func (a replResolver) Delete(id int64) (bool, error)           { return a.n.Delete(id) }
func (a replResolver) InsertBatch(b [][]entity.Attribute) ([]int64, error) {
	return a.n.InsertBatch(b)
}

// replRoutes are the endpoints that exist only on a replicated server.
func (s *Server) replRoutes() []route {
	return []route{
		{"GET", "/v1/wal", "wal", s.handleWAL, true},
		{"POST", "/v1/failover", "failover", s.handleFailover, false},
		{"POST", "/v1/replica-of", "replica_of", s.handleReplicaOf, false},
	}
}

// handleWAL serves a raw range of the leader's durable log. from= is
// the follower's resume position and doubles as its durability ack
// (everything below it is fsynced follower-side); id= names the
// follower for semi-sync accounting; wait= long-polls when caught up.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := wal.ParsePosition(q.Get("from"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad from position: %w", err))
		return
	}
	max := wal.DefaultReadChunk
	if v := q.Get("max"); v != "" {
		max, err = strconv.Atoi(v)
		if err != nil || max <= 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad max: %q", v))
			return
		}
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad wait: %q", v))
			return
		}
		wait = min(time.Duration(ms)*time.Millisecond, maxWALWait)
	}
	if id := q.Get("id"); id != "" {
		s.repl.ObserveFetch(id, from)
	}
	data, at, next, err := s.repl.ReadLog(from, max)
	if err == nil && len(data) == 0 && wait > 0 {
		s.repl.WaitLog(from, wait)
		data, at, next, err = s.repl.ReadLog(from, max)
	}
	if err != nil {
		s.writeReplError(w, err)
		return
	}
	h := w.Header()
	h.Set(repl.HeaderTerm, strconv.FormatUint(s.repl.Term(), 10))
	h.Set(repl.HeaderAt, at.String())
	h.Set(repl.HeaderNext, next.String())
	h.Set(repl.HeaderEnd, s.repl.LogPos().String())
	h.Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handleReplSnapshot streams a bootstrap snapshot anchored at a log
// rotation boundary, the position and term in headers.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	pos, term, save, err := s.repl.ReplSnapshot()
	if err != nil {
		s.writeReplError(w, err)
		return
	}
	h := w.Header()
	h.Set(repl.HeaderReplPos, pos.String())
	h.Set(repl.HeaderTerm, strconv.FormatUint(term, 10))
	h.Set("Content-Type", "application/octet-stream")
	if err := save(w); err != nil {
		// Headers are out; the truncated stream fails the follower's
		// validation, so no partial state is ever installed.
		fmt.Fprintln(os.Stderr, "erserve: streaming bootstrap snapshot:", err)
	}
}

// handleFailover promotes this replica to leader: take the lease, turn
// the mirrored log into the writable WAL, append the new fencing term.
func (s *Server) handleFailover(w http.ResponseWriter, r *http.Request) {
	term, err := s.repl.Promote()
	if err != nil {
		s.writeReplError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"role": s.repl.Role().String(), "term": term})
}

// handleReplicaOf re-points a follower's tailer at a new leader URL —
// the re-parenting step after a failover.
func (s *Server) handleReplicaOf(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Upstream string `json:"upstream"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Upstream == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New(`"upstream" must not be empty`))
		return
	}
	if err := s.repl.SetUpstream(req.Upstream); err != nil {
		writeErr(w, http.StatusConflict, CodeNotLeader, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"upstream": req.Upstream})
}

// writeReplError maps replication failures onto the envelope: trimmed
// positions tell the follower to re-bootstrap (410), diverged positions
// that its log is from another reign (409), and non-leaders refuse with
// 503 so proxies re-probe for the leader.
func (s *Server) writeReplError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, wal.ErrTrimmed):
		writeErr(w, http.StatusGone, CodeWALTrimmed, err)
	case errors.Is(err, wal.ErrFuture):
		writeErr(w, http.StatusConflict, CodeWALDiverged, err)
	case errors.Is(err, repl.ErrNotLeader):
		writeErr(w, http.StatusServiceUnavailable, CodeNotLeader, err)
	default:
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
	}
}

// tagEpoch stamps a replicated response with the replica's current log
// position — the token a client hands back as min_epoch to read its
// own writes from any replica.
func (s *Server) tagEpoch(w http.ResponseWriter) {
	if s.repl != nil {
		w.Header().Set(repl.HeaderEpoch, s.repl.LogPos().String())
	}
}

// checkEpoch enforces a request's min_epoch bound. It reports whether
// the request may proceed; on a replica that has not yet applied the
// position it answers 412 so the client can retry or fall back to the
// leader.
func (s *Server) checkEpoch(w http.ResponseWriter, minEpoch string) bool {
	if minEpoch == "" {
		return true
	}
	if s.repl == nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("min_epoch requires replication"))
		return false
	}
	want, err := wal.ParsePosition(minEpoch)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad min_epoch: %w", err))
		return false
	}
	if at := s.repl.LogPos(); at.Less(want) {
		writeErr(w, http.StatusPreconditionFailed, CodeStaleEpoch,
			fmt.Errorf("replica at epoch %s has not applied %s yet", at, want))
		return false
	}
	return true
}

// readyCode classifies a readiness failure for the envelope.
func readyCode(reason error) string {
	switch {
	case errors.Is(reason, repl.ErrNotLeader):
		return CodeNotLeader
	case errors.Is(reason, repl.ErrStale):
		return CodeStaleReplica
	default:
		return CodeDegraded
	}
}
