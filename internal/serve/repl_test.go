package serve

import (
	"net/http"
	"testing"
)

func TestReplMinEpochWithoutReplication(t *testing.T) {
	ts, _ := newTestServer(t)
	code, eb, _ := doEnvelope(t, http.MethodPost, ts.URL+"/v1/query",
		map[string]any{"text": "anything", "k": 1, "min_epoch": "1.0"})
	if code != http.StatusBadRequest || eb.Error.Code != CodeBadRequest {
		t.Fatalf("min_epoch on unreplicated server = %d %q, want 400 %q", code, eb.Error.Code, CodeBadRequest)
	}
}

func TestReplProxyRejectsBadReplicaList(t *testing.T) {
	if _, err := NewProxy(nil, ProxyOptions{}); err == nil {
		t.Fatal("empty replica list accepted")
	}
	if _, err := NewProxy([]string{"not a url"}, ProxyOptions{}); err == nil {
		t.Fatal("unparsable replica URL accepted")
	}
	if _, err := NewProxy([]string{"localhost:9000"}, ProxyOptions{}); err == nil {
		t.Fatal("scheme-less replica URL accepted")
	}
}
