package serve

// POST /v1/resolve/stream — the bulk resolve pipe. The client sends an
// NDJSON feed (one entityPayload per line, the same shape /v1/query
// accepts) and receives an NDJSON answer stream: one result line per
// resolvable record, one error line per malformed record, and a final
// summary line. The handler reads incrementally, resolves in bounded
// batches of the server's MaxBatch unit against the then-current epoch
// snapshot, and flushes after every batch — so a million-row feed costs
// O(batch) memory on the server no matter how large the request body
// grows, which is why this endpoint is exempt from the whole-body cap
// and bounded per line instead.
//
// Response lines:
//
//	{"i":N,"candidates":[...],"truncated":true}   resolved record N
//	{"i":N,"error":{"code":...,"message":...}}    record N failed
//	{"done":true,"records":R,"results":C,"errors":E,"epoch":P}
//
// Record indices count every input line carrying content, in arrival
// order. A malformed JSON line costs only that record; an oversized
// line terminates the stream (the byte boundary of the next record is
// unknowable), reported as a final error line before the summary.
// Candidate arrays are serialized exactly as /v1/query/batch serializes
// them, so a feed streamed here and the same queries batched there are
// byte-identical per record.
//
// With ?mode=match the stream runs the match stage instead of raw
// candidate retrieval: each resolve batch is decided one-to-one by the
// configured scorer, the result lines carry decided matches
// ({"i":N,"matches":[{"query":...,"id":...,"score":...}]}), and the
// budget= / top= / assign= parameters tune each decided batch. The
// summary then also reports total matches and scorer comparisons.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"erfilter/internal/entity"
	"erfilter/internal/match"
)

// streamQuantum is the rolling per-batch deadline of the resolve
// stream: each flushed batch extends the connection's read and write
// deadlines by this much, so an arbitrarily long feed survives the
// server's absolute timeouts while a stalled peer still gets cut off.
const streamQuantum = time.Minute

// streamResult is one resolved record. Candidates match the
// /v1/query/batch serialization byte for byte.
type streamResult struct {
	I          int        `json:"i"`
	Candidates []candJSON `json:"candidates"`
	Truncated  bool       `json:"truncated,omitempty"`
}

// streamError reports one failed record (or, for stream-fatal errors,
// the record the stream stopped at) in the standard envelope shape.
type streamError struct {
	I     int `json:"i"`
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// streamMatch is one decided record of a mode=match stream: the
// record's decided matches (at most one under one-to-one assignment)
// and whether the batch it rode in ran out of comparison budget.
type streamMatch struct {
	I         int       `json:"i"`
	Matches   []decJSON `json:"matches"`
	Exhausted bool      `json:"exhausted,omitempty"`
}

// streamSummary is the final line of every response stream. Matches
// and Comparisons are populated by mode=match.
type streamSummary struct {
	Done        bool   `json:"done"`
	Records     int    `json:"records"`
	Results     int    `json:"results"`
	Errors      int    `json:"errors"`
	Epoch       uint64 `json:"epoch"`
	Plan        string `json:"plan,omitempty"`
	Matches     int    `json:"matches,omitempty"`
	Comparisons int    `json:"comparisons,omitempty"`
}

// streamParams validates the URL query parameters of a resolve stream —
// the stream's whole request body is the feed, so the per-request knobs
// that /v1/query takes from JSON fields ride in the URL instead.
func intParam(qp url.Values, name string) (int, error) {
	v := qp.Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", name, v)
	}
	return n, nil
}

func floatParam(qp url.Values, name string) (float64, error) {
	v := qp.Get(name)
	if v == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", name, v)
	}
	return f, nil
}

func (s *Server) handleResolveStream(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	mode := qp.Get("mode")
	switch mode {
	case "", "resolve", "match":
	default:
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf(`bad mode: %q (want "resolve" or "match")`, mode))
		return
	}
	if mode == "match" && !s.checkMatch(w) {
		return
	}
	reqOpt, err := optionsFromURL(qp)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	ro, ok := s.resolveOptions(w, reqOpt)
	if !ok {
		return
	}
	opt, limit, plan := ro.opt, ro.limit, ro.plan
	var mreq match.Request
	massign := match.Assign(-1)
	if mode == "match" {
		budget, err := intParam(qp, "budget")
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		top, err := intParam(qp, "top")
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		p := matchParams{Budget: budget, Top: top, Assign: qp.Get("assign")}
		if mreq, massign, ok = p.resolve(w); !ok {
			return
		}
		mreq.Opt = opt
	}

	cfg := s.res.Config()
	rc := http.NewResponseController(w)
	// The stream writes results while the feed is still arriving; without
	// this, Go's HTTP/1 server goes half-duplex on the first write and
	// truncates the remaining body. Recorders and HTTP/2 don't need it.
	rc.EnableFullDuplex()
	// A stream is a one-shot pipe: when it terminates early (line cap,
	// malformed framing) the rest of the feed is unread and unbounded, so
	// the connection can never be drained for reuse — close it instead.
	w.Header().Set("Connection", "close")
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.tagEpoch(w)
	w.WriteHeader(http.StatusOK)

	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	sc := bufio.NewScanner(r.Body)
	// Scanner's effective token cap is max(cap(buf), max), so the
	// initial buffer must not exceed the configured line cap.
	sc.Buffer(make([]byte, 0, min(64<<10, s.maxLine)), s.maxLine)

	var (
		batch       [][]entity.Attribute
		idx         []int // record index of each pending batch entry
		records     int
		results     int
		errs        int
		epoch       uint64
		matches     int
		comparisons int
	)
	emitErr := func(i int, code, msg string) {
		var e streamError
		e.I = i
		e.Error.Code = code
		e.Error.Message = msg
		enc.Encode(e)
		errs++
	}
	// flush resolves the pending batch against the then-current snapshot,
	// writes its result lines, pushes them to the client, and rolls the
	// connection deadlines. A false return means the client is gone.
	flush := func() bool {
		if len(batch) > 0 {
			snap := s.res.Snapshot()
			epoch = snap.Epoch()
			if mode == "match" {
				// Decide the batch: one line per record with its decided
				// match (one-to-one within the batch), in input order. The
				// comparison budget and top-N cut apply per decided batch.
				res := s.matcher.DecideBatch(snap, batch, mreq, massign)
				perQ := make([][]decJSON, len(batch))
				for _, d := range res.Decisions {
					perQ[d.Query] = append(perQ[d.Query], decJSON{Query: d.Query, ID: d.ID, Score: d.Score})
				}
				for j := range batch {
					ms := perQ[j]
					if ms == nil {
						ms = []decJSON{}
					}
					enc.Encode(streamMatch{I: idx[j], Matches: ms, Exhausted: res.Exhausted})
				}
				matches += len(res.Decisions)
				comparisons += res.Comparisons
				results += len(batch)
			} else {
				rs, _ := snap.QueryBatch(batch, opt)
				for j, cands := range rs {
					truncated := len(cands) > limit
					if truncated {
						cands = cands[:limit]
					}
					enc.Encode(streamResult{I: idx[j], Candidates: candList(cands), Truncated: truncated})
				}
				results += len(rs)
			}
			batch, idx = batch[:0], idx[:0]
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		rc.Flush()
		// Best effort: a test recorder has no deadlines to roll.
		rc.SetReadDeadline(time.Now().Add(streamQuantum))
		rc.SetWriteDeadline(time.Now().Add(streamQuantum))
		return true
	}

	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var p entityPayload
		if err := json.Unmarshal(line, &p); err != nil {
			emitErr(records, CodeBadRequest, "decoding record: "+err.Error())
			records++
			continue
		}
		attrs, err := p.attrs(cfg)
		if err != nil {
			emitErr(records, CodeBadRequest, err.Error())
			records++
			continue
		}
		batch = append(batch, attrs)
		idx = append(idx, records)
		records++
		if len(batch) >= s.maxBatch {
			if !flush() {
				return
			}
		}
	}
	if serr := sc.Err(); serr != nil {
		// Drain what already resolved cleanly, then report why the
		// stream stopped; the summary still follows, so the client can
		// tell a terminated feed from a completed one.
		if !flush() {
			return
		}
		if errors.Is(serr, bufio.ErrTooLong) {
			emitErr(records, CodeTooLarge,
				fmt.Sprintf("record %d exceeds the %d-byte line cap", records, s.maxLine))
		} else {
			emitErr(records, CodeBadRequest, "reading stream: "+serr.Error())
		}
	}
	if !flush() {
		return
	}
	if epoch == 0 {
		epoch = s.res.Snapshot().Epoch()
	}
	enc.Encode(streamSummary{
		Done: true, Records: records, Results: results, Errors: errs, Epoch: epoch, Plan: plan,
		Matches: matches, Comparisons: comparisons,
	})
	bw.Flush()
	rc.Flush()
}
